// Command adahealthd is the ADA-HEALTH analysis daemon: a long-running
// HTTP JSON service that turns the blocking library pipeline into
// asynchronous, admission-controlled analysis jobs over one shared
// engine and stage pool.
//
//	adahealthd -addr :8080 -kdb kdbdir/ -workers 4 -queue 64
//
// API (all JSON):
//
//	POST   /v1/analyses              submit a job; 202 + {"id": ...}, 429 when the queue is full
//	GET    /v1/analyses/{id}         status, live stage progress, stage-trace dump when done
//	GET    /v1/analyses/{id}/report  the finished report (409 until done)
//	GET    /v1/analyses/{id}/events  live progress as Server-Sent Events (closes after the terminal event)
//	DELETE /v1/analyses/{id}         cancel the job
//	GET    /v1/knowledge             K-DB knowledge items (?dataset=, ?metric=, ?limit=)
//	GET    /v1/datasets/{id}/similar statistically similar datasets from the K-DB
//	PUT    /v1/datasets/{id}         register a live (streaming) dataset; 201, 409 if the name is taken
//	POST   /v1/datasets/{id}/visits  append a visit batch to a live dataset; 202 + revision, 503 when not durable
//	GET    /v1/datasets/{id}         live model status, drift gauge, last full-analysis report id
//	GET    /v1/datasets/{id}/events  live dataset event stream (SSE: appended, model-updated, resweep-scheduled, ...)
//	GET    /healthz                  liveness + queue/worker/K-DB gauges
//	GET    /v1/replication/status    leader WAL position (disk-backed daemons only)
//	GET    /v1/replication/snapshot  epoch-start snapshot files for follower bootstrap
//	GET    /v1/replication/wal       raw WAL frame stream (?epoch=&from=)
//
// With -kdb-dir the knowledge base is durable: every mutation is
// group-committed to a write-ahead log, so a killed daemon recovers
// all collections on restart (WAL replay over the latest snapshots),
// and accumulated knowledge warm-starts future analyses of similar
// datasets (the recall stage).
//
// With -follow the daemon is a warm-standby replication follower
// instead: it bootstraps from the leader's snapshots, tails the
// leader's WAL into its own durable log, and serves only the K-DB read
// endpoints (GET /v1/knowledge, GET /v1/datasets/{id}/similar) plus a
// /healthz carrying replication lag gauges. A leader started with
// -read-fallback <follower-url> routes those same read endpoints to
// the standby — with an explicit X-Adahealth-Stale header — whenever
// its own K-DB breaker is degraded.
//
// A submission names its data inline ({"log": {...}}) or asks the
// daemon to generate a synthetic log ({"synthetic": {"NumPatients":
// 300, ...}}), and may set "priority", "deadline_ms", "seed", "labels"
// and a full per-job "config" override (validated at admission).
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting
// HTTP connections and new jobs, lets queued and running jobs finish
// within -drain, then cancels whatever remains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adahealth/internal/cluster"
	"adahealth/internal/core"
	"adahealth/internal/kdb"
	"adahealth/internal/optimize"
	"adahealth/internal/repl"
	"adahealth/internal/service"
	"adahealth/internal/stream"
)

// newServer wraps handler in an http.Server with the daemon's timeout
// policy: bounded header/body reads and idle keep-alives against
// slow-loris and leaked connections, but NO WriteTimeout — the SSE
// event streams and the replication WAL stream are long-lived
// responses a write deadline would sever mid-analysis.
func newServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		kdbDir  = flag.String("kdb-dir", "", "knowledge-base persistence directory (WAL + snapshots, crash-recoverable; default: in-memory)")
		kdbOld  = flag.String("kdb", "", "alias of -kdb-dir (kept for compatibility)")
		seed    = flag.Int64("seed", 1, "base analysis seed (jobs may override per submission)")
		workers = flag.Int("workers", 0, "max concurrently running jobs (0 = service default)")
		queue   = flag.Int("queue", 0, "admission queue depth before 429s (0 = service default)")
		jobs    = flag.Int("jobs", 0, "stage pool size shared by all running jobs (0 = all cores)")
		algo    = flag.String("algorithm", "", "base K-means kernel: lloyd, filtering, hamerly, elkan, minibatch or auto (jobs may override per submission)")
		warm    = flag.Bool("warmstart", true, "warm-start K sweeps: seed each K from the previous K's centroids (false = legacy independent seeding)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
		stageTO = flag.Duration("stage-timeout", 0, "per-stage attempt deadline; a stage exceeding it fails its job, not the daemon (0 = none)")
		pprofOn = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (profile the daemon under cmd/loadgen traffic)")
		driftTh = flag.Float64("drift-threshold", 0, "live-dataset descriptor drift that triggers a full warm-started re-analysis (0 = default 0.15)")
		traces  = flag.Int("max-stage-traces", 0, "newest stage traces kept per dataset at flush time (0 = default 256, negative = unbounded)")
		follow  = flag.String("follow", "", "run as a warm-standby follower of this leader URL (requires -kdb-dir; serves the knowledge read endpoints only)")
		fallbk  = flag.String("read-fallback", "", "warm-standby URL the knowledge read endpoints route to while the K-DB breaker is degraded")
	)
	flag.Parse()

	dir := *kdbDir
	if dir == "" {
		dir = *kdbOld
	}
	if *follow != "" {
		runFollower(*addr, dir, *follow, *drain)
		return
	}

	alg, err := cluster.ParseAlgorithm(*algo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adahealthd: %v\n", err)
		os.Exit(2)
	}
	engineCfg := core.Config{
		KDBDir:       dir,
		Seed:         *seed,
		Parallelism:  *jobs,
		StageTimeout: *stageTO,
	}
	engineCfg.Sweep.Cluster.Algorithm = alg
	engineCfg.Partial.Cluster.Algorithm = alg
	if !*warm {
		engineCfg.Sweep.WarmStart = optimize.WarmStartOff
	}

	svc, err := service.New(service.Config{
		Engine:     engineCfg,
		Workers:    *workers,
		QueueDepth: *queue,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "adahealthd: %v\n", err)
		os.Exit(1)
	}
	if *traces != 0 {
		svc.Engine().KDB().SetStageTraceLimit(*traces)
	}

	// The streaming manager resumes any live datasets persisted in the
	// K-DB (replaying their accepted batches), so a restarted daemon
	// picks up every stream where the last acknowledged append left it.
	mgr, err := stream.NewManager(stream.Config{
		Service:        svc,
		DriftThreshold: *driftTh,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "adahealthd: %v\n", err)
		os.Exit(1)
	}

	handler := stream.HandlerOptions(svc, mgr, service.HandlerOptions{ReadFallback: *fallbk})
	if dir != "" {
		// A durable K-DB can lead replication: mount the WAL-shipping
		// endpoints followers bootstrap from and tail.
		leaderH, err := repl.NewLeaderHandler(svc.Engine().KDB().Store(), repl.LeaderOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adahealthd: %v\n", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/v1/replication/", leaderH)
		handler = mux
	}
	if *pprofOn {
		// The profiling surface rides on the API port behind an opt-in
		// flag: `go tool pprof http://host:port/debug/pprof/profile`
		// while loadgen drives traffic.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := newServer(*addr, handler)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("adahealthd: listening on %s (workers=%d queue=%d)\n",
		*addr, svc.Stats().Workers, svc.Stats().QueueDepth)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "adahealthd: serving: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections and jobs, give
	// in-flight work the drain budget, then cut it loose.
	fmt.Println("adahealthd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "adahealthd: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "adahealthd: drain budget exceeded; cancelled remaining jobs\n")
		os.Exit(1)
	}
	// Compact and release the K-DB so the next start replays a short
	// WAL (a kill -9 skips this and recovers via replay instead).
	if err := svc.Engine().KDB().Close(); err != nil {
		fmt.Fprintf(os.Stderr, "adahealthd: closing K-DB: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("adahealthd: drained cleanly")
}

// runFollower is the warm-standby main path: replicate the leader's
// K-DB into dir and serve the knowledge read endpoints from it.
func runFollower(addr, dir, leaderURL string, drain time.Duration) {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "adahealthd: -follow requires -kdb-dir (the follower's own durable store)")
		os.Exit(2)
	}
	f, err := repl.OpenFollower(repl.FollowerOptions{LeaderURL: leaderURL, Dir: dir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "adahealthd: %v\n", err)
		os.Exit(1)
	}
	fkb := kdb.Follower(f.Store())
	srv := newServer(addr, repl.NewFollowerHandler(f, fkb))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	f.Start(ctx)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("adahealthd: follower of %s listening on %s\n", leaderURL, addr)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "adahealthd: serving: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Println("adahealthd: follower draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "adahealthd: http shutdown: %v\n", err)
	}
	// Closing the follower keeps its WAL durable: the next start
	// resumes streaming at the same offset.
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "adahealthd: closing follower: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("adahealthd: follower drained cleanly")
}
