// Command datagen generates a synthetic diabetic examination log (the
// substitution for the paper's proprietary dataset) and writes it as
// CSV files (exams.csv, patients.csv, records.csv) under -out.
//
//	datagen -out data/           # paper scale: 6,380 patients
//	datagen -out data/ -patients 500 -records 7500 -exams 60
package main

import (
	"flag"
	"fmt"
	"os"

	"adahealth/internal/stats"
	"adahealth/internal/synth"
)

func main() {
	var (
		out      = flag.String("out", "data", "output directory for CSV files")
		seed     = flag.Int64("seed", 1, "generator seed")
		patients = flag.Int("patients", 6380, "number of patients")
		records  = flag.Int("records", 95788, "total examination records")
		exams    = flag.Int("exams", 159, "number of examination types")
		profiles = flag.Int("profiles", 8, "latent clinical profiles")
		quiet    = flag.Bool("quiet", false, "suppress the descriptor summary")
	)
	flag.Parse()

	cfg := synth.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumPatients = *patients
	cfg.TargetRecords = *records
	cfg.NumExamTypes = *exams
	cfg.NumProfiles = *profiles

	log, err := synth.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := log.SaveCSVFiles(*out); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if *quiet {
		return
	}
	d := stats.Characterize(log)
	fmt.Printf("wrote %s/{exams,patients,records}.csv\n", *out)
	fmt.Printf("patients: %d   records: %d   exam types: %d   visits: %d\n",
		d.NumPatients, d.NumRecords, d.NumExamTypes, d.NumVisits)
	fmt.Printf("age: %.0f-%.0f (mean %.1f)   records/patient: mean %.1f\n",
		d.Age.Min, d.Age.Max, d.Age.Mean, d.RecordsPerPatient.Mean)
	fmt.Printf("VSM sparsity: %.3f   top-20%% exam coverage: %.1f%%   top-40%%: %.1f%%\n",
		d.VSMSparsity, d.Top20Coverage*100, d.Top40Coverage*100)
}
