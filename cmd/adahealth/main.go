// Command adahealth runs the automated ADA-HEALTH analysis pipeline
// on an examination log and prints the resulting report: dataset
// characterization, the partial-mining decision, the optimization
// table, the selected clustering, end-goal recommendations and the
// top-ranked knowledge items.
//
//	adahealth -synthetic                  # analyze a synthetic paper-scale log
//	adahealth -data dir/                  # analyze CSVs written by datagen
//	adahealth -kdb kdbdir/ -top 15        # persist the K-DB, show 15 items
package main

import (
	"flag"
	"fmt"
	"os"

	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/synth"
)

func main() {
	var (
		dataDir   = flag.String("data", "", "directory with exams/patients/records CSVs")
		synthetic = flag.Bool("synthetic", false, "analyze a synthetic paper-scale dataset")
		small     = flag.Bool("small", false, "with -synthetic: use the small test-scale dataset")
		kdbDir    = flag.String("kdb", "", "knowledge-base directory (default: in-memory)")
		seed      = flag.Int64("seed", 1, "seed for data generation and algorithms")
		top       = flag.Int("top", 10, "number of ranked knowledge items to print")
	)
	flag.Parse()

	var (
		log *dataset.Log
		err error
	)
	switch {
	case *dataDir != "":
		log, err = dataset.LoadCSVFiles("csv-dataset", *dataDir)
	case *synthetic:
		cfg := synth.DefaultConfig()
		if *small {
			cfg = synth.SmallConfig()
		}
		cfg.Seed = *seed
		log, err = synth.Generate(cfg)
	default:
		fmt.Fprintln(os.Stderr, "adahealth: pass -data DIR or -synthetic")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adahealth: loading data: %v\n", err)
		os.Exit(1)
	}

	engine, err := core.New(core.Config{KDBDir: *kdbDir, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "adahealth: %v\n", err)
		os.Exit(1)
	}
	rep, err := engine.Analyze(log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adahealth: analysis: %v\n", err)
		os.Exit(1)
	}
	printReport(rep, *top)
}

func printReport(rep *core.Report, top int) {
	d := rep.Descriptor
	fmt.Printf("=== Dataset characterization: %s ===\n", d.DatasetName)
	fmt.Printf("patients %d · records %d · exam types %d · visits %d · span %d days\n",
		d.NumPatients, d.NumRecords, d.NumExamTypes, d.NumVisits, d.SpanDays)
	fmt.Printf("VSM sparsity %.3f · frequency Gini %.3f · top-20%% coverage %.1f%%\n\n",
		d.VSMSparsity, d.FrequencyGini, d.Top20Coverage*100)

	fmt.Println("=== Adaptive partial mining ===")
	for i, s := range rep.Partial.Steps {
		marker := "   "
		if i == rep.Partial.Selected {
			marker = "-> "
		}
		fmt.Printf("%s%.0f%% of exam types (%d features, %.1f%% of rows): rel.diff %.2f%%\n",
			marker, s.Fraction*100, s.NumFeatures, s.RowCoverage*100, s.RelDiff*100)
	}
	fmt.Println()

	fmt.Println("=== Algorithm optimization (K sweep) ===")
	fmt.Printf("%-4s %10s %8s %8s %8s\n", "K", "SSE", "Acc", "Prec", "Rec")
	for _, r := range rep.Sweep.Rows {
		sel := ""
		if r.K == rep.Sweep.BestK {
			sel = "  <- selected"
		}
		fmt.Printf("%-4d %10.2f %7.2f%% %7.2f%% %7.2f%%%s\n",
			r.K, r.SSE, r.Accuracy*100, r.Precision*100, r.Recall*100, sel)
	}
	fmt.Printf("final clustering: K=%d, SSE %.2f, %d iterations\n\n",
		rep.BestClustering.K, rep.BestClustering.SSE, rep.BestClustering.Iterations)

	fmt.Println("=== End-goal recommendations ===")
	for _, rec := range rep.Recommendations {
		status := "not viable"
		if rec.Feasible {
			status = "viable"
		}
		fmt.Printf("[%-9s interest=%-6s %-6s] %s\n    %s\n",
			status, rec.Interest, rec.Source, rec.Goal.Name, rec.Reason)
	}
	fmt.Println()

	fmt.Printf("=== Top %d knowledge items ===\n", top)
	for i, it := range rep.Ranked {
		if i >= top {
			break
		}
		fmt.Printf("%2d. [%-11s] %s\n", i+1, it.Kind, it.Title)
	}
}
