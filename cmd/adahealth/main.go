// Command adahealth runs the automated ADA-HEALTH analysis pipeline
// on an examination log and prints the resulting report: dataset
// characterization, the partial-mining decision, the optimization
// table, the selected clustering, end-goal recommendations and the
// top-ranked knowledge items.
//
//	adahealth -synthetic                  # analyze a synthetic paper-scale log
//	adahealth -data dir/                  # analyze CSVs written by datagen
//	adahealth -kdb-dir kdbdir/ -top 15    # persist the K-DB (durable WAL), show 15 items
//	adahealth -synthetic -timeout 90s     # bound the analysis wall-clock
//	adahealth -synthetic -sequential      # legacy serial stage execution
//	adahealth -synthetic -trace out.json  # dump the stage schedule as JSON
//	adahealth -synthetic -trace-html out.html  # render the schedule as an HTML Gantt view
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"adahealth/internal/cluster"
	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/optimize"
	"adahealth/internal/service"
	"adahealth/internal/synth"
)

func main() {
	var (
		dataDir    = flag.String("data", "", "directory with exams/patients/records CSVs")
		synthetic  = flag.Bool("synthetic", false, "analyze a synthetic paper-scale dataset")
		small      = flag.Bool("small", false, "with -synthetic: use the small test-scale dataset")
		kdbDir     = flag.String("kdb-dir", "", "knowledge-base persistence directory (WAL + snapshots, crash-recoverable; default: in-memory)")
		kdbOld     = flag.String("kdb", "", "alias of -kdb-dir (kept for compatibility)")
		seed       = flag.Int64("seed", 1, "seed for data generation and algorithms")
		top        = flag.Int("top", 10, "number of ranked knowledge items to print")
		timeout    = flag.Duration("timeout", 0, "abort the analysis after this duration (0 = no limit)")
		sequential = flag.Bool("sequential", false, "run pipeline stages serially (legacy execution)")
		jobs       = flag.Int("jobs", 0, "max concurrently running stages (0 = all cores)")
		trace      = flag.String("trace", "", "write the stage schedule (Report.Stages) to this file as JSON")
		traceHTML  = flag.String("trace-html", "", "render the stage schedule to this file as a self-contained HTML Gantt view (same data as -trace)")
		algorithm  = flag.String("algorithm", "", "K-means assignment kernel for the sweep and partial mining: lloyd, dense-lloyd, sparse-lloyd, filtering, hamerly, elkan, minibatch or auto (default: lloyd auto-routing)")
		warmStart  = flag.Bool("warmstart", true, "warm-start the K sweep: seed each K from the previous K's centroids (false = legacy independent seeding)")
		stageTO    = flag.Duration("stage-timeout", 0, "per-stage attempt deadline; a stage exceeding it fails the analysis with a typed error (0 = none)")
	)
	flag.Parse()

	alg, algErr := cluster.ParseAlgorithm(*algorithm)
	if algErr != nil {
		fmt.Fprintf(os.Stderr, "adahealth: %v\n", algErr)
		os.Exit(2)
	}

	var (
		log *dataset.Log
		err error
	)
	switch {
	case *dataDir != "":
		log, err = dataset.LoadCSVFiles("csv-dataset", *dataDir)
	case *synthetic:
		cfg := synth.DefaultConfig()
		if *small {
			cfg = synth.SmallConfig()
		}
		cfg.Seed = *seed
		log, err = synth.Generate(cfg)
	default:
		fmt.Fprintln(os.Stderr, "adahealth: pass -data DIR or -synthetic")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adahealth: loading data: %v\n", err)
		os.Exit(1)
	}

	dir := *kdbDir
	if dir == "" {
		dir = *kdbOld
	}
	cfg := core.Config{
		KDBDir:       dir,
		Seed:         *seed,
		Sequential:   *sequential,
		Parallelism:  *jobs,
		StageTimeout: *stageTO,
	}
	cfg.Sweep.Cluster.Algorithm = alg
	cfg.Partial.Cluster.Algorithm = alg
	if !*warmStart {
		cfg.Sweep.WarmStart = optimize.WarmStartOff
	}
	engine, err := core.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adahealth: %v\n", err)
		os.Exit(1)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := engine.AnalyzeContext(ctx, log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adahealth: analysis: %v\n", err)
		os.Exit(1)
	}
	printReport(rep, *top)
	printStageTimings(rep)
	if *trace != "" {
		if err := writeTraceFile(*trace, rep); err != nil {
			fmt.Fprintf(os.Stderr, "adahealth: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("stage trace written to %s\n", *trace)
	}
	if *traceHTML != "" {
		if err := writeTraceHTMLFile(*traceHTML, rep); err != nil {
			fmt.Fprintf(os.Stderr, "adahealth: writing trace html: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("stage trace view written to %s\n", *traceHTML)
	}
}

// writeTraceFile dumps the stage schedule in the same JSON encoding
// the daemon's status endpoint serves (service.TraceDump), so offline
// flame-style tooling consumes one format for both.
func writeTraceFile(path string, rep *core.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := service.WriteTrace(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraceHTMLFile renders the same TraceDump the daemon's
// /v1/analyses/{id}/trace.html endpoint serves, for offline viewing.
func writeTraceHTMLFile(path string, rep *core.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := service.WriteTraceHTML(f, service.NewTraceDump(rep)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printStageTimings renders the stage-graph execution trace: per-stage
// wall time and allocation estimate, plus the observed concurrency.
func printStageTimings(rep *core.Report) {
	if len(rep.Stages) == 0 {
		return
	}
	fmt.Println("\n=== Stage timings ===")
	origin := rep.Stages[0].Start
	total := time.Duration(0)
	for _, tr := range rep.Stages {
		fmt.Printf("%-16s +%-9s %10s  %8.1f MB\n",
			tr.Stage,
			tr.Start.Sub(origin).Round(time.Microsecond),
			tr.Wall().Round(time.Microsecond),
			float64(tr.AllocBytes)/(1<<20))
		total += tr.Wall()
	}
	wall := rep.Stages[len(rep.Stages)-1].End.Sub(origin)
	for _, tr := range rep.Stages {
		if tr.End.Sub(origin) > wall {
			wall = tr.End.Sub(origin)
		}
	}
	fmt.Printf("stage sum %s, wall clock %s, max %d stages concurrent\n",
		total.Round(time.Microsecond), wall.Round(time.Microsecond), rep.StageConcurrency)
}

func printReport(rep *core.Report, top int) {
	d := rep.Descriptor
	fmt.Printf("=== Dataset characterization: %s ===\n", d.DatasetName)
	fmt.Printf("patients %d · records %d · exam types %d · visits %d · span %d days\n",
		d.NumPatients, d.NumRecords, d.NumExamTypes, d.NumVisits, d.SpanDays)
	fmt.Printf("VSM sparsity %.3f · frequency Gini %.3f · top-20%% coverage %.1f%%\n\n",
		d.VSMSparsity, d.FrequencyGini, d.Top20Coverage*100)

	if rec := rep.Recall; rec != nil {
		if rec.Hit {
			fmt.Printf("=== K-DB recall ===\nwarm-started from prior knowledge: prior Ks %v", rec.PriorKs)
			if len(rec.NarrowedKs) > 0 {
				fmt.Printf(", sweep narrowed to %v", rec.NarrowedKs)
			}
			if rec.SeededCentroids > 0 {
				fmt.Printf(", %d centroids seeded from %s", rec.SeededCentroids, rec.SeedDataset)
			}
			fmt.Println()
			for _, src := range rec.Sources {
				fmt.Printf("  source %s (similarity %.3f, Ks %v)\n", src.Dataset, src.Similarity, src.Ks)
			}
			fmt.Println()
		} else {
			fmt.Println("=== K-DB recall ===\nno similar prior dataset; cold analysis")
			fmt.Println()
		}
	}

	fmt.Println("=== Adaptive partial mining ===")
	for i, s := range rep.Partial.Steps {
		marker := "   "
		if i == rep.Partial.Selected {
			marker = "-> "
		}
		fmt.Printf("%s%.0f%% of exam types (%d features, %.1f%% of rows): rel.diff %.2f%%\n",
			marker, s.Fraction*100, s.NumFeatures, s.RowCoverage*100, s.RelDiff*100)
	}
	fmt.Println()

	fmt.Println("=== Algorithm optimization (K sweep) ===")
	fmt.Printf("%-4s %10s %8s %8s %8s\n", "K", "SSE", "Acc", "Prec", "Rec")
	for _, r := range rep.Sweep.Rows {
		sel := ""
		if r.K == rep.Sweep.BestK {
			sel = "  <- selected"
		}
		fmt.Printf("%-4d %10.2f %7.2f%% %7.2f%% %7.2f%%%s\n",
			r.K, r.SSE, r.Accuracy*100, r.Precision*100, r.Recall*100, sel)
	}
	fmt.Printf("final clustering: K=%d, SSE %.2f, %d iterations\n\n",
		rep.BestClustering.K, rep.BestClustering.SSE, rep.BestClustering.Iterations)

	fmt.Println("=== End-goal recommendations ===")
	for _, rec := range rep.Recommendations {
		status := "not viable"
		if rec.Feasible {
			status = "viable"
		}
		fmt.Printf("[%-9s interest=%-6s %-6s] %s\n    %s\n",
			status, rec.Interest, rec.Source, rec.Goal.Name, rec.Reason)
	}
	fmt.Println()

	fmt.Printf("=== Top %d knowledge items ===\n", top)
	for i, it := range rep.Ranked {
		if i >= top {
			break
		}
		fmt.Printf("%2d. [%-11s] %s\n", i+1, it.Kind, it.Title)
	}
}
