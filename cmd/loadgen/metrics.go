package main

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promDump is one GET /metrics scrape parsed into series → value,
// keyed by the exact exposition text left of the value ("name" or
// `name{label="v",...}`). The daemon's exposition is deterministic
// (families and children sorted), so keys from two scrapes of the same
// daemon always line up for delta arithmetic.
type promDump map[string]float64

// scrapeMetrics fetches and parses the daemon's Prometheus exposition.
func scrapeMetrics(client *http.Client, base string) (promDump, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	dump := promDump{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("GET /metrics: malformed sample %q", line)
		}
		dump[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return dump, nil
}

// hasFamily reports whether the dump carries any sample of the family:
// the bare series, a labeled child, or a histogram's _bucket/_count.
func (d promDump) hasFamily(name string) bool {
	if _, ok := d[name]; ok {
		return true
	}
	for series := range d {
		if strings.HasPrefix(series, name+"{") ||
			strings.HasPrefix(series, name+"_bucket{") ||
			series == name+"_count" {
			return true
		}
	}
	return false
}

// counterDelta is the series' increase between two scrapes.
func counterDelta(before, after promDump, series string) int64 {
	return int64(after[series] - before[series])
}

// histQuantile estimates quantile q of histogram name over the window
// between two scrapes, from the cumulative-bucket deltas: the smallest
// bucket upper bound whose window count covers q, the same estimator
// the obs package uses internally. ok is false when the histogram is
// absent or saw no observations in the window.
func histQuantile(before, after promDump, name string, q float64) (quantile float64, count int64, ok bool) {
	prefix := name + `_bucket{le="`
	type bucket struct{ le, n float64 }
	var buckets []bucket
	for series, v := range after {
		if !strings.HasPrefix(series, prefix) {
			continue
		}
		leStr := strings.TrimSuffix(strings.TrimPrefix(series, prefix), `"}`)
		le := math.Inf(1)
		if leStr != "+Inf" {
			f, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			le = f
		}
		buckets = append(buckets, bucket{le: le, n: v - before[series]})
	}
	if len(buckets) == 0 {
		return 0, 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].n // +Inf bucket is cumulative over all
	if total <= 0 {
		return 0, 0, false
	}
	target := math.Ceil(q * total)
	for _, b := range buckets {
		if b.n >= target {
			return b.le, int64(total), true
		}
	}
	return buckets[len(buckets)-1].le, int64(total), true
}

// admissionOutcomes are the service_admissions_total children folded
// into the snapshot.
var admissionOutcomes = []string{"accepted", "queue_full", "degraded", "invalid", "closed"}

// requiredMetricFamilies is the cross-layer coverage the
// -require-metrics gate asserts: at least one family from every
// instrumented subsystem. All are registered at package init, so a
// healthy daemon exposes each even before traffic.
var requiredMetricFamilies = []string{
	"service_queue_depth",
	"service_admissions_total",
	"service_jobs_total",
	"core_stage_seconds",
	"docstore_wal_commit_seconds",
	"kdb_breaker_mode",
	"repl_frames_behind",
	"stream_appends_total",
}

// metricsSummary folds selected /metrics series into the BENCH
// snapshot: admission-outcome deltas over the run, the final queue
// gauges as the daemon itself reports them, and the WAL group-commit
// fsync latency (p99 over the run's commits; absent for in-memory
// stores, which never commit).
type metricsSummary struct {
	Admissions    map[string]int64 `json:"admissions_by_outcome"`
	QueueDepth    float64          `json:"queue_depth"`
	Running       float64          `json:"running"`
	WALCommits    int64            `json:"wal_commits,omitempty"`
	WALFsyncP99MS float64          `json:"wal_fsync_p99_ms,omitempty"`
	BreakerTrips  int64            `json:"breaker_trips,omitempty"`
}

// foldMetrics condenses a before/after scrape pair into the snapshot's
// metrics block.
func foldMetrics(before, after promDump) *metricsSummary {
	m := &metricsSummary{
		Admissions: map[string]int64{},
		QueueDepth: after["service_queue_depth"],
		Running:    after["service_workers_running"],
	}
	for _, outcome := range admissionOutcomes {
		series := fmt.Sprintf(`service_admissions_total{outcome=%q}`, outcome)
		if d := counterDelta(before, after, series); d != 0 {
			m.Admissions[outcome] = d
		}
	}
	if p99, n, ok := histQuantile(before, after, "docstore_wal_commit_seconds", 0.99); ok {
		m.WALCommits = n
		m.WALFsyncP99MS = p99 * 1000
	}
	m.BreakerTrips = counterDelta(before, after, "kdb_breaker_trips_total")
	return m
}

// checkRequiredMetrics returns the required families missing from the
// dump (empty = pass).
func checkRequiredMetrics(dump promDump) []string {
	var missing []string
	for _, fam := range requiredMetricFamilies {
		if !dump.hasFamily(fam) {
			missing = append(missing, fam)
		}
	}
	return missing
}
