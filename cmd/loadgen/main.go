// Command loadgen drives an adahealthd daemon with synthetic hospital
// traffic and reports end-to-end service latency — the million-patient
// throughput harness behind the BENCH_*_load.json snapshots.
//
//	loadgen -addr http://localhost:8080 -duration 30s -tenants 6
//	loadgen -self -duration 10s -out BENCH_load.json
//
// Traffic model: each tenant is a closed-loop submitter (one job in
// flight at a time — a hospital department waiting for its analysis)
// drawing jobs from a heavy-tailed mix: log sizes follow a bounded
// Pareto (most cohorts are small, a few are 10-20x larger), and each
// job rolls a priority class — interactive (p=10, a clinician
// waiting), standard (p=5, scheduled reporting), or batch (p=0,
// overnight re-analysis). Submission rejections (429 backpressure)
// are counted and retried after a short pause, exactly as a polite
// client would.
//
// Measured per job: admission→terminal latency (the clock starts when
// POST /v1/analyses is sent and stops when the job reports a terminal
// status), bucketed overall and per priority class into p50/p90/p99.
// A sampler polls /healthz on a fixed cadence for queue-depth and
// running-worker gauges. Results land as indented JSON in -out.
//
// With -open-loop the tenants are replaced by Poisson arrival
// processes: each priority class offers jobs at its share of -rate
// (exponential interarrivals), fired without waiting for completions —
// the classic open-loop model that exposes queue growth instead of
// self-throttling with it. Rejections (429/503) drop the arrival
// rather than retrying, so offered vs. achieved rate, per-class SLO
// attainment (latency within the class's slo_ms) and the queue-depth
// growth slope report how far the daemon is from saturation.
//
// With -streams N the mix adds N live-dataset tenants exercising the
// streaming endpoints: each registers a dataset (PUT /v1/datasets/{id})
// and appends visit batches (POST /v1/datasets/{id}/visits) on a fixed
// period, reporting append counts and each stream's final revision and
// drift gauge.
//
// With -self the harness starts an in-process daemon on a loopback
// port and drives it over real HTTP — the CI smoke mode. -min-completed
// and -max-p99 turn the run into a gate: exit status 1 when too few
// jobs completed or the overall p99 exceeds the ceiling.
//
// With -follower (requires -self) the self-hosted daemon gets a
// durable K-DB plus the WAL-shipping leader endpoints, an in-process
// replication follower tails it, and a reader queries the follower's
// GET /v1/knowledge throughout the run — the warm-standby smoke: the
// gate fails when follower queries error or the follower never
// converges with the leader's log.
//
// Profiling under load: start the daemon with -pprof and point pprof
// at it while loadgen runs, e.g.
//
//	adahealthd -addr :8080 -pprof &
//	loadgen -addr http://localhost:8080 -duration 60s &
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=30
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/kdb"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/repl"
	"adahealth/internal/service"
	"adahealth/internal/stream"
	"adahealth/internal/synth"
)

// jobClass is one priority band of the tenant mix. SLOMS is the
// class's completion-latency objective, reported as attainment (the
// fraction of completed jobs within it) in open-loop mode.
type jobClass struct {
	Name     string  `json:"name"`
	Priority int     `json:"priority"`
	Weight   float64 `json:"weight"`
	SLOMS    float64 `json:"slo_ms"`
}

var classes = []jobClass{
	{Name: "interactive", Priority: 10, Weight: 0.2, SLOMS: 5000},
	{Name: "standard", Priority: 5, Weight: 0.5, SLOMS: 15000},
	{Name: "batch", Priority: 0, Weight: 0.3, SLOMS: 60000},
}

// latencyStats summarizes one latency population in milliseconds.
type latencyStats struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// gaugeStats summarizes a sampled gauge series.
type gaugeStats struct {
	Samples int     `json:"samples"`
	Mean    float64 `json:"mean"`
	P99     float64 `json:"p99"`
	Max     int     `json:"max"`
}

// streamResult is one live-dataset tenant's tally: appends accepted
// through POST /v1/datasets/{id}/visits plus the stream's final status
// (revision, drift gauge, any resweep observed) and per-append SLO
// accounting — each append's HTTP round trip measured against the
// -stream-slo objective.
type streamResult struct {
	Dataset  string  `json:"dataset"`
	Appends  int     `json:"appends"`
	Errors   int     `json:"errors"`
	Revision int     `json:"revision,omitempty"`
	Drift    float64 `json:"drift,omitempty"`
	Resweep  string  `json:"resweep_job,omitempty"`

	AppendLatency latencyStats `json:"append_latency"`
	SLOMS         float64      `json:"append_slo_ms,omitempty"`
	SLOAttainment float64      `json:"append_slo_attainment,omitempty"`
}

// result is the BENCH_*_load.json document.
type result struct {
	Timestamp   string                  `json:"timestamp"`
	Addr        string                  `json:"addr"`
	SelfHosted  bool                    `json:"self_hosted"`
	DurationSec float64                 `json:"duration_sec"`
	Tenants     int                     `json:"tenants"`
	Seed        int64                   `json:"seed"`
	Classes     []jobClass              `json:"classes"`
	Submitted   int                     `json:"submitted"`
	Completed   int                     `json:"completed"`
	Failed      int                     `json:"failed"`
	Rejected    int                     `json:"rejected"`
	JobsPerSec  float64                 `json:"jobs_per_sec"`
	Latency     latencyStats            `json:"latency"`
	ByClass     map[string]latencyStats `json:"latency_by_class"`
	QueueDepth  gaugeStats              `json:"queue_depth"`
	Running     gaugeStats              `json:"running"`
	Patients    gaugeStats              `json:"patients_per_job"`

	// Open-loop mode only: offered vs. achieved throughput, per-class
	// SLO attainment, and the queue-depth growth slope over the run.
	OpenLoop          bool               `json:"open_loop,omitempty"`
	OfferedPerSec     float64            `json:"offered_per_sec,omitempty"`
	AchievedPerSec    float64            `json:"achieved_per_sec,omitempty"`
	SLOAttainment     map[string]float64 `json:"slo_attainment,omitempty"`
	QueueGrowthPerSec float64            `json:"queue_growth_per_sec,omitempty"`

	// -streams mode only: per-stream append tallies.
	Streams []streamResult `json:"streams,omitempty"`

	// Metrics folds selected /metrics series (scraped before and after
	// the run) into the snapshot; nil when the daemon exposed none.
	Metrics *metricsSummary `json:"metrics,omitempty"`

	// -follower mode only: the warm-standby reader's tally.
	Follower *followerResult `json:"follower,omitempty"`
}

// followerResult tallies the warm-standby smoke: knowledge queries
// served by the follower during sustained leader traffic, plus the
// follower's final replication gauges.
type followerResult struct {
	Queries      int   `json:"queries"`
	Errors       int   `json:"errors"`
	FramesBehind int64 `json:"frames_behind"`
	Converged    bool  `json:"converged"`
	Bootstraps   int64 `json:"bootstraps"`
	Reconnects   int64 `json:"reconnects"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "daemon base URL (e.g. http://localhost:8080); empty requires -self")
		self     = flag.Bool("self", false, "start an in-process daemon on a loopback port and drive it (CI smoke mode)")
		workers  = flag.Int("workers", 0, "-self daemon worker slots (0 = service default)")
		queue    = flag.Int("queue", 0, "-self daemon queue depth (0 = service default)")
		duration = flag.Duration("duration", 20*time.Second, "submission window (in-flight jobs drain afterwards)")
		tenants  = flag.Int("tenants", 4, "concurrent closed-loop tenant submitters")
		maxJobs  = flag.Int("max-jobs", 0, "total submission budget (0 = duration-bound only)")
		seed     = flag.Int64("seed", 1, "traffic-mix seed")
		fast     = flag.Bool("fast", true, "attach a reduced per-job sweep config so jobs finish in seconds (false = the daemon's full Table I grid)")
		sample   = flag.Duration("sample", 100*time.Millisecond, "queue-depth sampling period")
		out      = flag.String("out", "BENCH_load.json", "result snapshot path (empty = stdout only)")
		minDone  = flag.Int("min-completed", 0, "gate: fail unless at least this many jobs completed")
		maxP99   = flag.Duration("max-p99", 0, "gate: fail when overall p99 latency exceeds this (0 = no gate)")
		openLoop = flag.Bool("open-loop", false, "Poisson arrivals at -rate instead of closed-loop tenants (rejections drop, not retry)")
		rate     = flag.Float64("rate", 2, "open-loop total offered arrival rate in jobs/sec, split across classes by weight")
		streams  = flag.Int("streams", 0, "live-dataset tenants registering and appending via /v1/datasets")
		streamMS = flag.Duration("stream-period", 250*time.Millisecond, "interval between a stream tenant's visit-batch appends")
		streamTO = flag.Duration("stream-slo", 500*time.Millisecond, "per-append latency objective for -streams tenants (attainment reported per stream)")
		follow   = flag.Bool("follower", false, "with -self: replicate the daemon's K-DB to an in-process warm standby and query its /v1/knowledge during the run")
		reqMet   = flag.Bool("require-metrics", false, "gate: fail when GET /metrics is missing, malformed, or lacks a required cross-layer family")
	)
	flag.Parse()

	if *follow && !*self {
		fmt.Fprintln(os.Stderr, "loadgen: -follower requires -self (the smoke needs the leader's store in-process)")
		os.Exit(2)
	}
	base := *addr
	var shutdown func()
	if *self {
		kdbDir := ""
		if *follow {
			dir, err := os.MkdirTemp("", "loadgen-leader-kdb-")
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				os.Exit(1)
			}
			defer os.RemoveAll(dir)
			kdbDir = dir
		}
		var err error
		base, shutdown, err = startSelf(*workers, *queue, *seed, kdbDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: starting in-process daemon: %v\n", err)
			os.Exit(1)
		}
		defer shutdown()
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "loadgen: pass -addr or -self")
		os.Exit(2)
	}

	var followerRes *followerResult
	var stopFollower func() *followerResult
	if *follow {
		var err error
		stopFollower, err = startFollowerSmoke(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: starting follower: %v\n", err)
			os.Exit(1)
		}
	}

	// Bracket the run with /metrics scrapes so counter deltas cover
	// exactly the traffic this run offered.
	scrapeClient := &http.Client{Timeout: 10 * time.Second}
	before, beforeErr := scrapeMetrics(scrapeClient, base)

	res, err := run(base, runConfig{
		duration:     *duration,
		tenants:      *tenants,
		maxJobs:      *maxJobs,
		seed:         *seed,
		fast:         *fast,
		sample:       *sample,
		openLoop:     *openLoop,
		rate:         *rate,
		streams:      *streams,
		streamPeriod: *streamMS,
		streamSLO:    *streamTO,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	res.SelfHosted = *self

	after, afterErr := scrapeMetrics(scrapeClient, base)
	var missingFamilies []string
	switch {
	case beforeErr == nil && afterErr == nil:
		res.Metrics = foldMetrics(before, after)
		missingFamilies = checkRequiredMetrics(after)
	case *reqMet:
		// fall through to the gate below with the scrape error intact
	}
	if stopFollower != nil {
		followerRes = stopFollower()
		res.Follower = followerRes
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: encoding result: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	fmt.Printf("loadgen: %d submitted, %d completed, %d failed, %d rejected in %.1fs (%.2f jobs/s)\n",
		res.Submitted, res.Completed, res.Failed, res.Rejected, res.DurationSec, res.JobsPerSec)
	fmt.Printf("loadgen: latency p50=%.0fms p90=%.0fms p99=%.0fms max=%.0fms; queue depth mean=%.1f max=%d\n",
		res.Latency.P50MS, res.Latency.P90MS, res.Latency.P99MS, res.Latency.MaxMS,
		res.QueueDepth.Mean, res.QueueDepth.Max)
	if res.OpenLoop {
		fmt.Printf("loadgen: open-loop offered=%.2f/s achieved=%.2f/s queue growth=%.3f/s\n",
			res.OfferedPerSec, res.AchievedPerSec, res.QueueGrowthPerSec)
		for _, c := range classes {
			if att, ok := res.SLOAttainment[c.Name]; ok {
				fmt.Printf("loadgen: SLO %-11s %.0fms attainment %.1f%%\n", c.Name, c.SLOMS, att*100)
			}
		}
	}
	for _, s := range res.Streams {
		fmt.Printf("loadgen: stream %s: %d appends, %d errors, revision %d, drift %.3f, append p99=%.0fms (SLO %.0fms attainment %.1f%%)\n",
			s.Dataset, s.Appends, s.Errors, s.Revision, s.Drift,
			s.AppendLatency.P99MS, s.SLOMS, s.SLOAttainment*100)
	}
	if m := res.Metrics; m != nil {
		fmt.Printf("loadgen: metrics: admissions %v; queue depth %.0f; breaker trips %d\n",
			m.Admissions, m.QueueDepth, m.BreakerTrips)
		if m.WALCommits > 0 {
			fmt.Printf("loadgen: metrics: %d WAL group commits, fsync p99=%.1fms\n",
				m.WALCommits, m.WALFsyncP99MS)
		}
	}
	if followerRes != nil {
		fmt.Printf("loadgen: follower: %d queries, %d errors, frames behind %d, converged=%v (bootstraps=%d reconnects=%d)\n",
			followerRes.Queries, followerRes.Errors, followerRes.FramesBehind,
			followerRes.Converged, followerRes.Bootstraps, followerRes.Reconnects)
	}
	if *out != "" {
		fmt.Printf("loadgen: snapshot written to %s\n", *out)
	}

	failed := false
	if *minDone > 0 && res.Completed < *minDone {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: completed %d < min-completed %d\n", res.Completed, *minDone)
		failed = true
	}
	if *maxP99 > 0 && res.Latency.P99MS > float64(maxP99.Milliseconds()) {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: p99 %.0fms > max-p99 %dms\n", res.Latency.P99MS, maxP99.Milliseconds())
		failed = true
	}
	if followerRes != nil {
		if followerRes.Queries == 0 || followerRes.Errors > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: follower served %d queries with %d errors\n",
				followerRes.Queries, followerRes.Errors)
			failed = true
		}
		if !followerRes.Converged {
			fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: follower never converged (frames behind %d)\n",
				followerRes.FramesBehind)
			failed = true
		}
	}
	if *reqMet {
		switch {
		case beforeErr != nil:
			fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: pre-run metrics scrape: %v\n", beforeErr)
			failed = true
		case afterErr != nil:
			fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: post-run metrics scrape: %v\n", afterErr)
			failed = true
		case len(missingFamilies) > 0:
			fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: /metrics missing families: %v\n", missingFamilies)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// startSelf boots an in-process daemon on a loopback port, serving the
// full API surface: job endpoints plus the live-dataset routes. A
// non-empty kdbDir makes the K-DB durable and mounts the replication
// leader endpoints over it (the -follower smoke's leader).
func startSelf(workers, queue int, seed int64, kdbDir string) (base string, shutdown func(), err error) {
	svc, err := service.New(service.Config{
		Engine:     core.Config{Seed: seed, KDBDir: kdbDir},
		Workers:    workers,
		QueueDepth: queue,
	})
	if err != nil {
		return "", nil, err
	}
	mgr, err := stream.NewManager(stream.Config{Service: svc})
	if err != nil {
		_ = svc.Close()
		return "", nil, err
	}
	handler := stream.Handler(svc, mgr)
	if kdbDir != "" {
		leaderH, err := repl.NewLeaderHandler(svc.Engine().KDB().Store(), repl.LeaderOptions{})
		if err != nil {
			_ = svc.Close()
			return "", nil, err
		}
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/v1/replication/", leaderH)
		handler = mux
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = svc.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = svc.Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// startFollowerSmoke attaches an in-process replication follower to
// the leader at base and starts a reader querying the follower's
// GET /v1/knowledge every 250ms. The returned stop function ends the
// reader, waits for the follower to drain its replication backlog,
// and reports the tally.
func startFollowerSmoke(base string) (stop func() *followerResult, err error) {
	dir, err := os.MkdirTemp("", "loadgen-follower-kdb-")
	if err != nil {
		return nil, err
	}
	f, err := repl.OpenFollower(repl.FollowerOptions{LeaderURL: base, Dir: dir})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.Start(ctx)
	fkb := kdb.Follower(f.Store())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		_ = f.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	srv := &http.Server{Handler: repl.NewFollowerHandler(f, fkb)}
	go func() { _ = srv.Serve(ln) }()
	followerBase := "http://" + ln.Addr().String()

	var (
		res      followerResult
		mu       sync.Mutex
		stopCh   = make(chan struct{})
		readerWG sync.WaitGroup
	)
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		client := &http.Client{Timeout: 5 * time.Second}
		ticker := time.NewTicker(250 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-ticker.C:
			}
			resp, err := client.Get(followerBase + "/v1/knowledge?limit=5")
			mu.Lock()
			res.Queries++
			if err != nil || resp.StatusCode != http.StatusOK {
				res.Errors++
			}
			mu.Unlock()
			if err == nil {
				_ = resp.Body.Close()
			}
		}
	}()

	return func() *followerResult {
		close(stopCh)
		readerWG.Wait()
		// Give the follower a moment to drain the tail the run just
		// committed, then snapshot the gauges.
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if lag := f.Lag(); lag.FramesBehind == 0 && lag.Epoch >= 0 {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		lag := f.Lag()
		mu.Lock()
		res.FramesBehind = lag.FramesBehind
		res.Converged = lag.FramesBehind == 0 && lag.Epoch >= 0
		res.Bootstraps = lag.Bootstraps
		res.Reconnects = lag.Reconnects
		out := res
		mu.Unlock()
		ctxSh, cancelSh := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelSh()
		_ = srv.Shutdown(ctxSh)
		cancel()
		_ = f.Close()
		os.RemoveAll(dir)
		return &out
	}, nil
}

type runConfig struct {
	duration     time.Duration
	tenants      int
	maxJobs      int
	seed         int64
	fast         bool
	sample       time.Duration
	openLoop     bool
	rate         float64
	streams      int
	streamPeriod time.Duration
	streamSLO    time.Duration
}

// jobOutcome is one completed submission's measurement.
type jobOutcome struct {
	class    string
	latency  time.Duration
	patients int
	failed   bool
}

func run(base string, cfg runConfig) (*result, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	if err := ping(client, base); err != nil {
		return nil, fmt.Errorf("daemon unreachable at %s: %w", base, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	var (
		mu        sync.Mutex
		outcomes  []jobOutcome
		submitted int
		rejected  int
	)
	var budgetLeft *int
	if cfg.maxJobs > 0 {
		n := cfg.maxJobs
		budgetLeft = &n
	}
	takeBudget := func() bool {
		if budgetLeft == nil {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		if *budgetLeft == 0 {
			return false
		}
		*budgetLeft--
		return true
	}

	// Queue-depth sampler: /healthz on a fixed cadence until every
	// tenant drained.
	sampleCtx, stopSampler := context.WithCancel(context.Background())
	defer stopSampler()
	var (
		sampleMu     sync.Mutex
		queueSamples []int
		runSamples   []int
	)
	go func() {
		tick := time.NewTicker(cfg.sample)
		defer tick.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-tick.C:
				if q, r, err := health(client, base); err == nil {
					sampleMu.Lock()
					queueSamples = append(queueSamples, q)
					runSamples = append(runSamples, r)
					sampleMu.Unlock()
				}
			}
		}
	}()

	start := time.Now()

	// Live-dataset tenants ride alongside either traffic model,
	// exercising the streaming endpoints for the submission window.
	streamCh := make(chan streamResult, cfg.streams)
	var streamWG sync.WaitGroup
	for t := 0; t < cfg.streams; t++ {
		streamWG.Add(1)
		go func(t int) {
			defer streamWG.Done()
			streamCh <- streamTenant(ctx, client, base, t, cfg.seed, cfg.streamPeriod, cfg.streamSLO)
		}(t)
	}

	offered := 0
	var wg sync.WaitGroup
	if cfg.openLoop {
		// One Poisson arrival process per class at its share of the
		// total rate; arrivals fire without waiting for completions.
		for ci, c := range classes {
			classRate := cfg.rate * c.Weight
			if classRate <= 0 {
				continue
			}
			wg.Add(1)
			go func(ci int, c jobClass, classRate float64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.seed + int64(ci)*7_368_787))
				var inflight sync.WaitGroup
				defer inflight.Wait()
				for i := 0; ; i++ {
					wait := time.Duration(rng.ExpFloat64() / classRate * float64(time.Second))
					select {
					case <-ctx.Done():
						return
					case <-time.After(wait):
					}
					if !takeBudget() {
						return
					}
					patients := paretoPatients(rng)
					name := fmt.Sprintf("load-%s-a%d", c.Name, i)
					jobSeed := cfg.seed + int64(ci)*1_000_003 + int64(i)
					mu.Lock()
					offered++
					mu.Unlock()
					inflight.Add(1)
					go func() {
						defer inflight.Done()
						outcome, rej, err := submitAndWait(ctx, client, base, submitSpec{
							name: name, class: c, patients: patients,
							seed: jobSeed, fast: cfg.fast, noRetry: true,
						})
						mu.Lock()
						defer mu.Unlock()
						rejected += rej
						if err == nil {
							submitted++
							outcomes = append(outcomes, outcome)
						}
					}()
				}
			}(ci, c, classRate)
		}
	} else {
		for t := 0; t < cfg.tenants; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.seed + int64(t)*1_000_003))
				for i := 0; ctx.Err() == nil; i++ {
					if !takeBudget() {
						return
					}
					class := rollClass(rng)
					patients := paretoPatients(rng)
					name := fmt.Sprintf("load-t%d-j%d", t, i)
					outcome, rej, err := submitAndWait(ctx, client, base, submitSpec{
						name: name, class: class, patients: patients,
						seed: cfg.seed + int64(t*1000+i), fast: cfg.fast,
					})
					mu.Lock()
					rejected += rej
					if err == nil {
						submitted++
						outcomes = append(outcomes, outcome)
					}
					mu.Unlock()
					if err != nil {
						return // ctx expired mid-flight; in-flight job measured by no one
					}
				}
			}(t)
		}
	}
	wg.Wait()
	streamWG.Wait()
	close(streamCh)
	stopSampler()
	elapsed := time.Since(start)

	res := &result{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Addr:        base,
		DurationSec: elapsed.Seconds(),
		Tenants:     cfg.tenants,
		Seed:        cfg.seed,
		Classes:     classes,
		Submitted:   submitted,
		Rejected:    rejected,
		ByClass:     map[string]latencyStats{},
	}
	var all []time.Duration
	byClass := map[string][]time.Duration{}
	var patients []int
	for _, o := range outcomes {
		if o.failed {
			res.Failed++
			continue
		}
		res.Completed++
		all = append(all, o.latency)
		byClass[o.class] = append(byClass[o.class], o.latency)
		patients = append(patients, o.patients)
	}
	res.JobsPerSec = float64(res.Completed) / elapsed.Seconds()
	res.Latency = summarize(all)
	for class, ds := range byClass {
		res.ByClass[class] = summarize(ds)
	}
	sampleMu.Lock()
	res.QueueDepth = summarizeGauge(queueSamples)
	res.Running = summarizeGauge(runSamples)
	res.QueueGrowthPerSec = growthPerSec(queueSamples, cfg.sample)
	sampleMu.Unlock()
	res.Patients = summarizeGauge(patients)

	if cfg.openLoop {
		res.OpenLoop = true
		res.OfferedPerSec = float64(offered) / elapsed.Seconds()
		res.AchievedPerSec = res.JobsPerSec
		res.SLOAttainment = map[string]float64{}
		for _, c := range classes {
			ds := byClass[c.Name]
			if len(ds) == 0 {
				continue
			}
			within := 0
			for _, d := range ds {
				if float64(d)/float64(time.Millisecond) <= c.SLOMS {
					within++
				}
			}
			res.SLOAttainment[c.Name] = float64(within) / float64(len(ds))
		}
	}
	for s := range streamCh {
		res.Streams = append(res.Streams, s)
	}
	sort.Slice(res.Streams, func(i, j int) bool { return res.Streams[i].Dataset < res.Streams[j].Dataset })
	return res, nil
}

// growthPerSec is the least-squares slope of a gauge series sampled on
// a fixed period, in gauge units per second — positive under an
// open-loop overload means the queue grows without bound.
func growthPerSec(xs []int, period time.Duration) float64 {
	if len(xs) < 2 || period <= 0 {
		return 0
	}
	n := float64(len(xs))
	var sumT, sumX, sumTT, sumTX float64
	for i, x := range xs {
		t := float64(i) * period.Seconds()
		sumT += t
		sumX += float64(x)
		sumTT += t * t
		sumTX += t * float64(x)
	}
	den := n*sumTT - sumT*sumT
	if den == 0 {
		return 0
	}
	return (n*sumTX - sumT*sumX) / den
}

// streamTenant registers one live dataset and appends visit batches on
// a fixed period until the submission window closes: the stream-append
// slice of the tenant mix, driven entirely through the public
// /v1/datasets endpoints.
func streamTenant(ctx context.Context, client *http.Client, base string, t int, seed int64, period, slo time.Duration) streamResult {
	name := fmt.Sprintf("load-stream-t%d", t)
	res := streamResult{Dataset: name, SLOMS: float64(slo) / float64(time.Millisecond)}
	synthCfg := synth.SmallConfig()
	synthCfg.Seed = seed + int64(t)*7919
	synthCfg.NumPatients = 60
	synthCfg.TargetRecords = 600
	log, err := synth.Generate(synthCfg)
	if err != nil {
		res.Errors++
		return res
	}
	if err := doJSON(ctx, client, http.MethodPut, base+"/v1/datasets/"+name,
		stream.RegisterRequest{Log: log}, http.StatusCreated, nil); err != nil {
		res.Errors++
		return res
	}
	rng := rand.New(rand.NewSource(synthCfg.Seed))
	day := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var appendLats []time.Duration
	withinSLO := 0
	for i := 0; ctx.Err() == nil; i++ {
		batch := visitBatch(log, rng, t, i, &day)
		var st stream.DatasetStatus
		t0 := time.Now()
		err := doJSON(ctx, client, http.MethodPost, base+"/v1/datasets/"+name+"/visits",
			batch, http.StatusAccepted, &st)
		lat := time.Since(t0)
		switch {
		case err != nil && ctx.Err() != nil:
			// window closed mid-append; not an error
		case err != nil:
			res.Errors++
		default:
			res.Appends++
			res.Revision = st.Revision
			res.Drift = st.Drift
			if st.ResweepJob != "" {
				res.Resweep = st.ResweepJob
			}
			// The HTTP round trip covers the whole append→model-updated
			// path (the stream recluster is synchronous inside the
			// append), so this latency IS the freshness SLO.
			appendLats = append(appendLats, lat)
			if slo <= 0 || lat <= slo {
				withinSLO++
			}
		}
		select {
		case <-ctx.Done():
		case <-time.After(period):
		}
	}
	res.AppendLatency = summarize(appendLats)
	if res.Appends > 0 {
		res.SLOAttainment = float64(withinSLO) / float64(res.Appends)
	}
	return res
}

// visitBatch fabricates one append: a few new patients plus a visit
// trail over the dataset's existing exam catalog.
func visitBatch(log *dataset.Log, rng *rand.Rand, t, i int, day *time.Time) stream.AppendRequest {
	var req stream.AppendRequest
	for p := 0; p < 3; p++ {
		id := fmt.Sprintf("LSP-t%d-%d-%d", t, i, p)
		req.Patients = append(req.Patients, dataset.Patient{ID: id, Age: 20 + rng.Intn(60)})
		for r := 0; r < 5; r++ {
			*day = day.Add(6 * time.Hour)
			exam := log.Exams[rng.Intn(len(log.Exams))]
			req.Records = append(req.Records, dataset.Record{
				PatientID: id, ExamCode: exam.Code, Date: *day,
			})
		}
	}
	return req
}

// doJSON performs one JSON request/response round trip, requiring the
// given status code.
func doJSON(ctx context.Context, client *http.Client, method, url string, in any, want int, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s %s: HTTP %d", method, url, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// rollClass draws a priority class from the weighted mix.
func rollClass(rng *rand.Rand) jobClass {
	u := rng.Float64()
	for _, c := range classes {
		if u < c.Weight {
			return c
		}
		u -= c.Weight
	}
	return classes[len(classes)-1]
}

// paretoPatients draws a cohort size from a bounded Pareto (alpha=1.5,
// xm=150): median ~240 patients, p99 ~3000 — most cohorts small, a
// heavy tail of hospital-scale ones.
func paretoPatients(rng *rand.Rand) int {
	u := rng.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	n := int(150 * math.Pow(u, -1/1.5))
	if n > 3000 {
		n = 3000
	}
	return n
}

type submitSpec struct {
	name     string
	class    jobClass
	patients int
	seed     int64
	fast     bool
	// noRetry drops the arrival on 429/503 instead of retrying — the
	// open-loop model, where a rejection is lost offered load.
	noRetry bool
}

// submitAndWait posts one synthetic-log job and polls it to a terminal
// status. The latency clock covers admission through completion —
// queue wait included, exactly what a caller experiences. Returns the
// number of 429/503 rejections absorbed before admission.
func submitAndWait(ctx context.Context, client *http.Client, base string, spec submitSpec) (jobOutcome, int, error) {
	synthCfg := synth.SmallConfig()
	synthCfg.Seed = spec.seed
	synthCfg.NumPatients = spec.patients
	synthCfg.TargetRecords = 15 * spec.patients
	req := service.SubmitRequest{
		Name:      spec.name,
		Synthetic: &synthCfg,
		Seed:      &spec.seed,
		Priority:  spec.class.Priority,
		Labels:    map[string]string{"class": spec.class.Name, "loadgen": "1"},
	}
	if spec.fast {
		req.Config = &core.Config{
			Seed:    spec.seed,
			Partial: partial.Config{Ks: []int{4}},
			Sweep:   optimize.SweepConfig{Ks: []int{3, 4, 5}, CVFolds: 4},
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return jobOutcome{}, 0, err
	}

	rejections := 0
	start := time.Now()
	var id string
	for {
		if err := ctx.Err(); err != nil {
			return jobOutcome{}, rejections, err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/analyses", bytes.NewReader(body))
		if err != nil {
			return jobOutcome{}, rejections, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(hreq)
		if err != nil {
			return jobOutcome{}, rejections, err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			rejections++
			if spec.noRetry {
				return jobOutcome{}, rejections, fmt.Errorf("submit %s: rejected", spec.name)
			}
			select {
			case <-ctx.Done():
				return jobOutcome{}, rejections, ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		var sub service.SubmitResponse
		derr := json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return jobOutcome{}, rejections, fmt.Errorf("submit %s: HTTP %d", spec.name, resp.StatusCode)
		}
		if derr != nil {
			return jobOutcome{}, rejections, derr
		}
		id = sub.ID
		break
	}

	// Poll to terminal. The submission window closing does not abandon
	// an admitted job — it still occupies the daemon, so it is measured.
	for {
		st, err := jobStatus(client, base, id)
		if err != nil {
			return jobOutcome{}, rejections, err
		}
		if st.Terminal() {
			return jobOutcome{
				class:    spec.class.Name,
				latency:  time.Since(start),
				patients: spec.patients,
				failed:   st != service.StatusDone,
			}, rejections, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func jobStatus(client *http.Client, base, id string) (service.Status, error) {
	resp, err := client.Get(base + "/v1/analyses/" + id)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st service.JobState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	return st.Status, nil
}

func ping(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// health reads the /healthz queue and running gauges.
func health(client *http.Client, base string) (queued, running int, err error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Queued  int `json:"queued"`
		Running int `json:"running"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0, err
	}
	return st.Queued, st.Running, nil
}

func summarize(ds []time.Duration) latencyStats {
	if len(ds) == 0 {
		return latencyStats{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return latencyStats{
		Count: len(ds),
		P50MS: ms(percentileDur(ds, 0.50)),
		P90MS: ms(percentileDur(ds, 0.90)),
		P99MS: ms(percentileDur(ds, 0.99)),
		MaxMS: ms(ds[len(ds)-1]),
	}
}

func percentileDur(sorted []time.Duration, q float64) time.Duration {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func summarizeGauge(xs []int) gaugeStats {
	if len(xs) == 0 {
		return gaugeStats{}
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	sum := 0
	for _, x := range sorted {
		sum += x
	}
	idx := int(math.Ceil(0.99*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return gaugeStats{
		Samples: len(sorted),
		Mean:    float64(sum) / float64(len(sorted)),
		P99:     float64(sorted[idx]),
		Max:     sorted[len(sorted)-1],
	}
}
