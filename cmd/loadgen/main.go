// Command loadgen drives an adahealthd daemon with synthetic hospital
// traffic and reports end-to-end service latency — the million-patient
// throughput harness behind the BENCH_*_load.json snapshots.
//
//	loadgen -addr http://localhost:8080 -duration 30s -tenants 6
//	loadgen -self -duration 10s -out BENCH_load.json
//
// Traffic model: each tenant is a closed-loop submitter (one job in
// flight at a time — a hospital department waiting for its analysis)
// drawing jobs from a heavy-tailed mix: log sizes follow a bounded
// Pareto (most cohorts are small, a few are 10-20x larger), and each
// job rolls a priority class — interactive (p=10, a clinician
// waiting), standard (p=5, scheduled reporting), or batch (p=0,
// overnight re-analysis). Submission rejections (429 backpressure)
// are counted and retried after a short pause, exactly as a polite
// client would.
//
// Measured per job: admission→terminal latency (the clock starts when
// POST /v1/analyses is sent and stops when the job reports a terminal
// status), bucketed overall and per priority class into p50/p90/p99.
// A sampler polls /healthz on a fixed cadence for queue-depth and
// running-worker gauges. Results land as indented JSON in -out.
//
// With -self the harness starts an in-process daemon on a loopback
// port and drives it over real HTTP — the CI smoke mode. -min-completed
// and -max-p99 turn the run into a gate: exit status 1 when too few
// jobs completed or the overall p99 exceeds the ceiling.
//
// Profiling under load: start the daemon with -pprof and point pprof
// at it while loadgen runs, e.g.
//
//	adahealthd -addr :8080 -pprof &
//	loadgen -addr http://localhost:8080 -duration 60s &
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=30
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/service"
	"adahealth/internal/synth"
)

// jobClass is one priority band of the tenant mix.
type jobClass struct {
	Name     string  `json:"name"`
	Priority int     `json:"priority"`
	Weight   float64 `json:"weight"`
}

var classes = []jobClass{
	{Name: "interactive", Priority: 10, Weight: 0.2},
	{Name: "standard", Priority: 5, Weight: 0.5},
	{Name: "batch", Priority: 0, Weight: 0.3},
}

// latencyStats summarizes one latency population in milliseconds.
type latencyStats struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// gaugeStats summarizes a sampled gauge series.
type gaugeStats struct {
	Samples int     `json:"samples"`
	Mean    float64 `json:"mean"`
	P99     float64 `json:"p99"`
	Max     int     `json:"max"`
}

// result is the BENCH_*_load.json document.
type result struct {
	Timestamp   string                  `json:"timestamp"`
	Addr        string                  `json:"addr"`
	SelfHosted  bool                    `json:"self_hosted"`
	DurationSec float64                 `json:"duration_sec"`
	Tenants     int                     `json:"tenants"`
	Seed        int64                   `json:"seed"`
	Classes     []jobClass              `json:"classes"`
	Submitted   int                     `json:"submitted"`
	Completed   int                     `json:"completed"`
	Failed      int                     `json:"failed"`
	Rejected    int                     `json:"rejected"`
	JobsPerSec  float64                 `json:"jobs_per_sec"`
	Latency     latencyStats            `json:"latency"`
	ByClass     map[string]latencyStats `json:"latency_by_class"`
	QueueDepth  gaugeStats              `json:"queue_depth"`
	Running     gaugeStats              `json:"running"`
	Patients    gaugeStats              `json:"patients_per_job"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "daemon base URL (e.g. http://localhost:8080); empty requires -self")
		self     = flag.Bool("self", false, "start an in-process daemon on a loopback port and drive it (CI smoke mode)")
		workers  = flag.Int("workers", 0, "-self daemon worker slots (0 = service default)")
		queue    = flag.Int("queue", 0, "-self daemon queue depth (0 = service default)")
		duration = flag.Duration("duration", 20*time.Second, "submission window (in-flight jobs drain afterwards)")
		tenants  = flag.Int("tenants", 4, "concurrent closed-loop tenant submitters")
		maxJobs  = flag.Int("max-jobs", 0, "total submission budget (0 = duration-bound only)")
		seed     = flag.Int64("seed", 1, "traffic-mix seed")
		fast     = flag.Bool("fast", true, "attach a reduced per-job sweep config so jobs finish in seconds (false = the daemon's full Table I grid)")
		sample   = flag.Duration("sample", 100*time.Millisecond, "queue-depth sampling period")
		out      = flag.String("out", "BENCH_load.json", "result snapshot path (empty = stdout only)")
		minDone  = flag.Int("min-completed", 0, "gate: fail unless at least this many jobs completed")
		maxP99   = flag.Duration("max-p99", 0, "gate: fail when overall p99 latency exceeds this (0 = no gate)")
	)
	flag.Parse()

	base := *addr
	var shutdown func()
	if *self {
		var err error
		base, shutdown, err = startSelf(*workers, *queue, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: starting in-process daemon: %v\n", err)
			os.Exit(1)
		}
		defer shutdown()
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "loadgen: pass -addr or -self")
		os.Exit(2)
	}

	res, err := run(base, runConfig{
		duration: *duration,
		tenants:  *tenants,
		maxJobs:  *maxJobs,
		seed:     *seed,
		fast:     *fast,
		sample:   *sample,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	res.SelfHosted = *self

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: encoding result: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	fmt.Printf("loadgen: %d submitted, %d completed, %d failed, %d rejected in %.1fs (%.2f jobs/s)\n",
		res.Submitted, res.Completed, res.Failed, res.Rejected, res.DurationSec, res.JobsPerSec)
	fmt.Printf("loadgen: latency p50=%.0fms p90=%.0fms p99=%.0fms max=%.0fms; queue depth mean=%.1f max=%d\n",
		res.Latency.P50MS, res.Latency.P90MS, res.Latency.P99MS, res.Latency.MaxMS,
		res.QueueDepth.Mean, res.QueueDepth.Max)
	if *out != "" {
		fmt.Printf("loadgen: snapshot written to %s\n", *out)
	}

	failed := false
	if *minDone > 0 && res.Completed < *minDone {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: completed %d < min-completed %d\n", res.Completed, *minDone)
		failed = true
	}
	if *maxP99 > 0 && res.Latency.P99MS > float64(maxP99.Milliseconds()) {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: p99 %.0fms > max-p99 %dms\n", res.Latency.P99MS, maxP99.Milliseconds())
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// startSelf boots an in-process daemon on a loopback port.
func startSelf(workers, queue int, seed int64) (base string, shutdown func(), err error) {
	svc, err := service.New(service.Config{
		Engine:     core.Config{Seed: seed},
		Workers:    workers,
		QueueDepth: queue,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = svc.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}
	go func() { _ = srv.Serve(ln) }()
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = svc.Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

type runConfig struct {
	duration time.Duration
	tenants  int
	maxJobs  int
	seed     int64
	fast     bool
	sample   time.Duration
}

// jobOutcome is one completed submission's measurement.
type jobOutcome struct {
	class    string
	latency  time.Duration
	patients int
	failed   bool
}

func run(base string, cfg runConfig) (*result, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	if err := ping(client, base); err != nil {
		return nil, fmt.Errorf("daemon unreachable at %s: %w", base, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	var (
		mu        sync.Mutex
		outcomes  []jobOutcome
		submitted int
		rejected  int
	)
	var budgetLeft *int
	if cfg.maxJobs > 0 {
		n := cfg.maxJobs
		budgetLeft = &n
	}
	takeBudget := func() bool {
		if budgetLeft == nil {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		if *budgetLeft == 0 {
			return false
		}
		*budgetLeft--
		return true
	}

	// Queue-depth sampler: /healthz on a fixed cadence until every
	// tenant drained.
	sampleCtx, stopSampler := context.WithCancel(context.Background())
	defer stopSampler()
	var (
		sampleMu     sync.Mutex
		queueSamples []int
		runSamples   []int
	)
	go func() {
		tick := time.NewTicker(cfg.sample)
		defer tick.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-tick.C:
				if q, r, err := health(client, base); err == nil {
					sampleMu.Lock()
					queueSamples = append(queueSamples, q)
					runSamples = append(runSamples, r)
					sampleMu.Unlock()
				}
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < cfg.tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(t)*1_000_003))
			for i := 0; ctx.Err() == nil; i++ {
				if !takeBudget() {
					return
				}
				class := rollClass(rng)
				patients := paretoPatients(rng)
				name := fmt.Sprintf("load-t%d-j%d", t, i)
				outcome, rej, err := submitAndWait(ctx, client, base, submitSpec{
					name: name, class: class, patients: patients,
					seed: cfg.seed + int64(t*1000+i), fast: cfg.fast,
				})
				mu.Lock()
				rejected += rej
				if err == nil {
					submitted++
					outcomes = append(outcomes, outcome)
				}
				mu.Unlock()
				if err != nil {
					return // ctx expired mid-flight; in-flight job measured by no one
				}
			}
		}(t)
	}
	wg.Wait()
	stopSampler()
	elapsed := time.Since(start)

	res := &result{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Addr:        base,
		DurationSec: elapsed.Seconds(),
		Tenants:     cfg.tenants,
		Seed:        cfg.seed,
		Classes:     classes,
		Submitted:   submitted,
		Rejected:    rejected,
		ByClass:     map[string]latencyStats{},
	}
	var all []time.Duration
	byClass := map[string][]time.Duration{}
	var patients []int
	for _, o := range outcomes {
		if o.failed {
			res.Failed++
			continue
		}
		res.Completed++
		all = append(all, o.latency)
		byClass[o.class] = append(byClass[o.class], o.latency)
		patients = append(patients, o.patients)
	}
	res.JobsPerSec = float64(res.Completed) / elapsed.Seconds()
	res.Latency = summarize(all)
	for class, ds := range byClass {
		res.ByClass[class] = summarize(ds)
	}
	sampleMu.Lock()
	res.QueueDepth = summarizeGauge(queueSamples)
	res.Running = summarizeGauge(runSamples)
	sampleMu.Unlock()
	res.Patients = summarizeGauge(patients)
	return res, nil
}

// rollClass draws a priority class from the weighted mix.
func rollClass(rng *rand.Rand) jobClass {
	u := rng.Float64()
	for _, c := range classes {
		if u < c.Weight {
			return c
		}
		u -= c.Weight
	}
	return classes[len(classes)-1]
}

// paretoPatients draws a cohort size from a bounded Pareto (alpha=1.5,
// xm=150): median ~240 patients, p99 ~3000 — most cohorts small, a
// heavy tail of hospital-scale ones.
func paretoPatients(rng *rand.Rand) int {
	u := rng.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	n := int(150 * math.Pow(u, -1/1.5))
	if n > 3000 {
		n = 3000
	}
	return n
}

type submitSpec struct {
	name     string
	class    jobClass
	patients int
	seed     int64
	fast     bool
}

// submitAndWait posts one synthetic-log job and polls it to a terminal
// status. The latency clock covers admission through completion —
// queue wait included, exactly what a caller experiences. Returns the
// number of 429/503 rejections absorbed before admission.
func submitAndWait(ctx context.Context, client *http.Client, base string, spec submitSpec) (jobOutcome, int, error) {
	synthCfg := synth.SmallConfig()
	synthCfg.Seed = spec.seed
	synthCfg.NumPatients = spec.patients
	synthCfg.TargetRecords = 15 * spec.patients
	req := service.SubmitRequest{
		Name:      spec.name,
		Synthetic: &synthCfg,
		Seed:      &spec.seed,
		Priority:  spec.class.Priority,
		Labels:    map[string]string{"class": spec.class.Name, "loadgen": "1"},
	}
	if spec.fast {
		req.Config = &core.Config{
			Seed:    spec.seed,
			Partial: partial.Config{Ks: []int{4}},
			Sweep:   optimize.SweepConfig{Ks: []int{3, 4, 5}, CVFolds: 4},
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return jobOutcome{}, 0, err
	}

	rejections := 0
	start := time.Now()
	var id string
	for {
		if err := ctx.Err(); err != nil {
			return jobOutcome{}, rejections, err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/analyses", bytes.NewReader(body))
		if err != nil {
			return jobOutcome{}, rejections, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(hreq)
		if err != nil {
			return jobOutcome{}, rejections, err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			rejections++
			select {
			case <-ctx.Done():
				return jobOutcome{}, rejections, ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		var sub service.SubmitResponse
		derr := json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return jobOutcome{}, rejections, fmt.Errorf("submit %s: HTTP %d", spec.name, resp.StatusCode)
		}
		if derr != nil {
			return jobOutcome{}, rejections, derr
		}
		id = sub.ID
		break
	}

	// Poll to terminal. The submission window closing does not abandon
	// an admitted job — it still occupies the daemon, so it is measured.
	for {
		st, err := jobStatus(client, base, id)
		if err != nil {
			return jobOutcome{}, rejections, err
		}
		if st.Terminal() {
			return jobOutcome{
				class:    spec.class.Name,
				latency:  time.Since(start),
				patients: spec.patients,
				failed:   st != service.StatusDone,
			}, rejections, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func jobStatus(client *http.Client, base, id string) (service.Status, error) {
	resp, err := client.Get(base + "/v1/analyses/" + id)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st service.JobState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	return st.Status, nil
}

func ping(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// health reads the /healthz queue and running gauges.
func health(client *http.Client, base string) (queued, running int, err error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Queued  int `json:"queued"`
		Running int `json:"running"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0, err
	}
	return st.Queued, st.Running, nil
}

func summarize(ds []time.Duration) latencyStats {
	if len(ds) == 0 {
		return latencyStats{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return latencyStats{
		Count: len(ds),
		P50MS: ms(percentileDur(ds, 0.50)),
		P90MS: ms(percentileDur(ds, 0.90)),
		P99MS: ms(percentileDur(ds, 0.99)),
		MaxMS: ms(ds[len(ds)-1]),
	}
}

func percentileDur(sorted []time.Duration, q float64) time.Duration {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func summarizeGauge(xs []int) gaugeStats {
	if len(xs) == 0 {
		return gaugeStats{}
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	sum := 0
	for _, x := range sorted {
		sum += x
	}
	idx := int(math.Ceil(0.99*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return gaugeStats{
		Samples: len(sorted),
		Mean:    float64(sum) / float64(len(sorted)),
		P99:     float64(sorted[idx]),
		Max:     sorted[len(sorted)-1],
	}
}
