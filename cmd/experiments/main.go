// Command experiments regenerates every table and figure of the
// paper's evaluation:
//
//	experiments -table1          # Table I (optimization metrics)
//	experiments -partial         # §IV-B partial-mining series
//	experiments -arch            # Figure 1 (architecture)
//	experiments -all             # everything
//	experiments -scale small     # fast smoke run
//	experiments -timeout 2m ...  # bound the whole run
//
// The -table1 run at full scale takes a few minutes: it re-runs
// K-means and a 10-fold cross-validated decision tree for each of the
// eight K values of Table I on 6,380 patients. -timeout cancels the
// sweep mid-flight through the context threaded into every kernel.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"adahealth/internal/experiments"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "reproduce Table I (optimization metrics)")
		partial = flag.Bool("partial", false, "reproduce the §IV-B partial-mining series")
		arch    = flag.Bool("arch", false, "print the Figure 1 architecture diagram")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.String("scale", "full", `dataset scale: "full" (paper) or "small" (smoke)`)
		seed    = flag.Int64("seed", 1, "generator / algorithm seed")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if !*table1 && !*partial && !*arch && !*all {
		flag.Usage()
		os.Exit(2)
	}
	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.FullScale
	case "small":
		sc = experiments.SmallScale
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *arch || *all {
		fmt.Println(experiments.ArchitectureDiagram())
	}
	if *partial || *all {
		start := time.Now()
		_, res, err := experiments.RunPartial(ctx, experiments.PartialConfig{Scale: sc, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: partial: %v\n", err)
			os.Exit(1)
		}
		experiments.FormatPartial(os.Stdout, res)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}
	if *table1 || *all {
		start := time.Now()
		res, err := experiments.RunTableI(ctx, experiments.TableIConfig{Scale: sc, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: table1: %v\n", err)
			os.Exit(1)
		}
		experiments.FormatTableI(os.Stdout, res)
		fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	}
}
