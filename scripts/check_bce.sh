#!/usr/bin/env bash
# check_bce.sh — verify the hot loops stay bounds-check free.
#
# Compiles internal/vec with the SSA bounds-check-elimination debug
# flag and fails if any check survives in the unrolled hot-loop file
# other than the data-dependent CSR gathers/scatters (dense[cols[p]]
# in SparseDot, dst[cols[p]] in ScatterAdd), which no safe Go
# formulation can eliminate: the column indices are data, not
# induction variables.
#
# Usage: scripts/check_bce.sh            # check and summarize
#        scripts/check_bce.sh -v         # also print every finding
set -euo pipefail
cd "$(dirname "$0")/.."

# One line per residual bounds check: "hot.go:LINE:COL: Found IsInBounds".
findings=$(go build -gcflags='-d=ssa/check_bce' ./internal/vec 2>&1 |
	grep -E 'hot\.go:[0-9]+:[0-9]+: Found Is(Slice)?InBounds' || true)

if [[ "${1:-}" == "-v" && -n "$findings" ]]; then
	echo "$findings"
fi

# The two gather/scatter functions are the only allowed homes for
# residual checks. Everything else in hot.go must be check-free.
allowed_lines=$(awk '/^func (SparseDot|ScatterAdd)/,/^}/ {print NR}' internal/vec/hot.go)
bad=0
while IFS= read -r line; do
	[[ -z "$line" ]] && continue
	lineno=$(echo "$line" | sed -E 's/.*hot\.go:([0-9]+):.*/\1/')
	if ! grep -qx "$lineno" <<<"$allowed_lines"; then
		echo "UNEXPECTED bounds check: $line" >&2
		bad=1
	fi
done <<<"$findings"

count=$(grep -c . <<<"$findings" || true)
if [[ $bad -ne 0 ]]; then
	echo "check_bce: FAIL — bounds checks outside the data-dependent gathers" >&2
	exit 1
fi
echo "check_bce: OK ($count residual checks, all data-dependent gathers in SparseDot/ScatterAdd)"
