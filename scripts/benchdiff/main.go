// Command benchdiff compares two BENCH_*.json snapshots written by
// scripts/bench.sh and fails when any benchmark present in both
// regressed in ns/op beyond the tolerance — the CI gate that keeps the
// perf trajectory monotone.
//
//	go run ./scripts/benchdiff -tolerance 20 BENCH_old.json BENCH_new.json
//
// Exit status: 0 when every common benchmark is within tolerance (or
// improved), 1 on regression, 2 on usage/parse errors. Benchmarks
// present in only one snapshot are reported but never gate, so adding
// or retiring benchmarks does not break CI. When the two snapshots
// were recorded on different CPUs the timings are only roughly
// comparable, so regressions are reported but do not fail the run
// unless -strict is set; regenerate the committed baseline on the CI
// runner family to arm the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type snapshot struct {
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	CPU        string      `json:"cpu"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

func load(path string) (map[string]float64, *snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var s snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	nsPerOp := map[string]float64{}
	for _, b := range s.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
			nsPerOp[b.Name] = ns
		}
	}
	return nsPerOp, &s, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 20, "max ns/op regression in percent before failing")
	strict := flag.Bool("strict", false, "gate even when the snapshots were recorded on different CPUs")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance pct] OLD.json NEW.json")
		os.Exit(2)
	}
	oldNs, oldSnap, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newNs, newSnap, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n", flag.Arg(0), oldSnap.Date, flag.Arg(1), newSnap.Date)
	cpuMismatch := oldSnap.CPU != newSnap.CPU
	if cpuMismatch {
		fmt.Printf("note: CPU differs (%q vs %q); timings are only roughly comparable\n",
			oldSnap.CPU, newSnap.CPU)
	}

	names := make([]string, 0, len(newNs))
	for name := range newNs {
		names = append(names, name)
	}
	sort.Strings(names)

	common, regressions := 0, 0
	fmt.Printf("%-60s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		prev, ok := oldNs[name]
		if !ok {
			fmt.Printf("%-60s %14s %14.0f %9s\n", name, "-", newNs[name], "new")
			continue
		}
		common++
		delta := (newNs[name] - prev) / prev * 100
		marker := ""
		if delta > *tolerance {
			marker = "  << REGRESSION"
			regressions++
		}
		fmt.Printf("%-60s %14.0f %14.0f %+8.1f%%%s\n", name, prev, newNs[name], delta, marker)
	}
	for name := range oldNs {
		if _, ok := newNs[name]; !ok {
			fmt.Printf("%-60s %14.0f %14s %9s\n", name, oldNs[name], "-", "gone")
		}
	}

	switch {
	case common == 0:
		fmt.Println("no common benchmarks: nothing gated")
	case regressions > 0 && cpuMismatch && !*strict:
		fmt.Printf("%d of %d common benchmarks beyond %.0f%%, but the CPUs differ: "+
			"not gating (pass -strict to fail anyway; regenerate the baseline on this runner to arm the gate)\n",
			regressions, common, *tolerance)
	case regressions > 0:
		fmt.Printf("%d of %d common benchmarks regressed beyond %.0f%%\n",
			regressions, common, *tolerance)
		os.Exit(1)
	default:
		fmt.Printf("all %d common benchmarks within %.0f%% of the snapshot\n",
			common, *tolerance)
	}
}
