#!/usr/bin/env bash
# Runs the root benchmark suite with -benchmem and writes the results
# to BENCH_<date>.json at the repo root, so the perf trajectory of the
# Table I sweep is tracked PR over PR.
#
# Usage:
#   scripts/bench.sh                  # default benchmark set, 1 iteration each
#   BENCHTIME=3x scripts/bench.sh     # more iterations
#   BENCH='BenchmarkTableI$' scripts/bench.sh
#   SMOKE=1 scripts/bench.sh          # fast subset for the CI regression gate
#
# The CI workflow runs the SMOKE subset and diffs ns/op against the
# latest committed BENCH_*.json with scripts/benchdiff.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkTableI\$|BenchmarkPartialMining\$|BenchmarkKMeansAblation|BenchmarkVSMWeighting|BenchmarkAnalyzeMany|BenchmarkDocstore}"
if [ "${SMOKE:-0}" = "1" ]; then
    # The smoke set gates the CI ns/op regression check: the full
    # Table I sweep (the repo's headline number), the partial-mining
    # series, the vsm-shaped K-means ablation (all kernels at the
    # paper's operating point), the large-K bounded-kernel ablation on
    # the overlapping-blob shapes (yinyang's target regime, with
    # hamerly/elkan as the baselines it must beat), the batch
    # pipeline, and the K-DB storage engine's write (WAL group commit)
    # and sorted-query paths.
    BENCH="${SMOKE_BENCH:-BenchmarkTableI\$|BenchmarkPartialMining\$|BenchmarkKMeansAblation/vsm-d8|BenchmarkKMeansAblation/blobs-d3/K=64/(hamerly|elkan|yinyang)\$|BenchmarkKMeansAblation/blobs-d8/K=64/(hamerly|elkan|yinyang)\$|BenchmarkAnalyzeMany|BenchmarkDocstore/WALInsert\$|BenchmarkDocstore/QuerySorted}"
fi
BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_$(date +%F).json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

awk -v date="$(date +%FT%T%z)" -v gover="$(go version)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", date, gover
}
/^cpu:/ { sub(/^cpu:[ \t]*/, ""); cpu = $0 }
/^Benchmark/ {
    printf "%s\n    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", \
        (n++ ? "," : ""), $1, $2
    sep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        printf "%s\"%s\": %s", sep, $(i + 1), $i
        sep = ", "
    }
    printf "}}"
}
END {
    printf "\n  ],\n  \"cpu\": \"%s\"\n}\n", cpu
}
' "$RAW" > "$OUT"

echo "wrote $OUT"
