module adahealth

go 1.24
