package adahealth_test

import (
	"fmt"
	"log"

	"adahealth"
)

// ExampleNewEngine demonstrates the one-call automated analysis: the
// engine characterizes the data, selects the data portion to mine,
// self-configures K-means, extracts and ranks knowledge — with no
// mining parameters from the user.
func ExampleNewEngine() {
	data, err := adahealth.GenerateSyntheticLog(adahealth.SmallDataConfig())
	if err != nil {
		log.Fatal(err)
	}
	engine, err := adahealth.NewEngine(adahealth.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	report, err := engine.Analyze(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patients analyzed: %d\n", report.Descriptor.NumPatients)
	fmt.Printf("feasible end-goals: %d of %d\n",
		countFeasible(report.Recommendations), len(report.Recommendations))
	// Output:
	// patients analyzed: 300
	// feasible end-goals: 5 of 6
}

func countFeasible(recs []adahealth.Recommendation) int {
	n := 0
	for _, r := range recs {
		if r.Feasible {
			n++
		}
	}
	return n
}

// ExampleCharacterize shows the data-characterization step on its own:
// the statistical descriptor ADA-HEALTH stores in its knowledge base
// and feeds to the end-goal feasibility rules.
func ExampleCharacterize() {
	cfg := adahealth.SmallDataConfig()
	data, err := adahealth.GenerateSyntheticLog(cfg)
	if err != nil {
		log.Fatal(err)
	}
	d := adahealth.Characterize(data)
	fmt.Printf("records: %d\n", d.NumRecords)
	fmt.Printf("exam types: %d\n", d.NumExamTypes)
	fmt.Printf("sparse: %v\n", d.VSMSparsity > 0.5)
	// Output:
	// records: 4500
	// exam types: 40
	// sparse: true
}
