// Benchmarks regenerating every quantitative artifact of the paper
// (see DESIGN.md §4):
//
//	E1 BenchmarkTableI       — Table I, the K-optimization sweep
//	E2 BenchmarkPartialMining — §IV-B partial-mining series
//	A1 BenchmarkKMeansAblation — Lloyd vs kd-tree filtering K-means
//	A2 BenchmarkFPMAblation    — Apriori vs FP-Growth over support
//	A3 BenchmarkDocstore       — K-DB substrate throughput
//	A4 BenchmarkVSMWeighting   — transformation choice vs similarity
//	A6 BenchmarkAnalyzeMany    — batch stage-DAG vs serial pipelines
//
// E1/E2 run at the paper's full scale (6,380 patients); one iteration
// is one complete experiment.
package adahealth_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"adahealth/internal/classify"
	"adahealth/internal/cluster"
	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/docstore"
	"adahealth/internal/eval"
	"adahealth/internal/experiments"
	"adahealth/internal/fpm"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/synth"
	"adahealth/internal/vsm"
)

var (
	benchOnce   sync.Once
	benchMatrix *vsm.Matrix
	benchVisits [][]string
	benchErr    error
)

// benchSetup builds the paper-scale dataset once for all benchmarks.
func benchSetup(b *testing.B) (*vsm.Matrix, [][]string) {
	b.Helper()
	benchOnce.Do(func() {
		log, err := synth.Generate(synth.DefaultConfig())
		if err != nil {
			benchErr = err
			return
		}
		benchMatrix, benchErr = vsm.Build(log, vsm.Options{
			Weighting: vsm.Count, Normalization: vsm.L2,
		})
		if benchErr != nil {
			return
		}
		visits := log.Visits()
		benchVisits = make([][]string, len(visits))
		for i, v := range visits {
			benchVisits[i] = v.ExamCodes
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchMatrix, benchVisits
}

// BenchmarkTableI regenerates Table I: the full K ∈ {6..20} sweep with
// SSE and 10-fold cross-validated decision-tree metrics on the
// 85%-of-rows subset (experiment E1).
func BenchmarkTableI(b *testing.B) {
	m, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableIOnMatrix(context.Background(), m, experiments.TableIConfig{
			Scale: experiments.FullScale, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Sweep.BestK), "bestK")
			b.ReportMetric(res.Sweep.Best().Accuracy*100, "accuracy%")
		}
	}
}

// BenchmarkPartialMining regenerates the §IV-B series: overall
// similarity of 20%/40%/100% exam-type subsets (experiment E2).
func BenchmarkPartialMining(b *testing.B) {
	m, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runPartialOnMatrix(m)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			sel := res.SelectedStep()
			b.ReportMetric(sel.Fraction*100, "selected%types")
			b.ReportMetric(sel.RowCoverage*100, "selected%rows")
		}
	}
}

func runPartialOnMatrix(m *vsm.Matrix) (*partialResult, error) {
	_, res, err := experiments.RunPartialOnMatrix(context.Background(), m, experiments.PartialConfig{
		Scale: experiments.FullScale, Seed: 1,
	})
	return res, err
}

type partialResult = experiments.PartialResult

// BenchmarkKMeansAblation compares Lloyd against the kd-tree filtering
// algorithm (the paper's reference [3]) in both regimes (A1):
//
//   - "vsm": the paper's own unit-norm patient vectors (points on a
//     sphere), where bounding-box pruning barely pays — Lloyd and
//     filtering are close at every K. It runs at the paper's own
//     operating point (Table I sweeps K ∈ {6..20}); K=64 over 6,380
//     rows would put ~100 rows in a cluster and measure nothing the
//     paper or the router targets, so the large-K cases live on the
//     blob workloads instead;
//   - "blobs": 64 lattice-centered Euclidean clusters with mutual
//     overlap, at d=3 (the Kanungo et al. filtering workload) and d=8
//     with wider noise. Overlapping many-cluster data is the large-K
//     stress case: Hamerly's single second-closest bound collapses,
//     Elkan's per-centroid bounds pay O(n·K) decay traffic every
//     iteration, and the kd-tree filter degrades as dimension grows —
//     the regime yinyang's group bounds are built for.
func BenchmarkKMeansAblation(b *testing.B) {
	m, _ := benchSetup(b)
	vsmSub := m.Project(8)

	rng := rand.New(rand.NewSource(1))
	makeBlobs := func(d int, noise float64) [][]float64 {
		data := make([][]float64, 20000)
		for i := range data {
			c := i % 64
			row := make([]float64, d)
			for j := range row {
				row[j] = float64((c*5+j*3)%17)*3 + rng.NormFloat64()*noise
			}
			data[i] = row
		}
		return data
	}

	workloads := []struct {
		name string
		data [][]float64
		ks   []int
	}{
		{"vsm-d8", vsmSub.Rows, []int{8}},
		{"blobs-d3", makeBlobs(3, 0.4), []int{8, 64}},
		{"blobs-d8", makeBlobs(8, 1.5), []int{64}},
	}
	for _, w := range workloads {
		for _, k := range w.ks {
			// Lloyd auto-routes to the sparse kernel when the data is
			// sparse enough; DenseLloyd pins the classic dense scan so
			// the sparse speedup stays visible side by side. Hamerly,
			// Elkan and Yinyang are the exact triangle-inequality
			// kernels, minibatch the approximate Sculley kernel, and
			// auto the shape-based router (elkan at K=8 on vsm-d8;
			// hamerly at K=8 / filtering at K=64 on the blob
			// workloads, with yinyang the large-K pick off the
			// low-dimension kd-tree path).
			for _, alg := range []cluster.Algorithm{
				cluster.Lloyd, cluster.DenseLloyd, cluster.SparseLloyd, cluster.Filtering,
				cluster.Hamerly, cluster.Elkan, cluster.Yinyang,
				cluster.AlgorithmMiniBatch, cluster.AlgorithmAuto,
			} {
				b.Run(fmt.Sprintf("%s/K=%d/%s", w.name, k, alg), func(b *testing.B) {
					// One Scratch per sub-benchmark, primed by an untimed
					// warm-up run: the measurement is the warm-started
					// sweep's steady state, where bound matrices and
					// accumulators live in the reused Scratch instead of
					// being reallocated per run (Elkan's O(n·K) lower-bound
					// matrix alone was 10.9 MB/op at blobs-d3/K=64 without
					// it; what remains is the freshly allocated Result).
					scratch := &cluster.Scratch{}
					opts := cluster.Options{
						K: k, Seed: 1, Algorithm: alg, MaxIter: 30, Scratch: scratch,
					}
					if _, err := cluster.KMeans(w.data, opts); err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := cluster.KMeans(w.data, opts); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFPMAblation compares Apriori and FP-Growth over the visit
// baskets as the support threshold drops: FP-Growth's advantage grows
// at low support (A2). All threshold runs share one fpm.Transactions
// encoding, built once outside the measured loops — the per-threshold
// cost is pure mining, not basket re-materialization. The Encode
// sub-benchmarks price the shared one-time step itself, from string
// baskets and straight from the cached CSR view of the VSM matrix.
func BenchmarkFPMAblation(b *testing.B) {
	m, visits := benchSetup(b)
	shared := fpm.NewTransactions(visits)
	b.Run("Encode/visits", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fpm.NewTransactions(benchVisits)
		}
	})
	b.Run("Encode/csr", func(b *testing.B) {
		csr := m.Sparse()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fpm.TransactionsFromCSR(csr, m.Features); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, suppFrac := range []float64{0.04, 0.02, 0.01} {
		minSupp := int(suppFrac * float64(len(visits)))
		if minSupp < 2 {
			minSupp = 2
		}
		b.Run(fmt.Sprintf("Apriori/supp=%.0f%%", suppFrac*100), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shared.Apriori(minSupp); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("FPGrowth/supp=%.0f%%", suppFrac*100), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shared.FPGrowth(minSupp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeMany compares batch pipeline execution over one
// shared stage pool against the same logs analyzed back to back: the
// stage DAG lets independent stages of different logs interleave, so
// with spare cores "batch" beats "serial" wall-clock while doing
// identical work (A6); on a single-core host the two are equal up to
// scheduling noise (the committed snapshots record the host CPU).
// "sequential" pins the legacy serial stage order as the baseline.
func BenchmarkAnalyzeMany(b *testing.B) {
	makeLogs := func() []*dataset.Log {
		logs := make([]*dataset.Log, 4)
		for i := range logs {
			cfg := synth.SmallConfig()
			cfg.Seed = int64(i + 1)
			log, err := synth.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			log.Name = fmt.Sprintf("%s-%d", log.Name, i)
			logs[i] = log
		}
		return logs
	}
	logs := makeLogs()
	engineCfg := func(sequential bool) core.Config {
		return core.Config{
			Seed:       1,
			Sequential: sequential,
			Partial:    partial.Config{Ks: []int{4}},
			Sweep:      optimize.SweepConfig{Ks: []int{3, 4, 5}, CVFolds: 4},
		}
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := core.New(engineCfg(false))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.AnalyzeMany(context.Background(), logs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := core.New(engineCfg(false))
			if err != nil {
				b.Fatal(err)
			}
			for _, log := range logs {
				if _, err := e.AnalyzeContext(context.Background(), log); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := core.New(engineCfg(true))
			if err != nil {
				b.Fatal(err)
			}
			for _, log := range logs {
				if _, err := e.AnalyzeContext(context.Background(), log); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkDocstore measures the K-DB substrate at paper-scale
// knowledge volume: inserts, indexed lookups and scans (A3).
func BenchmarkDocstore(b *testing.B) {
	b.Run("Insert", func(b *testing.B) {
		s, err := docstore.Open("")
		if err != nil {
			b.Fatal(err)
		}
		c := s.Collection("knowledge")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Insert(docstore.Document{
				"dataset": "diab", "kind": "pattern", "support": i,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FindEqIndexed", func(b *testing.B) {
		s, _ := docstore.Open("")
		c := s.Collection("knowledge")
		for i := 0; i < 10000; i++ {
			c.Insert(docstore.Document{"dataset": fmt.Sprintf("d%d", i%20), "n": i})
		}
		c.CreateIndex("dataset")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := c.FindEq("dataset", "d7"); len(got) != 500 {
				b.Fatalf("got %d", len(got))
			}
		}
	})
	b.Run("FindScan", func(b *testing.B) {
		s, _ := docstore.Open("")
		c := s.Collection("knowledge")
		for i := 0; i < 10000; i++ {
			c.Insert(docstore.Document{"dataset": fmt.Sprintf("d%d", i%20), "n": i})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := c.Find(docstore.Eq("dataset", "d7")); len(got) != 500 {
				b.Fatalf("got %d", len(got))
			}
		}
	})
	// WALInsert measures the durable write path: inserts group-
	// committed to the write-ahead log (fsync disabled so the
	// benchmark tracks the engine, not the device). One op is a batch
	// of 256 documents, amortizing the committer wake-up latency a
	// single insert would expose as scheduling noise.
	b.Run("WALInsert", func(b *testing.B) {
		s, err := docstore.OpenOptions(docstore.Options{Dir: b.TempDir(), NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		c := s.Collection("knowledge")
		c.ShardBy("dataset")
		b.ReportAllocs()
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			for j := 0; j < 256; j++ {
				if _, err := c.Insert(docstore.Document{
					"dataset": fmt.Sprintf("d%d", n%20), "kind": "pattern", "support": n,
				}); err != nil {
					b.Fatal(err)
				}
				n++
			}
		}
	})
	// WALInsertParallel exercises the group commit: concurrent writers
	// over different dataset stripes share fsync batches.
	b.Run("WALInsertParallel", func(b *testing.B) {
		s, err := docstore.OpenOptions(docstore.Options{Dir: b.TempDir(), NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		c := s.Collection("knowledge")
		c.ShardBy("dataset")
		b.ReportAllocs()
		b.ResetTimer()
		var wid atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			ds := fmt.Sprintf("d%d", wid.Add(1))
			i := 0
			for pb.Next() {
				if _, err := c.Insert(docstore.Document{"dataset": ds, "n": i}); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
	// QuerySorted measures the typed query layer: a filtered,
	// field-sorted, limited lookup with the documented ID tie-break.
	b.Run("QuerySorted", func(b *testing.B) {
		s, _ := docstore.Open("")
		c := s.Collection("knowledge")
		c.ShardBy("dataset")
		c.CreateIndex("dataset")
		for i := 0; i < 10000; i++ {
			c.Insert(docstore.Document{
				"dataset": fmt.Sprintf("d%d", i%20), "support": i % 97, "n": i,
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got := c.FindSorted(docstore.Eq("dataset", "d7"), "support", docstore.Desc, 10)
			if len(got) != 10 {
				b.Fatalf("got %d", len(got))
			}
		}
	})
}

// BenchmarkRobustnessAssessor ablates the paper's choice of a single
// decision tree for the cluster-robustness assessment (A5): the same
// (features → cluster label) task is evaluated with 5-fold CV under
// four different classifiers; accuracy is reported per assessor.
func BenchmarkRobustnessAssessor(b *testing.B) {
	m, _ := benchSetup(b)
	working := m.Project(m.FeaturesForCoverage(0.85))
	cr, err := cluster.KMeans(working.Rows, cluster.Options{K: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	assessors := []struct {
		name    string
		factory classify.Factory
	}{
		{"tree", func() classify.Classifier {
			return classify.NewDecisionTree(classify.TreeOptions{})
		}},
		{"forest", func() classify.Classifier {
			return classify.NewRandomForest(classify.ForestOptions{NumTrees: 10, Seed: 1})
		}},
		{"naive-bayes", func() classify.Classifier { return classify.NewGaussianNB() }},
		{"majority", func() classify.Classifier { return classify.NewMajority() }},
	}
	for _, a := range assessors {
		b.Run(a.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cv, err := eval.CrossValidate(a.factory, working.Rows, cr.Labels, 5, 1)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(cv.Metrics.Accuracy*100, "accuracy%")
				}
			}
		})
	}
}

// BenchmarkVSMWeighting measures how the data-transformation choice
// (the component ADA-HEALTH is meant to automate) affects clustering
// quality: overall similarity of K=8 clusters per weighting (A4).
func BenchmarkVSMWeighting(b *testing.B) {
	log, err := synth.Generate(synth.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []vsm.Weighting{vsm.Count, vsm.Binary, vsm.LogCount, vsm.TFIDF} {
		b.Run(w.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := vsm.Build(log, vsm.Options{Weighting: w, Normalization: vsm.L2})
				if err != nil {
					b.Fatal(err)
				}
				res, err := cluster.KMeans(m.Rows, cluster.Options{K: 8, Seed: 1, MaxIter: 30})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					os, err := eval.OverallSimilarity(m.Rows, res.Labels, res.K)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(os, "overallSim")
				}
			}
		})
	}
}
