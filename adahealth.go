// Package adahealth is the public API of the ADA-HEALTH reproduction:
// an automated medical data-analysis engine that, given an examination
// log, characterizes it, selects a data transformation, adaptively
// mines growing portions of it, self-configures its clustering
// algorithm, extracts and ranks knowledge items, and recommends viable
// analysis end-goals — reproducing Cerquitelli et al., "Data mining
// for better healthcare: A path towards automated data analysis?"
// (ICDE Workshops 2016).
//
// The primary surface is the job API — analysis as a service, the
// paper's framing of mining as a shared hospital-wide facility. A
// Service owns one engine, a bounded admission queue and a shared
// stage pool; Submit returns immediately with a Job handle that
// exposes live progress:
//
//	svc, _ := adahealth.NewService(adahealth.ServiceConfig{Workers: 4})
//	defer svc.Shutdown(context.Background())
//
//	log, _ := adahealth.GenerateSyntheticLog(adahealth.SmallDataConfig())
//	job, err := svc.Submit(ctx, log,
//		adahealth.WithPriority(5),
//		adahealth.WithDeadline(time.Now().Add(2*time.Minute)))
//	if errors.Is(err, adahealth.ErrQueueFull) { /* shed load or SubmitWait */ }
//
//	go func() {
//		for ev := range job.Events() { fmt.Println(ev.Phase, ev.Stage) }
//	}()
//	report, _ := job.Wait(ctx)
//	fmt.Println(report.Sweep.BestK)
//
// Submissions are admission-controlled: a full queue fast-rejects with
// ErrQueueFull (Service.SubmitWait blocks instead), higher-priority
// jobs dispatch first, per-job deadlines cover queue wait, and bad
// configurations are rejected at Submit time. cmd/adahealthd serves
// the same API over HTTP JSON.
//
// The one-shot path remains the simple case — identical results,
// no service in between:
//
//	log, _ := adahealth.GenerateSyntheticLog(adahealth.SmallDataConfig())
//	engine, _ := adahealth.NewEngine(adahealth.DefaultConfig())
//	report, _ := engine.Analyze(log)
//	fmt.Println(report.Sweep.BestK)
//
// The K-optimization sweep warm-starts by default (each K seeded from
// the previous K's converged centroids) and self-selects an exact
// K-means kernel per data shape — Elkan over the sparse CSR view for
// VSM matrices, Hamerly or kd-tree filtering for dense data — with
// Sculley mini-batch available (approximate, deterministic) for
// very large logs. Pick a kernel explicitly via the per-job config
// override ("Sweep":{"Cluster":{"Algorithm":"elkan"}}), the
// -algorithm CLI flag, or cluster.Options.Algorithm; see the
// internal/cluster package doc for the full algorithm matrix.
//
// Either way the pipeline executes as a concurrent stage DAG:
// independent stages (pattern mining, the K sweep, demand extraction,
// ...) overlap on a bounded worker pool, Engine.AnalyzeContext threads
// cancellation through every compute kernel, Engine.AnalyzeMany
// batches several logs over one shared pool, and Report.Stages carries
// per-stage wall-time/allocation traces (also persisted in the K-DB).
// Set Config.Sequential for the legacy serial execution, which
// produces a bit-for-bit identical Report.
//
// With Config.KDBDir set, the knowledge base is a durable storage
// engine: per-dataset sharded collections, a group-committed
// write-ahead log (a killed process recovers every acknowledged write
// on reopen), and snapshot compaction. Accumulated knowledge closes
// the paper's self-learning loop — the pipeline's recall stage
// retrieves prior results of statistically similar datasets
// (KDB.SimilarDatasets) and warm-starts the K sweep from them;
// Report.Recall says what was reused.
package adahealth

import (
	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/endgoal"
	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/ranking"
	"adahealth/internal/service"
	"adahealth/internal/stats"
	"adahealth/internal/synth"
)

// Re-exported core types. The internal packages stay authoritative;
// these aliases are the supported public surface.
type (
	// Engine runs the automated analysis pipeline.
	Engine = core.Engine
	// Config configures an Engine.
	Config = core.Config
	// Report is the outcome of one automated analysis.
	Report = core.Report

	// Log is a medical examination log (patients, exam types, records).
	Log = dataset.Log
	// Patient is one anonymized patient.
	Patient = dataset.Patient
	// ExamType is one kind of examination.
	ExamType = dataset.ExamType
	// Record is one examination event.
	Record = dataset.Record

	// DataConfig controls the synthetic diabetic-log generator.
	DataConfig = synth.Config

	// KDB is the knowledge database (the paper's six collections),
	// backed by a sharded, WAL-durable document store when Config.
	// KDBDir is set.
	KDB = kdb.KDB
	// KDBQuery is a declarative filter/sort/limit lookup over a K-DB
	// collection.
	KDBQuery = kdb.Query
	// DatasetSimilarity is one hit of a descriptor-similarity lookup
	// (KDB.SimilarDatasets — the recall stage's retrieval path).
	DatasetSimilarity = kdb.DatasetSimilarity
	// Feedback is one expert judgement stored in the K-DB.
	Feedback = kdb.Feedback
	// StageTrace is the recorded execution of one pipeline stage.
	StageTrace = kdb.StageTrace

	// RecallConfig tunes the knowledge-recall stage (Config.Recall):
	// prior K-DB knowledge of similar datasets warm-starts the sweep.
	RecallConfig = core.RecallConfig
	// RecallOutcome reports what the recall stage retrieved and how it
	// warm-started the analysis (Report.Recall).
	RecallOutcome = core.RecallOutcome

	// KnowledgeItem is one unit of extracted knowledge.
	KnowledgeItem = knowledge.Item
	// Interest is a degree of interestingness {high, medium, low}.
	Interest = knowledge.Interest

	// Descriptor is the statistical characterization of a log.
	Descriptor = stats.Descriptor

	// Recommendation is an end-goal verdict for a dataset.
	Recommendation = endgoal.Recommendation

	// Ranker orders knowledge items and adapts to feedback.
	Ranker = ranking.Ranker
	// NavigationSession pages through ranked knowledge interactively.
	NavigationSession = ranking.Session

	// Service is the asynchronous analysis service: one shared engine,
	// a bounded admission queue, priority dispatch.
	Service = service.Service
	// ServiceConfig configures a Service.
	ServiceConfig = service.Config
	// Job is the handle of one submitted analysis.
	Job = service.Job
	// JobStatus is a job's lifecycle position
	// (queued/running/done/failed/cancelled).
	JobStatus = service.Status
	// StageEvent is one live progress event of a job: a lifecycle
	// transition or a per-stage start/finish.
	StageEvent = service.StageEvent
	// SubmitOption tunes one submission (WithPriority, WithDeadline,
	// WithSeed, WithConfigOverride, WithLabels).
	SubmitOption = service.Option
	// ServiceStats is a point-in-time queue/worker gauge snapshot.
	ServiceStats = service.Stats
	// TraceDump is the stage-schedule JSON encoding shared by
	// `adahealth -trace` and the daemon's status endpoint.
	TraceDump = service.TraceDump
)

// Job lifecycle statuses.
const (
	JobQueued    = service.StatusQueued
	JobRunning   = service.StatusRunning
	JobDone      = service.StatusDone
	JobFailed    = service.StatusFailed
	JobCancelled = service.StatusCancelled
)

// Admission-control sentinels.
var (
	// ErrQueueFull is Submit's fast reject when the admission queue is
	// at capacity (HTTP 429 on the daemon).
	ErrQueueFull = service.ErrQueueFull
	// ErrServiceClosed rejects submissions after Shutdown.
	ErrServiceClosed = service.ErrClosed
)

// Submission options.
var (
	// WithPriority dispatches higher-priority jobs first.
	WithPriority = service.WithPriority
	// WithDeadline bounds a job's lifetime, queue wait included.
	WithDeadline = service.WithDeadline
	// WithSeed overrides the analysis seed for one job.
	WithSeed = service.WithSeed
	// WithConfigOverride analyzes one job under a different Config
	// (validated at admission, shared K-DB).
	WithConfigOverride = service.WithConfigOverride
	// WithLabels attaches caller metadata to a job.
	WithLabels = service.WithLabels
)

// NewService starts an asynchronous analysis service. The zero
// ServiceConfig is a working default: paper-faithful engine, in-memory
// K-DB, 4 worker slots, a 64-deep admission queue.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// Interest degrees.
const (
	InterestHigh    = knowledge.InterestHigh
	InterestMedium  = knowledge.InterestMedium
	InterestLow     = knowledge.InterestLow
	InterestUnknown = knowledge.InterestUnknown
)

// NewEngine builds an analysis engine.
func NewEngine(cfg Config) (*Engine, error) { return core.New(cfg) }

// DefaultConfig returns the paper-faithful engine configuration
// (in-memory K-DB; set KDBDir for persistence).
func DefaultConfig() Config { return Config{} }

// GenerateSyntheticLog builds a synthetic diabetic examination log
// (the substitution for the paper's proprietary dataset; see
// DESIGN.md).
func GenerateSyntheticLog(cfg DataConfig) (*Log, error) { return synth.Generate(cfg) }

// PaperDataConfig reproduces the published dataset shape: 6,380
// patients, 95,788 records, 159 exam types, ages 4-95, one year.
func PaperDataConfig() DataConfig { return synth.DefaultConfig() }

// SmallDataConfig is a fast structurally-identical dataset for
// experimentation and tests.
func SmallDataConfig() DataConfig { return synth.SmallConfig() }

// Characterize computes the statistical descriptor of a log without
// running the full pipeline.
func Characterize(l *Log) Descriptor { return stats.Characterize(l) }

// NewRanker returns a fresh feedback-adaptive ranker.
func NewRanker() *Ranker { return ranking.NewRanker() }

// NewNavigationSession starts an interactive navigation over items.
func NewNavigationSession(items []KnowledgeItem, r *Ranker, pageSize int) *NavigationSession {
	return ranking.NewSession(items, r, pageSize)
}
