// Package adahealth is the public API of the ADA-HEALTH reproduction:
// an automated medical data-analysis engine that, given an examination
// log, characterizes it, selects a data transformation, adaptively
// mines growing portions of it, self-configures its clustering
// algorithm, extracts and ranks knowledge items, and recommends viable
// analysis end-goals — reproducing Cerquitelli et al., "Data mining
// for better healthcare: A path towards automated data analysis?"
// (ICDE Workshops 2016).
//
// Quickstart:
//
//	log, _ := adahealth.GenerateSyntheticLog(adahealth.SmallDataConfig())
//	engine, _ := adahealth.NewEngine(adahealth.DefaultConfig())
//	report, _ := engine.Analyze(log)
//	fmt.Println(report.Sweep.BestK)
//
// The pipeline executes as a concurrent stage DAG: independent stages
// (pattern mining, the K sweep, demand extraction, ...) overlap on a
// bounded worker pool, Engine.AnalyzeContext threads cancellation
// through every compute kernel, Engine.AnalyzeMany batches several
// logs over one shared pool, and Report.Stages carries per-stage
// wall-time/allocation traces (also persisted in the K-DB). Set
// Config.Sequential for the legacy serial execution, which produces a
// bit-for-bit identical Report.
package adahealth

import (
	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/endgoal"
	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/ranking"
	"adahealth/internal/stats"
	"adahealth/internal/synth"
)

// Re-exported core types. The internal packages stay authoritative;
// these aliases are the supported public surface.
type (
	// Engine runs the automated analysis pipeline.
	Engine = core.Engine
	// Config configures an Engine.
	Config = core.Config
	// Report is the outcome of one automated analysis.
	Report = core.Report

	// Log is a medical examination log (patients, exam types, records).
	Log = dataset.Log
	// Patient is one anonymized patient.
	Patient = dataset.Patient
	// ExamType is one kind of examination.
	ExamType = dataset.ExamType
	// Record is one examination event.
	Record = dataset.Record

	// DataConfig controls the synthetic diabetic-log generator.
	DataConfig = synth.Config

	// KDB is the knowledge database (the paper's six collections).
	KDB = kdb.KDB
	// Feedback is one expert judgement stored in the K-DB.
	Feedback = kdb.Feedback
	// StageTrace is the recorded execution of one pipeline stage.
	StageTrace = kdb.StageTrace

	// KnowledgeItem is one unit of extracted knowledge.
	KnowledgeItem = knowledge.Item
	// Interest is a degree of interestingness {high, medium, low}.
	Interest = knowledge.Interest

	// Descriptor is the statistical characterization of a log.
	Descriptor = stats.Descriptor

	// Recommendation is an end-goal verdict for a dataset.
	Recommendation = endgoal.Recommendation

	// Ranker orders knowledge items and adapts to feedback.
	Ranker = ranking.Ranker
	// NavigationSession pages through ranked knowledge interactively.
	NavigationSession = ranking.Session
)

// Interest degrees.
const (
	InterestHigh    = knowledge.InterestHigh
	InterestMedium  = knowledge.InterestMedium
	InterestLow     = knowledge.InterestLow
	InterestUnknown = knowledge.InterestUnknown
)

// NewEngine builds an analysis engine.
func NewEngine(cfg Config) (*Engine, error) { return core.New(cfg) }

// DefaultConfig returns the paper-faithful engine configuration
// (in-memory K-DB; set KDBDir for persistence).
func DefaultConfig() Config { return Config{} }

// GenerateSyntheticLog builds a synthetic diabetic examination log
// (the substitution for the paper's proprietary dataset; see
// DESIGN.md).
func GenerateSyntheticLog(cfg DataConfig) (*Log, error) { return synth.Generate(cfg) }

// PaperDataConfig reproduces the published dataset shape: 6,380
// patients, 95,788 records, 159 exam types, ages 4-95, one year.
func PaperDataConfig() DataConfig { return synth.DefaultConfig() }

// SmallDataConfig is a fast structurally-identical dataset for
// experimentation and tests.
func SmallDataConfig() DataConfig { return synth.SmallConfig() }

// Characterize computes the statistical descriptor of a log without
// running the full pipeline.
func Characterize(l *Log) Descriptor { return stats.Characterize(l) }

// NewRanker returns a fresh feedback-adaptive ranker.
func NewRanker() *Ranker { return ranking.NewRanker() }

// NewNavigationSession starts an interactive navigation over items.
func NewNavigationSession(items []KnowledgeItem, r *Ranker, pageSize int) *NavigationSession {
	return ranking.NewSession(items, r, pageSize)
}
