package adahealth_test

import (
	"context"
	"testing"

	"adahealth"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	log, err := adahealth.GenerateSyntheticLog(adahealth.SmallDataConfig())
	if err != nil {
		t.Fatalf("GenerateSyntheticLog: %v", err)
	}
	cfg := adahealth.DefaultConfig()
	cfg.Seed = 1
	cfg.Sweep.Ks = []int{3, 4}
	cfg.Sweep.CVFolds = 3
	cfg.Partial.Ks = []int{4}
	engine, err := adahealth.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	report, err := engine.Analyze(log)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if report.Sweep.BestK < 3 || report.Sweep.BestK > 4 {
		t.Errorf("BestK = %d", report.Sweep.BestK)
	}
	if len(report.Ranked) == 0 {
		t.Error("no ranked knowledge")
	}
}

func TestPublicNavigation(t *testing.T) {
	log, err := adahealth.GenerateSyntheticLog(adahealth.SmallDataConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := adahealth.DefaultConfig()
	cfg.Seed = 2
	cfg.Sweep.Ks = []int{4}
	cfg.Sweep.CVFolds = 3
	cfg.Partial.Ks = []int{4}
	engine, err := adahealth.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := engine.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	session := adahealth.NewNavigationSession(report.Ranked, adahealth.NewRanker(), 5)
	page := session.Next()
	if len(page) == 0 {
		t.Fatal("empty first page")
	}
	if err := session.Feedback(page[0].ID, adahealth.InterestHigh); err != nil {
		t.Fatalf("Feedback: %v", err)
	}
}

func TestPaperDataConfigShape(t *testing.T) {
	cfg := adahealth.PaperDataConfig()
	if cfg.NumPatients != 6380 || cfg.TargetRecords != 95788 || cfg.NumExamTypes != 159 {
		t.Errorf("PaperDataConfig drifted: %+v", cfg)
	}
}

func TestCharacterize(t *testing.T) {
	log, err := adahealth.GenerateSyntheticLog(adahealth.SmallDataConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := adahealth.Characterize(log)
	if d.NumPatients != 300 {
		t.Errorf("descriptor patients = %d", d.NumPatients)
	}
	if d.VSMSparsity <= 0 {
		t.Errorf("sparsity = %v, want > 0", d.VSMSparsity)
	}
}

// TestPublicJobAPI exercises the service surface end-to-end through
// the re-exported names: submit, stream events, wait, and admission
// errors.
func TestPublicJobAPI(t *testing.T) {
	log, err := adahealth.GenerateSyntheticLog(adahealth.SmallDataConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := adahealth.ServiceConfig{Workers: 2}
	cfg.Engine.Seed = 1
	cfg.Engine.Sweep.Ks = []int{3, 4}
	cfg.Engine.Sweep.CVFolds = 3
	cfg.Engine.Partial.Ks = []int{4}
	svc, err := adahealth.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(context.Background(), log,
		adahealth.WithPriority(1),
		adahealth.WithLabels(map[string]string{"suite": "public"}))
	if err != nil {
		t.Fatal(err)
	}
	sawRunning := make(chan bool, 1)
	go func() {
		saw := false
		for ev := range job.Events() {
			if ev.Phase == string(adahealth.JobRunning) {
				saw = true
			}
		}
		sawRunning <- saw
	}()
	report, err := job.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if job.Status() != adahealth.JobDone {
		t.Errorf("status = %s", job.Status())
	}
	if report.Sweep.BestK < 3 || report.Sweep.BestK > 4 {
		t.Errorf("BestK = %d", report.Sweep.BestK)
	}
	if !<-sawRunning {
		t.Error("events stream never reported running")
	}

	badCfg := cfg.Engine
	badCfg.MinConfidence = 7
	if _, err := svc.Submit(context.Background(), log, adahealth.WithConfigOverride(badCfg)); err == nil {
		t.Error("bad override accepted at admission")
	}
}
