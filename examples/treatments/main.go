// Treatment characterization (MeTA-style, the paper's reference [2]):
// mine the examination log for exams commonly prescribed together,
// across abstraction levels — specific exam codes at the bottom,
// clinical categories (cardiovascular, renal, ...) above them — then
// derive association rules usable for compliance and adverse-event
// style analyses.
package main

import (
	"fmt"
	"log"
	"sort"

	"adahealth/internal/fpm"
	"adahealth/internal/synth"
)

func main() {
	data, err := synth.Generate(synth.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Transactions are per-patient per-day visits.
	visits := data.Visits()
	txs := make([][]string, len(visits))
	for i, v := range visits {
		txs[i] = v.ExamCodes
	}
	fmt.Printf("%d visits from %d patients\n\n", len(txs), data.NumPatients())

	// The abstraction hierarchy comes from the exam catalog's clinical
	// categories.
	tax := fpm.Taxonomy{}
	names := map[string]string{}
	for _, e := range data.Exams {
		tax[e.Code] = "cat:" + e.Category
		names[e.Code] = e.Name
	}

	minSupport := len(txs) / 200 // 0.5% of visits
	generalized, err := fpm.MineGeneralized(txs, tax, minSupport)
	if err != nil {
		log.Fatal(err)
	}

	// Level 0: concrete co-prescribed exams.
	fmt.Println("co-prescribed exams (leaf level):")
	shown := 0
	for _, g := range fpm.FilterByLevel(generalized, 0) {
		if len(g.Items) < 2 {
			continue
		}
		fmt.Printf("  %v  support %d (%.1f%% of visits)\n",
			withNames(g.Items, names), g.Support, 100*float64(g.Support)/float64(len(txs)))
		if shown++; shown >= 8 {
			break
		}
	}

	// Level 1: category-level patterns that are invisible at leaf
	// level because individual exams are too rare.
	fmt.Println("\ncategory-level patterns (generalized):")
	shown = 0
	for _, g := range fpm.FilterByLevel(generalized, 1) {
		if len(g.Items) < 2 {
			continue
		}
		fmt.Printf("  %v  support %d\n", g.Items, g.Support)
		if shown++; shown >= 8 {
			break
		}
	}

	// Association rules with confidence >= 0.3, surfaced by lift so
	// surprising co-prescriptions outrank ubiquitous routine pairs.
	flat := make([]fpm.Itemset, len(generalized))
	for i, g := range generalized {
		flat[i] = g.Itemset
	}
	rules, err := fpm.Rules(flat, len(txs), 0.3)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].Lift > rules[j].Lift })
	fmt.Println("\nmost surprising prescription rules (by lift):")
	shown = 0
	for _, r := range rules {
		fmt.Printf("  %v => %v  (conf %.2f, lift %.1f)\n",
			withNames(r.Antecedent, names), withNames(r.Consequent, names),
			r.Confidence, r.Lift)
		if shown++; shown >= 8 {
			break
		}
	}
}

// withNames maps exam codes to readable names, leaving category items
// as they are.
func withNames(items []string, names map[string]string) []string {
	out := make([]string, len(items))
	for i, it := range items {
		if n, ok := names[it]; ok {
			out[i] = n
		} else {
			out[i] = it
		}
	}
	return out
}
