// Self-learning end-goal recommendation: the "core and most
// innovative" component of the ADA-HEALTH vision. This example runs
// two analysis rounds on the same dataset. Between the rounds a
// simulated domain expert grades knowledge items and goals in the
// K-DB; the second round's recommendations and ranking adapt — the
// paper's feedback loop, end to end.
package main

import (
	"fmt"
	"log"

	"adahealth"
)

func main() {
	data, err := adahealth.GenerateSyntheticLog(adahealth.SmallDataConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := adahealth.DefaultConfig()
	cfg.Seed = 7
	engine, err := adahealth.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Round 1: cold start — recommendations come from exploratory
	// priors, ranking from raw quality metrics.
	round1, err := engine.Analyze(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round 1 (no feedback yet):")
	printGoals(round1)

	// The expert navigates the extracted knowledge and grades it:
	// rules about drug/exam interactions fascinate them, broad
	// cluster summaries do not.
	session := adahealth.NewNavigationSession(round1.Ranked, adahealth.NewRanker(), 8)
	page := session.Next()
	for _, item := range page {
		var grade adahealth.Interest
		switch item.Kind {
		case "rule":
			grade = adahealth.InterestHigh
		case "cluster-set":
			grade = adahealth.InterestLow
		default:
			grade = adahealth.InterestMedium
		}
		if err := session.Feedback(item.ID, grade); err != nil {
			log.Fatal(err)
		}
		// The judgement also lands in the K-DB (collection 6), tied to
		// the adverse-event goal the rules serve.
		goal := ""
		if item.Kind == "rule" {
			goal = "adverse-event-monitoring"
		} else if item.Kind == "cluster-set" || item.Kind == "cluster" {
			goal = "patient-group-discovery"
		}
		if err := engine.KDB().RecordFeedback(adahealth.Feedback{
			User: "dr.chen", Dataset: data.Name, ItemID: item.ID,
			ItemKind: string(item.Kind), Goal: goal, Interest: grade,
		}); err != nil {
			log.Fatal(err)
		}
	}
	fb, _ := engine.KDB().FeedbackFor(data.Name)
	fmt.Printf("\nrecorded %d feedback judgements in the K-DB\n\n", len(fb))

	// Round 2: the interest model now trains on the stored feedback.
	round2, err := engine.Analyze(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round 2 (after expert feedback):")
	printGoals(round2)

	fmt.Println("\nK-DB collection sizes (the paper's six-collection data model):")
	for name, n := range engine.KDB().Counts() {
		fmt.Printf("  %-18s %d\n", name, n)
	}
}

func printGoals(rep *adahealth.Report) {
	for i, rec := range rep.Recommendations {
		if i >= 4 {
			break
		}
		fmt.Printf("  %d. %-55s interest=%-6s (%s)\n",
			i+1, rec.Goal.Name, rec.Interest, rec.Source)
	}
}
