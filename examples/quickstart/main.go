// Quickstart: generate a synthetic examination log, run the whole
// automated ADA-HEALTH pipeline with one call, and print what it found
// — no mining parameters supplied by the user at all, which is exactly
// the paper's point.
package main

import (
	"fmt"
	"log"

	"adahealth"
)

func main() {
	// A small structurally-faithful diabetic examination log (use
	// adahealth.PaperDataConfig() for the full 6,380-patient shape).
	data, err := adahealth.GenerateSyntheticLog(adahealth.SmallDataConfig())
	if err != nil {
		log.Fatal(err)
	}

	engine, err := adahealth.NewEngine(adahealth.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	report, err := engine.Analyze(data)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %d patients, %d records, %d exam types\n",
		report.Descriptor.NumPatients, report.Descriptor.NumRecords,
		report.Descriptor.NumExamTypes)
	sel := report.Partial.SelectedStep()
	fmt.Printf("partial mining: kept %d of %d exam types (%.0f%% of raw rows)\n",
		sel.NumFeatures, report.Transformed.NumFeatures, sel.RowCoverage*100)
	fmt.Printf("optimizer selected K = %d\n", report.Sweep.BestK)

	fmt.Println("\ntop 5 knowledge items:")
	for i, item := range report.Ranked {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. [%s] %s\n", i+1, item.Kind, item.Title)
	}

	fmt.Println("\nrecommended analysis end-goals:")
	for _, rec := range report.Recommendations {
		if rec.Feasible {
			fmt.Printf("  - %s (interest: %s)\n", rec.Goal.Name, rec.Interest)
		}
	}
}
