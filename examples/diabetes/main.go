// Diabetes cohort analysis: the paper's own scenario (Section IV-B) —
// find groups of patients with similar examination histories in a
// diabetic examination log, using the individual building blocks of
// the library rather than the one-call engine, so each pipeline stage
// is visible: VSM transformation, horizontal partial mining, the
// K-optimization of Table I, and cluster profiling.
package main

import (
	"context"
	"fmt"
	"log"

	"adahealth/internal/cluster"
	"adahealth/internal/knowledge"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/stats"
	"adahealth/internal/synth"
	"adahealth/internal/vsm"
)

func main() {
	// The synthetic stand-in for the paper's anonymized diabetic log:
	// 6,380 patients, 95,788 records, 159 exam types (see DESIGN.md).
	cfg := synth.DefaultConfig()
	data, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	desc := stats.Characterize(data)
	fmt.Printf("cohort: %d diabetic patients, %d records over %d days\n",
		desc.NumPatients, desc.NumRecords, desc.SpanDays)
	fmt.Printf("ages %0.f-%0.f (mean %.1f), VSM sparsity %.3f\n\n",
		desc.Age.Min, desc.Age.Max, desc.Age.Mean, desc.VSMSparsity)

	// 1. Vector Space Model: one count vector per patient, unit norm.
	matrix, err := vsm.Build(data, vsm.Options{
		Weighting:     vsm.Count,
		Normalization: vsm.L2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Horizontal partial mining: probe 20%/40%/100% of exam types
	// (most frequent first) and keep the smallest subset within 5% of
	// the full-data overall similarity.
	part, err := partial.RunHorizontal(context.Background(), matrix, partial.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range part.Steps {
		marker := "  "
		if i == part.Selected {
			marker = "->"
		}
		fmt.Printf("%s %3.0f%% of exam types = %5.1f%% of raw rows (similarity diff %.2f%%)\n",
			marker, s.Fraction*100, s.RowCoverage*100, s.RelDiff*100)
	}
	working := matrix.Project(part.SelectedStep().NumFeatures)
	fmt.Printf("working subset: %d features\n\n", working.NumFeatures())

	// 3. Optimize K: SSE plus decision-tree robustness, 10-fold CV
	// (the procedure behind Table I).
	sweep, err := optimize.Sweep(context.Background(), working.Rows, optimize.SweepConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-4s %10s %8s %8s %8s\n", "K", "SSE", "Acc", "Prec", "Rec")
	for _, r := range sweep.Rows {
		fmt.Printf("%-4d %10.2f %7.2f%% %7.2f%% %7.2f%%\n",
			r.K, r.SSE, r.Accuracy*100, r.Precision*100, r.Recall*100)
	}
	fmt.Printf("selected K = %d\n\n", sweep.BestK)

	// 4. Final clustering and per-group profiles.
	res, err := cluster.KMeans(working.Rows, cluster.Options{
		K: sweep.BestK, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	items := knowledge.FromClusterResult(data.Name, res, working.Features, 4)
	fmt.Println("patient groups:")
	for _, it := range items {
		if it.Kind != knowledge.KindCluster {
			continue
		}
		fmt.Printf("  %s\n    %s\n", it.Title, it.Description)
	}
}
