// Jobs: the analysis-as-a-service API. Instead of blocking on
// engine.Analyze, submit examination logs to a Service and get Job
// handles back: a ward's batch of logs queues under admission control,
// higher-priority logs jump the queue, progress streams live from the
// stage scheduler, and every report is identical to what the blocking
// call would have produced.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"adahealth"
)

func main() {
	ctx := context.Background()

	// One service = one shared engine, stage pool, and K-DB. Two
	// worker slots: a third submission waits in the admission queue.
	svc, err := adahealth.NewService(adahealth.ServiceConfig{Workers: 2, QueueDepth: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Shutdown(context.Background())

	// Three wards submit their logs; the stat ward outranks the rest.
	jobs := make([]*adahealth.Job, 0, 3)
	for i, submit := range []struct {
		ward     string
		priority int
	}{
		{"ward-a", 0},
		{"ward-b", 0},
		{"stat-ward", 5},
	} {
		cfg := adahealth.SmallDataConfig()
		cfg.Seed = int64(i + 1)
		data, err := adahealth.GenerateSyntheticLog(cfg)
		if err != nil {
			log.Fatal(err)
		}
		data.Name = submit.ward

		job, err := svc.Submit(ctx, data,
			adahealth.WithPriority(submit.priority),
			adahealth.WithLabels(map[string]string{"ward": submit.ward}),
			adahealth.WithDeadline(time.Now().Add(5*time.Minute)))
		if err != nil {
			// A full queue is backpressure, not failure: callers can
			// shed load here or block politely with SubmitWait.
			log.Fatalf("submitting %s: %v", submit.ward, err)
		}
		fmt.Printf("submitted %s as %s (status %s)\n", submit.ward, job.ID(), job.Status())
		jobs = append(jobs, job)
	}

	// Stream one job's live progress: lifecycle transitions plus
	// per-stage start/finish straight from the DAG scheduler.
	go func() {
		for ev := range jobs[2].Events() {
			if ev.Stage != "" {
				fmt.Printf("  [%s] stage %-16s %s\n", ev.JobID, ev.Stage, ev.Phase)
			} else {
				fmt.Printf("  [%s] -> %s\n", ev.JobID, ev.Phase)
			}
		}
	}()

	// Wait for everything; reports are bit-for-bit what Analyze gives.
	for _, job := range jobs {
		report, err := job.Wait(ctx)
		if err != nil {
			log.Fatalf("%s: %v", job.ID(), err)
		}
		fmt.Printf("%s (%s): K=%d, %d knowledge items, %d stages traced\n",
			job.ID(), job.Labels()["ward"], report.Sweep.BestK,
			len(report.Ranked), len(report.Stages))
	}
}
