package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"
)

// DateLayout is the on-disk date format for CSV files.
const DateLayout = "2006-01-02"

// WriteCSV writes the log as three CSV streams: exam catalog, patient
// registry and records. Any writer may be nil to skip that stream.
func (l *Log) WriteCSV(exams, patients, records io.Writer) error {
	if exams != nil {
		w := csv.NewWriter(exams)
		if err := w.Write([]string{"code", "name", "category"}); err != nil {
			return fmt.Errorf("dataset: writing exam header: %w", err)
		}
		for _, e := range l.Exams {
			if err := w.Write([]string{e.Code, e.Name, e.Category}); err != nil {
				return fmt.Errorf("dataset: writing exam row: %w", err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return fmt.Errorf("dataset: flushing exams: %w", err)
		}
	}
	if patients != nil {
		w := csv.NewWriter(patients)
		if err := w.Write([]string{"id", "age", "profile"}); err != nil {
			return fmt.Errorf("dataset: writing patient header: %w", err)
		}
		for _, p := range l.Patients {
			if err := w.Write([]string{p.ID, strconv.Itoa(p.Age), p.Profile}); err != nil {
				return fmt.Errorf("dataset: writing patient row: %w", err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return fmt.Errorf("dataset: flushing patients: %w", err)
		}
	}
	if records != nil {
		w := csv.NewWriter(records)
		if err := w.Write([]string{"patient_id", "exam_code", "date"}); err != nil {
			return fmt.Errorf("dataset: writing record header: %w", err)
		}
		for _, r := range l.Records {
			if err := w.Write([]string{r.PatientID, r.ExamCode, r.Date.Format(DateLayout)}); err != nil {
				return fmt.Errorf("dataset: writing record row: %w", err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return fmt.Errorf("dataset: flushing records: %w", err)
		}
	}
	return nil
}

// ReadCSV reads a log from the three CSV streams produced by WriteCSV.
func ReadCSV(name string, exams, patients, records io.Reader) (*Log, error) {
	l := NewLog(name)

	er := csv.NewReader(exams)
	rows, err := er.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading exams: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: exams CSV is empty")
	}
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("dataset: exams row %d: want 3 fields, got %d", i+2, len(row))
		}
		if err := l.AddExam(ExamType{Code: row[0], Name: row[1], Category: row[2]}); err != nil {
			return nil, err
		}
	}

	pr := csv.NewReader(patients)
	rows, err = pr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading patients: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: patients CSV is empty")
	}
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("dataset: patients row %d: want 3 fields, got %d", i+2, len(row))
		}
		age, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: patients row %d: bad age %q: %w", i+2, row[1], err)
		}
		if err := l.AddPatient(Patient{ID: row[0], Age: age, Profile: row[2]}); err != nil {
			return nil, err
		}
	}

	rr := csv.NewReader(records)
	rows, err = rr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading records: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: records CSV is empty")
	}
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("dataset: records row %d: want 3 fields, got %d", i+2, len(row))
		}
		d, err := time.Parse(DateLayout, row[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: records row %d: bad date %q: %w", i+2, row[2], err)
		}
		if err := l.AddRecord(Record{PatientID: row[0], ExamCode: row[1], Date: d}); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// SaveCSVFiles writes exams.csv, patients.csv and records.csv under dir.
func (l *Log) SaveCSVFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: creating %s: %w", dir, err)
	}
	ef, err := os.Create(dir + "/exams.csv")
	if err != nil {
		return err
	}
	defer ef.Close()
	pf, err := os.Create(dir + "/patients.csv")
	if err != nil {
		return err
	}
	defer pf.Close()
	rf, err := os.Create(dir + "/records.csv")
	if err != nil {
		return err
	}
	defer rf.Close()
	return l.WriteCSV(ef, pf, rf)
}

// LoadCSVFiles reads a log previously written by SaveCSVFiles.
func LoadCSVFiles(name, dir string) (*Log, error) {
	ef, err := os.Open(dir + "/exams.csv")
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	pf, err := os.Open(dir + "/patients.csv")
	if err != nil {
		return nil, err
	}
	defer pf.Close()
	rf, err := os.Open(dir + "/records.csv")
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	return ReadCSV(name, ef, pf, rf)
}

// WriteJSON encodes the whole log as a single JSON document.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(l); err != nil {
		return fmt.Errorf("dataset: encoding JSON: %w", err)
	}
	return nil
}

// ReadJSON decodes a log written by WriteJSON and rebuilds its indexes.
func ReadJSON(r io.Reader) (*Log, error) {
	var l Log
	dec := json.NewDecoder(r)
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("dataset: decoding JSON: %w", err)
	}
	l.ReindexAfterLoad()
	return &l, nil
}
