package dataset

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func day(d int) time.Time {
	return time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, d)
}

func sampleLog(t *testing.T) *Log {
	t.Helper()
	l := NewLog("sample")
	for _, e := range []ExamType{
		{Code: "EX001", Name: "HbA1c", Category: "routine"},
		{Code: "EX002", Name: "ECG", Category: "cardiovascular"},
		{Code: "EX003", Name: "FundusExam", Category: "ophthalmic"},
	} {
		if err := l.AddExam(e); err != nil {
			t.Fatalf("AddExam(%v): %v", e, err)
		}
	}
	for _, p := range []Patient{
		{ID: "P1", Age: 60}, {ID: "P2", Age: 45}, {ID: "P3", Age: 71},
	} {
		if err := l.AddPatient(p); err != nil {
			t.Fatalf("AddPatient(%v): %v", p, err)
		}
	}
	recs := []Record{
		{"P1", "EX001", day(0)},
		{"P1", "EX002", day(0)},
		{"P1", "EX001", day(30)},
		{"P2", "EX001", day(5)},
		{"P2", "EX003", day(5)},
		{"P3", "EX002", day(9)},
	}
	for _, r := range recs {
		if err := l.AddRecord(r); err != nil {
			t.Fatalf("AddRecord(%v): %v", r, err)
		}
	}
	return l
}

func TestAddDuplicates(t *testing.T) {
	l := sampleLog(t)
	if err := l.AddExam(ExamType{Code: "EX001"}); err == nil {
		t.Error("duplicate exam code accepted")
	}
	if err := l.AddPatient(Patient{ID: "P1"}); err == nil {
		t.Error("duplicate patient ID accepted")
	}
}

func TestAddRecordReferentialIntegrity(t *testing.T) {
	l := sampleLog(t)
	if err := l.AddRecord(Record{"P9", "EX001", day(1)}); err == nil {
		t.Error("record with unknown patient accepted")
	}
	if err := l.AddRecord(Record{"P1", "EX999", day(1)}); err == nil {
		t.Error("record with unknown exam accepted")
	}
}

func TestCounts(t *testing.T) {
	l := sampleLog(t)
	if got := l.NumPatients(); got != 3 {
		t.Errorf("NumPatients = %d, want 3", got)
	}
	if got := l.NumExamTypes(); got != 3 {
		t.Errorf("NumExamTypes = %d, want 3", got)
	}
	if got := l.NumRecords(); got != 6 {
		t.Errorf("NumRecords = %d, want 6", got)
	}
}

func TestExamFrequencies(t *testing.T) {
	l := sampleLog(t)
	freq := l.ExamFrequencies()
	want := map[string]int{"EX001": 3, "EX002": 2, "EX003": 1}
	for code, w := range want {
		if freq[code] != w {
			t.Errorf("freq[%s] = %d, want %d", code, freq[code], w)
		}
	}
}

func TestExamsByFrequencyOrder(t *testing.T) {
	l := sampleLog(t)
	got := l.ExamsByFrequency()
	want := []string{"EX001", "EX002", "EX003"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExamsByFrequency = %v, want %v", got, want)
		}
	}
}

func TestExamsByFrequencyTieBreak(t *testing.T) {
	l := NewLog("ties")
	l.AddExam(ExamType{Code: "B"})
	l.AddExam(ExamType{Code: "A"})
	l.AddPatient(Patient{ID: "P1"})
	l.AddRecord(Record{"P1", "A", day(0)})
	l.AddRecord(Record{"P1", "B", day(1)})
	got := l.ExamsByFrequency()
	if got[0] != "A" || got[1] != "B" {
		t.Errorf("tie-break not lexicographic: %v", got)
	}
}

func TestRecordsPerPatientIncludesZero(t *testing.T) {
	l := sampleLog(t)
	l.AddPatient(Patient{ID: "P4", Age: 50})
	counts := l.RecordsPerPatient()
	if c, ok := counts["P4"]; !ok || c != 0 {
		t.Errorf("P4 count = %d,%v; want 0,true", c, ok)
	}
	if counts["P1"] != 3 {
		t.Errorf("P1 count = %d, want 3", counts["P1"])
	}
}

func TestTimeSpan(t *testing.T) {
	l := sampleLog(t)
	min, max, ok := l.TimeSpan()
	if !ok {
		t.Fatal("TimeSpan not ok on non-empty log")
	}
	if !min.Equal(day(0)) || !max.Equal(day(30)) {
		t.Errorf("TimeSpan = [%v, %v], want [%v, %v]", min, max, day(0), day(30))
	}
	empty := NewLog("e")
	if _, _, ok := empty.TimeSpan(); ok {
		t.Error("TimeSpan ok on empty log")
	}
}

func TestVisitsGrouping(t *testing.T) {
	l := sampleLog(t)
	visits := l.Visits()
	// P1 has two visits (day 0, day 30), P2 one, P3 one.
	if len(visits) != 4 {
		t.Fatalf("got %d visits, want 4", len(visits))
	}
	v0 := visits[0]
	if v0.PatientID != "P1" || len(v0.ExamCodes) != 2 {
		t.Errorf("first visit = %+v, want P1 with 2 exams", v0)
	}
	if v0.ExamCodes[0] != "EX001" || v0.ExamCodes[1] != "EX002" {
		t.Errorf("visit exams not sorted: %v", v0.ExamCodes)
	}
}

func TestVisitsDeduplicateSameDay(t *testing.T) {
	l := sampleLog(t)
	// Same exam twice on the same day collapses to once in the visit.
	l.AddRecord(Record{"P3", "EX002", day(9)})
	for _, v := range l.Visits() {
		if v.PatientID == "P3" && len(v.ExamCodes) != 1 {
			t.Errorf("P3 visit exams = %v, want 1 deduplicated code", v.ExamCodes)
		}
	}
}

func TestFilterPatients(t *testing.T) {
	l := sampleLog(t)
	old := l.FilterPatients(func(p Patient) bool { return p.Age >= 60 })
	if old.NumPatients() != 2 {
		t.Errorf("filtered patients = %d, want 2", old.NumPatients())
	}
	if old.NumRecords() != 4 {
		t.Errorf("filtered records = %d, want 4", old.NumRecords())
	}
	if old.NumExamTypes() != 3 {
		t.Errorf("catalog shrank to %d, want preserved 3", old.NumExamTypes())
	}
}

func TestFilterExams(t *testing.T) {
	l := sampleLog(t)
	sub := l.FilterExams([]string{"EX001"})
	if sub.NumExamTypes() != 1 {
		t.Errorf("exam types = %d, want 1", sub.NumExamTypes())
	}
	if sub.NumRecords() != 3 {
		t.Errorf("records = %d, want 3", sub.NumRecords())
	}
	// Horizontal partial mining keeps all patients.
	if sub.NumPatients() != 3 {
		t.Errorf("patients = %d, want 3 (retained)", sub.NumPatients())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := sampleLog(t)
	var eb, pb, rb bytes.Buffer
	if err := l.WriteCSV(&eb, &pb, &rb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV("sample", &eb, &pb, &rb)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.NumPatients() != l.NumPatients() ||
		got.NumExamTypes() != l.NumExamTypes() ||
		got.NumRecords() != l.NumRecords() {
		t.Errorf("round trip mismatch: got %d/%d/%d want %d/%d/%d",
			got.NumPatients(), got.NumExamTypes(), got.NumRecords(),
			l.NumPatients(), l.NumExamTypes(), l.NumRecords())
	}
	if p, ok := got.Patient("P3"); !ok || p.Age != 71 {
		t.Errorf("patient P3 after round trip = %+v, %v", p, ok)
	}
}

func TestCSVFilesRoundTrip(t *testing.T) {
	l := sampleLog(t)
	dir := t.TempDir()
	if err := l.SaveCSVFiles(dir); err != nil {
		t.Fatalf("SaveCSVFiles: %v", err)
	}
	got, err := LoadCSVFiles("sample", dir)
	if err != nil {
		t.Fatalf("LoadCSVFiles: %v", err)
	}
	if got.NumRecords() != l.NumRecords() {
		t.Errorf("records = %d, want %d", got.NumRecords(), l.NumRecords())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := sampleLog(t)
	var b bytes.Buffer
	if err := l.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&b)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.NumRecords() != l.NumRecords() {
		t.Errorf("records = %d, want %d", got.NumRecords(), l.NumRecords())
	}
	// Indexes must be rebuilt: adding a duplicate should fail.
	if err := got.AddPatient(Patient{ID: "P1"}); err == nil {
		t.Error("indexes not rebuilt after JSON load")
	}
}

func TestReadCSVMalformed(t *testing.T) {
	exams := "code,name,category\nEX001,HbA1c,routine\n"
	patients := "id,age,profile\nP1,notanumber,\n"
	records := "patient_id,exam_code,date\n"
	_, err := ReadCSV("x", strings.NewReader(exams), strings.NewReader(patients), strings.NewReader(records))
	if err == nil {
		t.Fatal("malformed age accepted")
	}

	patients = "id,age,profile\nP1,44,\n"
	records = "patient_id,exam_code,date\nP1,EX001,not-a-date\n"
	_, err = ReadCSV("x", strings.NewReader(exams), strings.NewReader(patients), strings.NewReader(records))
	if err == nil {
		t.Fatal("malformed date accepted")
	}

	_, err = ReadCSV("x", strings.NewReader(""), strings.NewReader(""), strings.NewReader(""))
	if err == nil {
		t.Fatal("empty CSV accepted")
	}
}

func TestValidate(t *testing.T) {
	l := sampleLog(t)
	issues := l.Validate(ValidateOptions{MinAge: 4, MaxAge: 95, From: day(0), To: day(365)})
	if len(issues) != 0 {
		t.Errorf("clean log has issues: %v", issues)
	}

	l.Patients = append(l.Patients, Patient{ID: "P99", Age: 120})
	l.Records = append(l.Records, Record{"PXX", "EX001", day(-5)})
	issues = l.Validate(ValidateOptions{MinAge: 4, MaxAge: 95, From: day(0), To: day(365)})
	var ageIssue, refIssue, dateIssue bool
	for _, is := range issues {
		s := is.String()
		if strings.Contains(s, "age 120") {
			ageIssue = true
		}
		if strings.Contains(s, "unknown patient") {
			refIssue = true
		}
		if strings.Contains(s, "before observation") {
			dateIssue = true
		}
	}
	if !ageIssue || !refIssue || !dateIssue {
		t.Errorf("missing issues (age=%v ref=%v date=%v): %v", ageIssue, refIssue, dateIssue, issues)
	}
}
