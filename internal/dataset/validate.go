package dataset

import (
	"fmt"
	"time"
)

// ValidationIssue describes one problem found by Validate.
type ValidationIssue struct {
	Kind    string // "patient", "exam", "record"
	Subject string // offending ID / code / index
	Detail  string
}

func (v ValidationIssue) String() string {
	return fmt.Sprintf("%s %s: %s", v.Kind, v.Subject, v.Detail)
}

// ValidateOptions bounds the acceptable contents of a Log.
type ValidateOptions struct {
	MinAge, MaxAge int       // inclusive age bounds (0,0 disables the check)
	From, To       time.Time // inclusive date bounds (zero values disable)
}

// Validate checks referential integrity and value bounds, returning
// every issue found. An empty slice means the log is clean.
func (l *Log) Validate(opts ValidateOptions) []ValidationIssue {
	var issues []ValidationIssue

	seenExam := make(map[string]bool, len(l.Exams))
	for _, e := range l.Exams {
		if e.Code == "" {
			issues = append(issues, ValidationIssue{"exam", e.Name, "empty code"})
			continue
		}
		if seenExam[e.Code] {
			issues = append(issues, ValidationIssue{"exam", e.Code, "duplicate code"})
		}
		seenExam[e.Code] = true
	}

	seenPatient := make(map[string]bool, len(l.Patients))
	for _, p := range l.Patients {
		if p.ID == "" {
			issues = append(issues, ValidationIssue{"patient", "", "empty ID"})
			continue
		}
		if seenPatient[p.ID] {
			issues = append(issues, ValidationIssue{"patient", p.ID, "duplicate ID"})
		}
		seenPatient[p.ID] = true
		if opts.MaxAge > 0 && (p.Age < opts.MinAge || p.Age > opts.MaxAge) {
			issues = append(issues, ValidationIssue{
				"patient", p.ID,
				fmt.Sprintf("age %d outside [%d,%d]", p.Age, opts.MinAge, opts.MaxAge),
			})
		}
	}

	for i, r := range l.Records {
		subj := fmt.Sprintf("#%d", i)
		if !seenPatient[r.PatientID] {
			issues = append(issues, ValidationIssue{"record", subj, "unknown patient " + r.PatientID})
		}
		if !seenExam[r.ExamCode] {
			issues = append(issues, ValidationIssue{"record", subj, "unknown exam " + r.ExamCode})
		}
		if !opts.From.IsZero() && r.Date.Before(opts.From) {
			issues = append(issues, ValidationIssue{"record", subj, "date before observation window"})
		}
		if !opts.To.IsZero() && r.Date.After(opts.To) {
			issues = append(issues, ValidationIssue{"record", subj, "date after observation window"})
		}
	}
	return issues
}
