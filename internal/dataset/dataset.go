// Package dataset defines the medical examination-log data model used
// throughout ADA-HEALTH: patients, examination types, and timestamped
// examination records, together with loading, saving and validation.
//
// The model mirrors the dataset described in Section IV of the paper:
// an anonymized log of diabetic patients where each record carries at
// least a unique patient identifier and the type and date of an exam.
package dataset

import (
	"fmt"
	"sort"
	"time"
)

// ExamType describes one kind of medical examination (e.g. a regular
// checkup or a specific diagnostic test for a complication).
type ExamType struct {
	// Code is the unique identifier of the exam type, e.g. "EX042".
	Code string `json:"code"`
	// Name is a human-readable label.
	Name string `json:"name"`
	// Category groups exam types at a coarser abstraction level
	// (used by the taxonomy-aware pattern miner), e.g. "routine",
	// "cardiovascular", "renal", "ophthalmic".
	Category string `json:"category"`
}

// Patient is one anonymized patient.
type Patient struct {
	// ID is the unique patient identifier, e.g. "P000017".
	ID string `json:"id"`
	// Age in years at the start of the observation period.
	Age int `json:"age"`
	// Profile is the hidden generating profile for synthetic data
	// (ground truth for evaluation only; empty for real data). It is
	// never consumed by the mining pipeline itself.
	Profile string `json:"profile,omitempty"`
}

// Record is a single examination event: patient, exam type and date.
type Record struct {
	PatientID string    `json:"patient_id"`
	ExamCode  string    `json:"exam_code"`
	Date      time.Time `json:"date"`
}

// Log is a complete examination log: the exam-type catalog, the patient
// registry and all records. A Log is the unit of input to the
// ADA-HEALTH pipeline.
type Log struct {
	Name     string     `json:"name"`
	Exams    []ExamType `json:"exams"`
	Patients []Patient  `json:"patients"`
	Records  []Record   `json:"records"`

	examIndex    map[string]int
	patientIndex map[string]int
}

// NewLog returns an empty Log with the given name.
func NewLog(name string) *Log {
	return &Log{Name: name}
}

// AddExam registers an exam type. Duplicate codes are rejected.
func (l *Log) AddExam(e ExamType) error {
	l.ensureIndexes()
	if _, dup := l.examIndex[e.Code]; dup {
		return fmt.Errorf("dataset: duplicate exam code %q", e.Code)
	}
	l.examIndex[e.Code] = len(l.Exams)
	l.Exams = append(l.Exams, e)
	return nil
}

// AddPatient registers a patient. Duplicate IDs are rejected.
func (l *Log) AddPatient(p Patient) error {
	l.ensureIndexes()
	if _, dup := l.patientIndex[p.ID]; dup {
		return fmt.Errorf("dataset: duplicate patient ID %q", p.ID)
	}
	l.patientIndex[p.ID] = len(l.Patients)
	l.Patients = append(l.Patients, p)
	return nil
}

// AddRecord appends an examination record. The patient and exam type
// must already be registered.
func (l *Log) AddRecord(r Record) error {
	l.ensureIndexes()
	if _, ok := l.patientIndex[r.PatientID]; !ok {
		return fmt.Errorf("dataset: record references unknown patient %q", r.PatientID)
	}
	if _, ok := l.examIndex[r.ExamCode]; !ok {
		return fmt.Errorf("dataset: record references unknown exam code %q", r.ExamCode)
	}
	l.Records = append(l.Records, r)
	return nil
}

func (l *Log) ensureIndexes() {
	if l.examIndex == nil {
		l.examIndex = make(map[string]int, len(l.Exams))
		for i, e := range l.Exams {
			l.examIndex[e.Code] = i
		}
	}
	if l.patientIndex == nil {
		l.patientIndex = make(map[string]int, len(l.Patients))
		for i, p := range l.Patients {
			l.patientIndex[p.ID] = i
		}
	}
}

// ReindexAfterLoad rebuilds the internal lookup tables. It must be
// called after populating the exported fields directly (e.g. after
// decoding from JSON).
func (l *Log) ReindexAfterLoad() {
	l.examIndex = nil
	l.patientIndex = nil
	l.ensureIndexes()
}

// EnsureIndexes builds the internal lookup tables if they are missing,
// leaving valid ones untouched. Accessors build them lazily on first
// use, which is not safe when that first use happens on several
// goroutines at once — callers handing one log to concurrent readers
// (e.g. the stage DAG's root stages) index it here, serially, first.
func (l *Log) EnsureIndexes() { l.ensureIndexes() }

// Exam returns the exam type for code, if registered.
func (l *Log) Exam(code string) (ExamType, bool) {
	l.ensureIndexes()
	i, ok := l.examIndex[code]
	if !ok {
		return ExamType{}, false
	}
	return l.Exams[i], true
}

// Patient returns the patient for id, if registered.
func (l *Log) Patient(id string) (Patient, bool) {
	l.ensureIndexes()
	i, ok := l.patientIndex[id]
	if !ok {
		return Patient{}, false
	}
	return l.Patients[i], true
}

// NumPatients reports the number of registered patients.
func (l *Log) NumPatients() int { return len(l.Patients) }

// NumExamTypes reports the number of registered exam types.
func (l *Log) NumExamTypes() int { return len(l.Exams) }

// NumRecords reports the number of examination records.
func (l *Log) NumRecords() int { return len(l.Records) }

// ExamFrequencies returns, for every exam code, the number of records
// of that exam type. Codes with zero records are included.
func (l *Log) ExamFrequencies() map[string]int {
	freq := make(map[string]int, len(l.Exams))
	for _, e := range l.Exams {
		freq[e.Code] = 0
	}
	for _, r := range l.Records {
		freq[r.ExamCode]++
	}
	return freq
}

// ExamsByFrequency returns exam codes ordered by decreasing record
// count; ties are broken by code so the order is deterministic.
func (l *Log) ExamsByFrequency() []string {
	freq := l.ExamFrequencies()
	codes := make([]string, 0, len(freq))
	for c := range freq {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool {
		if freq[codes[i]] != freq[codes[j]] {
			return freq[codes[i]] > freq[codes[j]]
		}
		return codes[i] < codes[j]
	})
	return codes
}

// RecordsPerPatient returns the number of records for every patient ID.
// Patients with zero records are included.
func (l *Log) RecordsPerPatient() map[string]int {
	counts := make(map[string]int, len(l.Patients))
	for _, p := range l.Patients {
		counts[p.ID] = 0
	}
	for _, r := range l.Records {
		counts[r.PatientID]++
	}
	return counts
}

// TimeSpan returns the earliest and latest record dates. ok is false
// when the log holds no records.
func (l *Log) TimeSpan() (min, max time.Time, ok bool) {
	if len(l.Records) == 0 {
		return time.Time{}, time.Time{}, false
	}
	min, max = l.Records[0].Date, l.Records[0].Date
	for _, r := range l.Records[1:] {
		if r.Date.Before(min) {
			min = r.Date
		}
		if r.Date.After(max) {
			max = r.Date
		}
	}
	return min, max, true
}

// Visit is the set of exams one patient underwent on one date. Visits
// are the transactional unit consumed by the frequent-pattern miner.
type Visit struct {
	PatientID string
	Date      time.Time
	ExamCodes []string
}

// Visits groups records into per-patient per-day visits. Exam codes
// within a visit are sorted and de-duplicated; visits are ordered by
// patient registration order, then date.
func (l *Log) Visits() []Visit {
	type key struct {
		patient string
		day     string
	}
	byKey := make(map[key]map[string]bool)
	for _, r := range l.Records {
		k := key{r.PatientID, r.Date.Format("2006-01-02")}
		set := byKey[k]
		if set == nil {
			set = make(map[string]bool)
			byKey[k] = set
		}
		set[r.ExamCode] = true
	}
	l.ensureIndexes()
	visits := make([]Visit, 0, len(byKey))
	for k, set := range byKey {
		codes := make([]string, 0, len(set))
		for c := range set {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		d, _ := time.Parse("2006-01-02", k.day)
		visits = append(visits, Visit{PatientID: k.patient, Date: d, ExamCodes: codes})
	}
	sort.Slice(visits, func(i, j int) bool {
		pi, pj := l.patientIndex[visits[i].PatientID], l.patientIndex[visits[j].PatientID]
		if pi != pj {
			return pi < pj
		}
		return visits[i].Date.Before(visits[j].Date)
	})
	return visits
}

// FilterPatients returns a new Log restricted to the patients for which
// keep returns true. The exam catalog is preserved in full.
func (l *Log) FilterPatients(keep func(Patient) bool) *Log {
	out := NewLog(l.Name)
	for _, e := range l.Exams {
		out.AddExam(e) //nolint:errcheck // source catalog has no duplicates
	}
	kept := make(map[string]bool, len(l.Patients))
	for _, p := range l.Patients {
		if keep(p) {
			kept[p.ID] = true
			out.AddPatient(p) //nolint:errcheck
		}
	}
	for _, r := range l.Records {
		if kept[r.PatientID] {
			out.AddRecord(r) //nolint:errcheck
		}
	}
	return out
}

// FilterExams returns a new Log restricted to records whose exam code
// is in codes. All patients remain registered (horizontal partial
// mining retains the total number of patients while reducing the
// feature space, per Section IV-B of the paper).
func (l *Log) FilterExams(codes []string) *Log {
	keep := make(map[string]bool, len(codes))
	for _, c := range codes {
		keep[c] = true
	}
	out := NewLog(l.Name)
	for _, e := range l.Exams {
		if keep[e.Code] {
			out.AddExam(e) //nolint:errcheck
		}
	}
	for _, p := range l.Patients {
		out.AddPatient(p) //nolint:errcheck
	}
	for _, r := range l.Records {
		if keep[r.ExamCode] {
			out.AddRecord(r) //nolint:errcheck
		}
	}
	return out
}
