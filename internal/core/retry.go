package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// transientErr marks an error as transient: worth retrying at the
// stage level. It unwraps to the underlying error, so errors.Is/As
// matching is unaffected by the marker.
type transientErr struct{ err error }

func (t *transientErr) Error() string   { return t.err.Error() }
func (t *transientErr) Unwrap() error   { return t.err }
func (t *transientErr) Transient() bool { return true }

// Transient wraps err as a transient failure: a stage returning it is
// re-run under the scheduler's retry policy (Config.StageRetries)
// instead of failing the analysis outright. Use it for failures that
// plausibly heal on their own — a saturated disk flushing the K-DB, a
// briefly unavailable backing service — never for deterministic
// compute errors, which would retry to the same failure. Nil passes
// through.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err (or anything it wraps) is marked
// transient — either via Transient or by implementing
// interface{ Transient() bool }. Context cancellation and deadline
// errors are never transient: the caller gave up.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// retryPolicy is the scheduler's resolved per-stage retry behaviour.
type retryPolicy struct {
	retries int           // extra attempts after the first failure
	backoff time.Duration // first-retry delay, doubled per retry
}

// maxStageBackoff caps the exponential backoff between attempts.
const maxStageBackoff = 2 * time.Second

// retryPolicy resolves the engine's configuration (filling the 50 ms
// default backoff when retries are enabled without one).
func (e *Engine) retryPolicy() retryPolicy {
	rp := retryPolicy{retries: e.cfg.StageRetries, backoff: e.cfg.StageRetryBackoff}
	if rp.retries > 0 && rp.backoff <= 0 {
		rp.backoff = 50 * time.Millisecond
	}
	return rp
}

// executeStage runs one stage under the retry policy: transient
// failures re-run after capped exponential backoff, up to rp.retries
// extra attempts; deterministic failures and context cancellation
// surface immediately. It returns how many attempts ran (≥ 1) and the
// final outcome.
func executeStage(ctx context.Context, st Stage, s *pipelineState, rp retryPolicy) (attempts int, err error) {
	backoff := rp.backoff
	for attempts = 1; ; attempts++ {
		err = st.Run(ctx, s)
		if err == nil || attempts > rp.retries || !IsTransient(err) {
			return attempts, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return attempts, cerr
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return attempts, ctx.Err()
		}
		if backoff *= 2; backoff > maxStageBackoff {
			backoff = maxStageBackoff
		}
	}
}

// validateRetry checks the retry knobs (called from Config.Validate).
func (c Config) validateRetry() error {
	if c.StageRetries < 0 {
		return fmt.Errorf("core: negative StageRetries %d (0 disables stage retries)", c.StageRetries)
	}
	if c.StageRetryBackoff < 0 {
		return fmt.Errorf("core: negative StageRetryBackoff %v (0 selects the 50ms default)", c.StageRetryBackoff)
	}
	return nil
}
