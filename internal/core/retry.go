package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"
)

// PanicError is a recovered stage panic: the scheduler isolates it to
// the panicking stage's own analysis — the job fails with this error,
// stack attached, and the process (a daemon serving other jobs) keeps
// running.
type PanicError struct {
	// Stage is the panicking stage's name.
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("stage %s panicked: %v", p.Stage, p.Value)
}

// StageTimeoutError fails a stage attempt that exceeded
// Config.StageTimeout. It unwraps to context.DeadlineExceeded, so
// errors.Is-matching works, and is never retried (the next attempt
// would run out of the same budget).
type StageTimeoutError struct {
	// Stage is the stage that ran out of time.
	Stage string
	// Timeout is the per-attempt budget it exceeded.
	Timeout time.Duration
}

func (e *StageTimeoutError) Error() string {
	return fmt.Sprintf("stage %s exceeded its %v deadline", e.Stage, e.Timeout)
}

func (e *StageTimeoutError) Unwrap() error { return context.DeadlineExceeded }

// transientErr marks an error as transient: worth retrying at the
// stage level. It unwraps to the underlying error, so errors.Is/As
// matching is unaffected by the marker.
type transientErr struct{ err error }

func (t *transientErr) Error() string   { return t.err.Error() }
func (t *transientErr) Unwrap() error   { return t.err }
func (t *transientErr) Transient() bool { return true }

// Transient wraps err as a transient failure: a stage returning it is
// re-run under the scheduler's retry policy (Config.StageRetries)
// instead of failing the analysis outright. Use it for failures that
// plausibly heal on their own — a saturated disk flushing the K-DB, a
// briefly unavailable backing service — never for deterministic
// compute errors, which would retry to the same failure. Nil passes
// through.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err (or anything it wraps) is marked
// transient — either via Transient or by implementing
// interface{ Transient() bool }. Context cancellation and deadline
// errors are never transient: the caller gave up.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// retryPolicy is the scheduler's resolved per-stage retry behaviour.
type retryPolicy struct {
	retries int           // extra attempts after the first failure
	backoff time.Duration // first-retry delay cap, doubled per retry
	timeout time.Duration // per-attempt deadline (0 = none)
}

// maxStageBackoff caps the exponential backoff between attempts.
const maxStageBackoff = 2 * time.Second

// retryPolicy resolves the engine's configuration (filling the 50 ms
// default backoff when retries are enabled without one).
func (e *Engine) retryPolicy() retryPolicy {
	rp := retryPolicy{
		retries: e.cfg.StageRetries,
		backoff: e.cfg.StageRetryBackoff,
		timeout: e.cfg.StageTimeout,
	}
	if rp.retries > 0 && rp.backoff <= 0 {
		rp.backoff = 50 * time.Millisecond
	}
	return rp
}

// jitterBackoff applies full jitter: a uniform draw from (0, d]. A
// batch of stages whose first attempts failed together then spreads
// its retries over the whole window instead of re-converging on the
// disk at the same instant (which is how they failed the first time).
func jitterBackoff(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(1 + rand.Int63n(int64(d)))
}

// executeStage runs one stage under the retry policy: transient
// failures re-run after capped, fully-jittered exponential backoff, up
// to rp.retries extra attempts; deterministic failures and context
// cancellation surface immediately. A panicking attempt is recovered
// into a *PanicError — failing this analysis, never the process — and
// an attempt exceeding rp.timeout fails with a *StageTimeoutError
// (neither is retried). It returns how many attempts ran (≥ 1) and the
// final outcome.
func executeStage(ctx context.Context, st Stage, s *pipelineState, rp retryPolicy) (attempts int, err error) {
	backoff := rp.backoff
	for attempts = 1; ; attempts++ {
		err = runStageAttempt(ctx, st, s, rp.timeout)
		if err == nil || attempts > rp.retries || !IsTransient(err) {
			return attempts, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return attempts, cerr
		}
		select {
		case <-time.After(jitterBackoff(backoff)):
		case <-ctx.Done():
			return attempts, ctx.Err()
		}
		if backoff *= 2; backoff > maxStageBackoff {
			backoff = maxStageBackoff
		}
	}
}

// runStageAttempt runs one attempt with panic isolation and the
// optional per-attempt deadline.
func runStageAttempt(ctx context.Context, st Stage, s *pipelineState, timeout time.Duration) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Stage: st.Name(), Value: v, Stack: debug.Stack()}
		}
	}()
	if timeout <= 0 {
		return st.Run(ctx, s)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	err = st.Run(actx, s)
	// Distinguish "this attempt ran out of its budget" (the stage ctx
	// expired while the parent is alive) from the caller giving up.
	if err != nil && ctx.Err() == nil && actx.Err() != nil &&
		errors.Is(err, context.DeadlineExceeded) {
		return &StageTimeoutError{Stage: st.Name(), Timeout: timeout}
	}
	return err
}

// validateRetry checks the retry knobs (called from Config.Validate).
func (c Config) validateRetry() error {
	if c.StageRetries < 0 {
		return fmt.Errorf("core: negative StageRetries %d (0 disables stage retries)", c.StageRetries)
	}
	if c.StageRetryBackoff < 0 {
		return fmt.Errorf("core: negative StageRetryBackoff %v (0 selects the 50ms default)", c.StageRetryBackoff)
	}
	if c.StageTimeout < 0 {
		return fmt.Errorf("core: negative StageTimeout %v (0 disables per-stage deadlines)", c.StageTimeout)
	}
	return nil
}
