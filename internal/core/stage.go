package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"adahealth/internal/cluster"
	"adahealth/internal/dataset"
	"adahealth/internal/endgoal"
	"adahealth/internal/fpm"
	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/ranking"
	"adahealth/internal/stats"
	"adahealth/internal/vsm"
)

// Stage is one node of the analysis DAG: a named unit of pipeline work
// with declared data dependencies. Inputs and Outputs are symbolic
// state keys (the key* constants): a stage becomes runnable once every
// stage producing one of its Inputs has completed, and its Outputs in
// turn unblock downstream stages. The scheduler guarantees that Run is
// called at most once, after all producers of its Inputs finished, so
// a stage may read the pipelineState fields behind its declared inputs
// and write the fields behind its declared outputs without locking —
// the completion hand-off is the synchronization.
//
// To add a stage: pick a name, declare which keys it consumes and
// which it produces (introducing new key* constants for new
// intermediate data), add fields for its products to pipelineState or
// Report, and append it to pipelineStages. Declaration order in
// pipelineStages must remain a valid topological order — every input
// produced by an earlier stage — because the sequential path executes
// stages in exactly that order (validateStages enforces it at
// construction). The scheduler derives all concurrency from the
// declared keys; no stage ever spells out "runs in parallel with X".
type Stage interface {
	// Name identifies the stage in traces and error messages.
	Name() string
	// Inputs lists the state keys the stage consumes.
	Inputs() []string
	// Outputs lists the state keys the stage produces.
	Outputs() []string
	// Run executes the stage. It must honour ctx for long work and
	// must only touch state covered by its declared inputs/outputs.
	Run(ctx context.Context, s *pipelineState) error
}

// State keys wiring the built-in pipeline DAG.
const (
	keyDescriptor = "descriptor"      // statistical characterization (stored in K-DB)
	keyRecall     = "recall"          // prior-knowledge hints recalled from the K-DB
	keyMatrix     = "matrix"          // VSM-transformed patient matrix
	keyWorking    = "working"         // partial-mining projection of the matrix
	keySweep      = "sweep"           // Table I K-optimization result
	keyClustering = "clustering"      // final clustering + cluster knowledge items
	keyPatterns   = "patterns"        // pattern + rule knowledge items
	keyDemand     = "demand"          // monthly demand series
	keyKnowledge  = "knowledge"       // knowledge items persisted to the K-DB
	keyEndGoals   = "recommendations" // end-goal recommendations
	keyRanked     = "ranked"          // final ranked knowledge list
)

// pipelineState is the shared mutable state of one analysis run. The
// stage DAG's data edges are fields here (or in the Report): each
// field is written by exactly one stage and read only by stages that
// declare the corresponding key as input. The input log is immutable
// and readable by every stage without a key.
type pipelineState struct {
	log *dataset.Log
	rep *Report

	matrix  *vsm.Matrix // produced by transform
	working *vsm.Matrix // produced by partialmine

	// descriptorDocID is the K-DB document ID of this analysis's own
	// just-stored descriptor (produced by characterize), which the
	// recall stage excludes so an analysis never recalls itself.
	descriptorDocID string
	// recallHints is the recall stage's retrieved prior knowledge
	// (nil on a miss or when recall is disabled — the cold path).
	recallHints *recallHints
	// arena, when non-nil, backs the sweep stage's worker slabs with
	// buffers that outlive this analysis (see AnalyzeOptions.Arena).
	arena *optimize.Arena
	// seedCentroids/seedFeatures are caller-provided sweep seeds
	// (AnalyzeOptions.SeedCentroids): the streaming layer's live
	// online model, remapped onto the working feature space by the
	// sweep stage. Set at construction, read-only thereafter.
	seedCentroids [][]float64
	seedFeatures  []string

	// degradeMu guards the degradation notes below. Unlike the keyed
	// DAG state, these are appended by whichever stages hit a soft
	// K-DB failure, possibly concurrently.
	degradeMu      sync.Mutex
	droppedWrites  int
	degradeReasons []string
}

// noteDrop records a K-DB write the pipeline shed instead of failing
// the analysis — graceful degradation under a tripped or broken store.
func (s *pipelineState) noteDrop(what string, err error) {
	s.degradeMu.Lock()
	s.droppedWrites++
	s.degradeReasons = append(s.degradeReasons, fmt.Sprintf("%s: %v", what, err))
	s.degradeMu.Unlock()
}

// noteDegraded records a degradation that is not a dropped write (a
// recall read falling back, a shed flush).
func (s *pipelineState) noteDegraded(what string, err error) {
	s.degradeMu.Lock()
	s.degradeReasons = append(s.degradeReasons, fmt.Sprintf("%s: %v", what, err))
	s.degradeMu.Unlock()
}

// degradation finalizes Report.Degraded: nil on a fully healthy run;
// otherwise the drop count plus sorted, deduplicated reasons (stages
// note them in scheduling order, which is nondeterministic under the
// DAG).
func (s *pipelineState) degradation() *Degradation {
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	if s.droppedWrites == 0 && len(s.degradeReasons) == 0 {
		return nil
	}
	sorted := append([]string(nil), s.degradeReasons...)
	sort.Strings(sorted)
	reasons := sorted[:0]
	for i, r := range sorted {
		if i == 0 || r != sorted[i-1] {
			reasons = append(reasons, r)
		}
	}
	return &Degradation{DroppedKDBWrites: s.droppedWrites, Reasons: reasons}
}

// funcStage is the Stage implementation used by the built-in pipeline:
// a name, declared keys, and a closure.
type funcStage struct {
	name    string
	inputs  []string
	outputs []string
	run     func(ctx context.Context, s *pipelineState) error
}

func (f *funcStage) Name() string      { return f.name }
func (f *funcStage) Inputs() []string  { return f.inputs }
func (f *funcStage) Outputs() []string { return f.outputs }
func (f *funcStage) Run(ctx context.Context, s *pipelineState) error {
	return f.run(ctx, s)
}

// pipelineStages returns the built-in analysis DAG in a topologically
// valid declaration order (the order the sequential path executes, and
// the order of the paper's Figure 1 narrative):
//
//	characterize ─────────────┬──────────────────────────┐
//	transform → partialmine → sweep → cluster ─┐         │
//	patterns ──────────────────────────────────┼→ store → endgoals
//	demand                                     └→ rank
//
// characterize, transform, patterns and demand are roots and run
// concurrently; sweep overlaps with patterns; rank and endgoals join
// the branches.
func (e *Engine) pipelineStages() []Stage {
	return []Stage{
		&funcStage{
			name:    "characterize",
			outputs: []string{keyDescriptor},
			run:     e.runCharacterize,
		},
		&funcStage{
			// recall retrieves prior knowledge of statistically
			// similar datasets from the K-DB; it overlaps transform
			// and partialmine, and the sweep consumes its hints.
			name:    "recall",
			inputs:  []string{keyDescriptor},
			outputs: []string{keyRecall},
			run:     e.runRecall,
		},
		&funcStage{
			name:    "transform",
			outputs: []string{keyMatrix},
			run:     e.runTransform,
		},
		&funcStage{
			name:    "partialmine",
			inputs:  []string{keyMatrix},
			outputs: []string{keyWorking},
			run:     e.runPartial,
		},
		&funcStage{
			name:    "sweep",
			inputs:  []string{keyWorking, keyRecall},
			outputs: []string{keySweep},
			run:     e.runSweep,
		},
		&funcStage{
			name:    "cluster",
			inputs:  []string{keyWorking, keySweep},
			outputs: []string{keyClustering},
			run:     e.runCluster,
		},
		&funcStage{
			name:    "patterns",
			outputs: []string{keyPatterns},
			run:     e.runPatterns,
		},
		&funcStage{
			name:    "demand",
			outputs: []string{keyDemand},
			run:     e.runDemand,
		},
		&funcStage{
			name:    "store-knowledge",
			inputs:  []string{keyClustering, keyPatterns},
			outputs: []string{keyKnowledge},
			run:     e.runStoreKnowledge,
		},
		&funcStage{
			// endgoals consumes the stored knowledge (not just the
			// in-memory items) so the recommender sees the same K-DB
			// state the legacy sequential pipeline gave it.
			name:    "endgoals",
			inputs:  []string{keyDescriptor, keyKnowledge},
			outputs: []string{keyEndGoals},
			run:     e.runEndGoals,
		},
		&funcStage{
			name:    "rank",
			inputs:  []string{keyClustering, keyPatterns},
			outputs: []string{keyRanked},
			run:     e.runRank,
		},
	}
}

// --- stage bodies -----------------------------------------------------------

func (e *Engine) runCharacterize(ctx context.Context, s *pipelineState) error {
	s.rep.Descriptor = stats.Characterize(s.log)
	id, err := e.kdb.StoreDescriptor(s.rep.Descriptor)
	if err != nil {
		// Soft: a refused or failed descriptor write degrades the
		// self-learning loop (this run leaves no trace for future
		// recalls), never the analysis. descriptorDocID stays empty —
		// nothing was stored, so recall has nothing to exclude.
		s.noteDrop("store descriptor", err)
		return nil
	}
	s.descriptorDocID = id
	return nil
}

func (e *Engine) runTransform(ctx context.Context, s *pipelineState) error {
	matrix, err := vsm.Build(s.log, e.cfg.VSM)
	if err != nil {
		return fmt.Errorf("transforming: %w", err)
	}
	s.matrix = matrix
	s.rep.Transformed = kdb.TransformedSummary{
		Dataset:     s.log.Name,
		Weighting:   e.cfg.VSM.Weighting.String(),
		Norm:        e.cfg.VSM.Normalization.String(),
		NumRows:     matrix.NumRows(),
		NumFeatures: matrix.NumFeatures(),
		Sparsity:    matrix.Sparsity(),
		Features:    matrix.Features,
	}
	if _, err := e.kdb.StoreTransformed(s.rep.Transformed); err != nil {
		s.noteDrop("store transformed summary", err) // soft: degrade, don't fail
	}
	return nil
}

func (e *Engine) runPartial(ctx context.Context, s *pipelineState) error {
	pres, err := partial.RunHorizontal(ctx, s.matrix, e.cfg.Partial)
	if err != nil {
		return wrapStageErr(ctx, "partial mining", err)
	}
	s.rep.Partial = pres
	s.rep.SelectedSubset = pres.SelectedStep().NumFeatures
	s.working = s.matrix.Project(s.rep.SelectedSubset)
	return nil
}

func (e *Engine) runSweep(ctx context.Context, s *pipelineState) error {
	// A recall hit specializes a copy of the sweep configuration:
	// prior Ks narrow the grid, and the best source's centroids —
	// remapped onto the working matrix's feature space — seed the
	// warm chain. Without hints (a miss, or recall disabled) the
	// configuration passes through untouched: the cold path is
	// bit-for-bit the pre-recall pipeline.
	cfg := e.cfg.Sweep
	if cfg.Arena == nil {
		// The caller's cross-job arena backs this sweep's worker slabs
		// unless the engine config pinned its own.
		cfg.Arena = s.arena
	}
	if s.recallHints != nil {
		cfg = applyRecallHints(cfg, s.recallHints, s.working.Features, s.rep.Recall)
	}
	// Explicit caller seeds (the streaming layer's live online model)
	// outrank recall-derived ones: they describe this very dataset's
	// current structure, not a similar dataset's past. Same contract
	// as recall seeding — warm chain only, remapped by exam code onto
	// the working feature space, dropped on insufficient overlap.
	if len(s.seedCentroids) > 0 && cfg.WarmStart == optimize.WarmStartOn {
		if seeds := remapCentroids(s.seedCentroids, s.seedFeatures, s.working.Features); seeds != nil {
			cfg.SeedCentroids = seeds
		}
	}
	sweep, err := optimize.SweepMatrix(ctx, s.working, cfg)
	if err != nil {
		return wrapStageErr(ctx, "optimizing", err)
	}
	s.rep.Sweep = sweep
	return nil
}

func (e *Engine) runCluster(ctx context.Context, s *pipelineState) error {
	// The sweep hands over the fitted model its BestK row was scored
	// on; re-clustering would both duplicate the work and — under the
	// default warm-started sweep, whose BestK model is the product of
	// the whole ascending chain — select a different local optimum
	// than the one the optimizer actually ranked best.
	best := s.rep.Sweep.BestClustering
	if best == nil {
		opts := e.cfg.Sweep.Cluster
		opts.K = s.rep.Sweep.BestK
		// The shared derived-seed formula: re-run the selected K under
		// exactly the seed the sweep evaluated it with.
		opts.Seed = optimize.KSeed(e.cfg.Seed, s.rep.Sweep.BestK)
		var err error
		best, err = cluster.KMeansContext(ctx, s.working.Rows, opts)
		if err != nil {
			return wrapStageErr(ctx, "final clustering", err)
		}
	}
	s.rep.BestClustering = best
	s.rep.ClusterItems = knowledge.FromClusterResult(s.log.Name, best, s.working.Features, 5)
	return nil
}

func (e *Engine) runPatterns(ctx context.Context, s *pipelineState) error {
	// The fpm miners carry no context; cancellation is honoured at the
	// phase boundaries (before mining and before rule derivation), the
	// coarsest granularity in the pipeline.
	if err := ctx.Err(); err != nil {
		return err
	}
	// The visit baskets and their taxonomy extension depend only on
	// the log, so the int-encoded transaction database is built once
	// per log and shared across analyses (and across engines derived
	// via WithConfig).
	ext, numTx := e.txc.basketsFor(s.log)
	minSupport := int(e.cfg.MinSupportFrac * float64(numTx))
	if minSupport < 2 {
		minSupport = 2
	}
	tax := taxonomyOf(s.log)
	gsets, err := fpm.MineGeneralizedEncoded(ext, tax, minSupport)
	if err != nil {
		return fmt.Errorf("pattern mining: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	flat := make([]fpm.Itemset, 0, len(gsets))
	for _, g := range gsets {
		flat = append(flat, g.Itemset)
	}
	fpm.SortItemsets(flat)
	s.rep.PatternItems = knowledge.FromItemsets(s.log.Name, flat, numTx)
	if len(s.rep.PatternItems) > e.cfg.MaxPatternItems {
		s.rep.PatternItems = s.rep.PatternItems[:e.cfg.MaxPatternItems]
	}
	rules, err := fpm.Rules(flat, numTx, e.cfg.MinConfidence)
	if err != nil {
		return fmt.Errorf("rule derivation: %w", err)
	}
	if len(rules) > e.cfg.MaxPatternItems {
		rules = rules[:e.cfg.MaxPatternItems]
	}
	s.rep.RuleItems = knowledge.FromRules(s.log.Name, rules)
	return nil
}

func (e *Engine) runDemand(ctx context.Context, s *pipelineState) error {
	s.rep.Demand = stats.MonthlyDemand(s.log)
	return nil
}

func (e *Engine) runStoreKnowledge(ctx context.Context, s *pipelineState) error {
	if err := e.kdb.StoreKnowledgeItems(s.allItems()); err != nil {
		// Soft: the extracted knowledge is still in the Report; only
		// its persistence for future analyses was shed.
		s.noteDrop("store knowledge items", err)
	}
	return nil
}

func (e *Engine) runEndGoals(ctx context.Context, s *pipelineState) error {
	recs, err := endgoal.NewRecommender(e.kdb).Recommend(s.rep.Descriptor)
	if err != nil {
		// A refusing K-DB (offline or read-only) degrades to no
		// recommendations; any other recommender failure is a real
		// pipeline error.
		if errors.Is(err, kdb.ErrOffline) || errors.Is(err, kdb.ErrReadOnly) {
			s.noteDegraded("endgoals", err)
			return nil
		}
		return fmt.Errorf("recommending end-goals: %w", err)
	}
	s.rep.Recommendations = recs
	return nil
}

func (e *Engine) runRank(ctx context.Context, s *pipelineState) error {
	s.rep.Ranked = ranking.NewRanker().Rank(s.allItems())
	return nil
}

// allItems concatenates the extracted knowledge in the fixed
// presentation order (cluster, pattern, rule) both the store and the
// ranker consume.
func (s *pipelineState) allItems() []knowledge.Item {
	rep := s.rep
	all := make([]knowledge.Item, 0,
		len(rep.ClusterItems)+len(rep.PatternItems)+len(rep.RuleItems))
	all = append(all, rep.ClusterItems...)
	all = append(all, rep.PatternItems...)
	all = append(all, rep.RuleItems...)
	return all
}

// wrapStageErr annotates a stage failure unless it is the (possibly
// wrapped by neither) context error, which must surface unwrapped so
// callers can errors.Is-match cancellation.
func wrapStageErr(ctx context.Context, what string, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("%s: %w", what, err)
}
