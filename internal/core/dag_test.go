package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"adahealth/internal/dataset"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/synth"
)

// seededConfig is the fast test pipeline configuration at a given
// seed.
func seededConfig(seed int64) Config {
	return Config{
		Seed: seed,
		Partial: partial.Config{
			Ks: []int{4},
		},
		Sweep: optimize.SweepConfig{
			Ks:      []int{3, 4, 5},
			CVFolds: 4,
		},
	}
}

func seededLog(t *testing.T, seed int64) *dataset.Log {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.Seed = seed
	log, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// comparable strips the execution telemetry — the only Report fields
// allowed to differ between the DAG and the sequential path — and
// projects Recommendations to a value-comparable form (endgoal.Goal
// embeds its feasibility-check closure, and non-nil funcs are never
// reflect.DeepEqual).
func comparable(rep *Report) Report {
	c := *rep
	c.Stages = nil
	c.StageConcurrency = 0
	c.Recommendations = nil
	return c
}

// recProjection is the func-free view of one recommendation.
type recProjection struct {
	GoalID   string
	Feasible bool
	Reason   string
	Interest string
	Score    float64
	Source   string
}

func projectRecs(rep *Report) []recProjection {
	out := make([]recProjection, len(rep.Recommendations))
	for i, r := range rep.Recommendations {
		out[i] = recProjection{
			GoalID:   string(r.Goal.ID),
			Feasible: r.Feasible,
			Reason:   r.Reason,
			Interest: string(r.Interest),
			Score:    r.Score,
			Source:   r.Source,
		}
	}
	return out
}

// TestAnalyzeDAGMatchesSequential is the DAG/sequential equivalence
// property: for several generator/algorithm seeds, the concurrent
// stage-graph execution must produce a bit-for-bit identical Report to
// the legacy sequential path.
func TestAnalyzeDAGMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		log := seededLog(t, seed)

		seqCfg := seededConfig(seed)
		seqCfg.Sequential = true
		seqEngine, err := New(seqCfg)
		if err != nil {
			t.Fatal(err)
		}
		seqRep, err := seqEngine.Analyze(log)
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}

		dagCfg := seededConfig(seed)
		dagCfg.Parallelism = 4
		dagEngine, err := New(dagCfg)
		if err != nil {
			t.Fatal(err)
		}
		dagRep, err := dagEngine.AnalyzeContext(context.Background(), log)
		if err != nil {
			t.Fatalf("seed %d DAG: %v", seed, err)
		}

		if !reflect.DeepEqual(comparable(seqRep), comparable(dagRep)) {
			t.Errorf("seed %d: DAG report differs from sequential report", seed)
		}
		if !reflect.DeepEqual(projectRecs(seqRep), projectRecs(dagRep)) {
			t.Errorf("seed %d: DAG recommendations differ from sequential", seed)
		}
		// Both paths traced every stage of the pipeline.
		want := len(dagEngine.pipelineStages())
		if len(seqRep.Stages) != want || len(dagRep.Stages) != want {
			t.Errorf("seed %d: stage traces seq=%d dag=%d, want %d",
				seed, len(seqRep.Stages), len(dagRep.Stages), want)
		}
		for _, tr := range seqRep.Stages {
			if !tr.Sequential {
				t.Errorf("seed %d: sequential trace %s unflagged", seed, tr.Stage)
			}
		}
		// The traces were persisted to the K-DB of each engine.
		stored, err := dagEngine.KDB().StageTraces(log.Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(stored) != want {
			t.Errorf("seed %d: K-DB holds %d stage traces, want %d", seed, len(stored), want)
		}
	}
}

// TestAnalyzeCancellationMidSweep asserts Analyze honours context
// cancellation promptly: a context cancelled while the pipeline is in
// flight surfaces as ctx.Err() well before the analysis could finish.
func TestAnalyzeCancellationMidSweep(t *testing.T) {
	cfg := seededConfig(1)
	// Stretch the sweep so cancellation reliably lands mid-flight.
	cfg.Sweep.Ks = []int{3, 4, 5, 6, 7, 8, 9, 10}
	cfg.Sweep.CVFolds = 8
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := seededLog(t, 1)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = e.AnalyzeContext(ctx, log)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancelled analysis took %v to return", elapsed)
	}

	// A context that is already dead never starts the pipeline.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := e.AnalyzeContext(dead, log); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
}

// TestAnalyzeManyMatchesSerial runs a batch of logs through one shared
// pool and checks each report is bit-for-bit what a serial Analyze of
// the same log yields.
func TestAnalyzeManyMatchesSerial(t *testing.T) {
	logs := []*dataset.Log{
		seededLog(t, 1), seededLog(t, 2), seededLog(t, 3), seededLog(t, 4),
	}
	// Distinct names so per-dataset K-DB records don't collide.
	for i, l := range logs {
		l.Name = l.Name + "-" + string(rune('a'+i))
	}

	batch, err := New(seededConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	reports, err := batch.AnalyzeMany(context.Background(), logs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(logs) {
		t.Fatalf("reports = %d, want %d", len(reports), len(logs))
	}

	for i, log := range logs {
		single, err := New(seededConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.Analyze(log)
		if err != nil {
			t.Fatal(err)
		}
		if reports[i] == nil {
			t.Fatalf("report %d is nil", i)
		}
		// Recommendations are compared structurally too: with no
		// feedback recorded, sibling descriptors in the shared K-DB
		// must not change the prior-driven recommendation.
		if !reflect.DeepEqual(comparable(reports[i]), comparable(want)) {
			t.Errorf("batch report %d differs from serial analysis", i)
		}
		if !reflect.DeepEqual(projectRecs(reports[i]), projectRecs(want)) {
			t.Errorf("batch report %d recommendations differ from serial", i)
		}
	}
}

func TestAnalyzeManyPropagatesFailure(t *testing.T) {
	e, err := New(seededConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	logs := []*dataset.Log{
		seededLog(t, 1),
		dataset.NewLog("empty"), // fails validation immediately
	}
	_, err = e.AnalyzeMany(context.Background(), logs)
	if err == nil {
		t.Fatal("empty log accepted in batch")
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("root failure reported as cancellation: %v", err)
	}
}

func TestAnalyzeManyEmpty(t *testing.T) {
	e, err := New(seededConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	reports, err := e.AnalyzeMany(context.Background(), nil)
	if err != nil || reports != nil {
		t.Fatalf("AnalyzeMany(nil) = %v, %v", reports, err)
	}
}

func TestAnalyzeManyPersistsSharedKDB(t *testing.T) {
	// Batch analyses share one disk-backed K-DB; the single batch-level
	// flush must leave a loadable snapshot containing every log's
	// traces and knowledge (a torn concurrent flush would fail Open).
	dir := t.TempDir()
	cfg := seededConfig(1)
	cfg.KDBDir = dir
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logs := []*dataset.Log{seededLog(t, 1), seededLog(t, 2), seededLog(t, 3)}
	for i, l := range logs {
		l.Name = l.Name + "-" + string(rune('a'+i))
	}
	if _, err := e.AnalyzeMany(context.Background(), logs); err != nil {
		t.Fatal(err)
	}
	re, err := New(Config{KDBDir: dir})
	if err != nil {
		t.Fatalf("reopening batch K-DB: %v", err)
	}
	for _, l := range logs {
		traces, err := re.KDB().StageTraces(l.Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(traces) == 0 {
			t.Errorf("no persisted stage traces for %s", l.Name)
		}
	}
}
