package core

import "time"

// StagePhase is one side of a stage's lifecycle: the scheduler emits a
// StageStart event when a stage begins executing (after it acquired a
// pool slot) and a StageFinish event when its Run returns.
type StagePhase string

const (
	StageStart  StagePhase = "start"
	StageFinish StagePhase = "finish"
)

// StageEvent is one live progress notification from the scheduler: a
// stage of the analysis DAG started or finished. Events fire from the
// scheduler's trace points — the same instants that delimit the
// Report.Stages intervals — so a consumer sees progress while the
// analysis runs instead of reconstructing it from traces afterwards.
type StageEvent struct {
	// Dataset is the analyzed log's name.
	Dataset string `json:"dataset"`
	// Stage is the DAG stage name.
	Stage string `json:"stage"`
	// Phase is StageStart or StageFinish.
	Phase StagePhase `json:"phase"`
	// Time is when the transition happened.
	Time time.Time `json:"time"`
	// Err is the stage's failure message on finish ("" = success).
	Err string `json:"err,omitempty"`
}

// StageObserver receives StageEvents during an analysis. Observers are
// called synchronously from scheduler goroutines and must not block:
// hand the event off (e.g. into a buffered channel with a non-blocking
// send) rather than doing work inline.
type StageObserver func(StageEvent)

// observe invokes o when non-nil.
func (o StageObserver) observe(dataset, stage string, phase StagePhase, at time.Time, err error) {
	if o == nil {
		return
	}
	ev := StageEvent{Dataset: dataset, Stage: stage, Phase: phase, Time: at}
	if err != nil {
		ev.Err = err.Error()
	}
	o(ev)
}
