package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"adahealth/internal/dataset"
)

// flakyStage fails transiently until failures is exhausted.
type flakyStage struct {
	name     string
	inputs   []string
	outputs  []string
	failures int32
	calls    atomic.Int32
	err      error // error to return while failing (wrapped or not)
}

func (f *flakyStage) Name() string      { return f.name }
func (f *flakyStage) Inputs() []string  { return f.inputs }
func (f *flakyStage) Outputs() []string { return f.outputs }
func (f *flakyStage) Run(ctx context.Context, s *pipelineState) error {
	if f.calls.Add(1) <= f.failures {
		return f.err
	}
	return nil
}

func retryState() *pipelineState {
	return &pipelineState{log: dataset.NewLog("retry-test"), rep: &Report{}}
}

func TestTransientMarking(t *testing.T) {
	base := errors.New("disk busy")
	if !IsTransient(Transient(base)) {
		t.Error("Transient-wrapped error not transient")
	}
	if IsTransient(base) {
		t.Error("plain error transient")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Transient broke errors.Is")
	}
	wrapped := fmt.Errorf("stage: %w", Transient(base))
	if !IsTransient(wrapped) {
		t.Error("fmt-wrapped transient not detected")
	}
	if IsTransient(Transient(context.Canceled)) {
		t.Error("cancellation treated as transient")
	}
	if IsTransient(nil) {
		t.Error("nil transient")
	}
}

func TestStageRetriesTransientFailures(t *testing.T) {
	st := &flakyStage{name: "flaky", outputs: []string{"x"}, failures: 2,
		err: Transient(errors.New("kdb briefly unavailable"))}
	stages := []Stage{st}
	rp := retryPolicy{retries: 3, backoff: time.Millisecond}

	for _, mode := range []string{"sequential", "dag"} {
		st.calls.Store(0)
		var (
			sr  *scheduleResult
			err error
		)
		if mode == "sequential" {
			sr, err = runSequential(context.Background(), stages, retryState(), rp, nil)
		} else {
			sr, err = runDAG(context.Background(), stages, retryState(), make(chan struct{}, 1), rp, nil)
		}
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if got := st.calls.Load(); got != 3 {
			t.Errorf("%s: stage ran %d times, want 3", mode, got)
		}
		if len(sr.traces) != 1 || sr.traces[0].Attempts != 3 {
			t.Errorf("%s: trace attempts = %+v, want 3", mode, sr.traces)
		}
	}
}

func TestStageRetryExhaustionFails(t *testing.T) {
	st := &flakyStage{name: "flaky", outputs: []string{"x"}, failures: 10,
		err: Transient(errors.New("still down"))}
	rp := retryPolicy{retries: 2, backoff: time.Millisecond}
	sr, err := runSequential(context.Background(), []Stage{st}, retryState(), rp, nil)
	if err == nil {
		t.Fatal("exhausted retries succeeded")
	}
	if got := st.calls.Load(); got != 3 {
		t.Errorf("stage ran %d times, want 3 (1 + 2 retries)", got)
	}
	if len(sr.traces) != 1 || sr.traces[0].Attempts != 3 {
		t.Errorf("trace attempts = %+v", sr.traces)
	}
}

func TestDeterministicFailureNeverRetries(t *testing.T) {
	st := &flakyStage{name: "broken", outputs: []string{"x"}, failures: 10,
		err: errors.New("bad data")}
	rp := retryPolicy{retries: 5, backoff: time.Millisecond}
	if _, err := runSequential(context.Background(), []Stage{st}, retryState(), rp, nil); err == nil {
		t.Fatal("deterministic failure succeeded")
	}
	if got := st.calls.Load(); got != 1 {
		t.Errorf("deterministic failure ran %d times, want 1", got)
	}
}

func TestRetriesDisabledByDefault(t *testing.T) {
	st := &flakyStage{name: "flaky", outputs: []string{"x"}, failures: 1,
		err: Transient(errors.New("blip"))}
	if _, err := runSequential(context.Background(), []Stage{st}, retryState(), retryPolicy{}, nil); err == nil {
		t.Fatal("transient failure succeeded without retries enabled")
	}
	if got := st.calls.Load(); got != 1 {
		t.Errorf("stage ran %d times, want 1", got)
	}
}

func TestRetryBackoffHonoursCancellation(t *testing.T) {
	st := &flakyStage{name: "flaky", outputs: []string{"x"}, failures: 100,
		err: Transient(errors.New("down"))}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	rp := retryPolicy{retries: 1000, backoff: 30 * time.Second}
	start := time.Now()
	_, err := runSequential(ctx, []Stage{st}, retryState(), rp, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not interrupt the backoff sleep")
	}
}

func TestRetryConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.StageRetries = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative StageRetries accepted")
	}
	cfg = testConfig()
	cfg.StageRetryBackoff = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Error("negative StageRetryBackoff accepted")
	}
	cfg = testConfig()
	cfg.StageRetries = 3
	cfg.StageRetryBackoff = 10 * time.Millisecond
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid retry config rejected: %v", err)
	}
}
