package core
