// Package core orchestrates the full ADA-HEALTH pipeline of Figure 1:
// data characterization → data transformation → adaptive partial
// mining → data-analytics optimization → knowledge extraction →
// K-DB storage → end-goal recommendation → knowledge ranking.
//
// Given an examination log and minimal configuration, Analyze produces
// a ranked, manageable set of knowledge items with no further user
// intervention — the paper's headline behaviour.
//
// # Execution model
//
// The pipeline is an explicit stage DAG (see Stage): each stage
// declares the state keys it consumes and produces, and a scheduler
// topologically orders the stages and runs independent ones
// concurrently on a bounded worker pool — pattern mining overlaps the
// K-sweep, demand extraction overlaps clustering. Cancellation is
// threaded through every compute kernel via context.Context, per-stage
// wall-time and allocation metrics land in Report.Stages and the
// K-DB's stage_traces collection, and AnalyzeMany batches several logs
// over one shared pool. Config.Sequential selects the legacy serial
// path, which executes the same stages in declaration order and
// produces a bit-for-bit identical Report.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"adahealth/internal/classify"
	"adahealth/internal/cluster"
	"adahealth/internal/dataset"
	"adahealth/internal/endgoal"
	"adahealth/internal/fpm"
	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/stats"
	"adahealth/internal/vsm"
)

// Config configures an Engine. The zero value plus a KDB directory is
// a working paper-faithful configuration (defaults are filled in).
type Config struct {
	// VSM selects the data transformation (paper: raw counts).
	VSM vsm.Options
	// Partial configures the adaptive horizontal partial mining
	// (paper: fractions 20%/40%/100% of exam types, 5% tolerance).
	Partial partial.Config
	// Sweep configures the K optimization (paper: Table I grid,
	// 10-fold CV decision tree).
	Sweep optimize.SweepConfig
	// MinSupportFrac is the relative support threshold for pattern
	// mining over visits; default 0.02.
	MinSupportFrac float64
	// MinConfidence is the association-rule threshold; default 0.6.
	MinConfidence float64
	// MaxPatternItems bounds how many pattern knowledge items are
	// stored (the "manageable set"); default 50.
	MaxPatternItems int
	// Recall configures the knowledge-recall stage: prior K-DB
	// knowledge of statistically similar datasets warm-starts the K
	// sweep (Section IV-A's self-learning loop). The zero value is
	// recall on with the documented defaults; a miss leaves the
	// analysis bit-for-bit identical to Recall.Disabled.
	Recall RecallConfig
	// KDBDir is the knowledge-base directory ("" = in-memory).
	KDBDir string
	// Seed drives every stochastic component.
	Seed int64
	// Sequential forces the legacy serial execution: the same stages,
	// run one at a time in declaration order on the calling goroutine.
	// The concurrent DAG produces a bit-for-bit identical Report; this
	// flag exists for debugging, deterministic profiling, and the
	// equivalence tests.
	Sequential bool
	// Parallelism bounds how many stages run concurrently — one pool
	// shared across all logs of an AnalyzeMany call (or all jobs of a
	// service), so batch analysis does not oversubscribe the machine;
	// 0 uses all cores (runtime.GOMAXPROCS(0)), negative is rejected
	// by Validate.
	Parallelism int
	// StageRetries re-runs a stage that fails with a transient error
	// (see Transient) up to this many extra times before failing the
	// analysis, with capped exponential backoff between attempts. The
	// built-in stages mark their K-DB write failures transient (the
	// environmental case: a saturated disk behind the WAL); compute
	// failures stay deterministic and never retry, nor do
	// cancellations. Attempt counts land in Report.Stages and the
	// stage_traces collection. 0 (the default) disables retries.
	StageRetries int
	// StageRetryBackoff caps the delay before the first retry, doubled
	// per attempt and capped at 2s; the actual sleep is drawn uniformly
	// from (0, cap] (full jitter), so retrying stages across a batch do
	// not synchronize. 0 selects the 50ms default.
	StageRetryBackoff time.Duration
	// StageTimeout bounds each stage attempt's wall time: an attempt
	// exceeding it fails the analysis with a *StageTimeoutError
	// (errors.Is-matchable against context.DeadlineExceeded). 0 (the
	// default) disables per-stage deadlines.
	StageTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MinSupportFrac <= 0 {
		c.MinSupportFrac = 0.02
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.6
	}
	if c.MaxPatternItems <= 0 {
		c.MaxPatternItems = 50
	}
	c.Partial.Seed = c.Seed
	c.Sweep.Seed = c.Seed
	return c
}

// Validate checks the declared analysis parameters before defaults are
// filled in: a zero value always passes (it selects the documented
// default), anything outside a parameter's meaningful range is
// rejected with a descriptive error. New and Engine.WithConfig enforce
// it, so a bad configuration fails at construction/admission time
// rather than silently defaulting or misbehaving mid-analysis.
func (c Config) Validate() error {
	if c.MinSupportFrac < 0 || c.MinSupportFrac > 1 {
		return fmt.Errorf("core: MinSupportFrac %v outside [0, 1] (it is a fraction of visits; 0 selects the 0.02 default)", c.MinSupportFrac)
	}
	if c.MinConfidence < 0 || c.MinConfidence > 1 {
		return fmt.Errorf("core: MinConfidence %v outside (0, 1] (0 selects the 0.6 default)", c.MinConfidence)
	}
	if c.MaxPatternItems < 0 {
		return fmt.Errorf("core: negative MaxPatternItems %d (0 selects the default of 50)", c.MaxPatternItems)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: negative Parallelism %d (use 0 for all cores)", c.Parallelism)
	}
	if c.Recall.MinSimilarity < 0 || c.Recall.MinSimilarity > 1 {
		return fmt.Errorf("core: Recall.MinSimilarity %v outside [0, 1] (0 selects the 0.9 default)", c.Recall.MinSimilarity)
	}
	if c.Recall.MaxSources < 0 {
		return fmt.Errorf("core: negative Recall.MaxSources %d (0 selects the default of 3)", c.Recall.MaxSources)
	}
	if err := c.validateRetry(); err != nil {
		return err
	}
	if c.Seed < 0 {
		return fmt.Errorf("core: negative Seed %d (seeds must be non-negative so derived per-component seeds stay in range)", c.Seed)
	}
	if !c.Sweep.Cluster.Algorithm.Valid() {
		return fmt.Errorf("core: unknown sweep clustering algorithm %s", c.Sweep.Cluster.Algorithm)
	}
	if !c.Partial.Cluster.Algorithm.Valid() {
		return fmt.Errorf("core: unknown partial-mining clustering algorithm %s", c.Partial.Cluster.Algorithm)
	}
	if c.Sweep.Cluster.BatchSize < 0 {
		return fmt.Errorf("core: negative sweep mini-batch size %d (0 selects the default of %d)", c.Sweep.Cluster.BatchSize, cluster.DefaultBatchSize)
	}
	if c.Partial.Cluster.BatchSize < 0 {
		return fmt.Errorf("core: negative partial-mining mini-batch size %d (0 selects the default of %d)", c.Partial.Cluster.BatchSize, cluster.DefaultBatchSize)
	}
	if !c.Sweep.WarmStart.Valid() {
		return fmt.Errorf("core: unknown sweep warm-start mode %d (0 = on, 1 = off)", c.Sweep.WarmStart)
	}
	return nil
}

// Engine is the ADA-HEALTH automated analysis engine.
type Engine struct {
	cfg      Config
	kdb      *kdb.KDB
	txc      *txCache
	inflight *inflightSet
}

// inflightSet tracks the dataset names of analyses currently
// executing against the shared K-DB. The recall stage consults it so
// that concurrent analyses (an AnalyzeMany batch, parallel service
// jobs) never read each other's mid-flight writes — which would make
// batch results depend on scheduling — while a serial repeat analysis
// still recalls its own history. Shared across WithConfig derivations,
// like the K-DB itself.
type inflightSet struct {
	mu    sync.Mutex
	names map[string]int
}

func newInflightSet() *inflightSet { return &inflightSet{names: map[string]int{}} }

func (s *inflightSet) add(name string) {
	s.mu.Lock()
	s.names[name]++
	s.mu.Unlock()
}

func (s *inflightSet) remove(name string) {
	s.mu.Lock()
	if s.names[name]--; s.names[name] <= 0 {
		delete(s.names, name)
	}
	s.mu.Unlock()
}

func (s *inflightSet) count(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.names[name]
}

// New builds an engine, opening (or creating) its knowledge base. The
// configuration is validated first (see Config.Validate); a rejected
// configuration returns a descriptive error instead of silently
// defaulting.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	k, err := kdb.Open(cfg.KDBDir)
	if err != nil {
		return nil, fmt.Errorf("core: opening K-DB: %w", err)
	}
	return &Engine{cfg: cfg, kdb: k, txc: newTxCache(), inflight: newInflightSet()}, nil
}

// NewWithKDB builds an engine over an already-open K-DB, which the
// caller keeps owning (Close it after the engine is done). It is the
// seam fault-injection tests use to run the pipeline against a K-DB
// opened over a faulty filesystem (kdb.OpenStore with
// docstore.Options.FS); Config.KDBDir is ignored.
func NewWithKDB(cfg Config, k *kdb.KDB) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg.withDefaults(), kdb: k, txc: newTxCache(), inflight: newInflightSet()}, nil
}

// WithConfig returns a derived engine that analyzes under cfg but
// shares this engine's knowledge base and transaction cache. It is how
// a long-running service runs per-job configuration overrides (seed,
// thresholds, sweep grid) without opening a second K-DB. The override
// is validated like New validates; KDBDir is ignored — the K-DB is
// inherited.
func (e *Engine) WithConfig(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.KDBDir = e.cfg.KDBDir
	return &Engine{cfg: cfg.withDefaults(), kdb: e.kdb, txc: e.txc, inflight: e.inflight}, nil
}

// Config returns the engine's resolved configuration (defaults filled
// in).
func (e *Engine) Config() Config { return e.cfg }

// KDB exposes the engine's knowledge base (feedback recording,
// inspection).
func (e *Engine) KDB() *kdb.KDB { return e.kdb }

// StageParallelism reports the resolved stage-pool size
// (Config.Parallelism, or all cores when unset).
func (e *Engine) StageParallelism() int { return e.parallelism() }

// ReleaseLog drops the engine's cached per-log state (the patterns
// stage's transaction encoding). Long-running callers that know a log
// will not be re-analyzed — the job service, once a submission's last
// job finishes — call this so request-scoped logs do not stay pinned
// in memory until cache eviction. Releasing a log that is mid-analysis
// is safe: the analysis keeps its reference and a later re-analysis
// simply rebuilds.
func (e *Engine) ReleaseLog(log *dataset.Log) { e.txc.release(log) }

// CachedLogs reports how many logs currently hold cached per-log state
// (observability: the daemon's memory footprint tracks this).
func (e *Engine) CachedLogs() int { return e.txc.size() }

// Report is the complete outcome of one automated analysis.
type Report struct {
	Descriptor      stats.Descriptor
	Transformed     kdb.TransformedSummary
	Partial         *partial.Result
	SelectedSubset  int // features used after partial mining
	Sweep           *optimize.SweepResult
	BestClustering  *cluster.Result
	ClusterItems    []knowledge.Item
	PatternItems    []knowledge.Item
	RuleItems       []knowledge.Item
	Recommendations []endgoal.Recommendation
	Ranked          []knowledge.Item
	// Demand is the monthly examination-volume series backing the
	// resource-planning end-goal.
	Demand []stats.DemandPoint

	// Recall reports what the knowledge-recall stage retrieved from
	// the K-DB and how it warm-started the sweep (nil when the stage
	// is disabled).
	Recall *RecallOutcome

	// Stages holds the per-stage execution traces of this analysis,
	// ordered by start time; overlapping [Start, End) intervals show
	// which stages actually ran concurrently. The same traces are
	// persisted to the K-DB's stage_traces collection.
	Stages []kdb.StageTrace
	// StageConcurrency is the maximum number of stages the scheduler
	// observed running at the same instant (1 under Config.Sequential).
	StageConcurrency int

	// Degraded is non-nil when the analysis completed without its full
	// K-DB contract — see Degradation. Nil on a fully healthy run.
	Degraded *Degradation `json:"degraded,omitempty"`
}

// Degradation reports that an analysis completed gracefully degraded:
// K-DB writes were dropped or the recall read fell back because the
// knowledge store was read-only, offline, or broken. The analytical
// results themselves are complete and correct — only the
// self-learning side effects (stored knowledge, feedback, traces,
// flushes) were shed.
type Degradation struct {
	// DroppedKDBWrites counts the K-DB writes the pipeline shed.
	DroppedKDBWrites int `json:"dropped_kdb_writes"`
	// Reasons lists what degraded and why (sorted, deduplicated).
	Reasons []string `json:"reasons"`
}

// Analyze runs the full pipeline on a log. It is AnalyzeContext with
// a background context.
func (e *Engine) Analyze(log *dataset.Log) (*Report, error) {
	return e.AnalyzeContext(context.Background(), log)
}

// AnalyzeContext runs the full pipeline on a log under a context.
// Cancellation is honoured inside the clustering, sweep and
// partial-mining hot loops (per Lloyd iteration / per probe) and at
// stage and phase boundaries elsewhere: a cancelled analysis returns
// ctx.Err() (errors.Is-matchable) as soon as the in-flight work
// reaches its next checkpoint, rather than finishing the grid.
func (e *Engine) AnalyzeContext(ctx context.Context, log *dataset.Log) (*Report, error) {
	return e.AnalyzeWith(ctx, log, AnalyzeOptions{})
}

// StagePool is a bounded counting semaphore shared by concurrently
// executing analyses: every running stage holds one slot, so however
// many analyses are in flight, at most cap(pool) stages execute at
// once. AnalyzeMany sizes one from Config.Parallelism; a long-running
// service creates one at startup and passes it to every job's
// AnalyzeWith.
type StagePool chan struct{}

// NewStagePool builds a stage pool admitting n concurrent stages
// (n < 1 uses all cores).
func NewStagePool(n int) StagePool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return make(StagePool, n)
}

// AnalyzeOptions tunes one shared-dispatch analysis. The zero value
// reproduces AnalyzeContext: a private pool, no observer, a K-DB flush
// on completion.
type AnalyzeOptions struct {
	// Pool is the stage pool this analysis shares with its siblings
	// (nil = a private pool sized by Config.Parallelism).
	Pool StagePool
	// Observer, when non-nil, receives a StageEvent at every stage
	// start and finish — the scheduler's trace points — while the
	// analysis runs. Calls come from scheduler goroutines and stop
	// before AnalyzeWith returns; observers must not block.
	Observer StageObserver
	// NoFlush suppresses the per-analysis K-DB flush. Batch callers
	// (AnalyzeMany, a job service) set it and flush once themselves:
	// concurrent flushes would race on the docstore's snapshot files.
	NoFlush bool
	// FairShare, when > 0, derates the analysis's inner sweep and
	// partial-mining parallelism to a 1/FairShare share of the stage
	// pool and pins the K-means kernels serial — the batch fairness
	// rule AnalyzeMany applies with FairShare = len(logs), and a
	// service applies with its worker count (even a 1-slot service
	// sets it: the stage pool and sweep pool already carry the
	// concurrency, so the kernels must not also fan out to all
	// cores). Sweep results are identical for every worker count, so
	// this only affects scheduling. 0 leaves the kernels free to use
	// the whole machine, as a lone Analyze call should.
	FairShare int
	// Arena, when non-nil, lends the analysis's K sweep its reusable
	// worker slabs (decision trees, cluster scratch, RNGs) so a
	// long-lived caller stops paying those allocations on every job.
	// Reports are bit-for-bit identical with or without it. Safe to
	// share across concurrent analyses — checkout is per sweep worker
	// (see optimize.Arena) — but an explicitly configured
	// Config.Sweep.Arena takes precedence.
	Arena *optimize.Arena
	// SeedCentroids, with SeedFeatures naming their columns by exam
	// code, warm-starts the K sweep from caller-provided centroids —
	// the streaming layer passes its live online model here when a
	// drift-triggered full re-analysis is scheduled. The rows are
	// remapped onto the analysis's own (possibly projected) feature
	// space by exam code and take precedence over recall-stage seeds;
	// they apply only on the warm-started sweep chain
	// (Sweep.WarmStart on, the default) and are dropped when fewer
	// than half of the seed features survive the remap, falling back
	// to the recall/cold behaviour. Any row count works: the sweep
	// completes short seed sets by farthest-point splits and
	// truncates long ones (see optimize.SweepConfig.SeedCentroids).
	SeedCentroids [][]float64
	// SeedFeatures are the exam codes labelling SeedCentroids'
	// columns. Required when SeedCentroids is set.
	SeedFeatures []string
}

// AnalyzeWith is the single dispatch path every analysis funnels
// through: Analyze/AnalyzeContext call it with zero options,
// AnalyzeMany fans a batch out over one shared pool, and the job
// service (internal/service) submits each admitted job here with its
// own pool and event observer.
func (e *Engine) AnalyzeWith(ctx context.Context, log *dataset.Log, opts AnalyzeOptions) (*Report, error) {
	if log != nil {
		// The DAG's root stages read the log concurrently; build its
		// lazy lookup tables before any of them race to do it. (Callers
		// running concurrent AnalyzeWith calls on one log pointer must
		// index it before fanning out, as AnalyzeMany does.)
		log.EnsureIndexes()
	}
	be := e
	if opts.FairShare > 0 {
		be = e.derated(opts.FairShare)
	}
	// Mark the dataset in flight for the recall stage's concurrent-
	// sibling exclusion (see inflightSet).
	if log != nil {
		e.inflight.add(log.Name)
		defer e.inflight.remove(log.Name)
	}
	return be.analyze(ctx, log, opts)
}

// derated returns a copy of the engine whose inner sweep and
// partial-mining parallelism is reduced to a fair 1/n share of the
// stage pool, so n concurrent analyses do not each fan their kernels
// out to GOMAXPROCS workers on top of the stage-level concurrency.
// Explicitly pinned values are left alone.
func (e *Engine) derated(n int) *Engine {
	be := *e
	if be.cfg.Sweep.Parallelism <= 0 {
		be.cfg.Sweep.Parallelism = e.parallelism() / n
		if be.cfg.Sweep.Parallelism < 1 {
			be.cfg.Sweep.Parallelism = 1
		}
		if be.cfg.Sweep.Cluster.Parallelism == 0 {
			// The stage pool and the sweep pool already carry the
			// batch concurrency; keep the K-means kernel serial.
			be.cfg.Sweep.Cluster.Parallelism = 1
		}
	}
	if be.cfg.Partial.Cluster.Parallelism == 0 {
		// Same for the partial-mining probe runs: concurrent
		// partialmine stages must not each fan the kernel out to
		// GOMAXPROCS workers.
		be.cfg.Partial.Cluster.Parallelism = 1
	}
	return &be
}

// AnalyzeMany analyzes several logs as one batch sharing a single
// bounded stage pool, so concurrent logs interleave their independent
// stages instead of oversubscribing the machine with len(logs) full
// pipelines. When Sweep.Parallelism is unset, each log's K sweep is
// additionally derated to its fair share of the pool, so the batch's
// total compute fan-out stays at roughly Config.Parallelism (sweep
// results are identical for every worker count, so this only affects
// scheduling). Reports are returned in input order. On failure the
// remaining work is cancelled and the first error (preferring a stage
// failure over a cancellation victim) is returned alongside the
// reports that did complete.
//
// Reports are deterministic per log with one caveat: the end-goal
// recommender reads the whole shared K-DB, so once feedback exists for
// a dataset, a batch re-analysis may train its interest model before
// or after a sibling log's descriptor lands — serialize analyses of
// feedback-bearing datasets if byte-stable recommendations matter.
// The recall stage is deterministic by construction: every batch
// member registers as in flight before the fan-out, so no member ever
// recalls a sibling's (or, in a batch, its own) mid-flight knowledge
// regardless of completion order.
func (e *Engine) AnalyzeMany(ctx context.Context, logs []*dataset.Log) ([]*Report, error) {
	if len(logs) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	pool := NewStagePool(e.parallelism())

	// Each log is one shared-dispatch analysis: one stage pool, batch
	// fair-share derating, flush deferred to the single batch flush
	// below (per-log flushes from concurrent goroutines would race on
	// the docstore's snapshot temp files).
	opts := AnalyzeOptions{Pool: pool, NoFlush: true, FairShare: len(logs)}
	// Index every log serially before fanning out: a log submitted
	// twice in one batch would otherwise have two goroutines racing to
	// build its lazy lookup tables. Registering every batch member as
	// in flight up front (before any analysis can run its recall
	// stage) is what makes batch recall deterministic: no member ever
	// recalls a sibling, regardless of completion order.
	for _, log := range logs {
		log.EnsureIndexes()
		e.inflight.add(log.Name)
	}
	defer func() {
		for _, log := range logs {
			e.inflight.remove(log.Name)
		}
	}()
	reports := make([]*Report, len(logs))
	errs := make([]error, len(logs))
	var wg sync.WaitGroup
	for i, log := range logs {
		wg.Add(1)
		go func(i int, log *dataset.Log) {
			defer wg.Done()
			rep, err := e.AnalyzeWith(ctx, log, opts)
			reports[i], errs[i] = rep, err
			if err != nil {
				cancel() // fail fast: stop sibling analyses
			}
		}(i, log)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			firstErr = err // the root failure, not a cancellation victim
			break
		}
	}
	// One flush for the whole batch, after every writer goroutine has
	// finished — persist completed analyses even when a sibling failed.
	if err := e.kdb.Flush(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("core: flushing K-DB: %w", err)
	}
	return reports, firstErr
}

// analyze runs one log through the stage graph. opts.Pool is the
// shared stage semaphore (nil = private pool sized by
// Config.Parallelism); opts.NoFlush defers the K-DB flush to the
// caller (AnalyzeMany runs one batch-level flush so concurrent
// snapshot writes cannot tear); opts.Observer, when non-nil, receives
// stage start/finish events live; opts.Arena backs the sweep stage's
// worker slabs; opts.SeedCentroids/SeedFeatures warm-start the sweep.
func (e *Engine) analyze(ctx context.Context, log *dataset.Log, opts AnalyzeOptions) (*Report, error) {
	if log.NumPatients() == 0 || log.NumRecords() == 0 {
		return nil, fmt.Errorf("core: log %q is empty", log.Name)
	}
	stages := e.pipelineStages()
	if err := validateStages(stages); err != nil {
		return nil, err
	}
	pool, observe := opts.Pool, opts.Observer
	s := &pipelineState{
		log:           log,
		rep:           &Report{},
		arena:         opts.Arena,
		seedCentroids: opts.SeedCentroids,
		seedFeatures:  opts.SeedFeatures,
	}

	var (
		sr  *scheduleResult
		err error
	)
	if e.cfg.Sequential {
		if pool != nil {
			// Sequential pipelines inside a batch still occupy one
			// shared-pool slot each, so AnalyzeMany stays bounded.
			select {
			case pool <- struct{}{}:
				defer func() { <-pool }()
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		sr, err = runSequential(ctx, stages, s, e.retryPolicy(), observe)
	} else {
		if pool == nil {
			pool = NewStagePool(e.parallelism())
		}
		sr, err = runDAG(ctx, stages, s, pool, e.retryPolicy(), observe)
	}
	if err != nil {
		return nil, err
	}
	s.rep.Stages = sr.traces
	s.rep.StageConcurrency = sr.maxConcurrent

	// Telemetry and durability are soft from here on: the analysis
	// already produced its results, and every acknowledged K-DB write
	// is on the WAL — a failing trace store or flush degrades the run
	// (recorded in Report.Degraded) instead of discarding it.
	if err := e.kdb.StoreStageTraces(sr.traces); err != nil {
		s.noteDrop("store stage traces", err)
	}
	if !opts.NoFlush {
		if err := e.kdb.Flush(); err != nil {
			s.noteDegraded("flush", err)
		}
	}
	s.rep.Degraded = s.degradation()
	return s.rep, nil
}

// parallelism resolves the stage-pool size.
func (e *Engine) parallelism() int {
	if e.cfg.Parallelism > 0 {
		return e.cfg.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// taxonomyOf derives the exam → category taxonomy from the catalog,
// the abstraction hierarchy the generalized pattern miner climbs.
func taxonomyOf(log *dataset.Log) fpm.Taxonomy {
	tax := fpm.Taxonomy{}
	for _, e := range log.Exams {
		if e.Category != "" {
			tax[e.Code] = "category:" + e.Category
		}
	}
	return tax
}

// RobustnessFactory returns the classifier factory the optimization
// component uses; exposed so callers can reproduce individual Table I
// rows outside a full sweep.
func RobustnessFactory(opts classify.TreeOptions) classify.Factory {
	return func() classify.Classifier { return classify.NewDecisionTree(opts) }
}
