// Package core orchestrates the full ADA-HEALTH pipeline of Figure 1:
// data characterization → data transformation → adaptive partial
// mining → data-analytics optimization → knowledge extraction →
// K-DB storage → end-goal recommendation → knowledge ranking.
//
// Given an examination log and minimal configuration, Analyze produces
// a ranked, manageable set of knowledge items with no further user
// intervention — the paper's headline behaviour.
//
// # Execution model
//
// The pipeline is an explicit stage DAG (see Stage): each stage
// declares the state keys it consumes and produces, and a scheduler
// topologically orders the stages and runs independent ones
// concurrently on a bounded worker pool — pattern mining overlaps the
// K-sweep, demand extraction overlaps clustering. Cancellation is
// threaded through every compute kernel via context.Context, per-stage
// wall-time and allocation metrics land in Report.Stages and the
// K-DB's stage_traces collection, and AnalyzeMany batches several logs
// over one shared pool. Config.Sequential selects the legacy serial
// path, which executes the same stages in declaration order and
// produces a bit-for-bit identical Report.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"adahealth/internal/classify"
	"adahealth/internal/cluster"
	"adahealth/internal/dataset"
	"adahealth/internal/endgoal"
	"adahealth/internal/fpm"
	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/stats"
	"adahealth/internal/vsm"
)

// Config configures an Engine. The zero value plus a KDB directory is
// a working paper-faithful configuration (defaults are filled in).
type Config struct {
	// VSM selects the data transformation (paper: raw counts).
	VSM vsm.Options
	// Partial configures the adaptive horizontal partial mining
	// (paper: fractions 20%/40%/100% of exam types, 5% tolerance).
	Partial partial.Config
	// Sweep configures the K optimization (paper: Table I grid,
	// 10-fold CV decision tree).
	Sweep optimize.SweepConfig
	// MinSupportFrac is the relative support threshold for pattern
	// mining over visits; default 0.02.
	MinSupportFrac float64
	// MinConfidence is the association-rule threshold; default 0.6.
	MinConfidence float64
	// MaxPatternItems bounds how many pattern knowledge items are
	// stored (the "manageable set"); default 50.
	MaxPatternItems int
	// KDBDir is the knowledge-base directory ("" = in-memory).
	KDBDir string
	// Seed drives every stochastic component.
	Seed int64
	// Sequential forces the legacy serial execution: the same stages,
	// run one at a time in declaration order on the calling goroutine.
	// The concurrent DAG produces a bit-for-bit identical Report; this
	// flag exists for debugging, deterministic profiling, and the
	// equivalence tests.
	Sequential bool
	// Parallelism bounds how many stages run concurrently — one pool
	// shared across all logs of an AnalyzeMany call, so batch analysis
	// does not oversubscribe the machine; <= 0 uses all cores
	// (runtime.GOMAXPROCS(0)).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.MinSupportFrac <= 0 {
		c.MinSupportFrac = 0.02
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.6
	}
	if c.MaxPatternItems <= 0 {
		c.MaxPatternItems = 50
	}
	c.Partial.Seed = c.Seed
	c.Sweep.Seed = c.Seed
	return c
}

// Engine is the ADA-HEALTH automated analysis engine.
type Engine struct {
	cfg Config
	kdb *kdb.KDB
}

// New builds an engine, opening (or creating) its knowledge base.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	k, err := kdb.Open(cfg.KDBDir)
	if err != nil {
		return nil, fmt.Errorf("core: opening K-DB: %w", err)
	}
	return &Engine{cfg: cfg, kdb: k}, nil
}

// KDB exposes the engine's knowledge base (feedback recording,
// inspection).
func (e *Engine) KDB() *kdb.KDB { return e.kdb }

// Report is the complete outcome of one automated analysis.
type Report struct {
	Descriptor      stats.Descriptor
	Transformed     kdb.TransformedSummary
	Partial         *partial.Result
	SelectedSubset  int // features used after partial mining
	Sweep           *optimize.SweepResult
	BestClustering  *cluster.Result
	ClusterItems    []knowledge.Item
	PatternItems    []knowledge.Item
	RuleItems       []knowledge.Item
	Recommendations []endgoal.Recommendation
	Ranked          []knowledge.Item
	// Demand is the monthly examination-volume series backing the
	// resource-planning end-goal.
	Demand []stats.DemandPoint

	// Stages holds the per-stage execution traces of this analysis,
	// ordered by start time; overlapping [Start, End) intervals show
	// which stages actually ran concurrently. The same traces are
	// persisted to the K-DB's stage_traces collection.
	Stages []kdb.StageTrace
	// StageConcurrency is the maximum number of stages the scheduler
	// observed running at the same instant (1 under Config.Sequential).
	StageConcurrency int
}

// Analyze runs the full pipeline on a log. It is AnalyzeContext with
// a background context.
func (e *Engine) Analyze(log *dataset.Log) (*Report, error) {
	return e.AnalyzeContext(context.Background(), log)
}

// AnalyzeContext runs the full pipeline on a log under a context.
// Cancellation is honoured inside the clustering, sweep and
// partial-mining hot loops (per Lloyd iteration / per probe) and at
// stage and phase boundaries elsewhere: a cancelled analysis returns
// ctx.Err() (errors.Is-matchable) as soon as the in-flight work
// reaches its next checkpoint, rather than finishing the grid.
func (e *Engine) AnalyzeContext(ctx context.Context, log *dataset.Log) (*Report, error) {
	return e.analyze(ctx, log, nil, true)
}

// AnalyzeMany analyzes several logs as one batch sharing a single
// bounded stage pool, so concurrent logs interleave their independent
// stages instead of oversubscribing the machine with len(logs) full
// pipelines. When Sweep.Parallelism is unset, each log's K sweep is
// additionally derated to its fair share of the pool, so the batch's
// total compute fan-out stays at roughly Config.Parallelism (sweep
// results are identical for every worker count, so this only affects
// scheduling). Reports are returned in input order. On failure the
// remaining work is cancelled and the first error (preferring a stage
// failure over a cancellation victim) is returned alongside the
// reports that did complete.
//
// Reports are deterministic per log with one caveat: the end-goal
// recommender reads the whole shared K-DB, so once feedback exists for
// a dataset, a batch re-analysis may train its interest model before
// or after a sibling log's descriptor lands — serialize analyses of
// feedback-bearing datasets if byte-stable recommendations matter.
func (e *Engine) AnalyzeMany(ctx context.Context, logs []*dataset.Log) ([]*Report, error) {
	if len(logs) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	pool := make(chan struct{}, e.parallelism())

	// Derate per-log inner parallelism to a fair share of the pool
	// unless the caller pinned it explicitly.
	be := *e
	if be.cfg.Sweep.Parallelism <= 0 {
		be.cfg.Sweep.Parallelism = e.parallelism() / len(logs)
		if be.cfg.Sweep.Parallelism < 1 {
			be.cfg.Sweep.Parallelism = 1
		}
		if be.cfg.Sweep.Cluster.Parallelism == 0 {
			// The stage pool and the sweep pool already carry the
			// batch concurrency; keep the K-means kernel serial.
			be.cfg.Sweep.Cluster.Parallelism = 1
		}
	}
	if be.cfg.Partial.Cluster.Parallelism == 0 {
		// Same for the partial-mining probe runs: concurrent
		// partialmine stages must not each fan the kernel out to
		// GOMAXPROCS workers.
		be.cfg.Partial.Cluster.Parallelism = 1
	}

	reports := make([]*Report, len(logs))
	errs := make([]error, len(logs))
	var wg sync.WaitGroup
	for i, log := range logs {
		wg.Add(1)
		go func(i int, log *dataset.Log) {
			defer wg.Done()
			// flush=false: per-log flushes from concurrent goroutines
			// would race on the docstore's snapshot temp files; the
			// batch flushes once below instead.
			rep, err := be.analyze(ctx, log, pool, false)
			reports[i], errs[i] = rep, err
			if err != nil {
				cancel() // fail fast: stop sibling analyses
			}
		}(i, log)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			firstErr = err // the root failure, not a cancellation victim
			break
		}
	}
	// One flush for the whole batch, after every writer goroutine has
	// finished — persist completed analyses even when a sibling failed.
	if err := e.kdb.Flush(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("core: flushing K-DB: %w", err)
	}
	return reports, firstErr
}

// analyze runs one log through the stage graph. pool is the shared
// stage semaphore (nil = private pool sized by Config.Parallelism);
// flush controls whether the K-DB is flushed here (AnalyzeMany defers
// to one batch-level flush so concurrent snapshot writes cannot tear).
func (e *Engine) analyze(ctx context.Context, log *dataset.Log, pool chan struct{}, flush bool) (*Report, error) {
	if log.NumPatients() == 0 || log.NumRecords() == 0 {
		return nil, fmt.Errorf("core: log %q is empty", log.Name)
	}
	stages := e.pipelineStages()
	if err := validateStages(stages); err != nil {
		return nil, err
	}
	s := &pipelineState{log: log, rep: &Report{}}

	var (
		sr  *scheduleResult
		err error
	)
	if e.cfg.Sequential {
		if pool != nil {
			// Sequential pipelines inside a batch still occupy one
			// shared-pool slot each, so AnalyzeMany stays bounded.
			select {
			case pool <- struct{}{}:
				defer func() { <-pool }()
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		sr, err = runSequential(ctx, stages, s)
	} else {
		if pool == nil {
			pool = make(chan struct{}, e.parallelism())
		}
		sr, err = runDAG(ctx, stages, s, pool)
	}
	if err != nil {
		return nil, err
	}
	s.rep.Stages = sr.traces
	s.rep.StageConcurrency = sr.maxConcurrent

	if err := e.kdb.StoreStageTraces(sr.traces); err != nil {
		return nil, err
	}
	if flush {
		if err := e.kdb.Flush(); err != nil {
			return nil, fmt.Errorf("core: flushing K-DB: %w", err)
		}
	}
	return s.rep, nil
}

// parallelism resolves the stage-pool size.
func (e *Engine) parallelism() int {
	if e.cfg.Parallelism > 0 {
		return e.cfg.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// taxonomyOf derives the exam → category taxonomy from the catalog,
// the abstraction hierarchy the generalized pattern miner climbs.
func taxonomyOf(log *dataset.Log) fpm.Taxonomy {
	tax := fpm.Taxonomy{}
	for _, e := range log.Exams {
		if e.Category != "" {
			tax[e.Code] = "category:" + e.Category
		}
	}
	return tax
}

// RobustnessFactory returns the classifier factory the optimization
// component uses; exposed so callers can reproduce individual Table I
// rows outside a full sweep.
func RobustnessFactory(opts classify.TreeOptions) classify.Factory {
	return func() classify.Classifier { return classify.NewDecisionTree(opts) }
}
