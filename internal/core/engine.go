// Package core orchestrates the full ADA-HEALTH pipeline of Figure 1:
// data characterization → data transformation → adaptive partial
// mining → data-analytics optimization → knowledge extraction →
// K-DB storage → end-goal recommendation → knowledge ranking.
//
// Given an examination log and minimal configuration, Analyze produces
// a ranked, manageable set of knowledge items with no further user
// intervention — the paper's headline behaviour.
package core

import (
	"fmt"

	"adahealth/internal/classify"
	"adahealth/internal/cluster"
	"adahealth/internal/dataset"
	"adahealth/internal/endgoal"
	"adahealth/internal/fpm"
	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/ranking"
	"adahealth/internal/stats"
	"adahealth/internal/vsm"
)

// Config configures an Engine. The zero value plus a KDB directory is
// a working paper-faithful configuration (defaults are filled in).
type Config struct {
	// VSM selects the data transformation (paper: raw counts).
	VSM vsm.Options
	// Partial configures the adaptive horizontal partial mining
	// (paper: fractions 20%/40%/100% of exam types, 5% tolerance).
	Partial partial.Config
	// Sweep configures the K optimization (paper: Table I grid,
	// 10-fold CV decision tree).
	Sweep optimize.SweepConfig
	// MinSupportFrac is the relative support threshold for pattern
	// mining over visits; default 0.02.
	MinSupportFrac float64
	// MinConfidence is the association-rule threshold; default 0.6.
	MinConfidence float64
	// MaxPatternItems bounds how many pattern knowledge items are
	// stored (the "manageable set"); default 50.
	MaxPatternItems int
	// KDBDir is the knowledge-base directory ("" = in-memory).
	KDBDir string
	// Seed drives every stochastic component.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MinSupportFrac <= 0 {
		c.MinSupportFrac = 0.02
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.6
	}
	if c.MaxPatternItems <= 0 {
		c.MaxPatternItems = 50
	}
	c.Partial.Seed = c.Seed
	c.Sweep.Seed = c.Seed
	return c
}

// Engine is the ADA-HEALTH automated analysis engine.
type Engine struct {
	cfg Config
	kdb *kdb.KDB
}

// New builds an engine, opening (or creating) its knowledge base.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	k, err := kdb.Open(cfg.KDBDir)
	if err != nil {
		return nil, fmt.Errorf("core: opening K-DB: %w", err)
	}
	return &Engine{cfg: cfg, kdb: k}, nil
}

// KDB exposes the engine's knowledge base (feedback recording,
// inspection).
func (e *Engine) KDB() *kdb.KDB { return e.kdb }

// Report is the complete outcome of one automated analysis.
type Report struct {
	Descriptor      stats.Descriptor
	Transformed     kdb.TransformedSummary
	Partial         *partial.Result
	SelectedSubset  int // features used after partial mining
	Sweep           *optimize.SweepResult
	BestClustering  *cluster.Result
	ClusterItems    []knowledge.Item
	PatternItems    []knowledge.Item
	RuleItems       []knowledge.Item
	Recommendations []endgoal.Recommendation
	Ranked          []knowledge.Item
	// Demand is the monthly examination-volume series backing the
	// resource-planning end-goal.
	Demand []stats.DemandPoint
}

// Analyze runs the full pipeline on a log.
func (e *Engine) Analyze(log *dataset.Log) (*Report, error) {
	if log.NumPatients() == 0 || log.NumRecords() == 0 {
		return nil, fmt.Errorf("core: log %q is empty", log.Name)
	}
	rep := &Report{}

	// 1. Data characterization (stored in K-DB collection 3).
	rep.Descriptor = stats.Characterize(log)
	if _, err := e.kdb.StoreDescriptor(rep.Descriptor); err != nil {
		return nil, err
	}

	// 2. Data transformation: VSM (collection 2 records the summary).
	matrix, err := vsm.Build(log, e.cfg.VSM)
	if err != nil {
		return nil, fmt.Errorf("core: transforming: %w", err)
	}
	rep.Transformed = kdb.TransformedSummary{
		Dataset:     log.Name,
		Weighting:   e.cfg.VSM.Weighting.String(),
		Norm:        e.cfg.VSM.Normalization.String(),
		NumRows:     matrix.NumRows(),
		NumFeatures: matrix.NumFeatures(),
		Sparsity:    matrix.Sparsity(),
		Features:    matrix.Features,
	}
	if _, err := e.kdb.StoreTransformed(rep.Transformed); err != nil {
		return nil, err
	}

	// 3. Adaptive horizontal partial mining (Section IV-B).
	pres, err := partial.RunHorizontal(matrix, e.cfg.Partial)
	if err != nil {
		return nil, fmt.Errorf("core: partial mining: %w", err)
	}
	rep.Partial = pres
	rep.SelectedSubset = pres.SelectedStep().NumFeatures
	working := matrix.Project(rep.SelectedSubset)

	// 4. Data-analytics optimization: the K sweep of Table I on the
	// selected subset.
	sweep, err := optimize.Sweep(working.Rows, e.cfg.Sweep)
	if err != nil {
		return nil, fmt.Errorf("core: optimizing: %w", err)
	}
	rep.Sweep = sweep

	// 5. Final clustering with the selected K.
	opts := e.cfg.Sweep.Cluster
	opts.K = sweep.BestK
	opts.Seed = e.cfg.Seed + int64(sweep.BestK)*7919
	best, err := cluster.KMeans(working.Rows, opts)
	if err != nil {
		return nil, fmt.Errorf("core: final clustering: %w", err)
	}
	rep.BestClustering = best
	rep.ClusterItems = knowledge.FromClusterResult(log.Name, best, working.Features, 5)

	// 6. Pattern discovery over visits, taxonomy-aware (MeTA-style).
	visits := log.Visits()
	txs := make([][]string, len(visits))
	for i, v := range visits {
		txs[i] = v.ExamCodes
	}
	minSupport := int(e.cfg.MinSupportFrac * float64(len(txs)))
	if minSupport < 2 {
		minSupport = 2
	}
	tax := taxonomyOf(log)
	gsets, err := fpm.MineGeneralized(txs, tax, minSupport)
	if err != nil {
		return nil, fmt.Errorf("core: pattern mining: %w", err)
	}
	flat := make([]fpm.Itemset, 0, len(gsets))
	for _, g := range gsets {
		flat = append(flat, g.Itemset)
	}
	fpm.SortItemsets(flat)
	rep.PatternItems = knowledge.FromItemsets(log.Name, flat, len(txs))
	if len(rep.PatternItems) > e.cfg.MaxPatternItems {
		rep.PatternItems = rep.PatternItems[:e.cfg.MaxPatternItems]
	}
	rules, err := fpm.Rules(flat, len(txs), e.cfg.MinConfidence)
	if err != nil {
		return nil, fmt.Errorf("core: rule derivation: %w", err)
	}
	if len(rules) > e.cfg.MaxPatternItems {
		rules = rules[:e.cfg.MaxPatternItems]
	}
	rep.RuleItems = knowledge.FromRules(log.Name, rules)

	// 7. Store extracted knowledge (collections 4-5).
	all := make([]knowledge.Item, 0,
		len(rep.ClusterItems)+len(rep.PatternItems)+len(rep.RuleItems))
	all = append(all, rep.ClusterItems...)
	all = append(all, rep.PatternItems...)
	all = append(all, rep.RuleItems...)
	if err := e.kdb.StoreKnowledgeItems(all); err != nil {
		return nil, err
	}

	// 8. End-goal recommendation from the K-DB.
	recs, err := endgoal.NewRecommender(e.kdb).Recommend(rep.Descriptor)
	if err != nil {
		return nil, fmt.Errorf("core: recommending end-goals: %w", err)
	}
	rep.Recommendations = recs

	// 9. Rank the knowledge for presentation; attach the demand
	// series for the resource-planning goal.
	rep.Ranked = ranking.NewRanker().Rank(all)
	rep.Demand = stats.MonthlyDemand(log)

	if err := e.kdb.Flush(); err != nil {
		return nil, fmt.Errorf("core: flushing K-DB: %w", err)
	}
	return rep, nil
}

// taxonomyOf derives the exam → category taxonomy from the catalog,
// the abstraction hierarchy the generalized pattern miner climbs.
func taxonomyOf(log *dataset.Log) fpm.Taxonomy {
	tax := fpm.Taxonomy{}
	for _, e := range log.Exams {
		if e.Category != "" {
			tax[e.Code] = "category:" + e.Category
		}
	}
	return tax
}

// RobustnessFactory returns the classifier factory the optimization
// component uses; exposed so callers can reproduce individual Table I
// rows outside a full sweep.
func RobustnessFactory(opts classify.TreeOptions) classify.Factory {
	return func() classify.Classifier { return classify.NewDecisionTree(opts) }
}
