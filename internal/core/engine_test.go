package core

import (
	"testing"

	"adahealth/internal/dataset"
	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/synth"
)

// testConfig is a fast pipeline configuration for the small synthetic
// dataset.
func testConfig() Config {
	return Config{
		Seed: 1,
		Partial: partial.Config{
			Ks: []int{4},
		},
		Sweep: optimize.SweepConfig{
			Ks:      []int{3, 4, 5},
			CVFolds: 4,
		},
	}
}

func smallLog(t *testing.T) *dataset.Log {
	t.Helper()
	log, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestAnalyzeEndToEnd(t *testing.T) {
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Analyze(smallLog(t))
	if err != nil {
		t.Fatal(err)
	}

	// Characterization reflects the input.
	if rep.Descriptor.NumPatients != 300 {
		t.Errorf("descriptor patients = %d", rep.Descriptor.NumPatients)
	}
	// Transformation summary is consistent.
	if rep.Transformed.NumRows != 300 || rep.Transformed.NumFeatures != 40 {
		t.Errorf("transformed = %+v", rep.Transformed)
	}
	// Partial mining ran the paper's three steps and selected one.
	if len(rep.Partial.Steps) != 3 {
		t.Errorf("partial steps = %d", len(rep.Partial.Steps))
	}
	if rep.SelectedSubset < 1 || rep.SelectedSubset > 40 {
		t.Errorf("selected subset = %d", rep.SelectedSubset)
	}
	// The sweep covered the grid and chose a K from it.
	if len(rep.Sweep.Rows) != 3 {
		t.Errorf("sweep rows = %d", len(rep.Sweep.Rows))
	}
	found := false
	for _, k := range []int{3, 4, 5} {
		if rep.Sweep.BestK == k {
			found = true
		}
	}
	if !found {
		t.Errorf("BestK = %d not in grid", rep.Sweep.BestK)
	}
	// Final clustering matches BestK.
	if rep.BestClustering.K != rep.Sweep.BestK {
		t.Errorf("final clustering K = %d, sweep best = %d",
			rep.BestClustering.K, rep.Sweep.BestK)
	}
	// Knowledge items: cluster set + one per cluster.
	if len(rep.ClusterItems) != rep.Sweep.BestK+1 {
		t.Errorf("cluster items = %d, want %d", len(rep.ClusterItems), rep.Sweep.BestK+1)
	}
	// Pattern items bounded by the manageable-set cap.
	if len(rep.PatternItems) > 50 {
		t.Errorf("pattern items = %d exceed cap", len(rep.PatternItems))
	}
	if len(rep.PatternItems) == 0 {
		t.Error("no co-prescription patterns found in bundled synthetic data")
	}
	// Recommendations cover the full catalog.
	if len(rep.Recommendations) != 6 {
		t.Errorf("recommendations = %d, want 6", len(rep.Recommendations))
	}
	// Ranked list contains everything extracted.
	want := len(rep.ClusterItems) + len(rep.PatternItems) + len(rep.RuleItems)
	if len(rep.Ranked) != want {
		t.Errorf("ranked = %d, want %d", len(rep.Ranked), want)
	}
}

func TestAnalyzePopulatesKDB(t *testing.T) {
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(smallLog(t)); err != nil {
		t.Fatal(err)
	}
	counts := e.KDB().Counts()
	if counts[kdb.CollDescriptors] != 1 {
		t.Errorf("descriptors stored = %d", counts[kdb.CollDescriptors])
	}
	if counts[kdb.CollTransformed] != 1 {
		t.Errorf("transformed stored = %d", counts[kdb.CollTransformed])
	}
	if counts[kdb.CollClusterKI] == 0 {
		t.Error("no clustering knowledge stored")
	}
	if counts[kdb.CollPatternKI] == 0 {
		t.Error("no pattern knowledge stored")
	}
}

func TestAnalyzeEmptyLog(t *testing.T) {
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(dataset.NewLog("empty")); err == nil {
		t.Error("empty log accepted")
	}
}

func TestAnalyzePersistsKDBToDisk(t *testing.T) {
	cfg := testConfig()
	cfg.KDBDir = t.TempDir()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(smallLog(t)); err != nil {
		t.Fatal(err)
	}
	// Reopen the K-DB fresh and confirm the knowledge survived.
	re, err := kdb.Open(cfg.KDBDir)
	if err != nil {
		t.Fatal(err)
	}
	items, err := re.KnowledgeItems("")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Error("no knowledge items persisted")
	}
}

func TestAnalyzeFeedbackLoop(t *testing.T) {
	// Feedback recorded after one analysis steers the end-goal
	// recommendation of the next (the paper's self-learning loop).
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := smallLog(t)
	rep1, err := e.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep1
	for i := 0; i < 4; i++ {
		if err := e.KDB().RecordFeedback(kdb.Feedback{
			User: "dr", Dataset: log.Name, ItemID: "x",
			Goal: "adverse-event-monitoring", Interest: knowledge.InterestHigh,
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.KDB().RecordFeedback(kdb.Feedback{
			User: "dr", Dataset: log.Name, ItemID: "y",
			Goal: "patient-group-discovery", Interest: knowledge.InterestLow,
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep2, err := e.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Recommendations[0].Source != "model" {
		t.Fatalf("recommendation source = %q, want model after feedback",
			rep2.Recommendations[0].Source)
	}
	if rep2.Recommendations[0].Goal.ID != "adverse-event-monitoring" {
		t.Errorf("top goal = %s, want adverse-event-monitoring after feedback",
			rep2.Recommendations[0].Goal.ID)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	log := smallLog(t)
	e1, _ := New(testConfig())
	e2, _ := New(testConfig())
	r1, err := e1.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sweep.BestK != r2.Sweep.BestK {
		t.Errorf("BestK differs: %d vs %d", r1.Sweep.BestK, r2.Sweep.BestK)
	}
	if r1.SelectedSubset != r2.SelectedSubset {
		t.Errorf("subset differs: %d vs %d", r1.SelectedSubset, r2.SelectedSubset)
	}
	if len(r1.Ranked) != len(r2.Ranked) {
		t.Fatalf("ranked lengths differ")
	}
	for i := range r1.Ranked {
		if r1.Ranked[i].ID != r2.Ranked[i].ID {
			t.Fatalf("ranking differs at %d: %s vs %s",
				i, r1.Ranked[i].ID, r2.Ranked[i].ID)
		}
	}
}
