package core

import (
	"context"
	"reflect"
	"testing"

	"adahealth/internal/optimize"
)

// TestAnalyzeArenaMatchesFresh is the cross-job reuse equivalence
// property: analyses whose sweeps draw worker slabs from one shared
// arena (the job service's configuration) must produce bit-for-bit
// identical Reports to arena-less analyses, across a sequence of
// different logs so later jobs run on slabs warmed by earlier ones.
func TestAnalyzeArenaMatchesFresh(t *testing.T) {
	seeds := []int64{1, 7, 42, 7} // repeat a log: fully warm slab path
	ctx := context.Background()

	freshEngine, err := New(seededConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	fresh := make([]*Report, len(seeds))
	for i, seed := range seeds {
		rep, err := freshEngine.AnalyzeContext(ctx, seededLog(t, seed))
		if err != nil {
			t.Fatalf("seed %d fresh: %v", seed, err)
		}
		fresh[i] = rep
	}

	arenaEngine, err := New(seededConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	arena := optimize.NewArena()
	for i, seed := range seeds {
		rep, err := arenaEngine.AnalyzeWith(ctx, seededLog(t, seed), AnalyzeOptions{Arena: arena})
		if err != nil {
			t.Fatalf("seed %d arena: %v", seed, err)
		}
		if !reflect.DeepEqual(comparable(rep), comparable(fresh[i])) {
			t.Errorf("job %d (seed %d): arena-backed report differs from fresh", i, seed)
		}
		if !reflect.DeepEqual(projectRecs(rep), projectRecs(fresh[i])) {
			t.Errorf("job %d (seed %d): arena-backed recommendations differ", i, seed)
		}
	}
}
