package core

import (
	"context"
	"sort"

	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/optimize"
)

// RecallConfig tunes the recall stage: the paper's self-learning loop,
// where the K-DB's accumulated experience drives new analyses. The
// zero value is the documented default (recall on, similarity 0.9,
// at most 3 source datasets).
type RecallConfig struct {
	// Disabled turns the stage into a no-op (the analysis runs exactly
	// as if the K-DB held no prior knowledge).
	Disabled bool
	// MinSimilarity is the descriptor-similarity threshold a stored
	// dataset must reach to count as "statistically similar"
	// (kdb.DescriptorSimilarity, in [0, 1]; 0 selects the 0.9 default).
	MinSimilarity float64
	// MaxSources bounds how many similar datasets contribute prior
	// knowledge (0 selects the default of 3).
	MaxSources int
}

func (c RecallConfig) withDefaults() RecallConfig {
	if c.MinSimilarity == 0 {
		c.MinSimilarity = 0.9
	}
	if c.MaxSources <= 0 {
		c.MaxSources = 3
	}
	return c
}

// RecallSource is one prior dataset whose knowledge warm-starts this
// analysis.
type RecallSource struct {
	// Dataset is the similar dataset's name.
	Dataset string `json:"dataset"`
	// Similarity is the descriptor similarity to this analysis.
	Similarity float64 `json:"similarity"`
	// Ks are the cluster counts its stored cluster-set items selected.
	Ks []int `json:"ks,omitempty"`
}

// RecallOutcome reports what the recall stage retrieved and how it was
// used — the Report's evidence of the self-learning loop closing.
type RecallOutcome struct {
	// Hit is true when prior knowledge was found and applied.
	Hit bool `json:"hit"`
	// Sources lists the contributing datasets, most similar first.
	Sources []RecallSource `json:"sources,omitempty"`
	// PriorKs is the union of cluster counts past analyses selected.
	PriorKs []int `json:"prior_ks,omitempty"`
	// NarrowedKs is the sweep grid actually evaluated after narrowing
	// around PriorKs (empty on a miss: the full grid ran).
	NarrowedKs []int `json:"narrowed_ks,omitempty"`
	// SeedDataset is the source whose centroids seeded the sweep
	// chain ("" when no centroid seeding happened).
	SeedDataset string `json:"seed_dataset,omitempty"`
	// SeededCentroids is how many centroid rows were remapped onto
	// this dataset's feature space.
	SeededCentroids int `json:"seeded_centroids,omitempty"`
	// Fallback is set when recall could not read the K-DB (offline or
	// broken) and degraded to the cold path — the analysis then runs
	// bit-for-bit as if the K-DB held no prior knowledge. Empty on a
	// healthy run (hit or honest miss).
	Fallback string `json:"fallback,omitempty"`
}

// recallHints is the recall stage's hand-off to the sweep stage:
// retrieved prior knowledge, not yet adapted to the working matrix
// (feature remapping needs the partial-mining projection, which does
// not exist when recall runs).
type recallHints struct {
	priorKs     []int
	seedDataset string
	centroids   [][]float64
	features    []string
}

// runRecall retrieves prior knowledge for statistically similar
// datasets from the K-DB and stages it for the sweep. A miss leaves
// the pipeline configuration untouched — the cold path is bit-for-bit
// the pre-recall behaviour — and both outcomes are recorded as
// feedback (collection 6), so the K-DB accumulates how often its own
// memory pays off.
func (e *Engine) runRecall(ctx context.Context, s *pipelineState) error {
	cfg := e.cfg.Recall.withDefaults()
	if cfg.Disabled {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Rank everything (limit 0): MaxSources bounds datasets that
	// actually contribute knowledge, so descriptor-only entries (an
	// analysis that failed before clustering) or in-flight siblings
	// must not occupy the slots of usable sources ranked below them.
	hits, err := e.kdb.SimilarDatasets(s.rep.Descriptor, s.descriptorDocID, 0)
	if err != nil {
		// Soft: a K-DB that cannot be read degrades recall to the cold
		// path — bit-for-bit the pipeline with no prior knowledge —
		// instead of failing the analysis. Recall is an accelerator;
		// losing it must never lose the run.
		s.rep.Recall = &RecallOutcome{Fallback: err.Error()}
		s.noteDegraded("recall", err)
		return nil
	}
	outcome := &RecallOutcome{}
	s.rep.Recall = outcome

	var hints recallHints
	bestSeedSim := 0.0
	kSet := map[int]bool{}
	for _, hit := range hits {
		if hit.Similarity < cfg.MinSimilarity {
			break // hits are sorted; the rest score lower still
		}
		if len(outcome.Sources) >= cfg.MaxSources {
			break
		}
		// Skip datasets currently being analyzed against this K-DB: a
		// concurrent sibling's half-written knowledge must not leak in
		// (batch results would depend on completion order). The one
		// in-flight registration that is this analysis itself does not
		// hide the dataset's own history — a serial repeat analysis is
		// exactly the self-learning case.
		if n := e.inflight.count(hit.Dataset); n > 0 &&
			(hit.Dataset != s.log.Name || n > 1) {
			continue
		}
		items, err := e.kdb.KnowledgeItems(hit.Dataset)
		if err != nil {
			// A poison document (foreign schema, hand edit) under one
			// dataset must not permanently fail every analysis that
			// ranks it similar — recall is an accelerator, so skip the
			// dataset and keep looking.
			continue
		}
		src := RecallSource{Dataset: hit.Dataset, Similarity: hit.Similarity}
		for _, it := range items {
			if it.Kind != knowledge.KindClusterSet {
				continue
			}
			k := int(it.Metrics["k"])
			if k >= 2 {
				src.Ks = append(src.Ks, k)
				kSet[k] = true
			}
			if len(it.Centroids) > 0 && len(it.Features) > 0 && hit.Similarity > bestSeedSim {
				bestSeedSim = hit.Similarity
				hints.seedDataset = it.Dataset
				hints.centroids = it.Centroids
				hints.features = it.Features
			}
		}
		if len(src.Ks) > 0 {
			sort.Ints(src.Ks)
			outcome.Sources = append(outcome.Sources, src)
		}
	}

	if len(kSet) == 0 {
		// Miss: no similar dataset has produced cluster knowledge yet.
		return e.recordRecallFeedback(s, outcome, "")
	}
	for k := range kSet {
		hints.priorKs = append(hints.priorKs, k)
	}
	sort.Ints(hints.priorKs)
	outcome.Hit = true
	outcome.PriorKs = hints.priorKs
	outcome.SeedDataset = hints.seedDataset
	s.recallHints = &hints
	return e.recordRecallFeedback(s, outcome, hints.seedDataset)
}

// recordRecallFeedback appends the hit/miss record to the feedback
// collection. Its Goal is not a catalog end-goal, so the end-goal
// interest model ignores it; it exists so the K-DB tracks how often
// recall finds usable experience.
func (e *Engine) recordRecallFeedback(s *pipelineState, outcome *RecallOutcome, seedDataset string) error {
	interest := knowledge.InterestLow // miss
	if outcome.Hit {
		interest = knowledge.InterestHigh
	}
	fb := kdb.Feedback{
		User:     "recall-stage",
		Dataset:  s.log.Name,
		ItemID:   seedDataset,
		ItemKind: "recall",
		Goal:     "recall-warm-start",
		Interest: interest,
	}
	if err := e.kdb.RecordFeedback(fb); err != nil {
		// Soft: the hit/miss bookkeeping is telemetry for the
		// self-learning loop, never worth failing the analysis over.
		s.noteDrop("recall feedback", err)
	}
	return nil
}

// applyRecallHints specializes a sweep configuration with retrieved
// prior knowledge: the K grid narrows to the neighbourhood of the Ks
// similar datasets selected, and the best source's centroids —
// remapped by feature (exam-code) name onto the working matrix — seed
// the warm-started chain. Called by the sweep stage with the analysis'
// working matrix features; cfg is a copy, the engine's configuration
// is never mutated.
func applyRecallHints(cfg optimize.SweepConfig, hints *recallHints, features []string, outcome *RecallOutcome) optimize.SweepConfig {
	// Materialize the default grid before narrowing, so narrowing
	// composes with an unset Ks the same way the sweep itself would.
	grid := cfg.Ks
	if len(grid) == 0 {
		grid = optimize.DefaultKs()
	}
	if narrowed := narrowGrid(grid, hints.priorKs); len(narrowed) > 0 && len(narrowed) < len(grid) {
		cfg.Ks = narrowed
		outcome.NarrowedKs = narrowed
	}
	// Centroid seeds only exist on the warm-started chain; the legacy
	// independent-seeding sweep ignores SeedCentroids, so claiming a
	// seed there would put false warm-start evidence in the Report.
	if len(hints.centroids) > 0 && cfg.WarmStart == optimize.WarmStartOn {
		if seeds := remapCentroids(hints.centroids, hints.features, features); seeds != nil {
			cfg.SeedCentroids = seeds
			outcome.SeededCentroids = len(seeds)
		} else {
			outcome.SeedDataset = ""
		}
	} else {
		outcome.SeedDataset = ""
	}
	return cfg
}

// narrowGrid keeps the grid values inside the prior Ks' range [min,
// max] plus one grid step of exploration on each side — the
// neighbourhood past experience says the best K lives in, measured in
// grid positions (so a prior K=20 on the Table I grid keeps {15, 20},
// not {20} alone). When no grid value falls inside [min, max] at all,
// the prior experience does not map onto this grid and nil (no
// narrowing) is returned.
func narrowGrid(grid, priorKs []int) []int {
	if len(priorKs) == 0 {
		return nil
	}
	sorted := append([]int(nil), grid...)
	sort.Ints(sorted)
	lo, hi := priorKs[0], priorKs[len(priorKs)-1]
	first, last := -1, -1 // grid positions bounding [lo, hi]
	for i, k := range sorted {
		if k >= lo && k <= hi {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return nil
	}
	if first > 0 {
		first-- // one grid step of exploration below
	}
	if last < len(sorted)-1 {
		last++ // and above
	}
	return sorted[first : last+1]
}

// RemapCentroids is the exported form of the recall stage's centroid
// projection, shared with the streaming layer (internal/stream), whose
// online model lives in the full live feature space and must be
// carried onto a snapshot's feature ordering when seeding mini-batch
// re-clustering or a drift-triggered full sweep.
func RemapCentroids(centroids [][]float64, srcFeatures, dstFeatures []string) [][]float64 {
	return remapCentroids(centroids, srcFeatures, dstFeatures)
}

// remapCentroids projects centroid rows from a source feature space
// onto dst by feature name: matching exam codes carry their weight
// over, codes absent from dst are dropped, dst codes the source never
// saw stay zero. Returns nil when fewer than half of the source's
// features exist in dst — too little overlap for the seed to target
// anything.
func remapCentroids(centroids [][]float64, srcFeatures, dstFeatures []string) [][]float64 {
	dstIdx := make(map[string]int, len(dstFeatures))
	for i, f := range dstFeatures {
		dstIdx[f] = i
	}
	overlap := 0
	colMap := make([]int, len(srcFeatures)) // src col → dst col (−1 = dropped)
	for i, f := range srcFeatures {
		if j, ok := dstIdx[f]; ok {
			colMap[i] = j
			overlap++
		} else {
			colMap[i] = -1
		}
	}
	if overlap*2 < len(srcFeatures) {
		return nil
	}
	out := make([][]float64, len(centroids))
	for c, row := range centroids {
		mapped := make([]float64, len(dstFeatures))
		for i, v := range row {
			if i < len(colMap) && colMap[i] >= 0 {
				mapped[colMap[i]] = v
			}
		}
		out[c] = mapped
	}
	return out
}
