package core

import (
	"strings"
	"testing"

	"adahealth/internal/cluster"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
)

// TestNewRejectsBadConfig: New must fail bad configurations with a
// descriptive error at construction time instead of silently
// defaulting — the admission-time contract the job service relies on.
func TestNewRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error
	}{
		{"support above one", Config{MinSupportFrac: 1.5}, "MinSupportFrac"},
		{"negative support", Config{MinSupportFrac: -0.1}, "MinSupportFrac"},
		{"confidence above one", Config{MinConfidence: 1.2}, "MinConfidence"},
		{"negative confidence", Config{MinConfidence: -0.5}, "MinConfidence"},
		{"negative pattern cap", Config{MaxPatternItems: -1}, "MaxPatternItems"},
		{"negative parallelism", Config{Parallelism: -2}, "Parallelism"},
		{"negative seed", Config{Seed: -7}, "Seed"},
		{"unknown sweep algorithm", Config{Sweep: optimize.SweepConfig{Cluster: cluster.Options{Algorithm: cluster.Algorithm(99)}}}, "algorithm"},
		{"unknown partial algorithm", Config{Partial: partial.Config{Cluster: cluster.Options{Algorithm: cluster.Algorithm(-1)}}}, "algorithm"},
		{"negative batch size", Config{Sweep: optimize.SweepConfig{Cluster: cluster.Options{BatchSize: -5}}}, "batch"},
		{"negative partial batch size", Config{Partial: partial.Config{Cluster: cluster.Options{BatchSize: -1}}}, "batch"},
		{"unknown warm-start mode", Config{Sweep: optimize.SweepConfig{WarmStart: optimize.WarmStart(3)}}, "warm-start"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Fatalf("New accepted %+v", tc.cfg)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
			if err := tc.cfg.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", tc.cfg)
			}
		})
	}
}

// TestNewAcceptsZeroAndBoundaryConfig: zero values select defaults and
// in-range boundaries pass.
func TestNewAcceptsZeroAndBoundaryConfig(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{MinSupportFrac: 1, MinConfidence: 1},
		{MinSupportFrac: 0.02, MinConfidence: 0.6, MaxPatternItems: 10, Parallelism: 2, Seed: 42},
		{Sweep: optimize.SweepConfig{Cluster: cluster.Options{Algorithm: cluster.Elkan}, WarmStart: optimize.WarmStartOff}},
		{Sweep: optimize.SweepConfig{Cluster: cluster.Options{Algorithm: cluster.AlgorithmMiniBatch, BatchSize: 512}}},
	} {
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}
		if e.Config().MinSupportFrac <= 0 || e.Config().MinConfidence <= 0 {
			t.Fatalf("defaults not filled: %+v", e.Config())
		}
	}
}

// TestWithConfigSharesKDB: a derived engine validates its override and
// keeps the parent's knowledge base.
func TestWithConfigSharesKDB(t *testing.T) {
	e, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.WithConfig(Config{MinConfidence: 3}); err == nil {
		t.Error("WithConfig accepted MinConfidence 3")
	}
	d, err := e.WithConfig(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if d.KDB() != e.KDB() {
		t.Error("derived engine does not share the parent K-DB")
	}
	if d.Config().Seed != 9 {
		t.Errorf("derived seed = %d, want 9", d.Config().Seed)
	}
}
