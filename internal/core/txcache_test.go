package core

import (
	"testing"
)

// TestTxCacheReuseAndRelease: the patterns-stage encoding is built
// once per log, shared with WithConfig-derived engines, and dropped by
// ReleaseLog.
func TestTxCacheReuseAndRelease(t *testing.T) {
	e, err := New(seededConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	log := seededLog(t, 1)

	ext1, n1 := e.txc.basketsFor(log)
	ext2, n2 := e.txc.basketsFor(log)
	if ext1 != ext2 || n1 != n2 {
		t.Error("repeated basketsFor did not reuse the cached encoding")
	}
	if n1 == 0 {
		t.Fatal("no visits encoded")
	}

	derived, err := e.WithConfig(seededConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if ext3, _ := derived.txc.basketsFor(log); ext3 != ext1 {
		t.Error("WithConfig-derived engine does not share the transaction cache")
	}

	if e.CachedLogs() != 1 {
		t.Fatalf("CachedLogs = %d, want 1", e.CachedLogs())
	}
	e.ReleaseLog(log)
	if e.CachedLogs() != 0 {
		t.Fatalf("CachedLogs after release = %d, want 0", e.CachedLogs())
	}
	// A release mid-flight is harmless: the next analysis rebuilds.
	if ext4, n4 := e.txc.basketsFor(log); ext4 == nil || n4 != n1 {
		t.Error("rebuild after release diverged")
	}
}
