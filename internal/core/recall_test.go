package core

import (
	"reflect"
	"testing"

	"adahealth/internal/knowledge"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
)

// recallConfig is a test pipeline configuration with a K grid wide
// enough for narrowing to be observable.
func recallConfig() Config {
	return Config{
		Seed:    1,
		Partial: partial.Config{Ks: []int{4}},
		Sweep: optimize.SweepConfig{
			Ks:      []int{3, 4, 5, 6, 8, 10},
			CVFolds: 4,
		},
	}
}

func sweepIterations(rep *Report) int {
	total := 0
	for _, r := range rep.Sweep.Rows {
		total += r.Iterations
	}
	return total
}

// TestRecallWarmStartsSimilarDataset is the acceptance scenario: after
// one analysis deposits knowledge in the K-DB, analyzing a
// statistically similar dataset recalls it — the sweep grid narrows
// around the prior best K, the prior centroids seed the chain, and the
// sweep does strictly less clustering work than the cold run of the
// same log.
func TestRecallWarmStartsSimilarDataset(t *testing.T) {
	logA := seededLog(t, 1)
	logA.Name = "twin-a"
	logB := seededLog(t, 2)
	logB.Name = "twin-b"

	// Cold baseline: fresh engine, empty K-DB — recall runs and
	// misses.
	cold, err := New(recallConfig())
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := cold.Analyze(logB)
	if err != nil {
		t.Fatal(err)
	}
	if coldRep.Recall == nil || coldRep.Recall.Hit {
		t.Fatalf("cold analysis recall = %+v, want recorded miss", coldRep.Recall)
	}

	// Warm path: one engine, analyze the twin first.
	warm, err := New(recallConfig())
	if err != nil {
		t.Fatal(err)
	}
	repA, err := warm.Analyze(logA)
	if err != nil {
		t.Fatal(err)
	}
	// Descriptor-only ghosts (analyses that died before clustering)
	// rank at similarity 1.0 but hold no knowledge; they must not
	// occupy the MaxSources slots twin-a needs.
	ghost := warm.KDB()
	for _, name := range []string{"ghost-1", "ghost-2", "ghost-3"} {
		d := repA.Descriptor
		d.DatasetName = name
		if _, err := ghost.StoreDescriptor(d); err != nil {
			t.Fatal(err)
		}
	}
	warmRep, err := warm.Analyze(logB)
	if err != nil {
		t.Fatal(err)
	}

	rec := warmRep.Recall
	if rec == nil || !rec.Hit {
		t.Fatalf("recall = %+v, want hit", rec)
	}
	if len(rec.Sources) == 0 || rec.Sources[0].Dataset != "twin-a" {
		t.Fatalf("recall sources = %+v, want twin-a", rec.Sources)
	}
	wantPrior := []int{repA.Sweep.BestK}
	if !reflect.DeepEqual(rec.PriorKs, wantPrior) {
		t.Errorf("prior Ks = %v, want %v", rec.PriorKs, wantPrior)
	}
	if len(rec.NarrowedKs) == 0 || len(rec.NarrowedKs) >= len(recallConfig().Sweep.Ks) {
		t.Errorf("narrowed grid = %v, want strict subset of %v", rec.NarrowedKs, recallConfig().Sweep.Ks)
	}
	if rec.SeededCentroids == 0 || rec.SeedDataset != "twin-a" {
		t.Errorf("centroid seeding = %d rows from %q, want >0 from twin-a", rec.SeededCentroids, rec.SeedDataset)
	}
	if len(warmRep.Sweep.Rows) != len(rec.NarrowedKs) {
		t.Errorf("sweep evaluated %d rows, want the %d narrowed Ks", len(warmRep.Sweep.Rows), len(rec.NarrowedKs))
	}
	if wi, ci := sweepIterations(warmRep), sweepIterations(coldRep); wi >= ci {
		t.Errorf("warm sweep iterations = %d, want < cold %d", wi, ci)
	}

	// Both outcomes land in the feedback collection.
	fb, err := warm.KDB().FeedbackFor("twin-b")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fb {
		if f.ItemKind == "recall" && f.Interest == knowledge.InterestHigh {
			found = true
		}
	}
	if !found {
		t.Errorf("no recall-hit feedback recorded: %+v", fb)
	}
}

// TestRecallMissKeepsColdPathBitForBit: when recall finds nothing, the
// analysis must be bit-for-bit identical to one with the stage
// disabled — the self-learning loop may only ever add information.
func TestRecallMissKeepsColdPathBitForBit(t *testing.T) {
	log := seededLog(t, 3)

	on, err := New(recallConfig())
	if err != nil {
		t.Fatal(err)
	}
	repOn, err := on.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if repOn.Recall == nil || repOn.Recall.Hit {
		t.Fatalf("recall on empty K-DB = %+v, want miss", repOn.Recall)
	}

	cfg := recallConfig()
	cfg.Recall.Disabled = true
	off, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repOff, err := off.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if repOff.Recall != nil {
		t.Fatalf("disabled recall produced an outcome: %+v", repOff.Recall)
	}

	a, b := comparable(repOn), comparable(repOff)
	a.Recall, b.Recall = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Error("recall miss perturbed the analysis (want bit-for-bit cold path)")
	}
	if !reflect.DeepEqual(projectRecs(repOn), projectRecs(repOff)) {
		t.Error("recall miss perturbed the recommendations")
	}
}

// TestRecallRepeatAnalysisSameDataset: a serial re-analysis of the
// same dataset name recalls its own earlier run.
func TestRecallRepeatAnalysisSameDataset(t *testing.T) {
	e, err := New(recallConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := seededLog(t, 1)
	if _, err := e.Analyze(log); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recall == nil || !rep.Recall.Hit {
		t.Fatalf("repeat analysis recall = %+v, want hit on own history", rep.Recall)
	}
	if len(rep.Recall.Sources) == 0 || rep.Recall.Sources[0].Dataset != log.Name {
		t.Errorf("repeat analysis sources = %+v, want %s", rep.Recall.Sources, log.Name)
	}
}

// TestRecallLegacySweepClaimsNoSeeding: under WarmStartOff the sweep
// ignores SeedCentroids, so the Report must not claim centroids were
// seeded (the K narrowing still applies and is real).
func TestRecallLegacySweepClaimsNoSeeding(t *testing.T) {
	cfg := recallConfig()
	cfg.Sweep.WarmStart = optimize.WarmStartOff
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logA := seededLog(t, 1)
	logA.Name = "twin-a"
	logB := seededLog(t, 2)
	logB.Name = "twin-b"
	if _, err := e.Analyze(logA); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Analyze(logB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recall == nil || !rep.Recall.Hit {
		t.Fatalf("recall = %+v, want hit", rep.Recall)
	}
	if rep.Recall.SeededCentroids != 0 || rep.Recall.SeedDataset != "" {
		t.Errorf("legacy sweep claims seeding: %+v", rep.Recall)
	}
	if len(rep.Recall.NarrowedKs) == 0 {
		t.Errorf("K narrowing lost under legacy sweep: %+v", rep.Recall)
	}
}

// TestRecallHelperUnits covers the grid-narrowing and centroid-remap
// edge cases.
func TestRecallHelperUnits(t *testing.T) {
	if got := narrowGrid([]int{3, 4, 5, 6, 8, 10}, []int{5}); !reflect.DeepEqual(got, []int{4, 5, 6}) {
		t.Errorf("narrowGrid single prior = %v", got)
	}
	// The window is one grid step, not ±1 absolute: a prior at the
	// coarse end keeps its grid neighbour for exploration.
	if got := narrowGrid(optimize.DefaultKs(), []int{20}); !reflect.DeepEqual(got, []int{15, 20}) {
		t.Errorf("narrowGrid at grid edge = %v, want [15 20]", got)
	}
	if got := narrowGrid(optimize.DefaultKs(), []int{8, 10}); !reflect.DeepEqual(got, []int{7, 8, 9, 10, 12}) {
		t.Errorf("narrowGrid range prior = %v, want [7 8 9 10 12]", got)
	}
	if got := narrowGrid([]int{3, 4, 5}, []int{9}); got != nil {
		t.Errorf("narrowGrid disjoint = %v, want nil", got)
	}
	if got := narrowGrid([]int{3, 4, 5}, nil); got != nil {
		t.Errorf("narrowGrid no priors = %v, want nil", got)
	}

	cents := [][]float64{{1, 2, 3}, {4, 5, 6}}
	src := []string{"a", "b", "c"}
	dst := []string{"b", "x", "a"}
	got := remapCentroids(cents, src, dst)
	want := [][]float64{{2, 0, 1}, {5, 0, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remapCentroids = %v, want %v", got, want)
	}
	// Under 50% feature overlap refuses to seed.
	if got := remapCentroids(cents, src, []string{"c", "y", "z"}); got != nil {
		t.Errorf("remapCentroids with 1/3 overlap = %v, want nil", got)
	}

	// Validation knobs.
	bad := recallConfig()
	bad.Recall.MinSimilarity = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("MinSimilarity > 1 accepted")
	}
	bad = recallConfig()
	bad.Recall.MaxSources = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative MaxSources accepted")
	}
}
