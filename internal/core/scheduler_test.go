package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"adahealth/internal/dataset"
)

// testStage builds a synthetic funcStage for scheduler tests.
func testStage(name string, ins, outs []string, run func(ctx context.Context, s *pipelineState) error) Stage {
	if run == nil {
		run = func(context.Context, *pipelineState) error { return nil }
	}
	return &funcStage{name: name, inputs: ins, outputs: outs, run: run}
}

func testState() *pipelineState {
	return &pipelineState{log: dataset.NewLog("sched-test"), rep: &Report{}}
}

func TestValidateStagesRejectsDuplicateOutput(t *testing.T) {
	err := validateStages([]Stage{
		testStage("a", nil, []string{"x"}, nil),
		testStage("b", nil, []string{"x"}, nil),
	})
	if err == nil || !strings.Contains(err.Error(), "both produce") {
		t.Fatalf("err = %v, want duplicate-output error", err)
	}
}

func TestValidateStagesRejectsUnknownInput(t *testing.T) {
	err := validateStages([]Stage{
		testStage("a", []string{"ghost"}, []string{"x"}, nil),
	})
	if err == nil || !strings.Contains(err.Error(), "no stage produces") {
		t.Fatalf("err = %v, want unknown-input error", err)
	}
}

func TestValidateStagesRejectsMisorderedDeclaration(t *testing.T) {
	// b consumes x but is declared before a produces it: not a valid
	// topological declaration order (and the shape a cycle takes).
	err := validateStages([]Stage{
		testStage("b", []string{"x"}, []string{"y"}, nil),
		testStage("a", nil, []string{"x"}, nil),
	})
	if err == nil || !strings.Contains(err.Error(), "declared before") {
		t.Fatalf("err = %v, want ordering error", err)
	}
}

func TestValidateStagesAcceptsBuiltinPipeline(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := validateStages(e.pipelineStages()); err != nil {
		t.Fatalf("built-in pipeline invalid: %v", err)
	}
}

// TestRunDAGOverlapsIndependentStages proves concurrent execution
// deterministically: two independent stages rendezvous through
// channels — each signals it has started, then waits for the other —
// so the DAG completes only if both run at the same time, and their
// recorded wall-clock intervals must overlap. A serial scheduler
// would deadlock here (bounded by the context timeout).
func TestRunDAGOverlapsIndependentStages(t *testing.T) {
	aStarted := make(chan struct{})
	bStarted := make(chan struct{})
	rendezvous := func(mine, other chan struct{}) func(ctx context.Context, s *pipelineState) error {
		return func(ctx context.Context, s *pipelineState) error {
			close(mine)
			select {
			case <-other:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	stages := []Stage{
		testStage("a", nil, []string{"x"}, rendezvous(aStarted, bStarted)),
		testStage("b", nil, []string{"y"}, rendezvous(bStarted, aStarted)),
		testStage("join", []string{"x", "y"}, []string{"z"}, nil),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sr, err := runDAG(ctx, stages, testState(), make(chan struct{}, 2), retryPolicy{}, nil)
	if err != nil {
		t.Fatalf("runDAG: %v (serial scheduling would deadlock into this)", err)
	}
	if sr.maxConcurrent < 2 {
		t.Errorf("max concurrent stages = %d, want >= 2", sr.maxConcurrent)
	}
	if len(sr.traces) != 3 {
		t.Fatalf("traces = %d, want 3", len(sr.traces))
	}
	var a, b *struct{ start, end time.Time }
	for _, tr := range sr.traces {
		iv := &struct{ start, end time.Time }{tr.Start, tr.End}
		switch tr.Stage {
		case "a":
			a = iv
		case "b":
			b = iv
		}
	}
	if a == nil || b == nil {
		t.Fatal("traces for a and b missing")
	}
	if !(a.start.Before(b.end) && b.start.Before(a.end)) {
		t.Errorf("stage intervals do not overlap: a=[%v,%v] b=[%v,%v]",
			a.start, a.end, b.start, b.end)
	}
}

func TestRunDAGRespectsDependencies(t *testing.T) {
	var mu sync.Mutex
	var order []string
	record := func(name string) func(ctx context.Context, s *pipelineState) error {
		return func(context.Context, *pipelineState) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	stages := []Stage{
		testStage("src", nil, []string{"x"}, record("src")),
		testStage("mid", []string{"x"}, []string{"y"}, record("mid")),
		testStage("sink", []string{"y"}, []string{"z"}, record("sink")),
	}
	sr, err := runDAG(context.Background(), stages, testState(), make(chan struct{}, 4), retryPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"src", "mid", "sink"}; fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("execution order = %v, want %v", order, want)
	}
	// A strict chain can never run two stages at once.
	if sr.maxConcurrent != 1 {
		t.Errorf("max concurrent = %d on a chain, want 1", sr.maxConcurrent)
	}
}

func TestRunDAGPoolBoundsConcurrency(t *testing.T) {
	var stages []Stage
	for i := 0; i < 6; i++ {
		stages = append(stages, testStage(fmt.Sprintf("s%d", i), nil,
			[]string{fmt.Sprintf("o%d", i)},
			func(context.Context, *pipelineState) error {
				time.Sleep(time.Millisecond)
				return nil
			}))
	}
	sr, err := runDAG(context.Background(), stages, testState(), make(chan struct{}, 1), retryPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sr.maxConcurrent != 1 {
		t.Errorf("max concurrent = %d with pool of 1, want 1", sr.maxConcurrent)
	}
}

func TestRunDAGErrorSkipsDownstream(t *testing.T) {
	boom := errors.New("boom")
	ran := false
	stages := []Stage{
		testStage("bad", nil, []string{"x"},
			func(context.Context, *pipelineState) error { return boom }),
		testStage("down", []string{"x"}, []string{"y"},
			func(context.Context, *pipelineState) error { ran = true; return nil }),
	}
	_, err := runDAG(context.Background(), stages, testState(), make(chan struct{}, 2), retryPolicy{}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "stage bad") {
		t.Errorf("error %q does not name the failing stage", err)
	}
	if ran {
		t.Error("downstream stage ran despite failed producer")
	}
}

func TestRunDAGCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := runDAG(ctx, []Stage{testStage("a", nil, []string{"x"}, nil)},
		testState(), make(chan struct{}, 1), retryPolicy{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunSequentialOrderAndTraces(t *testing.T) {
	var order []string
	record := func(name string) func(ctx context.Context, s *pipelineState) error {
		return func(context.Context, *pipelineState) error {
			order = append(order, name) // no lock: sequential by contract
			return nil
		}
	}
	stages := []Stage{
		testStage("one", nil, []string{"x"}, record("one")),
		testStage("two", []string{"x"}, []string{"y"}, record("two")),
	}
	sr, err := runSequential(context.Background(), stages, testState(), retryPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != fmt.Sprint([]string{"one", "two"}) {
		t.Errorf("order = %v", order)
	}
	if sr.maxConcurrent != 1 {
		t.Errorf("sequential max concurrent = %d", sr.maxConcurrent)
	}
	for _, tr := range sr.traces {
		if !tr.Sequential {
			t.Errorf("trace %s not flagged sequential", tr.Stage)
		}
		if tr.Dataset != "sched-test" {
			t.Errorf("trace %s dataset = %q", tr.Stage, tr.Dataset)
		}
		if tr.WallNanos < 0 || tr.End.Before(tr.Start) {
			t.Errorf("trace %s has invalid interval", tr.Stage)
		}
	}
}
