package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adahealth/internal/docstore"
	"adahealth/internal/faultfs"
	"adahealth/internal/kdb"
)

// panicStage panics on every run.
type panicStage struct {
	name    string
	outputs []string
	calls   atomic.Int32
}

func (p *panicStage) Name() string      { return p.name }
func (p *panicStage) Inputs() []string  { return nil }
func (p *panicStage) Outputs() []string { return p.outputs }
func (p *panicStage) Run(ctx context.Context, s *pipelineState) error {
	p.calls.Add(1)
	panic("stage exploded")
}

// slowStage sleeps for d (honouring ctx) before succeeding.
type slowStage struct {
	name    string
	outputs []string
	d       time.Duration
	calls   atomic.Int32
}

func (sl *slowStage) Name() string      { return sl.name }
func (sl *slowStage) Inputs() []string  { return nil }
func (sl *slowStage) Outputs() []string { return sl.outputs }
func (sl *slowStage) Run(ctx context.Context, s *pipelineState) error {
	sl.calls.Add(1)
	select {
	case <-time.After(sl.d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TestStagePanicIsolated: a panicking stage must surface as a
// *PanicError carrying the stage name and a stack trace — failing the
// analysis, not the process — on both scheduler paths, and must never
// be retried (the panic is deterministic until someone fixes the code).
func TestStagePanicIsolated(t *testing.T) {
	for _, mode := range []string{"sequential", "dag"} {
		t.Run(mode, func(t *testing.T) {
			st := &panicStage{name: "boom", outputs: []string{"x"}}
			rp := retryPolicy{retries: 3, backoff: time.Millisecond}
			var err error
			if mode == "sequential" {
				_, err = runSequential(context.Background(), []Stage{st}, retryState(), rp, nil)
			} else {
				_, err = runDAG(context.Background(), []Stage{st}, retryState(), make(chan struct{}, 1), rp, nil)
			}
			if err == nil {
				t.Fatal("panicking stage reported success")
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("error = %v (%T), want *PanicError", err, err)
			}
			if pe.Stage != "boom" || pe.Value != "stage exploded" {
				t.Errorf("panic error = %+v, want stage boom value %q", pe, "stage exploded")
			}
			if !strings.Contains(string(pe.Stack), "panicStage") {
				t.Error("panic stack does not reach the panicking stage")
			}
			if got := st.calls.Load(); got != 1 {
				t.Errorf("panicking stage ran %d times, want 1 (no retry)", got)
			}
		})
	}
}

// TestStagePanicDoesNotWedgeDAG: with more than one stage in flight,
// a panic in one must still drain the scheduler and return (no
// deadlocked WaitGroup, no leaked goroutine holding the semaphore).
func TestStagePanicDoesNotWedgeDAG(t *testing.T) {
	stages := []Stage{
		&slowStage{name: "ok", outputs: []string{"a"}, d: 5 * time.Millisecond},
		&panicStage{name: "boom", outputs: []string{"b"}},
	}
	done := make(chan error, 1)
	go func() {
		_, err := runDAG(context.Background(), stages, retryState(), make(chan struct{}, 2), retryPolicy{}, nil)
		done <- err
	}()
	select {
	case err := <-done:
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("error = %v, want *PanicError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DAG scheduler wedged after stage panic")
	}
}

// TestStageTimeout: an attempt exceeding the per-stage budget fails
// with *StageTimeoutError (matching context.DeadlineExceeded) and is
// not retried; a stage finishing inside the budget is untouched.
func TestStageTimeout(t *testing.T) {
	st := &slowStage{name: "glacial", outputs: []string{"x"}, d: 10 * time.Second}
	rp := retryPolicy{retries: 3, backoff: time.Millisecond, timeout: 20 * time.Millisecond}
	start := time.Now()
	_, err := runSequential(context.Background(), []Stage{st}, retryState(), rp, nil)
	if err == nil {
		t.Fatal("stage past its deadline reported success")
	}
	var te *StageTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error = %v (%T), want *StageTimeoutError", err, err)
	}
	if te.Stage != "glacial" || te.Timeout != 20*time.Millisecond {
		t.Errorf("timeout error = %+v", te)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("timeout error does not match context.DeadlineExceeded")
	}
	if got := st.calls.Load(); got != 1 {
		t.Errorf("timed-out stage ran %d times, want 1 (no retry)", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, want ~20ms", elapsed)
	}

	fast := &slowStage{name: "brisk", outputs: []string{"x"}, d: time.Millisecond}
	if _, err := runSequential(context.Background(), []Stage{fast}, retryState(),
		retryPolicy{timeout: 5 * time.Second}, nil); err != nil {
		t.Fatalf("stage inside its budget failed: %v", err)
	}
}

// TestStageTimeoutCallerCancelWins: when the caller's context is
// cancelled the error must stay the plain context error, not be
// misreported as a per-attempt deadline.
func TestStageTimeoutCallerCancelWins(t *testing.T) {
	st := &slowStage{name: "glacial", outputs: []string{"x"}, d: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := runSequential(ctx, []Stage{st}, retryState(),
		retryPolicy{timeout: time.Minute}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	var te *StageTimeoutError
	if errors.As(err, &te) {
		t.Error("caller cancellation misreported as a stage timeout")
	}
}

// TestJitterBackoffBounds: full jitter draws stay in (0, d].
func TestJitterBackoffBounds(t *testing.T) {
	for _, d := range []time.Duration{time.Millisecond, 50 * time.Millisecond, maxStageBackoff} {
		for i := 0; i < 200; i++ {
			got := jitterBackoff(d)
			if got <= 0 || got > d {
				t.Fatalf("jitterBackoff(%v) = %v, want in (0, %v]", d, got, d)
			}
		}
	}
	if got := jitterBackoff(0); got != 0 {
		t.Errorf("jitterBackoff(0) = %v", got)
	}
}

// TestValidateStageTimeout: Config.Validate rejects a negative
// per-stage deadline.
func TestValidateStageTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.StageTimeout = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Error("negative StageTimeout validated")
	}
}

// TestAnalyzeDegradedKDBOffline is the pipeline's graceful-degradation
// acceptance test: with the K-DB knocked offline by a broken WAL, an
// analysis still completes — recall falls back to the cold path,
// dropped writes are counted in Report.Degraded — and its analytical
// results are bit-for-bit the recall-disabled run over a healthy
// in-memory engine.
func TestAnalyzeDegradedKDBOffline(t *testing.T) {
	ffs := faultfs.New(nil, 1)
	k, err := kdb.OpenStore(docstore.Options{Dir: t.TempDir(), FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	e, err := NewWithKDB(testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}

	// Every WAL append fails from here: the first pipeline write breaks
	// the store, the breaker trips offline, and the rest of the
	// analysis runs against a refusing K-DB.
	ffs.Inject(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.log", Err: faultfs.ENOSPC()})

	log := seededLog(t, 3)
	rep, err := e.Analyze(log)
	if err != nil {
		t.Fatalf("analysis over offline K-DB failed: %v", err)
	}
	if got := k.Health().Mode; got != kdb.ModeOffline {
		t.Fatalf("K-DB mode after broken WAL = %s, want offline", got)
	}
	if rep.Degraded == nil || rep.Degraded.DroppedKDBWrites == 0 || len(rep.Degraded.Reasons) == 0 {
		t.Fatalf("report degradation = %+v, want dropped writes and reasons", rep.Degraded)
	}
	if rep.Recall == nil || rep.Recall.Fallback == "" || rep.Recall.Hit {
		t.Fatalf("recall outcome = %+v, want cold-path fallback", rep.Recall)
	}
	if len(rep.Recommendations) != 0 {
		t.Errorf("offline K-DB produced %d recommendations", len(rep.Recommendations))
	}

	// Cold baseline: recall disabled, healthy in-memory K-DB.
	coldCfg := testConfig()
	coldCfg.Recall.Disabled = true
	cold, err := New(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := cold.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}

	a, b := comparable(rep), comparable(coldRep)
	a.Recall, b.Recall = nil, nil
	a.Degraded, b.Degraded = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Error("degraded analysis diverged from the cold path (want bit-for-bit)")
	}
}

// TestAnalyzeDegradedSnapshotFault: snapshot-only faults leave the WAL
// intact — the analysis succeeds, acked writes survive reopen, and
// only the flush is reported degraded.
func TestAnalyzeDegradedSnapshotFault(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil, 1)
	// A tiny WAL budget so the per-analysis flush compacts (and hits
	// the injected snapshot fault).
	k, err := kdb.OpenStore(docstore.Options{Dir: dir, FS: ffs, MaxWALBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewWithKDB(testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	ffs.Inject(faultfs.Rule{Op: faultfs.OpWrite, Path: ".json.tmp", Err: faultfs.ENOSPC()})

	log := seededLog(t, 4)
	rep, err := e.Analyze(log)
	if err != nil {
		t.Fatalf("analysis under snapshot fault failed: %v", err)
	}
	if rep.Degraded == nil {
		t.Fatal("snapshot fault not reported in Degraded")
	}
	if rep.Degraded.DroppedKDBWrites != 0 {
		t.Errorf("snapshot fault dropped %d writes, want 0 (WAL intact)", rep.Degraded.DroppedKDBWrites)
	}
	if rep.Recall == nil || rep.Recall.Fallback != "" {
		t.Errorf("recall outcome = %+v, want healthy miss", rep.Recall)
	}
	k.Close()

	// Reopen without faults: every acked write replays from the WAL.
	k2, err := kdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	items, err := k2.KnowledgeItems(log.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Error("knowledge items lost despite acked WAL writes")
	}
}
