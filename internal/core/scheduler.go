package core

import (
	"context"
	"fmt"
	"runtime/metrics"
	"sort"
	"sync"
	"time"

	"adahealth/internal/kdb"
)

// scheduleResult is what one pipeline execution hands back: the
// per-stage traces (ordered by start time) and the maximum number of
// stages observed running at once.
type scheduleResult struct {
	traces        []kdb.StageTrace
	maxConcurrent int
}

// validateStages checks the static shape of a stage list: every output
// produced by exactly one stage, every input produced by some stage,
// and the declaration order topologically valid (each stage's inputs
// produced by strictly earlier stages). The last property is stronger
// than mere acyclicity; it is what lets the sequential path execute
// the declaration order directly and guarantees the concurrent
// scheduler can always make progress.
func validateStages(stages []Stage) error {
	producer := map[string]string{}
	for _, st := range stages {
		for _, out := range st.Outputs() {
			if prev, dup := producer[out]; dup {
				return fmt.Errorf("core: stages %q and %q both produce %q", prev, st.Name(), out)
			}
			producer[out] = st.Name()
		}
	}
	seen := map[string]bool{}
	names := map[string]bool{}
	for _, st := range stages {
		if names[st.Name()] {
			return fmt.Errorf("core: duplicate stage name %q", st.Name())
		}
		names[st.Name()] = true
		for _, in := range st.Inputs() {
			if _, ok := producer[in]; !ok {
				return fmt.Errorf("core: stage %q needs %q, which no stage produces", st.Name(), in)
			}
			if !seen[in] {
				return fmt.Errorf("core: stage %q declared before its input %q is produced (cycle or mis-ordered stage list)",
					st.Name(), in)
			}
		}
		for _, out := range st.Outputs() {
			seen[out] = true
		}
	}
	return nil
}

// heapAllocBytes reads the runtime's cumulative heap allocation
// counter (cheap, no stop-the-world). Deltas around a stage give its
// allocation cost: exact when nothing else runs, an upper bound when
// stages execute concurrently.
func heapAllocBytes() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

// runSequential executes stages one by one in declaration order — the
// legacy pre-DAG behaviour, kept behind Config.Sequential as the
// reference implementation the DAG is equivalence-tested against.
func runSequential(ctx context.Context, stages []Stage, s *pipelineState, rp retryPolicy, observe StageObserver) (*scheduleResult, error) {
	res := &scheduleResult{maxConcurrent: 1}
	for _, st := range stages {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		start := time.Now()
		observe.observe(s.log.Name, st.Name(), StageStart, start, nil)
		a0 := heapAllocBytes()
		attempts, err := executeStage(ctx, st, s, rp)
		end := time.Now()
		observe.observe(s.log.Name, st.Name(), StageFinish, end, err)
		res.traces = append(res.traces, kdb.StageTrace{
			Dataset:    s.log.Name,
			Stage:      st.Name(),
			Start:      start,
			End:        end,
			WallNanos:  end.Sub(start).Nanoseconds(),
			AllocBytes: heapAllocBytes() - a0,
			Sequential: true,
			Attempts:   attempts,
		})
		if err != nil {
			return res, stageErr(ctx, st, err)
		}
	}
	return res, nil
}

// runDAG executes stages respecting their declared data dependencies,
// running independent stages concurrently on the bounded worker pool
// behind pool (a counting semaphore, shared across logs by
// AnalyzeMany). On the first stage failure the remaining un-started
// stages are abandoned and in-flight ones are cancelled; the first
// error (by completion time) is returned, except that a cancelled
// parent context always surfaces as ctx.Err().
func runDAG(ctx context.Context, stages []Stage, s *pipelineState, pool chan struct{}, rp retryPolicy, observe StageObserver) (*scheduleResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		idx   int
		err   error
		trace kdb.StageTrace
	}
	results := make(chan outcome)

	var (
		mu         sync.Mutex
		running    int
		maxRunning int
	)
	enter := func() {
		mu.Lock()
		running++
		if running > maxRunning {
			maxRunning = running
		}
		mu.Unlock()
	}
	leave := func() {
		mu.Lock()
		running--
		mu.Unlock()
	}

	launch := func(idx int, st Stage) {
		go func() {
			select {
			case pool <- struct{}{}:
			case <-ctx.Done():
				results <- outcome{idx: idx, err: ctx.Err()}
				return
			}
			defer func() { <-pool }()
			// Both select cases can be ready at once; never start a
			// stage under a context that is already dead.
			if err := ctx.Err(); err != nil {
				results <- outcome{idx: idx, err: err}
				return
			}
			enter()
			defer leave()
			start := time.Now()
			observe.observe(s.log.Name, st.Name(), StageStart, start, nil)
			a0 := heapAllocBytes()
			attempts, err := executeStage(ctx, st, s, rp)
			end := time.Now()
			observe.observe(s.log.Name, st.Name(), StageFinish, end, err)
			results <- outcome{
				idx: idx,
				err: err,
				trace: kdb.StageTrace{
					Dataset:    s.log.Name,
					Stage:      st.Name(),
					Start:      start,
					End:        end,
					WallNanos:  end.Sub(start).Nanoseconds(),
					AllocBytes: heapAllocBytes() - a0,
					Attempts:   attempts,
				},
			}
		}()
	}

	done := map[string]bool{}
	launched := make([]bool, len(stages))
	ready := func(st Stage) bool {
		for _, in := range st.Inputs() {
			if !done[in] {
				return false
			}
		}
		return true
	}
	dispatch := func() int {
		n := 0
		for i, st := range stages {
			if !launched[i] && ready(st) {
				launched[i] = true
				launch(i, st)
				n++
			}
		}
		return n
	}

	res := &scheduleResult{}
	inFlight := dispatch()
	var firstErr error
	completed := 0
	for inFlight > 0 {
		out := <-results
		inFlight--
		completed++
		if out.trace.Stage != "" {
			res.traces = append(res.traces, out.trace)
		}
		if out.err != nil {
			if firstErr == nil {
				firstErr = stageErr(ctx, stages[out.idx], out.err)
				cancel() // abandon the rest of the graph
			}
			continue
		}
		if firstErr == nil {
			for _, o := range stages[out.idx].Outputs() {
				done[o] = true
			}
			inFlight += dispatch()
		}
	}
	mu.Lock()
	res.maxConcurrent = maxRunning
	mu.Unlock()
	sort.SliceStable(res.traces, func(i, j int) bool {
		return res.traces[i].Start.Before(res.traces[j].Start)
	})
	if firstErr != nil {
		return res, firstErr
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if completed < len(stages) {
		// Cannot happen with a validateStages-checked list; defensive.
		return res, fmt.Errorf("core: pipeline stalled with %d of %d stages done",
			completed, len(stages))
	}
	return res, nil
}

// stageErr attributes an error to its stage, letting a context
// cancellation pass through unwrapped so errors.Is(err, ctx.Err())
// holds for callers of Analyze.
func stageErr(ctx context.Context, st Stage, err error) error {
	if ctx.Err() != nil && err == ctx.Err() {
		return err
	}
	return fmt.Errorf("core: stage %s: %w", st.Name(), err)
}
