package core

import (
	"sync"

	"adahealth/internal/dataset"
	"adahealth/internal/fpm"
)

// txCacheMax bounds how many logs keep a cached basket encoding. A
// long-running service re-analyzes the same logs under different
// configurations far more often than it sees txCacheMax distinct logs;
// past the bound an arbitrary entry is dropped and simply rebuilt on
// next use.
const txCacheMax = 64

// txCache memoizes, per examination log, the taxonomy-extended
// fpm.Transactions the patterns stage mines — the one-time cost of
// grouping records into visits, string-encoding baskets and climbing
// the taxonomy, paid once per log instead of once per analysis. The
// cache is shared between an engine and every engine derived from it
// via WithConfig (the encoding depends only on the log, not on the
// configuration), and is safe for concurrent analyses.
type txCache struct {
	mu sync.Mutex
	m  map[*dataset.Log]*logBaskets
}

// logBaskets is one cached encoding, built lazily exactly once even
// when several analyses of the same log race on a cold cache.
type logBaskets struct {
	once  sync.Once
	ext   *fpm.Transactions // visit baskets extended with taxonomy ancestors
	numTx int               // number of visits (the support denominator)
}

func newTxCache() *txCache {
	return &txCache{m: make(map[*dataset.Log]*logBaskets)}
}

// release drops the cached encoding for log (no-op when absent).
func (c *txCache) release(log *dataset.Log) {
	c.mu.Lock()
	delete(c.m, log)
	c.mu.Unlock()
}

// size reports how many logs currently hold a cached encoding.
func (c *txCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// basketsFor returns the cached taxonomy-extended transaction encoding
// of log and the visit count its relative support thresholds are
// computed against.
func (c *txCache) basketsFor(log *dataset.Log) (*fpm.Transactions, int) {
	c.mu.Lock()
	lb := c.m[log]
	if lb == nil {
		if len(c.m) >= txCacheMax {
			for k := range c.m {
				delete(c.m, k)
				break
			}
		}
		lb = &logBaskets{}
		c.m[log] = lb
	}
	c.mu.Unlock()
	lb.once.Do(func() {
		visits := log.Visits()
		txs := make([][]string, len(visits))
		for i, v := range visits {
			txs[i] = v.ExamCodes
		}
		lb.numTx = len(txs)
		lb.ext = taxonomyOf(log).ExtendEncoded(fpm.NewTransactions(txs))
	})
	return lb.ext, lb.numTx
}
