package stream

import (
	"context"
	"errors"
	"fmt"
	"time"

	"adahealth/internal/cluster"
	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/kdb"
	"adahealth/internal/service"
	"adahealth/internal/stats"
	"adahealth/internal/vsm"

	"sync"
)

// Convenience aliases so HTTP request bodies and callers read in the
// streaming layer's vocabulary without a second set of struct types.
type (
	// Exam is a dataset.ExamType catalog entry.
	Exam = dataset.ExamType
	// Patient is a dataset.Patient registry entry.
	Patient = dataset.Patient
	// Record is one dataset.Record examination event.
	Record = dataset.Record
)

// Event types on a live dataset's stream, in the order a typical
// append produces them.
const (
	// EventRegistered: the dataset accepted its revision-1 batch.
	EventRegistered = "registered"
	// EventAppended: a visit batch was durably accepted.
	EventAppended = "appended"
	// EventModelUpdated: the online model re-clustered over the
	// appended state.
	EventModelUpdated = "model-updated"
	// EventResweepScheduled: descriptor drift crossed the threshold
	// and a full warm-started re-analysis was submitted.
	EventResweepScheduled = "resweep-scheduled"
	// EventResweepComplete: the full re-analysis finished (Err set if
	// it failed); the drift baseline reset to its report's descriptor.
	EventResweepComplete = "resweep-complete"
)

// Event is one notification on a live dataset's stream. The SSE
// endpoint serves these verbatim, one per message.
type Event struct {
	// Dataset is the emitting live dataset.
	Dataset string `json:"dataset"`
	// Time is when the transition happened.
	Time time.Time `json:"time"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Revision is the dataset revision the event refers to.
	Revision int `json:"revision"`
	// Drift is the drift gauge at emission time (appended and resweep
	// events).
	Drift float64 `json:"drift,omitempty"`
	// JobID is the service job of a resweep event.
	JobID string `json:"job_id,omitempty"`
	// Err carries a resweep failure message.
	Err string `json:"err,omitempty"`
}

// eventHistory bounds how many past events replay to a new subscriber
// (a live dataset's stream never terminates, so unbounded history
// would grow with every append).
const eventHistory = 256

// eventBuffer is the per-subscriber channel headroom past the replay.
const eventBuffer = 64

// Dataset is one live dataset: the accumulated examination log, the
// incrementally maintained VSM and descriptor statistics, the online
// mini-batch cluster model, and the drift detector that decides when a
// full re-analysis pays.
type Dataset struct {
	mgr  *Manager
	name string

	mu   sync.Mutex
	log  *dataset.Log
	live *vsm.Live
	acc  *stats.Accumulator

	revision int // last durably applied batch revision
	modelRev int // revision the online model reflects

	// centroids/features are the online model, labelled by exam code
	// (features in the live matrix's current ranking order).
	centroids [][]float64
	features  []string

	// baseline is the descriptor of the last fully analyzed state (the
	// registration descriptor until the first resweep completes);
	// drift is the current gauge against it.
	baseline     *stats.Descriptor
	drift        float64
	lastAnalysis string // job ID of the last completed full analysis

	resweeping bool   // a full re-analysis is queued or running
	resweepJob string // its job ID while in flight

	events []Event
	subs   []chan Event
}

// newEmptyLog mirrors dataset.NewLog (kept separate so stream.go does
// not import dataset directly for one call).
func newEmptyLog(name string) *dataset.Log { return dataset.NewLog(name) }

// Name returns the dataset's registered name.
func (d *Dataset) Name() string { return d.name }

// DatasetStatus is a point-in-time snapshot of a live dataset: the
// GET /v1/datasets/{id} body.
type DatasetStatus struct {
	Dataset  string `json:"dataset"`
	Revision int    `json:"revision"`
	// ModelRevision is the revision the online model reflects (equal
	// to Revision except in the instants between accept and model
	// update).
	ModelRevision int `json:"model_revision"`
	NumPatients   int `json:"num_patients"`
	NumExamTypes  int `json:"num_exam_types"`
	NumRecords    int `json:"num_records"`
	// OnlineK is the online model's current cluster count (0 while too
	// few patients to cluster).
	OnlineK int `json:"online_k"`
	// Drift is the current drift gauge: 1 − descriptor similarity to
	// the last fully analyzed state, compared against Threshold.
	Drift     float64 `json:"drift"`
	Threshold float64 `json:"threshold"`
	// Resweeping is true while a drift-triggered full re-analysis is
	// queued or running as ResweepJob.
	Resweeping bool   `json:"resweeping"`
	ResweepJob string `json:"resweep_job,omitempty"`
	// LastAnalysis is the job ID of the last completed full analysis;
	// its Report is served by GET /v1/analyses/{id}/report.
	LastAnalysis string `json:"last_analysis,omitempty"`
}

// Status snapshots the dataset.
func (d *Dataset) Status() DatasetStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.statusLocked()
}

func (d *Dataset) statusLocked() DatasetStatus {
	return DatasetStatus{
		Dataset:       d.name,
		Revision:      d.revision,
		ModelRevision: d.modelRev,
		NumPatients:   d.log.NumPatients(),
		NumExamTypes:  d.log.NumExamTypes(),
		NumRecords:    d.log.NumRecords(),
		OnlineK:       len(d.centroids),
		Drift:         d.drift,
		Threshold:     d.mgr.cfg.DriftThreshold,
		Resweeping:    d.resweeping,
		ResweepJob:    d.resweepJob,
		LastAnalysis:  d.lastAnalysis,
	}
}

// Append accepts one visit batch: new exam types, new patients, and
// records over the union of already-known and batch-new identities.
// The batch is validated against the accumulated state, durably
// recorded in the K-DB (the WAL ack is the acknowledgement's
// durability point — a failure returns ErrDurability and applies
// nothing), applied to the live VSM and descriptor statistics in
// place, re-clustered online, and drift-checked. The returned status
// reflects the post-append state.
func (d *Dataset) Append(exams []Exam, patients []Patient, records []Record) (DatasetStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appendLocked(exams, patients, records)
}

func (d *Dataset) appendLocked(exams []Exam, patients []Patient, records []Record) (DatasetStatus, error) {
	t0 := time.Now()
	st, err := d.appendInnerLocked(exams, patients, records)
	switch {
	case err == nil:
		// The model update happens synchronously inside the append, so
		// this latency IS append→model-updated.
		appendSeconds.ObserveSince(t0)
		appendsTotal.With("ok").Inc()
	case errors.Is(err, ErrDurability):
		appendsTotal.With("failed").Inc()
	default:
		appendsTotal.With("rejected").Inc()
	}
	return st, err
}

func (d *Dataset) appendInnerLocked(exams []Exam, patients []Patient, records []Record) (DatasetStatus, error) {
	if len(exams) == 0 && len(patients) == 0 && len(records) == 0 {
		return DatasetStatus{}, fmt.Errorf("stream: empty batch for %q", d.name)
	}
	if err := d.validateBatch(exams, patients, records); err != nil {
		return DatasetStatus{}, err
	}

	// Durability first: the batch is recorded (and WAL-acked) before
	// any in-memory state changes, so a persist failure leaves the
	// dataset exactly as it was and the client retries the whole
	// batch.
	rev := d.revision + 1
	if err := d.mgr.kdb.AppendLiveBatch(kdb.LiveBatch{
		Dataset: d.name, Revision: rev,
		Exams: exams, Patients: patients, Records: records,
	}); err != nil {
		return DatasetStatus{}, fmt.Errorf("%w: %v", ErrDurability, err)
	}

	// validateBatch proved every sub-apply below must succeed; a
	// failure past this point is a bug, not an input error.
	if err := d.applyLocked(exams, patients, records); err != nil {
		return DatasetStatus{}, fmt.Errorf("stream: applying validated batch %s@%d: %v", d.name, rev, err)
	}
	d.revision = rev

	evType := EventAppended
	if rev == 1 {
		evType = EventRegistered
	}
	d.emitLocked(Event{Type: evType, Revision: rev})

	d.reclusterLocked()

	desc := d.acc.Descriptor()
	if d.baseline == nil {
		// Registration: the baseline is the initial descriptor until
		// the first full analysis completes.
		d.baseline = &desc
		d.drift = 0
	} else {
		d.drift = 1 - kdb.DescriptorSimilarity(*d.baseline, desc)
		if d.drift >= d.mgr.cfg.DriftThreshold && !d.resweeping {
			d.scheduleResweepLocked()
		}
	}
	driftGauge.With(d.name).Set(d.drift)

	d.persistStateLocked()
	return d.statusLocked(), nil
}

// validateBatch checks a batch against the accumulated log without
// mutating anything: duplicate exam codes or patient IDs (within the
// batch or against history) and records referencing identities that
// neither history nor this batch registers are rejected. Passing
// implies the in-memory applies cannot fail.
func (d *Dataset) validateBatch(exams []Exam, patients []Patient, records []Record) error {
	newExams := make(map[string]bool, len(exams))
	for _, e := range exams {
		if e.Code == "" {
			return fmt.Errorf("stream: exam with empty code")
		}
		if _, dup := d.log.Exam(e.Code); dup || newExams[e.Code] {
			return fmt.Errorf("stream: duplicate exam code %q", e.Code)
		}
		newExams[e.Code] = true
	}
	newPatients := make(map[string]bool, len(patients))
	for _, p := range patients {
		if p.ID == "" {
			return fmt.Errorf("stream: patient with empty ID")
		}
		if _, dup := d.log.Patient(p.ID); dup || newPatients[p.ID] {
			return fmt.Errorf("stream: duplicate patient ID %q", p.ID)
		}
		newPatients[p.ID] = true
	}
	for _, r := range records {
		if _, ok := d.log.Patient(r.PatientID); !ok && !newPatients[r.PatientID] {
			return fmt.Errorf("stream: record references unknown patient %q", r.PatientID)
		}
		if _, ok := d.log.Exam(r.ExamCode); !ok && !newExams[r.ExamCode] {
			return fmt.Errorf("stream: record references unknown exam code %q", r.ExamCode)
		}
	}
	return nil
}

// applyLocked applies one (already validated or replayed) batch to the
// accumulated log, the live VSM and the descriptor accumulator.
func (d *Dataset) applyLocked(exams []Exam, patients []Patient, records []Record) error {
	for _, e := range exams {
		if err := d.log.AddExam(e); err != nil {
			return err
		}
	}
	for _, p := range patients {
		if err := d.log.AddPatient(p); err != nil {
			return err
		}
	}
	for _, r := range records {
		if err := d.log.AddRecord(r); err != nil {
			return err
		}
	}
	if err := d.live.Append(exams, patients, records); err != nil {
		return err
	}
	return d.acc.Add(exams, patients, records)
}

// reclusterLocked refreshes the online model with one mini-batch
// K-means pass over the live matrix, warm-started from the previous
// centroids (remapped by exam code when the feature ranking moved).
// The seed derives from the revision, so a recovered daemon catching
// up re-clusters identically to the uncrashed one.
func (d *Dataset) reclusterLocked() {
	m := d.live.Matrix()
	if m == nil || len(m.Rows) < 2 {
		d.modelRev = d.revision
		return
	}
	cfg := d.mgr.cfg
	k := cfg.OnlineK
	if k > len(m.Rows) {
		k = len(m.Rows)
	}
	opts := cluster.Options{
		K:         k,
		Algorithm: cluster.AlgorithmMiniBatch,
		BatchSize: cfg.OnlineBatchSize,
		MaxIter:   cfg.OnlineMaxIter,
		Seed:      d.mgr.svc.Engine().Config().Seed + int64(d.revision),
	}
	if len(d.centroids) == k {
		if seeds := core.RemapCentroids(d.centroids, d.features, m.Features); seeds != nil {
			opts.InitialCentroids = seeds
		}
	}
	res, err := cluster.KMeans(m.Rows, opts)
	if err != nil {
		// Online model refresh is best-effort: the durable append
		// already succeeded, the model just stays at its previous
		// revision until the next append.
		return
	}
	d.centroids = res.Centroids
	d.features = append([]string(nil), m.Features...)
	d.modelRev = d.revision
	d.emitLocked(Event{Type: EventModelUpdated, Revision: d.revision})
}

// scheduleResweepLocked submits a full warm-started re-analysis of a
// snapshot of the accumulated log through the service job path, seeded
// from the live centroids. Submission failures (queue full, degraded)
// are soft: the drift persists, so the next append retries.
func (d *Dataset) scheduleResweepLocked() {
	snapshot := &dataset.Log{
		Name:     d.name,
		Exams:    append([]Exam(nil), d.log.Exams...),
		Patients: append([]Patient(nil), d.log.Patients...),
		Records:  append([]Record(nil), d.log.Records...),
	}
	opts := []service.Option{
		service.WithPriority(d.mgr.cfg.ResweepPriority),
		service.WithLabels(map[string]string{
			"stream":   "resweep",
			"dataset":  d.name,
			"revision": fmt.Sprintf("%d", d.revision),
		}),
	}
	if len(d.centroids) > 0 {
		opts = append(opts, service.WithSeedCentroids(
			append([][]float64(nil), d.centroids...),
			append([]string(nil), d.features...),
		))
	}
	j, err := d.mgr.svc.Submit(context.Background(), snapshot, opts...)
	if err != nil {
		return
	}
	d.resweeping = true
	d.resweepJob = j.ID()
	resweepsTotal.With("scheduled").Inc()
	d.emitLocked(Event{Type: EventResweepScheduled, Revision: d.revision, JobID: j.ID()})
	go d.watchResweep(j)
}

// watchResweep waits for a drift-triggered job and folds its outcome
// back into the live state: the baseline resets to the report's
// descriptor (so drift re-measures movement since this analysis), the
// last-analysis pointer updates, and the control record persists.
func (d *Dataset) watchResweep(j *service.Job) {
	rep, err := j.Wait(context.Background())
	d.mu.Lock()
	defer d.mu.Unlock()
	d.resweeping = false
	d.resweepJob = ""
	ev := Event{Type: EventResweepComplete, Revision: d.revision, JobID: j.ID()}
	if err != nil {
		ev.Err = err.Error()
		resweepsTotal.With("failed").Inc()
		d.emitLocked(ev)
		return
	}
	resweepsTotal.With("completed").Inc()
	d.baseline = &rep.Descriptor
	d.lastAnalysis = j.ID()
	desc := d.acc.Descriptor()
	d.drift = 1 - kdb.DescriptorSimilarity(*d.baseline, desc)
	driftGauge.With(d.name).Set(d.drift)
	ev.Drift = d.drift
	d.persistStateLocked()
	d.emitLocked(ev)
}

// persistStateLocked upserts the control record. Failure is soft: the
// batches in live_appends are the durability source; a stale control
// record only costs a catch-up re-clustering at recovery.
func (d *Dataset) persistStateLocked() {
	_ = d.mgr.kdb.StoreLiveDataset(kdb.LiveDatasetState{
		Dataset:       d.name,
		Revision:      d.revision,
		ModelRevision: d.modelRev,
		Centroids:     d.centroids,
		Features:      d.features,
		Baseline:      d.baseline,
		Drift:         d.drift,
		LastAnalysis:  d.lastAnalysis,
	})
}

// Subscribe returns an independent event stream plus its cancel
// function: bounded history replays first (newest eventHistory
// events), live events follow in order. Unlike a Job's stream, a live
// dataset never terminates — the channel closes only when cancel is
// called. Delivery is best-effort: a stalled consumer loses events
// rather than stalling appends.
func (d *Dataset) Subscribe() (<-chan Event, func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ch := make(chan Event, len(d.events)+eventBuffer)
	for _, ev := range d.events {
		ch <- ev // fits: sized for the replay
	}
	d.subs = append(d.subs, ch)
	cancel := func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		for i, sub := range d.subs {
			if sub == ch {
				d.subs = append(d.subs[:i], d.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, cancel
}

// Events returns a snapshot of the bounded event history.
func (d *Dataset) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Event(nil), d.events...)
}

func (d *Dataset) emitLocked(ev Event) {
	ev.Dataset = d.name
	ev.Time = time.Now()
	if ev.Drift == 0 {
		ev.Drift = d.drift
	}
	d.events = append(d.events, ev)
	if len(d.events) > eventHistory {
		d.events = append(d.events[:0], d.events[len(d.events)-eventHistory:]...)
	}
	for _, sub := range d.subs {
		select {
		case sub <- ev:
		default:
		}
	}
}
