package stream

import (
	"context"
	"reflect"
	"testing"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/kdb"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/service"
	"adahealth/internal/stats"
	"adahealth/internal/synth"
	"adahealth/internal/vsm"
)

// fastConfig is the quick analysis configuration the service tests use,
// optionally durable.
func fastConfig(seed int64, dir string) core.Config {
	return core.Config{
		KDBDir:  dir,
		Seed:    seed,
		Partial: partial.Config{Ks: []int{4}},
		Sweep:   optimize.SweepConfig{Ks: []int{3, 4, 5}, CVFolds: 4},
	}
}

func testService(t *testing.T, cfg core.Config) *service.Service {
	t.Helper()
	svc, err := service.New(service.Config{Engine: cfg, Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	return svc
}

func genLog(t *testing.T, seed int64, patients, records int) *dataset.Log {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.Seed = seed
	cfg.NumPatients = patients
	cfg.TargetRecords = records
	log, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// splitLog partitions a log into an initial batch (all exams, the first
// half of the patients and their records) plus per-slice append batches
// over the remaining patients. Records stay with their patient, so
// every batch is valid against the accumulated state.
func splitLog(full *dataset.Log, parts int) (first struct {
	exams    []Exam
	patients []Patient
	records  []Record
}, rest []struct {
	patients []Patient
	records  []Record
}) {
	half := len(full.Patients) / 2
	member := map[string]int{} // patient -> batch index; 0 = first
	first.exams = full.Exams
	first.patients = full.Patients[:half]
	for _, p := range first.patients {
		member[p.ID] = 0
	}
	rest = make([]struct {
		patients []Patient
		records  []Record
	}, parts)
	for i, p := range full.Patients[half:] {
		b := i * parts / (len(full.Patients) - half)
		rest[b].patients = append(rest[b].patients, p)
		member[p.ID] = b + 1
	}
	for _, r := range full.Records {
		if b := member[r.PatientID]; b == 0 {
			first.records = append(first.records, r)
		} else {
			rest[b-1].records = append(rest[b-1].records, r)
		}
	}
	return first, rest
}

// waitStatus polls a dataset until cond holds.
func waitStatus(t *testing.T, d *Dataset, what string, cond func(DatasetStatus) bool) DatasetStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := d.Status()
		if cond(st) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last status %+v", what, d.Status())
	return DatasetStatus{}
}

func TestRegisterAndValidation(t *testing.T) {
	svc := testService(t, fastConfig(1, ""))
	mgr, err := NewManager(Config{Service: svc})
	if err != nil {
		t.Fatal(err)
	}

	log := genLog(t, 1, 40, 400)
	st, err := mgr.Register("live-reg", log.Exams, log.Patients, log.Records)
	if err != nil {
		t.Fatal(err)
	}
	if st.Revision != 1 || st.NumPatients != len(log.Patients) || st.NumRecords != len(log.Records) {
		t.Fatalf("registration status = %+v", st)
	}
	if st.Drift != 0 {
		t.Fatalf("registration drift = %v, want 0", st.Drift)
	}

	if _, err := mgr.Register("live-reg", nil, nil, nil); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, ok := mgr.Get("nope"); ok {
		t.Fatal("Get resolved an unregistered dataset")
	}

	d, _ := mgr.Get("live-reg")
	if _, err := d.Append(nil, nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := d.Append(nil, nil, []Record{{PatientID: "ghost", ExamCode: log.Exams[0].Code}}); err == nil {
		t.Fatal("record over unknown patient accepted")
	}
	if _, err := d.Append(nil, []Patient{{ID: log.Patients[0].ID}}, nil); err == nil {
		t.Fatal("duplicate patient accepted")
	}
	if got := d.Status().Revision; got != 1 {
		t.Fatalf("rejected batches moved the revision to %d", got)
	}

	// A valid append moves revision and counts.
	st2, err := d.Append(nil, []Patient{{ID: "PX-1", Age: 33}},
		[]Record{{PatientID: "PX-1", ExamCode: log.Exams[0].Code, Date: time.Now()}})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Revision != 2 || st2.NumPatients != len(log.Patients)+1 {
		t.Fatalf("append status = %+v", st2)
	}
}

// TestIncrementalMatchesRebuild is the satellite property at the
// subsystem level: at every append boundary the dataset's incrementally
// maintained VSM is bit-for-bit equivalent to vsm.Build on the
// accumulated log, and its descriptor equals stats.Characterize.
func TestIncrementalMatchesRebuild(t *testing.T) {
	svc := testService(t, fastConfig(3, ""))
	// Effectively-unreachable threshold: no resweeps disturb the run.
	mgr, err := NewManager(Config{Service: svc, DriftThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	full := genLog(t, 3, 80, 900)
	first, rest := splitLog(full, 5)

	if _, err := mgr.Register("live-prop", first.exams, first.patients, first.records); err != nil {
		t.Fatal(err)
	}
	d, _ := mgr.Get("live-prop")

	acc := dataset.NewLog("live-prop")
	apply := func(exams []Exam, patients []Patient, records []Record) {
		for _, e := range exams {
			if err := acc.AddExam(e); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range patients {
			if err := acc.AddPatient(p); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range records {
			if err := acc.AddRecord(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(boundary int) {
		t.Helper()
		want, err := vsm.Build(acc, svc.Engine().Config().VSM)
		if err != nil {
			t.Fatal(err)
		}
		d.mu.Lock()
		got := d.live.Matrix()
		if err := vsm.Equivalent(got, want); err != nil {
			d.mu.Unlock()
			t.Fatalf("VSM diverged at boundary %d: %v", boundary, err)
		}
		gotDesc := d.acc.Descriptor()
		d.mu.Unlock()
		if wantDesc := stats.Characterize(acc); !reflect.DeepEqual(gotDesc, wantDesc) {
			t.Fatalf("descriptor diverged at boundary %d:\nwant %+v\ngot  %+v", boundary, wantDesc, gotDesc)
		}
	}

	apply(first.exams, first.patients, first.records)
	check(0)
	for i, b := range rest {
		if len(b.patients) == 0 && len(b.records) == 0 {
			continue
		}
		if _, err := d.Append(nil, b.patients, b.records); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		apply(nil, b.patients, b.records)
		check(i + 1)
	}
}

// TestDriftTriggersResweep: with a hair-trigger threshold, the first
// real append schedules a full re-analysis, and its completion resets
// the drift baseline to the report's descriptor.
func TestDriftTriggersResweep(t *testing.T) {
	svc := testService(t, fastConfig(5, ""))
	mgr, err := NewManager(Config{Service: svc, DriftThreshold: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	full := genLog(t, 5, 60, 600)
	first, rest := splitLog(full, 1)

	if _, err := mgr.Register("live-drift", first.exams, first.patients, first.records); err != nil {
		t.Fatal(err)
	}
	d, _ := mgr.Get("live-drift")
	ch, cancel := d.Subscribe()
	defer cancel()

	st, err := d.Append(nil, rest[0].patients, rest[0].records)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Resweeping || st.ResweepJob == "" {
		t.Fatalf("append did not schedule a resweep: %+v", st)
	}

	final := waitStatus(t, d, "resweep completion", func(st DatasetStatus) bool {
		return !st.Resweeping && st.LastAnalysis != ""
	})
	if final.LastAnalysis != st.ResweepJob {
		t.Fatalf("last analysis %q, want the scheduled job %q", final.LastAnalysis, st.ResweepJob)
	}

	// Baseline moved to the report's descriptor, so the drift gauge
	// re-measures movement since this analysis.
	j, ok := svc.Job(final.LastAnalysis)
	if !ok {
		t.Fatalf("resweep job %q unknown to the service", final.LastAnalysis)
	}
	rep, ok := j.Report()
	if !ok {
		t.Fatal("completed resweep has no report")
	}
	d.mu.Lock()
	baseline := *d.baseline
	d.mu.Unlock()
	if !reflect.DeepEqual(baseline, rep.Descriptor) {
		t.Fatal("baseline did not reset to the resweep report's descriptor")
	}
	if got := 1 - kdb.DescriptorSimilarity(baseline, d.acc.Descriptor()); got != final.Drift {
		t.Fatalf("drift gauge %v, want recomputed %v", final.Drift, got)
	}

	// The event stream carried the full lifecycle in order.
	types := map[string]bool{}
	deadline := time.After(10 * time.Second)
	for len(types) < 5 {
		select {
		case ev := <-ch:
			types[ev.Type] = true
		case <-deadline:
			t.Fatalf("event stream incomplete after 10s: %v", types)
		}
	}
	for _, want := range []string{EventRegistered, EventAppended, EventModelUpdated, EventResweepScheduled, EventResweepComplete} {
		if !types[want] {
			t.Errorf("event stream missing %q", want)
		}
	}
}

// TestResweepReportMatchesEngine is the acceptance property: the
// drift-triggered full re-analysis produces a Report bit-for-bit
// identical (modulo execution telemetry, as the DAG/sequential
// equivalence test strips) to core.Engine analysis of the equivalent
// accumulated batch log with the same seed options.
func TestResweepReportMatchesEngine(t *testing.T) {
	const seed = 7
	svc := testService(t, fastConfig(seed, t.TempDir()))
	mgr, err := NewManager(Config{Service: svc, DriftThreshold: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	full := genLog(t, seed, 60, 600)
	first, rest := splitLog(full, 1)

	if _, err := mgr.Register("live-eq", first.exams, first.patients, first.records); err != nil {
		t.Fatal(err)
	}
	d, _ := mgr.Get("live-eq")
	st, err := d.Append(nil, rest[0].patients, rest[0].records)
	if err != nil {
		t.Fatal(err)
	}
	if st.ResweepJob == "" {
		t.Fatalf("append did not schedule a resweep: %+v", st)
	}

	// The seed centroids the resweep was submitted with: the online
	// model as of the triggering append (no further appends happen).
	d.mu.Lock()
	seeds := append([][]float64(nil), d.centroids...)
	feats := append([]string(nil), d.features...)
	d.mu.Unlock()

	waitStatus(t, d, "resweep completion", func(st DatasetStatus) bool {
		return !st.Resweeping && st.LastAnalysis != ""
	})
	j, ok := svc.Job(d.Status().LastAnalysis)
	if !ok {
		t.Fatal("resweep job unknown to the service")
	}
	got, ok := j.Report()
	if !ok {
		t.Fatal("completed resweep has no report")
	}

	// A fresh engine (same config and seed, its own empty K-DB) over
	// the equivalent accumulated batch log, with the same seed options.
	engine, err := core.New(fastConfig(seed, ""))
	if err != nil {
		t.Fatal(err)
	}
	batchLog := &dataset.Log{
		Name:     "live-eq",
		Exams:    append([]Exam(nil), first.exams...),
		Patients: append(append([]Patient(nil), first.patients...), rest[0].patients...),
		Records:  append(append([]Record(nil), first.records...), rest[0].records...),
	}
	want, err := engine.AnalyzeWith(context.Background(), batchLog, core.AnalyzeOptions{
		SeedCentroids: seeds,
		SeedFeatures:  feats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(comparableReport(got), comparableReport(want)) {
		t.Fatal("resweep report diverged from engine analysis of the accumulated log")
	}
}

// comparableReport strips execution telemetry and the closure-bearing
// recommendations, as the core DAG/sequential equivalence test does.
func comparableReport(rep *core.Report) core.Report {
	c := *rep
	c.Stages = nil
	c.StageConcurrency = 0
	c.Recommendations = nil
	return c
}

// TestManagerRecovery: a manager over a K-DB directory another manager
// wrote resumes every live dataset — including an append whose control
// record never landed (the crash-between-ack-and-update window), which
// must replay from the batch log and catch the model up.
func TestManagerRecovery(t *testing.T) {
	dir := t.TempDir()
	svcA := testService(t, fastConfig(11, dir))
	mgrA, err := NewManager(Config{Service: svcA, DriftThreshold: 10, OnlineK: 4})
	if err != nil {
		t.Fatal(err)
	}
	full := genLog(t, 11, 50, 500)
	first, rest := splitLog(full, 2)
	if _, err := mgrA.Register("live-rec", first.exams, first.patients, first.records); err != nil {
		t.Fatal(err)
	}
	dA, _ := mgrA.Get("live-rec")
	if _, err := dA.Append(nil, rest[0].patients, rest[0].records); err != nil {
		t.Fatal(err)
	}
	before := dA.Status()
	dA.mu.Lock()
	centroidsA := append([][]float64(nil), dA.centroids...)
	dA.mu.Unlock()

	// Simulate the crash window: revision 3 reaches the WAL (the client
	// was acked) but no control record or model update follows.
	if err := svcA.Engine().KDB().AppendLiveBatch(kdb.LiveBatch{
		Dataset:  "live-rec",
		Revision: before.Revision + 1,
		Patients: rest[1].patients,
		Records:  rest[1].records,
	}); err != nil {
		t.Fatal(err)
	}

	// A second service over the same directory (the WAL replays; the
	// first is abandoned as a killed process would be).
	svcB := testService(t, fastConfig(11, dir))
	mgrB, err := NewManager(Config{Service: svcB, DriftThreshold: 10, OnlineK: 4})
	if err != nil {
		t.Fatal(err)
	}
	dB, ok := mgrB.Get("live-rec")
	if !ok {
		t.Fatal("recovered manager lost the live dataset")
	}
	after := dB.Status()
	if after.Revision != before.Revision+1 {
		t.Fatalf("recovered revision %d, want %d (acked append lost)", after.Revision, before.Revision+1)
	}
	if after.ModelRevision != after.Revision {
		t.Fatalf("recovery did not catch the model up: %+v", after)
	}
	wantRecords := before.NumRecords + len(rest[1].records)
	if after.NumRecords != wantRecords {
		t.Fatalf("recovered %d records, want %d", after.NumRecords, wantRecords)
	}

	// Fully persisted state round-trips exactly: replay a third manager
	// after B persisted its catch-up, and the online model must match
	// B's (the recluster seed derives from the revision).
	dB.mu.Lock()
	centroidsB := append([][]float64(nil), dB.centroids...)
	dB.mu.Unlock()
	if len(centroidsB) == 0 || reflect.DeepEqual(centroidsA, centroidsB) {
		// (different revisions re-cluster with different seeds over
		// different data; equality would suggest the catch-up never ran)
		t.Fatalf("catch-up recluster suspect: %d centroids", len(centroidsB))
	}

	// The recovered dataset keeps accepting appends.
	if _, err := dB.Append(nil, []Patient{{ID: "PR-1", Age: 40}},
		[]Record{{PatientID: "PR-1", ExamCode: first.exams[0].Code, Date: time.Now()}}); err != nil {
		t.Fatal(err)
	}
	if got := dB.Status().Revision; got != after.Revision+1 {
		t.Fatalf("post-recovery append revision %d, want %d", got, after.Revision+1)
	}
}

// TestOnlineReclusterDeterministic: the same appends against two
// managers produce identical online models (the recluster seed is a
// pure function of engine seed and revision).
func TestOnlineReclusterDeterministic(t *testing.T) {
	build := func() [][]float64 {
		svc := testService(t, fastConfig(13, ""))
		mgr, err := NewManager(Config{Service: svc, DriftThreshold: 10, OnlineK: 4})
		if err != nil {
			t.Fatal(err)
		}
		full := genLog(t, 13, 40, 400)
		first, rest := splitLog(full, 2)
		if _, err := mgr.Register("live-det", first.exams, first.patients, first.records); err != nil {
			t.Fatal(err)
		}
		d, _ := mgr.Get("live-det")
		for _, b := range rest {
			if len(b.patients) == 0 && len(b.records) == 0 {
				continue
			}
			if _, err := d.Append(nil, b.patients, b.records); err != nil {
				t.Fatal(err)
			}
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		return append([][]float64(nil), d.centroids...)
	}
	if a, b := build(), build(); !reflect.DeepEqual(a, b) {
		t.Fatal("online model not deterministic across identical append schedules")
	}
}
