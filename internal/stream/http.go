package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"adahealth/internal/dataset"
	"adahealth/internal/service"
	"adahealth/internal/synth"
)

// RegisterRequest is the JSON body of PUT /v1/datasets/{id}: the
// dataset's initial contents, either inline or generated server-side
// (mirroring POST /v1/analyses). An absent body registers an empty
// dataset that exists purely to be appended to.
type RegisterRequest struct {
	// Log is the inline initial examination log.
	Log *dataset.Log `json:"log,omitempty"`
	// Synthetic generates the initial log server-side.
	Synthetic *synth.Config `json:"synthetic,omitempty"`
	// Seed overrides the synthetic generator's seed.
	Seed *int64 `json:"seed,omitempty"`
}

// AppendRequest is the JSON body of POST /v1/datasets/{id}/visits:
// one visit batch — new exam types, new patients, and examination
// records over known or batch-new identities.
type AppendRequest struct {
	Exams    []Exam    `json:"exams,omitempty"`
	Patients []Patient `json:"patients,omitempty"`
	Records  []Record  `json:"records,omitempty"`
}

// errorResponse is every non-2xx JSON body (same shape as the job
// API's).
type errorResponse struct {
	Error string `json:"error"`
}

// Mount registers the live-dataset endpoints on mux:
//
//	PUT  /v1/datasets/{id}        register a live dataset (201 + status; 409 if taken)
//	POST /v1/datasets/{id}/visits append a visit batch (202 + revision; 503 when not durable)
//	GET  /v1/datasets/{id}        live model status + drift gauge + last analysis id
//	GET  /v1/datasets/{id}/events live event stream (SSE; model-updated, resweep-scheduled, ...)
//
// The handlers coexist with the job API's GET /v1/datasets/{id}/similar
// (Go 1.22 pattern precedence routes the more specific path).
func Mount(mux *http.ServeMux, mgr *Manager) {
	h := &httpAPI{mgr: mgr}
	mux.HandleFunc("PUT /v1/datasets/{id}", h.register)
	mux.HandleFunc("POST /v1/datasets/{id}/visits", h.append)
	mux.HandleFunc("GET /v1/datasets/{id}", h.status)
	mux.HandleFunc("GET /v1/datasets/{id}/events", h.events)
}

// Handler composes the full daemon API: the job/knowledge endpoints of
// service.NewHandler plus the live-dataset endpoints of Mount, on one
// mux.
func Handler(svc *service.Service, mgr *Manager) http.Handler {
	return HandlerOptions(svc, mgr, service.HandlerOptions{})
}

// HandlerOptions is Handler with explicit service handler options
// (degraded read routing to a warm standby, etc.).
func HandlerOptions(svc *service.Service, mgr *Manager, opts service.HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandlerOptions(svc, opts))
	Mount(mux, mgr)
	return mux
}

type httpAPI struct {
	mgr *Manager
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (h *httpAPI) register(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("id")
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var (
		log *dataset.Log
		err error
	)
	switch {
	case req.Log != nil && req.Synthetic != nil:
		writeError(w, http.StatusBadRequest, errors.New("pass either log or synthetic, not both"))
		return
	case req.Log != nil:
		log = req.Log
	case req.Synthetic != nil:
		cfg := *req.Synthetic
		if req.Seed != nil {
			cfg.Seed = *req.Seed
		}
		log, err = synth.Generate(cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("generating synthetic log: %w", err))
			return
		}
	default:
		log = dataset.NewLog(name)
	}

	st, err := h.mgr.Register(name, log.Exams, log.Patients, log.Records)
	switch {
	case errors.Is(err, ErrExists):
		writeError(w, http.StatusConflict, err)
		return
	case errors.Is(err, ErrDurability):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (h *httpAPI) lookup(w http.ResponseWriter, r *http.Request) (*Dataset, bool) {
	d, ok := h.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknown, r.PathValue("id")))
		return nil, false
	}
	return d, true
}

func (h *httpAPI) append(w http.ResponseWriter, r *http.Request) {
	d, ok := h.lookup(w, r)
	if !ok {
		return
	}
	var req AppendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	st, err := d.Append(req.Exams, req.Patients, req.Records)
	switch {
	case errors.Is(err, ErrDurability):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// 202: the batch is durable and applied to the online model, but
	// the exact full analysis it may have triggered runs asynchronously.
	writeJSON(w, http.StatusAccepted, st)
}

func (h *httpAPI) status(w http.ResponseWriter, r *http.Request) {
	d, ok := h.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, d.Status())
}

// events streams the live dataset's event feed as Server-Sent Events,
// reusing the job API's SSE loop. Unlike a job stream it does not
// terminate on its own: it follows the dataset until the client
// disconnects.
func (h *httpAPI) events(w http.ResponseWriter, r *http.Request) {
	d, ok := h.lookup(w, r)
	if !ok {
		return
	}
	ch, cancel := d.Subscribe()
	defer cancel()
	service.ServeSSE(w, r, ch)
}
