// Package stream is the live-dataset subsystem: it accepts visit
// batches appended to a registered dataset and keeps an analysis of
// the accumulated log continuously available without re-running the
// full batch pipeline per append.
//
// # Online/approximate versus full/exact
//
// The subsystem deliberately runs two models of different contracts:
//
//   - The ONLINE model is approximate and cheap: every accepted append
//     updates the vector-space model and descriptor statistics
//     incrementally in place (vsm.Live, stats.Accumulator — both
//     property-tested equivalent to a from-scratch rebuild at every
//     append boundary) and re-clusters with mini-batch K-means
//     (cluster.AlgorithmMiniBatch), warm-started from the previous
//     centroids. It answers "what do the patient groups look like
//     right now" within one append's latency, but its clustering is a
//     stochastic approximation, not the paper's exact DOC/sweep
//     output.
//
//   - The FULL model is exact and expensive: when the descriptor
//     drifts past Config.DriftThreshold from the last fully analyzed
//     state, a complete warm-started analysis of the accumulated log
//     is scheduled through the ordinary service job path, seeded from
//     the live centroids (optimize.SweepConfig.SeedCentroids). Its
//     Report is bit-for-bit the one core.Engine would produce for the
//     same accumulated log and seeds — the streaming layer never
//     dilutes the batch pipeline's exactness, it only decides when
//     paying for it is worthwhile.
//
// Drift is measured on the same descriptor feature vector the K-DB's
// recall stage ranks dataset similarity with (kdb.DescriptorSimilarity,
// scale-free): drift = 1 − similarity(baseline, current), so 0 means
// statistically indistinguishable from the last analyzed state and the
// default threshold 0.15 means the average descriptor feature moved
// ~15% relative — the neighbourhood where recall would stop calling
// the two states "the same dataset".
//
// Every accepted batch is durably recorded in the K-DB's live_appends
// collection before the append is acknowledged (the WAL ack is the
// durability point), and the control record in live_datasets is
// updated after; a restarted daemon rebuilds every live dataset by
// replaying its batches in revision order, so acknowledged appends
// survive a crash even when the control record lagged behind.
package stream

import (
	"errors"
	"fmt"
	"sync"

	"adahealth/internal/kdb"
	"adahealth/internal/service"
	"adahealth/internal/stats"
	"adahealth/internal/vsm"
)

var (
	// ErrExists rejects registering a dataset name twice (HTTP 409).
	ErrExists = errors.New("stream: dataset already registered")
	// ErrUnknown reports an unregistered dataset (HTTP 404).
	ErrUnknown = errors.New("stream: unknown dataset")
	// ErrDurability marks an append the K-DB could not durably record:
	// nothing was applied, the client must retry (HTTP 503).
	ErrDurability = errors.New("stream: append not durable")
)

// Config configures a Manager.
type Config struct {
	// Service is the analysis service drift-triggered full re-analyses
	// are submitted to (required; its engine also supplies the K-DB
	// and the VSM options the live matrices maintain).
	Service *service.Service
	// DriftThreshold is the descriptor drift (1 − similarity on the
	// kdb.DescriptorSimilarity feature vector) at which a full
	// re-analysis is scheduled; <= 0 defaults to 0.15.
	DriftThreshold float64
	// OnlineK is the mini-batch model's cluster count (capped at the
	// current patient count); <= 0 defaults to 8.
	OnlineK int
	// OnlineBatchSize is the mini-batch sample size per iteration;
	// <= 0 uses the cluster package default.
	OnlineBatchSize int
	// OnlineMaxIter bounds mini-batch iterations per re-clustering;
	// <= 0 defaults to 50.
	OnlineMaxIter int
	// ResweepPriority is the service priority of drift-triggered jobs
	// (negative yields to interactive submissions).
	ResweepPriority int
}

func (c Config) withDefaults() Config {
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.15
	}
	if c.OnlineK <= 0 {
		c.OnlineK = 8
	}
	if c.OnlineMaxIter <= 0 {
		c.OnlineMaxIter = 50
	}
	return c
}

// Manager owns every live dataset of one daemon: registration, lookup,
// and crash recovery from the K-DB's live collections.
type Manager struct {
	svc *service.Service
	kdb *kdb.KDB
	cfg Config

	mu       sync.Mutex
	datasets map[string]*Dataset
}

// NewManager builds a manager over cfg.Service and resumes every live
// dataset persisted in the service's K-DB: each dataset's accepted
// batches replay in revision order (rebuilding log, live VSM and
// descriptor statistics), the online model and drift baseline restore
// from the control record, and a dataset whose model lagged behind its
// appends at crash time is re-clustered once to catch up.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Service == nil {
		return nil, errors.New("stream: Config.Service is required")
	}
	m := &Manager{
		svc:      cfg.Service,
		kdb:      cfg.Service.Engine().KDB(),
		cfg:      cfg.withDefaults(),
		datasets: make(map[string]*Dataset),
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	return m, nil
}

// recover replays persisted live datasets into memory.
func (m *Manager) recover() error {
	states, err := m.kdb.LiveDatasets()
	if err != nil {
		return fmt.Errorf("stream: reading live datasets: %w", err)
	}
	for _, st := range states {
		batches, err := m.kdb.LiveBatches(st.Dataset)
		if err != nil {
			return fmt.Errorf("stream: reading batches of %q: %w", st.Dataset, err)
		}
		d := m.newDataset(st.Dataset)
		for _, b := range batches {
			if err := d.applyLocked(b.Exams, b.Patients, b.Records); err != nil {
				return fmt.Errorf("stream: replaying %s@%d: %w", st.Dataset, b.Revision, err)
			}
			// Trust the batches, not the control record: the recovered
			// revision is whatever was durably appended.
			d.revision = b.Revision
		}
		d.baseline = st.Baseline
		d.drift = st.Drift
		d.lastAnalysis = st.LastAnalysis
		d.centroids = st.Centroids
		d.features = st.Features
		d.modelRev = st.ModelRevision
		if d.baseline == nil {
			desc := d.acc.Descriptor()
			d.baseline = &desc
		}
		if d.modelRev != d.revision {
			// The crash landed between an acknowledged append and its
			// model update: one catch-up re-clustering.
			d.reclusterLocked()
		}
		m.datasets[st.Dataset] = d
	}
	return nil
}

// newDataset builds an empty in-memory live dataset (not yet
// registered in the map or the K-DB).
func (m *Manager) newDataset(name string) *Dataset {
	return &Dataset{
		mgr:  m,
		name: name,
		log:  newEmptyLog(name),
		live: vsm.NewLive(m.vsmOptions()),
		acc:  stats.NewAccumulator(name),
	}
}

func (m *Manager) vsmOptions() vsm.Options {
	return m.svc.Engine().Config().VSM
}

// Get resolves a registered live dataset.
func (m *Manager) Get(name string) (*Dataset, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.datasets[name]
	return d, ok
}

// Datasets lists every registered live dataset's status.
func (m *Manager) Datasets() []DatasetStatus {
	m.mu.Lock()
	ds := make([]*Dataset, 0, len(m.datasets))
	for _, d := range m.datasets {
		ds = append(ds, d)
	}
	m.mu.Unlock()
	out := make([]DatasetStatus, 0, len(ds))
	for _, d := range ds {
		out = append(out, d.Status())
	}
	return out
}

// Register creates a live dataset named name seeded with the given
// initial log (which may be empty of records). The initial contents
// are durably recorded as the dataset's revision-1 batch before
// Register returns; re-registering a name fails with ErrExists.
func (m *Manager) Register(name string, exams []Exam, patients []Patient, records []Record) (DatasetStatus, error) {
	if name == "" {
		return DatasetStatus{}, errors.New("stream: empty dataset name")
	}
	m.mu.Lock()
	if _, dup := m.datasets[name]; dup {
		m.mu.Unlock()
		return DatasetStatus{}, fmt.Errorf("%w: %q", ErrExists, name)
	}
	// Reserve the name while the initial batch persists; concurrent
	// registrations of the same name must not interleave.
	d := m.newDataset(name)
	m.datasets[name] = d
	m.mu.Unlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	st, err := d.appendLocked(exams, patients, records)
	if err != nil {
		m.mu.Lock()
		delete(m.datasets, name)
		m.mu.Unlock()
		return DatasetStatus{}, err
	}
	return st, nil
}
