package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func doReq(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decodeStatus(t *testing.T, body []byte) DatasetStatus {
	t.Helper()
	var st DatasetStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return st
}

// collectSSE follows the dataset event stream until every wanted type
// has been seen (the stream never closes on its own; the body is closed
// from a watchdog if the events never arrive).
func collectSSE(t *testing.T, url string, want ...string) []Event {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	watchdog := time.AfterFunc(15*time.Second, func() { resp.Body.Close() })
	defer watchdog.Stop()
	defer resp.Body.Close()

	need := map[string]bool{}
	for _, w := range want {
		need[w] = true
	}
	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	for len(need) > 0 && scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
		delete(need, ev.Type)
	}
	if len(need) > 0 {
		t.Fatalf("event stream never delivered %v; got %d events", need, len(events))
	}
	return events
}

// TestHTTPLifecycle drives the whole streaming surface over real HTTP:
// register → append → model-updated SSE → drift-triggered resweep →
// report served by the job API → daemon restart resuming from the K-DB
// with no lost appends.
func TestHTTPLifecycle(t *testing.T) {
	dir := t.TempDir()
	svc := testService(t, fastConfig(17, dir))
	mgr, err := NewManager(Config{Service: svc, DriftThreshold: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(svc, mgr))
	defer srv.Close()

	full := genLog(t, 17, 60, 600)
	first, rest := splitLog(full, 1)

	// Register with the inline first half.
	initial := *full
	initial.Patients = first.patients
	initial.Records = first.records
	resp, body := doReq(t, http.MethodPut, srv.URL+"/v1/datasets/live-http", RegisterRequest{Log: &initial})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register = %d: %s", resp.StatusCode, body)
	}
	if st := decodeStatus(t, body); st.Revision != 1 || st.NumPatients != len(first.patients) {
		t.Fatalf("registration status = %+v", st)
	}

	// Re-registering the name conflicts.
	if resp, _ := doReq(t, http.MethodPut, srv.URL+"/v1/datasets/live-http", RegisterRequest{}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register = %d, want 409", resp.StatusCode)
	}
	// Unknown datasets 404.
	if resp, _ := doReq(t, http.MethodGet, srv.URL+"/v1/datasets/ghost", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset = %d, want 404", resp.StatusCode)
	}

	// Append the second half: 202, revision 2, and (with the
	// hair-trigger threshold) a scheduled resweep.
	resp, body = doReq(t, http.MethodPost, srv.URL+"/v1/datasets/live-http/visits", AppendRequest{
		Patients: rest[0].patients,
		Records:  rest[0].records,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append = %d: %s", resp.StatusCode, body)
	}
	appended := decodeStatus(t, body)
	if appended.Revision != 2 {
		t.Fatalf("append status = %+v", appended)
	}
	if appended.ResweepJob == "" {
		t.Fatalf("append did not schedule a resweep: %+v", appended)
	}

	// Malformed appends are 400s, not accepted.
	if resp, _ := doReq(t, http.MethodPost, srv.URL+"/v1/datasets/live-http/visits", AppendRequest{
		Records: []Record{{PatientID: "ghost", ExamCode: "nope"}},
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid append = %d, want 400", resp.StatusCode)
	}

	// The SSE feed replays the full lifecycle, resweep completion
	// included.
	events := collectSSE(t, srv.URL+"/v1/datasets/live-http/events",
		EventRegistered, EventAppended, EventModelUpdated, EventResweepScheduled, EventResweepComplete)
	for _, ev := range events {
		if ev.Dataset != "live-http" {
			t.Fatalf("event for %q on live-http's stream", ev.Dataset)
		}
	}

	// Status converges to the completed analysis, whose report the job
	// API serves.
	var final DatasetStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = doReq(t, http.MethodGet, srv.URL+"/v1/datasets/live-http", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, body)
		}
		final = decodeStatus(t, body)
		if !final.Resweeping && final.LastAnalysis != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resweep never completed: %+v", final)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resp, body := doReq(t, http.MethodGet, srv.URL+"/v1/analyses/"+final.LastAnalysis+"/report", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("resweep report = %d: %s", resp.StatusCode, body)
	}

	// Go 1.22 precedence: the job API's more specific /similar route
	// still wins over the streaming status route.
	if _, body := doReq(t, http.MethodGet, srv.URL+"/v1/datasets/live-http/similar", nil); strings.Contains(string(body), "stream:") {
		t.Fatalf("/similar was routed to the streaming API: %s", body)
	}

	// Restart: a new service + manager over the same K-DB directory
	// resumes the stream at the acknowledged revision and keeps
	// accepting appends.
	srv.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	svc2 := testService(t, fastConfig(17, dir))
	mgr2, err := NewManager(Config{Service: svc2, DriftThreshold: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(Handler(svc2, mgr2))
	defer srv2.Close()

	resp, body = doReq(t, http.MethodGet, srv2.URL+"/v1/datasets/live-http", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart status = %d: %s", resp.StatusCode, body)
	}
	resumed := decodeStatus(t, body)
	if resumed.Revision != final.Revision || resumed.NumRecords != final.NumRecords {
		t.Fatalf("restart lost appends: %+v, want revision %d with %d records",
			resumed, final.Revision, final.NumRecords)
	}
	if resumed.LastAnalysis != final.LastAnalysis {
		t.Fatalf("restart lost the analysis pointer: %q, want %q", resumed.LastAnalysis, final.LastAnalysis)
	}

	resp, body = doReq(t, http.MethodPost, srv2.URL+"/v1/datasets/live-http/visits", AppendRequest{
		Patients: []Patient{{ID: "POST-RESTART", Age: 50}},
		Records:  []Record{{PatientID: "POST-RESTART", ExamCode: first.exams[0].Code, Date: time.Now()}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-restart append = %d: %s", resp.StatusCode, body)
	}
	if st := decodeStatus(t, body); st.Revision != resumed.Revision+1 {
		t.Fatalf("post-restart append revision %d, want %d", st.Revision, resumed.Revision+1)
	}
}
