package stream

import "adahealth/internal/obs"

// Streaming-ingestion instruments on the default registry (see the
// metric-name reference in package obs). The drift gauge is labeled by
// dataset name — live datasets are registered deliberately, so the
// cardinality is operator-bounded.
var (
	appendSeconds = obs.Default().Histogram("stream_append_seconds",
		"Append acceptance through online model update, in seconds (durable ack, in-place VSM apply, re-cluster, drift check).", nil)
	appendsTotal = obs.Default().CounterVec("stream_appends_total",
		"Live visit-batch appends by outcome.", "outcome")
	driftGauge = obs.Default().GaugeVec("stream_drift",
		"Drift gauge per live dataset: 1 - descriptor similarity to the last fully analyzed state.", "dataset")
	resweepsTotal = obs.Default().CounterVec("stream_resweeps_total",
		"Drift-triggered full re-analyses by lifecycle event.", "event")
)
