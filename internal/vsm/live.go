package vsm

import (
	"fmt"
	"sort"

	"adahealth/internal/dataset"
	"adahealth/internal/vec"
)

// Live maintains a VSM matrix under append-only growth of the
// underlying examination log: new exam types, new patients and new
// records arrive in batches and the feature-ordered Matrix view —
// including its weighted rows, cached norms and CSR view — is updated
// in place instead of re-running Build over the whole log.
//
// The maintained state is kept in canonical registration order (codes
// and patients in the order they first appeared), with the Matrix as a
// frequency-ordered projection of it. After every Append the view is
// bit-for-bit identical to Build on the accumulated log (property:
// Equivalent(live.Matrix(), rebuilt) == nil at every append boundary):
//
//   - When the global frequency ranking is unchanged, no new exam
//     types arrived and weighting is local (Count/Binary/LogCount),
//     only rows touched by the batch are re-weighed; brand-new patient
//     rows are appended to the cached CSR view in place
//     (vec.CSRMatrix.AppendDenseRows), leaving untouched rows' floats
//     alone entirely.
//   - A ranking change, a new exam type, or TFIDF weighting (whose idf
//     terms are global in N and df) re-derives the ordered view from
//     the canonical counts — still O(patients × features), never a
//     rescan of the accumulated records.
//
// Live is not safe for concurrent use; the owner serializes Append
// against reads of Matrix() (stream.Dataset holds its own lock).
type Live struct {
	opts Options

	codes   []string // canonical: registration order
	codeIdx map[string]int
	freq    []int // records per code, canonical order
	total   int   // total records

	ids   []string // canonical: registration order
	idIdx map[string]int
	raw   [][]float64 // counts per patient, canonical code order

	mat *Matrix // frequency-ordered view; nil until ≥1 patient and code
}

// NewLive returns an empty live matrix with the given transform
// options. Matrix() is nil until the first Append registers at least
// one patient and one exam type.
func NewLive(opts Options) *Live {
	return &Live{
		opts:    opts,
		codeIdx: make(map[string]int),
		idIdx:   make(map[string]int),
	}
}

// NumPatients reports the number of accumulated patients.
func (lv *Live) NumPatients() int { return len(lv.ids) }

// NumFeatures reports the number of accumulated exam types.
func (lv *Live) NumFeatures() int { return len(lv.codes) }

// NumRecords reports the number of accumulated examination records.
func (lv *Live) NumRecords() int { return lv.total }

// Matrix returns the maintained frequency-ordered view. The pointer is
// stable across fast-path appends and replaced wholesale on rebuilds;
// callers must not retain it across Append calls if they need a
// consistent snapshot.
func (lv *Live) Matrix() *Matrix { return lv.mat }

// Append applies one validated batch: newly registered exam types and
// patients plus records referencing registered ids (old or new). The
// whole batch is validated before any state mutates, so a failed
// Append leaves the view untouched — mirroring dataset.Log, which the
// stream layer updates with the same batch first.
func (lv *Live) Append(exams []dataset.ExamType, patients []dataset.Patient, records []dataset.Record) error {
	// Validate against current state plus the batch itself.
	newCodes := make(map[string]bool, len(exams))
	for _, e := range exams {
		if _, dup := lv.codeIdx[e.Code]; dup || newCodes[e.Code] {
			return fmt.Errorf("vsm: live append: duplicate exam type %q", e.Code)
		}
		newCodes[e.Code] = true
	}
	newIDs := make(map[string]bool, len(patients))
	for _, p := range patients {
		if _, dup := lv.idIdx[p.ID]; dup || newIDs[p.ID] {
			return fmt.Errorf("vsm: live append: duplicate patient %q", p.ID)
		}
		newIDs[p.ID] = true
	}
	for _, r := range records {
		if _, ok := lv.idIdx[r.PatientID]; !ok && !newIDs[r.PatientID] {
			return fmt.Errorf("vsm: live append: record references unknown patient %q", r.PatientID)
		}
		if _, ok := lv.codeIdx[r.ExamCode]; !ok && !newCodes[r.ExamCode] {
			return fmt.Errorf("vsm: live append: record references unknown exam %q", r.ExamCode)
		}
	}

	// Grow canonical state: new code columns on every existing row,
	// then new zero rows, then the count increments.
	if len(exams) > 0 {
		for i := range lv.raw {
			lv.raw[i] = append(lv.raw[i], make([]float64, len(exams))...)
		}
		for _, e := range exams {
			lv.codeIdx[e.Code] = len(lv.codes)
			lv.codes = append(lv.codes, e.Code)
			lv.freq = append(lv.freq, 0)
		}
	}
	startPatients := len(lv.ids)
	for _, p := range patients {
		lv.idIdx[p.ID] = len(lv.ids)
		lv.ids = append(lv.ids, p.ID)
		lv.raw = append(lv.raw, make([]float64, len(lv.codes)))
	}
	dirty := make(map[int]bool)
	for _, r := range records {
		p := lv.idIdx[r.PatientID]
		c := lv.codeIdx[r.ExamCode]
		lv.raw[p][c]++
		lv.freq[c]++
		lv.total++
		if p < startPatients {
			dirty[p] = true
		}
	}

	lv.sync(startPatients, dirty, len(exams) > 0)
	return nil
}

// sync reconciles the frequency-ordered Matrix view with the canonical
// state after one applied batch.
func (lv *Live) sync(startPatients int, dirty map[int]bool, codesAdded bool) {
	if len(lv.ids) == 0 || len(lv.codes) == 0 {
		return
	}
	order := lv.featureOrder()
	features := make([]string, len(order))
	for k, c := range order {
		features[k] = lv.codes[c]
	}

	m := lv.mat
	fast := m != nil && !codesAdded && lv.opts.Weighting != TFIDF &&
		stringsEqual(m.Features, features)
	if !fast {
		lv.rebuild(order, features)
		return
	}

	// Fast path: the column layout is unchanged, so only rows the
	// batch touched need new floats. The per-feature frequencies
	// still moved (same ranking, larger counts).
	for k, c := range order {
		m.featureFreq[k] = lv.freq[c]
	}
	m.totalRecords = lv.total

	d := len(features)
	var appended [][]float64
	for i := startPatients; i < len(lv.ids); i++ {
		rr := make([]float64, d)
		for k, c := range order {
			rr[k] = lv.raw[i][c]
		}
		out := make([]float64, d)
		weighRowInto(out, rr, m.Opts, nil)
		m.raw = append(m.raw, rr)
		m.Rows = append(m.Rows, out)
		m.PatientIDs = append(m.PatientIDs, lv.ids[i])
		appended = append(appended, out)
	}
	for i := range dirty {
		for k, c := range order {
			m.raw[i][k] = lv.raw[i][c]
		}
		weighRowInto(m.Rows[i], m.raw[i], m.Opts, nil)
	}
	if len(dirty) == 0 {
		// Pure growth: extend the cached CSR view and its norms in
		// place; existing rows' compressed storage is untouched.
		m.Sparse().AppendDenseRows(appended)
	} else {
		// An existing row's nonzero pattern may have changed; CSR
		// storage is not splice-able, so recompress (O(n·d), no
		// record rescan).
		m.sparse = vec.NewCSRFromDense(m.Rows)
	}
}

// rebuild re-derives the ordered view from the canonical counts.
func (lv *Live) rebuild(order []int, features []string) {
	n, d := len(lv.ids), len(features)
	raw := make([][]float64, n)
	backing := make([]float64, n*d)
	for i := range raw {
		raw[i], backing = backing[:d:d], backing[d:]
		for k, c := range order {
			raw[i][k] = lv.raw[i][c]
		}
	}
	fIdx := make(map[string]int, d)
	for k, f := range features {
		fIdx[f] = k
	}
	freq := make([]int, d)
	for k, c := range order {
		freq[k] = lv.freq[c]
	}
	ids := make([]string, n)
	copy(ids, lv.ids)

	m := &Matrix{
		PatientIDs:   ids,
		Features:     features,
		Opts:         lv.opts,
		raw:          raw,
		featureFreq:  freq,
		totalRecords: lv.total,
		featureIndex: fIdx,
	}
	m.Rows = weigh(raw, lv.opts)
	// Fire the once up front so Sparse() keeps returning the
	// maintained pointer after in-place updates.
	m.sparseOnce.Do(func() { m.sparse = vec.NewCSRFromDense(m.Rows) })
	lv.mat = m
}

// featureOrder returns canonical code indices sorted by global record
// frequency descending, code ascending — the exact ordering contract
// of dataset.Log.ExamsByFrequency that Build consumes.
func (lv *Live) featureOrder() []int {
	order := make([]int, len(lv.codes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		if lv.freq[ca] != lv.freq[cb] {
			return lv.freq[ca] > lv.freq[cb]
		}
		return lv.codes[ca] < lv.codes[cb]
	})
	return order
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Equivalent reports whether two matrices are bit-for-bit identical in
// every observable respect: ids, features, options, weighted rows, raw
// counts, frequency metadata, and the CSR view including its cached
// norms. It forces both CSR views. A nil return means equal; otherwise
// the error names the first divergence. The live-maintenance property
// tests use it to compare an incrementally grown view against Build on
// the accumulated log at every append boundary.
func Equivalent(a, b *Matrix) error {
	if !stringsEqual(a.PatientIDs, b.PatientIDs) {
		return fmt.Errorf("vsm: patient ids differ")
	}
	if !stringsEqual(a.Features, b.Features) {
		return fmt.Errorf("vsm: features differ")
	}
	if a.Opts != b.Opts {
		return fmt.Errorf("vsm: options differ: %+v vs %+v", a.Opts, b.Opts)
	}
	if a.totalRecords != b.totalRecords {
		return fmt.Errorf("vsm: total records differ: %d vs %d", a.totalRecords, b.totalRecords)
	}
	for j := range a.featureFreq {
		if a.featureFreq[j] != b.featureFreq[j] {
			return fmt.Errorf("vsm: feature %q frequency differs: %d vs %d",
				a.Features[j], a.featureFreq[j], b.featureFreq[j])
		}
	}
	if err := rowsEqual("raw", a.raw, b.raw); err != nil {
		return err
	}
	if err := rowsEqual("weighted", a.Rows, b.Rows); err != nil {
		return err
	}
	sa, sb := a.Sparse(), b.Sparse()
	if sa.Cols != sb.Cols || len(sa.RowPtr) != len(sb.RowPtr) ||
		len(sa.ColIdx) != len(sb.ColIdx) || len(sa.Values) != len(sb.Values) {
		return fmt.Errorf("vsm: CSR shapes differ")
	}
	for i := range sa.RowPtr {
		if sa.RowPtr[i] != sb.RowPtr[i] {
			return fmt.Errorf("vsm: CSR row pointer %d differs: %d vs %d", i, sa.RowPtr[i], sb.RowPtr[i])
		}
	}
	for p := range sa.ColIdx {
		if sa.ColIdx[p] != sb.ColIdx[p] {
			return fmt.Errorf("vsm: CSR column index %d differs", p)
		}
		if sa.Values[p] != sb.Values[p] {
			return fmt.Errorf("vsm: CSR value %d differs: %v vs %v", p, sa.Values[p], sb.Values[p])
		}
	}
	for i := 0; i < sa.NumRows(); i++ {
		if sa.RowNorm2(i) != sb.RowNorm2(i) {
			return fmt.Errorf("vsm: CSR row %d norm differs: %v vs %v", i, sa.RowNorm2(i), sb.RowNorm2(i))
		}
	}
	return nil
}

func rowsEqual(what string, a, b [][]float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("vsm: %s row counts differ: %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("vsm: %s row %d widths differ", what, i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return fmt.Errorf("vsm: %s row %d col %d differs: %v vs %v",
					what, i, j, a[i][j], b[i][j])
			}
		}
	}
	return nil
}
