package vsm

import (
	"math"
	"testing"
	"testing/quick"

	"adahealth/internal/dataset"
)

// buildFromCounts constructs a log whose VSM count matrix equals the
// given small count table (patients × 4 exam types).
func buildFromCounts(counts [][4]uint8) (*dataset.Log, bool) {
	if len(counts) == 0 {
		return nil, false
	}
	l := dataset.NewLog("prop")
	codes := []string{"A", "B", "C", "D"}
	for _, c := range codes {
		if err := l.AddExam(dataset.ExamType{Code: c}); err != nil {
			return nil, false
		}
	}
	anyRecord := false
	for i, row := range counts {
		id := "P" + string(rune('A'+i%26)) + string(rune('A'+(i/26)%26))
		if _, exists := l.Patient(id); exists {
			continue
		}
		if err := l.AddPatient(dataset.Patient{ID: id}); err != nil {
			return nil, false
		}
		for j, n := range row {
			for r := 0; r < int(n)%5; r++ { // cap repeats to keep it fast
				if err := l.AddRecord(dataset.Record{PatientID: id, ExamCode: codes[j]}); err != nil {
					return nil, false
				}
				anyRecord = true
			}
		}
	}
	return l, anyRecord
}

// Property: every non-zero row of an L2-normalized matrix has unit
// norm, for arbitrary count tables.
func TestPropertyL2RowsUnitNorm(t *testing.T) {
	f := func(counts [][4]uint8) bool {
		l, ok := buildFromCounts(counts)
		if !ok {
			return true // vacuous: no data
		}
		m, err := Build(l, Options{Weighting: Count, Normalization: L2})
		if err != nil {
			return true
		}
		for _, row := range m.Rows {
			norm := 0.0
			for _, v := range row {
				norm += v * v
			}
			if norm > 0 && math.Abs(math.Sqrt(norm)-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: coverage is monotone non-decreasing in the feature-prefix
// length and reaches exactly 1 at the full feature set.
func TestPropertyCoverageMonotone(t *testing.T) {
	f := func(counts [][4]uint8) bool {
		l, ok := buildFromCounts(counts)
		if !ok {
			return true
		}
		m, err := Build(l, Options{})
		if err != nil {
			return true
		}
		prev := 0.0
		for n := 1; n <= m.NumFeatures(); n++ {
			c := m.CoverageAt(n)
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return math.Abs(m.CoverageAt(m.NumFeatures())-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: projection never changes the number of patients and the
// projected raw counts are a prefix of the original ones.
func TestPropertyProjectPrefix(t *testing.T) {
	f := func(counts [][4]uint8, nRaw uint8) bool {
		l, ok := buildFromCounts(counts)
		if !ok {
			return true
		}
		m, err := Build(l, Options{Weighting: Count})
		if err != nil {
			return true
		}
		n := 1 + int(nRaw)%m.NumFeatures()
		p := m.Project(n)
		if p.NumRows() != m.NumRows() || p.NumFeatures() != n {
			return false
		}
		for i, row := range p.RawCounts() {
			for j, v := range row {
				if v != m.RawCounts()[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
