package vsm

import (
	"fmt"
	"math/rand"
	"testing"

	"adahealth/internal/dataset"
	"adahealth/internal/synth"
)

// appendBatch is one increment of an examination log: new exam types,
// new patients, and records referencing registered ids.
type appendBatch struct {
	exams    []dataset.ExamType
	patients []dataset.Patient
	records  []dataset.Record
}

// splitLog carves a finished log into a randomized append schedule:
// record runs of random length, with exam types and patients
// registered at first reference, a few patients registered early with
// no records yet (exercising zero rows), and a trailing batch that
// registers anything never referenced (exercising zero-count columns).
func splitLog(l *dataset.Log, rng *rand.Rand) []appendBatch {
	examOf := make(map[string]dataset.ExamType, len(l.Exams))
	for _, e := range l.Exams {
		examOf[e.Code] = e
	}
	patientOf := make(map[string]dataset.Patient, len(l.Patients))
	for _, p := range l.Patients {
		patientOf[p.ID] = p
	}
	regE := make(map[string]bool)
	regP := make(map[string]bool)

	var out []appendBatch
	n := len(l.Records)
	nextEarly := 0 // cursor into l.Patients for early registrations
	for i := 0; i < n; {
		j := i + 1 + rng.Intn(1+n/4)
		if j > n {
			j = n
		}
		var b appendBatch
		for rng.Intn(3) == 0 && nextEarly < len(l.Patients) {
			p := l.Patients[nextEarly]
			nextEarly++
			if !regP[p.ID] {
				regP[p.ID] = true
				b.patients = append(b.patients, p)
			}
		}
		for _, r := range l.Records[i:j] {
			if !regE[r.ExamCode] {
				regE[r.ExamCode] = true
				b.exams = append(b.exams, examOf[r.ExamCode])
			}
			if !regP[r.PatientID] {
				regP[r.PatientID] = true
				b.patients = append(b.patients, patientOf[r.PatientID])
			}
		}
		b.records = append(b.records, l.Records[i:j]...)
		out = append(out, b)
		i = j
	}
	var tail appendBatch
	for _, e := range l.Exams {
		if !regE[e.Code] {
			tail.exams = append(tail.exams, e)
		}
	}
	for _, p := range l.Patients {
		if !regP[p.ID] {
			tail.patients = append(tail.patients, p)
		}
	}
	if len(tail.exams) > 0 || len(tail.patients) > 0 {
		out = append(out, tail)
	}
	return out
}

func smallLog(t *testing.T, seed int64) *dataset.Log {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.Seed = seed
	cfg.NumPatients = 70
	cfg.TargetRecords = 700
	cfg.NumExamTypes = 16
	l, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestLiveEquivalentToRebuild is the maintenance property: across
// randomized append schedules, every transform option, and every
// append boundary, the incrementally maintained Matrix — rows, raw
// counts, frequency metadata, and the in-place-updated CSR view with
// its cached norms — is bit-for-bit identical to Build on the
// equivalent accumulated log.
func TestLiveEquivalentToRebuild(t *testing.T) {
	weightings := []Weighting{Count, Binary, LogCount, TFIDF}
	norms := []Normalization{NoNorm, L2, L1}
	for _, seed := range []int64{1, 7, 42} {
		full := smallLog(t, seed)
		batches := splitLog(full, rand.New(rand.NewSource(seed)))
		for _, w := range weightings {
			for _, nm := range norms {
				opts := Options{Weighting: w, Normalization: nm}
				t.Run(fmt.Sprintf("seed%d/%s-%s", seed, w, nm), func(t *testing.T) {
					acc := dataset.NewLog(full.Name)
					live := NewLive(opts)
					for bi, b := range batches {
						for _, e := range b.exams {
							if err := acc.AddExam(e); err != nil {
								t.Fatal(err)
							}
						}
						for _, p := range b.patients {
							if err := acc.AddPatient(p); err != nil {
								t.Fatal(err)
							}
						}
						for _, r := range b.records {
							if err := acc.AddRecord(r); err != nil {
								t.Fatal(err)
							}
						}
						if err := live.Append(b.exams, b.patients, b.records); err != nil {
							t.Fatalf("batch %d: %v", bi, err)
						}
						if acc.NumPatients() == 0 || acc.NumExamTypes() == 0 {
							continue
						}
						want, err := Build(acc, opts)
						if err != nil {
							t.Fatalf("batch %d: rebuild: %v", bi, err)
						}
						if err := Equivalent(live.Matrix(), want); err != nil {
							t.Fatalf("after batch %d/%d: %v", bi+1, len(batches), err)
						}
					}
				})
			}
		}
	}
}

// TestLiveRejectsInvalidBatch: a rejected batch must leave the view
// untouched and equivalent to the last good state.
func TestLiveRejectsInvalidBatch(t *testing.T) {
	full := smallLog(t, 3)
	opts := Options{Weighting: Count, Normalization: L2}
	live := NewLive(opts)
	if err := live.Append(full.Exams, full.Patients, full.Records); err != nil {
		t.Fatal(err)
	}
	cases := []appendBatch{
		{exams: []dataset.ExamType{full.Exams[0]}},      // duplicate exam
		{patients: []dataset.Patient{full.Patients[0]}}, // duplicate patient
		{records: []dataset.Record{{PatientID: "nope", ExamCode: full.Exams[0].Code}}},
		{records: []dataset.Record{{PatientID: full.Patients[0].ID, ExamCode: "nope"}}},
	}
	want, err := Build(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range cases {
		if err := live.Append(b.exams, b.patients, b.records); err == nil {
			t.Errorf("case %d: invalid batch accepted", i)
		}
		if err := Equivalent(live.Matrix(), want); err != nil {
			t.Errorf("case %d: view mutated by rejected batch: %v", i, err)
		}
	}
}

// TestAppendDenseRowsMatchesConstruction: a CSR grown by appends equals
// one built from the concatenated rows (exercised through the Live
// pure-growth path too, but pinned here at the vec layer).
func TestLiveCSRPointerStableOnPureGrowth(t *testing.T) {
	full := smallLog(t, 9)
	opts := Options{Weighting: Count, Normalization: NoNorm}

	// Batch 1: everything except the last few patients' records.
	// Batch 2: only brand-new patients (records of patients unseen in
	// batch 1), so the fast pure-growth path must extend the CSR in
	// place rather than reallocate it.
	lastIDs := map[string]bool{}
	for _, p := range full.Patients[len(full.Patients)-5:] {
		lastIDs[p.ID] = true
	}
	var b1, b2 appendBatch
	b1.exams = full.Exams
	for _, p := range full.Patients {
		if lastIDs[p.ID] {
			b2.patients = append(b2.patients, p)
		} else {
			b1.patients = append(b1.patients, p)
		}
	}
	for _, r := range full.Records {
		if lastIDs[r.PatientID] {
			b2.records = append(b2.records, r)
		} else {
			b1.records = append(b1.records, r)
		}
	}

	live := NewLive(opts)
	if err := live.Append(b1.exams, b1.patients, b1.records); err != nil {
		t.Fatal(err)
	}
	before := live.Matrix().Sparse()
	beforeRows := live.Matrix()

	// The new patients' records must not disturb the global frequency
	// ranking for the in-place path to fire; verify equivalence either
	// way, but assert identity only when the ranking held.
	if err := live.Append(nil, b2.patients, b2.records); err != nil {
		t.Fatal(err)
	}
	acc := dataset.NewLog(full.Name)
	for _, e := range b1.exams {
		acc.AddExam(e)
	}
	for _, p := range append(append([]dataset.Patient{}, b1.patients...), b2.patients...) {
		acc.AddPatient(p)
	}
	for _, r := range append(append([]dataset.Record{}, b1.records...), b2.records...) {
		acc.AddRecord(r)
	}
	want, err := Build(acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(live.Matrix(), want); err != nil {
		t.Fatal(err)
	}
	if stringsEqual(beforeRows.Features, want.Features) && live.Matrix() == beforeRows {
		if live.Matrix().Sparse() != before {
			t.Error("pure-growth append reallocated the CSR view instead of extending it in place")
		}
	}
}
