package vsm

import (
	"math"
	"testing"
	"time"

	"adahealth/internal/dataset"
	"adahealth/internal/synth"
)

func day(d int) time.Time {
	return time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, d)
}

func vsmLog(t *testing.T) *dataset.Log {
	t.Helper()
	l := dataset.NewLog("vsm")
	for _, c := range []string{"A", "B", "C"} {
		if err := l.AddExam(dataset.ExamType{Code: c, Name: c}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"P1", "P2"} {
		if err := l.AddPatient(dataset.Patient{ID: id, Age: 40}); err != nil {
			t.Fatal(err)
		}
	}
	// Frequencies: B=3, A=2, C=1 → feature order B, A, C.
	recs := []dataset.Record{
		{PatientID: "P1", ExamCode: "B", Date: day(0)},
		{PatientID: "P1", ExamCode: "B", Date: day(1)},
		{PatientID: "P1", ExamCode: "A", Date: day(2)},
		{PatientID: "P2", ExamCode: "B", Date: day(0)},
		{PatientID: "P2", ExamCode: "A", Date: day(1)},
		{PatientID: "P2", ExamCode: "C", Date: day(2)},
	}
	for _, r := range recs {
		if err := l.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestBuildCountMatrix(t *testing.T) {
	m, err := Build(vsmLog(t), Options{Weighting: Count})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.NumRows() != 2 || m.NumFeatures() != 3 {
		t.Fatalf("shape = %dx%d", m.NumRows(), m.NumFeatures())
	}
	wantFeatures := []string{"B", "A", "C"}
	for i, f := range wantFeatures {
		if m.Features[i] != f {
			t.Fatalf("features = %v, want %v", m.Features, wantFeatures)
		}
	}
	// P1: B=2, A=1, C=0.
	if m.Rows[0][0] != 2 || m.Rows[0][1] != 1 || m.Rows[0][2] != 0 {
		t.Errorf("P1 row = %v", m.Rows[0])
	}
	// P2: B=1, A=1, C=1.
	if m.Rows[1][0] != 1 || m.Rows[1][1] != 1 || m.Rows[1][2] != 1 {
		t.Errorf("P2 row = %v", m.Rows[1])
	}
}

func TestBuildBinary(t *testing.T) {
	m, _ := Build(vsmLog(t), Options{Weighting: Binary})
	if m.Rows[0][0] != 1 || m.Rows[0][2] != 0 {
		t.Errorf("binary row = %v", m.Rows[0])
	}
}

func TestBuildLogCount(t *testing.T) {
	m, _ := Build(vsmLog(t), Options{Weighting: LogCount})
	want := math.Log1p(2)
	if math.Abs(m.Rows[0][0]-want) > 1e-12 {
		t.Errorf("logcount = %v, want %v", m.Rows[0][0], want)
	}
}

func TestBuildTFIDF(t *testing.T) {
	m, _ := Build(vsmLog(t), Options{Weighting: TFIDF})
	// B and A appear for both patients → idf = ln(2/2) = 0.
	if m.Rows[0][0] != 0 || m.Rows[0][1] != 0 {
		t.Errorf("idf of ubiquitous exams should zero them: %v", m.Rows[0])
	}
	// C appears only for P2 → idf = ln 2.
	want := math.Log(2)
	if math.Abs(m.Rows[1][2]-want) > 1e-12 {
		t.Errorf("tfidf C = %v, want %v", m.Rows[1][2], want)
	}
}

func TestL2Normalization(t *testing.T) {
	m, _ := Build(vsmLog(t), Options{Weighting: Count, Normalization: L2})
	for i, r := range m.Rows {
		n := 0.0
		for _, v := range r {
			n += v * v
		}
		if math.Abs(math.Sqrt(n)-1) > 1e-12 {
			t.Errorf("row %d norm = %v, want 1", i, math.Sqrt(n))
		}
	}
}

func TestL1Normalization(t *testing.T) {
	m, _ := Build(vsmLog(t), Options{Weighting: Count, Normalization: L1})
	for i, r := range m.Rows {
		s := 0.0
		for _, v := range r {
			s += math.Abs(v)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("row %d L1 = %v, want 1", i, s)
		}
	}
}

func TestCoverage(t *testing.T) {
	m, _ := Build(vsmLog(t), Options{})
	// Feature order B(3), A(2), C(1); total 6.
	if got := m.CoverageAt(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CoverageAt(1) = %v, want 0.5", got)
	}
	if got := m.CoverageAt(2); math.Abs(got-5.0/6.0) > 1e-12 {
		t.Errorf("CoverageAt(2) = %v, want 5/6", got)
	}
	if got := m.CoverageAt(3); got != 1 {
		t.Errorf("CoverageAt(all) = %v, want 1", got)
	}
	if got := m.CoverageAt(99); got != 1 {
		t.Errorf("CoverageAt(overflow) = %v, want 1", got)
	}
	if got := m.FeaturesForCoverage(0.5); got != 1 {
		t.Errorf("FeaturesForCoverage(0.5) = %d, want 1", got)
	}
	if got := m.FeaturesForCoverage(0.84); got != 3 {
		t.Errorf("FeaturesForCoverage(0.84) = %d, want 3", got)
	}
}

func TestProjectKeepsPatientsReducesFeatures(t *testing.T) {
	m, _ := Build(vsmLog(t), Options{Weighting: Count, Normalization: L2})
	p := m.Project(2)
	if p.NumRows() != m.NumRows() {
		t.Errorf("Project dropped rows: %d vs %d", p.NumRows(), m.NumRows())
	}
	if p.NumFeatures() != 2 {
		t.Errorf("Project features = %d, want 2", p.NumFeatures())
	}
	// Normalization must be recomputed in the reduced space.
	for i, r := range p.Rows {
		n := 0.0
		for _, v := range r {
			n += v * v
		}
		if n > 0 && math.Abs(math.Sqrt(n)-1) > 1e-12 {
			t.Errorf("projected row %d norm = %v, want 1", i, math.Sqrt(n))
		}
	}
	if _, ok := p.FeatureIndex("C"); ok {
		t.Error("projected matrix still indexes dropped feature C")
	}
	if i, ok := p.FeatureIndex("B"); !ok || i != 0 {
		t.Errorf("FeatureIndex(B) = %d,%v", i, ok)
	}
}

func TestProjectBounds(t *testing.T) {
	m, _ := Build(vsmLog(t), Options{})
	if p := m.Project(0); p.NumFeatures() != 1 {
		t.Errorf("Project(0) features = %d, want clamp to 1", p.NumFeatures())
	}
	if p := m.Project(99); p.NumFeatures() != m.NumFeatures() {
		t.Errorf("Project(99) features = %d, want clamp to %d", p.NumFeatures(), m.NumFeatures())
	}
}

func TestBuildErrors(t *testing.T) {
	empty := dataset.NewLog("e")
	if _, err := Build(empty, Options{}); err == nil {
		t.Error("Build accepted log with no patients")
	}
	onlyPatients := dataset.NewLog("p")
	onlyPatients.AddPatient(dataset.Patient{ID: "P1"})
	if _, err := Build(onlyPatients, Options{}); err == nil {
		t.Error("Build accepted log with no exam types")
	}
}

func TestSparsityMatchesSynthetic(t *testing.T) {
	log, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Sparsity()
	if s <= 0.3 || s >= 1 {
		t.Errorf("synthetic VSM sparsity = %v, want clearly sparse (0.3, 1)", s)
	}
}

func TestRowSumsMatchRecordCounts(t *testing.T) {
	log, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(log, Options{Weighting: Count})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, r := range m.Rows {
		for _, v := range r {
			total += v
		}
	}
	if int(total) != log.NumRecords() {
		t.Errorf("matrix mass = %v, want %d records", total, log.NumRecords())
	}
}

func TestSparseViewMatchesRowsAndIsCached(t *testing.T) {
	log, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(log, Options{Weighting: Count, Normalization: L2})
	if err != nil {
		t.Fatal(err)
	}
	csr := m.Sparse()
	if csr != m.Sparse() {
		t.Error("Sparse() rebuilt the CSR view instead of caching it")
	}
	if csr.NumRows() != m.NumRows() || csr.NumCols() != m.NumFeatures() {
		t.Fatalf("CSR shape %dx%d, want %dx%d",
			csr.NumRows(), csr.NumCols(), m.NumRows(), m.NumFeatures())
	}
	back := csr.Dense()
	for i := range m.Rows {
		for j := range m.Rows[i] {
			if back[i][j] != m.Rows[i][j] {
				t.Fatalf("CSR cell (%d,%d) = %v, want %v", i, j, back[i][j], m.Rows[i][j])
			}
		}
	}
	// A projection carries its own independent cached view.
	sub := m.Project(3)
	if sub.Sparse() == csr {
		t.Error("projection shares the parent's CSR view")
	}
	if sub.Sparse().NumCols() != 3 {
		t.Errorf("projected CSR cols = %d, want 3", sub.Sparse().NumCols())
	}
}
