// Package vsm implements the Vector Space Model data transformation of
// ADA-HEALTH's preprocessing block: each patient becomes a vector over
// examination types (his/her examination history), with selectable
// term weighting and row normalization. Features are ordered by
// decreasing global frequency, which is exactly the order the
// horizontal partial-mining strategy consumes (Section IV-B).
package vsm

import (
	"fmt"
	"math"
	"sync"

	"adahealth/internal/dataset"
	"adahealth/internal/vec"
)

// Weighting selects how raw exam counts are turned into vector entries.
type Weighting int

const (
	// Count keeps the raw number of times the patient underwent the
	// exam (the representation used in the paper's experiments).
	Count Weighting = iota
	// Binary records only presence/absence.
	Binary
	// LogCount applies log(1+count) damping.
	LogCount
	// TFIDF multiplies counts by the inverse document frequency
	// log(N/df) of the exam type across patients.
	TFIDF
)

func (w Weighting) String() string {
	switch w {
	case Count:
		return "count"
	case Binary:
		return "binary"
	case LogCount:
		return "logcount"
	case TFIDF:
		return "tfidf"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// Normalization selects per-row normalization applied after weighting.
type Normalization int

const (
	// NoNorm leaves rows as weighted.
	NoNorm Normalization = iota
	// L2 scales each row to unit Euclidean norm (required by the
	// cosine-based overall-similarity index).
	L2
	// L1 scales each row to unit sum.
	L1
)

func (n Normalization) String() string {
	switch n {
	case NoNorm:
		return "none"
	case L2:
		return "l2"
	case L1:
		return "l1"
	default:
		return fmt.Sprintf("Normalization(%d)", int(n))
	}
}

// Options configures the transformation.
type Options struct {
	Weighting     Weighting
	Normalization Normalization
}

// Matrix is the patient × exam-type matrix produced by Build. Features
// are ordered by decreasing global frequency; rows follow patient
// registration order.
type Matrix struct {
	PatientIDs []string
	Features   []string // exam codes, most frequent first
	Rows       [][]float64
	Opts       Options

	raw          [][]float64 // raw counts, feature order as Features
	featureFreq  []int       // global record count per feature
	totalRecords int
	featureIndex map[string]int

	sparseOnce sync.Once
	sparse     *vec.CSRMatrix
}

// Build constructs the VSM matrix for a log.
func Build(l *dataset.Log, opts Options) (*Matrix, error) {
	if l.NumPatients() == 0 {
		return nil, fmt.Errorf("vsm: log has no patients")
	}
	if l.NumExamTypes() == 0 {
		return nil, fmt.Errorf("vsm: log has no exam types")
	}
	features := l.ExamsByFrequency()
	fIdx := make(map[string]int, len(features))
	for i, f := range features {
		fIdx[f] = i
	}
	pIdx := make(map[string]int, l.NumPatients())
	ids := make([]string, l.NumPatients())
	for i, p := range l.Patients {
		pIdx[p.ID] = i
		ids[i] = p.ID
	}

	raw := make([][]float64, len(ids))
	backing := make([]float64, len(ids)*len(features))
	for i := range raw {
		raw[i], backing = backing[:len(features)], backing[len(features):]
	}
	freq := make([]int, len(features))
	for _, r := range l.Records {
		p, okP := pIdx[r.PatientID]
		f, okF := fIdx[r.ExamCode]
		if !okP || !okF {
			return nil, fmt.Errorf("vsm: record references unknown patient %q or exam %q",
				r.PatientID, r.ExamCode)
		}
		raw[p][f]++
		freq[f]++
	}

	m := &Matrix{
		PatientIDs:   ids,
		Features:     features,
		Opts:         opts,
		raw:          raw,
		featureFreq:  freq,
		totalRecords: l.NumRecords(),
		featureIndex: fIdx,
	}
	m.Rows = weigh(raw, opts)
	return m, nil
}

// weigh applies weighting + normalization to a raw count matrix,
// returning fresh rows.
func weigh(raw [][]float64, opts Options) [][]float64 {
	n := len(raw)
	if n == 0 {
		return nil
	}
	d := len(raw[0])
	rows := make([][]float64, n)
	backing := make([]float64, n*d)
	for i := range rows {
		rows[i], backing = backing[:d], backing[d:]
	}

	var idf []float64
	if opts.Weighting == TFIDF {
		df := make([]int, d)
		for _, r := range raw {
			for j, v := range r {
				if v > 0 {
					df[j]++
				}
			}
		}
		idf = make([]float64, d)
		for j, c := range df {
			if c > 0 {
				idf[j] = math.Log(float64(n) / float64(c))
			}
		}
	}

	for i, r := range raw {
		weighRowInto(rows[i], r, opts, idf)
	}
	return rows
}

// weighRowInto applies weighting + normalization to a single raw row,
// writing the result into out (len(out) == len(r)). idf is consulted
// only for TFIDF. The batch transform and the live incremental
// maintenance path (Live) both run every row through this one
// function, so per-row arithmetic — including the column order of the
// norm sums — is bit-for-bit identical by construction.
func weighRowInto(out, r []float64, opts Options, idf []float64) {
	for j, v := range r {
		switch opts.Weighting {
		case Count:
			out[j] = v
		case Binary:
			if v > 0 {
				out[j] = 1
			}
		case LogCount:
			out[j] = math.Log1p(v)
		case TFIDF:
			out[j] = v * idf[j]
		}
	}
	switch opts.Normalization {
	case L2:
		s := 0.0
		for _, v := range out {
			s += v * v
		}
		if s > 0 {
			inv := 1 / math.Sqrt(s)
			for j := range out {
				out[j] *= inv
			}
		}
	case L1:
		s := 0.0
		for _, v := range out {
			s += math.Abs(v)
		}
		if s > 0 {
			for j := range out {
				out[j] /= s
			}
		}
	}
}

// NumRows reports the number of patients.
func (m *Matrix) NumRows() int { return len(m.Rows) }

// NumFeatures reports the number of exam-type columns.
func (m *Matrix) NumFeatures() int { return len(m.Features) }

// FeatureIndex returns the column of an exam code.
func (m *Matrix) FeatureIndex(code string) (int, bool) {
	i, ok := m.featureIndex[code]
	return i, ok
}

// CoverageAt returns the fraction of original records represented by
// the first n (most frequent) features — the "percentage of raw data"
// the paper reports for each partial-mining step.
func (m *Matrix) CoverageAt(n int) float64 {
	if m.totalRecords == 0 || n <= 0 {
		return 0
	}
	if n > len(m.featureFreq) {
		n = len(m.featureFreq)
	}
	covered := 0
	for _, c := range m.featureFreq[:n] {
		covered += c
	}
	return float64(covered) / float64(m.totalRecords)
}

// FeaturesForCoverage returns the smallest feature-prefix length whose
// record coverage reaches the target fraction.
func (m *Matrix) FeaturesForCoverage(target float64) int {
	if target <= 0 {
		return 0
	}
	covered := 0
	for i, c := range m.featureFreq {
		covered += c
		if float64(covered) >= target*float64(m.totalRecords) {
			return i + 1
		}
	}
	return len(m.featureFreq)
}

// Project returns a new Matrix restricted to the first n features,
// re-deriving weighting and normalization from the raw counts so that
// e.g. IDF and row norms are consistent with the reduced space. All
// patients are retained (the paper's horizontal strategy keeps the
// total number of patients).
func (m *Matrix) Project(n int) *Matrix {
	if n <= 0 {
		n = 1
	}
	if n > m.NumFeatures() {
		n = m.NumFeatures()
	}
	raw := make([][]float64, len(m.raw))
	for i, r := range m.raw {
		raw[i] = r[:n:n]
	}
	out := &Matrix{
		PatientIDs:   m.PatientIDs,
		Features:     m.Features[:n:n],
		Opts:         m.Opts,
		raw:          raw,
		featureFreq:  m.featureFreq[:n:n],
		totalRecords: m.totalRecords,
		featureIndex: make(map[string]int, n),
	}
	for i, f := range out.Features {
		out.featureIndex[f] = i
	}
	out.Rows = weigh(raw, m.Opts)
	return out
}

// Sparse returns the CSR view of Rows, built once on first use and
// cached (Rows are immutable after Build/Project). The clustering
// pipeline hands this shared view to the sparse K-means kernel so the
// whole Table I sweep compresses the matrix exactly once.
func (m *Matrix) Sparse() *vec.CSRMatrix {
	m.sparseOnce.Do(func() { m.sparse = vec.NewCSRFromDense(m.Rows) })
	return m.sparse
}

// Sparsity returns the fraction of zero cells in the raw count matrix.
func (m *Matrix) Sparsity() float64 {
	cells, zeros := 0, 0
	for _, r := range m.raw {
		cells += len(r)
		for _, v := range r {
			if v == 0 {
				zeros++
			}
		}
	}
	if cells == 0 {
		return 0
	}
	return float64(zeros) / float64(cells)
}

// RawCounts exposes the underlying count rows (shared storage; callers
// must not mutate). It exists for evaluation code that needs the
// untransformed history, e.g. building classifier features.
func (m *Matrix) RawCounts() [][]float64 { return m.raw }
