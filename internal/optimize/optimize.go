// Package optimize implements ADA-HEALTH's algorithm-optimization
// component (Section IV-A): given a dataset and a center-based
// clustering algorithm, it runs the mining activity over a grid of
// parameters (the number of clusters K), scores every run with a
// combination of a traditional quality index (SSE) and a
// classification-based robustness assessment (a decision tree trained
// to re-predict the cluster labels, evaluated by 10-fold cross
// validation), and automatically selects the configuration with the
// best overall classification results — reproducing Table I.
//
// # Sweep execution
//
// Two sweep strategies share one assessment path:
//
//   - Warm-started (the default, SweepConfig.WarmStart == WarmStartOn):
//     the K values are clustered serially in ascending order, each K
//     seeded from the previous K's converged centroids plus
//     farthest-point splits for the extra centers, with one
//     cluster.Scratch reused across every run (labels, sums, bounds,
//     kd-tree) so the chain is nearly allocation-free. The expensive
//     robustness assessments fan out over a worker pool as each
//     clustering completes, so CV of K=6 overlaps clustering of K=7.
//   - Legacy (WarmStartOff): every K is seeded independently
//     (k-means++ under its own derived seed) and evaluated on the
//     worker pool, exactly as before warm starting existed; rows are
//     bit-for-bit identical to the historical output.
//
// Warm starting changes the seeding, and therefore the per-K local
// optimum the classifier re-predicts — the rows are not comparable
// bit-for-bit between the two modes, only statistically. Both modes
// derive the per-K clustering seed with KSeed, score identically, and
// are deterministic for every Parallelism value.
//
// Every worker owns one reusable decision tree (refit per fold — the
// fit-state buffers persist), one rand.Rand reseeded per K, and (in
// legacy mode) one cluster.Scratch, and all workers share a single
// presorted classify.ColumnOrder of the data: the presort depends
// only on the feature matrix, so one build serves every fold of every
// K.
package optimize

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"adahealth/internal/classify"
	"adahealth/internal/cluster"
	"adahealth/internal/eval"
	"adahealth/internal/vec"
	"adahealth/internal/vsm"
)

// WarmStart selects the sweep's seeding strategy. The zero value is
// WarmStartOn: K values are evaluated in ascending order and each
// clustering is seeded from the previous one.
type WarmStart int

const (
	// WarmStartOn evaluates K ascending, seeding K's centroids from
	// the previous K's converged centroids plus farthest-point splits.
	WarmStartOn WarmStart = iota
	// WarmStartOff seeds every K independently (k-means++ under the
	// KSeed-derived seed) — the legacy pre-warm-start behaviour,
	// preserved bit-for-bit.
	WarmStartOff
)

func (w WarmStart) String() string {
	switch w {
	case WarmStartOn:
		return "on"
	case WarmStartOff:
		return "off"
	default:
		return fmt.Sprintf("WarmStart(%d)", int(w))
	}
}

// Valid reports whether w is a known mode.
func (w WarmStart) Valid() bool { return w == WarmStartOn || w == WarmStartOff }

// KSeed derives the per-K clustering seed from the sweep seed. It is
// the one seed formula shared by the legacy independent-seeding path,
// the warm-started path (which uses it for the smallest K's k-means++
// run and for per-worker rand reseeding), and the pipeline's final
// clustering stage — so a sweep's selected K re-clusters under
// exactly the seed the sweep evaluated it with.
func KSeed(seed int64, k int) int64 { return seed + int64(k)*7919 }

// SweepConfig configures a parameter sweep.
type SweepConfig struct {
	// Ks is the grid of cluster counts; defaults to Table I's
	// {6, 7, 8, 9, 10, 12, 15, 20}.
	Ks []int
	// CVFolds is the cross-validation fold count; default 10.
	CVFolds int
	// Seed drives clustering seeding and fold shuffling.
	Seed int64
	// Cluster carries the K-means options (K/Seed overridden per run).
	Cluster cluster.Options
	// Tree configures the robustness-assessment decision tree.
	Tree classify.TreeOptions
	// Parallelism bounds concurrent K evaluations (legacy mode) or
	// concurrent robustness assessments (warm-started mode); <= 0 uses
	// all cores (runtime.GOMAXPROCS(0)). This worker pool stands in
	// for the paper's "online cloud-based services for automatic
	// configuration of data analytics".
	Parallelism int
	// WarmStart selects the seeding strategy; the zero value warms
	// each K from the previous one (see the package comment).
	WarmStart WarmStart

	// SeedCentroids, when non-nil, seed the warm-started chain's first
	// (smallest) K instead of k-means++: the K-DB recall stage passes
	// prior converged centroids of a statistically similar dataset
	// here, remapped onto this sweep's feature space. Fewer than K rows
	// are completed by farthest-point splits, more are truncated. Nil
	// (the default, and always in WarmStartOff mode) leaves the sweep
	// bit-for-bit identical to a cold run. Rows must match the data's
	// dimensionality.
	SeedCentroids [][]float64

	// Arena, when non-nil, lends the sweep its worker slabs (decision
	// tree, cluster scratch, RNG) instead of allocating fresh ones —
	// the cross-job reuse hook for long-lived services. Results are
	// bit-for-bit identical with or without it; see Arena.
	Arena *Arena `json:"-"`

	// csr, when non-nil, is a shared sparse view of the data rows (set
	// by SweepMatrix, or built internally when the data is sparse
	// enough): every K evaluation then routes through the sparse-aware
	// K-means kernels against one CSR build.
	csr *vec.CSRMatrix
}

// DefaultKs returns a fresh copy of the default K grid (Table I's
// {6, 7, 8, 9, 10, 12, 15, 20}) — the grid an empty SweepConfig.Ks
// selects, exported so callers that specialize the grid (the recall
// stage's narrowing) compose with the default the same way the sweep
// itself does.
func DefaultKs() []int { return []int{6, 7, 8, 9, 10, 12, 15, 20} }

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Ks) == 0 {
		c.Ks = DefaultKs()
	}
	if c.CVFolds <= 0 {
		c.CVFolds = 10
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// KResult is one row of Table I: the quality indexes for one K.
type KResult struct {
	K          int     `json:"k"`
	SSE        float64 `json:"sse"`
	Accuracy   float64 `json:"accuracy"`
	Precision  float64 `json:"avg_precision"` // macro average
	Recall     float64 `json:"avg_recall"`    // macro average
	F1         float64 `json:"macro_f1"`
	Similarity float64 `json:"overall_similarity"`
	// Combined is the selection score: the mean of accuracy, average
	// precision and average recall ("best overall classification
	// results", Section IV-B).
	Combined float64 `json:"combined"`
	// Iterations is the Lloyd-iteration count of this K's clustering —
	// the recall stage's warm-start evidence (a seeded chain converges
	// in fewer iterations than a cold one).
	Iterations int    `json:"iterations,omitempty"`
	Err        string `json:"error,omitempty"`
}

// SweepResult is the full optimization outcome.
type SweepResult struct {
	Rows []KResult `json:"rows"`
	// BestK is the automatically selected number of clusters.
	BestK int `json:"best_k"`
	// ElbowK is the SSE-elbow estimate (largest second difference),
	// reported for diagnostics; selection uses classification metrics.
	ElbowK int `json:"elbow_k"`
	// BestClustering is the fitted model the BestK row was scored on.
	// Under warm starting the BestK model is a product of the whole
	// ascending chain, not of an independent seeding, so callers that
	// need "the selected clustering" (the pipeline's cluster stage)
	// must take it from here rather than re-clustering.
	BestClustering *cluster.Result `json:"-"`
}

// Best returns the row for BestK.
func (s *SweepResult) Best() KResult {
	for _, r := range s.Rows {
		if r.K == s.BestK {
			return r
		}
	}
	return KResult{}
}

// Sweep evaluates every K on data (rows are the same features the
// clustering consumes; the classifier is trained on them with the
// cluster labels as target, exactly as in Section IV-A). The context
// is checked between clustering iterations and between evaluation
// phases, so a cancelled sweep returns ctx.Err() promptly instead of
// finishing the grid.
func Sweep(ctx context.Context, data [][]float64, cfg SweepConfig) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("optimize: no data")
	}
	for _, k := range cfg.Ks {
		if k < 2 {
			return nil, fmt.Errorf("optimize: K=%d below 2", k)
		}
		if k > len(data) {
			return nil, fmt.Errorf("optimize: K=%d exceeds %d rows", k, len(data))
		}
	}
	if !cfg.WarmStart.Valid() {
		return nil, fmt.Errorf("optimize: unknown WarmStart mode %d", cfg.WarmStart)
	}

	if cfg.csr == nil {
		// Compress once and share across every K evaluation when the
		// data is sparse enough for the sparse kernels to pay.
		cfg.csr = cluster.AutoCSR(data)
	}

	// One presorted column view serves every fold of every K.
	ord, err := classify.NewColumnOrder(data)
	if err != nil {
		return nil, fmt.Errorf("optimize: presorting features: %w", err)
	}

	var (
		rows []KResult
		crs  []*cluster.Result
	)
	if cfg.WarmStart == WarmStartOn {
		rows, crs = sweepWarm(ctx, data, cfg, ord)
	} else {
		rows, crs = sweepLegacy(ctx, data, cfg, ord)
	}

	// A cancelled context outranks per-row errors: return it unwrapped
	// so callers can match with errors.Is.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, r := range rows {
		if r.Err != "" {
			return nil, fmt.Errorf("optimize: K=%d: %s", r.K, r.Err)
		}
	}
	res := &SweepResult{Rows: rows}
	res.BestK = selectBestK(rows)
	res.ElbowK = elbowK(rows)
	for i, r := range rows {
		if r.K == res.BestK {
			res.BestClustering = crs[i]
			break
		}
	}
	return res, nil
}

// SweepMatrix is Sweep over a VSM matrix, reusing the matrix's cached
// sparse view (built at most once per matrix) when the sparse kernels
// are expected to pay.
func SweepMatrix(ctx context.Context, m *vsm.Matrix, cfg SweepConfig) (*SweepResult, error) {
	// Probe density on the dense rows first so a dense matrix never
	// materializes (and permanently caches) a CSR view it won't use.
	if cfg.csr == nil && m.NumRows() > 0 &&
		cluster.SparseProfitable(m.NumRows(), m.NumFeatures(), vec.Density(m.Rows)) {
		cfg.csr = m.Sparse()
	}
	return Sweep(ctx, m.Rows, cfg)
}

// sweepWorker is the reusable per-worker state of a sweep: one
// decision tree whose fit buffers survive refits, one cluster scratch
// (legacy mode clusters on the workers), and the hoisted cluster
// options so they are not rebuilt per K.
type sweepWorker struct {
	cfg     SweepConfig
	ord     *classify.ColumnOrder
	tree    *classify.DecisionTree
	scratch *cluster.Scratch
	opts    cluster.Options
	slab    *workerSlab // non-nil iff checked out of cfg.Arena
}

func newSweepWorker(cfg SweepConfig, ord *classify.ColumnOrder) *sweepWorker {
	w := &sweepWorker{cfg: cfg, ord: ord, opts: cfg.Cluster}
	if cfg.Arena != nil {
		w.slab = cfg.Arena.acquire(cfg.Tree)
		w.tree = w.slab.tree
		w.scratch = w.slab.scratch
		w.opts.Rand = w.slab.rng
	} else {
		w.tree = classify.NewDecisionTree(cfg.Tree)
		w.scratch = &cluster.Scratch{}
		// One generator per worker, reseeded by the run (cluster.run
		// calls Rand.Seed(KSeed(...))) — the per-K stream is identical
		// to a freshly constructed rand.New(rand.NewSource(KSeed(...))),
		// which is also why an arena slab's generator can carry over.
		w.opts.Rand = rand.New(rand.NewSource(0))
	}
	if w.opts.Parallelism == 0 && cfg.Parallelism > 1 {
		// The sweep pool already saturates the cores with concurrent
		// evaluations; keep each kernel serial unless explicitly
		// configured, instead of GOMAXPROCS² goroutines contending
		// through per-iteration barriers. Results are identical for
		// any worker count, so this is purely a scheduling choice.
		w.opts.Parallelism = 1
	}
	w.opts.Scratch = w.scratch
	return w
}

// factory returns the worker's reusable tree; eval.CrossValidate
// refits it per fold (FitSubset fully resets the model).
func (w *sweepWorker) factory() classify.Classifier { return w.tree }

// close returns the worker's slab to the arena it came from.
func (w *sweepWorker) close() {
	if w.slab != nil {
		w.cfg.Arena.release(w.slab)
		w.slab = nil
	}
}

// clusterK runs the clustering of one K under the worker's scratch.
func (w *sweepWorker) clusterK(ctx context.Context, data [][]float64, k int, initial [][]float64) (*cluster.Result, error) {
	opts := w.opts
	opts.K = k
	opts.Seed = KSeed(w.cfg.Seed, k)
	opts.InitialCentroids = initial
	return cluster.KMeansCSRContext(ctx, w.cfg.csr, data, opts)
}

// assess scores one fitted clustering: SSE, overall similarity, and
// the decision-tree robustness assessment under CVFolds-fold CV.
func (w *sweepWorker) assess(ctx context.Context, data [][]float64, k int, cr *cluster.Result) KResult {
	out := KResult{K: k, SSE: cr.SSE, Iterations: cr.Iterations}

	os, err := eval.OverallSimilarity(data, cr.Labels, cr.K)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Similarity = os

	if err := ctx.Err(); err != nil {
		out.Err = err.Error()
		return out
	}
	cv, err := eval.CrossValidateWithOrder(w.factory, data, cr.Labels, w.cfg.CVFolds, w.cfg.Seed+int64(k), w.ord)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Accuracy = cv.Metrics.Accuracy
	out.Precision = cv.Metrics.MacroPrecision
	out.Recall = cv.Metrics.MacroRecall
	out.F1 = cv.Metrics.MacroF1
	out.Combined = (out.Accuracy + out.Precision + out.Recall) / 3
	return out
}

// evaluateK runs one independent clustering + robustness assessment —
// the legacy sweep's unit of work.
func (w *sweepWorker) evaluateK(ctx context.Context, data [][]float64, k int) (KResult, *cluster.Result) {
	cr, err := w.clusterK(ctx, data, k, nil)
	if err != nil {
		return KResult{K: k, Err: err.Error()}, nil
	}
	return w.assess(ctx, data, k, cr), cr
}

// sweepLegacy evaluates every K independently on a bounded worker
// pool; each worker reuses one tree/scratch across the Ks it takes.
func sweepLegacy(ctx context.Context, data [][]float64, cfg SweepConfig, ord *classify.ColumnOrder) ([]KResult, []*cluster.Result) {
	rows := make([]KResult, len(cfg.Ks))
	crs := make([]*cluster.Result, len(cfg.Ks))
	workers := cfg.Parallelism
	if workers > len(cfg.Ks) {
		workers = len(cfg.Ks)
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newSweepWorker(cfg, ord)
			defer w.close()
			for i := range idxCh {
				k := cfg.Ks[i]
				if err := ctx.Err(); err != nil {
					rows[i] = KResult{K: k, Err: err.Error()}
					continue
				}
				rows[i], crs[i] = w.evaluateK(ctx, data, k)
			}
		}()
	}
	for i := range cfg.Ks {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return rows, crs
}

// sweepWarm clusters the Ks serially in ascending order, warm-seeding
// each from the previous converged centroids, while the robustness
// assessments fan out over the worker pool — the clustering chain and
// the CV of earlier Ks overlap.
func sweepWarm(ctx context.Context, data [][]float64, cfg SweepConfig, ord *classify.ColumnOrder) ([]KResult, []*cluster.Result) {
	rows := make([]KResult, len(cfg.Ks))
	crs := make([]*cluster.Result, len(cfg.Ks))
	order := make([]int, len(cfg.Ks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cfg.Ks[order[a]] < cfg.Ks[order[b]] })

	type cvJob struct {
		i, k int
		cr   *cluster.Result
	}
	jobs := make(chan cvJob, len(cfg.Ks))
	var wg sync.WaitGroup
	workers := cfg.Parallelism
	if workers > len(cfg.Ks) {
		workers = len(cfg.Ks)
	}
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newSweepWorker(cfg, ord)
			defer w.close()
			for j := range jobs {
				if err := ctx.Err(); err != nil {
					rows[j.i] = KResult{K: j.k, Err: err.Error()}
					continue
				}
				rows[j.i] = w.assess(ctx, data, j.k, j.cr)
			}
		}()
	}

	// The clustering chain owns its own worker state (serial by
	// construction: K+1 needs K's centroids). SeedCentroids, when the
	// recall stage supplied prior knowledge, stand in as the "previous
	// K" for the smallest K of the chain; otherwise it seeds k-means++
	// exactly as a cold sweep does.
	cw := newSweepWorker(cfg, ord)
	defer cw.close()
	prev := cfg.SeedCentroids
	var chainErr error
	for _, i := range order {
		k := cfg.Ks[i]
		if chainErr != nil {
			rows[i] = KResult{K: k, Err: chainErr.Error()}
			continue
		}
		if err := ctx.Err(); err != nil {
			rows[i] = KResult{K: k, Err: err.Error()}
			continue
		}
		var initial [][]float64
		if prev != nil {
			initial = warmSeed(prev, data, cfg.csr, k)
		}
		cr, err := cw.clusterK(ctx, data, k, initial)
		if err != nil {
			// Later Ks would warm-seed from this failed run; mark the
			// rest of the chain instead of silently skipping them.
			chainErr = err
			rows[i] = KResult{K: k, Err: err.Error()}
			continue
		}
		prev = cr.Centroids
		crs[i] = cr
		jobs <- cvJob{i: i, k: k, cr: cr}
	}
	close(jobs)
	wg.Wait()
	return rows, crs
}

// warmSeed builds k initial centroids from the previous K's converged
// centroids plus greedy farthest-point splits (Gonzalez): each extra
// centroid is the data point farthest from the current set, the
// deterministic split that targets the region the previous clustering
// covered worst. Distances run through the shared CSR view when one
// exists (O(nnz) per row instead of O(d)); this only seeds, so the
// identity's rounding caveat is irrelevant. Returned rows reference
// prev/data; the clustering run clones them before iterating.
func warmSeed(prev [][]float64, data [][]float64, csr *vec.CSRMatrix, k int) [][]float64 {
	if len(prev) >= k {
		return prev[:k]
	}
	cents := make([][]float64, len(prev), k)
	copy(cents, prev)
	dist := make([]float64, len(data))

	// tighten lowers dist[i] to min(dist[i], ‖x_i − cent‖²).
	tighten := func(cent []float64) {
		if csr != nil {
			cn := vec.Dot(cent, cent)
			for i := range dist {
				vals, cols := csr.RowView(i)
				if d := csr.RowNorm2(i) + cn - 2*vec.SparseDot(vals, cols, cent); d < dist[i] {
					dist[i] = d
				}
			}
			return
		}
		for i, x := range data {
			if d := vec.SquaredEuclidean(x, cent); d < dist[i] {
				dist[i] = d
			}
		}
	}
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	for _, cent := range cents {
		tighten(cent)
	}
	for len(cents) < k {
		far, farD := 0, dist[0]
		for i, d := range dist {
			if d > farD {
				far, farD = i, d
			}
		}
		cents = append(cents, data[far])
		tighten(data[far])
	}
	return cents
}

// selectBestK picks the K with the best overall classification
// results: highest combined score, ties broken toward smaller K
// (medical applications prefer few, significant clusters; §IV-A).
func selectBestK(rows []KResult) int {
	best := rows[0]
	for _, r := range rows[1:] {
		if r.Combined > best.Combined ||
			(r.Combined == best.Combined && r.K < best.K) {
			best = r
		}
	}
	return best.K
}

// elbowK estimates the knee of the SSE curve as the K with the largest
// positive second difference of SSE over the (sorted) K grid.
func elbowK(rows []KResult) int {
	sorted := append([]KResult(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].K < sorted[j].K })
	if len(sorted) < 3 {
		return sorted[0].K
	}
	bestK, bestCurv := sorted[1].K, 0.0
	for i := 1; i < len(sorted)-1; i++ {
		// Normalize by the K spacing, which is non-uniform in Table I.
		dk1 := float64(sorted[i].K - sorted[i-1].K)
		dk2 := float64(sorted[i+1].K - sorted[i].K)
		slope1 := (sorted[i].SSE - sorted[i-1].SSE) / dk1
		slope2 := (sorted[i+1].SSE - sorted[i].SSE) / dk2
		curv := slope2 - slope1
		if curv > bestCurv {
			bestCurv, bestK = curv, sorted[i].K
		}
	}
	return bestK
}
