// Package optimize implements ADA-HEALTH's algorithm-optimization
// component (Section IV-A): given a dataset and a center-based
// clustering algorithm, it runs the mining activity over a grid of
// parameters (the number of clusters K), scores every run with a
// combination of a traditional quality index (SSE) and a
// classification-based robustness assessment (a decision tree trained
// to re-predict the cluster labels, evaluated by 10-fold cross
// validation), and automatically selects the configuration with the
// best overall classification results — reproducing Table I.
package optimize

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"adahealth/internal/classify"
	"adahealth/internal/cluster"
	"adahealth/internal/eval"
	"adahealth/internal/vec"
	"adahealth/internal/vsm"
)

// SweepConfig configures a parameter sweep.
type SweepConfig struct {
	// Ks is the grid of cluster counts; defaults to Table I's
	// {6, 7, 8, 9, 10, 12, 15, 20}.
	Ks []int
	// CVFolds is the cross-validation fold count; default 10.
	CVFolds int
	// Seed drives clustering seeding and fold shuffling.
	Seed int64
	// Cluster carries the K-means options (K/Seed overridden per run).
	Cluster cluster.Options
	// Tree configures the robustness-assessment decision tree.
	Tree classify.TreeOptions
	// Parallelism bounds concurrent K evaluations; <= 0 uses all cores
	// (runtime.GOMAXPROCS(0)). This worker pool stands in for the
	// paper's "online cloud-based services for automatic configuration
	// of data analytics".
	Parallelism int

	// csr, when non-nil, is a shared sparse view of the data rows (set
	// by SweepMatrix, or built internally when the data is sparse
	// enough): every K evaluation then routes through the sparse
	// K-means kernel against one CSR build.
	csr *vec.CSRMatrix
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Ks) == 0 {
		c.Ks = []int{6, 7, 8, 9, 10, 12, 15, 20}
	}
	if c.CVFolds <= 0 {
		c.CVFolds = 10
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// KResult is one row of Table I: the quality indexes for one K.
type KResult struct {
	K          int     `json:"k"`
	SSE        float64 `json:"sse"`
	Accuracy   float64 `json:"accuracy"`
	Precision  float64 `json:"avg_precision"` // macro average
	Recall     float64 `json:"avg_recall"`    // macro average
	F1         float64 `json:"macro_f1"`
	Similarity float64 `json:"overall_similarity"`
	// Combined is the selection score: the mean of accuracy, average
	// precision and average recall ("best overall classification
	// results", Section IV-B).
	Combined float64 `json:"combined"`
	Err      string  `json:"error,omitempty"`
}

// SweepResult is the full optimization outcome.
type SweepResult struct {
	Rows []KResult `json:"rows"`
	// BestK is the automatically selected number of clusters.
	BestK int `json:"best_k"`
	// ElbowK is the SSE-elbow estimate (largest second difference),
	// reported for diagnostics; selection uses classification metrics.
	ElbowK int `json:"elbow_k"`
}

// Best returns the row for BestK.
func (s *SweepResult) Best() KResult {
	for _, r := range s.Rows {
		if r.K == s.BestK {
			return r
		}
	}
	return KResult{}
}

// Sweep evaluates every K on data (rows are the same features the
// clustering consumes; the classifier is trained on them with the
// cluster labels as target, exactly as in Section IV-A). The context
// is checked between clustering iterations and between evaluation
// phases, so a cancelled sweep returns ctx.Err() promptly instead of
// finishing the grid.
func Sweep(ctx context.Context, data [][]float64, cfg SweepConfig) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("optimize: no data")
	}
	for _, k := range cfg.Ks {
		if k < 2 {
			return nil, fmt.Errorf("optimize: K=%d below 2", k)
		}
		if k > len(data) {
			return nil, fmt.Errorf("optimize: K=%d exceeds %d rows", k, len(data))
		}
	}

	if cfg.csr == nil {
		// Compress once and share across every K evaluation when the
		// data is sparse enough for the sparse kernel to pay.
		cfg.csr = cluster.AutoCSR(data)
	}

	rows := make([]KResult, len(cfg.Ks))
	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup
	for i, k := range cfg.Ks {
		wg.Add(1)
		go func(i, k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				rows[i] = KResult{K: k, Err: err.Error()}
				return
			}
			rows[i] = evaluateK(ctx, data, k, cfg)
		}(i, k)
	}
	wg.Wait()

	// A cancelled context outranks per-row errors: return it unwrapped
	// so callers can match with errors.Is.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, r := range rows {
		if r.Err != "" {
			return nil, fmt.Errorf("optimize: K=%d: %s", r.K, r.Err)
		}
	}
	res := &SweepResult{Rows: rows}
	res.BestK = selectBestK(rows)
	res.ElbowK = elbowK(rows)
	return res, nil
}

// SweepMatrix is Sweep over a VSM matrix, reusing the matrix's cached
// sparse view (built at most once per matrix) when the sparse kernel
// is expected to pay.
func SweepMatrix(ctx context.Context, m *vsm.Matrix, cfg SweepConfig) (*SweepResult, error) {
	// Probe density on the dense rows first so a dense matrix never
	// materializes (and permanently caches) a CSR view it won't use.
	if cfg.csr == nil && m.NumRows() > 0 &&
		cluster.SparseProfitable(m.NumRows(), m.NumFeatures(), vec.Density(m.Rows)) {
		cfg.csr = m.Sparse()
	}
	return Sweep(ctx, m.Rows, cfg)
}

// evaluateK runs one clustering + robustness assessment.
func evaluateK(ctx context.Context, data [][]float64, k int, cfg SweepConfig) KResult {
	out := KResult{K: k}
	opts := cfg.Cluster
	opts.K = k
	opts.Seed = cfg.Seed + int64(k)*7919
	if opts.Parallelism == 0 && cfg.Parallelism > 1 {
		// The sweep pool already saturates the cores with concurrent K
		// evaluations; keep each kernel serial unless explicitly
		// configured, instead of GOMAXPROCS² goroutines contending
		// through per-iteration barriers. Results are identical for
		// any worker count, so this is purely a scheduling choice.
		opts.Parallelism = 1
	}
	cr, err := cluster.KMeansCSRContext(ctx, cfg.csr, data, opts)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.SSE = cr.SSE

	os, err := eval.OverallSimilarity(data, cr.Labels, cr.K)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Similarity = os

	if err := ctx.Err(); err != nil {
		out.Err = err.Error()
		return out
	}
	cv, err := eval.CrossValidate(func() classify.Classifier {
		return classify.NewDecisionTree(cfg.Tree)
	}, data, cr.Labels, cfg.CVFolds, cfg.Seed+int64(k))
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Accuracy = cv.Metrics.Accuracy
	out.Precision = cv.Metrics.MacroPrecision
	out.Recall = cv.Metrics.MacroRecall
	out.F1 = cv.Metrics.MacroF1
	out.Combined = (out.Accuracy + out.Precision + out.Recall) / 3
	return out
}

// selectBestK picks the K with the best overall classification
// results: highest combined score, ties broken toward smaller K
// (medical applications prefer few, significant clusters; §IV-A).
func selectBestK(rows []KResult) int {
	best := rows[0]
	for _, r := range rows[1:] {
		if r.Combined > best.Combined ||
			(r.Combined == best.Combined && r.K < best.K) {
			best = r
		}
	}
	return best.K
}

// elbowK estimates the knee of the SSE curve as the K with the largest
// positive second difference of SSE over the (sorted) K grid.
func elbowK(rows []KResult) int {
	sorted := append([]KResult(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].K < sorted[j].K })
	if len(sorted) < 3 {
		return sorted[0].K
	}
	bestK, bestCurv := sorted[1].K, 0.0
	for i := 1; i < len(sorted)-1; i++ {
		// Normalize by the K spacing, which is non-uniform in Table I.
		dk1 := float64(sorted[i].K - sorted[i-1].K)
		dk2 := float64(sorted[i+1].K - sorted[i].K)
		slope1 := (sorted[i].SSE - sorted[i-1].SSE) / dk1
		slope2 := (sorted[i+1].SSE - sorted[i].SSE) / dk2
		curv := slope2 - slope1
		if curv > bestCurv {
			bestCurv, bestK = curv, sorted[i].K
		}
	}
	return bestK
}
