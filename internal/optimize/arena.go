package optimize

import (
	"math/rand"
	"sync"

	"adahealth/internal/classify"
	"adahealth/internal/cluster"
)

// Arena is a pool of reusable sweep-worker state that survives across
// sweeps — the cross-job extension of the reuse a single sweep already
// practices internally. Within one sweep every worker keeps one
// decision tree (whose fit buffers survive refits) and one
// cluster.Scratch (bound matrices, centroid accumulators, kd-tree)
// for all the Ks it evaluates; an Arena carries exactly that state
// across sweep invocations, so a long-lived job service stops paying
// the slab allocations on every admitted job.
//
// Checkout is per sweep worker: each newSweepWorker takes a slab for
// the duration of the sweep and returns it on completion, so an Arena
// shared by concurrent sweeps is safe — a slab is owned by exactly one
// worker at a time, and the pool grows to the peak concurrent worker
// count, never beyond.
//
// Reuse is bit-for-bit invisible in the results: cluster.Scratch
// zeroes every buffer it hands out (property-tested across
// non-monotone K sequences), tree.FitSubset fully resets the model,
// and the per-worker RNG is reseeded from KSeed before every run. A
// slab whose tree was built under different TreeOptions is rebuilt on
// checkout; everything else is shape-agnostic.
type Arena struct {
	mu   sync.Mutex
	free []*workerSlab
}

// workerSlab is the reusable state of one sweep worker.
type workerSlab struct {
	tree     *classify.DecisionTree
	treeOpts classify.TreeOptions
	scratch  *cluster.Scratch
	rng      *rand.Rand
}

// NewArena returns an empty arena; slabs are created on first
// checkout.
func NewArena() *Arena { return &Arena{} }

// acquire pops a free slab (rebuilding its tree if the options
// changed) or builds a fresh one.
func (a *Arena) acquire(opts classify.TreeOptions) *workerSlab {
	a.mu.Lock()
	var s *workerSlab
	if n := len(a.free); n > 0 {
		s = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	}
	a.mu.Unlock()
	if s == nil {
		return &workerSlab{
			tree:     classify.NewDecisionTree(opts),
			treeOpts: opts,
			scratch:  &cluster.Scratch{},
			rng:      rand.New(rand.NewSource(0)),
		}
	}
	if s.treeOpts != opts {
		s.tree = classify.NewDecisionTree(opts)
		s.treeOpts = opts
	}
	return s
}

// release returns a slab to the pool.
func (a *Arena) release(s *workerSlab) {
	if s == nil {
		return
	}
	a.mu.Lock()
	a.free = append(a.free, s)
	a.mu.Unlock()
}
