package optimize

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"adahealth/internal/classify"
)

// sweepFingerprint reduces a sweep to everything observable: the full
// metric table plus the selected clustering's labels and centroids.
type sweepFingerprint struct {
	Rows      []KResult
	BestK     int
	ElbowK    int
	Labels    []int
	Centroids [][]float64
}

func fingerprint(res *SweepResult) sweepFingerprint {
	fp := sweepFingerprint{Rows: res.Rows, BestK: res.BestK, ElbowK: res.ElbowK}
	if res.BestClustering != nil {
		fp.Labels = res.BestClustering.Labels
		fp.Centroids = res.BestClustering.Centroids
	}
	return fp
}

// TestArenaSweepBitForBit drives a heterogeneous job sequence — mixed
// dimensionality, K grids, warm modes, and tree options, the shape mix
// a service's arena sees across tenants — twice: once with every sweep
// on fresh worker state, once with every sweep drawing slabs from one
// shared Arena. Every result must be bit-for-bit identical.
func TestArenaSweepBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	jobs := []struct {
		name string
		data [][]float64
		cfg  SweepConfig
	}{
		{"warm-d6", structured(rng, 4, 40, 6), SweepConfig{
			Ks: []int{2, 3, 4, 6}, CVFolds: 4, Seed: 1, Parallelism: 3}},
		{"legacy-d3", structured(rng, 3, 30, 3), SweepConfig{
			Ks: []int{2, 4, 5}, CVFolds: 3, Seed: 9, Parallelism: 2,
			WarmStart: WarmStartOff}},
		// Wider rows after narrower ones, then narrower again: slab
		// buffers must regrow and re-zero across shape changes.
		{"warm-d10", structured(rng, 5, 25, 10), SweepConfig{
			Ks: []int{3, 5, 7}, CVFolds: 3, Seed: 4, Parallelism: 4,
			Tree: classify.TreeOptions{MaxDepth: 4}}},
		{"warm-d2", structured(rng, 2, 50, 2), SweepConfig{
			Ks: []int{2, 3}, CVFolds: 5, Seed: 7, Parallelism: 1}},
	}

	fresh := make([]sweepFingerprint, len(jobs))
	for i, j := range jobs {
		res, err := Sweep(context.Background(), j.data, j.cfg)
		if err != nil {
			t.Fatalf("%s (fresh): %v", j.name, err)
		}
		fresh[i] = fingerprint(res)
	}

	arena := NewArena()
	for round := 0; round < 2; round++ { // second round hits warm slabs
		for i, j := range jobs {
			cfg := j.cfg
			cfg.Arena = arena
			res, err := Sweep(context.Background(), j.data, cfg)
			if err != nil {
				t.Fatalf("%s (arena, round %d): %v", j.name, round, err)
			}
			if got := fingerprint(res); !reflect.DeepEqual(got, fresh[i]) {
				t.Errorf("%s (round %d): arena-backed sweep diverged from fresh run", j.name, round)
			}
		}
	}
}

// TestArenaConcurrentSweeps shares one arena across concurrent sweeps
// (the service's worker slots) and checks each against its fresh
// baseline — slab checkout must isolate workers under the race
// detector.
func TestArenaConcurrentSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	datasets := [][][]float64{
		structured(rng, 3, 30, 4),
		structured(rng, 4, 25, 7),
		structured(rng, 2, 40, 3),
	}
	cfg := SweepConfig{Ks: []int{2, 3, 4}, CVFolds: 3, Seed: 5, Parallelism: 2}

	baselines := make([]sweepFingerprint, len(datasets))
	for i, data := range datasets {
		res, err := Sweep(context.Background(), data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		baselines[i] = fingerprint(res)
	}

	arena := NewArena()
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan string, len(datasets)*rounds)
	for r := 0; r < rounds; r++ {
		for i, data := range datasets {
			wg.Add(1)
			go func(i int, data [][]float64) {
				defer wg.Done()
				c := cfg
				c.Arena = arena
				res, err := Sweep(context.Background(), data, c)
				if err != nil {
					errs <- err.Error()
					return
				}
				if !reflect.DeepEqual(fingerprint(res), baselines[i]) {
					errs <- "concurrent arena sweep diverged from baseline"
				}
			}(i, data)
		}
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestArenaPoolBounded checks the free list settles at the peak
// concurrent worker population instead of growing per job.
func TestArenaPoolBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := structured(rng, 3, 30, 4)
	arena := NewArena()
	cfg := SweepConfig{Ks: []int{2, 3}, CVFolds: 3, Seed: 2, Parallelism: 2, Arena: arena}
	for i := 0; i < 5; i++ {
		if _, err := Sweep(context.Background(), data, cfg); err != nil {
			t.Fatal(err)
		}
	}
	arena.mu.Lock()
	n := len(arena.free)
	arena.mu.Unlock()
	// Warm mode: ≤ Parallelism CV workers + 1 chain worker.
	if n > cfg.Parallelism+1 {
		t.Errorf("arena holds %d slabs after serial sweeps; want <= %d", n, cfg.Parallelism+1)
	}
	if n == 0 {
		t.Error("arena never retained a slab")
	}
}

// TestArenaTreeOptionsRebuild alternates tree configurations through
// one arena: a slab fitted under one option set must not leak its tree
// into a sweep configured differently.
func TestArenaTreeOptionsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := structured(rng, 3, 40, 5)
	opts := []classify.TreeOptions{{}, {MaxDepth: 3}, {MinSamplesLeaf: 4}}

	arena := NewArena()
	for round := 0; round < 2; round++ {
		for _, to := range opts {
			cfg := SweepConfig{Ks: []int{2, 3, 4}, CVFolds: 3, Seed: 6, Parallelism: 1, Tree: to}
			res, err := Sweep(context.Background(), data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Arena = arena
			ares, err := Sweep(context.Background(), data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fingerprint(ares), fingerprint(res)) {
				t.Errorf("round %d, tree %+v: arena sweep diverged", round, to)
			}
		}
	}
}
