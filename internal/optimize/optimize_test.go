package optimize

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"adahealth/internal/classify"
	"adahealth/internal/cluster"
	"adahealth/internal/eval"
)

// structured builds data with `k` well-separated groups so that the
// "true" K is recoverable.
func structured(rng *rand.Rand, k, perCluster, d int) [][]float64 {
	var data [][]float64
	for c := 0; c < k; c++ {
		center := make([]float64, d)
		for j := range center {
			center[j] = float64((c*7+j*3)%11) * 4
		}
		for p := 0; p < perCluster; p++ {
			row := make([]float64, d)
			for j := range row {
				row[j] = center[j] + rng.NormFloat64()*0.4
			}
			data = append(data, row)
		}
	}
	return data
}

func TestSweepErrors(t *testing.T) {
	if _, err := Sweep(context.Background(), nil, SweepConfig{}); err == nil {
		t.Error("accepted empty data")
	}
	data := structured(rand.New(rand.NewSource(1)), 2, 10, 3)
	if _, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{1}}); err == nil {
		t.Error("accepted K=1")
	}
	if _, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{1000}}); err == nil {
		t.Error("accepted K > n")
	}
}

func TestSweepTableShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := structured(rng, 4, 50, 6)
	res, err := Sweep(context.Background(), data, SweepConfig{
		Ks:      []int{2, 3, 4, 5, 6, 8},
		CVFolds: 5,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// SSE is non-increasing in K (allowing small local-minimum noise).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SSE > res.Rows[i-1].SSE*1.10 {
			t.Errorf("SSE rose sharply from K=%d (%.2f) to K=%d (%.2f)",
				res.Rows[i-1].K, res.Rows[i-1].SSE, res.Rows[i].K, res.Rows[i].SSE)
		}
	}
	// Every row carries metrics in [0,1].
	for _, r := range res.Rows {
		for name, v := range map[string]float64{
			"accuracy": r.Accuracy, "precision": r.Precision,
			"recall": r.Recall, "similarity": r.Similarity,
		} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("K=%d %s = %v outside [0,1]", r.K, name, v)
			}
		}
	}
}

func TestSweepMetricsCollapseBeyondTrueK(t *testing.T) {
	// Table I's shape: classification metrics degrade sharply once K
	// exceeds the natural group count, because K-means manufactures
	// small arbitrary clusters the classifier cannot re-predict.
	rng := rand.New(rand.NewSource(3))
	trueK := 4
	data := structured(rng, trueK, 50, 5)
	res, err := Sweep(context.Background(), data, SweepConfig{
		Ks:      []int{4, 12, 20},
		CVFolds: 5,
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	byK := map[int]KResult{}
	for _, r := range res.Rows {
		byK[r.K] = r
	}
	if byK[4].Combined <= byK[20].Combined {
		t.Errorf("combined score did not collapse: K=4 %.3f vs K=20 %.3f",
			byK[4].Combined, byK[20].Combined)
	}
	if byK[4].Recall <= byK[20].Recall {
		t.Errorf("recall did not collapse: K=4 %.3f vs K=20 %.3f",
			byK[4].Recall, byK[20].Recall)
	}
	// Selection never picks the collapsed configuration.
	if res.BestK == 20 {
		t.Errorf("BestK = 20, the collapsed configuration")
	}
}

func TestSelectBestK(t *testing.T) {
	rows := []KResult{
		{K: 6, Combined: 0.85},
		{K: 7, Combined: 0.84},
		{K: 8, Combined: 0.87},
		{K: 9, Combined: 0.72},
	}
	if got := selectBestK(rows); got != 8 {
		t.Errorf("selectBestK = %d, want 8", got)
	}
	// Ties break toward smaller K (few significant clusters, §IV-A).
	rows = []KResult{
		{K: 10, Combined: 0.9},
		{K: 6, Combined: 0.9},
		{K: 8, Combined: 0.9},
	}
	if got := selectBestK(rows); got != 6 {
		t.Errorf("tie-break selectBestK = %d, want 6", got)
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := structured(rng, 3, 40, 4)
	a, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{2, 3, 4}, CVFolds: 4, Seed: 9, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{2, 3, 4}, CVFolds: 4, Seed: 9, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs across parallelism: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
	if a.BestK != b.BestK {
		t.Errorf("BestK differs: %d vs %d", a.BestK, b.BestK)
	}
}

func TestSweepBestAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := structured(rng, 3, 30, 3)
	res, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{2, 3}, CVFolds: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if best.K != res.BestK {
		t.Errorf("Best().K = %d, want %d", best.K, res.BestK)
	}
}

func TestElbowK(t *testing.T) {
	rows := []KResult{
		{K: 2, SSE: 1000},
		{K: 4, SSE: 400},
		{K: 6, SSE: 350}, // knee at 4: slope flattens sharply after it
		{K: 8, SSE: 320},
	}
	if got := elbowK(rows); got != 4 {
		t.Errorf("elbowK = %d, want 4", got)
	}
}

func TestSweepWithFilteringAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := structured(rng, 3, 40, 4)
	res, err := Sweep(context.Background(), data, SweepConfig{
		Ks: []int{2, 3, 4}, CVFolds: 3, Seed: 5,
		Cluster: cluster.Options{Algorithm: cluster.Filtering},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

// The legacy path (WarmStartOff) must reproduce the historical
// independent-seeding semantics exactly: for every K, a k-means++
// clustering under KSeed(seed, k) and a CV assessment under seed+k,
// computed here by hand against the public cluster/eval APIs.
func TestSweepLegacyMatchesIndependentEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := structured(rng, 3, 40, 5)
	cfg := SweepConfig{Ks: []int{2, 4, 6}, CVFolds: 4, Seed: 11, WarmStart: WarmStartOff}
	res, err := Sweep(context.Background(), data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range cfg.Ks {
		cr, err := cluster.KMeans(data, cluster.Options{K: k, Seed: KSeed(cfg.Seed, k)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[i].SSE != cr.SSE {
			t.Errorf("K=%d: SSE %v, want independent-run %v", k, res.Rows[i].SSE, cr.SSE)
		}
		cv, err := eval.CrossValidate(func() classify.Classifier {
			return classify.NewDecisionTree(classify.TreeOptions{})
		}, data, cr.Labels, cfg.CVFolds, cfg.Seed+int64(k))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[i].Accuracy != cv.Metrics.Accuracy {
			t.Errorf("K=%d: accuracy %v, want independent-run %v", k, res.Rows[i].Accuracy, cv.Metrics.Accuracy)
		}
	}
}

// The warm-started sweep (the default) must evaluate every requested K
// (in the caller's row order), keep SSE non-increasing over ascending
// K (each K starts from the previous optimum plus a split, so its
// converged SSE cannot exceed it), and stay deterministic across
// Parallelism.
func TestSweepWarmStartProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	data := structured(rng, 4, 40, 5)
	cfg := SweepConfig{Ks: []int{8, 2, 4, 6}, CVFolds: 4, Seed: 3} // deliberately unsorted
	res, err := Sweep(context.Background(), data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range cfg.Ks {
		if res.Rows[i].K != k {
			t.Fatalf("row %d is K=%d, want caller order %d", i, res.Rows[i].K, k)
		}
	}
	byK := map[int]KResult{}
	for _, r := range res.Rows {
		byK[r.K] = r
	}
	for _, pair := range [][2]int{{2, 4}, {4, 6}, {6, 8}} {
		if byK[pair[1]].SSE > byK[pair[0]].SSE+1e-9 {
			t.Errorf("warm-started SSE rose from K=%d (%.4f) to K=%d (%.4f)",
				pair[0], byK[pair[0]].SSE, pair[1], byK[pair[1]].SSE)
		}
	}
	again, err := Sweep(context.Background(), data, SweepConfig{Ks: cfg.Ks, CVFolds: 4, Seed: 3, Parallelism: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != again.Rows[i] {
			t.Fatalf("warm sweep row %d differs across parallelism: %+v vs %+v", i, res.Rows[i], again.Rows[i])
		}
	}
}

func TestWarmSeed(t *testing.T) {
	data := [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	prev := [][]float64{{0.1, 0.1}, {9.9, 0.1}}
	got := warmSeed(prev, data, nil, 3)
	if len(got) != 3 {
		t.Fatalf("got %d centroids, want 3", len(got))
	}
	for i := range prev {
		for j := range prev[i] {
			if got[i][j] != prev[i][j] {
				t.Errorf("warm seed %d does not carry over prev centroid", i)
			}
		}
	}
	// The farthest point from {~(0,0), ~(10,0)} is (0,10) or (10,10);
	// (0,10) has squared distance ~98.01 + more... both ~ equal; the
	// first argmax wins: (0,10).
	if got[2][0] != 0 || got[2][1] != 10 {
		t.Errorf("split centroid = %v, want the farthest point (0,10)", got[2])
	}
	// Duplicate K: the previous centroids are reused verbatim.
	same := warmSeed(prev, data, nil, 2)
	if len(same) != 2 || &same[0][0] != &prev[0][0] {
		t.Errorf("warmSeed with k == len(prev) should hand back prev")
	}
}

func TestKSeedFormula(t *testing.T) {
	if KSeed(1, 6) != 1+6*7919 {
		t.Errorf("KSeed(1,6) = %d", KSeed(1, 6))
	}
}

func TestSweepRejectsUnknownWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := structured(rng, 2, 10, 3)
	if _, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{2}, WarmStart: WarmStart(9)}); err == nil {
		t.Error("accepted unknown WarmStart mode")
	}
}
