package optimize

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"adahealth/internal/cluster"
)

// structured builds data with `k` well-separated groups so that the
// "true" K is recoverable.
func structured(rng *rand.Rand, k, perCluster, d int) [][]float64 {
	var data [][]float64
	for c := 0; c < k; c++ {
		center := make([]float64, d)
		for j := range center {
			center[j] = float64((c*7+j*3)%11) * 4
		}
		for p := 0; p < perCluster; p++ {
			row := make([]float64, d)
			for j := range row {
				row[j] = center[j] + rng.NormFloat64()*0.4
			}
			data = append(data, row)
		}
	}
	return data
}

func TestSweepErrors(t *testing.T) {
	if _, err := Sweep(context.Background(), nil, SweepConfig{}); err == nil {
		t.Error("accepted empty data")
	}
	data := structured(rand.New(rand.NewSource(1)), 2, 10, 3)
	if _, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{1}}); err == nil {
		t.Error("accepted K=1")
	}
	if _, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{1000}}); err == nil {
		t.Error("accepted K > n")
	}
}

func TestSweepTableShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := structured(rng, 4, 50, 6)
	res, err := Sweep(context.Background(), data, SweepConfig{
		Ks:      []int{2, 3, 4, 5, 6, 8},
		CVFolds: 5,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// SSE is non-increasing in K (allowing small local-minimum noise).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SSE > res.Rows[i-1].SSE*1.10 {
			t.Errorf("SSE rose sharply from K=%d (%.2f) to K=%d (%.2f)",
				res.Rows[i-1].K, res.Rows[i-1].SSE, res.Rows[i].K, res.Rows[i].SSE)
		}
	}
	// Every row carries metrics in [0,1].
	for _, r := range res.Rows {
		for name, v := range map[string]float64{
			"accuracy": r.Accuracy, "precision": r.Precision,
			"recall": r.Recall, "similarity": r.Similarity,
		} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("K=%d %s = %v outside [0,1]", r.K, name, v)
			}
		}
	}
}

func TestSweepMetricsCollapseBeyondTrueK(t *testing.T) {
	// Table I's shape: classification metrics degrade sharply once K
	// exceeds the natural group count, because K-means manufactures
	// small arbitrary clusters the classifier cannot re-predict.
	rng := rand.New(rand.NewSource(3))
	trueK := 4
	data := structured(rng, trueK, 50, 5)
	res, err := Sweep(context.Background(), data, SweepConfig{
		Ks:      []int{4, 12, 20},
		CVFolds: 5,
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	byK := map[int]KResult{}
	for _, r := range res.Rows {
		byK[r.K] = r
	}
	if byK[4].Combined <= byK[20].Combined {
		t.Errorf("combined score did not collapse: K=4 %.3f vs K=20 %.3f",
			byK[4].Combined, byK[20].Combined)
	}
	if byK[4].Recall <= byK[20].Recall {
		t.Errorf("recall did not collapse: K=4 %.3f vs K=20 %.3f",
			byK[4].Recall, byK[20].Recall)
	}
	// Selection never picks the collapsed configuration.
	if res.BestK == 20 {
		t.Errorf("BestK = 20, the collapsed configuration")
	}
}

func TestSelectBestK(t *testing.T) {
	rows := []KResult{
		{K: 6, Combined: 0.85},
		{K: 7, Combined: 0.84},
		{K: 8, Combined: 0.87},
		{K: 9, Combined: 0.72},
	}
	if got := selectBestK(rows); got != 8 {
		t.Errorf("selectBestK = %d, want 8", got)
	}
	// Ties break toward smaller K (few significant clusters, §IV-A).
	rows = []KResult{
		{K: 10, Combined: 0.9},
		{K: 6, Combined: 0.9},
		{K: 8, Combined: 0.9},
	}
	if got := selectBestK(rows); got != 6 {
		t.Errorf("tie-break selectBestK = %d, want 6", got)
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := structured(rng, 3, 40, 4)
	a, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{2, 3, 4}, CVFolds: 4, Seed: 9, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{2, 3, 4}, CVFolds: 4, Seed: 9, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs across parallelism: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
	if a.BestK != b.BestK {
		t.Errorf("BestK differs: %d vs %d", a.BestK, b.BestK)
	}
}

func TestSweepBestAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := structured(rng, 3, 30, 3)
	res, err := Sweep(context.Background(), data, SweepConfig{Ks: []int{2, 3}, CVFolds: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if best.K != res.BestK {
		t.Errorf("Best().K = %d, want %d", best.K, res.BestK)
	}
}

func TestElbowK(t *testing.T) {
	rows := []KResult{
		{K: 2, SSE: 1000},
		{K: 4, SSE: 400},
		{K: 6, SSE: 350}, // knee at 4: slope flattens sharply after it
		{K: 8, SSE: 320},
	}
	if got := elbowK(rows); got != 4 {
		t.Errorf("elbowK = %d, want 4", got)
	}
}

func TestSweepWithFilteringAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := structured(rng, 3, 40, 4)
	res, err := Sweep(context.Background(), data, SweepConfig{
		Ks: []int{2, 3, 4}, CVFolds: 3, Seed: 5,
		Cluster: cluster.Options{Algorithm: cluster.Filtering},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}
