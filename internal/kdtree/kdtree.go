// Package kdtree implements a kd-tree over dense float vectors with
// per-node bounding boxes and aggregate sums. It is the substrate for
// the Kanungo et al. "filtering algorithm" K-means variant cited by
// the paper ([3]), and also offers exact nearest-neighbour queries.
package kdtree

import (
	"fmt"
	"math"
	"sort"

	"adahealth/internal/vec"
)

// Node is one cell of the tree. Leaves cover at most LeafSize points.
type Node struct {
	Lo, Hi         int // points Perm[Lo:Hi] fall in this cell
	BoxMin, BoxMax []float64
	Sum            []float64 // sum of member points
	Count          int
	Left, Right    *Node // nil for leaves
}

// Tree is an immutable kd-tree over a point set.
type Tree struct {
	Points   [][]float64
	Perm     []int // permutation of point indices; nodes own ranges of it
	Root     *Node
	Dim      int
	LeafSize int
}

// DefaultLeafSize is used when Build is given leafSize <= 0.
const DefaultLeafSize = 16

// Build constructs a kd-tree. Points must be non-empty and rectangular.
func Build(points [][]float64, leafSize int) (*Tree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kdtree: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("kdtree: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kdtree: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	t := &Tree{Points: points, Dim: dim, LeafSize: leafSize}
	t.Perm = make([]int, len(points))
	for i := range t.Perm {
		t.Perm[i] = i
	}
	t.Root = t.build(0, len(points))
	return t, nil
}

func (t *Tree) build(lo, hi int) *Node {
	n := &Node{
		Lo: lo, Hi: hi,
		BoxMin: make([]float64, t.Dim),
		BoxMax: make([]float64, t.Dim),
		Sum:    make([]float64, t.Dim),
		Count:  hi - lo,
	}
	first := t.Points[t.Perm[lo]]
	copy(n.BoxMin, first)
	copy(n.BoxMax, first)
	for i := lo; i < hi; i++ {
		p := t.Points[t.Perm[i]]
		for d := 0; d < t.Dim; d++ {
			v := p[d]
			n.Sum[d] += v
			if v < n.BoxMin[d] {
				n.BoxMin[d] = v
			}
			if v > n.BoxMax[d] {
				n.BoxMax[d] = v
			}
		}
	}
	if hi-lo <= t.LeafSize {
		return n
	}
	// Split on the widest dimension at the median.
	split, width := 0, n.BoxMax[0]-n.BoxMin[0]
	for d := 1; d < t.Dim; d++ {
		if w := n.BoxMax[d] - n.BoxMin[d]; w > width {
			split, width = d, w
		}
	}
	if width == 0 {
		// All points identical: keep as (possibly large) leaf.
		return n
	}
	seg := t.Perm[lo:hi]
	mid := len(seg) / 2
	nthElement(seg, mid, func(a, b int) bool { return t.Points[a][split] < t.Points[b][split] })
	// Guard against all points on one side (duplicates at the median).
	m := lo + mid
	if m == lo || m == hi {
		return n
	}
	n.Left = t.build(lo, m)
	n.Right = t.build(m, hi)
	return n
}

// nthElement partially sorts seg so that seg[k] is the k-th element by
// less, with smaller elements before it. Uses sort for simplicity at
// build time; build is not on the per-iteration hot path.
func nthElement(seg []int, k int, less func(a, b int) bool) {
	sort.Slice(seg, func(i, j int) bool { return less(seg[i], seg[j]) })
	_ = k
}

// BoxSquaredDistance returns the squared Euclidean distance from q to
// the node's bounding box (0 if q is inside).
func (n *Node) BoxSquaredDistance(q []float64) float64 {
	s := 0.0
	for d := range q {
		switch {
		case q[d] < n.BoxMin[d]:
			diff := n.BoxMin[d] - q[d]
			s += diff * diff
		case q[d] > n.BoxMax[d]:
			diff := q[d] - n.BoxMax[d]
			s += diff * diff
		}
	}
	return s
}

// Nearest returns the index of the point nearest to q and the squared
// distance, via branch-and-bound search.
func (t *Tree) Nearest(q []float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.BoxSquaredDistance(q) >= bestD {
			return
		}
		if n.Left == nil {
			for i := n.Lo; i < n.Hi; i++ {
				idx := t.Perm[i]
				if d := vec.SquaredEuclidean(q, t.Points[idx]); d < bestD {
					best, bestD = idx, d
				}
			}
			return
		}
		// Visit the closer child first.
		dl, dr := n.Left.BoxSquaredDistance(q), n.Right.BoxSquaredDistance(q)
		if dl <= dr {
			walk(n.Left)
			walk(n.Right)
		} else {
			walk(n.Right)
			walk(n.Left)
		}
	}
	walk(t.Root)
	return best, bestD
}

// FilterScratch holds the reusable working memory of FilterStep: one
// arena backing every recursion level's surviving-candidate slice
// (each node appends its children's candidate set and truncates on
// return, so the arena high-water mark is K·tree-height) and the cell
// midpoint buffer. A zero FilterScratch is ready to use; reusing one
// across iterations hoists what was ~2·K allocations per tree node
// per iteration out of the hot loop.
type FilterScratch struct {
	cand []int
	mid  []float64
}

// FilterStep performs one assignment pass of the Kanungo filtering
// algorithm: every point is (implicitly) assigned to its closest
// centroid; per-centroid sums and counts are accumulated and labels
// filled by original point index. sums must be K pre-allocated vectors
// of the tree dimension, counts length K; both are zeroed here. It
// allocates fresh scratch per call; iterating callers should hold a
// FilterScratch and use FilterStepScratch.
func (t *Tree) FilterStep(centroids [][]float64, labels []int, sums [][]float64, counts []int) {
	t.FilterStepScratch(centroids, labels, sums, counts, &FilterScratch{})
}

// FilterStepScratch is FilterStep with caller-owned scratch, the
// per-iteration entry point of the clustering run.
func (t *Tree) FilterStepScratch(centroids [][]float64, labels []int, sums [][]float64, counts []int, s *FilterScratch) {
	for i := range sums {
		for d := range sums[i] {
			sums[i][d] = 0
		}
		counts[i] = 0
	}
	s.cand = s.cand[:0]
	if cap(s.mid) < t.Dim {
		s.mid = make([]float64, t.Dim)
	}
	for i := range centroids {
		s.cand = append(s.cand, i)
	}
	t.filter(t.Root, centroids, s.cand, labels, sums, counts, s)
}

func (t *Tree) filter(n *Node, centroids [][]float64, cand []int, labels []int, sums [][]float64, counts []int, s *FilterScratch) {
	if len(cand) == 1 {
		t.assignSubtree(n, cand[0], labels, sums, counts)
		return
	}
	if n.Left == nil {
		// Leaf: brute force over surviving candidates.
		for i := n.Lo; i < n.Hi; i++ {
			idx := t.Perm[i]
			p := t.Points[idx]
			best, bestD := cand[0], vec.SquaredEuclidean(p, centroids[cand[0]])
			for _, c := range cand[1:] {
				if d := vec.SquaredEuclidean(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			labels[idx] = best
			counts[best]++
			vec.AddTo(sums[best], p)
		}
		return
	}

	// z*: candidate closest to the cell midpoint. The midpoint buffer
	// is shared across the recursion: it is only read before the
	// recursive calls below.
	mid := s.mid[:t.Dim]
	for d := 0; d < t.Dim; d++ {
		mid[d] = (n.BoxMin[d] + n.BoxMax[d]) / 2
	}
	zstar, bestD := cand[0], vec.SquaredEuclidean(mid, centroids[cand[0]])
	for _, c := range cand[1:] {
		if d := vec.SquaredEuclidean(mid, centroids[c]); d < bestD {
			zstar, bestD = c, d
		}
	}

	// Prune candidates dominated by z* over the whole cell, appending
	// the survivors to the arena; the segment is released on return.
	// A deeper append may move the arena's backing array, but this
	// level's kept slice remains a valid view of the old array.
	mark := len(s.cand)
	for _, c := range cand {
		if c == zstar || !isFarther(centroids[c], centroids[zstar], n.BoxMin, n.BoxMax) {
			s.cand = append(s.cand, c)
		}
	}
	kept := s.cand[mark:len(s.cand):len(s.cand)]
	if len(kept) == 1 {
		s.cand = s.cand[:mark]
		t.assignSubtree(n, kept[0], labels, sums, counts)
		return
	}
	t.filter(n.Left, centroids, kept, labels, sums, counts, s)
	t.filter(n.Right, centroids, kept, labels, sums, counts, s)
	s.cand = s.cand[:mark]
}

// isFarther reports whether z is farther than zstar from every point
// of the box: it compares distances at the box vertex extreme in the
// direction z - zstar (Kanungo et al., Lemma on candidate pruning).
func isFarther(z, zstar, boxMin, boxMax []float64) bool {
	distZ, distZs := 0.0, 0.0
	for d := range z {
		v := boxMin[d]
		if z[d] >= zstar[d] {
			v = boxMax[d]
		}
		dz := z[d] - v
		ds := zstar[d] - v
		distZ += dz * dz
		distZs += ds * ds
	}
	return distZ >= distZs
}

func (t *Tree) assignSubtree(n *Node, c int, labels []int, sums [][]float64, counts []int) {
	for i := n.Lo; i < n.Hi; i++ {
		labels[t.Perm[i]] = c
	}
	counts[c] += n.Count
	vec.AddTo(sums[c], n.Sum)
}

// Height returns the height of the tree (1 for a single leaf).
func (t *Tree) Height() int {
	var h func(n *Node) int
	h = func(n *Node) int {
		if n == nil {
			return 0
		}
		l, r := h(n.Left), h(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.Root)
}

// NumLeaves counts leaf cells.
func (t *Tree) NumLeaves() int {
	var c func(n *Node) int
	c = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.Left == nil {
			return 1
		}
		return c(n.Left) + c(n.Right)
	}
	return c(t.Root)
}
