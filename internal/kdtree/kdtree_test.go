package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"adahealth/internal/vec"
)

func randomPoints(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = rng.NormFloat64()
		}
	}
	return pts
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Error("Build accepted empty point set")
	}
	if _, err := Build([][]float64{{}}, 0); err == nil {
		t.Error("Build accepted zero-dimensional points")
	}
	if _, err := Build([][]float64{{1, 2}, {1}}, 0); err == nil {
		t.Error("Build accepted ragged points")
	}
}

func TestBuildAggregates(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	tr, err := Build(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Count != 4 {
		t.Errorf("root count = %d", tr.Root.Count)
	}
	if tr.Root.Sum[0] != 4 || tr.Root.Sum[1] != 4 {
		t.Errorf("root sum = %v", tr.Root.Sum)
	}
	if tr.Root.BoxMin[0] != 0 || tr.Root.BoxMax[1] != 2 {
		t.Errorf("root box = %v..%v", tr.Root.BoxMin, tr.Root.BoxMax)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(200)
		d := 1 + rng.Intn(8)
		pts := randomPoints(rng, n, d)
		tr, err := Build(pts, 1+rng.Intn(8))
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.NormFloat64() * 2
		}
		gotIdx, gotD := tr.Nearest(q)
		wantIdx, wantD := -1, math.Inf(1)
		for i, p := range pts {
			if dd := vec.SquaredEuclidean(q, p); dd < wantD {
				wantIdx, wantD = i, dd
			}
		}
		if math.Abs(gotD-wantD) > 1e-9 {
			t.Fatalf("trial %d: nearest distance %v vs brute %v (idx %d vs %d)",
				trial, gotD, wantD, gotIdx, wantIdx)
		}
	}
}

func TestFilterStepMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(300)
		d := 1 + rng.Intn(6)
		k := 1 + rng.Intn(8)
		pts := randomPoints(rng, n, d)
		cents := randomPoints(rng, k, d)
		tr, err := Build(pts, 1+rng.Intn(10))
		if err != nil {
			t.Fatal(err)
		}
		labels := make([]int, n)
		counts := make([]int, k)
		sums := make([][]float64, k)
		for i := range sums {
			sums[i] = make([]float64, d)
		}
		tr.FilterStep(cents, labels, sums, counts)

		wantCounts := make([]int, k)
		wantSums := make([][]float64, k)
		for i := range wantSums {
			wantSums[i] = make([]float64, d)
		}
		for i, p := range pts {
			c, _ := vec.ArgMinDistance(p, cents)
			wantCounts[c]++
			vec.AddTo(wantSums[c], p)
			// Labels must point to *a* nearest centroid (ties may
			// legitimately differ); verify distance equality instead.
			got := vec.SquaredEuclidean(p, cents[labels[i]])
			want := vec.SquaredEuclidean(p, cents[c])
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d point %d: assigned non-nearest centroid (d=%v vs %v)",
					trial, i, got, want)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] != wantCounts[c] {
				t.Fatalf("trial %d: counts[%d] = %d, want %d", trial, c, counts[c], wantCounts[c])
			}
			for j := 0; j < d; j++ {
				if math.Abs(sums[c][j]-wantSums[c][j]) > 1e-6 {
					t.Fatalf("trial %d: sums[%d][%d] = %v, want %v",
						trial, c, j, sums[c][j], wantSums[c][j])
				}
			}
		}
	}
}

func TestFilterStepSingleCentroid(t *testing.T) {
	pts := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	tr, _ := Build(pts, 2)
	labels := make([]int, 3)
	counts := make([]int, 1)
	sums := [][]float64{make([]float64, 2)}
	tr.FilterStep([][]float64{{0, 0}}, labels, sums, counts)
	if counts[0] != 3 {
		t.Errorf("count = %d, want 3", counts[0])
	}
	if sums[0][0] != 6 || sums[0][1] != 6 {
		t.Errorf("sum = %v, want [6 6]", sums[0])
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([][]float64, 50)
	for i := range pts {
		pts[i] = []float64{1, 2, 3}
	}
	tr, err := Build(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	idx, d := tr.Nearest([]float64{1, 2, 3})
	if d != 0 || idx < 0 {
		t.Errorf("nearest to duplicate cloud = %d, %v", idx, d)
	}
}

func TestHeightAndLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 128, 3)
	tr, _ := Build(pts, 8)
	if h := tr.Height(); h < 4 || h > 10 {
		t.Errorf("height = %d, want roughly log2(128/8)+1 .. balanced", h)
	}
	leaves := tr.NumLeaves()
	if leaves < 128/8 {
		t.Errorf("leaves = %d, want at least 16", leaves)
	}
}

func TestBoxSquaredDistance(t *testing.T) {
	n := &Node{BoxMin: []float64{0, 0}, BoxMax: []float64{1, 1}}
	if d := n.BoxSquaredDistance([]float64{0.5, 0.5}); d != 0 {
		t.Errorf("inside distance = %v, want 0", d)
	}
	if d := n.BoxSquaredDistance([]float64{2, 0.5}); d != 1 {
		t.Errorf("outside distance = %v, want 1", d)
	}
	if d := n.BoxSquaredDistance([]float64{2, 2}); d != 2 {
		t.Errorf("corner distance = %v, want 2", d)
	}
}

// A FilterScratch reused across many iterations (the clustering run's
// pattern, with centroids changing every call) must produce exactly
// the labels/sums/counts of a fresh-scratch FilterStep.
func TestFilterStepScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n, d, k := 400, 3, 12
	pts := randomPoints(rng, n, d)
	tr, err := Build(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	scratch := &FilterScratch{}
	for iter := 0; iter < 10; iter++ {
		cents := randomPoints(rng, k, d)
		freshLabels, reuseLabels := make([]int, n), make([]int, n)
		freshCounts, reuseCounts := make([]int, k), make([]int, k)
		freshSums := make([][]float64, k)
		reuseSums := make([][]float64, k)
		for i := range freshSums {
			freshSums[i] = make([]float64, d)
			reuseSums[i] = make([]float64, d)
		}
		tr.FilterStep(cents, freshLabels, freshSums, freshCounts)
		tr.FilterStepScratch(cents, reuseLabels, reuseSums, reuseCounts, scratch)
		for i := range freshLabels {
			if freshLabels[i] != reuseLabels[i] {
				t.Fatalf("iter %d: label[%d] = %d, want %d", iter, i, reuseLabels[i], freshLabels[i])
			}
		}
		for c := 0; c < k; c++ {
			if freshCounts[c] != reuseCounts[c] {
				t.Fatalf("iter %d: counts[%d] = %d, want %d", iter, c, reuseCounts[c], freshCounts[c])
			}
			for j := 0; j < d; j++ {
				if freshSums[c][j] != reuseSums[c][j] {
					t.Fatalf("iter %d: sums[%d][%d] = %v, want %v",
						iter, c, j, reuseSums[c][j], freshSums[c][j])
				}
			}
		}
	}
}
