package stats

import (
	"testing"
	"time"

	"adahealth/internal/dataset"
)

func demandLog(t *testing.T) *dataset.Log {
	t.Helper()
	l := dataset.NewLog("demand")
	if err := l.AddExam(dataset.ExamType{Code: "A", Category: "cardio"}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddExam(dataset.ExamType{Code: "B", Category: "renal"}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddPatient(dataset.Patient{ID: "P1", Age: 60}); err != nil {
		t.Fatal(err)
	}
	at := func(m, d int) time.Time {
		return time.Date(2015, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	}
	recs := []dataset.Record{
		{PatientID: "P1", ExamCode: "A", Date: at(1, 5)},
		{PatientID: "P1", ExamCode: "A", Date: at(1, 20)},
		{PatientID: "P1", ExamCode: "B", Date: at(1, 25)},
		// February empty.
		{PatientID: "P1", ExamCode: "A", Date: at(3, 2)},
	}
	for _, r := range recs {
		if err := l.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestMonthlyDemand(t *testing.T) {
	series := MonthlyDemand(demandLog(t))
	if len(series) != 3 {
		t.Fatalf("months = %d, want 3 (Jan-Mar incl. empty Feb)", len(series))
	}
	if series[0].Count != 3 || series[0].Month != 1 {
		t.Errorf("January = %+v", series[0])
	}
	if series[1].Count != 0 || series[1].Month != 2 {
		t.Errorf("February = %+v, want gap month with 0", series[1])
	}
	if series[2].Count != 1 {
		t.Errorf("March = %+v", series[2])
	}
}

func TestMonthlyDemandEmptyLog(t *testing.T) {
	if got := MonthlyDemand(dataset.NewLog("e")); got != nil {
		t.Errorf("empty log demand = %v", got)
	}
}

func TestDemandByCategory(t *testing.T) {
	byCat := DemandByCategory(demandLog(t))
	if len(byCat) != 2 {
		t.Fatalf("categories = %d, want 2", len(byCat))
	}
	cardio := byCat["cardio"]
	if len(cardio) != 3 || cardio[0].Count != 2 || cardio[2].Count != 1 {
		t.Errorf("cardio series = %+v", cardio)
	}
	renal := byCat["renal"]
	if renal[0].Count != 1 || renal[1].Count != 0 || renal[2].Count != 0 {
		t.Errorf("renal series = %+v", renal)
	}
}

func TestPeakToMeanRatio(t *testing.T) {
	flat := []DemandPoint{{Count: 5}, {Count: 5}, {Count: 5}}
	if got := PeakToMeanRatio(flat); got != 1 {
		t.Errorf("flat ratio = %v, want 1", got)
	}
	bursty := []DemandPoint{{Count: 0}, {Count: 0}, {Count: 30}}
	if got := PeakToMeanRatio(bursty); got != 3 {
		t.Errorf("bursty ratio = %v, want 3", got)
	}
	if got := PeakToMeanRatio(nil); got != 0 {
		t.Errorf("empty ratio = %v", got)
	}
	if got := PeakToMeanRatio([]DemandPoint{{Count: 0}}); got != 0 {
		t.Errorf("all-zero ratio = %v", got)
	}
}
