package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if !almostEqual(s.Std, 2, 1e-12) {
		t.Errorf("Std = %v, want 2 (population)", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSkewness(t *testing.T) {
	rightSkewed := []float64{1, 1, 1, 1, 2, 2, 3, 10}
	if s := Summarize(rightSkewed); s.Skewness <= 0 {
		t.Errorf("right-skewed sample has skewness %v, want > 0", s.Skewness)
	}
	symmetric := []float64{-2, -1, 0, 1, 2}
	if s := Summarize(symmetric); !almostEqual(s.Skewness, 0, 1e-9) {
		t.Errorf("symmetric sample skewness = %v, want 0", s.Skewness)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]int{5, 5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("uniform 2-way entropy = %v, want 1 bit", got)
	}
	if got := Entropy([]int{10, 0, 0}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("concentrated entropy = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("empty entropy = %v", got)
	}
}

func TestNormalizedEntropy(t *testing.T) {
	if got := NormalizedEntropy([]int{3, 3, 3, 3}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("uniform normalized entropy = %v, want 1", got)
	}
	if got := NormalizedEntropy([]int{7}); got != 0 {
		t.Errorf("single-category normalized entropy = %v, want 0", got)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]int{5, 5, 5, 5}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("uniform Gini = %v, want 0", got)
	}
	concentrated := Gini([]int{0, 0, 0, 100})
	if concentrated < 0.7 {
		t.Errorf("concentrated Gini = %v, want high", concentrated)
	}
	if got := Gini(nil); got != 0 {
		t.Errorf("empty Gini = %v", got)
	}
	if got := Gini([]int{0, 0}); got != 0 {
		t.Errorf("all-zero Gini = %v", got)
	}
}

func TestTopShareByCount(t *testing.T) {
	counts := []int{50, 30, 15, 5}
	if got := TopShareByCount(counts, 1); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("top-1 share = %v, want 0.5", got)
	}
	if got := TopShareByCount(counts, 2); !almostEqual(got, 0.8, 1e-12) {
		t.Errorf("top-2 share = %v, want 0.8", got)
	}
	if got := TopShareByCount(counts, 10); !almostEqual(got, 1, 1e-12) {
		t.Errorf("top-all share = %v, want 1", got)
	}
	if got := TopShareByCount(counts, 0); got != 0 {
		t.Errorf("top-0 share = %v, want 0", got)
	}
}

func TestSparsity(t *testing.T) {
	m := [][]float64{{0, 1}, {0, 0}}
	if got := Sparsity(m); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("Sparsity = %v, want 0.75", got)
	}
	if got := Sparsity(nil); got != 0 {
		t.Errorf("empty Sparsity = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(h.Counts) != 5 {
		t.Fatalf("bins = %d", len(h.Counts))
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d, want 10", total)
	}
	if h.Edges[0] != 0 || !almostEqual(h.Edges[5], 9, 1e-9) {
		t.Errorf("edges = %v", h.Edges)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{3, 3, 3}, 4)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("constant-sample histogram total = %d, want 3", total)
	}
	if h2 := NewHistogram(nil, 3); h2.Counts != nil {
		t.Errorf("empty histogram = %+v", h2)
	}
}

// Property: entropy is maximal for uniform distributions.
func TestEntropyUniformIsMax(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(10)
		uniform := make([]int, k)
		skewed := make([]int, k)
		total := k * 10
		for i := range uniform {
			uniform[i] = 10
		}
		remaining := total
		for i := 0; i < k-1; i++ {
			take := rng.Intn(remaining + 1)
			skewed[i] = take
			remaining -= take
		}
		skewed[k-1] = remaining
		if Entropy(skewed) > Entropy(uniform)+1e-9 {
			t.Fatalf("skewed entropy %v exceeds uniform %v (k=%d, %v)",
				Entropy(skewed), Entropy(uniform), k, skewed)
		}
	}
}

// Property: Gini is in [0, 1) and scale-invariant.
func TestGiniProperties(t *testing.T) {
	f := func(raw [6]uint8) bool {
		counts := make([]int, len(raw))
		scaled := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
			scaled[i] = int(v) * 3
		}
		g := Gini(counts)
		gs := Gini(scaled)
		return g >= 0 && g < 1 && almostEqual(g, gs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		s := Summarize(xs)
		if !(s.Q1 <= s.Median && s.Median <= s.Q3) {
			t.Fatalf("quantiles not monotone: q1=%v med=%v q3=%v", s.Q1, s.Median, s.Q3)
		}
		if s.Min > s.Q1 || s.Q3 > s.Max {
			t.Fatalf("quantiles outside range: %+v", s)
		}
	}
}
