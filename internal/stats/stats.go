// Package stats implements the data characterization step of
// ADA-HEALTH: statistical descriptors modelling a dataset's
// distribution (sparseness, frequency skew, entropy, concentration)
// that downstream components use to decide which transformations,
// partial-mining strategies and end-goals are viable.
package stats

import (
	"math"
	"sort"
)

// Summary holds the usual moments and order statistics of a sample.
type Summary struct {
	N        int     `json:"n"`
	Mean     float64 `json:"mean"`
	Std      float64 `json:"std"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Median   float64 `json:"median"`
	Q1       float64 `json:"q1"`
	Q3       float64 `json:"q3"`
	Skewness float64 `json:"skewness"`
	Kurtosis float64 `json:"kurtosis"` // excess kurtosis
}

// Summarize computes a Summary of xs. It returns the zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n}
	sum := 0.0
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)

	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - s.Mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= float64(n)
	m3 /= float64(n)
	m4 /= float64(n)
	s.Std = math.Sqrt(m2)
	if m2 > 0 {
		s.Skewness = m3 / math.Pow(m2, 1.5)
		s.Kurtosis = m4/(m2*m2) - 3
	}

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.Q1 = Quantile(sorted, 0.25)
	s.Q3 = Quantile(sorted, 0.75)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation. It returns 0 for empty input.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Entropy returns the Shannon entropy (bits) of a discrete
// distribution given by non-negative counts. Zero counts contribute
// nothing; an all-zero input yields 0.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// NormalizedEntropy returns Entropy(counts) / log2(k) where k is the
// number of categories with capacity to occur (len(counts)); 1 means
// uniform, 0 means fully concentrated. Returns 0 when k < 2.
func NormalizedEntropy(counts []int) float64 {
	if len(counts) < 2 {
		return 0
	}
	return Entropy(counts) / math.Log2(float64(len(counts)))
}

// Gini returns the Gini concentration coefficient of non-negative
// counts, in [0, 1): 0 for a perfectly uniform distribution, →1 for
// total concentration on a single category.
func Gini(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	total := 0.0
	for i, c := range counts {
		sorted[i] = float64(c)
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	sort.Float64s(sorted)
	// G = (2 Σ_i i·x_i) / (n Σ x) - (n+1)/n with 1-based i.
	weighted := 0.0
	for i, x := range sorted {
		weighted += float64(i+1) * x
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

// TopShareByCount returns the fraction of total mass covered by the
// top `k` largest counts.
func TopShareByCount(counts []int, k int) float64 {
	if k <= 0 || len(counts) == 0 {
		return 0
	}
	if k > len(counts) {
		k = len(counts)
	}
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total, top := 0, 0
	for i, c := range sorted {
		total += c
		if i < k {
			top += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// Sparsity returns the fraction of zero entries in a dense matrix. A
// matrix with no cells has sparsity 0.
func Sparsity(rows [][]float64) float64 {
	cells, zeros := 0, 0
	for _, r := range rows {
		cells += len(r)
		for _, v := range r {
			if v == 0 {
				zeros++
			}
		}
	}
	if cells == 0 {
		return 0
	}
	return float64(zeros) / float64(cells)
}

// Histogram counts xs into nbins equal-width bins over [min,max].
// Edges returns the nbins+1 bin boundaries.
type Histogram struct {
	Counts []int
	Edges  []float64
}

// NewHistogram builds a histogram with nbins equal-width bins spanning
// the sample range. Returns an empty histogram for empty input or
// nbins < 1.
func NewHistogram(xs []float64, nbins int) Histogram {
	if len(xs) == 0 || nbins < 1 {
		return Histogram{}
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	h := Histogram{Counts: make([]int, nbins), Edges: make([]float64, nbins+1)}
	width := (max - min) / float64(nbins)
	if width == 0 {
		width = 1
	}
	for i := range h.Edges {
		h.Edges[i] = min + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - min) / width)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h
}
