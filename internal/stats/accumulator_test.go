package stats

import (
	"math/rand"
	"reflect"
	"testing"

	"adahealth/internal/dataset"
	"adahealth/internal/synth"
)

type appendBatch struct {
	exams    []dataset.ExamType
	patients []dataset.Patient
	records  []dataset.Record
}

// splitLog carves a finished log into a randomized append schedule
// (records in runs, exam types/patients registered at first reference,
// occasional early zero-record registrations, trailing never-referenced
// registrations) — the same shape the stream layer feeds Accumulator.
func splitLog(l *dataset.Log, rng *rand.Rand) []appendBatch {
	examOf := make(map[string]dataset.ExamType, len(l.Exams))
	for _, e := range l.Exams {
		examOf[e.Code] = e
	}
	patientOf := make(map[string]dataset.Patient, len(l.Patients))
	for _, p := range l.Patients {
		patientOf[p.ID] = p
	}
	regE := make(map[string]bool)
	regP := make(map[string]bool)

	var out []appendBatch
	n := len(l.Records)
	nextEarly := 0
	for i := 0; i < n; {
		j := i + 1 + rng.Intn(1+n/4)
		if j > n {
			j = n
		}
		var b appendBatch
		for rng.Intn(3) == 0 && nextEarly < len(l.Patients) {
			p := l.Patients[nextEarly]
			nextEarly++
			if !regP[p.ID] {
				regP[p.ID] = true
				b.patients = append(b.patients, p)
			}
		}
		for _, r := range l.Records[i:j] {
			if !regE[r.ExamCode] {
				regE[r.ExamCode] = true
				b.exams = append(b.exams, examOf[r.ExamCode])
			}
			if !regP[r.PatientID] {
				regP[r.PatientID] = true
				b.patients = append(b.patients, patientOf[r.PatientID])
			}
		}
		b.records = append(b.records, l.Records[i:j]...)
		out = append(out, b)
		i = j
	}
	var tail appendBatch
	for _, e := range l.Exams {
		if !regE[e.Code] {
			tail.exams = append(tail.exams, e)
		}
	}
	for _, p := range l.Patients {
		if !regP[p.ID] {
			tail.patients = append(tail.patients, p)
		}
	}
	if len(tail.exams) > 0 || len(tail.patients) > 0 {
		out = append(out, tail)
	}
	return out
}

// TestAccumulatorEquivalentToCharacterize is the maintenance property:
// across randomized append schedules, at every append boundary, the
// incrementally maintained descriptor is bit-for-bit equal
// (reflect.DeepEqual, floats included) to Characterize on the
// equivalent accumulated log.
func TestAccumulatorEquivalentToCharacterize(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := synth.SmallConfig()
		cfg.Seed = seed
		cfg.NumPatients = 70
		cfg.TargetRecords = 700
		cfg.NumExamTypes = 16
		full, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batches := splitLog(full, rand.New(rand.NewSource(seed^0x5eed)))

		acc := dataset.NewLog(full.Name)
		inc := NewAccumulator(full.Name)
		for bi, b := range batches {
			for _, e := range b.exams {
				if err := acc.AddExam(e); err != nil {
					t.Fatal(err)
				}
			}
			for _, p := range b.patients {
				if err := acc.AddPatient(p); err != nil {
					t.Fatal(err)
				}
			}
			for _, r := range b.records {
				if err := acc.AddRecord(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := inc.Add(b.exams, b.patients, b.records); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, bi, err)
			}
			want := Characterize(acc)
			got := inc.Descriptor()
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d: descriptor diverged after batch %d/%d:\nwant %+v\ngot  %+v",
					seed, bi+1, len(batches), want, got)
			}
		}
	}
}

// TestAccumulatorRejectsInvalidBatch: a rejected batch leaves the
// descriptor untouched.
func TestAccumulatorRejectsInvalidBatch(t *testing.T) {
	cfg := synth.SmallConfig()
	cfg.NumPatients = 30
	cfg.TargetRecords = 200
	cfg.NumExamTypes = 12
	full, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewAccumulator(full.Name)
	if err := inc.Add(full.Exams, full.Patients, full.Records); err != nil {
		t.Fatal(err)
	}
	before := inc.Descriptor()
	cases := []appendBatch{
		{exams: []dataset.ExamType{full.Exams[0]}},
		{patients: []dataset.Patient{full.Patients[0]}},
		{records: []dataset.Record{{PatientID: "nope", ExamCode: full.Exams[0].Code}}},
		{records: []dataset.Record{{PatientID: full.Patients[0].ID, ExamCode: "nope"}}},
	}
	for i, b := range cases {
		if err := inc.Add(b.exams, b.patients, b.records); err == nil {
			t.Errorf("case %d: invalid batch accepted", i)
		}
		if got := inc.Descriptor(); !reflect.DeepEqual(before, got) {
			t.Errorf("case %d: descriptor mutated by rejected batch", i)
		}
	}
}
