package stats

import (
	"fmt"
	"sort"
	"time"

	"adahealth/internal/dataset"
)

// Accumulator maintains descriptor statistics under append-only growth
// of an examination log, without rescanning the accumulated records.
// It mirrors exactly the accumulation orders Characterize uses —
// records-per-patient and exam-frequency multisets sorted before any
// floating-point sum, visit sizes in patient-registration-then-day
// order, ages in patient registration order — so Descriptor() is
// bit-for-bit equal to Characterize on the equivalent accumulated log
// at every append boundary (reflect.DeepEqual; property-tested).
type Accumulator struct {
	name       string
	numRecords int

	ages     []float64 // patient registration order
	patients []*accPatient
	idIdx    map[string]int

	freq map[string]int // records per exam code (0 at registration)

	nz               int // distinct (patient, exam) pairs
	minDate, maxDate time.Time
}

type accPatient struct {
	count int                        // records
	days  map[string]map[string]bool // day "2006-01-02" → distinct codes
	seen  map[string]bool            // distinct exam codes
}

// NewAccumulator returns an empty accumulator for the named dataset.
func NewAccumulator(name string) *Accumulator {
	return &Accumulator{
		name:  name,
		idIdx: make(map[string]int),
		freq:  make(map[string]int),
	}
}

// NumPatients reports the number of accumulated patients.
func (a *Accumulator) NumPatients() int { return len(a.patients) }

// NumRecords reports the number of accumulated records.
func (a *Accumulator) NumRecords() int { return a.numRecords }

// Add applies one validated batch: new exam types and patients plus
// records referencing registered ids. The batch is fully validated
// before any state mutates, mirroring dataset.Log's append semantics.
func (a *Accumulator) Add(exams []dataset.ExamType, patients []dataset.Patient, records []dataset.Record) error {
	newCodes := make(map[string]bool, len(exams))
	for _, e := range exams {
		if _, dup := a.freq[e.Code]; dup || newCodes[e.Code] {
			return fmt.Errorf("stats: accumulate: duplicate exam type %q", e.Code)
		}
		newCodes[e.Code] = true
	}
	newIDs := make(map[string]bool, len(patients))
	for _, p := range patients {
		if _, dup := a.idIdx[p.ID]; dup || newIDs[p.ID] {
			return fmt.Errorf("stats: accumulate: duplicate patient %q", p.ID)
		}
		newIDs[p.ID] = true
	}
	for _, r := range records {
		if _, ok := a.idIdx[r.PatientID]; !ok && !newIDs[r.PatientID] {
			return fmt.Errorf("stats: accumulate: record references unknown patient %q", r.PatientID)
		}
		if _, ok := a.freq[r.ExamCode]; !ok && !newCodes[r.ExamCode] {
			return fmt.Errorf("stats: accumulate: record references unknown exam %q", r.ExamCode)
		}
	}

	for _, e := range exams {
		a.freq[e.Code] = 0
	}
	for _, p := range patients {
		a.idIdx[p.ID] = len(a.patients)
		a.patients = append(a.patients, &accPatient{
			days: make(map[string]map[string]bool),
			seen: make(map[string]bool),
		})
		a.ages = append(a.ages, float64(p.Age))
	}
	for _, r := range records {
		p := a.patients[a.idIdx[r.PatientID]]
		p.count++
		day := r.Date.Format("2006-01-02")
		set := p.days[day]
		if set == nil {
			set = make(map[string]bool)
			p.days[day] = set
		}
		set[r.ExamCode] = true
		if !p.seen[r.ExamCode] {
			p.seen[r.ExamCode] = true
			a.nz++
		}
		a.freq[r.ExamCode]++
		if a.numRecords == 0 {
			a.minDate, a.maxDate = r.Date, r.Date
		} else {
			if r.Date.Before(a.minDate) {
				a.minDate = r.Date
			}
			if r.Date.After(a.maxDate) {
				a.maxDate = r.Date
			}
		}
		a.numRecords++
	}
	return nil
}

// Descriptor materializes the descriptor of the accumulated log.
func (a *Accumulator) Descriptor() Descriptor {
	d := Descriptor{
		DatasetName:  a.name,
		NumPatients:  len(a.patients),
		NumRecords:   a.numRecords,
		NumExamTypes: len(a.freq),
	}

	rp := make([]float64, 0, len(a.patients))
	for _, p := range a.patients {
		rp = append(rp, float64(p.count))
	}
	sort.Float64s(rp)
	d.RecordsPerPatient = Summarize(rp)

	// Visit sizes in the order Visits() emits them: patient
	// registration order, then day (the day keys sort the same
	// lexicographically as their parsed dates chronologically).
	var vs []float64
	for _, p := range a.patients {
		days := make([]string, 0, len(p.days))
		for day := range p.days {
			days = append(days, day)
		}
		sort.Strings(days)
		for _, day := range days {
			vs = append(vs, float64(len(p.days[day])))
		}
	}
	d.NumVisits = len(vs)
	d.ExamsPerVisit = Summarize(vs)

	d.Age = Summarize(a.ages)

	counts := make([]int, 0, len(a.freq))
	for _, c := range a.freq {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	d.FrequencyEntropy = Entropy(counts)
	d.FrequencyEntropyNorm = NormalizedEntropy(counts)
	d.FrequencyGini = Gini(counts)
	d.Top20Coverage = TopShareByCount(counts, (len(counts)+4)/5)
	d.Top40Coverage = TopShareByCount(counts, (2*len(counts)+4)/5)

	cells := len(a.patients) * len(a.freq)
	if cells > 0 {
		d.VSMSparsity = 1 - float64(a.nz)/float64(cells)
	}
	if a.numRecords > 0 {
		d.SpanDays = int(a.maxDate.Sub(a.minDate).Hours()/24) + 1
	}
	return d
}
