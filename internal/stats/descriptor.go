package stats

import (
	"sort"

	"adahealth/internal/dataset"
)

// Descriptor is the statistical characterization of an examination log
// that ADA-HEALTH stores in the K-DB (collection 3 of the paper's data
// model) and feeds to the end-goal feasibility rules.
type Descriptor struct {
	DatasetName  string `json:"dataset_name"`
	NumPatients  int    `json:"num_patients"`
	NumRecords   int    `json:"num_records"`
	NumExamTypes int    `json:"num_exam_types"`
	NumVisits    int    `json:"num_visits"`

	// RecordsPerPatient summarizes how many exams each patient took.
	RecordsPerPatient Summary `json:"records_per_patient"`
	// ExamsPerVisit summarizes the visit (transaction) sizes.
	ExamsPerVisit Summary `json:"exams_per_visit"`
	// Age summarizes the patient age distribution.
	Age Summary `json:"age"`

	// Frequency skew of the exam-type distribution.
	FrequencyEntropy     float64 `json:"frequency_entropy"`      // bits
	FrequencyEntropyNorm float64 `json:"frequency_entropy_norm"` // / log2(#types)
	FrequencyGini        float64 `json:"frequency_gini"`
	// Top20Coverage / Top40Coverage: fraction of records covered by the
	// top 20% / 40% most frequent exam types — the quantities the
	// paper's horizontal partial mining pivots on (≈0.70 / ≈0.85).
	Top20Coverage float64 `json:"top20_coverage"`
	Top40Coverage float64 `json:"top40_coverage"`

	// VSMSparsity is the fraction of zero cells in the patient ×
	// exam-type count matrix ("inherently sparse distribution").
	VSMSparsity float64 `json:"vsm_sparsity"`

	// SpanDays is the length of the observation window in days
	// (inclusive of both endpoints; 0 for an empty log).
	SpanDays int `json:"span_days"`

	// HasOutcomeLabels records whether the dataset carries treatment
	// outcome labels. Examination logs do not; the flag exists so the
	// end-goal feasibility rules can gate supervised goals.
	HasOutcomeLabels bool `json:"has_outcome_labels"`
}

// Characterize computes the full Descriptor of a log. The VSM sparsity
// is computed from the count matrix implied by the log without
// materializing it densely.
func Characterize(l *dataset.Log) Descriptor {
	d := Descriptor{
		DatasetName:  l.Name,
		NumPatients:  l.NumPatients(),
		NumRecords:   l.NumRecords(),
		NumExamTypes: l.NumExamTypes(),
	}

	// RecordsPerPatient and ExamFrequencies are maps: sort the values
	// before any floating-point accumulation so the summaries are
	// bit-for-bit reproducible run to run (Go randomizes map iteration
	// order, and the higher-moment and entropy sums are not exact, so
	// an arbitrary order perturbs the last ulp).
	perPatient := l.RecordsPerPatient()
	rp := make([]float64, 0, len(perPatient))
	for _, c := range perPatient {
		rp = append(rp, float64(c))
	}
	sort.Float64s(rp)
	d.RecordsPerPatient = Summarize(rp)

	visits := l.Visits()
	d.NumVisits = len(visits)
	vs := make([]float64, len(visits))
	for i, v := range visits {
		vs[i] = float64(len(v.ExamCodes))
	}
	d.ExamsPerVisit = Summarize(vs)

	ages := make([]float64, len(l.Patients))
	for i, p := range l.Patients {
		ages[i] = float64(p.Age)
	}
	d.Age = Summarize(ages)

	freqMap := l.ExamFrequencies()
	counts := make([]int, 0, len(freqMap))
	for _, c := range freqMap {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	d.FrequencyEntropy = Entropy(counts)
	d.FrequencyEntropyNorm = NormalizedEntropy(counts)
	d.FrequencyGini = Gini(counts)
	d.Top20Coverage = TopShareByCount(counts, (len(counts)+4)/5)
	d.Top40Coverage = TopShareByCount(counts, (2*len(counts)+4)/5)

	// Sparsity of the patient × exam count matrix: non-zero cells are
	// the distinct (patient, exam) pairs.
	type cell struct{ p, e string }
	nz := make(map[cell]bool, l.NumRecords())
	for _, r := range l.Records {
		nz[cell{r.PatientID, r.ExamCode}] = true
	}
	cells := l.NumPatients() * l.NumExamTypes()
	if cells > 0 {
		d.VSMSparsity = 1 - float64(len(nz))/float64(cells)
	}

	if min, max, ok := l.TimeSpan(); ok {
		d.SpanDays = int(max.Sub(min).Hours()/24) + 1
	}
	return d
}
