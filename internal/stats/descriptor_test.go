package stats

import (
	"testing"
	"time"

	"adahealth/internal/dataset"
)

func descriptorLog(t *testing.T) *dataset.Log {
	t.Helper()
	l := dataset.NewLog("desc")
	for _, c := range []string{"A", "B", "C", "D"} {
		if err := l.AddExam(dataset.ExamType{Code: c, Name: c}); err != nil {
			t.Fatal(err)
		}
	}
	for i, age := range []int{30, 50, 70} {
		if err := l.AddPatient(dataset.Patient{ID: string(rune('P')) + string(rune('1'+i)), Age: age}); err != nil {
			t.Fatal(err)
		}
	}
	day := func(d int) time.Time {
		return time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, d)
	}
	recs := []dataset.Record{
		{PatientID: "P1", ExamCode: "A", Date: day(0)},
		{PatientID: "P1", ExamCode: "A", Date: day(1)},
		{PatientID: "P1", ExamCode: "B", Date: day(1)},
		{PatientID: "P2", ExamCode: "A", Date: day(2)},
		{PatientID: "P2", ExamCode: "C", Date: day(2)},
		{PatientID: "P3", ExamCode: "A", Date: day(3)},
	}
	for _, r := range recs {
		if err := l.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestCharacterizeCounts(t *testing.T) {
	d := Characterize(descriptorLog(t))
	if d.NumPatients != 3 || d.NumRecords != 6 || d.NumExamTypes != 4 {
		t.Errorf("counts = %d/%d/%d", d.NumPatients, d.NumRecords, d.NumExamTypes)
	}
	if d.NumVisits != 4 {
		t.Errorf("visits = %d, want 4", d.NumVisits)
	}
}

func TestCharacterizeSparsity(t *testing.T) {
	d := Characterize(descriptorLog(t))
	// Non-zero cells: P1×{A,B}, P2×{A,C}, P3×{A} = 5 of 12.
	want := 1 - 5.0/12.0
	if diff := d.VSMSparsity - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sparsity = %v, want %v", d.VSMSparsity, want)
	}
}

func TestCharacterizeAges(t *testing.T) {
	d := Characterize(descriptorLog(t))
	if d.Age.Min != 30 || d.Age.Max != 70 || d.Age.Mean != 50 {
		t.Errorf("age summary = %+v", d.Age)
	}
}

func TestCharacterizeFrequencySkew(t *testing.T) {
	d := Characterize(descriptorLog(t))
	// A dominates (4 of 6 records): Gini must be positive, normalized
	// entropy below 1, and top-20% coverage nontrivial.
	if d.FrequencyGini <= 0 {
		t.Errorf("Gini = %v, want > 0", d.FrequencyGini)
	}
	if d.FrequencyEntropyNorm >= 1 {
		t.Errorf("normalized entropy = %v, want < 1", d.FrequencyEntropyNorm)
	}
	if d.Top20Coverage <= 0 {
		t.Errorf("top-20%% coverage = %v, want > 0", d.Top20Coverage)
	}
	if d.Top40Coverage < d.Top20Coverage {
		t.Errorf("top-40%% (%v) < top-20%% (%v)", d.Top40Coverage, d.Top20Coverage)
	}
}

func TestCharacterizeEmptyLog(t *testing.T) {
	l := dataset.NewLog("empty")
	d := Characterize(l)
	if d.NumPatients != 0 || d.NumRecords != 0 || d.VSMSparsity != 0 {
		t.Errorf("empty descriptor = %+v", d)
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	// Characterize draws per-patient and per-exam counts out of maps;
	// without a deterministic ordering before the floating-point
	// accumulations (entropy, skewness, kurtosis), Go's randomized map
	// iteration perturbs the last ulp between runs. Repeated calls
	// must agree bit for bit.
	l := descriptorLog(t)
	first := Characterize(l)
	for i := 0; i < 30; i++ {
		if got := Characterize(l); got != first {
			t.Fatalf("run %d differs:\n%+v\nvs\n%+v", i, got, first)
		}
	}
}
