package stats

import (
	"sort"
	"time"

	"adahealth/internal/dataset"
)

// DemandPoint is the examination volume of one calendar month.
type DemandPoint struct {
	Year  int `json:"year"`
	Month int `json:"month"`
	Count int `json:"count"`
}

// MonthlyDemand aggregates record volume per calendar month, the
// series behind the resource-planning end-goal ("planning resource
// allocation and reduce costs"). Months inside the observation window
// with no records are included with count 0.
func MonthlyDemand(l *dataset.Log) []DemandPoint {
	min, max, ok := l.TimeSpan()
	if !ok {
		return nil
	}
	type ym struct{ y, m int }
	counts := map[ym]int{}
	for _, r := range l.Records {
		counts[ym{r.Date.Year(), int(r.Date.Month())}]++
	}
	var out []DemandPoint
	cur := time.Date(min.Year(), min.Month(), 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(max.Year(), max.Month(), 1, 0, 0, 0, 0, time.UTC)
	for !cur.After(end) {
		key := ym{cur.Year(), int(cur.Month())}
		out = append(out, DemandPoint{Year: key.y, Month: key.m, Count: counts[key]})
		cur = cur.AddDate(0, 1, 0)
	}
	return out
}

// DemandByCategory aggregates monthly volume per exam category,
// giving the per-department view a hospital administrator plans with.
func DemandByCategory(l *dataset.Log) map[string][]DemandPoint {
	min, max, ok := l.TimeSpan()
	if !ok {
		return nil
	}
	catOf := map[string]string{}
	for _, e := range l.Exams {
		catOf[e.Code] = e.Category
	}
	type key struct {
		cat  string
		y, m int
	}
	counts := map[key]int{}
	cats := map[string]bool{}
	for _, r := range l.Records {
		c := catOf[r.ExamCode]
		cats[c] = true
		counts[key{c, r.Date.Year(), int(r.Date.Month())}]++
	}
	catList := make([]string, 0, len(cats))
	for c := range cats {
		catList = append(catList, c)
	}
	sort.Strings(catList)

	out := map[string][]DemandPoint{}
	for _, c := range catList {
		cur := time.Date(min.Year(), min.Month(), 1, 0, 0, 0, 0, time.UTC)
		end := time.Date(max.Year(), max.Month(), 1, 0, 0, 0, 0, time.UTC)
		for !cur.After(end) {
			out[c] = append(out[c], DemandPoint{
				Year:  cur.Year(),
				Month: int(cur.Month()),
				Count: counts[key{c, cur.Year(), int(cur.Month())}],
			})
			cur = cur.AddDate(0, 1, 0)
		}
	}
	return out
}

// PeakToMeanRatio summarizes the burstiness of a demand series: max
// monthly volume over mean monthly volume (1 = perfectly flat). It
// returns 0 for an empty series.
func PeakToMeanRatio(series []DemandPoint) float64 {
	if len(series) == 0 {
		return 0
	}
	sum, max := 0, 0
	for _, p := range series {
		sum += p.Count
		if p.Count > max {
			max = p.Count
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(series))
	return float64(max) / mean
}
