package eval

import (
	"fmt"
	"math"
	"math/rand"

	"adahealth/internal/vec"
)

// SSE is the sum of squared errors over all points with respect to the
// centroid of their assigned cluster — the cohesion index of
// Section IV-A ("the smaller the SSE, the better the quality").
func SSE(data [][]float64, centroids [][]float64, labels []int) (float64, error) {
	if len(data) != len(labels) {
		return 0, fmt.Errorf("eval: %d points but %d labels", len(data), len(labels))
	}
	sse := 0.0
	for i, x := range data {
		c := labels[i]
		if c < 0 || c >= len(centroids) {
			return 0, fmt.Errorf("eval: label %d out of range [0,%d)", c, len(centroids))
		}
		sse += vec.SquaredEuclidean(x, centroids[c])
	}
	return sse, nil
}

// OverallSimilarity is the paper's interestingness metric for partial
// mining (Section IV-A, citing Tan/Steinbach/Kumar): the cluster
// cohesiveness computed as the average pairwise cosine similarity of
// members within each cluster, weighted by cluster size:
//
//	OS = Σ_r (n_r / n) · (1/n_r²) Σ_{i,j ∈ r} cos(x_i, x_j)
//
// Using L2-normalized rows, the inner double sum equals ||c_r||² where
// c_r is the mean of the normalized member vectors, which is how it is
// computed here (O(n·d) instead of O(n²·d)).
func OverallSimilarity(data [][]float64, labels []int, k int) (float64, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("eval: no data")
	}
	if len(data) != len(labels) {
		return 0, fmt.Errorf("eval: %d points but %d labels", len(data), len(labels))
	}
	d := len(data[0])
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, d)
	}
	counts := make([]int, k)
	unit := make([]float64, d)
	for i, x := range data {
		c := labels[i]
		if c < 0 || c >= k {
			return 0, fmt.Errorf("eval: label %d out of range [0,%d)", c, k)
		}
		norm := vec.Norm(x)
		if norm == 0 {
			// A zero vector contributes zero similarity with everyone;
			// count it but add nothing.
			counts[c]++
			continue
		}
		for j, v := range x {
			unit[j] = v / norm
		}
		vec.AddTo(sums[c], unit)
		counts[c]++
	}
	n := float64(len(data))
	os := 0.0
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		nc := float64(counts[c])
		meanNormSq := 0.0
		for _, v := range sums[c] {
			meanNormSq += (v / nc) * (v / nc)
		}
		os += nc / n * meanNormSq
	}
	return os, nil
}

// Silhouette returns the mean silhouette coefficient over (a sample
// of) the points: (b-a)/max(a,b) where a is the mean intra-cluster
// distance and b the mean distance to the nearest other cluster.
// sample <= 0 evaluates every point. Clusters with one member score 0.
func Silhouette(data [][]float64, labels []int, k int, sample int, seed int64) (float64, error) {
	n := len(data)
	if n == 0 {
		return 0, fmt.Errorf("eval: no data")
	}
	if n != len(labels) {
		return 0, fmt.Errorf("eval: %d points but %d labels", n, len(labels))
	}
	sizes := make([]int, k)
	for _, c := range labels {
		if c < 0 || c >= k {
			return 0, fmt.Errorf("eval: label %d out of range [0,%d)", c, k)
		}
		sizes[c]++
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if sample > 0 && sample < n {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(n, func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		idx = idx[:sample]
	}

	total := 0.0
	for _, i := range idx {
		ci := labels[i]
		if sizes[ci] < 2 {
			continue // silhouette of singleton defined as 0
		}
		sumTo := make([]float64, k)
		for j, xj := range data {
			if j == i {
				continue
			}
			sumTo[labels[j]] += vec.Euclidean(data[i], xj)
		}
		a := sumTo[ci] / float64(sizes[ci]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == ci || sizes[c] == 0 {
				continue
			}
			if m := sumTo[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue // only one non-empty cluster
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(len(idx)), nil
}
