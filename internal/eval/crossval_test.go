package eval

import (
	"math/rand"
	"testing"

	"adahealth/internal/classify"
)

func TestKFoldPartition(t *testing.T) {
	folds, err := KFold(103, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		if len(f) < 10 || len(f) > 11 {
			t.Errorf("fold size = %d, want 10 or 11", len(f))
		}
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 103 {
		t.Errorf("covered %d indices, want 103", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("index %d appears %d times", i, n)
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFold(10, 1, 0); err == nil {
		t.Error("accepted k=1")
	}
	if _, err := KFold(3, 5, 0); err == nil {
		t.Error("accepted n < k")
	}
}

func TestStratifiedKFoldPreservesProportions(t *testing.T) {
	// 80/20 class balance across 10 folds of 10.
	y := make([]int, 100)
	for i := 80; i < 100; i++ {
		y[i] = 1
	}
	folds, err := StratifiedKFold(y, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range folds {
		ones := 0
		for _, i := range f {
			if y[i] == 1 {
				ones++
			}
		}
		if ones != 2 {
			t.Errorf("fold %d has %d minority samples, want 2", fi, ones)
		}
	}
}

func TestStratifiedKFoldCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	y := make([]int, 57)
	for i := range y {
		y[i] = rng.Intn(4)
	}
	folds, err := StratifiedKFold(y, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(y) {
		t.Errorf("covered %d, want %d", len(seen), len(y))
	}
}

func TestCrossValidateSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var X [][]float64
	var y []int
	for c := 0; c < 3; c++ {
		for i := 0; i < 40; i++ {
			X = append(X, []float64{float64(c)*6 + rng.NormFloat64()*0.4, rng.NormFloat64()})
			y = append(y, c)
		}
	}
	res, err := CrossValidate(func() classify.Classifier {
		return classify.NewDecisionTree(classify.TreeOptions{MaxDepth: 6})
	}, X, y, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folds != 10 || len(res.PerFold) != 10 {
		t.Errorf("folds = %d / %d", res.Folds, len(res.PerFold))
	}
	if res.Metrics.Accuracy < 0.95 {
		t.Errorf("CV accuracy = %.3f, want >= 0.95 on separable data", res.Metrics.Accuracy)
	}
	if res.Confusion.Total() != len(X) {
		t.Errorf("pooled confusion total = %d, want %d", res.Confusion.Total(), len(X))
	}
}

func TestCrossValidateMajorityBaseline(t *testing.T) {
	// Majority baseline accuracy equals the majority class share.
	X := make([][]float64, 100)
	y := make([]int, 100)
	for i := range X {
		X[i] = []float64{float64(i)}
		if i < 70 {
			y[i] = 0
		} else {
			y[i] = 1
		}
	}
	res, err := CrossValidate(func() classify.Classifier { return classify.NewMajority() }, X, y, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Metrics.Accuracy, 0.70, 0.02) {
		t.Errorf("majority CV accuracy = %.3f, want ≈0.70", res.Metrics.Accuracy)
	}
}

func TestCrossValidateDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var X [][]float64
	var y []int
	for i := 0; i < 60; i++ {
		X = append(X, []float64{rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, i%2)
	}
	factory := func() classify.Classifier {
		return classify.NewDecisionTree(classify.TreeOptions{MaxDepth: 4})
	}
	a, err := CrossValidate(factory, X, y, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(factory, X, y, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Errorf("same seed, different metrics: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	factory := func() classify.Classifier { return classify.NewMajority() }
	if _, err := CrossValidate(factory, [][]float64{{1}}, []int{0, 1}, 2, 0); err == nil {
		t.Error("accepted X/y mismatch")
	}
	if _, err := CrossValidate(factory, [][]float64{{1}}, []int{0}, 5, 0); err == nil {
		t.Error("accepted n < k")
	}
}
