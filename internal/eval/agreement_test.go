package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestPurity(t *testing.T) {
	pred := []int{0, 0, 0, 1, 1, 1}
	truth := []int{5, 5, 5, 9, 9, 9}
	got, err := Purity(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("purity of perfect partition = %v", got)
	}
	mixed := []int{0, 0, 1, 1, 0, 1}
	got, err = Purity(mixed, truth)
	if err != nil {
		t.Fatal(err)
	}
	if got >= 1 || got <= 0.5 {
		t.Errorf("mixed purity = %v, want in (0.5, 1)", got)
	}
	if _, err := Purity([]int{1}, []int{1, 2}); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := Purity(nil, nil); err == nil {
		t.Error("accepted empty input")
	}
}

func TestARIIdenticalAndPermuted(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	got, err := AdjustedRandIndex(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI(self) = %v", got)
	}
	// Same partition under a label permutation still scores 1.
	b := []int{5, 5, 3, 3, 0, 0}
	got, err = AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI(permuted) = %v, want 1", got)
	}
}

func TestARIRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 2000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(4)
		b[i] = rng.Intn(4)
	}
	got, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.05 {
		t.Errorf("ARI of independent labelings = %v, want ≈0", got)
	}
}

func TestARISymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]int, 100)
	b := make([]int, 100)
	for i := range a {
		a[i] = rng.Intn(3)
		b[i] = rng.Intn(5)
	}
	x, _ := AdjustedRandIndex(a, b)
	y, _ := AdjustedRandIndex(b, a)
	if math.Abs(x-y) > 1e-12 {
		t.Errorf("ARI not symmetric: %v vs %v", x, y)
	}
}

func TestNMIIdenticalAndRandom(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	got, err := NormalizedMutualInfo(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("NMI(self) = %v", got)
	}
	rng := rand.New(rand.NewSource(9))
	n := 3000
	x := make([]int, n)
	y := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(4)
		y[i] = rng.Intn(4)
	}
	got, err = NormalizedMutualInfo(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.05 {
		t.Errorf("NMI of independent labelings = %v, want ≈0", got)
	}
}

func TestNMIBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(200)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(1 + rng.Intn(6))
			b[i] = rng.Intn(1 + rng.Intn(6))
		}
		got, err := NormalizedMutualInfo(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got < 0 || got > 1 {
			t.Fatalf("NMI = %v outside [0,1]", got)
		}
	}
}

func TestDaviesBouldin(t *testing.T) {
	// Tight, well-separated clusters → small DB; loose overlapping
	// clusters → larger DB.
	tight := [][]float64{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}}
	cents := [][]float64{{0.05, 0}, {10.05, 0}}
	labels := []int{0, 0, 1, 1}
	small, err := DaviesBouldin(tight, cents, labels)
	if err != nil {
		t.Fatal(err)
	}
	loose := [][]float64{{0, 0}, {4, 0}, {6, 0}, {10, 0}}
	big, err := DaviesBouldin(loose, cents, labels)
	if err != nil {
		t.Fatal(err)
	}
	if small >= big {
		t.Errorf("DB tight %v >= loose %v", small, big)
	}
	if _, err := DaviesBouldin(tight, [][]float64{{0, 0}}, labels); err == nil {
		t.Error("accepted single cluster")
	}
	if _, err := DaviesBouldin(tight, cents, []int{0}); err == nil {
		t.Error("accepted label mismatch")
	}
}
