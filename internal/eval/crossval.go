package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"adahealth/internal/classify"
)

// KFold partitions indices 0..n-1 into k shuffled folds whose sizes
// differ by at most one.
func KFold(n, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k-fold needs k >= 2, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("eval: %d samples cannot fill %d folds", n, k)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	return folds, nil
}

// StratifiedKFold partitions indices into k folds preserving the class
// proportions of y as closely as possible.
func StratifiedKFold(y []int, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k-fold needs k >= 2, got %d", k)
	}
	if len(y) < k {
		return nil, fmt.Errorf("eval: %d samples cannot fill %d folds", len(y), k)
	}
	rng := rand.New(rand.NewSource(seed))
	// Bucket indices per class. Labels are small dense ints (cluster
	// ids), so slice buckets beat a map; negative labels fall back to
	// an overflow map to keep the old permissive behaviour. Classes
	// are processed in ascending label order (negatives first), the
	// same order the previous sorted-map implementation used, so the
	// folds are bit-for-bit unchanged.
	maxClass := -1
	for _, c := range y {
		if c > maxClass {
			maxClass = c
		}
	}
	var byClass [][]int
	if maxClass >= 0 {
		byClass = make([][]int, maxClass+1)
	}
	var negClasses []int
	byNeg := map[int][]int{}
	for i, c := range y {
		if c >= 0 {
			byClass[c] = append(byClass[c], i)
			continue
		}
		if _, seen := byNeg[c]; !seen {
			negClasses = append(negClasses, c)
		}
		byNeg[c] = append(byNeg[c], i)
	}
	sort.Ints(negClasses)
	folds := make([][]int, k)
	next := 0
	assign := func(idx []int) {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for _, i := range idx {
			folds[next%k] = append(folds[next%k], i)
			next++
		}
	}
	for _, c := range negClasses {
		assign(byNeg[c])
	}
	for _, idx := range byClass {
		if len(idx) > 0 {
			assign(idx)
		}
	}
	return folds, nil
}

// CVResult aggregates cross-validation metrics: the pooled confusion
// matrix over all held-out folds plus the derived summary.
type CVResult struct {
	Folds     int
	Metrics   Metrics
	Confusion *Confusion
	PerFold   []Metrics
}

// CrossValidate trains factory-built classifiers on k-1 folds and
// evaluates on the held-out fold, pooling predictions into a single
// confusion matrix (the protocol of Section IV-B: "10-fold cross
// validation was used to evaluate the classification model").
// Stratified splitting keeps rare clusters represented in every fold.
func CrossValidate(factory classify.Factory, X [][]float64, y []int, k int, seed int64) (*CVResult, error) {
	return CrossValidateWithOrder(factory, X, y, k, seed, nil)
}

// CrossValidateWithOrder is CrossValidate with a caller-shared
// presorted column view of X (classify.NewColumnOrder), the reuse
// hook for sweeps that cross-validate many label vectors over one
// matrix: the presort depends only on X, so one build serves every K
// and every fold. A nil ord is built internally on demand. ord must
// have been built from this exact X.
func CrossValidateWithOrder(factory classify.Factory, X [][]float64, y []int, k int, seed int64, ord *classify.ColumnOrder) (*CVResult, error) {
	if len(X) != len(y) {
		return nil, fmt.Errorf("eval: %d rows but %d labels", len(X), len(y))
	}
	folds, err := StratifiedKFold(y, k, seed)
	if err != nil {
		return nil, err
	}
	classes := 0
	for _, c := range y {
		if c+1 > classes {
			classes = c + 1
		}
	}
	pooled := NewConfusion(classes)
	res := &CVResult{Folds: k}

	// Classifiers implementing classify.SubsetFitter (the decision
	// tree, the random forest) train against one shared presorted view
	// of X instead of re-sorting a materialized 90% copy for every
	// fold, and the single factory-built instance is refit per fold —
	// FitSubset fully resets the model, so one instance serves all k
	// folds without reallocating its fit state.
	var subsetClf classify.SubsetFitter

	inTest := make([]bool, len(X))
	trainRows := make([]int, 0, len(X))
	for f, test := range folds {
		for i := range inTest {
			inTest[i] = false
		}
		for _, i := range test {
			inTest[i] = true
		}
		var clf classify.Classifier
		if subsetClf != nil {
			clf = subsetClf.(classify.Classifier)
		} else {
			clf = factory()
		}
		if sf, ok := clf.(classify.SubsetFitter); ok {
			subsetClf = sf
			if ord == nil {
				var err error
				if ord, err = classify.NewColumnOrder(X); err != nil {
					return nil, fmt.Errorf("eval: presorting: %w", err)
				}
			}
			trainRows = trainRows[:0]
			for i := range X {
				if !inTest[i] {
					trainRows = append(trainRows, i)
				}
			}
			if err := sf.FitSubset(X, y, trainRows, ord); err != nil {
				return nil, fmt.Errorf("eval: fold %d fit: %w", f, err)
			}
		} else {
			var trainX [][]float64
			var trainY []int
			for i := range X {
				if !inTest[i] {
					trainX = append(trainX, X[i])
					trainY = append(trainY, y[i])
				}
			}
			if err := clf.Fit(trainX, trainY); err != nil {
				return nil, fmt.Errorf("eval: fold %d fit: %w", f, err)
			}
		}
		foldConf := NewConfusion(classes)
		for _, i := range test {
			pred := clf.Predict(X[i])
			if pred < 0 || pred >= classes {
				pred = 0 // defensive: clamp stray predictions
			}
			if err := pooled.Add(y[i], pred); err != nil {
				return nil, err
			}
			if err := foldConf.Add(y[i], pred); err != nil {
				return nil, err
			}
		}
		res.PerFold = append(res.PerFold, MetricsOf(foldConf))
	}
	res.Confusion = pooled
	res.Metrics = MetricsOf(pooled)
	return res, nil
}
