package eval

import (
	"fmt"
	"math/rand"

	"adahealth/internal/classify"
)

// KFold partitions indices 0..n-1 into k shuffled folds whose sizes
// differ by at most one.
func KFold(n, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k-fold needs k >= 2, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("eval: %d samples cannot fill %d folds", n, k)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	return folds, nil
}

// StratifiedKFold partitions indices into k folds preserving the class
// proportions of y as closely as possible.
func StratifiedKFold(y []int, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k-fold needs k >= 2, got %d", k)
	}
	if len(y) < k {
		return nil, fmt.Errorf("eval: %d samples cannot fill %d folds", len(y), k)
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := map[int][]int{}
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	// Deterministic class order.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	folds := make([][]int, k)
	next := 0
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for _, i := range idx {
			folds[next%k] = append(folds[next%k], i)
			next++
		}
	}
	return folds, nil
}

// CVResult aggregates cross-validation metrics: the pooled confusion
// matrix over all held-out folds plus the derived summary.
type CVResult struct {
	Folds     int
	Metrics   Metrics
	Confusion *Confusion
	PerFold   []Metrics
}

// CrossValidate trains factory-built classifiers on k-1 folds and
// evaluates on the held-out fold, pooling predictions into a single
// confusion matrix (the protocol of Section IV-B: "10-fold cross
// validation was used to evaluate the classification model").
// Stratified splitting keeps rare clusters represented in every fold.
func CrossValidate(factory classify.Factory, X [][]float64, y []int, k int, seed int64) (*CVResult, error) {
	if len(X) != len(y) {
		return nil, fmt.Errorf("eval: %d rows but %d labels", len(X), len(y))
	}
	folds, err := StratifiedKFold(y, k, seed)
	if err != nil {
		return nil, err
	}
	classes := 0
	for _, c := range y {
		if c+1 > classes {
			classes = c + 1
		}
	}
	pooled := NewConfusion(classes)
	res := &CVResult{Folds: k}

	// Classifiers implementing classify.SubsetFitter (the decision
	// tree) train against one shared presorted view of X instead of
	// re-sorting a materialized 90% copy for every fold.
	var ord *classify.ColumnOrder

	inTest := make([]bool, len(X))
	for f, test := range folds {
		for i := range inTest {
			inTest[i] = false
		}
		for _, i := range test {
			inTest[i] = true
		}
		clf := factory()
		if sf, ok := clf.(classify.SubsetFitter); ok {
			if ord == nil {
				var err error
				if ord, err = classify.NewColumnOrder(X); err != nil {
					return nil, fmt.Errorf("eval: presorting: %w", err)
				}
			}
			trainRows := make([]int, 0, len(X)-len(test))
			for i := range X {
				if !inTest[i] {
					trainRows = append(trainRows, i)
				}
			}
			if err := sf.FitSubset(X, y, trainRows, ord); err != nil {
				return nil, fmt.Errorf("eval: fold %d fit: %w", f, err)
			}
		} else {
			var trainX [][]float64
			var trainY []int
			for i := range X {
				if !inTest[i] {
					trainX = append(trainX, X[i])
					trainY = append(trainY, y[i])
				}
			}
			if err := clf.Fit(trainX, trainY); err != nil {
				return nil, fmt.Errorf("eval: fold %d fit: %w", f, err)
			}
		}
		foldConf := NewConfusion(classes)
		for _, i := range test {
			pred := clf.Predict(X[i])
			if pred < 0 || pred >= classes {
				pred = 0 // defensive: clamp stray predictions
			}
			if err := pooled.Add(y[i], pred); err != nil {
				return nil, err
			}
			if err := foldConf.Add(y[i], pred); err != nil {
				return nil, err
			}
		}
		res.PerFold = append(res.PerFold, MetricsOf(foldConf))
	}
	res.Confusion = pooled
	res.Metrics = MetricsOf(pooled)
	return res, nil
}
