// Package eval implements the interestingness and quality metrics that
// drive ADA-HEALTH's data-analytics optimization: the SSE and overall
// similarity clustering indexes, classification metrics (accuracy,
// macro precision/recall/F1) with k-fold cross-validation for the
// robustness assessment of cluster sets, and silhouette scores.
package eval

import (
	"fmt"
)

// Confusion is a K×K confusion matrix; rows are true classes, columns
// predicted classes.
type Confusion struct {
	K int
	M [][]int
	n int
}

// NewConfusion returns an empty K-class confusion matrix.
func NewConfusion(k int) *Confusion {
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	return &Confusion{K: k, M: m}
}

// Add records one (true, predicted) observation.
func (c *Confusion) Add(truth, pred int) error {
	if truth < 0 || truth >= c.K || pred < 0 || pred >= c.K {
		return fmt.Errorf("eval: label out of range: truth=%d pred=%d K=%d", truth, pred, c.K)
	}
	c.M[truth][pred]++
	c.n++
	return nil
}

// Total reports the number of recorded observations.
func (c *Confusion) Total() int { return c.n }

// Accuracy returns the fraction of correct predictions (0 when empty).
func (c *Confusion) Accuracy() float64 {
	if c.n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.K; i++ {
		correct += c.M[i][i]
	}
	return float64(correct) / float64(c.n)
}

// PrecisionPerClass returns precision for each class; classes never
// predicted get precision 0.
func (c *Confusion) PrecisionPerClass() []float64 {
	out := make([]float64, c.K)
	for j := 0; j < c.K; j++ {
		pred := 0
		for i := 0; i < c.K; i++ {
			pred += c.M[i][j]
		}
		if pred > 0 {
			out[j] = float64(c.M[j][j]) / float64(pred)
		}
	}
	return out
}

// RecallPerClass returns recall for each class; classes with no true
// instances get recall 0.
func (c *Confusion) RecallPerClass() []float64 {
	out := make([]float64, c.K)
	for i := 0; i < c.K; i++ {
		actual := 0
		for j := 0; j < c.K; j++ {
			actual += c.M[i][j]
		}
		if actual > 0 {
			out[i] = float64(c.M[i][i]) / float64(actual)
		}
	}
	return out
}

// MacroPrecision averages per-class precision over classes that occur
// (as truth or prediction); this is the "average precision" column of
// the paper's Table I.
func (c *Confusion) MacroPrecision() float64 {
	return macroAvg(c.PrecisionPerClass(), c.activeClasses())
}

// MacroRecall averages per-class recall ("average recall" in Table I).
func (c *Confusion) MacroRecall() float64 {
	return macroAvg(c.RecallPerClass(), c.activeClasses())
}

// MacroF1 averages the per-class harmonic means of precision and
// recall.
func (c *Confusion) MacroF1() float64 {
	p := c.PrecisionPerClass()
	r := c.RecallPerClass()
	f := make([]float64, c.K)
	for i := range f {
		if p[i]+r[i] > 0 {
			f[i] = 2 * p[i] * r[i] / (p[i] + r[i])
		}
	}
	return macroAvg(f, c.activeClasses())
}

// activeClasses marks classes that appear at least once as truth.
func (c *Confusion) activeClasses() []bool {
	active := make([]bool, c.K)
	for i := 0; i < c.K; i++ {
		for j := 0; j < c.K; j++ {
			if c.M[i][j] > 0 {
				active[i] = true
				break
			}
		}
	}
	return active
}

func macroAvg(vals []float64, active []bool) float64 {
	sum, n := 0.0, 0
	for i, v := range vals {
		if active[i] {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Metrics bundles the classification quality numbers reported in
// Table I of the paper.
type Metrics struct {
	Accuracy       float64 `json:"accuracy"`
	MacroPrecision float64 `json:"macro_precision"`
	MacroRecall    float64 `json:"macro_recall"`
	MacroF1        float64 `json:"macro_f1"`
}

// MetricsOf extracts the summary metrics from a confusion matrix.
func MetricsOf(c *Confusion) Metrics {
	return Metrics{
		Accuracy:       c.Accuracy(),
		MacroPrecision: c.MacroPrecision(),
		MacroRecall:    c.MacroRecall(),
		MacroF1:        c.MacroF1(),
	}
}
