package eval

import (
	"math"
	"math/rand"
	"testing"

	"adahealth/internal/vec"
)

func TestSSEKnownValue(t *testing.T) {
	data := [][]float64{{0, 0}, {2, 0}, {10, 0}, {12, 0}}
	centroids := [][]float64{{1, 0}, {11, 0}}
	labels := []int{0, 0, 1, 1}
	got, err := SSE(data, centroids, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("SSE = %v, want 4", got)
	}
}

func TestSSEErrors(t *testing.T) {
	if _, err := SSE([][]float64{{1}}, [][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("accepted label/data mismatch")
	}
	if _, err := SSE([][]float64{{1}}, [][]float64{{1}}, []int{5}); err == nil {
		t.Error("accepted out-of-range label")
	}
}

// naiveOverallSimilarity is the O(n²) definition from the textbook:
// weighted average of within-cluster mean pairwise cosine similarity.
func naiveOverallSimilarity(data [][]float64, labels []int, k int) float64 {
	n := len(data)
	os := 0.0
	for c := 0; c < k; c++ {
		var members [][]float64
		for i, l := range labels {
			if l == c {
				members = append(members, data[i])
			}
		}
		if len(members) == 0 {
			continue
		}
		sum := 0.0
		for _, a := range members {
			for _, b := range members {
				sum += vec.CosineSimilarity(a, b)
			}
		}
		m := float64(len(members))
		os += m / float64(n) * (sum / (m * m))
	}
	return os
}

func TestOverallSimilarityMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(40)
		d := 2 + rng.Intn(6)
		k := 1 + rng.Intn(4)
		data := make([][]float64, n)
		labels := make([]int, n)
		for i := range data {
			data[i] = make([]float64, d)
			for j := range data[i] {
				data[i][j] = math.Abs(rng.NormFloat64()) // count-like
			}
			labels[i] = rng.Intn(k)
		}
		got, err := OverallSimilarity(data, labels, k)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveOverallSimilarity(data, labels, k)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: OS fast %v vs naive %v", trial, got, want)
		}
	}
}

func TestOverallSimilarityPerfectClusters(t *testing.T) {
	// Identical vectors within each cluster → OS = 1.
	data := [][]float64{{1, 0}, {1, 0}, {0, 2}, {0, 2}}
	labels := []int{0, 0, 1, 1}
	got, err := OverallSimilarity(data, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("OS = %v, want 1", got)
	}
}

func TestOverallSimilarityOrthogonalMess(t *testing.T) {
	// One cluster of mutually orthogonal vectors: OS = 1/m.
	data := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	labels := []int{0, 0, 0}
	got, err := OverallSimilarity(data, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("OS = %v, want 1/3", got)
	}
}

func TestOverallSimilarityZeroVector(t *testing.T) {
	data := [][]float64{{0, 0}, {1, 0}}
	labels := []int{0, 0}
	got, err := OverallSimilarity(data, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Mean of normalized = [0.5, 0]; ||c||² = 0.25.
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("OS with zero vector = %v, want 0.25", got)
	}
}

func TestOverallSimilarityErrors(t *testing.T) {
	if _, err := OverallSimilarity(nil, nil, 1); err == nil {
		t.Error("accepted empty data")
	}
	if _, err := OverallSimilarity([][]float64{{1}}, []int{3}, 2); err == nil {
		t.Error("accepted out-of-range label")
	}
}

func TestSilhouetteSeparatedVsMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var data [][]float64
	var labels []int
	for c := 0; c < 2; c++ {
		for i := 0; i < 30; i++ {
			data = append(data, []float64{float64(c)*20 + rng.NormFloat64(), rng.NormFloat64()})
			labels = append(labels, c)
		}
	}
	good, err := Silhouette(data, labels, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.8 {
		t.Errorf("silhouette of separated clusters = %v, want > 0.8", good)
	}
	// Random labels on the same data should score much worse.
	bad := make([]int, len(labels))
	for i := range bad {
		bad[i] = rng.Intn(2)
	}
	worse, err := Silhouette(data, bad, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if worse >= good {
		t.Errorf("random labels silhouette %v >= true labels %v", worse, good)
	}
}

func TestSilhouetteSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var data [][]float64
	var labels []int
	for c := 0; c < 3; c++ {
		for i := 0; i < 50; i++ {
			data = append(data, []float64{float64(c)*15 + rng.NormFloat64(), rng.NormFloat64()})
			labels = append(labels, c)
		}
	}
	full, err := Silhouette(data, labels, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Silhouette(data, labels, 3, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-sampled) > 0.15 {
		t.Errorf("sampled silhouette %v far from full %v", sampled, full)
	}
}

func TestSilhouetteSingleCluster(t *testing.T) {
	data := [][]float64{{1}, {2}, {3}}
	labels := []int{0, 0, 0}
	got, err := Silhouette(data, labels, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("single-cluster silhouette = %v, want 0", got)
	}
}
