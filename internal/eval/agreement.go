package eval

import (
	"fmt"
	"math"
)

// Purity measures how well predicted clusters align with reference
// labels: each cluster is credited with its majority reference class.
// 1 means every cluster is pure; the metric is biased upward for many
// small clusters (use ARI/NMI for chance-corrected comparisons).
func Purity(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("eval: %d predictions but %d references", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("eval: empty labelings")
	}
	counts := map[[2]int]int{}
	clusters := map[int]bool{}
	for i := range pred {
		counts[[2]int{pred[i], truth[i]}]++
		clusters[pred[i]] = true
	}
	correct := 0
	for c := range clusters {
		best := 0
		for key, n := range counts {
			if key[0] == c && n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred)), nil
}

// contingency builds the cluster × class contingency table and the
// marginals of two labelings.
func contingency(a, b []int) (table map[[2]int]int, am, bm map[int]int) {
	table = map[[2]int]int{}
	am = map[int]int{}
	bm = map[int]int{}
	for i := range a {
		table[[2]int{a[i], b[i]}]++
		am[a[i]]++
		bm[b[i]]++
	}
	return table, am, bm
}

// AdjustedRandIndex is the chance-corrected agreement between two
// labelings, in [-1, 1]: 1 for identical partitions, ≈0 for random
// agreement.
func AdjustedRandIndex(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: %d vs %d labels", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return 0, fmt.Errorf("eval: empty labelings")
	}
	table, am, bm := contingency(a, b)
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }

	var sumComb, sumA, sumB float64
	for _, v := range table {
		sumComb += choose2(v)
	}
	for _, v := range am {
		sumA += choose2(v)
	}
	for _, v := range bm {
		sumB += choose2(v)
	}
	total := choose2(n)
	expected := sumA * sumB / total
	maxIndex := (sumA + sumB) / 2
	if maxIndex == expected {
		return 1, nil // both partitions trivial (all-one-cluster etc.)
	}
	return (sumComb - expected) / (maxIndex - expected), nil
}

// NormalizedMutualInfo is the mutual information between two labelings
// normalized by the mean of their entropies, in [0, 1].
func NormalizedMutualInfo(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: %d vs %d labels", len(a), len(b))
	}
	n := float64(len(a))
	if n == 0 {
		return 0, fmt.Errorf("eval: empty labelings")
	}
	table, am, bm := contingency(a, b)

	entropy := func(m map[int]int) float64 {
		h := 0.0
		for _, v := range m {
			p := float64(v) / n
			if p > 0 {
				h -= p * math.Log(p)
			}
		}
		return h
	}
	ha, hb := entropy(am), entropy(bm)
	if ha == 0 && hb == 0 {
		return 1, nil // both trivial and identical in structure
	}
	mi := 0.0
	for key, v := range table {
		pxy := float64(v) / n
		px := float64(am[key[0]]) / n
		py := float64(bm[key[1]]) / n
		if pxy > 0 {
			mi += pxy * math.Log(pxy/(px*py))
		}
	}
	denom := (ha + hb) / 2
	if denom == 0 {
		return 0, nil
	}
	nmi := mi / denom
	if nmi > 1 {
		nmi = 1 // guard floating error
	}
	if nmi < 0 {
		nmi = 0
	}
	return nmi, nil
}

// DaviesBouldin is the Davies-Bouldin internal validity index of a
// clustering (lower is better): the mean over clusters of the worst
// ratio of within-cluster scatter sums to centroid separation.
func DaviesBouldin(data [][]float64, centroids [][]float64, labels []int) (float64, error) {
	k := len(centroids)
	if k < 2 {
		return 0, fmt.Errorf("eval: Davies-Bouldin needs >= 2 clusters, got %d", k)
	}
	if len(data) != len(labels) {
		return 0, fmt.Errorf("eval: %d points but %d labels", len(data), len(labels))
	}
	scatter := make([]float64, k)
	counts := make([]int, k)
	for i, x := range data {
		c := labels[i]
		if c < 0 || c >= k {
			return 0, fmt.Errorf("eval: label %d out of range [0,%d)", c, k)
		}
		d := 0.0
		for j, v := range x {
			diff := v - centroids[c][j]
			d += diff * diff
		}
		scatter[c] += math.Sqrt(d)
		counts[c]++
	}
	for c := range scatter {
		if counts[c] > 0 {
			scatter[c] /= float64(counts[c])
		}
	}
	db := 0.0
	active := 0
	for i := 0; i < k; i++ {
		if counts[i] == 0 {
			continue
		}
		worst := 0.0
		for j := 0; j < k; j++ {
			if i == j || counts[j] == 0 {
				continue
			}
			sep := 0.0
			for d := range centroids[i] {
				diff := centroids[i][d] - centroids[j][d]
				sep += diff * diff
			}
			sep = math.Sqrt(sep)
			if sep == 0 {
				continue
			}
			if r := (scatter[i] + scatter[j]) / sep; r > worst {
				worst = r
			}
		}
		db += worst
		active++
	}
	if active == 0 {
		return 0, fmt.Errorf("eval: no populated clusters")
	}
	return db / float64(active), nil
}
