package eval

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConfusionPerfect(t *testing.T) {
	c := NewConfusion(3)
	for i := 0; i < 3; i++ {
		for n := 0; n < 5; n++ {
			if err := c.Add(i, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := c.Accuracy(); got != 1 {
		t.Errorf("accuracy = %v", got)
	}
	if got := c.MacroPrecision(); got != 1 {
		t.Errorf("macro precision = %v", got)
	}
	if got := c.MacroRecall(); got != 1 {
		t.Errorf("macro recall = %v", got)
	}
	if got := c.MacroF1(); got != 1 {
		t.Errorf("macro F1 = %v", got)
	}
}

func TestConfusionKnownValues(t *testing.T) {
	// Binary case:
	//            pred0 pred1
	// true0        8     2
	// true1        3     7
	c := NewConfusion(2)
	add := func(truth, pred, n int) {
		for i := 0; i < n; i++ {
			if err := c.Add(truth, pred); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(0, 0, 8)
	add(0, 1, 2)
	add(1, 0, 3)
	add(1, 1, 7)

	if got := c.Accuracy(); !approx(got, 0.75, 1e-12) {
		t.Errorf("accuracy = %v, want 0.75", got)
	}
	p := c.PrecisionPerClass()
	if !approx(p[0], 8.0/11, 1e-12) || !approx(p[1], 7.0/9, 1e-12) {
		t.Errorf("precision = %v", p)
	}
	r := c.RecallPerClass()
	if !approx(r[0], 0.8, 1e-12) || !approx(r[1], 0.7, 1e-12) {
		t.Errorf("recall = %v", r)
	}
	if got := c.MacroRecall(); !approx(got, 0.75, 1e-12) {
		t.Errorf("macro recall = %v, want 0.75", got)
	}
	wantMacroP := (8.0/11 + 7.0/9) / 2
	if got := c.MacroPrecision(); !approx(got, wantMacroP, 1e-12) {
		t.Errorf("macro precision = %v, want %v", got, wantMacroP)
	}
}

func TestConfusionRangeErrors(t *testing.T) {
	c := NewConfusion(2)
	if err := c.Add(2, 0); err == nil {
		t.Error("accepted out-of-range truth")
	}
	if err := c.Add(0, -1); err == nil {
		t.Error("accepted negative prediction")
	}
}

func TestConfusionEmpty(t *testing.T) {
	c := NewConfusion(3)
	if c.Accuracy() != 0 || c.MacroPrecision() != 0 || c.MacroRecall() != 0 {
		t.Error("empty confusion matrix yields nonzero metrics")
	}
}

func TestConfusionInactiveClassExcluded(t *testing.T) {
	// Class 2 never occurs as truth: macro averages skip it rather
	// than dragging the mean to zero.
	c := NewConfusion(3)
	c.Add(0, 0)
	c.Add(0, 0)
	c.Add(1, 1)
	c.Add(1, 0)
	mr := c.MacroRecall()
	want := (1.0 + 0.5) / 2
	if !approx(mr, want, 1e-12) {
		t.Errorf("macro recall = %v, want %v (inactive class skipped)", mr, want)
	}
}

func TestMetricsOf(t *testing.T) {
	c := NewConfusion(2)
	c.Add(0, 0)
	c.Add(1, 1)
	m := MetricsOf(c)
	if m.Accuracy != 1 || m.MacroF1 != 1 {
		t.Errorf("MetricsOf = %+v", m)
	}
}
