package ranking

import (
	"testing"

	"adahealth/internal/knowledge"
)

func pattern(id string, supportFrac float64) knowledge.Item {
	return knowledge.Item{
		ID: id, Kind: knowledge.KindPattern,
		Metrics:  map[string]float64{"support_frac": supportFrac, "size": 2},
		Tags:     []string{"tag-" + id},
		Interest: knowledge.InterestUnknown,
	}
}

func rule(id string, conf, lift float64) knowledge.Item {
	return knowledge.Item{
		ID: id, Kind: knowledge.KindRule,
		Metrics:  map[string]float64{"confidence": conf, "lift": lift},
		Interest: knowledge.InterestUnknown,
	}
}

func TestRankOrdersBySupport(t *testing.T) {
	r := NewRanker()
	items := []knowledge.Item{pattern("low", 0.05), pattern("high", 0.5), pattern("mid", 0.2)}
	ranked := r.Rank(items)
	if ranked[0].ID != "high" || ranked[2].ID != "low" {
		t.Errorf("order = %v, %v, %v", ranked[0].ID, ranked[1].ID, ranked[2].ID)
	}
	// Input untouched.
	if items[0].ID != "low" {
		t.Error("Rank mutated its input")
	}
}

func TestInterestLabelAffectsScore(t *testing.T) {
	r := NewRanker()
	a := pattern("a", 0.2)
	b := pattern("b", 0.2)
	b.Interest = knowledge.InterestHigh
	if r.Score(b) <= r.Score(a) {
		t.Errorf("high-interest item does not outscore unknown: %v vs %v",
			r.Score(b), r.Score(a))
	}
	c := pattern("c", 0.2)
	c.Interest = knowledge.InterestLow
	if r.Score(c) >= r.Score(a) {
		t.Errorf("low-interest item does not score below unknown")
	}
}

func TestFeedbackShiftsKind(t *testing.T) {
	r := NewRanker()
	p := pattern("p", 0.2)
	ru := rule("r", 0.9, 2)
	before := r.Rank([]knowledge.Item{p, ru})
	// Dislike patterns repeatedly: the rule should move to the top.
	for i := 0; i < 10; i++ {
		r.Feedback(p, knowledge.InterestLow)
	}
	after := r.Rank([]knowledge.Item{p, ru})
	if before[0].ID == "p" && after[0].ID == "p" {
		t.Error("repeated negative feedback on patterns did not demote them")
	}
	if after[0].ID != "r" {
		t.Errorf("after feedback top = %s, want r", after[0].ID)
	}
}

func TestFeedbackShiftsTags(t *testing.T) {
	r := NewRanker()
	a := pattern("a", 0.2) // tag-a
	b := pattern("b", 0.2) // tag-b
	for i := 0; i < 5; i++ {
		r.Feedback(a, knowledge.InterestHigh)
	}
	if r.Score(a) <= r.Score(b) {
		t.Errorf("positively tagged item does not outscore: %v vs %v", r.Score(a), r.Score(b))
	}
}

func TestFeedbackMediumNeutral(t *testing.T) {
	r := NewRanker()
	p := pattern("p", 0.2)
	before := r.Score(p)
	r.Feedback(p, knowledge.InterestMedium)
	if after := r.Score(p); after != before {
		t.Errorf("medium feedback changed score: %v -> %v", before, after)
	}
}

func TestWeightsClamped(t *testing.T) {
	r := NewRanker()
	p := pattern("p", 0.2)
	for i := 0; i < 100; i++ {
		r.Feedback(p, knowledge.InterestHigh)
	}
	if w := r.weightOfKind(knowledge.KindPattern); w > 10 {
		t.Errorf("kind weight unbounded: %v", w)
	}
	for i := 0; i < 200; i++ {
		r.Feedback(p, knowledge.InterestLow)
	}
	if w := r.weightOfKind(knowledge.KindPattern); w < 0.1 {
		t.Errorf("kind weight under-clamped: %v", w)
	}
}

func TestClusterBaseScorePrefersMidSizedGroups(t *testing.T) {
	r := NewRanker()
	mk := func(id string, fraction float64) knowledge.Item {
		return knowledge.Item{ID: id, Kind: knowledge.KindCluster,
			Metrics: map[string]float64{"fraction": fraction}}
	}
	mid := mk("mid", 0.25)
	tiny := mk("tiny", 0.01)
	huge := mk("huge", 0.9)
	if r.Score(mid) <= r.Score(tiny) || r.Score(mid) <= r.Score(huge) {
		t.Errorf("mid-sized cluster not preferred: mid=%v tiny=%v huge=%v",
			r.Score(mid), r.Score(tiny), r.Score(huge))
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	r := NewRanker()
	a := pattern("aaa", 0.2)
	b := pattern("bbb", 0.2)
	// Same metrics and tags weight (distinct tags but both neutral).
	ranked1 := r.Rank([]knowledge.Item{b, a})
	ranked2 := r.Rank([]knowledge.Item{a, b})
	if ranked1[0].ID != ranked2[0].ID {
		t.Error("tie-break not deterministic")
	}
	if ranked1[0].ID != "aaa" {
		t.Errorf("tie-break by ID broken: %s first", ranked1[0].ID)
	}
}

func TestSessionPagingAndExhaustion(t *testing.T) {
	var items []knowledge.Item
	for i := 0; i < 25; i++ {
		items = append(items, pattern(itemID(i), float64(i)/100))
	}
	s := NewSession(items, nil, 10)
	page1 := s.Next()
	if len(page1) != 10 {
		t.Fatalf("page1 = %d items", len(page1))
	}
	if s.Remaining() != 15 {
		t.Errorf("remaining = %d, want 15", s.Remaining())
	}
	page2 := s.Next()
	page3 := s.Next()
	if len(page2) != 10 || len(page3) != 5 {
		t.Errorf("pages = %d, %d", len(page2), len(page3))
	}
	if got := s.Next(); len(got) != 0 {
		t.Errorf("exhausted session returned %d items", len(got))
	}
	// No duplicates across pages.
	seen := map[string]bool{}
	for _, p := range [][]knowledge.Item{page1, page2, page3} {
		for _, it := range p {
			if seen[it.ID] {
				t.Fatalf("item %s shown twice", it.ID)
			}
			seen[it.ID] = true
		}
	}
}

func TestSessionFeedbackAdaptsNextPage(t *testing.T) {
	// First page of patterns; rules waiting. Negative feedback on a
	// pattern must let rules jump the queue on the next page.
	var items []knowledge.Item
	for i := 0; i < 3; i++ {
		items = append(items, pattern(itemID(i), 0.9))
	}
	for i := 3; i < 6; i++ {
		items = append(items, rule(itemID(i), 0.9, 2.5))
	}
	weak := pattern("weak", 0.01)
	items = append(items, weak)

	s := NewSession(items, NewRanker(), 3)
	page1 := s.Next()
	for _, it := range page1 {
		if it.Kind != knowledge.KindPattern {
			t.Fatalf("page1 contains %v, expected patterns first", it.Kind)
		}
		if err := s.Feedback(it.ID, knowledge.InterestLow); err != nil {
			t.Fatal(err)
		}
	}
	page2 := s.Next()
	if page2[0].Kind != knowledge.KindRule {
		t.Errorf("page2 top kind = %v, want rule after negative pattern feedback",
			page2[0].Kind)
	}
}

func TestSessionFeedbackErrors(t *testing.T) {
	s := NewSession([]knowledge.Item{pattern("p", 0.5)}, nil, 5)
	if err := s.Feedback("missing", knowledge.InterestHigh); err == nil {
		t.Error("feedback on unknown item accepted")
	}
	if err := s.Feedback("p", knowledge.InterestHigh); err == nil {
		t.Error("feedback on unseen item accepted")
	}
	s.Next()
	if err := s.Feedback("p", knowledge.InterestHigh); err != nil {
		t.Errorf("feedback on seen item rejected: %v", err)
	}
}

func itemID(i int) string {
	return string(rune('a'+i/10)) + string(rune('a'+i%10))
}
