// Package ranking implements ADA-HEALTH's knowledge-navigation
// component: an interactive ranking algorithm that orders extracted
// knowledge items by estimated interestingness and dynamically adapts
// to user feedback ("based on user feedbacks, the algorithm adjusts
// the way and order knowledge items are presented", Section III).
package ranking

import (
	"fmt"
	"math"
	"sort"

	"adahealth/internal/knowledge"
)

// Ranker scores knowledge items, combining per-item quality metrics
// with multiplicative weights per kind and per tag that feedback
// updates online.
type Ranker struct {
	// LearningRate controls how strongly one feedback event shifts
	// the weights; default 0.2.
	LearningRate float64

	kindWeight map[knowledge.Kind]float64
	tagWeight  map[string]float64
}

// NewRanker returns a ranker with neutral weights.
func NewRanker() *Ranker {
	return &Ranker{
		LearningRate: 0.2,
		kindWeight:   map[knowledge.Kind]float64{},
		tagWeight:    map[string]float64{},
	}
}

// baseScore maps an item's own metrics to a quality estimate in
// roughly [0, 2].
func baseScore(it knowledge.Item) float64 {
	m := it.Metrics
	switch it.Kind {
	case knowledge.KindPattern:
		// Frequent, larger patterns first.
		return 2*m["support_frac"] + 0.1*m["size"]
	case knowledge.KindRule:
		lift := math.Min(m["lift"], 3) / 3
		return 0.5*m["confidence"] + 0.5*lift
	case knowledge.KindCluster:
		// Mid-sized groups are the interesting ones: tiny groups are
		// noise, giant groups are the uninformative bulk.
		f := m["fraction"]
		return 1 - math.Abs(f-0.25)
	case knowledge.KindClusterSet:
		return 0.6
	default:
		return 0.5
	}
}

// interestBoost converts an assigned interest label into a multiplier.
func interestBoost(i knowledge.Interest) float64 {
	switch i {
	case knowledge.InterestHigh:
		return 1.5
	case knowledge.InterestMedium:
		return 1.0
	case knowledge.InterestLow:
		return 0.3
	default:
		return 1.0
	}
}

func (r *Ranker) weightOfKind(k knowledge.Kind) float64 {
	if w, ok := r.kindWeight[k]; ok {
		return w
	}
	return 1
}

func (r *Ranker) weightOfTags(tags []string) float64 {
	if len(tags) == 0 {
		return 1
	}
	sum := 0.0
	for _, t := range tags {
		if w, ok := r.tagWeight[t]; ok {
			sum += w
		} else {
			sum += 1
		}
	}
	return sum / float64(len(tags))
}

// Score returns the current interestingness estimate of an item.
func (r *Ranker) Score(it knowledge.Item) float64 {
	return baseScore(it) * interestBoost(it.Interest) *
		r.weightOfKind(it.Kind) * r.weightOfTags(it.Tags)
}

// Rank returns the items ordered by decreasing score (ties broken by
// ID for determinism). The input slice is not modified.
func (r *Ranker) Rank(items []knowledge.Item) []knowledge.Item {
	out := append([]knowledge.Item(nil), items...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := r.Score(out[i]), r.Score(out[j])
		if si != sj {
			return si > sj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Feedback folds one user judgement into the weights: items that share
// the judged item's kind and tags move up (high) or down (low).
func (r *Ranker) Feedback(it knowledge.Item, interest knowledge.Interest) {
	lr := r.LearningRate
	if lr <= 0 {
		lr = 0.2
	}
	var factor float64
	switch interest {
	case knowledge.InterestHigh:
		factor = 1 + lr
	case knowledge.InterestLow:
		factor = 1 - lr
	default:
		return // medium feedback is neutral
	}
	r.kindWeight[it.Kind] = clampWeight(r.weightOfKind(it.Kind) * factor)
	for _, t := range it.Tags {
		w := 1.0
		if cur, ok := r.tagWeight[t]; ok {
			w = cur
		}
		r.tagWeight[t] = clampWeight(w * factor)
	}
}

func clampWeight(w float64) float64 {
	if w < 0.1 {
		return 0.1
	}
	if w > 10 {
		return 10
	}
	return w
}

// Session is an interactive navigation over a fixed item set: the user
// pages through ranked items, gives feedback, and subsequent pages are
// re-ranked under the updated weights.
type Session struct {
	ranker   *Ranker
	items    map[string]knowledge.Item
	seen     map[string]bool
	pageSize int
}

// NewSession starts a navigation session. pageSize <= 0 defaults to 10.
func NewSession(items []knowledge.Item, ranker *Ranker, pageSize int) *Session {
	if ranker == nil {
		ranker = NewRanker()
	}
	if pageSize <= 0 {
		pageSize = 10
	}
	s := &Session{
		ranker:   ranker,
		items:    make(map[string]knowledge.Item, len(items)),
		seen:     map[string]bool{},
		pageSize: pageSize,
	}
	for _, it := range items {
		s.items[it.ID] = it
	}
	return s
}

// Next returns the next page of unseen items under the current
// ranking, marking them seen. An empty page means the session is
// exhausted.
func (s *Session) Next() []knowledge.Item {
	var unseen []knowledge.Item
	for _, it := range s.items {
		if !s.seen[it.ID] {
			unseen = append(unseen, it)
		}
	}
	ranked := s.ranker.Rank(unseen)
	if len(ranked) > s.pageSize {
		ranked = ranked[:s.pageSize]
	}
	for _, it := range ranked {
		s.seen[it.ID] = true
	}
	return ranked
}

// Remaining reports how many items have not been shown yet.
func (s *Session) Remaining() int {
	n := 0
	for id := range s.items {
		if !s.seen[id] {
			n++
		}
	}
	return n
}

// Feedback records the user's judgement of a shown item and adapts the
// ranking for subsequent pages.
func (s *Session) Feedback(itemID string, interest knowledge.Interest) error {
	it, ok := s.items[itemID]
	if !ok {
		return fmt.Errorf("ranking: unknown item %q", itemID)
	}
	if !s.seen[itemID] {
		return fmt.Errorf("ranking: feedback on unseen item %q", itemID)
	}
	s.ranker.Feedback(it, interest)
	it.Interest = interest
	s.items[itemID] = it
	return nil
}
