package fpm

import (
	"fmt"
	"sort"
	"sync"

	"adahealth/internal/vec"
)

// Transactions is a shared, integer-encoded transaction database: the
// one-time normalization (dedup + sort), item dictionary and global
// frequency counts that every mining run needs, built once and reused
// across algorithms and support thresholds — e.g. the A2 ablation
// sweeps three thresholds over one encoding instead of
// re-materializing baskets per run.
//
// Item ids are assigned in lexicographic name order, so id comparisons
// reproduce string comparisons exactly and the int-encoded miners emit
// the same itemsets as the string-based entry points.
type Transactions struct {
	dict  []string // item id → name, lexicographically ordered
	ptr   []int    // transaction i occupies items[ptr[i]:ptr[i+1]]
	items []int32  // sorted unique item ids per transaction, flat
	freq  []int    // per-id transaction frequency

	normOnce sync.Once
	norm     [][]string // lazily decoded normalized view (Apriori path)
}

// NewTransactions normalizes and encodes string baskets once. Empty
// items are dropped and duplicates within a basket collapse, exactly
// as the one-shot miners normalize.
func NewTransactions(txs [][]string) *Transactions {
	// Dictionary over all distinct items, lexicographic.
	seen := map[string]int32{}
	for _, tx := range txs {
		for _, it := range tx {
			if it != "" {
				seen[it] = 0
			}
		}
	}
	dict := make([]string, 0, len(seen))
	for it := range seen {
		dict = append(dict, it)
	}
	sort.Strings(dict)
	for id, it := range dict {
		seen[it] = int32(id)
	}

	t := &Transactions{
		dict: dict,
		ptr:  make([]int, 1, len(txs)+1),
		freq: make([]int, len(dict)),
	}
	mark := make([]bool, len(dict))
	ids := make([]int32, 0, 16)
	for _, tx := range txs {
		ids = ids[:0]
		for _, it := range tx {
			if it == "" {
				continue
			}
			id := seen[it]
			if !mark[id] {
				mark[id] = true
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			mark[id] = false
			t.freq[id]++
		}
		t.items = append(t.items, ids...)
		t.ptr = append(t.ptr, len(t.items))
	}
	return t
}

// TransactionsFromCSR builds patient-level baskets straight from a CSR
// matrix (e.g. the cached vsm.Matrix.Sparse view): one basket per row,
// containing the feature names of the row's nonzero columns. No dense
// rows or string baskets are materialized in between — the CSR's
// column indices are translated to dictionary ids in one pass.
func TransactionsFromCSR(m *vec.CSRMatrix, features []string) (*Transactions, error) {
	if m == nil {
		return nil, fmt.Errorf("fpm: nil CSR matrix")
	}
	if len(features) != m.NumCols() {
		return nil, fmt.Errorf("fpm: %d feature names for %d CSR columns",
			len(features), m.NumCols())
	}
	// Dictionary in lexicographic order; colToID maps CSR columns onto
	// dictionary ids.
	dict := append([]string(nil), features...)
	sort.Strings(dict)
	nameToID := make(map[string]int32, len(dict))
	for id, it := range dict {
		if _, dup := nameToID[it]; dup {
			return nil, fmt.Errorf("fpm: duplicate feature name %q", it)
		}
		nameToID[it] = int32(id)
	}
	colToID := make([]int32, len(features))
	for col, name := range features {
		colToID[col] = nameToID[name]
	}

	n := m.NumRows()
	t := &Transactions{
		dict:  dict,
		ptr:   make([]int, 1, n+1),
		items: make([]int32, 0, m.NNZ()),
		freq:  make([]int, len(dict)),
	}
	ids := make([]int32, 0, 32)
	for i := 0; i < n; i++ {
		_, cols := m.RowView(i)
		ids = ids[:0]
		for _, c := range cols {
			ids = append(ids, colToID[c])
		}
		// Column order is ascending but dictionary order may differ.
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			t.freq[id]++
		}
		t.items = append(t.items, ids...)
		t.ptr = append(t.ptr, len(t.items))
	}
	return t, nil
}

// NumTx reports the number of transactions.
func (t *Transactions) NumTx() int { return len(t.ptr) - 1 }

// NumItems reports the dictionary size.
func (t *Transactions) NumItems() int { return len(t.dict) }

// Item returns the name behind an item id.
func (t *Transactions) Item(id int32) string { return t.dict[id] }

// tx returns the (sorted, unique) item ids of transaction i as a
// shared read-only view.
func (t *Transactions) tx(i int) []int32 { return t.items[t.ptr[i]:t.ptr[i+1]] }

// FPGrowth mines all itemsets with support >= minSupport over the
// shared encoding (see FPGrowth for the algorithm); repeated calls at
// different thresholds reuse the same dictionary, frequencies and
// encoded baskets.
func (t *Transactions) FPGrowth(minSupport int) ([]Itemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fpm: minSupport must be >= 1, got %d", minSupport)
	}
	return fpGrowthEncoded(t, minSupport), nil
}

// Apriori mines all itemsets with support >= minSupport with the
// level-wise algorithm, reusing the one cached normalized basket view
// across calls instead of re-normalizing per threshold.
func (t *Transactions) Apriori(minSupport int) ([]Itemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fpm: minSupport must be >= 1, got %d", minSupport)
	}
	t.normOnce.Do(func() {
		norm := make([][]string, t.NumTx())
		for i := range norm {
			ids := t.tx(i)
			tx := make([]string, len(ids))
			for p, id := range ids {
				tx[p] = t.dict[id]
			}
			norm[i] = tx // ids ascend ⇒ names already sorted and unique
		}
		t.norm = norm
	})
	return aprioriNorm(t.norm, minSupport), nil
}
