package fpm

import (
	"math/rand"
	"testing"
)

func TestClosedClassic(t *testing.T) {
	sets, err := FPGrowth(classic(), 2)
	if err != nil {
		t.Fatal(err)
	}
	closed := Closed(sets)
	if len(closed) >= len(sets) {
		t.Errorf("closed (%d) did not condense frequent (%d)", len(closed), len(sets))
	}
	// {beer} has support 3 and {beer, diaper} also has support 3:
	// {beer} is NOT closed.
	if _, ok := SupportOf(closed, []string{"beer"}); ok {
		t.Error("{beer} reported closed despite equal-support superset {beer,diaper}")
	}
	// {bread} has support 4; no superset reaches 4: closed.
	if _, ok := SupportOf(closed, []string{"bread"}); !ok {
		t.Error("{bread} missing from closed sets")
	}
}

// Property: closed itemsets preserve the support function — every
// frequent itemset's support equals the max support of a closed
// superset.
func TestClosedLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alphabet := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 15; trial++ {
		txs := make([][]string, 20+rng.Intn(30))
		for i := range txs {
			for j := 0; j < 1+rng.Intn(5); j++ {
				txs[i] = append(txs[i], alphabet[rng.Intn(len(alphabet))])
			}
		}
		all, err := FPGrowth(txs, 2)
		if err != nil {
			t.Fatal(err)
		}
		closed := Closed(all)
		for _, s := range all {
			best := 0
			for _, c := range closed {
				if c.Support >= s.Support && isSubset(s.Items, c.Items) && c.Support > best {
					best = c.Support
				}
			}
			if best != s.Support {
				t.Fatalf("trial %d: support of %v not recoverable from closed sets: %d vs %d",
					trial, s.Items, best, s.Support)
			}
		}
	}
}

func TestMaximalClassic(t *testing.T) {
	sets, err := FPGrowth(classic(), 2)
	if err != nil {
		t.Fatal(err)
	}
	maximal := Maximal(sets)
	closed := Closed(sets)
	if len(maximal) > len(closed) {
		t.Errorf("maximal (%d) larger than closed (%d)", len(maximal), len(closed))
	}
	// No maximal set is a subset of another frequent set.
	for _, m := range maximal {
		for _, s := range sets {
			if len(s.Items) > len(m.Items) && isSubset(m.Items, s.Items) {
				t.Errorf("maximal %v has frequent superset %v", m.Items, s.Items)
			}
		}
	}
	// Every frequent itemset is covered by some maximal superset.
	for _, s := range sets {
		covered := false
		for _, m := range maximal {
			if isSubset(s.Items, m.Items) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("frequent %v not covered by any maximal set", s.Items)
		}
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		a, b []string
		want bool
	}{
		{[]string{"a"}, []string{"a", "b"}, true},
		{[]string{"a", "c"}, []string{"a", "b", "c"}, true},
		{[]string{"a", "d"}, []string{"a", "b", "c"}, false},
		{nil, []string{"a"}, true},
		{[]string{"a"}, nil, false},
		{[]string{"a", "b"}, []string{"a", "b"}, true},
	}
	for _, c := range cases {
		if got := isSubset(c.a, c.b); got != c.want {
			t.Errorf("isSubset(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSupportOfUnsortedQuery(t *testing.T) {
	sets := []Itemset{{Items: []string{"a", "b"}, Support: 7}}
	if got, ok := SupportOf(sets, []string{"b", "a"}); !ok || got != 7 {
		t.Errorf("SupportOf unsorted = %d, %v", got, ok)
	}
	if _, ok := SupportOf(sets, []string{"z"}); ok {
		t.Error("SupportOf reported missing set")
	}
}
