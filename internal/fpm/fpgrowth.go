package fpm

import (
	"fmt"
	"sort"
)

// fpNode is one node of an FP-tree.
type fpNode struct {
	item     string
	count    int
	parent   *fpNode
	children map[string]*fpNode
	next     *fpNode // header-table chain
}

// fpTree is an FP-tree with its header table.
type fpTree struct {
	root    *fpNode
	headers map[string]*fpNode
	counts  map[string]int
}

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{children: map[string]*fpNode{}},
		headers: map[string]*fpNode{},
		counts:  map[string]int{},
	}
}

// insert adds an ordered item list with a count to the tree.
func (t *fpTree) insert(items []string, count int) {
	node := t.root
	for _, it := range items {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: map[string]*fpNode{}}
			node.children[it] = child
			// Prepend to header chain.
			child.next = t.headers[it]
			t.headers[it] = child
		}
		child.count += count
		t.counts[it] += count
		node = child
	}
}

// FPGrowth mines all itemsets with support >= minSupport using the
// FP-Growth algorithm (FP-tree plus recursive conditional trees). Its
// output is set-equal to Apriori's; it is the faster choice at low
// support thresholds.
func FPGrowth(txs [][]string, minSupport int) ([]Itemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fpm: minSupport must be >= 1, got %d", minSupport)
	}
	// Global item frequencies.
	freq := map[string]int{}
	norm := make([][]string, len(txs))
	for i, tx := range txs {
		norm[i] = normalizeTx(tx)
		for _, it := range norm[i] {
			freq[it]++
		}
	}
	order := func(items []string) []string {
		kept := items[:0]
		for _, it := range items {
			if freq[it] >= minSupport {
				kept = append(kept, it)
			}
		}
		sort.Slice(kept, func(a, b int) bool {
			if freq[kept[a]] != freq[kept[b]] {
				return freq[kept[a]] > freq[kept[b]]
			}
			return kept[a] < kept[b]
		})
		return kept
	}

	tree := newFPTree()
	for _, tx := range norm {
		ordered := order(append([]string(nil), tx...))
		if len(ordered) > 0 {
			tree.insert(ordered, 1)
		}
	}

	var result []Itemset
	mineFP(tree, nil, minSupport, &result)
	SortItemsets(result)
	return result, nil
}

// mineFP recursively mines tree, emitting itemsets suffix ∪ {item}.
func mineFP(tree *fpTree, suffix []string, minSupport int, out *[]Itemset) {
	// Deterministic item order for the recursion.
	items := make([]string, 0, len(tree.headers))
	for it := range tree.headers {
		if tree.counts[it] >= minSupport {
			items = append(items, it)
		}
	}
	sort.Strings(items)

	for _, it := range items {
		support := tree.counts[it]
		pattern := make([]string, 0, len(suffix)+1)
		pattern = append(pattern, suffix...)
		pattern = append(pattern, it)
		sorted := append([]string(nil), pattern...)
		sort.Strings(sorted)
		*out = append(*out, Itemset{Items: sorted, Support: support})

		// Conditional pattern base for `it`.
		cond := newFPTree()
		for node := tree.headers[it]; node != nil; node = node.next {
			// Path from parent up to the root, reversed.
			var path []string
			for p := node.parent; p != nil && p.item != ""; p = p.parent {
				path = append(path, p.item)
			}
			if len(path) == 0 {
				continue
			}
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			cond.insert(path, node.count)
		}
		// Prune infrequent items from the conditional tree by
		// rebuilding it with only frequent items.
		pruned := pruneFPTree(cond, minSupport)
		if len(pruned.headers) > 0 {
			mineFP(pruned, pattern, minSupport, out)
		}
	}
}

// pruneFPTree rebuilds a conditional tree keeping only items whose
// conditional support clears the threshold.
func pruneFPTree(t *fpTree, minSupport int) *fpTree {
	keep := map[string]bool{}
	for it, c := range t.counts {
		if c >= minSupport {
			keep[it] = true
		}
	}
	out := newFPTree()
	// Re-walk every root-to-node path of the old tree; enumerate leaf
	// paths by traversing children.
	var walk func(n *fpNode, path []string, pathCount int)
	walk = func(n *fpNode, path []string, pathCount int) {
		childSum := 0
		for _, c := range n.children {
			childSum += c.count
		}
		// The count attributable to paths ending at this node.
		own := n.count - childSum
		if n.item != "" && own > 0 {
			kept := make([]string, 0, len(path)+1)
			for _, it := range append(path, n.item) {
				if keep[it] {
					kept = append(kept, it)
				}
			}
			if len(kept) > 0 {
				out.insert(kept, own)
			}
		}
		next := path
		if n.item != "" {
			next = append(path, n.item)
		}
		// Deterministic child order.
		childItems := make([]string, 0, len(n.children))
		for it := range n.children {
			childItems = append(childItems, it)
		}
		sort.Strings(childItems)
		for _, it := range childItems {
			walk(n.children[it], next, 0)
		}
	}
	walk(t.root, nil, 0)
	return out
}
