package fpm

import (
	"fmt"
	"sort"
)

// fpNode is one node of an FP-tree over integer-encoded items.
type fpNode struct {
	item     int32
	count    int
	parent   *fpNode
	children map[int32]*fpNode
	next     *fpNode // header-table chain
}

// fpTree is an FP-tree with its header table. Items are dictionary ids
// of a Transactions encoding; noItem marks the root.
type fpTree struct {
	root    *fpNode
	headers map[int32]*fpNode
	counts  map[int32]int
}

const noItem int32 = -1

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{item: noItem, children: map[int32]*fpNode{}},
		headers: map[int32]*fpNode{},
		counts:  map[int32]int{},
	}
}

// insert adds an ordered item list with a count to the tree.
func (t *fpTree) insert(items []int32, count int) {
	node := t.root
	for _, it := range items {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: map[int32]*fpNode{}}
			node.children[it] = child
			// Prepend to header chain.
			child.next = t.headers[it]
			t.headers[it] = child
		}
		child.count += count
		t.counts[it] += count
		node = child
	}
}

// FPGrowth mines all itemsets with support >= minSupport using the
// FP-Growth algorithm (FP-tree plus recursive conditional trees). Its
// output is set-equal to Apriori's; it is the faster choice at low
// support thresholds.
//
// This entry point encodes the baskets first; callers mining the same
// baskets repeatedly (several support thresholds, several algorithms)
// should build a Transactions once and use its methods instead.
func FPGrowth(txs [][]string, minSupport int) ([]Itemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fpm: minSupport must be >= 1, got %d", minSupport)
	}
	return fpGrowthEncoded(NewTransactions(txs), minSupport), nil
}

// fpGrowthEncoded is the integer-item FP-Growth core. Dictionary ids
// ascend lexicographically, so frequency ties break exactly as the
// historical string implementation broke them and the emitted itemsets
// are identical.
func fpGrowthEncoded(t *Transactions, minSupport int) []Itemset {
	tree := newFPTree()
	ordered := make([]int32, 0, 16)
	for i := 0; i < t.NumTx(); i++ {
		ordered = ordered[:0]
		for _, it := range t.tx(i) {
			if t.freq[it] >= minSupport {
				ordered = append(ordered, it)
			}
		}
		// Decreasing global frequency, id (= lexicographic) ascending
		// on ties: the canonical FP-tree insertion order.
		sort.SliceStable(ordered, func(a, b int) bool {
			fa, fb := t.freq[ordered[a]], t.freq[ordered[b]]
			if fa != fb {
				return fa > fb
			}
			return ordered[a] < ordered[b]
		})
		if len(ordered) > 0 {
			tree.insert(ordered, 1)
		}
	}

	var result []Itemset
	mineFP(tree, t, nil, minSupport, &result)
	SortItemsets(result)
	return result
}

// mineFP recursively mines tree, emitting itemsets suffix ∪ {item}.
func mineFP(tree *fpTree, t *Transactions, suffix []int32, minSupport int, out *[]Itemset) {
	// Deterministic item order for the recursion.
	items := make([]int32, 0, len(tree.headers))
	for it := range tree.headers {
		if tree.counts[it] >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })

	for _, it := range items {
		support := tree.counts[it]
		pattern := make([]int32, 0, len(suffix)+1)
		pattern = append(pattern, suffix...)
		pattern = append(pattern, it)
		*out = append(*out, decodeItemset(t, pattern, support))

		// Conditional pattern base for `it`.
		cond := newFPTree()
		for node := tree.headers[it]; node != nil; node = node.next {
			// Path from parent up to the root, reversed.
			var path []int32
			for p := node.parent; p != nil && p.item != noItem; p = p.parent {
				path = append(path, p.item)
			}
			if len(path) == 0 {
				continue
			}
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			cond.insert(path, node.count)
		}
		// Prune infrequent items from the conditional tree by
		// rebuilding it with only frequent items.
		pruned := pruneFPTree(cond, minSupport)
		if len(pruned.headers) > 0 {
			mineFP(pruned, t, pattern, minSupport, out)
		}
	}
}

// decodeItemset maps a pattern of item ids back to a sorted Itemset.
func decodeItemset(t *Transactions, pattern []int32, support int) Itemset {
	items := make([]string, len(pattern))
	for i, id := range pattern {
		items[i] = t.dict[id]
	}
	sort.Strings(items)
	return Itemset{Items: items, Support: support}
}

// pruneFPTree rebuilds a conditional tree keeping only items whose
// conditional support clears the threshold.
func pruneFPTree(t *fpTree, minSupport int) *fpTree {
	keep := map[int32]bool{}
	for it, c := range t.counts {
		if c >= minSupport {
			keep[it] = true
		}
	}
	out := newFPTree()
	// Re-walk every root-to-node path of the old tree; enumerate leaf
	// paths by traversing children.
	var walk func(n *fpNode, path []int32, pathCount int)
	walk = func(n *fpNode, path []int32, pathCount int) {
		childSum := 0
		for _, c := range n.children {
			childSum += c.count
		}
		// The count attributable to paths ending at this node.
		own := n.count - childSum
		if n.item != noItem && own > 0 {
			kept := make([]int32, 0, len(path)+1)
			for _, it := range append(path, n.item) {
				if keep[it] {
					kept = append(kept, it)
				}
			}
			if len(kept) > 0 {
				out.insert(kept, own)
			}
		}
		next := path
		if n.item != noItem {
			next = append(path, n.item)
		}
		// Deterministic child order.
		childItems := make([]int32, 0, len(n.children))
		for it := range n.children {
			childItems = append(childItems, it)
		}
		sort.Slice(childItems, func(a, b int) bool { return childItems[a] < childItems[b] })
		for _, it := range childItems {
			walk(n.children[it], next, 0)
		}
	}
	walk(t.root, nil, 0)
	return out
}
