// Package fpm implements the frequent-pattern discovery substrate of
// ADA-HEALTH (the paper's reference [2], MeTA): Apriori and FP-Growth
// frequent-itemset mining over examination "baskets" (visits),
// association-rule generation, and taxonomy-aware generalized patterns
// that characterize treatments at different abstraction levels.
package fpm

import (
	"fmt"
	"sort"
	"strings"
)

// Itemset is a frequent itemset with its absolute support count.
// Items are kept sorted lexicographically.
type Itemset struct {
	Items   []string `json:"items"`
	Support int      `json:"support"`
}

// Key returns a canonical string identity for the itemset.
func (s Itemset) Key() string { return strings.Join(s.Items, "\x1f") }

func (s Itemset) String() string {
	return fmt.Sprintf("{%s} (support=%d)", strings.Join(s.Items, ", "), s.Support)
}

// normalizeTx deduplicates and sorts one transaction.
func normalizeTx(tx []string) []string {
	seen := make(map[string]bool, len(tx))
	out := make([]string, 0, len(tx))
	for _, it := range tx {
		if it != "" && !seen[it] {
			seen[it] = true
			out = append(out, it)
		}
	}
	sort.Strings(out)
	return out
}

// SortItemsets orders itemsets by size, then support descending, then
// key — a stable, deterministic report order.
func SortItemsets(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool {
		if len(sets[i].Items) != len(sets[j].Items) {
			return len(sets[i].Items) < len(sets[j].Items)
		}
		if sets[i].Support != sets[j].Support {
			return sets[i].Support > sets[j].Support
		}
		return sets[i].Key() < sets[j].Key()
	})
}

// Apriori mines all itemsets with support >= minSupport (absolute
// count, >= 1) using level-wise candidate generation with subset
// pruning. Callers mining the same baskets at several thresholds
// should build a Transactions once and call its Apriori method, which
// reuses one normalization across calls.
func Apriori(txs [][]string, minSupport int) ([]Itemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fpm: minSupport must be >= 1, got %d", minSupport)
	}
	norm := make([][]string, len(txs))
	for i, tx := range txs {
		norm[i] = normalizeTx(tx)
	}
	return aprioriNorm(norm, minSupport), nil
}

// aprioriNorm is the Apriori core over already-normalized (sorted,
// deduplicated) transactions.
func aprioriNorm(norm [][]string, minSupport int) []Itemset {
	// L1.
	counts := map[string]int{}
	for _, tx := range norm {
		for _, it := range tx {
			counts[it]++
		}
	}
	var result []Itemset
	var current []Itemset
	for it, c := range counts {
		if c >= minSupport {
			current = append(current, Itemset{Items: []string{it}, Support: c})
		}
	}
	// The level-wise join below requires lexicographic order; the
	// final result is re-sorted for reporting at the end.
	sortByKey(current)
	result = append(result, current...)

	frequent := map[string]bool{}
	for _, s := range current {
		frequent[s.Key()] = true
	}

	for level := 2; len(current) > 0; level++ {
		// Candidate generation: join sets sharing a (level-2)-prefix.
		candidates := map[string][]string{}
		for i := 0; i < len(current); i++ {
			for j := i + 1; j < len(current); j++ {
				a, b := current[i].Items, current[j].Items
				if !samePrefix(a, b, level-2) {
					continue
				}
				// With lexicographically ordered itemsets, the pair
				// (i < j) sharing a prefix has a[level-2] < b[level-2],
				// so appending b's last item keeps the candidate sorted.
				last := b[level-2]
				if last <= a[level-2] {
					continue // identical sets or out of order: skip
				}
				cand := make([]string, level)
				copy(cand, a)
				cand[level-1] = last
				if !allSubsetsFrequent(cand, frequent) {
					continue
				}
				candidates[strings.Join(cand, "\x1f")] = cand
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Support counting.
		support := make(map[string]int, len(candidates))
		for _, tx := range norm {
			if len(tx) < level {
				continue
			}
			txSet := make(map[string]bool, len(tx))
			for _, it := range tx {
				txSet[it] = true
			}
			for key, cand := range candidates {
				ok := true
				for _, it := range cand {
					if !txSet[it] {
						ok = false
						break
					}
				}
				if ok {
					support[key]++
				}
			}
		}
		current = current[:0]
		for key, c := range support {
			if c >= minSupport {
				items := candidates[key]
				current = append(current, Itemset{Items: items, Support: c})
				frequent[key] = true
			}
		}
		sortByKey(current)
		result = append(result, current...)
	}
	SortItemsets(result)
	return result
}

// sortByKey orders itemsets lexicographically by canonical key, the
// order the Apriori prefix join requires.
func sortByKey(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool { return sets[i].Key() < sets[j].Key() })
}

func samePrefix(a, b []string, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent applies the Apriori pruning property: every
// (k-1)-subset of a candidate must be frequent.
func allSubsetsFrequent(cand []string, frequent map[string]bool) bool {
	if len(cand) <= 2 {
		return true // 1-subsets checked by construction
	}
	sub := make([]string, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !frequent[strings.Join(sub, "\x1f")] {
			return false
		}
	}
	return true
}
