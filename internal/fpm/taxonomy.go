package fpm

import (
	"fmt"
	"sort"
	"strings"
)

// Taxonomy maps an item to its more abstract parent (e.g. an exam code
// to its clinical category). Multiple levels form a forest; roots have
// no entry. MeTA-style generalized pattern mining raises items through
// this hierarchy so that patterns too rare at the leaf level can still
// surface at a coarser abstraction level.
type Taxonomy map[string]string

// Ancestors returns the chain of increasingly abstract ancestors of
// item (nearest first). Cycles are broken defensively.
func (t Taxonomy) Ancestors(item string) []string {
	var out []string
	seen := map[string]bool{item: true}
	for {
		parent, ok := t[item]
		if !ok || seen[parent] {
			return out
		}
		out = append(out, parent)
		seen[parent] = true
		item = parent
	}
}

// Level returns the abstraction level of an item: 0 for leaves that
// appear only as taxonomy keys (or unknown items), and 1 + the level
// of its deepest known descendant for generalized items. In practice
// it is len of the longest chain that reaches item.
func (t Taxonomy) Level(item string) int {
	level := 0
	for child, parent := range t {
		if parent != item {
			continue
		}
		if l := t.Level(child) + 1; l > level {
			level = l
		}
	}
	return level
}

// GeneralizedItemset is a frequent itemset annotated with the highest
// abstraction level among its items.
type GeneralizedItemset struct {
	Itemset
	MaxLevel int `json:"max_level"`
}

// ExtendTransactions augments each transaction with the ancestors of
// its items, enabling single-pass mining across abstraction levels.
// The original transactions are not modified.
func (t Taxonomy) ExtendTransactions(txs [][]string) [][]string {
	out := make([][]string, len(txs))
	for i, tx := range txs {
		set := map[string]bool{}
		for _, it := range tx {
			set[it] = true
			for _, a := range t.Ancestors(it) {
				set[a] = true
			}
		}
		ext := make([]string, 0, len(set))
		for it := range set {
			ext = append(ext, it)
		}
		sort.Strings(ext)
		out[i] = ext
	}
	return out
}

// MineGeneralized mines frequent itemsets over the taxonomy-extended
// transactions (Srikant-Agrawal style generalized patterns, the
// mechanism behind MeTA's "different abstraction levels"). Itemsets
// that pair an item with one of its own ancestors are filtered out as
// trivially redundant. The miner is FP-Growth.
func MineGeneralized(txs [][]string, tax Taxonomy, minSupport int) ([]GeneralizedItemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fpm: minSupport must be >= 1, got %d", minSupport)
	}
	ext := tax.ExtendTransactions(txs)
	flat, err := FPGrowth(ext, minSupport)
	if err != nil {
		return nil, err
	}
	levelCache := map[string]int{}
	levelOf := func(item string) int {
		if l, ok := levelCache[item]; ok {
			return l
		}
		l := tax.Level(item)
		levelCache[item] = l
		return l
	}

	var out []GeneralizedItemset
	for _, s := range flat {
		if containsAncestorPair(s.Items, tax) {
			continue
		}
		maxLevel := 0
		for _, it := range s.Items {
			if l := levelOf(it); l > maxLevel {
				maxLevel = l
			}
		}
		out = append(out, GeneralizedItemset{Itemset: s, MaxLevel: maxLevel})
	}
	return out, nil
}

// containsAncestorPair reports whether any item in the set is an
// ancestor of another item in the set.
func containsAncestorPair(items []string, tax Taxonomy) bool {
	set := make(map[string]bool, len(items))
	for _, it := range items {
		set[it] = true
	}
	for _, it := range items {
		for _, a := range tax.Ancestors(it) {
			if set[a] {
				return true
			}
		}
	}
	return false
}

// FilterByLevel keeps only generalized itemsets whose MaxLevel equals
// level — one abstraction "slice" of the pattern space.
func FilterByLevel(sets []GeneralizedItemset, level int) []GeneralizedItemset {
	var out []GeneralizedItemset
	for _, s := range sets {
		if s.MaxLevel == level {
			out = append(out, s)
		}
	}
	return out
}

// Describe renders a generalized itemset for reports.
func (g GeneralizedItemset) Describe() string {
	return fmt.Sprintf("{%s} (support=%d, level=%d)",
		strings.Join(g.Items, ", "), g.Support, g.MaxLevel)
}
