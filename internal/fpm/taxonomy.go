package fpm

import (
	"fmt"
	"sort"
	"strings"
)

// Taxonomy maps an item to its more abstract parent (e.g. an exam code
// to its clinical category). Multiple levels form a forest; roots have
// no entry. MeTA-style generalized pattern mining raises items through
// this hierarchy so that patterns too rare at the leaf level can still
// surface at a coarser abstraction level.
type Taxonomy map[string]string

// Ancestors returns the chain of increasingly abstract ancestors of
// item (nearest first). Cycles are broken defensively.
func (t Taxonomy) Ancestors(item string) []string {
	var out []string
	seen := map[string]bool{item: true}
	for {
		parent, ok := t[item]
		if !ok || seen[parent] {
			return out
		}
		out = append(out, parent)
		seen[parent] = true
		item = parent
	}
}

// Level returns the abstraction level of an item: 0 for leaves that
// appear only as taxonomy keys (or unknown items), and 1 + the level
// of its deepest known descendant for generalized items. In practice
// it is len of the longest chain that reaches item.
func (t Taxonomy) Level(item string) int {
	level := 0
	for child, parent := range t {
		if parent != item {
			continue
		}
		if l := t.Level(child) + 1; l > level {
			level = l
		}
	}
	return level
}

// GeneralizedItemset is a frequent itemset annotated with the highest
// abstraction level among its items.
type GeneralizedItemset struct {
	Itemset
	MaxLevel int `json:"max_level"`
}

// ExtendTransactions augments each transaction with the ancestors of
// its items, enabling single-pass mining across abstraction levels.
// The original transactions are not modified.
func (t Taxonomy) ExtendTransactions(txs [][]string) [][]string {
	out := make([][]string, len(txs))
	for i, tx := range txs {
		set := map[string]bool{}
		for _, it := range tx {
			set[it] = true
			for _, a := range t.Ancestors(it) {
				set[a] = true
			}
		}
		ext := make([]string, 0, len(set))
		for it := range set {
			ext = append(ext, it)
		}
		sort.Strings(ext)
		out[i] = ext
	}
	return out
}

// MineGeneralized mines frequent itemsets over the taxonomy-extended
// transactions (Srikant-Agrawal style generalized patterns, the
// mechanism behind MeTA's "different abstraction levels"). Itemsets
// that pair an item with one of its own ancestors are filtered out as
// trivially redundant. The miner is FP-Growth.
func MineGeneralized(txs [][]string, tax Taxonomy, minSupport int) ([]GeneralizedItemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fpm: minSupport must be >= 1, got %d", minSupport)
	}
	ext := tax.ExtendTransactions(txs)
	flat, err := FPGrowth(ext, minSupport)
	if err != nil {
		return nil, err
	}
	return annotateGeneralized(flat, tax), nil
}

// MineGeneralizedEncoded mines generalized itemsets over an
// already-extended shared encoding (Taxonomy.ExtendEncoded), the
// int-encoded counterpart of MineGeneralized: callers that analyze the
// same log repeatedly build the extended Transactions once and re-mine
// it at any support threshold without touching string baskets again.
// Results are identical to MineGeneralized over the same baskets and
// taxonomy (equivalence-tested).
func MineGeneralizedEncoded(ext *Transactions, tax Taxonomy, minSupport int) ([]GeneralizedItemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fpm: minSupport must be >= 1, got %d", minSupport)
	}
	if ext == nil {
		return nil, fmt.Errorf("fpm: nil transactions")
	}
	return annotateGeneralized(fpGrowthEncoded(ext, minSupport), tax), nil
}

// annotateGeneralized drops itemsets pairing an item with one of its
// own ancestors and annotates the rest with their abstraction level.
func annotateGeneralized(flat []Itemset, tax Taxonomy) []GeneralizedItemset {
	levelCache := map[string]int{}
	levelOf := func(item string) int {
		if l, ok := levelCache[item]; ok {
			return l
		}
		l := tax.Level(item)
		levelCache[item] = l
		return l
	}

	var out []GeneralizedItemset
	for _, s := range flat {
		if containsAncestorPair(s.Items, tax) {
			continue
		}
		maxLevel := 0
		for _, it := range s.Items {
			if l := levelOf(it); l > maxLevel {
				maxLevel = l
			}
		}
		out = append(out, GeneralizedItemset{Itemset: s, MaxLevel: maxLevel})
	}
	return out
}

// ExtendEncoded returns a transaction database augmenting every basket
// of base with the ancestors of its items — the encoded counterpart of
// ExtendTransactions. The dictionary grows to the union of base's
// items and every reachable ancestor (still in lexicographic order, so
// the int-encoded miners keep emitting itemsets in the same order as
// the string path); base itself is not modified and is returned
// unchanged when the taxonomy is empty.
func (t Taxonomy) ExtendEncoded(base *Transactions) *Transactions {
	if len(t) == 0 {
		return base
	}
	// Union dictionary: base items plus all their ancestors.
	names := make(map[string]bool, len(base.dict))
	for _, it := range base.dict {
		names[it] = true
		for _, a := range t.Ancestors(it) {
			names[a] = true
		}
	}
	dict := make([]string, 0, len(names))
	for it := range names {
		dict = append(dict, it)
	}
	sort.Strings(dict)
	nameID := make(map[string]int32, len(dict))
	for id, it := range dict {
		nameID[it] = int32(id)
	}
	// Per old item id: its new id and its ancestors' new ids.
	remap := make([]int32, len(base.dict))
	ancestors := make([][]int32, len(base.dict))
	for old, it := range base.dict {
		remap[old] = nameID[it]
		as := t.Ancestors(it)
		if len(as) == 0 {
			continue
		}
		ids := make([]int32, len(as))
		for i, a := range as {
			ids[i] = nameID[a]
		}
		ancestors[old] = ids
	}

	n := base.NumTx()
	out := &Transactions{
		dict: dict,
		ptr:  make([]int, 1, n+1),
		freq: make([]int, len(dict)),
	}
	mark := make([]bool, len(dict))
	ids := make([]int32, 0, 32)
	for i := 0; i < n; i++ {
		ids = ids[:0]
		for _, old := range base.tx(i) {
			if nid := remap[old]; !mark[nid] {
				mark[nid] = true
				ids = append(ids, nid)
			}
			for _, a := range ancestors[old] {
				if !mark[a] {
					mark[a] = true
					ids = append(ids, a)
				}
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			mark[id] = false
			out.freq[id]++
		}
		out.items = append(out.items, ids...)
		out.ptr = append(out.ptr, len(out.items))
	}
	return out
}

// containsAncestorPair reports whether any item in the set is an
// ancestor of another item in the set.
func containsAncestorPair(items []string, tax Taxonomy) bool {
	set := make(map[string]bool, len(items))
	for _, it := range items {
		set[it] = true
	}
	for _, it := range items {
		for _, a := range tax.Ancestors(it) {
			if set[a] {
				return true
			}
		}
	}
	return false
}

// FilterByLevel keeps only generalized itemsets whose MaxLevel equals
// level — one abstraction "slice" of the pattern space.
func FilterByLevel(sets []GeneralizedItemset, level int) []GeneralizedItemset {
	var out []GeneralizedItemset
	for _, s := range sets {
		if s.MaxLevel == level {
			out = append(out, s)
		}
	}
	return out
}

// Describe renders a generalized itemset for reports.
func (g GeneralizedItemset) Describe() string {
	return fmt.Sprintf("{%s} (support=%d, level=%d)",
		strings.Join(g.Items, ", "), g.Support, g.MaxLevel)
}
