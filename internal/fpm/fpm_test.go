package fpm

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// classic is the textbook transaction set with well-known frequent
// itemsets at minSupport 2.
func classic() [][]string {
	return [][]string{
		{"bread", "milk"},
		{"bread", "diaper", "beer", "eggs"},
		{"milk", "diaper", "beer", "cola"},
		{"bread", "milk", "diaper", "beer"},
		{"bread", "milk", "diaper", "cola"},
	}
}

func supportOf(sets []Itemset, items ...string) (int, bool) {
	sort.Strings(items)
	key := Itemset{Items: items}.Key()
	for _, s := range sets {
		if s.Key() == key {
			return s.Support, true
		}
	}
	return 0, false
}

func TestAprioriClassic(t *testing.T) {
	sets, err := Apriori(classic(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		items []string
		want  int
	}{
		{[]string{"bread"}, 4},
		{[]string{"milk"}, 4},
		{[]string{"diaper"}, 4},
		{[]string{"beer"}, 3},
		{[]string{"bread", "milk"}, 3},
		{[]string{"beer", "diaper"}, 3},
		{[]string{"bread", "diaper", "milk"}, 2},
		{[]string{"beer", "bread", "diaper"}, 2},
	}
	for _, c := range cases {
		got, ok := supportOf(sets, c.items...)
		if !ok {
			t.Errorf("itemset %v missing", c.items)
			continue
		}
		if got != c.want {
			t.Errorf("support(%v) = %d, want %d", c.items, got, c.want)
		}
	}
	// eggs and cola have support 1 and must be absent.
	if _, ok := supportOf(sets, "eggs"); ok {
		t.Error("infrequent item eggs reported")
	}
}

func TestAprioriMinSupportValidation(t *testing.T) {
	if _, err := Apriori(classic(), 0); err == nil {
		t.Error("accepted minSupport 0")
	}
}

func TestAprioriDuplicateItemsInTransaction(t *testing.T) {
	txs := [][]string{{"a", "a", "b"}, {"a", "b", "b"}}
	sets, err := Apriori(txs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := supportOf(sets, "a"); got != 2 {
		t.Errorf("support(a) = %d, want 2 (duplicates collapse)", got)
	}
	if got, _ := supportOf(sets, "a", "b"); got != 2 {
		t.Errorf("support(a,b) = %d, want 2", got)
	}
}

func TestAprioriEmptyTransactions(t *testing.T) {
	sets, err := Apriori(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 0 {
		t.Errorf("mined %d itemsets from nothing", len(sets))
	}
}

func TestFPGrowthClassic(t *testing.T) {
	sets, err := FPGrowth(classic(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := supportOf(sets, "beer", "diaper"); got != 3 {
		t.Errorf("support(beer,diaper) = %d, want 3", got)
	}
	if got, _ := supportOf(sets, "bread", "diaper", "milk"); got != 2 {
		t.Errorf("support(bread,diaper,milk) = %d, want 2", got)
	}
}

// canonical maps itemsets to a comparable form.
func canonical(sets []Itemset) map[string]int {
	out := make(map[string]int, len(sets))
	for _, s := range sets {
		out[s.Key()] = s.Support
	}
	return out
}

// Property: Apriori and FP-Growth are set-equal on random data.
func TestAprioriEqualsFPGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	alphabet := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for trial := 0; trial < 25; trial++ {
		nTx := 5 + rng.Intn(40)
		txs := make([][]string, nTx)
		for i := range txs {
			size := 1 + rng.Intn(6)
			for j := 0; j < size; j++ {
				txs[i] = append(txs[i], alphabet[rng.Intn(len(alphabet))])
			}
		}
		minSupp := 1 + rng.Intn(4)
		ap, err := Apriori(txs, minSupp)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := FPGrowth(txs, minSupp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(canonical(ap), canonical(fp)) {
			t.Fatalf("trial %d (minSupp=%d): Apriori %v != FPGrowth %v",
				trial, minSupp, canonical(ap), canonical(fp))
		}
	}
}

// Property: support is anti-monotone — every subset of a frequent
// itemset is frequent with at least the same support.
func TestSupportAntiMonotone(t *testing.T) {
	sets, err := FPGrowth(classic(), 2)
	if err != nil {
		t.Fatal(err)
	}
	bySize := canonical(sets)
	for _, s := range sets {
		if len(s.Items) < 2 {
			continue
		}
		for skip := range s.Items {
			var sub []string
			for i, it := range s.Items {
				if i != skip {
					sub = append(sub, it)
				}
			}
			subSupp, ok := bySize[Itemset{Items: sub}.Key()]
			if !ok {
				t.Fatalf("subset %v of frequent %v not reported", sub, s.Items)
			}
			if subSupp < s.Support {
				t.Fatalf("support(%v)=%d < support(%v)=%d", sub, subSupp, s.Items, s.Support)
			}
		}
	}
}

func TestSortItemsetsDeterministic(t *testing.T) {
	sets := []Itemset{
		{Items: []string{"b"}, Support: 3},
		{Items: []string{"a"}, Support: 3},
		{Items: []string{"a", "b"}, Support: 5},
	}
	SortItemsets(sets)
	if sets[0].Items[0] != "a" || sets[1].Items[0] != "b" || len(sets[2].Items) != 2 {
		t.Errorf("sort order wrong: %v", sets)
	}
}

func TestRulesClassic(t *testing.T) {
	txs := classic()
	sets, err := FPGrowth(txs, 2)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(sets, len(txs), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// {beer} => {diaper}: supp 3, conf 3/3 = 1, lift 1/(4/5) = 1.25.
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "beer" &&
			len(r.Consequent) == 1 && r.Consequent[0] == "diaper" {
			found = true
			if r.Confidence != 1 {
				t.Errorf("conf(beer=>diaper) = %v, want 1", r.Confidence)
			}
			if r.Lift < 1.249 || r.Lift > 1.251 {
				t.Errorf("lift(beer=>diaper) = %v, want 1.25", r.Lift)
			}
		}
	}
	if !found {
		t.Error("rule beer => diaper not derived")
	}
	// All rules meet the confidence threshold.
	for _, r := range rules {
		if r.Confidence < 0.7 {
			t.Errorf("rule %v below threshold", r)
		}
	}
}

func TestRulesValidation(t *testing.T) {
	if _, err := Rules(nil, 0, 0.5); err == nil {
		t.Error("accepted numTx 0")
	}
	if _, err := Rules(nil, 5, 1.5); err == nil {
		t.Error("accepted confidence > 1")
	}
}

func TestRulesSortedByConfidence(t *testing.T) {
	txs := classic()
	sets, _ := FPGrowth(txs, 2)
	rules, _ := Rules(sets, len(txs), 0.5)
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence+1e-12 {
			t.Fatalf("rules not sorted by confidence at %d: %v then %v",
				i, rules[i-1].Confidence, rules[i].Confidence)
		}
	}
}
