package fpm

import (
	"reflect"
	"testing"
)

func examTaxonomy() Taxonomy {
	return Taxonomy{
		"ecg":        "cardio",
		"echo":       "cardio",
		"fundus":     "eye",
		"oct":        "eye",
		"cardio":     "specialist",
		"eye":        "specialist",
		"hba1c":      "routine",
		"glucose":    "routine",
		"creatinine": "renal",
	}
}

func TestAncestors(t *testing.T) {
	tax := examTaxonomy()
	got := tax.Ancestors("ecg")
	if len(got) != 2 || got[0] != "cardio" || got[1] != "specialist" {
		t.Errorf("Ancestors(ecg) = %v", got)
	}
	if got := tax.Ancestors("unknown"); len(got) != 0 {
		t.Errorf("Ancestors(unknown) = %v", got)
	}
}

func TestAncestorsCycleSafe(t *testing.T) {
	tax := Taxonomy{"a": "b", "b": "a"}
	got := tax.Ancestors("a")
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("cycle ancestors = %v", got)
	}
}

func TestLevel(t *testing.T) {
	tax := examTaxonomy()
	if l := tax.Level("ecg"); l != 0 {
		t.Errorf("Level(ecg) = %d, want 0", l)
	}
	if l := tax.Level("cardio"); l != 1 {
		t.Errorf("Level(cardio) = %d, want 1", l)
	}
	if l := tax.Level("specialist"); l != 2 {
		t.Errorf("Level(specialist) = %d, want 2", l)
	}
}

func TestExtendTransactions(t *testing.T) {
	tax := examTaxonomy()
	ext := tax.ExtendTransactions([][]string{{"ecg", "hba1c"}})
	if len(ext) != 1 {
		t.Fatalf("ext = %v", ext)
	}
	want := map[string]bool{"ecg": true, "cardio": true, "specialist": true,
		"hba1c": true, "routine": true}
	if len(ext[0]) != len(want) {
		t.Fatalf("extended tx = %v, want keys %v", ext[0], want)
	}
	for _, it := range ext[0] {
		if !want[it] {
			t.Errorf("unexpected item %q", it)
		}
	}
}

func TestMineGeneralizedSurfacesCoarsePatterns(t *testing.T) {
	// ecg and echo each appear twice — but "cardio" appears in all 4
	// transactions with glucose: the generalized pattern is stronger.
	txs := [][]string{
		{"ecg", "glucose"},
		{"echo", "glucose"},
		{"ecg", "glucose"},
		{"echo", "glucose"},
	}
	tax := examTaxonomy()
	sets, err := MineGeneralized(txs, tax, 3)
	if err != nil {
		t.Fatal(err)
	}
	var foundCardioGlucose bool
	for _, s := range sets {
		if s.Key() == (Itemset{Items: []string{"cardio", "glucose"}}).Key() {
			foundCardioGlucose = true
			if s.Support != 4 {
				t.Errorf("support(cardio,glucose) = %d, want 4", s.Support)
			}
			if s.MaxLevel != 1 {
				t.Errorf("level = %d, want 1", s.MaxLevel)
			}
		}
		// Leaf-level pairs are below support 3 and must not appear.
		if s.Key() == (Itemset{Items: []string{"ecg", "glucose"}}).Key() {
			t.Errorf("infrequent leaf pattern surfaced: %v", s)
		}
	}
	if !foundCardioGlucose {
		t.Errorf("generalized pattern {cardio, glucose} missing from %v", sets)
	}
}

func TestMineGeneralizedFiltersAncestorPairs(t *testing.T) {
	txs := [][]string{{"ecg"}, {"ecg"}, {"ecg"}}
	sets, err := MineGeneralized(txs, examTaxonomy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		if containsAncestorPair(s.Items, examTaxonomy()) {
			t.Errorf("redundant ancestor pair itemset: %v", s)
		}
	}
}

func TestFilterByLevel(t *testing.T) {
	sets := []GeneralizedItemset{
		{Itemset: Itemset{Items: []string{"ecg"}, Support: 3}, MaxLevel: 0},
		{Itemset: Itemset{Items: []string{"cardio"}, Support: 5}, MaxLevel: 1},
	}
	l1 := FilterByLevel(sets, 1)
	if len(l1) != 1 || l1[0].Items[0] != "cardio" {
		t.Errorf("FilterByLevel = %v", l1)
	}
}

func TestMineGeneralizedValidation(t *testing.T) {
	if _, err := MineGeneralized(nil, examTaxonomy(), 0); err == nil {
		t.Error("accepted minSupport 0")
	}
}

// TestMineGeneralizedEncodedMatchesStrings is the equivalence property
// behind the per-log transaction cache: mining a pre-extended encoded
// database must reproduce the string-basket path exactly — same
// itemsets, same supports, same levels, same order — across support
// thresholds.
func TestMineGeneralizedEncodedMatchesStrings(t *testing.T) {
	tax := examTaxonomy()
	txs := [][]string{
		{"ecg", "glucose", "hba1c"},
		{"echo", "glucose"},
		{"fundus", "hba1c", ""},
		{"oct", "creatinine", "glucose"},
		{"ecg", "echo", "hba1c"},
		{"glucose", "hba1c", "glucose"}, // duplicate inside a basket
		{"fundus", "ecg"},
		{"creatinine"},
	}
	ext := tax.ExtendEncoded(NewTransactions(txs))
	for _, minSupport := range []int{2, 3, 4} {
		want, err := MineGeneralized(txs, tax, minSupport)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MineGeneralizedEncoded(ext, tax, minSupport)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("minSupport %d: encoded path diverges\nstring: %v\nencoded: %v",
				minSupport, want, got)
		}
	}
}

// TestExtendEncodedEmptyTaxonomy: with no taxonomy the extension is
// the identity, not a copy.
func TestExtendEncodedEmptyTaxonomy(t *testing.T) {
	base := NewTransactions([][]string{{"a", "b"}})
	if got := (Taxonomy{}).ExtendEncoded(base); got != base {
		t.Error("empty taxonomy should return the base encoding unchanged")
	}
}
