package fpm

import (
	"fmt"
	"sort"
	"strings"
)

// Rule is an association rule A ⇒ C with its quality measures.
type Rule struct {
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    int      `json:"support"`    // absolute support of A ∪ C
	Confidence float64  `json:"confidence"` // supp(A∪C) / supp(A)
	Lift       float64  `json:"lift"`       // confidence / P(C)
}

func (r Rule) String() string {
	return fmt.Sprintf("{%s} => {%s} (supp=%d, conf=%.3f, lift=%.3f)",
		strings.Join(r.Antecedent, ", "), strings.Join(r.Consequent, ", "),
		r.Support, r.Confidence, r.Lift)
}

// Rules derives all association rules with confidence >= minConfidence
// from the frequent itemsets. numTx is the total transaction count
// (needed for lift). Every non-empty proper subset of each itemset is
// considered as an antecedent.
func Rules(itemsets []Itemset, numTx int, minConfidence float64) ([]Rule, error) {
	if numTx < 1 {
		return nil, fmt.Errorf("fpm: numTx must be >= 1, got %d", numTx)
	}
	if minConfidence < 0 || minConfidence > 1 {
		return nil, fmt.Errorf("fpm: minConfidence must be in [0,1], got %g", minConfidence)
	}
	support := make(map[string]int, len(itemsets))
	for _, s := range itemsets {
		support[s.Key()] = s.Support
	}
	var rules []Rule
	for _, s := range itemsets {
		n := len(s.Items)
		if n < 2 {
			continue
		}
		// Enumerate non-empty proper subsets via bitmask.
		for mask := 1; mask < (1<<n)-1; mask++ {
			var ante, cons []string
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					ante = append(ante, s.Items[i])
				} else {
					cons = append(cons, s.Items[i])
				}
			}
			anteSupp, ok := support[strings.Join(ante, "\x1f")]
			if !ok || anteSupp == 0 {
				continue // antecedent below threshold: rule not derivable
			}
			conf := float64(s.Support) / float64(anteSupp)
			if conf < minConfidence {
				continue
			}
			consSupp, ok := support[strings.Join(cons, "\x1f")]
			lift := 0.0
			if ok && consSupp > 0 {
				lift = conf / (float64(consSupp) / float64(numTx))
			}
			rules = append(rules, Rule{
				Antecedent: ante,
				Consequent: cons,
				Support:    s.Support,
				Confidence: conf,
				Lift:       lift,
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return ruleKey(rules[i]) < ruleKey(rules[j])
	})
	return rules, nil
}

func ruleKey(r Rule) string {
	return strings.Join(r.Antecedent, "\x1f") + "\x1e" + strings.Join(r.Consequent, "\x1f")
}
