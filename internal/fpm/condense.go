package fpm

import (
	"strings"
)

// Closed filters itemsets down to the closed ones: itemsets with no
// proper superset of identical support. Closed sets are a lossless
// condensation of the frequent-pattern space — exactly the kind of
// "manageable set of knowledge" the paper wants presented to the user
// instead of the raw pattern explosion.
func Closed(sets []Itemset) []Itemset {
	var out []Itemset
	for i, s := range sets {
		closed := true
		for j, t := range sets {
			if i == j || t.Support != s.Support || len(t.Items) <= len(s.Items) {
				continue
			}
			if isSubset(s.Items, t.Items) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, s)
		}
	}
	SortItemsets(out)
	return out
}

// Maximal filters itemsets down to the maximal ones: frequent itemsets
// with no frequent proper superset at all (the most aggressive, lossy
// condensation; supports of subsets are not recoverable).
func Maximal(sets []Itemset) []Itemset {
	var out []Itemset
	for i, s := range sets {
		maximal := true
		for j, t := range sets {
			if i == j || len(t.Items) <= len(s.Items) {
				continue
			}
			if isSubset(s.Items, t.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, s)
		}
	}
	SortItemsets(out)
	return out
}

// isSubset reports whether sorted slice a ⊆ sorted slice b.
func isSubset(a, b []string) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// SupportOf looks up the support of items (any order) among sets,
// returning ok=false when absent.
func SupportOf(sets []Itemset, items []string) (int, bool) {
	sorted := append([]string(nil), items...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	key := strings.Join(sorted, "\x1f")
	for _, s := range sets {
		if s.Key() == key {
			return s.Support, true
		}
	}
	return 0, false
}
