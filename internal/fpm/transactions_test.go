package fpm

import (
	"math/rand"
	"reflect"
	"testing"

	"adahealth/internal/vec"
)

// randomBaskets generates unnormalized baskets (duplicates, empties)
// over a small alphabet.
func randomBaskets(rng *rand.Rand, n int) [][]string {
	alphabet := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	out := make([][]string, n)
	for i := range out {
		size := 1 + rng.Intn(5)
		tx := make([]string, 0, size+1)
		for j := 0; j < size; j++ {
			tx = append(tx, alphabet[rng.Intn(len(alphabet))])
		}
		if rng.Intn(4) == 0 {
			tx = append(tx, "") // empty items must be dropped
		}
		out[i] = tx
	}
	return out
}

// TestTransactionsMinersMatchOneShot is the shared-encoding
// equivalence property: for random baskets and several thresholds,
// Transactions.FPGrowth and Transactions.Apriori must emit exactly the
// itemsets of the one-shot entry points (which normalize per call).
func TestTransactionsMinersMatchOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		txs := randomBaskets(rng, 60)
		shared := NewTransactions(txs)
		for _, minSupport := range []int{2, 4, 8} {
			wantFP, err := FPGrowth(txs, minSupport)
			if err != nil {
				t.Fatal(err)
			}
			gotFP, err := shared.FPGrowth(minSupport)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotFP, wantFP) {
				t.Fatalf("trial %d supp %d: shared FPGrowth differs:\n%v\nvs\n%v",
					trial, minSupport, gotFP, wantFP)
			}
			wantAp, err := Apriori(txs, minSupport)
			if err != nil {
				t.Fatal(err)
			}
			gotAp, err := shared.Apriori(minSupport)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotAp, wantAp) {
				t.Fatalf("trial %d supp %d: shared Apriori differs", trial, minSupport)
			}
			// And the two algorithms agree with each other.
			if !reflect.DeepEqual(gotFP, gotAp) {
				t.Fatalf("trial %d supp %d: FPGrowth and Apriori disagree", trial, minSupport)
			}
		}
	}
}

func TestTransactionsEncoding(t *testing.T) {
	tr := NewTransactions([][]string{
		{"x", "c", "x", "", "a"},
		{},
		{"c"},
	})
	if tr.NumTx() != 3 {
		t.Errorf("NumTx = %d", tr.NumTx())
	}
	if tr.NumItems() != 3 {
		t.Errorf("NumItems = %d", tr.NumItems())
	}
	// Dictionary is lexicographic: a < c < x.
	for id, want := range []string{"a", "c", "x"} {
		if got := tr.Item(int32(id)); got != want {
			t.Errorf("Item(%d) = %q, want %q", id, got, want)
		}
	}
	if got := tr.tx(0); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("tx(0) = %v, want [0 1 2]", got)
	}
	if got := tr.tx(1); len(got) != 0 {
		t.Errorf("tx(1) = %v, want empty", got)
	}
	if tr.freq[1] != 2 { // "c" appears in two baskets
		t.Errorf("freq[c] = %d, want 2", tr.freq[1])
	}
}

// TestTransactionsFromCSRMatchesDenseBaskets checks the CSR-fed path:
// baskets derived from the sparse view must mine identically to
// baskets materialized from the dense rows.
func TestTransactionsFromCSRMatchesDenseBaskets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Feature names deliberately NOT in column order, so the
	// column→dictionary-id remapping is exercised.
	features := []string{"EXM9", "EXM1", "EXM5", "EXM3", "EXM7", "EXM0"}
	rows := make([][]float64, 50)
	for i := range rows {
		row := make([]float64, len(features))
		for j := range row {
			if rng.Intn(3) == 0 {
				row[j] = float64(1 + rng.Intn(4))
			}
		}
		rows[i] = row
	}
	csr := vec.NewCSRFromDense(rows)
	fromCSR, err := TransactionsFromCSR(csr, features)
	if err != nil {
		t.Fatal(err)
	}

	baskets := make([][]string, len(rows))
	for i, row := range rows {
		for j, v := range row {
			if v != 0 {
				baskets[i] = append(baskets[i], features[j])
			}
		}
	}
	ref := NewTransactions(baskets)

	for _, supp := range []int{2, 5, 10} {
		got, err := fromCSR.FPGrowth(supp)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.FPGrowth(supp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("supp %d: CSR-fed mining differs from dense baskets", supp)
		}
	}
}

func TestTransactionsFromCSRErrors(t *testing.T) {
	if _, err := TransactionsFromCSR(nil, nil); err == nil {
		t.Error("accepted nil matrix")
	}
	csr := vec.NewCSRFromDense([][]float64{{1, 0}, {0, 1}})
	if _, err := TransactionsFromCSR(csr, []string{"only-one"}); err == nil {
		t.Error("accepted mismatched feature names")
	}
	if _, err := TransactionsFromCSR(csr, []string{"dup", "dup"}); err == nil {
		t.Error("accepted duplicate feature names")
	}
}

func TestTransactionsMinSupportValidation(t *testing.T) {
	tr := NewTransactions([][]string{{"a"}})
	if _, err := tr.FPGrowth(0); err == nil {
		t.Error("FPGrowth accepted minSupport 0")
	}
	if _, err := tr.Apriori(-1); err == nil {
		t.Error("Apriori accepted minSupport -1")
	}
}
