package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func tmpFile(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "f.dat")
}

// TestPassthrough verifies the injector without rules behaves like the
// real filesystem end to end: create, write, sync, reopen, read.
func TestPassthrough(t *testing.T) {
	ffs := New(nil, 1)
	path := tmpFile(t)
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ffs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read back %q", got)
	}
	if ffs.Fired() != 0 {
		t.Fatalf("fired = %d without rules", ffs.Fired())
	}
}

// TestWriteFaultAfterN lets N writes through, then fails every later
// write until Clear heals the filesystem.
func TestWriteFaultAfterN(t *testing.T) {
	ffs := New(nil, 1)
	ffs.Inject(Rule{Op: OpWrite, After: 2})
	f, err := ffs.Create(tmpFile(t))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write err = %v, want ErrInjected", err)
	}
	ffs.Clear()
	if _, err := f.Write([]byte("healed")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
}

// TestTornWrite fails a write after a prefix and verifies exactly that
// prefix reached the disk.
func TestTornWrite(t *testing.T) {
	ffs := New(nil, 1)
	ffs.Inject(Rule{Op: OpWrite, TornBytes: 3, Count: 1})
	path := tmpFile(t)
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if n != 3 {
		t.Fatalf("torn write n = %d, want 3", n)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("on disk after torn write: %q", got)
	}
}

// TestPathFilterAndENOSPC scopes a disk-full fault to one file by path
// substring.
func TestPathFilterAndENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil, 1)
	ffs.Inject(Rule{Op: OpWrite, Path: "wal", Err: ENOSPC()})

	w, err := ffs.Create(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s, err := ffs.Create(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := w.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("wal write err = %v, want ENOSPC", err)
	}
	if _, err := s.Write([]byte("x")); err != nil {
		t.Fatalf("snapshot write hit a wal-scoped rule: %v", err)
	}
}

// TestProbDeterministicBySeed draws the same fault schedule for the
// same seed and a different one for a different seed.
func TestProbDeterministicBySeed(t *testing.T) {
	schedule := func(seed int64) []bool {
		ffs := New(nil, seed)
		ffs.Inject(Rule{Op: OpWrite, Prob: 0.5})
		f, err := ffs.Create(tmpFile(t))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := f.Write([]byte("x"))
			out = append(out, err != nil)
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDelayOnly slows an op without failing it.
func TestDelayOnly(t *testing.T) {
	ffs := New(nil, 1)
	ffs.Inject(Rule{Op: OpSync, Delay: 30 * time.Millisecond, Count: 1})
	f, err := ffs.Create(tmpFile(t))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("delayed sync err = %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("sync returned in %v, want >= ~30ms delay", d)
	}
	if ffs.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", ffs.Fired())
	}
}

// TestCountExhaustion fires exactly Count times then lets ops through.
func TestCountExhaustion(t *testing.T) {
	ffs := New(nil, 1)
	ffs.Inject(Rule{Op: OpSync, Count: 2})
	f, err := ffs.Create(tmpFile(t))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fails := 0
	for i := 0; i < 5; i++ {
		if err := f.Sync(); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("sync failures = %d, want 2", fails)
	}
}

// TestOpenAndRenameFaults covers the open and rename fault points used
// by snapshot compaction.
func TestOpenAndRenameFaults(t *testing.T) {
	dir := t.TempDir()
	ffs := New(nil, 1)
	ffs.Inject(Rule{Op: OpOpen, Path: "locked", Count: 1})
	if _, err := ffs.Create(filepath.Join(dir, "locked.json")); !errors.Is(err, ErrInjected) {
		t.Fatalf("open err = %v", err)
	}

	src := filepath.Join(dir, "a.tmp")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(Rule{Op: OpRename, Count: 1})
	if err := ffs.Rename(src, filepath.Join(dir, "a.json")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename err = %v", err)
	}
	if err := ffs.Rename(src, filepath.Join(dir, "a.json")); err != nil {
		t.Fatalf("second rename: %v", err)
	}
}
