// Package faultfs is the filesystem seam of the storage engine: an FS
// interface the docstore threads every disk operation through, a
// pass-through OS implementation for production, and a deterministic
// fault-injecting wrapper for tests.
//
// The injector exists so every error path of the WAL and snapshot
// machinery is testable without real disk failures: rules select an
// operation kind (open/read/write/sync/rename/...), optionally a path
// substring, and fire after a count, for a count, or with a seeded
// probability — so a fault schedule is reproducible run to run. A rule
// can return any error (ENOSPC included), tear a write after a byte
// prefix, or merely delay the operation (slow I/O).
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"syscall"
	"time"
)

// FS is the set of filesystem operations the storage engine performs.
// Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Create truncate-creates name (os.Create semantics).
	Create(name string) (File, error)
	// Open opens name read-only (also used to fsync directories).
	Open(name string) (File, error)
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name (cleanup of abandoned temp files).
	Remove(name string) error
	// ReadFile reads the whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
}

// File is the per-file surface the storage engine uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Name() string
}

// OS returns the real-filesystem implementation.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Create(name string) (File, error)             { return os.Create(name) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Op is one injectable fault point.
type Op string

const (
	OpOpen     Op = "open"   // OpenFile, Create, Open
	OpRead     Op = "read"   // File.Read, ReadFile
	OpWrite    Op = "write"  // File.Write
	OpSync     Op = "sync"   // File.Sync
	OpRename   Op = "rename" // Rename
	OpTruncate Op = "truncate"
)

// ErrInjected is the default injected failure.
var ErrInjected = errors.New("faultfs: injected fault")

// ENOSPC returns a disk-full error as the OS would surface it.
func ENOSPC() error { return &os.PathError{Op: "write", Path: "faultfs", Err: syscall.ENOSPC} }

// Rule selects when a fault fires and what it does. The zero values
// widen the match: empty Path matches every path, After 0 fires from
// the first matching operation, Count 0 never exhausts, Prob 0 fires
// unconditionally.
type Rule struct {
	// Op is the operation kind the rule arms.
	Op Op
	// Path, when non-empty, restricts the rule to paths containing it.
	Path string
	// After lets this many matching operations through before arming.
	After int
	// Count caps how many times the rule fires (0 = unlimited).
	Count int
	// Prob fires the armed rule with this probability per matching
	// operation, drawn from the injector's seeded source (0 = always).
	Prob float64
	// Err is the injected error (nil selects ErrInjected). Ignored for
	// pure-delay rules (Delay > 0 with TornBytes 0 and Err nil).
	Err error
	// TornBytes, on OpWrite, writes this many bytes of the payload
	// through before failing — a torn write.
	TornBytes int
	// Delay sleeps before the operation proceeds (slow I/O). A rule
	// with only Delay set slows the operation without failing it.
	Delay time.Duration
}

// delayOnly reports whether the rule slows operations without failing
// them.
func (r Rule) delayOnly() bool { return r.Delay > 0 && r.Err == nil && r.TornBytes == 0 }

// fault is one fired fault's effect.
type fault struct {
	delay time.Duration
	torn  int // >= 0: write this prefix then fail (only with err)
	err   error
}

// Injector wraps an FS with deterministic fault injection. All methods
// are safe for concurrent use; rule matching and the probability draw
// happen under one lock, so a fixed seed and a fixed operation order
// give an identical fault schedule.
type Injector struct {
	inner FS

	mu    sync.Mutex
	rng   *rand.Rand
	rules []*armedRule
	fired int
}

type armedRule struct {
	Rule
	seen  int // matching operations observed
	shots int // times fired
}

// New wraps inner (nil selects the real OS) with a fault injector whose
// probability draws are seeded by seed.
func New(inner FS, seed int64) *Injector {
	if inner == nil {
		inner = OS()
	}
	return &Injector{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// Inject arms a rule; returns the injector for chaining.
func (i *Injector) Inject(r Rule) *Injector {
	i.mu.Lock()
	i.rules = append(i.rules, &armedRule{Rule: r})
	i.mu.Unlock()
	return i
}

// Clear disarms every rule — the fault "healing" transition of a chaos
// scenario. In-flight operations that already drew a fault still fail.
func (i *Injector) Clear() {
	i.mu.Lock()
	i.rules = nil
	i.mu.Unlock()
}

// Fired reports how many faults have been injected so far (delay-only
// rules included).
func (i *Injector) Fired() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired
}

// check consults the rules for one operation. The first matching rule
// that fires wins; delay-only rules stack their delay but let the
// operation continue to later rules.
func (i *Injector) check(op Op, path string) fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	var f fault
	f.torn = -1
	for _, r := range i.rules {
		if r.Op != op || (r.Path != "" && !containsPath(path, r.Path)) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.shots >= r.Count {
			continue
		}
		if r.Prob > 0 && i.rng.Float64() >= r.Prob {
			continue
		}
		r.shots++
		i.fired++
		f.delay += r.Delay
		if r.delayOnly() {
			continue
		}
		f.err = r.Err
		if f.err == nil {
			f.err = ErrInjected
		}
		if op == OpWrite {
			f.torn = r.TornBytes
		}
		return f
	}
	return f
}

func containsPath(path, sub string) bool {
	return len(sub) <= len(path) && (sub == path || indexOf(path, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func (f fault) apply() error {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.err
}

// --- FS interface -----------------------------------------------------------

func (i *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := i.check(OpOpen, name).apply(); err != nil {
		return nil, err
	}
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, fs: i}, nil
}

func (i *Injector) Create(name string) (File, error) {
	if err := i.check(OpOpen, name).apply(); err != nil {
		return nil, err
	}
	f, err := i.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, fs: i}, nil
}

func (i *Injector) Open(name string) (File, error) {
	if err := i.check(OpOpen, name).apply(); err != nil {
		return nil, err
	}
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, fs: i}, nil
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if err := i.check(OpRename, newpath).apply(); err != nil {
		return err
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error { return i.inner.Remove(name) }

func (i *Injector) ReadFile(name string) ([]byte, error) {
	if err := i.check(OpRead, name).apply(); err != nil {
		return nil, err
	}
	return i.inner.ReadFile(name)
}

func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return i.inner.ReadDir(name) }

func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	return i.inner.MkdirAll(path, perm)
}

// faultFile threads per-file operations back through the injector's
// rules, using the file's name as the rule path.
type faultFile struct {
	inner File
	fs    *Injector
}

func (f *faultFile) Name() string                 { return f.inner.Name() }
func (f *faultFile) Stat() (os.FileInfo, error)   { return f.inner.Stat() }
func (f *faultFile) Close() error                 { return f.inner.Close() }
func (f *faultFile) Seek(o int64, w int) (int64, error) { return f.inner.Seek(o, w) }

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.check(OpRead, f.inner.Name()).apply(); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	fl := f.fs.check(OpWrite, f.inner.Name())
	if fl.delay > 0 {
		time.Sleep(fl.delay)
	}
	if fl.err != nil {
		n := 0
		if fl.torn > 0 {
			// A torn write: part of the payload reaches the disk before
			// the failure, exactly what a crash mid-write leaves behind.
			torn := fl.torn
			if torn > len(p) {
				torn = len(p)
			}
			n, _ = f.inner.Write(p[:torn])
		}
		return n, fl.err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.check(OpSync, f.inner.Name()).apply(); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.check(OpTruncate, f.inner.Name()).apply(); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}
