// Package experiments reproduces every quantitative artifact of the
// paper's evaluation (Section IV-B): Table I ("Optimization metrics")
// and the in-text partial-mining series. The same entry points back
// the cmd/experiments binary and the root benchmark harness, so the
// printed tables and the benchmarks cannot drift apart.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"adahealth/internal/cluster"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/synth"
	"adahealth/internal/vsm"
)

// Scale selects the dataset size for an experiment run.
type Scale int

const (
	// FullScale reproduces the paper's dataset: 6,380 patients,
	// 95,788 records, 159 exam types.
	FullScale Scale = iota
	// SmallScale is a fast structurally-identical dataset for smoke
	// runs and CI.
	SmallScale
)

// DataConfig returns the synthetic generator configuration for a
// scale and seed.
func DataConfig(s Scale, seed int64) synth.Config {
	var cfg synth.Config
	if s == FullScale {
		cfg = synth.DefaultConfig()
	} else {
		cfg = synth.SmallConfig()
	}
	cfg.Seed = seed
	return cfg
}

// vsmOptions is the paper-faithful transformation: raw exam counts per
// patient, L2-normalized (the overall-similarity index is cosine-based
// and the published SSE magnitudes — ≈0.3-0.5 per patient — match
// unit-norm vectors).
func vsmOptions() vsm.Options {
	return vsm.Options{Weighting: vsm.Count, Normalization: vsm.L2}
}

// BuildMatrix generates the dataset and applies the VSM transform.
func BuildMatrix(s Scale, seed int64) (*vsm.Matrix, error) {
	log, err := synth.Generate(DataConfig(s, seed))
	if err != nil {
		return nil, err
	}
	return vsm.Build(log, vsmOptions())
}

// ---------------------------------------------------------------------------
// E2: the partial-mining series (Section IV-B, in-text result)
// ---------------------------------------------------------------------------

// PartialConfig configures experiment E2.
type PartialConfig struct {
	Scale Scale
	Seed  int64
	// Ks are the cluster counts probed at every step (the paper
	// reports the conclusion holds "regardless of the number of
	// clusters").
	Ks []int
}

func (c PartialConfig) withDefaults() PartialConfig {
	if len(c.Ks) == 0 {
		c.Ks = []int{6, 8, 10}
	}
	return c
}

// PartialResult aliases the partial-mining result type for callers
// outside internal/partial.
type PartialResult = partial.Result

// RunPartial executes E2 and returns both the matrix (for reuse) and
// the partial-mining result. The context bounds the whole experiment.
func RunPartial(ctx context.Context, cfg PartialConfig) (*vsm.Matrix, *PartialResult, error) {
	m, err := BuildMatrix(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	return RunPartialOnMatrix(ctx, m, cfg)
}

// RunPartialOnMatrix is RunPartial with a prebuilt matrix (used by the
// benchmarks to exclude generation cost).
func RunPartialOnMatrix(ctx context.Context, m *vsm.Matrix, cfg PartialConfig) (*vsm.Matrix, *PartialResult, error) {
	cfg = cfg.withDefaults()
	res, err := partial.RunHorizontal(ctx, m, partial.Config{
		Fractions: []float64{0.20, 0.40, 1.00},
		Ks:        cfg.Ks,
		Tolerance: 0.05,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, res, nil
}

// FormatPartial renders the E2 series in the terms the paper uses.
func FormatPartial(w io.Writer, res *partial.Result) {
	fmt.Fprintf(w, "Partial-mining series (horizontal, tolerance %.0f%%)\n", res.Tolerance*100)
	fmt.Fprintf(w, "%-12s %-10s %-10s %-24s %s\n",
		"exam types", "#features", "raw rows", "overall similarity by K", "rel.diff")
	for i, s := range res.Steps {
		ks := make([]int, 0, len(s.SimilarityByK))
		for k := range s.SimilarityByK {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		sims := ""
		for _, k := range ks {
			sims += fmt.Sprintf("K=%d:%.4f ", k, s.SimilarityByK[k])
		}
		marker := " "
		if i == res.Selected {
			marker = "*"
		}
		fmt.Fprintf(w, "%-12s %-10d %-10s %-24s %.2f%% %s\n",
			fmt.Sprintf("%.0f%%", s.Fraction*100), s.NumFeatures,
			fmt.Sprintf("%.1f%%", s.RowCoverage*100), sims, s.RelDiff*100, marker)
	}
	sel := res.SelectedStep()
	fmt.Fprintf(w, "selected: %.0f%% of exam types (%.1f%% of raw rows), within %.0f%% of full-data similarity\n",
		sel.Fraction*100, sel.RowCoverage*100, res.Tolerance*100)
}

// ---------------------------------------------------------------------------
// E1: Table I "Optimization metrics"
// ---------------------------------------------------------------------------

// TableIConfig configures experiment E1.
type TableIConfig struct {
	Scale Scale
	Seed  int64
	// Ks defaults to the paper's grid {6,7,8,9,10,12,15,20}.
	Ks []int
	// CVFolds defaults to the paper's 10.
	CVFolds int
	// SubsetCoverage is the fraction of raw rows the working subset
	// must cover; the paper uses 85% ("only a subset of the original
	// dataset was used: 85% of the original raw data").
	SubsetCoverage float64
	// Parallelism bounds concurrent K evaluations.
	Parallelism int
}

func (c TableIConfig) withDefaults() TableIConfig {
	if len(c.Ks) == 0 {
		c.Ks = []int{6, 7, 8, 9, 10, 12, 15, 20}
	}
	if c.CVFolds <= 0 {
		c.CVFolds = 10
	}
	if c.SubsetCoverage <= 0 {
		c.SubsetCoverage = 0.85
	}
	return c
}

// TableIResult is the reproduced Table I.
type TableIResult struct {
	Sweep *optimize.SweepResult
	// SubsetFeatures / SubsetCoverage describe the 85%-of-rows subset
	// the sweep ran on.
	SubsetFeatures int
	SubsetCoverage float64
}

// RunTableI executes E1: build the dataset, take the feature prefix
// covering the configured fraction of raw rows, then sweep K with SSE
// + decision-tree 10-fold CV metrics. The context bounds the sweep.
func RunTableI(ctx context.Context, cfg TableIConfig) (*TableIResult, error) {
	cfg = cfg.withDefaults()
	m, err := BuildMatrix(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return RunTableIOnMatrix(ctx, m, cfg)
}

// RunTableIOnMatrix is RunTableI with a prebuilt matrix (used by the
// benchmarks to exclude generation cost).
func RunTableIOnMatrix(ctx context.Context, m *vsm.Matrix, cfg TableIConfig) (*TableIResult, error) {
	cfg = cfg.withDefaults()
	nf := m.FeaturesForCoverage(cfg.SubsetCoverage)
	working := m.Project(nf)

	maxK := 0
	for _, k := range cfg.Ks {
		if k > maxK {
			maxK = k
		}
	}
	ks := cfg.Ks
	if maxK > working.NumRows() {
		// Small-scale smoke runs: keep only viable Ks.
		ks = nil
		for _, k := range cfg.Ks {
			if k <= working.NumRows() {
				ks = append(ks, k)
			}
		}
	}

	// SweepMatrix warm-starts each K from the previous one and routes
	// every evaluation through the auto-selected exact kernel (Elkan
	// over the working subset's cached CSR view — the VSM matrix is
	// sparse by construction).
	sweep, err := optimize.SweepMatrix(ctx, working, optimize.SweepConfig{
		Ks:          ks,
		CVFolds:     cfg.CVFolds,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
		Cluster:     cluster.Options{Algorithm: cluster.AlgorithmAuto},
	})
	if err != nil {
		return nil, err
	}
	return &TableIResult{
		Sweep:          sweep,
		SubsetFeatures: nf,
		SubsetCoverage: m.CoverageAt(nf),
	}, nil
}

// PaperTableI returns the values published in Table I of the paper,
// for side-by-side comparison. Accuracy/precision/recall are percent.
func PaperTableI() []optimize.KResult {
	return []optimize.KResult{
		{K: 6, SSE: 3098.32, Accuracy: 87.79, Precision: 90.82, Recall: 77.30},
		{K: 7, SSE: 2805.00, Accuracy: 87.93, Precision: 86.93, Recall: 78.52},
		{K: 8, SSE: 2550.00, Accuracy: 90.41, Precision: 92.51, Recall: 79.72},
		{K: 9, SSE: 2482.36, Accuracy: 88.75, Precision: 71.03, Recall: 57.62},
		{K: 10, SSE: 2205.00, Accuracy: 87.49, Precision: 70.53, Recall: 51.06},
		{K: 12, SSE: 2101.60, Accuracy: 85.45, Precision: 64.29, Recall: 43.80},
		{K: 15, SSE: 1917.20, Accuracy: 75.18, Precision: 75.98, Recall: 55.93},
		{K: 20, SSE: 1534.00, Accuracy: 82.11, Precision: 52.59, Recall: 33.43},
	}
}

// PaperBestK is the configuration the paper's optimizer selects.
const PaperBestK = 8

// FormatTableI renders the reproduced table next to the paper's
// published values.
func FormatTableI(w io.Writer, res *TableIResult) {
	fmt.Fprintf(w, "Table I — optimization metrics (subset: %d features, %.1f%% of raw rows)\n",
		res.SubsetFeatures, res.SubsetCoverage*100)
	fmt.Fprintf(w, "%-4s | %-28s | %-28s\n", "", "measured", "paper")
	fmt.Fprintf(w, "%-4s | %8s %6s %6s %6s | %8s %6s %6s %6s\n",
		"K", "SSE", "Acc", "Prec", "Rec", "SSE", "Acc", "Prec", "Rec")
	paper := map[int]optimize.KResult{}
	for _, r := range PaperTableI() {
		paper[r.K] = r
	}
	for _, r := range res.Sweep.Rows {
		p, ok := paper[r.K]
		if !ok {
			fmt.Fprintf(w, "%-4d | %8.2f %6.2f %6.2f %6.2f | %8s %6s %6s %6s\n",
				r.K, r.SSE, r.Accuracy*100, r.Precision*100, r.Recall*100,
				"-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-4d | %8.2f %6.2f %6.2f %6.2f | %8.2f %6.2f %6.2f %6.2f\n",
			r.K, r.SSE, r.Accuracy*100, r.Precision*100, r.Recall*100,
			p.SSE, p.Accuracy, p.Precision, p.Recall)
	}
	fmt.Fprintf(w, "selected K = %d (paper: %d); SSE elbow at K = %d\n",
		res.Sweep.BestK, PaperBestK, res.Sweep.ElbowK)
}

// ---------------------------------------------------------------------------
// E3: Figure 1, the ADA-HEALTH architecture
// ---------------------------------------------------------------------------

// ArchitectureDiagram returns an ASCII rendering of Figure 1: the
// components and data flow implemented by internal/core.
func ArchitectureDiagram() string {
	return `
                        ADA-HEALTH (Figure 1)
  ┌────────────────────────────────────────────────────────────────┐
  │                        medical dataset                         │
  └───────────────┬────────────────────────────────────────────────┘
                  v
  ┌───────────────────────────────┐     ┌──────────────────────────┐
  │ Data characterization &       │---->│                          │
  │ transformation                │     │                          │
  │  internal/stats, internal/vsm │     │                          │
  └───────────────┬───────────────┘     │                          │
                  v                     │      Knowledge DB        │
  ┌───────────────────────────────┐     │        (K-DB)            │
  │ Data analytics optimization   │<--->│  internal/kdb on         │
  │  partial mining + K sweep     │     │  internal/docstore       │
  │  internal/partial, optimize   │     │                          │
  └───────────────┬───────────────┘     │  1 raw datasets          │
                  v                     │  2 transformed           │
  ┌───────────────────────────────┐     │  3 descriptors           │
  │ Mining engines                │---->│  4 clustering knowledge  │
  │  internal/cluster (K-means,   │     │  5 pattern knowledge     │
  │  filtering), internal/fpm     │     │  6 user feedback         │
  └───────────────┬───────────────┘     │                          │
                  v                     │                          │
  ┌───────────────────────────────┐     │                          │
  │ Identification of viable      │<----│                          │
  │ end-goals  internal/endgoal   │     │                          │
  └───────────────┬───────────────┘     └──────────▲───────────────┘
                  v                                │ feedback
  ┌───────────────────────────────┐                │
  │ Knowledge navigation &        │────────────────┘
  │ ranking  internal/ranking     │<---- domain expert
  └───────────────────────────────┘
`
}
