package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunPartialSmallScale(t *testing.T) {
	_, res, err := RunPartial(context.Background(), PartialConfig{Scale: SmallScale, Seed: 1, Ks: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("steps = %d, want the paper's 3", len(res.Steps))
	}
	fracs := []float64{0.20, 0.40, 1.00}
	for i, s := range res.Steps {
		if s.Fraction != fracs[i] {
			t.Errorf("step %d fraction = %v, want %v", i, s.Fraction, fracs[i])
		}
	}
	var buf bytes.Buffer
	FormatPartial(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "selected:") || !strings.Contains(out, "overall similarity") {
		t.Errorf("FormatPartial output incomplete:\n%s", out)
	}
}

func TestRunTableISmallScale(t *testing.T) {
	res, err := RunTableI(context.Background(), TableIConfig{
		Scale: SmallScale, Seed: 1, Ks: []int{4, 6, 8}, CVFolds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Sweep.Rows))
	}
	// Subset respects the 85% coverage target.
	if res.SubsetCoverage < 0.85 {
		t.Errorf("subset coverage = %v, want >= 0.85", res.SubsetCoverage)
	}
	// SSE decreasing in K (Table I's first shape).
	for i := 1; i < len(res.Sweep.Rows); i++ {
		if res.Sweep.Rows[i].SSE > res.Sweep.Rows[i-1].SSE*1.05 {
			t.Errorf("SSE not decreasing: K=%d %.2f then K=%d %.2f",
				res.Sweep.Rows[i-1].K, res.Sweep.Rows[i-1].SSE,
				res.Sweep.Rows[i].K, res.Sweep.Rows[i].SSE)
		}
	}
	var buf bytes.Buffer
	FormatTableI(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "paper") || !strings.Contains(out, "selected K") {
		t.Errorf("FormatTableI output incomplete:\n%s", out)
	}
}

func TestPaperTableIIsTableI(t *testing.T) {
	rows := PaperTableI()
	if len(rows) != 8 {
		t.Fatalf("paper rows = %d, want 8", len(rows))
	}
	// Spot-check the published values.
	if rows[0].K != 6 || rows[0].SSE != 3098.32 || rows[0].Accuracy != 87.79 {
		t.Errorf("K=6 row drifted: %+v", rows[0])
	}
	if rows[2].K != 8 || rows[2].Precision != 92.51 || rows[2].Recall != 79.72 {
		t.Errorf("K=8 row drifted: %+v", rows[2])
	}
	if PaperBestK != 8 {
		t.Errorf("PaperBestK = %d", PaperBestK)
	}
	// The published shape: SSE strictly decreasing in K.
	for i := 1; i < len(rows); i++ {
		if rows[i].SSE >= rows[i-1].SSE {
			t.Errorf("paper SSE not decreasing at K=%d", rows[i].K)
		}
	}
}

func TestArchitectureDiagramMentionsEveryComponent(t *testing.T) {
	d := ArchitectureDiagram()
	for _, comp := range []string{
		"characterization", "optimization", "K-DB", "end-goals",
		"navigation", "feedback", "internal/kdb", "internal/ranking",
	} {
		if !strings.Contains(d, comp) {
			t.Errorf("architecture diagram missing %q", comp)
		}
	}
	// The paper's six collections all appear.
	for _, coll := range []string{"raw datasets", "transformed", "descriptors",
		"clustering knowledge", "pattern knowledge", "user feedback"} {
		if !strings.Contains(d, coll) {
			t.Errorf("diagram missing collection %q", coll)
		}
	}
}

func TestDataConfigScales(t *testing.T) {
	full := DataConfig(FullScale, 9)
	if full.NumPatients != 6380 || full.Seed != 9 {
		t.Errorf("full config = %+v", full)
	}
	small := DataConfig(SmallScale, 3)
	if small.NumPatients >= full.NumPatients || small.Seed != 3 {
		t.Errorf("small config = %+v", small)
	}
}

func TestRunTableIOnMatrixClampsOversizedK(t *testing.T) {
	m, err := BuildMatrix(SmallScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTableIOnMatrix(context.Background(), m, TableIConfig{
		Scale: SmallScale, Seed: 1, Ks: []int{4, 100000}, CVFolds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Sweep.Rows {
		if r.K > m.NumRows() {
			t.Errorf("oversized K=%d survived clamping", r.K)
		}
	}
}
