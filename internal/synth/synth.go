// Package synth generates synthetic diabetic examination logs that
// reproduce the published marginals of the (proprietary) dataset used
// in the paper: 6,380 patients aged 4-95, 95,788 records over one year,
// 159 distinct examination types, with an inherently sparse,
// Zipf-skewed exam-frequency distribution and latent clinical profiles
// that give the clustering step real structure to find.
//
// The generator is fully deterministic given a seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"adahealth/internal/dataset"
)

// Config controls the generator. The zero value is not usable; start
// from DefaultConfig (paper scale) or SmallConfig (test scale).
type Config struct {
	Seed          int64
	NumPatients   int
	TargetRecords int // total examination records (exact after calibration)
	NumExamTypes  int
	NumProfiles   int // latent clinical profiles (paper's optimizer finds K=8)
	AgeMin        int
	AgeMax        int
	StartDate     time.Time
	Days          int // observation window length

	// ZipfExponent shapes the global exam-frequency distribution.
	// s = 1.0 over 159 types makes the top 20% of exam types cover
	// about 70% of records and the top 40% about 85%, matching the
	// coverage fractions reported in Section IV-B.
	ZipfExponent float64

	// ProfileFidelity is the probability that a mid-band exam draw is
	// remapped into the patient's own profile band (higher = cleaner
	// cluster structure). The remap preserves Zipf rank weights so the
	// global coverage curve is unchanged.
	ProfileFidelity float64

	// MeanVisits and MeanExamsPerVisit set the visit process; they are
	// calibrated so NumPatients * MeanVisits * MeanExamsPerVisit is
	// close to TargetRecords before exact adjustment.
	MeanVisits        float64
	MeanExamsPerVisit float64
}

// DefaultConfig reproduces the dataset of Section IV at full scale.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		NumPatients:       6380,
		TargetRecords:     95788,
		NumExamTypes:      159,
		NumProfiles:       8,
		AgeMin:            4,
		AgeMax:            95,
		StartDate:         time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:              365,
		ZipfExponent:      1.12,
		ProfileFidelity:   0.85,
		MeanVisits:        5.2,
		MeanExamsPerVisit: 2.9,
	}
}

// SmallConfig is a fast, structurally identical dataset for tests.
func SmallConfig() Config {
	c := DefaultConfig()
	c.NumPatients = 300
	c.TargetRecords = 4500
	c.NumExamTypes = 40
	c.NumProfiles = 4
	return c
}

// Validate reports the first configuration problem, if any.
func (c Config) Validate() error {
	switch {
	case c.NumPatients <= 0:
		return fmt.Errorf("synth: NumPatients must be positive, got %d", c.NumPatients)
	case c.NumExamTypes < 12:
		return fmt.Errorf("synth: NumExamTypes must be at least 12, got %d", c.NumExamTypes)
	case c.NumProfiles <= 0:
		return fmt.Errorf("synth: NumProfiles must be positive, got %d", c.NumProfiles)
	case c.TargetRecords < c.NumPatients:
		return fmt.Errorf("synth: TargetRecords (%d) must be at least NumPatients (%d)",
			c.TargetRecords, c.NumPatients)
	case c.AgeMin < 0 || c.AgeMax <= c.AgeMin:
		return fmt.Errorf("synth: bad age range [%d,%d]", c.AgeMin, c.AgeMax)
	case c.Days <= 0:
		return fmt.Errorf("synth: Days must be positive, got %d", c.Days)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("synth: ZipfExponent must be positive, got %g", c.ZipfExponent)
	case c.ProfileFidelity < 0 || c.ProfileFidelity > 1:
		return fmt.Errorf("synth: ProfileFidelity must be in [0,1], got %g", c.ProfileFidelity)
	}
	return nil
}

// profileSpec is one latent clinical profile.
type profileSpec struct {
	name    string
	ageMean float64
	ageStd  float64
	// bandExams are the indices (into the exam catalog) of the
	// mid-band exam types characteristic of this profile.
	bandExams []int
	// bundles are canonical co-prescribed exam sets, the source of the
	// frequent patterns MeTA-style mining should recover.
	bundles [][]int
	// visitBoost scales the number of visits (severe profiles are
	// examined more often).
	visitBoost float64
	// share is the profile's relative prevalence.
	share float64
}

// assignProfiles deterministically distributes patients over profiles
// proportionally to their prevalence shares, interleaved so any
// patient prefix is representative.
func assignProfiles(numPatients int, profiles []profileSpec) []int {
	total := 0.0
	for _, p := range profiles {
		total += p.share
	}
	assign := make([]int, numPatients)
	// Largest-remainder style interleaving: profile p is due at
	// patient i when its cumulative quota crosses an integer.
	given := make([]float64, len(profiles))
	for i := range assign {
		best, bestDeficit := 0, -1.0
		for p := range profiles {
			quota := profiles[p].share / total * float64(i+1)
			if deficit := quota - given[p]; deficit > bestDeficit {
				best, bestDeficit = p, deficit
			}
		}
		assign[i] = best
		given[best]++
	}
	return assign
}

var profileTemplates = []struct {
	name       string
	ageMean    float64
	ageStd     float64
	visitBoost float64
	// share is the relative prevalence of the profile in the patient
	// population; real cohorts are unbalanced (most diabetic patients
	// are well-controlled, complications are minorities).
	share    float64
	category string
}{
	{"controlled", 58, 11, 0.85, 0.28, "metabolic"},
	{"cardiovascular", 68, 9, 1.10, 0.14, "cardiovascular"},
	{"renal", 65, 10, 1.15, 0.10, "renal"},
	{"ophthalmic", 60, 12, 0.95, 0.10, "ophthalmic"},
	{"neuropathy", 63, 10, 1.00, 0.10, "neurologic"},
	{"young-type1", 24, 8, 1.05, 0.09, "endocrine"},
	{"gestational", 31, 5, 0.90, 0.06, "obstetric"},
	{"multi-complication", 72, 8, 1.35, 0.13, "severe"},
}

var routineNames = []string{
	"HbA1c", "FastingGlucose", "BloodPressure", "LipidPanel", "UrineAnalysis",
	"SerumCreatinine", "BodyWeight", "DietaryCounseling", "FootExam", "GeneralCheckup",
}

// catalogLayout partitions the exam catalog by global frequency rank:
// ranks [0, routineEnd) are shared routine exams, [routineEnd,
// bandStart) are common laboratory tests prescribed across all
// profiles, [bandStart, bandEnd) is the profile-discriminating
// mid-band (complication-specific diagnostics), and [bandEnd, n) is
// the rare tail.
//
// Placing the discriminating band beyond the top-20% rank boundary
// reproduces the paper's partial-mining finding: the top 20% of exam
// types (≈70% of records) are routine and carry little grouping
// signal, while the top 40% (≈85% of records) reach deep enough into
// the complication-specific diagnostics to cluster almost as well as
// the full data.
type catalogLayout struct {
	routineEnd int
	bandStart  int
	bandEnd    int
}

func layoutFor(n int) catalogLayout {
	routine := n / 16
	if routine < 4 {
		routine = 4
	}
	if routine > len(routineNames) {
		routine = len(routineNames)
	}
	bandStart := n / 5
	if bandStart <= routine {
		bandStart = routine + 1
	}
	bandEnd := (n * 7) / 10
	if bandEnd <= bandStart+2 {
		bandEnd = bandStart + 2
	}
	if bandEnd > n {
		bandEnd = n
	}
	return catalogLayout{routineEnd: routine, bandStart: bandStart, bandEnd: bandEnd}
}

// Generate builds a synthetic examination log per cfg.
func Generate(cfg Config) (*dataset.Log, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lay := layoutFor(cfg.NumExamTypes)

	profiles := buildProfiles(cfg, lay)
	log := dataset.NewLog(fmt.Sprintf("synthetic-diabetes-seed%d", cfg.Seed))
	addCatalog(log, cfg, lay, profiles)

	// Zipf weights over frequency ranks 1..n, with the head flattened:
	// routine and common-lab exams (ranks below the band) are
	// prescribed near-uniformly to everyone — their *total* mass keeps
	// the Zipf value (so the coverage curve of §IV-B is preserved),
	// but no single routine exam dominates a patient's history. This
	// mirrors real practice (every diabetic patient gets HbA1c, blood
	// pressure and lipids at similar rates) and keeps the cosine
	// structure of the VSM driven by the complication-specific
	// mid-band rather than by routine noise.
	weights := make([]float64, cfg.NumExamTypes)
	for i := range weights {
		weights[i] = 1.0 / math.Pow(float64(i+1), cfg.ZipfExponent)
	}
	headMass := 0.0
	for i := 0; i < lay.bandStart; i++ {
		headMass += weights[i]
	}
	// Near-flat head with a gentle slope to keep the intended rank
	// order: rank i gets share ∝ (1 + 0.5·(bandStart-i)/bandStart).
	slopeTotal := 0.0
	for i := 0; i < lay.bandStart; i++ {
		slopeTotal += 1 + 0.5*float64(lay.bandStart-i)/float64(lay.bandStart)
	}
	for i := 0; i < lay.bandStart; i++ {
		share := (1 + 0.5*float64(lay.bandStart-i)/float64(lay.bandStart)) / slopeTotal
		weights[i] = headMass * share
	}
	cum := make([]float64, cfg.NumExamTypes)
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}

	drawRank := func() int {
		u := rng.Float64() * total
		return sort.SearchFloat64s(cum, u)
	}
	// drawRoutine samples among the shared routine exams only.
	routineTotal := cum[lay.routineEnd-1]
	drawRoutine := func() int {
		u := rng.Float64() * routineTotal
		return sort.SearchFloat64s(cum[:lay.routineEnd], u)
	}

	// Per-profile cumulative weights over that profile's band exams,
	// using the original Zipf weights so that the remap preserves the
	// global coverage curve.
	profCum := make([][]float64, len(profiles))
	profTot := make([]float64, len(profiles))
	for p, spec := range profiles {
		profCum[p] = make([]float64, len(spec.bandExams))
		t := 0.0
		for j, e := range spec.bandExams {
			t += weights[e]
			profCum[p][j] = t
		}
		profTot[p] = t
	}
	drawProfileExam := func(p int) int {
		spec := profiles[p]
		if len(spec.bandExams) == 0 {
			return drawRank()
		}
		u := rng.Float64() * profTot[p]
		j := sort.SearchFloat64s(profCum[p], u)
		if j >= len(spec.bandExams) {
			j = len(spec.bandExams) - 1
		}
		return spec.bandExams[j]
	}

	// Patients, assigned to profiles by prevalence share.
	assign := assignProfiles(cfg.NumPatients, profiles)
	for i := 0; i < cfg.NumPatients; i++ {
		spec := profiles[assign[i]]
		age := int(math.Round(rng.NormFloat64()*spec.ageStd + spec.ageMean))
		if age < cfg.AgeMin {
			age = cfg.AgeMin
		}
		if age > cfg.AgeMax {
			age = cfg.AgeMax
		}
		if err := log.AddPatient(dataset.Patient{
			ID:      fmt.Sprintf("P%06d", i+1),
			Age:     age,
			Profile: spec.name,
		}); err != nil {
			return nil, err
		}
	}

	// Visits and records.
	examCode := func(i int) string { return log.Exams[i].Code }

	for i := 0; i < cfg.NumPatients; i++ {
		p := assign[i]
		spec := profiles[p]

		// Each patient repeatedly undergoes a few personal monitoring
		// exams drawn from their profile's band (complication patients
		// repeat their specific diagnostics across visits). The
		// concentration of repeats on 2-3 exam types is what gives
		// patient groups their high internal cosine similarity.
		personal := make([]int, 0, 3)
		for len(personal) < 3 && len(spec.bandExams) > 0 {
			personal = append(personal, drawProfileExam(p))
		}
		pickExam := func() int {
			r := drawRank()
			if r >= lay.bandStart && r < lay.bandEnd && rng.Float64() < cfg.ProfileFidelity {
				if len(personal) > 0 {
					return personal[rng.Intn(len(personal))]
				}
				return drawProfileExam(p)
			}
			return r
		}

		nVisits := 1 + poisson(rng, cfg.MeanVisits*spec.visitBoost-1)
		for v := 0; v < nVisits; v++ {
			day := rng.Intn(cfg.Days)
			date := cfg.StartDate.AddDate(0, 0, day)
			var exams []int
			if len(spec.bundles) > 0 && rng.Float64() < 0.30 {
				// Canonical co-prescribed bundle (frequent pattern),
				// accompanied by routine exams drawn independently of
				// the profile.
				exams = append(exams, spec.bundles[rng.Intn(len(spec.bundles))]...)
				exams = append(exams, drawRoutine())
				if rng.Float64() < 0.6 {
					exams = append(exams, drawRoutine())
				}
			} else {
				n := 1 + poisson(rng, cfg.MeanExamsPerVisit-1)
				if n > 6 {
					n = 6
				}
				for e := 0; e < n; e++ {
					exams = append(exams, pickExam())
				}
			}
			for _, e := range exams {
				if err := log.AddRecord(dataset.Record{
					PatientID: log.Patients[i].ID,
					ExamCode:  examCode(e),
					Date:      date,
				}); err != nil {
					return nil, err
				}
			}
		}
	}

	ensureAllExamsPresent(log, rng, cfg)
	calibrate(log, rng, cfg, drawRank)
	return log, nil
}

// buildProfiles instantiates cfg.NumProfiles profiles and partitions
// the mid-band exam types among them round-robin, so that every
// profile's band subset spans high- and low-frequency ranks.
func buildProfiles(cfg Config, lay catalogLayout) []profileSpec {
	n := cfg.NumProfiles
	profiles := make([]profileSpec, n)
	for i := 0; i < n; i++ {
		t := profileTemplates[i%len(profileTemplates)]
		name := t.name
		if i >= len(profileTemplates) {
			name = fmt.Sprintf("%s-%d", t.name, i/len(profileTemplates)+1)
		}
		profiles[i] = profileSpec{
			name:       name,
			ageMean:    t.ageMean,
			ageStd:     t.ageStd,
			visitBoost: t.visitBoost,
			share:      t.share,
		}
	}
	for e := lay.bandStart; e < lay.bandEnd; e++ {
		p := (e - lay.bandStart) % n
		profiles[p].bandExams = append(profiles[p].bandExams, e)
	}
	// Canonical bundles: 2-3 co-prescribed profile-specific exams.
	// Routine exams are added per visit at generation time so that no
	// profile signal leaks into the top-frequency ranks (the paper's
	// partial-mining result depends on the most frequent exam types
	// being shared across patient groups).
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5f5f5f))
	for p := range profiles {
		be := profiles[p].bandExams
		nb := 2
		if len(be) >= 6 {
			nb = 3
		}
		for b := 0; b < nb && len(be) >= 2; b++ {
			bundle := []int{
				be[(2*b)%len(be)],
				be[(2*b+1)%len(be)],
			}
			if rng.Float64() < 0.5 && len(be) >= 3 {
				bundle = append(bundle, be[(2*b+2)%len(be)])
			}
			profiles[p].bundles = append(profiles[p].bundles, dedupInts(bundle))
		}
	}
	return profiles
}

func addCatalog(log *dataset.Log, cfg Config, lay catalogLayout, profiles []profileSpec) {
	catFor := make([]string, cfg.NumExamTypes)
	for i := range catFor {
		switch {
		case i < lay.routineEnd:
			catFor[i] = "routine"
		case i < lay.bandStart:
			catFor[i] = "commonlab"
		case i < lay.bandEnd:
			catFor[i] = "specialist"
		default:
			catFor[i] = "rare"
		}
	}
	for p, spec := range profiles {
		t := profileTemplates[p%len(profileTemplates)]
		for _, e := range spec.bandExams {
			catFor[e] = t.category
		}
	}
	for i := 0; i < cfg.NumExamTypes; i++ {
		name := fmt.Sprintf("%s-test-%03d", catFor[i], i+1)
		if i < lay.routineEnd && i < len(routineNames) {
			name = routineNames[i]
		}
		// The catalog is ordered by intended global frequency rank.
		log.AddExam(dataset.ExamType{ //nolint:errcheck // codes are unique by construction
			Code:     fmt.Sprintf("EX%03d", i+1),
			Name:     name,
			Category: catFor[i],
		})
	}
}

// ensureAllExamsPresent injects one record for any exam type the visit
// process never produced, so the catalog cardinality (159 in the
// paper) is reflected in the data.
func ensureAllExamsPresent(log *dataset.Log, rng *rand.Rand, cfg Config) {
	freq := log.ExamFrequencies()
	for _, e := range log.Exams {
		if freq[e.Code] > 0 {
			continue
		}
		p := log.Patients[rng.Intn(len(log.Patients))]
		log.AddRecord(dataset.Record{ //nolint:errcheck
			PatientID: p.ID,
			ExamCode:  e.Code,
			Date:      cfg.StartDate.AddDate(0, 0, rng.Intn(cfg.Days)),
		})
	}
}

// calibrate adds or removes records until the log holds exactly
// cfg.TargetRecords, preserving at least one record per exam type.
func calibrate(log *dataset.Log, rng *rand.Rand, cfg Config, drawRank func() int) {
	for log.NumRecords() < cfg.TargetRecords {
		p := log.Patients[rng.Intn(len(log.Patients))]
		e := log.Exams[drawRank()]
		log.AddRecord(dataset.Record{ //nolint:errcheck
			PatientID: p.ID,
			ExamCode:  e.Code,
			Date:      cfg.StartDate.AddDate(0, 0, rng.Intn(cfg.Days)),
		})
	}
	if log.NumRecords() > cfg.TargetRecords {
		freq := log.ExamFrequencies()
		// Remove random records whose exam type stays represented.
		for log.NumRecords() > cfg.TargetRecords {
			i := rng.Intn(log.NumRecords())
			code := log.Records[i].ExamCode
			if freq[code] <= 1 {
				continue
			}
			freq[code]--
			last := log.NumRecords() - 1
			log.Records[i] = log.Records[last]
			log.Records = log.Records[:last]
		}
	}
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's algorithm; fine for the small means used here.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
