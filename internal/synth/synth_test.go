package synth

import (
	"testing"

	"adahealth/internal/dataset"
)

func TestGenerateSmallShape(t *testing.T) {
	cfg := SmallConfig()
	log, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := log.NumPatients(); got != cfg.NumPatients {
		t.Errorf("patients = %d, want %d", got, cfg.NumPatients)
	}
	if got := log.NumRecords(); got != cfg.TargetRecords {
		t.Errorf("records = %d, want exactly %d", got, cfg.TargetRecords)
	}
	if got := log.NumExamTypes(); got != cfg.NumExamTypes {
		t.Errorf("exam types = %d, want %d", got, cfg.NumExamTypes)
	}
}

func TestGenerateEveryExamPresent(t *testing.T) {
	log, err := Generate(SmallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for code, c := range log.ExamFrequencies() {
		if c == 0 {
			t.Errorf("exam %s has no records", code)
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	cfg := SmallConfig()
	log, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	issues := log.Validate(dataset.ValidateOptions{
		MinAge: cfg.AgeMin, MaxAge: cfg.AgeMax,
		From: cfg.StartDate, To: cfg.StartDate.AddDate(0, 0, cfg.Days),
	})
	if len(issues) != 0 {
		t.Errorf("generated log has %d validation issues, first: %v", len(issues), issues[0])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRecords() != b.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", a.NumRecords(), b.NumRecords())
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	cfg := SmallConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 99
	b, _ := Generate(cfg)
	same := true
	for i := range a.Records {
		if i >= len(b.Records) || a.Records[i] != b.Records[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical logs")
	}
}

func TestGenerateProfilesAssigned(t *testing.T) {
	cfg := SmallConfig()
	log, _ := Generate(cfg)
	seen := map[string]int{}
	for _, p := range log.Patients {
		if p.Profile == "" {
			t.Fatalf("patient %s has no profile", p.ID)
		}
		seen[p.Profile]++
	}
	if len(seen) != cfg.NumProfiles {
		t.Errorf("distinct profiles = %d, want %d", len(seen), cfg.NumProfiles)
	}
}

func TestGenerateCoverageShape(t *testing.T) {
	// The Zipf exponent is tuned so the top 20% of exam types cover
	// roughly 70% of records and the top 40% roughly 85% (§IV-B).
	cfg := DefaultConfig()
	cfg.NumPatients = 1500
	cfg.TargetRecords = 22500
	log, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	codes := log.ExamsByFrequency()
	freq := log.ExamFrequencies()
	coverage := func(frac float64) float64 {
		n := int(frac * float64(len(codes)))
		covered := 0
		for _, c := range codes[:n] {
			covered += freq[c]
		}
		return float64(covered) / float64(log.NumRecords())
	}
	if c20 := coverage(0.20); c20 < 0.60 || c20 > 0.80 {
		t.Errorf("top-20%% coverage = %.3f, want ≈0.70 (0.60..0.80)", c20)
	}
	if c40 := coverage(0.40); c40 < 0.78 || c40 > 0.92 {
		t.Errorf("top-40%% coverage = %.3f, want ≈0.85 (0.78..0.92)", c40)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no patients", func(c *Config) { c.NumPatients = 0 }},
		{"few exams", func(c *Config) { c.NumExamTypes = 5 }},
		{"no profiles", func(c *Config) { c.NumProfiles = 0 }},
		{"records < patients", func(c *Config) { c.TargetRecords = c.NumPatients - 1 }},
		{"bad ages", func(c *Config) { c.AgeMin, c.AgeMax = 50, 40 }},
		{"no days", func(c *Config) { c.Days = 0 }},
		{"bad zipf", func(c *Config) { c.ZipfExponent = 0 }},
		{"bad fidelity", func(c *Config) { c.ProfileFidelity = 1.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := SmallConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
			if _, err := Generate(cfg); err == nil {
				t.Errorf("Generate accepted %s", tc.name)
			}
		})
	}
}

func TestPaperScaleConfigIsPaperScale(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumPatients != 6380 || cfg.TargetRecords != 95788 || cfg.NumExamTypes != 159 {
		t.Errorf("DefaultConfig drifted from the paper: %+v", cfg)
	}
	if cfg.AgeMin != 4 || cfg.AgeMax != 95 || cfg.Days != 365 {
		t.Errorf("DefaultConfig age/window drifted: %+v", cfg)
	}
}
