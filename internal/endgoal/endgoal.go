// Package endgoal implements the identification of viable end-goals,
// the component the paper calls "the core and one of the most
// innovative contributions of the ADA-HEALTH architecture". It follows
// the paper's three key ingredients:
//
//  1. the K-DB storing past user feedback and dataset characterizations,
//  2. an algorithm identifying *viable* end-goals for a dataset
//     (formal feasibility rules over the statistical descriptor), and
//  3. an algorithm selecting the end-goals *of interest* to the user,
//     framed as a classification problem trained on past interactions
//     (the more feedback, the more accurate the model).
package endgoal

import (
	"fmt"
	"sort"

	"adahealth/internal/classify"
	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/stats"
)

// ID names an analysis end-goal.
type ID string

// The end-goal catalog, drawn from the healthcare analyses the paper's
// introduction motivates.
const (
	GoalPatientGroups    ID = "patient-group-discovery"
	GoalExamPatterns     ID = "common-exam-patterns"
	GoalCompliance       ID = "treatment-compliance"
	GoalOutcome          ID = "outcome-prediction"
	GoalAdverseEvents    ID = "adverse-event-monitoring"
	GoalResourcePlanning ID = "resource-planning"
)

// Goal is one catalog entry with its feasibility rule.
type Goal struct {
	ID          ID
	Name        string
	Description string
	// Algorithm is the mining family that realizes the goal.
	Algorithm string
	// check returns whether the goal is viable on a dataset with the
	// given characterization, with a human-readable reason.
	check func(stats.Descriptor) (bool, string)
}

// Catalog returns the built-in goals in a deterministic order.
func Catalog() []Goal {
	return []Goal{
		{
			ID:          GoalPatientGroups,
			Name:        "Discover groups of patients with similar clinical history",
			Description: "Cluster patients by examination history (precision-medicine cohorts).",
			Algorithm:   "clustering",
			check: func(d stats.Descriptor) (bool, string) {
				switch {
				case d.NumPatients < 50:
					return false, fmt.Sprintf("needs >= 50 patients, dataset has %d", d.NumPatients)
				case d.NumExamTypes < 5:
					return false, fmt.Sprintf("needs >= 5 exam types, dataset has %d", d.NumExamTypes)
				case d.RecordsPerPatient.Mean < 2:
					return false, "patients average fewer than 2 records: histories too thin to group"
				}
				return true, "enough patients with non-trivial histories"
			},
		},
		{
			ID:          GoalExamPatterns,
			Name:        "Identify examinations commonly prescribed together",
			Description: "Frequent-pattern discovery over per-visit exam baskets (MeTA-style).",
			Algorithm:   "frequent-patterns",
			check: func(d stats.Descriptor) (bool, string) {
				switch {
				case d.NumVisits < 100:
					return false, fmt.Sprintf("needs >= 100 visits, dataset has %d", d.NumVisits)
				case d.ExamsPerVisit.Mean < 1.3:
					return false, "visits average close to a single exam: no co-occurrence signal"
				}
				return true, "visits carry multiple exams: co-prescription patterns extractable"
			},
		},
		{
			ID:          GoalCompliance,
			Name:        "Assess adherence of prescriptions to clinical guidelines",
			Description: "Compare longitudinal exam sequences against guideline templates.",
			Algorithm:   "frequent-patterns",
			check: func(d stats.Descriptor) (bool, string) {
				switch {
				case d.SpanDays < 180:
					return false, fmt.Sprintf("needs >= 180 days of history, dataset spans %d", d.SpanDays)
				case d.RecordsPerPatient.Mean < 4:
					return false, "too few records per patient to assess periodic adherence"
				}
				return true, "longitudinal coverage supports adherence assessment"
			},
		},
		{
			ID:          GoalOutcome,
			Name:        "Predict and assess the outcome of medical treatments",
			Description: "Supervised prediction of treatment outcomes.",
			Algorithm:   "classification",
			check: func(d stats.Descriptor) (bool, string) {
				// Examination logs carry no outcome labels; the goal
				// becomes viable only for datasets that provide them.
				if !d.HasOutcomeLabels {
					return false, "dataset has no outcome labels (examination logs record events, not outcomes)"
				}
				if d.NumPatients < 100 {
					return false, fmt.Sprintf("needs >= 100 labelled patients, dataset has %d", d.NumPatients)
				}
				return true, "labelled outcomes available"
			},
		},
		{
			ID:          GoalAdverseEvents,
			Name:        "Monitor adverse events and interactions beyond clinical trials",
			Description: "High-lift association rules flag unexpected exam/treatment co-occurrences.",
			Algorithm:   "association-rules",
			check: func(d stats.Descriptor) (bool, string) {
				if d.NumVisits < 500 {
					return false, fmt.Sprintf("needs >= 500 visits for stable lift estimates, dataset has %d", d.NumVisits)
				}
				return true, "enough transactions for stable association statistics"
			},
		},
		{
			ID:          GoalResourcePlanning,
			Name:        "Plan resource allocation and reduce costs",
			Description: "Volume and seasonality analysis of examination demand.",
			Algorithm:   "statistics",
			check: func(d stats.Descriptor) (bool, string) {
				switch {
				case d.SpanDays < 90:
					return false, fmt.Sprintf("needs >= 90 days of history, dataset spans %d", d.SpanDays)
				case d.NumRecords < 1000:
					return false, fmt.Sprintf("needs >= 1000 records for stable demand estimates, dataset has %d", d.NumRecords)
				}
				return true, "volume and span support demand estimation"
			},
		},
	}
}

// Recommendation is the verdict for one goal on one dataset.
type Recommendation struct {
	Goal     Goal
	Feasible bool
	Reason   string
	// Interest is the predicted degree of interestingness for this
	// user base, learned from K-DB feedback when available.
	Interest knowledge.Interest
	// Score orders recommendations (higher first).
	Score float64
	// Source explains where Interest came from: "model" or "prior".
	Source string
}

// Recommender predicts viable and interesting end-goals.
type Recommender struct {
	kdb   *kdb.KDB
	goals []Goal
	// MinFeedback is the number of goal-labelled feedback entries
	// required before the learned model replaces the priors.
	MinFeedback int
	// Seed drives the (deterministic) decision-tree training.
	Seed int64
}

// NewRecommender builds a recommender over a knowledge base (which may
// be nil for a pure-feasibility recommender).
func NewRecommender(k *kdb.KDB) *Recommender {
	return &Recommender{kdb: k, goals: Catalog(), MinFeedback: 6}
}

// Recommend evaluates every catalog goal against the descriptor:
// feasibility first, then interest prediction from accumulated
// feedback (falling back to exploratory-first priors, per the paper's
// preference for algorithms that "do not require apriori knowledge").
func (r *Recommender) Recommend(d stats.Descriptor) ([]Recommendation, error) {
	model, trained, err := r.trainInterestModel()
	if err != nil {
		return nil, err
	}
	goalIndex := map[ID]int{}
	for i, g := range r.goals {
		goalIndex[g.ID] = i
	}

	out := make([]Recommendation, 0, len(r.goals))
	for _, g := range r.goals {
		ok, reason := g.check(d)
		rec := Recommendation{Goal: g, Feasible: ok, Reason: reason}
		if trained {
			cls := model.Predict(featuresFor(d, goalIndex[g.ID], len(r.goals)))
			rec.Interest = interestFromClass(cls)
			rec.Source = "model"
		} else {
			rec.Interest = priorInterest(g.ID)
			rec.Source = "prior"
		}
		rec.Score = scoreOf(rec)
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Feasible != out[j].Feasible {
			return out[i].Feasible
		}
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Goal.ID < out[j].Goal.ID
	})
	return out, nil
}

// priorInterest encodes the paper's exploratory-first stance.
func priorInterest(id ID) knowledge.Interest {
	switch id {
	case GoalPatientGroups, GoalExamPatterns:
		return knowledge.InterestHigh
	case GoalAdverseEvents, GoalCompliance:
		return knowledge.InterestMedium
	default:
		return knowledge.InterestLow
	}
}

func interestFromClass(c int) knowledge.Interest {
	switch c {
	case 2:
		return knowledge.InterestHigh
	case 1:
		return knowledge.InterestMedium
	default:
		return knowledge.InterestLow
	}
}

func scoreOf(rec Recommendation) float64 {
	s := float64(knowledge.InterestScore(rec.Interest))
	if !rec.Feasible {
		s -= 10
	}
	return s
}

// featuresFor encodes (dataset descriptor, goal) for the interest
// classifier: goal one-hot plus the descriptor statistics the
// feasibility rules read.
func featuresFor(d stats.Descriptor, goalIdx, numGoals int) []float64 {
	x := make([]float64, 0, numGoals+9)
	for i := 0; i < numGoals; i++ {
		if i == goalIdx {
			x = append(x, 1)
		} else {
			x = append(x, 0)
		}
	}
	x = append(x,
		float64(d.NumPatients),
		float64(d.NumRecords),
		float64(d.NumExamTypes),
		float64(d.NumVisits),
		d.VSMSparsity,
		d.FrequencyEntropyNorm,
		d.FrequencyGini,
		d.RecordsPerPatient.Mean,
		d.ExamsPerVisit.Mean,
	)
	return x
}

// trainInterestModel builds the decision-tree interest predictor from
// the K-DB's goal-labelled feedback joined with stored descriptors.
// trained is false when there is not enough feedback yet.
func (r *Recommender) trainInterestModel() (classify.Classifier, bool, error) {
	if r.kdb == nil {
		return nil, false, nil
	}
	feedback, err := r.kdb.FeedbackFor("")
	if err != nil {
		return nil, false, err
	}
	descs, err := r.kdb.Descriptors()
	if err != nil {
		return nil, false, err
	}
	descByName := map[string]stats.Descriptor{}
	for _, d := range descs {
		descByName[d.DatasetName] = d
	}
	goalIndex := map[ID]int{}
	for i, g := range r.goals {
		goalIndex[g.ID] = i
	}

	var X [][]float64
	var y []int
	for _, fb := range feedback {
		if fb.Goal == "" {
			continue
		}
		gi, ok := goalIndex[ID(fb.Goal)]
		if !ok {
			continue
		}
		d, ok := descByName[fb.Dataset]
		if !ok {
			continue
		}
		score := knowledge.InterestScore(fb.Interest)
		if score < 0 {
			continue
		}
		X = append(X, featuresFor(d, gi, len(r.goals)))
		y = append(y, score)
	}
	if len(X) < r.MinFeedback {
		return nil, false, nil
	}
	tree := classify.NewDecisionTree(classify.TreeOptions{MaxDepth: 6, MinSamplesLeaf: 1})
	if err := tree.Fit(X, y); err != nil {
		return nil, false, fmt.Errorf("endgoal: training interest model: %w", err)
	}
	return tree, true, nil
}
