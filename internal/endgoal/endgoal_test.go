package endgoal

import (
	"fmt"
	"testing"

	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/stats"
)

// richDescriptor characterizes a dataset on which the exploratory
// goals are all feasible.
func richDescriptor() stats.Descriptor {
	d := stats.Descriptor{
		DatasetName:  "rich",
		NumPatients:  6380,
		NumRecords:   95788,
		NumExamTypes: 159,
		NumVisits:    30000,
		SpanDays:     365,
	}
	d.RecordsPerPatient.Mean = 15
	d.ExamsPerVisit.Mean = 2.9
	return d
}

func TestCatalogDeterministicOrder(t *testing.T) {
	a, b := Catalog(), Catalog()
	if len(a) != 6 {
		t.Fatalf("catalog size = %d, want 6", len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("catalog order not deterministic")
		}
	}
}

func TestFeasibilityOnRichDataset(t *testing.T) {
	r := NewRecommender(nil)
	recs, err := r.Recommend(richDescriptor())
	if err != nil {
		t.Fatal(err)
	}
	feasible := map[ID]bool{}
	for _, rec := range recs {
		feasible[rec.Goal.ID] = rec.Feasible
	}
	for _, id := range []ID{GoalPatientGroups, GoalExamPatterns,
		GoalCompliance, GoalAdverseEvents, GoalResourcePlanning} {
		if !feasible[id] {
			t.Errorf("goal %s infeasible on rich dataset", id)
		}
	}
	// Exam logs carry no outcome labels: supervised goal gated off.
	if feasible[GoalOutcome] {
		t.Error("outcome prediction feasible without outcome labels")
	}
}

func TestFeasibilityOnTinyDataset(t *testing.T) {
	d := stats.Descriptor{DatasetName: "tiny", NumPatients: 10,
		NumRecords: 20, NumExamTypes: 3, NumVisits: 15, SpanDays: 20}
	d.RecordsPerPatient.Mean = 2
	d.ExamsPerVisit.Mean = 1.1
	r := NewRecommender(nil)
	recs, err := r.Recommend(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Feasible {
			t.Errorf("goal %s feasible on a 10-patient log: %s", rec.Goal.ID, rec.Reason)
		}
		if rec.Reason == "" {
			t.Errorf("goal %s has no reason", rec.Goal.ID)
		}
	}
}

func TestFeasibleGoalsRankAboveInfeasible(t *testing.T) {
	d := richDescriptor()
	r := NewRecommender(nil)
	recs, err := r.Recommend(d)
	if err != nil {
		t.Fatal(err)
	}
	seenInfeasible := false
	for _, rec := range recs {
		if !rec.Feasible {
			seenInfeasible = true
		} else if seenInfeasible {
			t.Fatalf("feasible goal %s ranked below an infeasible one", rec.Goal.ID)
		}
	}
}

func TestPriorsPreferExploratoryGoals(t *testing.T) {
	// With no feedback the paper's exploratory-first stance applies:
	// clustering and pattern goals come first.
	r := NewRecommender(nil)
	recs, err := r.Recommend(richDescriptor())
	if err != nil {
		t.Fatal(err)
	}
	first := recs[0].Goal.ID
	if first != GoalPatientGroups && first != GoalExamPatterns {
		t.Errorf("first recommendation = %s, want an exploratory goal", first)
	}
	if recs[0].Source != "prior" {
		t.Errorf("source = %q, want prior without feedback", recs[0].Source)
	}
}

// seedFeedback trains the K-DB with consistent judgements: this user
// base loves adverse-event monitoring and dislikes patient grouping.
func seedFeedback(t *testing.T, k *kdb.KDB, d stats.Descriptor, n int) {
	t.Helper()
	if _, err := k.StoreDescriptor(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := k.RecordFeedback(kdb.Feedback{
			User: fmt.Sprintf("u%d", i), Dataset: d.DatasetName,
			ItemID: fmt.Sprintf("i%d", i), Goal: string(GoalAdverseEvents),
			Interest: knowledge.InterestHigh,
		}); err != nil {
			t.Fatal(err)
		}
		if err := k.RecordFeedback(kdb.Feedback{
			User: fmt.Sprintf("u%d", i), Dataset: d.DatasetName,
			ItemID: fmt.Sprintf("j%d", i), Goal: string(GoalPatientGroups),
			Interest: knowledge.InterestLow,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLearnedModelOverridesPriors(t *testing.T) {
	k, err := kdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	d := richDescriptor()
	seedFeedback(t, k, d, 5) // 10 labelled entries >= MinFeedback

	r := NewRecommender(k)
	recs, err := r.Recommend(d)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[ID]Recommendation{}
	for _, rec := range recs {
		byID[rec.Goal.ID] = rec
	}
	if byID[GoalAdverseEvents].Source != "model" {
		t.Fatalf("model not trained: source = %q", byID[GoalAdverseEvents].Source)
	}
	if byID[GoalAdverseEvents].Interest != knowledge.InterestHigh {
		t.Errorf("adverse events interest = %v, want high (learned)",
			byID[GoalAdverseEvents].Interest)
	}
	if byID[GoalPatientGroups].Interest != knowledge.InterestLow {
		t.Errorf("patient groups interest = %v, want low (learned)",
			byID[GoalPatientGroups].Interest)
	}
	// Ordering follows the learned interest.
	if recs[0].Goal.ID != GoalAdverseEvents {
		t.Errorf("first goal = %s, want adverse events after feedback", recs[0].Goal.ID)
	}
}

func TestTooLittleFeedbackKeepsPriors(t *testing.T) {
	k, _ := kdb.Open("")
	d := richDescriptor()
	seedFeedback(t, k, d, 1) // 2 entries < MinFeedback (6)
	r := NewRecommender(k)
	recs, err := r.Recommend(d)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Source != "prior" {
		t.Errorf("source = %q, want prior with sparse feedback", recs[0].Source)
	}
}

func TestFeedbackWithoutDescriptorIgnored(t *testing.T) {
	k, _ := kdb.Open("")
	// Feedback references a dataset whose descriptor was never stored.
	for i := 0; i < 10; i++ {
		k.RecordFeedback(kdb.Feedback{User: "u", Dataset: "ghost",
			ItemID: fmt.Sprintf("i%d", i), Goal: string(GoalExamPatterns),
			Interest: knowledge.InterestHigh})
	}
	r := NewRecommender(k)
	recs, err := r.Recommend(richDescriptor())
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Source == "model" {
		t.Error("model trained from unjoinable feedback")
	}
}
