// Package repl ships the K-DB's write-ahead log from a leader daemon
// to warm-standby followers over HTTP. The wire format IS the
// docstore WAL's on-disk frame format (see the replication contract in
// package docstore): the leader streams the raw bytes of its durable
// log, and the follower re-verifies every frame's CRC, persists it to
// its own log, and applies it with the same code a reopening store
// runs — so a follower restart is an ordinary recovery, and its
// durable WAL size is its resume offset.
//
// The follower is robustness-first: capped exponential backoff with
// full jitter between attempts (reset only on real progress — applied
// frames or a completed bootstrap, never on a mere status poll), a
// per-request timeout on control calls, a stall watchdog on the WAL
// stream, torn/corrupt frames aborting the stream for a clean
// reconnect, and idempotent re-apply after reconnect. Lag gauges
// (frames behind, last applied offset, seconds since leader contact)
// feed the follower's /healthz.
package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"adahealth/internal/docstore"
)

// Wire paths and headers of the replication protocol.
const (
	// StatusPath serves the leader's current ReplPosition as JSON.
	StatusPath = "/v1/replication/status"
	// SnapshotPath serves the epoch-start snapshot files for follower
	// bootstrap.
	SnapshotPath = "/v1/replication/snapshot"
	// WALPath streams raw WAL frames from ?epoch=&from=.
	WALPath = "/v1/replication/wal"

	// EpochHeader / OffsetHeader / FramesHeader carry the leader's
	// position at stream start on the WAL response.
	EpochHeader  = "X-Repl-Epoch"
	OffsetHeader = "X-Repl-Offset"
	FramesHeader = "X-Repl-Frames"
)

// LeaderOptions tunes the leader's replication endpoints; zero values
// select the defaults.
type LeaderOptions struct {
	// PollInterval is how often an idle WAL stream re-checks the log
	// for new frames (default 100ms).
	PollInterval time.Duration
	// KeepaliveInterval is how long an idle stream waits before
	// emitting a keepalive frame so the follower's stall watchdog and
	// contact gauge see a live leader (default 5s).
	KeepaliveInterval time.Duration
	// MaxChunk caps the bytes served per WAL read (default
	// docstore.DefaultWALReadChunk).
	MaxChunk int
}

func (o LeaderOptions) withDefaults() LeaderOptions {
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.KeepaliveInterval <= 0 {
		o.KeepaliveInterval = 5 * time.Second
	}
	if o.MaxChunk <= 0 {
		o.MaxChunk = docstore.DefaultWALReadChunk
	}
	return o
}

// snapshotResponse is the JSON body of SnapshotPath: the epoch the
// files begin and the raw snapshot files (base64 via encoding/json).
type snapshotResponse struct {
	Epoch int64             `json:"epoch"`
	Files map[string][]byte `json:"files"`
}

// NewLeaderHandler serves the replication endpoints over s's durable
// log. Mount it on the daemon mux (the paths are absolute):
//
//	GET /v1/replication/status   leader position (epoch, offset, frames)
//	GET /v1/replication/snapshot epoch-start snapshot files (bootstrap)
//	GET /v1/replication/wal      raw frame stream from ?epoch=&from=
//	                             (409 when the position compacted away)
//
// The WAL stream long-polls: caught-up streams stay open, serving new
// frames as they commit and keepalive frames while idle, until the
// client disconnects or a compaction retires the epoch.
func NewLeaderHandler(s *docstore.Store, opts LeaderOptions) (http.Handler, error) {
	reader, err := s.WALReader()
	if err != nil {
		return nil, fmt.Errorf("repl: %w", err)
	}
	l := &leader{s: s, reader: reader, opts: opts.withDefaults()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+StatusPath, l.status)
	mux.HandleFunc("GET "+SnapshotPath, l.snapshot)
	mux.HandleFunc("GET "+WALPath, l.wal)
	return mux, nil
}

type leader struct {
	s      *docstore.Store
	reader *docstore.WALReader
	opts   LeaderOptions
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}

func (l *leader) status(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, l.s.ReplStatus())
}

func (l *leader) snapshot(w http.ResponseWriter, r *http.Request) {
	pos, files, err := l.s.SnapshotBootstrap()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{Epoch: pos.Epoch, Files: files})
}

// wal streams raw frames from the requested position. The first read
// decides the response: a compacted position is a 409 (bootstrap
// needed), a fault is a 500; after bytes are on the wire errors can
// only end the stream, and the follower re-resolves via status.
func (l *leader) wal(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	epoch, err1 := strconv.ParseInt(q.Get("epoch"), 10, 64)
	from, err2 := strconv.ParseInt(q.Get("from"), 10, 64)
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, errors.New("repl: wal needs integer epoch= and from="))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, errors.New("repl: streaming unsupported by connection"))
		return
	}

	data, pos, err := l.reader.Read(epoch, from, l.opts.MaxChunk)
	switch {
	case errors.Is(err, docstore.ErrCompacted):
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(EpochHeader, strconv.FormatInt(pos.Epoch, 10))
	w.Header().Set(OffsetHeader, strconv.FormatInt(pos.Offset, 10))
	w.Header().Set(FramesHeader, strconv.FormatInt(pos.Frames, 10))
	w.WriteHeader(http.StatusOK)
	// Flush the headers now: an idle leader would otherwise buffer them
	// until the first keepalive, leaving the follower's connect (and its
	// connected/last-contact gauges) pending for a whole interval.
	flusher.Flush()

	idleSince := time.Now()
	var fc frameCounter
	for {
		if len(data) > 0 {
			if _, err := w.Write(data); err != nil {
				return
			}
			framesShippedTotal.Add(fc.count(data))
			flusher.Flush()
			from += int64(len(data))
			idleSince = time.Now()
		} else {
			if time.Since(idleSince) >= l.opts.KeepaliveInterval {
				if _, err := w.Write(docstore.KeepaliveFrame()); err != nil {
					return
				}
				flusher.Flush()
				idleSince = time.Now()
			}
			select {
			case <-r.Context().Done():
				return
			case <-time.After(l.opts.PollInterval):
			}
		}
		data, _, err = l.reader.Read(epoch, from, l.opts.MaxChunk)
		if err != nil {
			// Compacted mid-stream or a read fault: end the stream;
			// the follower re-resolves its position via status.
			return
		}
	}
}
