package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adahealth/internal/docstore"
)

// FollowerOptions configures a Follower; zero values select the
// defaults.
type FollowerOptions struct {
	// LeaderURL is the leader daemon's base URL (required).
	LeaderURL string
	// Dir is the follower's own durable store directory (required).
	Dir string
	// Store passes explicit store options for Dir (fault injection);
	// when set, its Dir field must equal Dir or be empty.
	Store *docstore.Options
	// Client overrides the HTTP client (streaming requests must not
	// carry a client-level timeout; the stall watchdog bounds them).
	Client *http.Client
	// RequestTimeout bounds each control request — status poll and
	// snapshot fetch (default 10s).
	RequestTimeout time.Duration
	// StallTimeout aborts a WAL stream that delivers no bytes, not
	// even keepalives, for this long (default 15s).
	StallTimeout time.Duration
	// MinBackoff / MaxBackoff bound the reconnect backoff: capped
	// exponential with full jitter, reset only on real progress
	// (defaults 100ms / 5s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Seed seeds the jitter source (0 = a fixed default; determinism
	// helps the chaos tests).
	Seed int64
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 15 * time.Second
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Lag is the follower's replication health, served on its /healthz.
type Lag struct {
	// Connected reports an open WAL stream to the leader.
	Connected bool `json:"connected"`
	// Epoch is the follower's current epoch (-1 = awaiting bootstrap).
	Epoch int64 `json:"epoch"`
	// LastAppliedOffset is the follower's durable WAL offset — the
	// byte position the next stream resumes from.
	LastAppliedOffset int64 `json:"last_applied_offset"`
	// FramesBehind is the leader's frame count minus the follower's,
	// from the last observed leader position (negative clamps to 0;
	// an epoch mismatch counts the full leader log).
	FramesBehind int64 `json:"frames_behind"`
	// SecondsSinceContact is the age of the last successful leader
	// response (status, snapshot, or stream bytes; 0 before the first
	// contact).
	SecondsSinceContact float64 `json:"seconds_since_contact"`
	// Bootstraps counts snapshot installs; Reconnects counts stream
	// (re)connect attempts.
	Bootstraps int64 `json:"bootstraps"`
	Reconnects int64 `json:"reconnects"`
}

// Follower replicates a leader's K-DB into a local read-only store.
// Open it, then Start its sync loop; Store() serves reads throughout.
type Follower struct {
	opts FollowerOptions
	rep  *docstore.Replica

	// Gauges, updated by the sync loop, read by Lag().
	connected    atomic.Bool
	leaderOffset atomic.Int64
	leaderFrames atomic.Int64
	leaderEpoch  atomic.Int64
	lastContact  atomic.Int64 // unix nanos; 0 = never
	bootstraps   atomic.Int64
	reconnects   atomic.Int64

	mu     sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}
}

// OpenFollower opens (or resumes) the follower's local replica state.
// The returned follower is not yet syncing — call Start.
func OpenFollower(opts FollowerOptions) (*Follower, error) {
	opts = opts.withDefaults()
	if opts.LeaderURL == "" || opts.Dir == "" {
		return nil, errors.New("repl: follower needs LeaderURL and Dir")
	}
	so := docstore.Options{Dir: opts.Dir}
	if opts.Store != nil {
		so = *opts.Store
		so.Dir = opts.Dir
	}
	rep, err := docstore.OpenReplica(so)
	if err != nil {
		return nil, fmt.Errorf("repl: opening replica: %w", err)
	}
	f := &Follower{opts: opts, rep: rep}
	framesBehindGauge.Set(0)
	connectedGauge.Set(0)
	return f, nil
}

// Store is the replicated read-only store (wrap it in kdb.Follower for
// the knowledge read paths).
func (f *Follower) Store() *docstore.Store { return f.rep.Store() }

// Replica exposes the underlying replica (tests, diagnostics).
func (f *Follower) Replica() *docstore.Replica { return f.rep }

// Start launches the sync loop. It returns immediately; the loop runs
// until ctx is cancelled or Close is called.
func (f *Follower) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	f.mu.Lock()
	f.cancel = cancel
	done := make(chan struct{})
	f.done = done
	f.mu.Unlock()
	go func() {
		defer close(done)
		f.run(ctx)
	}()
}

// Close stops the sync loop and closes the local store (the follower's
// WAL stays durable; reopening resumes at the same offset).
func (f *Follower) Close() error {
	f.mu.Lock()
	cancel, done := f.cancel, f.done
	f.cancel, f.done = nil, nil
	f.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	return f.rep.Close()
}

// Lag snapshots the replication gauges.
func (f *Follower) Lag() Lag {
	pos := f.rep.Position()
	behind := f.leaderFrames.Load()
	if f.leaderEpoch.Load() == pos.Epoch {
		behind -= pos.Frames
	}
	if behind < 0 {
		behind = 0
	}
	// Before the first successful leader contact the age is reported
	// as 0, not a sentinel or clock-epoch garbage: a freshly started
	// follower has not fallen behind yet.
	since := float64(0)
	if c := f.lastContact.Load(); c > 0 {
		since = time.Since(time.Unix(0, c)).Seconds()
	}
	framesBehindGauge.Set(float64(behind))
	return Lag{
		Connected:           f.connected.Load(),
		Epoch:               pos.Epoch,
		LastAppliedOffset:   pos.Offset,
		FramesBehind:        behind,
		SecondsSinceContact: since,
		Bootstraps:          f.bootstraps.Load(),
		Reconnects:          f.reconnects.Load(),
	}
}

// run is the sync loop: resolve the leader's position, bootstrap when
// the local epoch is gone, stream and apply frames, and back off —
// capped exponential, full jitter — after any attempt that made no
// real progress. Progress means applied frames or a completed
// bootstrap; a successful status poll alone never resets the backoff,
// so a leader that answers status but keeps failing its log reads is
// still approached at the capped rate.
func (f *Follower) run(ctx context.Context) {
	rng := rand.New(rand.NewSource(f.opts.Seed))
	backoff := f.opts.MinBackoff
	for ctx.Err() == nil {
		progressed, err := f.syncOnce(ctx)
		if progressed {
			if backoff > f.opts.MinBackoff {
				backoffResetsTotal.Inc()
			}
			backoff = f.opts.MinBackoff
			continue
		}
		_ = err // the gauges carry the observable state; errors just back off
		// Full jitter: sleep uniformly in (0, backoff].
		sleep := time.Duration(rng.Int63n(int64(backoff))) + 1
		select {
		case <-ctx.Done():
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > f.opts.MaxBackoff {
			backoff = f.opts.MaxBackoff
		}
	}
}

// syncOnce makes one replication attempt: status, bootstrap if needed,
// then stream until the connection ends. It reports whether real
// progress happened (frames applied or snapshot installed).
func (f *Follower) syncOnce(ctx context.Context) (progressed bool, err error) {
	status, err := f.fetchStatus(ctx)
	if err != nil {
		return false, err
	}
	if f.rep.NeedsBootstrap() || f.rep.Epoch() != status.Epoch {
		if err := f.bootstrap(ctx); err != nil {
			return false, err
		}
		progressed = true
	}
	applied, err := f.stream(ctx)
	return progressed || applied > 0, err
}

func (f *Follower) fetchStatus(ctx context.Context) (docstore.ReplPosition, error) {
	ctx, cancel := context.WithTimeout(ctx, f.opts.RequestTimeout)
	defer cancel()
	var pos docstore.ReplPosition
	if err := f.getJSON(ctx, f.opts.LeaderURL+StatusPath, &pos); err != nil {
		return pos, err
	}
	f.leaderEpoch.Store(pos.Epoch)
	f.leaderOffset.Store(pos.Offset)
	f.leaderFrames.Store(pos.Frames)
	f.touchContact()
	return pos, nil
}

func (f *Follower) bootstrap(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, f.opts.RequestTimeout)
	defer cancel()
	var snap snapshotResponse
	if err := f.getJSON(ctx, f.opts.LeaderURL+SnapshotPath, &snap); err != nil {
		return err
	}
	if err := f.rep.InstallSnapshot(snap.Epoch, snap.Files); err != nil {
		return fmt.Errorf("repl: installing snapshot: %w", err)
	}
	f.bootstraps.Add(1)
	bootstrapsTotal.Inc()
	f.touchContact()
	return nil
}

func (f *Follower) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// stream opens one WAL stream at the replica's durable offset and
// applies frames until the stream ends (leader fault, compaction,
// network loss, stall, or shutdown). Every frame's CRC is re-verified
// and persisted to the local log before it is applied, so a kill at
// any point resumes exactly at the durable offset; a torn or corrupt
// frame aborts the stream and the reconnect re-fetches from the last
// durable frame boundary.
func (f *Follower) stream(ctx context.Context) (applied int64, err error) {
	pos := f.rep.Position()
	url := fmt.Sprintf("%s%s?epoch=%d&from=%d", f.opts.LeaderURL, WALPath, pos.Epoch, pos.Offset)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	f.reconnects.Add(1)
	reconnectsTotal.Inc()
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		// Position compacted away: the next syncOnce bootstraps.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, docstore.ErrCompacted
	default:
		return 0, fmt.Errorf("repl: GET %s: %s", WALPath, resp.Status)
	}
	f.connected.Store(true)
	connectedGauge.Set(1)
	defer func() {
		f.connected.Store(false)
		connectedGauge.Set(0)
	}()
	f.touchContact()
	if frames, err := strconv.ParseInt(resp.Header.Get(FramesHeader), 10, 64); err == nil {
		f.leaderFrames.Store(frames)
	}

	// Stall watchdog: no bytes (not even keepalives) within
	// StallTimeout kills the request; Read then returns and the loop
	// reconnects with backoff.
	watchdog := time.AfterFunc(f.opts.StallTimeout, cancel)
	defer watchdog.Stop()

	var pending []byte
	buf := make([]byte, 64<<10)
	for {
		n, readErr := resp.Body.Read(buf)
		if n > 0 {
			watchdog.Reset(f.opts.StallTimeout)
			f.touchContact()
			pending = append(pending, buf[:n]...)
			consumed, nApplied, applyErr := f.rep.ApplyFrames(pending)
			pending = pending[consumed:]
			applied += nApplied
			if nApplied > 0 {
				framesAppliedTotal.Add(nApplied)
				f.leaderOffsetFloor()
			}
			if applyErr != nil {
				// Corrupt or torn wire frame: drop the stream; the
				// durable prefix is intact and the reconnect resumes
				// from it.
				return applied, fmt.Errorf("repl: applying frames: %w", applyErr)
			}
		}
		if readErr != nil {
			if errors.Is(readErr, io.EOF) {
				return applied, nil
			}
			return applied, readErr
		}
	}
}

// leaderOffsetFloor keeps the leader-offset gauge monotone with what
// we have applied (the stream does not echo per-chunk positions).
func (f *Follower) leaderOffsetFloor() {
	pos := f.rep.Position()
	for {
		cur := f.leaderOffset.Load()
		if cur >= pos.Offset || f.leaderOffset.CompareAndSwap(cur, pos.Offset) {
			return
		}
	}
}

func (f *Follower) touchContact() {
	f.lastContact.Store(time.Now().UnixNano())
}
