package repl

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adahealth/internal/kdb"
)

// TestLagBeforeFirstContact: a just-opened follower that has never
// reached its leader reports seconds_since_contact 0 — "no contact
// yet" — rather than a sentinel or the epoch-relative age of a zero
// time.
func TestLagBeforeFirstContact(t *testing.T) {
	f, err := OpenFollower(FollowerOptions{LeaderURL: "http://127.0.0.1:1", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	lag := f.Lag()
	if lag.SecondsSinceContact != 0 {
		t.Errorf("SecondsSinceContact before first contact = %v, want 0", lag.SecondsSinceContact)
	}
	if lag.Connected {
		t.Error("Connected before first contact, want false")
	}
	buf, err := json.Marshal(lag)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"seconds_since_contact":0`) {
		t.Errorf("lag JSON = %s, want seconds_since_contact 0", buf)
	}
}

// TestFollowerHandlerMetricsAndBuild: the standby's HTTP surface
// carries the same observability endpoints as the leader — a
// Prometheus /metrics with the repl_* and kdb_* families, and a
// /healthz extended with build identity and uptime.
func TestFollowerHandlerMetricsAndBuild(t *testing.T) {
	f, err := OpenFollower(FollowerOptions{LeaderURL: "http://127.0.0.1:1", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fkb := kdb.Follower(f.Store())
	fh := httptest.NewServer(NewFollowerHandler(f, fkb))
	defer fh.Close()

	resp, err := http.Get(fh.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE repl_frames_behind gauge",
		"# TYPE repl_frames_applied_total counter",
		"# TYPE kdb_breaker_mode gauge",
		"# TYPE docstore_wal_commit_seconds histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("follower exposition missing %q", want)
		}
	}

	resp, err = http.Get(fh.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Role  string `json:"role"`
		Lag   Lag    `json:"replication"`
		Build struct {
			Go string `json:"go"`
		} `json:"build"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hz.Role != "follower" {
		t.Errorf("role = %q", hz.Role)
	}
	if hz.Lag.SecondsSinceContact != 0 {
		t.Errorf("healthz seconds_since_contact = %v before first contact, want 0", hz.Lag.SecondsSinceContact)
	}
	if hz.Build.Go == "" {
		t.Error("healthz build.go is empty")
	}
	if hz.UptimeSeconds <= 0 {
		t.Errorf("healthz uptime_seconds = %v, want > 0", hz.UptimeSeconds)
	}
}
