package repl

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"adahealth/internal/docstore"
	"adahealth/internal/faultfs"
	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
)

// TestChaosFollowerBackoffUnderLeaderWALFaults: with the leader's WAL
// reads failing (injected), the follower must approach it at the
// capped backoff rate, not spin — asserted via the injector's fired
// count, which increments once per attempted WAL read. After the
// fault heals, the follower converges.
func TestChaosFollowerBackoffUnderLeaderWALFaults(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	inj := faultfs.New(nil, 42)
	leader, err := kdb.OpenStore(docstore.Options{Dir: leaderDir, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if err := leader.StoreKnowledgeItems(items("ki", 10)); err != nil {
		t.Fatal(err)
	}

	// Every replication read of the leader's log fails. Only the
	// WALReader reads wal.log after open (the committer is
	// append-only), so the leader itself stays healthy.
	inj.Inject(faultfs.Rule{Op: faultfs.OpRead, Path: "wal.log"})

	h, err := NewLeaderHandler(leader.Store(), fastLeaderOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	opts := fastFollowerOpts(srv.URL, followerDir)
	opts.MinBackoff = 10 * time.Millisecond
	opts.MaxBackoff = 80 * time.Millisecond
	f, err := OpenFollower(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Start(context.Background())

	soak := 600 * time.Millisecond
	time.Sleep(soak)
	fired := inj.Fired()
	if fired == 0 {
		t.Fatal("injected WAL read fault never fired — the scenario is not exercising the leader's log reads")
	}
	// Unthrottled, the loop would attempt thousands of reads in the
	// soak window; with 10ms..80ms full-jitter backoff the expected
	// attempt count is ~15. Allow generous slack — the bound only has
	// to rule out spinning.
	if maxAttempts := 60; fired > maxAttempts {
		t.Fatalf("leader WAL read fault fired %d times in %v — the follower is retrying without backoff (want <= %d)",
			fired, soak, maxAttempts)
	}

	inj.Clear()
	waitConverged(t, f, leader)
	if lag := f.Lag(); lag.FramesBehind != 0 {
		t.Errorf("frames_behind = %d after healing, want 0", lag.FramesBehind)
	}
}

// TestChaosConvergenceSoak: intermittent leader WAL read faults, a
// follower killed and restarted mid-stream, and sustained leader
// writes — the follower must still converge to a byte-identical copy
// of the leader's durable log.
func TestChaosConvergenceSoak(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	inj := faultfs.New(nil, 7)
	leader, err := kdb.OpenStore(docstore.Options{Dir: leaderDir, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lh, err := NewLeaderHandler(leader.Store(), fastLeaderOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(lh)
	defer srv.Close()

	// Every third replication read of the leader's log fails, forever.
	inj.Inject(faultfs.Rule{Op: faultfs.OpRead, Path: "wal.log", Prob: 0.33})

	// Sustained leader writes during the whole soak.
	var stop atomic.Bool
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; !stop.Load(); i++ {
			_ = leader.StoreKnowledgeItems([]knowledge.Item{{
				ID: "soak-" + itoa(i), Dataset: "ward-a", Kind: knowledge.KindCluster,
				Metrics: map[string]float64{"size": float64(i)},
			}})
			time.Sleep(2 * time.Millisecond)
		}
	}()

	opts := fastFollowerOpts(srv.URL, followerDir)
	f, err := OpenFollower(opts)
	if err != nil {
		t.Fatal(err)
	}
	f.Start(context.Background())
	time.Sleep(150 * time.Millisecond)
	if err := f.Close(); err != nil { // kill mid-stream
		t.Fatal(err)
	}

	f2, err := OpenFollower(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	f2.Start(context.Background())
	time.Sleep(200 * time.Millisecond)

	// Stop the writers and heal the disk; the follower must drain the
	// backlog and match the leader's durable prefix byte for byte.
	stop.Store(true)
	<-writerDone
	inj.Clear()
	waitConverged(t, f2, leader)
	assertWALPrefixIdentical(t, leaderDir, followerDir)

	fkb := kdb.Follower(f2.Store())
	got, err := fkb.KnowledgeItems("ward-a")
	if err != nil {
		t.Fatal(err)
	}
	want, err := leader.KnowledgeItems("ward-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("follower has %d items, leader has %d — lost or duplicated documents", len(got), len(want))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
