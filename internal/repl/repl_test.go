package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
)

// fastLeaderOpts keeps the stream loop snappy for tests.
func fastLeaderOpts() LeaderOptions {
	return LeaderOptions{PollInterval: 5 * time.Millisecond, KeepaliveInterval: 50 * time.Millisecond}
}

func fastFollowerOpts(url, dir string) FollowerOptions {
	return FollowerOptions{
		LeaderURL:      url,
		Dir:            dir,
		RequestTimeout: 2 * time.Second,
		StallTimeout:   2 * time.Second,
		MinBackoff:     5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
	}
}

func newLeader(t *testing.T, dir string) (*kdb.KDB, *httptest.Server) {
	t.Helper()
	k, err := kdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { k.Close() })
	h, err := NewLeaderHandler(k.Store(), fastLeaderOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return k, srv
}

func items(prefix string, n int) []knowledge.Item {
	out := make([]knowledge.Item, n)
	for i := range out {
		out[i] = knowledge.Item{
			ID:      fmt.Sprintf("%s-%03d", prefix, i),
			Dataset: "ward-a",
			Kind:    knowledge.KindCluster,
			Metrics: map[string]float64{"size": float64(i)},
		}
	}
	return out
}

// waitConverged polls until the follower's position matches the
// leader's durable position (same epoch, same offset).
func waitConverged(t *testing.T, f *Follower, leader *kdb.KDB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		lp := leader.Store().ReplStatus()
		fp := f.Replica().Position()
		if lp.Epoch == fp.Epoch && lp.Offset == fp.Offset && lp.Frames == fp.Frames {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never converged: leader=%+v follower=%+v",
		leader.Store().ReplStatus(), f.Replica().Position())
}

// assertWALPrefixIdentical: the follower's durable log must be
// byte-identical to the leader's durable log (after convergence, the
// whole file).
func assertWALPrefixIdentical(t *testing.T, leaderDir, followerDir string) {
	t.Helper()
	lw, err := os.ReadFile(filepath.Join(leaderDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	fw, err := os.ReadFile(filepath.Join(followerDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lw, fw) {
		t.Fatalf("follower WAL (%d bytes) is not byte-identical to leader WAL (%d bytes)", len(fw), len(lw))
	}
}

// TestReplicationEndToEnd: a follower bootstraps from a live leader,
// tails its WAL, serves the knowledge read endpoints from the replica,
// and reports healthy lag gauges; the local log is byte-identical to
// the leader's.
func TestReplicationEndToEnd(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, srv := newLeader(t, leaderDir)
	if err := leader.StoreKnowledgeItems(items("ki", 25)); err != nil {
		t.Fatal(err)
	}

	f, err := OpenFollower(fastFollowerOpts(srv.URL, followerDir))
	if err != nil {
		t.Fatal(err)
	}
	f.Start(context.Background())
	defer f.Close()
	waitConverged(t, f, leader)

	// Writes committed while the stream is live arrive too.
	if err := leader.StoreKnowledgeItems(items("late", 5)); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, f, leader)
	assertWALPrefixIdentical(t, leaderDir, followerDir)

	fkb := kdb.Follower(f.Store())
	fh := httptest.NewServer(NewFollowerHandler(f, fkb))
	defer fh.Close()

	resp, err := http.Get(fh.URL + "/v1/knowledge?dataset=ward-a&limit=100")
	if err != nil {
		t.Fatal(err)
	}
	var kr struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || kr.Count != 30 {
		t.Fatalf("follower knowledge endpoint: status=%d count=%d, want 200 and 30", resp.StatusCode, kr.Count)
	}

	resp, err = http.Get(fh.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Role string   `json:"role"`
		Mode kdb.Mode `json:"mode"`
		Lag  Lag      `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Role != "follower" || hz.Mode != kdb.ModeFollower {
		t.Errorf("healthz role/mode = %q/%q, want follower/follower", hz.Role, hz.Mode)
	}
	if hz.Lag.FramesBehind != 0 {
		t.Errorf("healthz frames_behind = %d after convergence, want 0", hz.Lag.FramesBehind)
	}
	if hz.Lag.LastAppliedOffset <= 0 {
		t.Errorf("healthz last_applied_offset = %d, want > 0", hz.Lag.LastAppliedOffset)
	}
	if hz.Lag.SecondsSinceContact < 0 || hz.Lag.SecondsSinceContact > 60 {
		t.Errorf("healthz seconds_since_contact = %v, want a recent contact", hz.Lag.SecondsSinceContact)
	}
}

// TestFollowerCatchUpAcrossCompaction: a follower that was offline
// while the leader compacted (epoch bump) detects the stale epoch,
// re-bootstraps from the snapshot, and tails the new WAL — no
// duplicated and no lost documents.
func TestFollowerCatchUpAcrossCompaction(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, srv := newLeader(t, leaderDir)
	if err := leader.StoreKnowledgeItems(items("early", 10)); err != nil {
		t.Fatal(err)
	}

	f, err := OpenFollower(fastFollowerOpts(srv.URL, followerDir))
	if err != nil {
		t.Fatal(err)
	}
	f.Start(context.Background())
	waitConverged(t, f, leader)
	if err := f.Close(); err != nil { // follower goes offline
		t.Fatal(err)
	}

	// Leader keeps writing and compacts: epoch 0 is gone.
	if err := leader.StoreKnowledgeItems(items("mid", 10)); err != nil {
		t.Fatal(err)
	}
	if err := leader.Store().Compact(); err != nil {
		t.Fatal(err)
	}
	if err := leader.StoreKnowledgeItems(items("post", 10)); err != nil {
		t.Fatal(err)
	}
	if got := leader.Store().Epoch(); got != 1 {
		t.Fatalf("leader epoch after compaction = %d, want 1", got)
	}

	// The restarted follower resumes from its stale epoch, hits the
	// 409, bootstraps, and tails the post-compaction WAL.
	f2, err := OpenFollower(fastFollowerOpts(srv.URL, followerDir))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	f2.Start(context.Background())
	waitConverged(t, f2, leader)
	assertWALPrefixIdentical(t, leaderDir, followerDir)

	fkb := kdb.Follower(f2.Store())
	got, err := fkb.KnowledgeItems("ward-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("follower has %d items after catch-up, want 30 (no dup/loss)", len(got))
	}
	seen := map[string]bool{}
	for _, it := range got {
		if seen[it.ID] {
			t.Fatalf("item %s duplicated across the compaction boundary", it.ID)
		}
		seen[it.ID] = true
	}
	if f2.Lag().Bootstraps != 1 {
		t.Errorf("bootstraps = %d, want exactly 1", f2.Lag().Bootstraps)
	}
}

// truncatingProxy forwards to the leader but cuts the first WAL stream
// mid-frame after a fixed byte budget — the wire-level torn frame.
type truncatingProxy struct {
	leaderURL string
	cutAfter  int
	cuts      int
	client    *http.Client
}

func (p *truncatingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	resp, err := p.client.Get(p.leaderURL + r.URL.RequestURI())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher := w.(http.Flusher)
	limit := -1
	if r.URL.Path == WALPath && p.cuts == 0 && resp.StatusCode == http.StatusOK {
		p.cuts++
		limit = p.cutAfter
	}
	buf := make([]byte, 512)
	written := 0
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if limit >= 0 && written+n > limit {
				chunk = chunk[:limit-written]
			}
			if len(chunk) > 0 {
				if _, werr := w.Write(chunk); werr != nil {
					return
				}
				flusher.Flush()
				written += len(chunk)
			}
			if limit >= 0 && written >= limit {
				return // cut the stream mid-frame
			}
		}
		if err != nil {
			return
		}
	}
}

// TestFollowerResumesAfterMidFrameCut: a WAL stream severed mid-frame
// leaves the follower's durable log at a clean frame boundary; the
// reconnect resumes from it and converges with no duplicate or lost
// documents.
func TestFollowerResumesAfterMidFrameCut(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, srv := newLeader(t, leaderDir)
	if err := leader.StoreKnowledgeItems(items("ki", 40)); err != nil {
		t.Fatal(err)
	}

	// Cut mid-frame: 100 bytes into the stream is inside some frame
	// (each insert frame here is well over 100 bytes of JSON).
	proxy := httptest.NewServer(&truncatingProxy{
		leaderURL: srv.URL, cutAfter: 100, client: &http.Client{},
	})
	defer proxy.Close()

	f, err := OpenFollower(fastFollowerOpts(proxy.URL, followerDir))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Start(context.Background())
	waitConverged(t, f, leader)
	assertWALPrefixIdentical(t, leaderDir, followerDir)

	if f.Lag().Reconnects < 2 {
		t.Errorf("reconnects = %d, want >= 2 (the cut stream plus the resume)", f.Lag().Reconnects)
	}
	fkb := kdb.Follower(f.Store())
	got, err := fkb.KnowledgeItems("ward-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("follower has %d items, want 40", len(got))
	}
}

// TestFollowerKilledMidStreamResumes: hard-stop the follower while the
// leader keeps writing; a new follower over the same directory resumes
// at its durable offset (no re-bootstrap) and converges.
func TestFollowerKilledMidStreamResumes(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, srv := newLeader(t, leaderDir)
	if err := leader.StoreKnowledgeItems(items("a", 15)); err != nil {
		t.Fatal(err)
	}

	f, err := OpenFollower(fastFollowerOpts(srv.URL, followerDir))
	if err != nil {
		t.Fatal(err)
	}
	f.Start(context.Background())
	waitConverged(t, f, leader)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := leader.StoreKnowledgeItems(items("b", 15)); err != nil {
		t.Fatal(err)
	}

	f2, err := OpenFollower(fastFollowerOpts(srv.URL, followerDir))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Replica().NeedsBootstrap() {
		t.Fatal("restarted follower lost its durable state (needs bootstrap)")
	}
	f2.Start(context.Background())
	waitConverged(t, f2, leader)
	assertWALPrefixIdentical(t, leaderDir, followerDir)
	if f2.Lag().Bootstraps != 0 {
		t.Errorf("restart re-bootstrapped (%d), want resume from durable offset", f2.Lag().Bootstraps)
	}
}
