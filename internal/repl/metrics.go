package repl

import (
	"encoding/binary"

	"adahealth/internal/obs"
)

// Replication instruments on the default registry (see the metric-name
// reference in package obs). The follower's pull gauges bind in
// OpenFollower — latest follower wins when a process holds several
// (tests); the counters aggregate across all of them.
var (
	framesShippedTotal = obs.Default().Counter("repl_frames_shipped_total",
		"Leader: data frames shipped to follower WAL streams (keepalives excluded).")
	framesAppliedTotal = obs.Default().Counter("repl_frames_applied_total",
		"Follower: frames CRC-verified, persisted, and applied.")
	reconnectsTotal = obs.Default().Counter("repl_reconnects_total",
		"Follower: WAL stream connect attempts.")
	bootstrapsTotal = obs.Default().Counter("repl_bootstraps_total",
		"Follower: full snapshot re-syncs.")
	backoffResetsTotal = obs.Default().Counter("repl_backoff_resets_total",
		"Follower: grown reconnect backoffs reset by real progress.")
	framesBehindGauge = obs.Default().Gauge("repl_frames_behind",
		"Follower: leader frames minus applied frames at last contact.")
	connectedGauge = obs.Default().Gauge("repl_connected",
		"Follower: 1 while a WAL stream to the leader is open.")
)

// wireFrameHeader mirrors the docstore WAL frame header — the
// replication wire format: 4-byte little-endian payload length plus
// 4-byte CRC32.
const wireFrameHeader = 8

// frameCounter counts whole data frames crossing one WAL stream,
// carrying partial header/payload state across chunk boundaries (a
// stream always starts on a frame boundary — the follower resumes from
// its durable offset). Zero-length keepalive frames are skipped.
type frameCounter struct {
	header [wireFrameHeader]byte
	nhdr   int
	remain int
}

func (c *frameCounter) count(data []byte) (frames int64) {
	for len(data) > 0 {
		if c.remain > 0 {
			n := c.remain
			if n > len(data) {
				n = len(data)
			}
			c.remain -= n
			data = data[n:]
			if c.remain == 0 {
				frames++
			}
			continue
		}
		n := copy(c.header[c.nhdr:], data)
		c.nhdr += n
		data = data[n:]
		if c.nhdr < wireFrameHeader {
			return frames
		}
		c.nhdr = 0
		if length := binary.LittleEndian.Uint32(c.header[:4]); length > 0 {
			c.remain = int(length)
		}
	}
	return frames
}
