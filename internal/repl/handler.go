package repl

import (
	"net/http"

	"adahealth/internal/kdb"
	"adahealth/internal/obs"
	"adahealth/internal/service"
)

// NewFollowerHandler is the warm standby's HTTP surface: the K-DB read
// endpoints served from the replicated store — identical in shape to
// the leader's, so the leader's degraded read routing proxies verbatim
// — plus a /healthz carrying the replication lag gauges.
//
//	GET /v1/knowledge                 knowledge items from the replica
//	GET /v1/datasets/{id}/similar     descriptor similarity from the replica
//	GET /healthz                      follower mode + lag gauges + build info
//	GET /metrics                      Prometheus exposition (repl_* and kdb_* series)
//
// kb must wrap f.Store() (kdb.Follower).
func NewFollowerHandler(f *Follower, kb *kdb.KDB) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", service.NewKnowledgeHandler(kb))
	mux.Handle("GET /metrics", obs.Default().Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Role string     `json:"role"`
			Mode kdb.Mode   `json:"mode"`
			Lag  Lag        `json:"replication"`
			KDB  kdb.Health `json:"kdb"`
			// Build identifies the binary; UptimeSeconds its age —
			// the same pair the leader's /healthz carries.
			Build         service.BuildInfo `json:"build"`
			UptimeSeconds float64           `json:"uptime_seconds"`
		}{
			Role:          "follower",
			Mode:          kb.Health().Mode,
			Lag:           f.Lag(),
			KDB:           kb.Health(),
			Build:         service.Build(),
			UptimeSeconds: service.UptimeSeconds(),
		})
	})
	return mux
}
