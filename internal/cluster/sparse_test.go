package cluster

import (
	"math/rand"
	"testing"

	"adahealth/internal/vec"
)

// randRows generates n×d rows where each cell is nonzero with the
// given density; density 1 yields fully dense data.
func randRows(rng *rand.Rand, n, d int, density float64) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			if density >= 1 || rng.Float64() < density {
				rows[i][j] = rng.NormFloat64()
			}
		}
	}
	return rows
}

func distinctInit(rng *rand.Rand, data [][]float64, k int) [][]float64 {
	perm := rng.Perm(len(data))
	init := make([][]float64, k)
	for i := range init {
		init[i] = vec.Clone(data[perm[i]])
	}
	return init
}

func requireIdentical(t *testing.T, trial int, workers int, want, got *Result) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Fatalf("trial %d workers %d: Iterations %d, want %d",
			trial, workers, got.Iterations, want.Iterations)
	}
	if got.Converged != want.Converged {
		t.Fatalf("trial %d workers %d: Converged %v, want %v",
			trial, workers, got.Converged, want.Converged)
	}
	if got.SSE != want.SSE {
		t.Fatalf("trial %d workers %d: SSE %v, want bit-identical %v",
			trial, workers, got.SSE, want.SSE)
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("trial %d workers %d: label[%d] = %d, want %d",
				trial, workers, i, got.Labels[i], want.Labels[i])
		}
	}
	for c := range want.Sizes {
		if got.Sizes[c] != want.Sizes[c] {
			t.Fatalf("trial %d workers %d: size[%d] = %d, want %d",
				trial, workers, c, got.Sizes[c], want.Sizes[c])
		}
	}
	for c := range want.Centroids {
		for j := range want.Centroids[c] {
			if got.Centroids[c][j] != want.Centroids[c][j] {
				t.Fatalf("trial %d workers %d: centroid[%d][%d] = %v, want bit-identical %v",
					trial, workers, c, j, got.Centroids[c][j], want.Centroids[c][j])
			}
		}
	}
}

// Property (the kernel's core guarantee): the sparse parallel kernel
// produces bit-for-bit identical Labels, SSE, Iterations, Sizes and
// Centroids to serial dense Lloyd, across random sparse and dense
// inputs, seeds, and worker counts.
func TestSparseParallelMatchesDenseLloyd(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	densities := []float64{0.02, 0.1, 0.3, 0.6, 1.0}
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(180)
		d := 5 + rng.Intn(36)
		k := 2 + rng.Intn(7)
		density := densities[trial%len(densities)]
		data := randRows(rng, n, d, density)
		init := distinctInit(rng, data, k)

		dense, err := KMeans(data, Options{
			K: k, Algorithm: DenseLloyd, InitialCentroids: init, MaxIter: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			sparse, err := KMeans(data, Options{
				K: k, Algorithm: SparseLloyd, Parallelism: workers,
				InitialCentroids: init, MaxIter: 60,
			})
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, trial, workers, dense, sparse)
		}
	}
}

// The guarantee extends through seeding: with the same Seed and no
// InitialCentroids, the sparse kernel's k-means++ run is bit-identical
// to the dense one (seeding shares the dense code path).
func TestSparseParallelMatchesDenseLloydWithSeeding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		data := randRows(rng, 120, 24, 0.15)
		seed := rng.Int63()
		dense, err := KMeans(data, Options{K: 5, Seed: seed, Algorithm: DenseLloyd})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			sparse, err := KMeans(data, Options{
				K: 5, Seed: seed, Algorithm: SparseLloyd, Parallelism: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, trial, workers, dense, sparse)
		}
	}
}

// KMeansCSR with a prebuilt CSR view (the Sweep path) must agree with
// building the CSR internally, and with dense Lloyd.
func TestKMeansCSRSharedViewMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	data := randRows(rng, 150, 30, 0.1)
	csr := vec.NewCSRFromDense(data)
	init := distinctInit(rng, data, 4)

	dense, err := KMeans(data, Options{K: 4, Algorithm: DenseLloyd, InitialCentroids: init})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := KMeansCSR(csr, data, Options{K: 4, InitialCentroids: init})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, 0, 0, dense, shared)
	if shared.Algorithm != "sparse-lloyd" {
		t.Errorf("Algorithm = %q, want sparse-lloyd", shared.Algorithm)
	}

	// A nil dense view is materialized from the CSR.
	fromCSR, err := KMeansCSR(csr, nil, Options{K: 4, InitialCentroids: init})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, 1, 0, dense, fromCSR)
}

// Auto-routing: plain Lloyd on sparse high-dimensional data runs the
// sparse kernel; low-dimensional dense data stays on the dense scan.
func TestLloydAutoRoutesToSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sparseData := randRows(rng, 100, 40, 0.1)
	res, err := KMeans(sparseData, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "sparse-lloyd" {
		t.Errorf("sparse data: Algorithm = %q, want sparse-lloyd", res.Algorithm)
	}
	denseData := randRows(rng, 100, 3, 1.0)
	res, err = KMeans(denseData, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "lloyd" {
		t.Errorf("dense data: Algorithm = %q, want lloyd", res.Algorithm)
	}
}

// Regression for the empty-cluster repair: two clusters emptied in the
// same iteration must be reseeded at two different points.
func TestEmptyClusterRepairClaimsPoint(t *testing.T) {
	// Three tight groups plus two extreme outliers; two initial
	// centroids far away so both become empty in iteration one.
	data := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{50, 50}, {-50, 50},
	}
	init := [][]float64{{0, 0}, {1000, 1000}, {-1000, 1000}}
	res, err := KMeans(data, Options{K: 3, InitialCentroids: init, MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res.Sizes {
		if s == 0 {
			t.Errorf("cluster %d still empty after repair (sizes %v)", c, res.Sizes)
		}
	}
	// The two outliers must land in different clusters.
	if res.Labels[3] == res.Labels[4] {
		t.Errorf("both outliers in cluster %d; repair reseeded at the same point", res.Labels[3])
	}
}
