package cluster

import (
	"encoding/json"
	"math/rand"
	"testing"

	"adahealth/internal/vec"
)

// Property (the tentpole guarantee): the Hamerly, Elkan and Yinyang
// bounded kernels produce bit-for-bit identical Labels, SSE, Iterations,
// Sizes and Centroids to Lloyd, across seeds {1, 7, 42} × K {2, 8,
// 64} × dense/sparse inputs × worker counts {1, 2, 8}. Dense inputs
// compare against serial dense Lloyd; sparse inputs compare against
// the (itself Lloyd-equivalent) sparse kernel, sharing the CSR
// identity arithmetic.
func TestBoundedKernelsMatchLloyd(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		for _, k := range []int{2, 8, 64} {
			for _, density := range []float64{1.0, 0.15} {
				n := 160 + rng.Intn(120)
				d := 6 + rng.Intn(20)
				data := randRows(rng, n, d, density)

				ref := DenseLloyd
				if density < sparseAutoThreshold {
					ref = SparseLloyd
				}
				want, err := KMeans(data, Options{
					K: k, Seed: seed, Algorithm: ref, MaxIter: 60,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, alg := range []Algorithm{Hamerly, Elkan, Yinyang} {
					for _, workers := range []int{1, 2, 8} {
						got, err := KMeans(data, Options{
							K: k, Seed: seed, Algorithm: alg,
							Parallelism: workers, MaxIter: 60,
						})
						if err != nil {
							t.Fatal(err)
						}
						if got.Algorithm != alg.String() {
							t.Fatalf("Algorithm = %q, want %q", got.Algorithm, alg)
						}
						requireIdentical(t, int(seed)*100+k, workers, want, got)
					}
				}
			}
		}
	}
}

// The guarantee extends to prebuilt CSR views (the sweep path): the
// bounded kernels over a shared CSR view match the sparse kernel over
// the same view bit for bit.
func TestBoundedKernelsMatchLloydOverCSR(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
		data := randRows(rng, 200, 24, 0.12)
		csr := vec.NewCSRFromDense(data)
		for _, k := range []int{2, 8, 64} {
			want, err := KMeansCSR(csr, data, Options{K: k, Seed: seed, Algorithm: SparseLloyd})
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range []Algorithm{Hamerly, Elkan, Yinyang} {
				got, err := KMeansCSR(csr, data, Options{K: k, Seed: seed, Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, int(seed), int(alg), want, got)
			}
		}
	}
}

// Empty-cluster repair moves a point's label outside the assignment
// scan; the bounded kernels must reset that point's bounds and still
// agree with Lloyd exactly.
func TestBoundedKernelsSurviveEmptyClusterRepair(t *testing.T) {
	data := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{50, 50}, {-50, 50},
	}
	init := [][]float64{{0, 0}, {1000, 1000}, {-1000, 1000}}
	want, err := KMeans(data, Options{K: 3, Algorithm: DenseLloyd, InitialCentroids: init, MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Hamerly, Elkan, Yinyang} {
		got, err := KMeans(data, Options{K: 3, Algorithm: alg, InitialCentroids: init, MaxIter: 20})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, 0, int(alg), want, got)
	}
}

// A shared Scratch across runs of varying K (the warm-started sweep's
// reuse pattern) must not change any result bit.
func TestScratchReuseAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randRows(rng, 150, 12, 0.3)
	scratch := &Scratch{}
	for _, alg := range []Algorithm{Hamerly, Elkan, Yinyang, Lloyd, Filtering, AlgorithmMiniBatch} {
		for _, k := range []int{2, 5, 9, 4} { // deliberately non-monotone
			want, err := KMeans(data, Options{K: k, Seed: 9, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			got, err := KMeans(data, Options{K: k, Seed: 9, Algorithm: alg, Scratch: scratch, Rand: rand.New(rand.NewSource(0))})
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, int(alg), k, want, got)
		}
	}
}

// Mini-batch K-means is approximate but must be deterministic under
// Seed and structurally valid; on well-separated blobs it should land
// near the Lloyd objective.
func TestMiniBatchDeterministicAndReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([][]float64, 600)
	for i := range data {
		c := i % 4
		data[i] = []float64{float64(c%2)*20 + rng.NormFloat64(), float64(c/2)*20 + rng.NormFloat64()}
	}
	a, err := KMeans(data, Options{K: 4, Seed: 5, Algorithm: AlgorithmMiniBatch, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(data, Options{K: 4, Seed: 5, Algorithm: AlgorithmMiniBatch, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, 0, 0, a, b)
	if a.Algorithm != "minibatch" {
		t.Errorf("Algorithm = %q, want minibatch", a.Algorithm)
	}
	total := 0
	for _, s := range a.Sizes {
		total += s
	}
	if total != len(data) {
		t.Errorf("sizes sum %d, want %d", total, len(data))
	}
	lloyd, err := KMeans(data, Options{K: 4, Seed: 5, Algorithm: DenseLloyd})
	if err != nil {
		t.Fatal(err)
	}
	if a.SSE > lloyd.SSE*2+1 {
		t.Errorf("mini-batch SSE %.2f far above Lloyd %.2f on separable blobs", a.SSE, lloyd.SSE)
	}
}

// Auto routing, one case per row of the package-comment matrix:
// sparse → elkan below K=32 and yinyang above, both over the CSR
// view; low-dim dense → hamerly below K=32, filtering above; high-dim
// dense → elkan below K=32, yinyang above.
func TestAlgorithmAutoRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		name string
		data [][]float64
		k    int
		want string
	}{
		{"sparse-highdim", randRows(rng, 120, 40, 0.1), 8, "elkan"},
		{"sparse-highdim-largeK", randRows(rng, 120, 40, 0.1), 48, "yinyang"},
		{"dense-lowdim-smallK", randRows(rng, 120, 3, 1.0), 8, "hamerly"},
		{"dense-lowdim-largeK", randRows(rng, 120, 3, 1.0), 48, "filtering"},
		{"dense-highdim", randRows(rng, 120, 24, 1.0), 8, "elkan"},
		{"dense-highdim-largeK", randRows(rng, 120, 24, 1.0), 48, "yinyang"},
	}
	for _, tc := range cases {
		res, err := KMeans(tc.data, Options{K: tc.k, Seed: 1, Algorithm: AlgorithmAuto})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Algorithm != tc.want {
			t.Errorf("%s: routed to %q, want %q", tc.name, res.Algorithm, tc.want)
		}
	}
}

// The exact auto routes must agree with Lloyd wherever the chosen
// kernel is bit-for-bit (hamerly/elkan; the filtering route is exact
// but sums subtrees in a different order, so it is compared on labels
// only elsewhere).
func TestAlgorithmAutoMatchesLloydOnBoundedRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial, tc := range []struct {
		data [][]float64
		k    int
	}{
		{randRows(rng, 150, 30, 0.1), 6},  // elkan over CSR
		{randRows(rng, 150, 4, 1.0), 6},   // hamerly
		{randRows(rng, 150, 30, 0.1), 40}, // yinyang over CSR
		{randRows(rng, 150, 24, 1.0), 40}, // yinyang dense
	} {
		want, err := KMeans(tc.data, Options{K: tc.k, Seed: 2, Algorithm: Lloyd})
		if err != nil {
			t.Fatal(err)
		}
		got, err := KMeans(tc.data, Options{K: tc.k, Seed: 2, Algorithm: AlgorithmAuto})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, trial, 0, want, got)
	}
}

func TestAlgorithmTextRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{Lloyd, Filtering, DenseLloyd, SparseLloyd, Hamerly, Elkan, AlgorithmMiniBatch, Yinyang, AlgorithmAuto} {
		b, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		var back Algorithm
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != a {
			t.Errorf("round trip %s -> %s", a, back)
		}
	}
	var a Algorithm
	if err := json.Unmarshal([]byte(`"nope"`), &a); err == nil {
		t.Error("accepted unknown algorithm name")
	}
	if _, err := ParseAlgorithm(""); err != nil {
		t.Errorf("empty name should parse as default: %v", err)
	}
}
