package cluster

import (
	"sync"

	"adahealth/internal/vec"
)

// sparseKernel is the sparse-aware parallel assignment step described
// in the package comment. One kernel is bound to one CSR matrix and
// reused across iterations; centroids change between calls.
type sparseKernel struct {
	m       *vec.CSRMatrix
	workers int

	cNorm2 []float64 // per-iteration centroid squared norms
	// partialCounts[w] is worker w's private counts vector, merged at
	// the barrier (integer addition, so merge order is irrelevant).
	partialCounts [][]int
}

func newSparseKernel(m *vec.CSRMatrix, k, workers int) *sparseKernel {
	if workers < 1 {
		workers = 1
	}
	if n := m.NumRows(); workers > n {
		workers = n
	}
	sk := &sparseKernel{
		m:             m,
		workers:       workers,
		cNorm2:        make([]float64, k),
		partialCounts: make([][]int, workers),
	}
	for w := range sk.partialCounts {
		sk.partialCounts[w] = make([]int, k)
	}
	return sk
}

// refreshCentroidNorms caches ‖c‖² for every centroid.
func (sk *sparseKernel) refreshCentroidNorms(centroids [][]float64) {
	for c, cent := range centroids {
		sk.cNorm2[c] = vec.Dot(cent, cent)
	}
}

// argminRow returns the index of the centroid nearest to row i under
// the cached-norm identity ‖x−c‖² = ‖x‖² + ‖c‖² − 2⟨x,c⟩, scanning
// centroids in index order with a strict "<" so ties break exactly
// like vec.ArgMinDistance.
func (sk *sparseKernel) argminRow(i int, centroids [][]float64) int {
	vals, cols := sk.m.RowView(i)
	xn2 := sk.m.RowNorm2(i)
	best, bestD := -1, 0.0
	for c, cent := range centroids {
		dot := vec.SparseDot(vals, cols, cent)
		if d := xn2 + sk.cNorm2[c] - 2*dot; best < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// assignLabels runs only the parallel label scan (no sums/counts) —
// used for the final assignment pass.
func (sk *sparseKernel) assignLabels(centroids [][]float64, labels []int) {
	sk.refreshCentroidNorms(centroids)
	sk.scan(centroids, labels, nil)
}

// assign performs one full assignment step: parallel labels and
// per-worker counts merged at the barrier, then a serial row-order
// reduction of the centroid sums (see the package comment for why the
// reduction must be serial to keep bit-for-bit determinism).
func (sk *sparseKernel) assign(centroids [][]float64, labels []int, sums [][]float64, counts []int) {
	sk.refreshCentroidNorms(centroids)
	sk.scan(centroids, labels, sk.partialCounts)

	for c := range counts {
		counts[c] = 0
		for w := range sk.partialCounts {
			counts[c] += sk.partialCounts[w][c]
		}
		for j := range sums[c] {
			sums[c][j] = 0
		}
	}
	// Serial O(nnz) reduction in row order: bit-identical to the dense
	// kernel's AddTo accumulation because adding an exact zero never
	// changes an IEEE sum that started at +0.
	n := sk.m.NumRows()
	for i := 0; i < n; i++ {
		vals, cols := sk.m.RowView(i)
		vec.ScatterAdd(sums[labels[i]], vals, cols)
	}
}

// scan computes labels for every row, fanning contiguous row chunks
// out across the worker pool. partialCounts, when non-nil, receives
// per-worker label histograms.
func (sk *sparseKernel) scan(centroids [][]float64, labels []int, partialCounts [][]int) {
	n := sk.m.NumRows()
	if sk.workers == 1 {
		if partialCounts != nil {
			pc := partialCounts[0]
			for c := range pc {
				pc[c] = 0
			}
			for i := 0; i < n; i++ {
				c := sk.argminRow(i, centroids)
				labels[i] = c
				pc[c]++
			}
			return
		}
		for i := 0; i < n; i++ {
			labels[i] = sk.argminRow(i, centroids)
		}
		return
	}

	chunk := (n + sk.workers - 1) / sk.workers
	var wg sync.WaitGroup
	for w := 0; w < sk.workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			if partialCounts != nil {
				for c := range partialCounts[w] {
					partialCounts[w][c] = 0
				}
			}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var pc []int
			if partialCounts != nil {
				pc = partialCounts[w]
				for c := range pc {
					pc[c] = 0
				}
			}
			for i := lo; i < hi; i++ {
				c := sk.argminRow(i, centroids)
				labels[i] = c
				if pc != nil {
					pc[c]++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
}
