package cluster

import (
	"math/rand"
	"testing"
)

func TestDBSCANErrors(t *testing.T) {
	if _, err := DBSCAN(nil, DBSCANOptions{Eps: 1}); err == nil {
		t.Error("accepted empty data")
	}
	if _, err := DBSCAN([][]float64{{1}}, DBSCANOptions{Eps: 0}); err == nil {
		t.Error("accepted Eps=0")
	}
}

func TestDBSCANFindsBlobsAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var data [][]float64
	// Two dense blobs.
	for c := 0; c < 2; c++ {
		for i := 0; i < 60; i++ {
			data = append(data, []float64{
				float64(c)*10 + rng.NormFloat64()*0.3,
				rng.NormFloat64() * 0.3,
			})
		}
	}
	// Three isolated outliers.
	outliers := [][]float64{{5, 50}, {-40, -40}, {100, 0}}
	data = append(data, outliers...)

	res, err := DBSCAN(data, DBSCANOptions{Eps: 1.2, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d, want 2", res.K)
	}
	if res.NumNoise != 3 {
		t.Errorf("noise = %d, want 3", res.NumNoise)
	}
	for i := len(data) - 3; i < len(data); i++ {
		if res.Labels[i] != Noise {
			t.Errorf("outlier %d labelled %d, want Noise", i, res.Labels[i])
		}
	}
	// Both blobs fully assigned, one cluster each.
	for c := 0; c < 2; c++ {
		first := res.Labels[c*60]
		if first == Noise {
			t.Fatalf("blob %d core labelled noise", c)
		}
		for i := c * 60; i < (c+1)*60; i++ {
			if res.Labels[i] != first {
				t.Errorf("blob %d split: point %d has %d, want %d", c, i, res.Labels[i], first)
			}
		}
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	data := [][]float64{{0, 0}, {10, 10}, {20, 0}, {30, 30}}
	res, err := DBSCAN(data, DBSCANOptions{Eps: 1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 0 || res.NumNoise != 4 {
		t.Errorf("K=%d noise=%d, want 0/4", res.K, res.NumNoise)
	}
}

func TestDBSCANSingleDenseCluster(t *testing.T) {
	var data [][]float64
	for i := 0; i < 30; i++ {
		data = append(data, []float64{float64(i) * 0.1, 0})
	}
	res, err := DBSCAN(data, DBSCANOptions{Eps: 0.2, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Fatalf("chained dense points: K = %d, want 1", res.K)
	}
	if res.Sizes[0] != 30 {
		t.Errorf("cluster size = %d, want 30", res.Sizes[0])
	}
}

func TestDBSCANSizesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var data [][]float64
	for i := 0; i < 200; i++ {
		data = append(data, []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
	}
	res, err := DBSCAN(data, DBSCANOptions{Eps: 0.8, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := res.NumNoise
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(data) {
		t.Errorf("sizes+noise = %d, want %d", total, len(data))
	}
	// Core points are never noise.
	for i, isCore := range res.CorePoint {
		if isCore && res.Labels[i] == Noise {
			t.Errorf("core point %d labelled noise", i)
		}
	}
}
