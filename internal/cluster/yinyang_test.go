package cluster

import (
	"math/rand"
	"testing"

	"adahealth/internal/vec"
)

// Yinyang shares the whole property matrix of bounded_test.go (seeds ×
// K × dense/CSR × workers, empty-cluster repair, scratch reuse) via
// the shared algorithm lists there; this file covers what is specific
// to the group-filtered kernel.

func TestYinyangGroupCount(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 9: 1, 10: 1, 11: 2, 20: 2, 64: 7, 100: 10, 101: 11}
	for k, want := range cases {
		if got := yinyangGroups(k); got != want {
			t.Errorf("yinyangGroups(%d) = %d, want %d", k, got, want)
		}
	}
}

// The grouping is computed deterministically from the initial
// centroids: same input, same partition — a prerequisite for the
// kernel's reproducibility across runs and worker counts.
func TestYinyangGroupingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randRows(rng, 300, 8, 1.0)
	for trial := 0; trial < 3; trial++ {
		a, err := KMeans(data, Options{K: 40, Seed: 3, Algorithm: Yinyang, Parallelism: 1 + trial*3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := KMeans(data, Options{K: 40, Seed: 3, Algorithm: Yinyang, Parallelism: 8 - trial*2})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, trial, 0, a, b)
	}
}

// Every centroid lands in exactly one group and every group's member
// list round-trips through the flat members/offsets encoding.
func TestYinyangGroupPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := randRows(rng, 200, 5, 1.0)
	cents := make([][]float64, 37)
	for i := range cents {
		cents[i] = data[rng.Intn(len(data))]
	}
	yk := newYinyangKernel(data, nil, cents, 4, nil)
	if yk.g != yinyangGroups(37) {
		t.Fatalf("g = %d, want %d", yk.g, yinyangGroups(37))
	}
	seen := make([]bool, 37)
	for j := 0; j < yk.g; j++ {
		for _, c := range yk.members[yk.offsets[j]:yk.offsets[j+1]] {
			if yk.group[c] != j {
				t.Errorf("centroid %d listed under group %d but group[%d] = %d", c, j, c, yk.group[c])
			}
			if seen[c] {
				t.Errorf("centroid %d listed twice", c)
			}
			seen[c] = true
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Errorf("centroid %d in no group", c)
		}
	}
}

// The large-K headline case: yinyang over a prebuilt CSR view at K=64
// matches the sparse Lloyd reference bit for bit under every worker
// count, with a Scratch shared across the worker-count runs the way
// the warm sweep shares one.
func TestYinyangLargeKOverCSRWithScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := randRows(rng, 400, 32, 0.1)
	csr := vec.NewCSRFromDense(data)
	want, err := KMeansCSR(csr, data, Options{K: 64, Seed: 4, Algorithm: SparseLloyd})
	if err != nil {
		t.Fatal(err)
	}
	scratch := &Scratch{}
	for _, workers := range []int{1, 2, 8} {
		got, err := KMeansCSR(csr, data, Options{K: 64, Seed: 4, Algorithm: Yinyang, Parallelism: workers, Scratch: scratch})
		if err != nil {
			t.Fatal(err)
		}
		if got.Algorithm != "yinyang" {
			t.Fatalf("Algorithm = %q, want yinyang", got.Algorithm)
		}
		requireIdentical(t, 64, workers, want, got)
	}
}

// Auto routing must never alter the result: on every routed shape the
// labels match Lloyd's exactly, and on the bounded routes the whole
// result does bit for bit (the filtering route accumulates subtree
// sums in a different order, so its centroids/SSE are compared by
// label equality only).
func TestAutoRoutingNeverAltersResults(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := []struct {
		name     string
		data     [][]float64
		k        int
		bitLevel bool
	}{
		{"sparse-smallK-elkan", randRows(rng, 150, 40, 0.1), 8, true},
		{"sparse-largeK-yinyang", randRows(rng, 150, 40, 0.1), 40, true},
		{"dense-lowdim-hamerly", randRows(rng, 150, 3, 1.0), 8, true},
		{"dense-lowdim-filtering", randRows(rng, 150, 3, 1.0), 40, false},
		{"dense-highdim-elkan", randRows(rng, 150, 24, 1.0), 8, true},
		{"dense-highdim-yinyang", randRows(rng, 150, 24, 1.0), 40, true},
	}
	for _, tc := range cases {
		want, err := KMeans(tc.data, Options{K: tc.k, Seed: 6, Algorithm: Lloyd})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := KMeans(tc.data, Options{K: tc.k, Seed: 6, Algorithm: AlgorithmAuto})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if tc.bitLevel {
			requireIdentical(t, tc.k, 0, want, got)
			continue
		}
		if len(got.Labels) != len(want.Labels) {
			t.Fatalf("%s: %d labels, want %d", tc.name, len(got.Labels), len(want.Labels))
		}
		for i := range want.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("%s: label[%d] = %d, want %d", tc.name, i, got.Labels[i], want.Labels[i])
			}
		}
	}
}
