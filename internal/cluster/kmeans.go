// Package cluster implements the center-based clustering algorithms
// used by ADA-HEALTH: K-means with k-means++ seeding, in the classic
// Lloyd formulation, the kd-tree filtering formulation of Kanungo et
// al. (the paper's reference [3]), and a sparse-aware parallel kernel
// tuned for the VSM patient matrices, plus bisecting K-means.
//
// # Sparse kernel design
//
// VSM patient vectors are inherently sparse exam histories, so the
// hot assignment step stores the data as a CSR matrix (vec.CSRMatrix:
// flat contiguous Values/ColIdx/RowPtr arrays with cached per-row
// squared norms) and scores each point against each centroid through
// the identity
//
//	‖x−c‖² = ‖x‖² + ‖c‖² − 2⟨x,c⟩
//
// ‖x‖² is cached once per run, ‖c‖² once per iteration, and ⟨x,c⟩ is
// a sparse dot product, so one assignment costs O(K·nnz(x)) instead
// of O(K·d). The argmin scans centroids in index order with a strict
// "<" comparison — the same tie-breaking as the dense kernel.
//
// # Parallelism and determinism
//
// The label scan is fanned out across a chunked goroutine pool
// (Options.Parallelism workers; each worker owns a contiguous row
// range and a private partial counts vector, merged at a barrier).
// Labels depend only on (row, centroids), and integer count merging
// is order-independent, so the scan is deterministic for any worker
// count. The centroid sums are then accumulated in a single O(nnz)
// pass in row order — deliberately not per-worker — because
// floating-point addition is non-associative: chunked partial sums
// would change the reduction order and hence the low-order bits of
// the centroids across worker counts. The reduction is O(nnz), a 1/K
// share of the assignment work, so Amdahl losses stay small.
//
// Determinism comes in two strengths. Across worker counts the
// guarantee is unconditional: labels depend only on (row, centroids)
// and the reduction order is fixed, so every Parallelism value yields
// bit-for-bit the same model. Against serial dense Lloyd the kernel
// is bit-for-bit identical (same Labels, SSE, Iterations — seeding,
// empty-cluster repair, convergence test and the final SSE pass all
// share the dense code paths) whenever every point's winning-centroid
// margin exceeds the rounding error of the norm identity, which holds
// for the unit-norm VSM rows and generally for well-scaled data (the
// property tests exercise random sparse/dense inputs). The caveat is
// catastrophic cancellation: when ‖x‖ ≈ ‖c‖ ≫ ‖x−c‖ (e.g. raw
// coordinates around 1e8), the identity can round a near-tied argmin
// the other way and the two kernels may drift apart; force DenseLloyd
// if exact parity on such data matters more than speed.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"adahealth/internal/kdtree"
	"adahealth/internal/vec"
)

// Algorithm selects the assignment-step implementation.
type Algorithm int

const (
	// Lloyd is the classic O(n·K·d) per-iteration algorithm. It
	// auto-routes to the sparse kernel when the data is sparse enough
	// for it to pay (or when a prebuilt CSR view is supplied); the
	// result is bit-for-bit identical either way for well-scaled data
	// (see the package comment for the cancellation caveat).
	Lloyd Algorithm = iota
	// Filtering is the kd-tree filtering algorithm of Kanungo et al.
	Filtering
	// DenseLloyd forces the dense serial assignment step.
	DenseLloyd
	// SparseLloyd forces the sparse-aware parallel kernel.
	SparseLloyd
)

func (a Algorithm) String() string {
	switch a {
	case Lloyd:
		return "lloyd"
	case Filtering:
		return "filtering"
	case DenseLloyd:
		return "dense-lloyd"
	case SparseLloyd:
		return "sparse-lloyd"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// InitMethod selects centroid seeding.
type InitMethod int

const (
	// KMeansPP is k-means++ (D² sampling); the default.
	KMeansPP InitMethod = iota
	// RandomInit picks K distinct points uniformly.
	RandomInit
)

func (m InitMethod) String() string {
	switch m {
	case KMeansPP:
		return "kmeans++"
	case RandomInit:
		return "random"
	default:
		return fmt.Sprintf("InitMethod(%d)", int(m))
	}
}

// Options configures a K-means run. Zero values get sensible defaults
// from (Options).withDefaults.
type Options struct {
	K         int
	MaxIter   int     // default 100
	Tolerance float64 // max centroid movement for convergence; default 1e-8
	Seed      int64
	Init      InitMethod
	Algorithm Algorithm
	LeafSize  int // kd-tree leaf size for Filtering; default kdtree.DefaultLeafSize

	// Parallelism bounds the worker goroutines of the sparse parallel
	// assignment step: 0 uses all cores (runtime.GOMAXPROCS(0)), 1 is
	// serial. The result is identical for every value (see the package
	// comment).
	Parallelism int

	// InitialCentroids, when non-nil, bypasses seeding (used by tests
	// and by the kernel-equivalence properties).
	InitialCentroids [][]float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-8
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result is a fitted cluster model.
type Result struct {
	K          int
	Centroids  [][]float64
	Labels     []int
	Sizes      []int
	SSE        float64
	Iterations int
	Converged  bool
	// Algorithm names the assignment kernel that actually ran
	// ("lloyd", "sparse-lloyd", "filtering", ...).
	Algorithm string
}

// sparseAutoThreshold is the density at or below which plain Lloyd
// auto-routes to the sparse kernel; above it the dense scan's simpler
// inner loop wins.
const sparseAutoThreshold = 0.5

// SparseProfitable reports whether the sparse kernel is expected to
// beat the dense scan for a dataset of the given shape and density.
// Callers holding a prebuilt CSR view (e.g. vsm.Matrix.Sparse) use it
// to decide whether to hand the view to KMeansCSR.
func SparseProfitable(rows, cols int, density float64) bool {
	return cols >= 8 && rows >= 32 && density <= sparseAutoThreshold
}

// AutoCSR scans data and returns a fresh CSR view when
// SparseProfitable says the sparse kernel will pay, else nil. The nil
// result is accepted by KMeansCSR, which then falls back to the
// dense-data entry point, so call sites stay uniform.
func AutoCSR(data [][]float64) *vec.CSRMatrix {
	if len(data) == 0 || len(data[0]) == 0 {
		return nil
	}
	nnz := 0
	for _, row := range data {
		for _, v := range row {
			if v != 0 {
				nnz++
			}
		}
	}
	if !SparseProfitable(len(data), len(data[0]), float64(nnz)/float64(len(data)*len(data[0]))) {
		return nil
	}
	return vec.NewCSRFromDense(data)
}

// KMeans clusters data into opts.K groups. Data must be non-empty and
// rectangular, with opts.K in [1, len(data)].
func KMeans(data [][]float64, opts Options) (*Result, error) {
	return run(context.Background(), data, nil, opts)
}

// KMeansContext is KMeans under a context: the iteration loop checks
// ctx between Lloyd iterations and returns ctx.Err() (unwrapped, so
// errors.Is works) as soon as the context is cancelled or times out.
func KMeansContext(ctx context.Context, data [][]float64, opts Options) (*Result, error) {
	return run(ctx, data, nil, opts)
}

// KMeansCSR is KMeans over a prebuilt sparse view, so repeated runs on
// the same matrix (e.g. the Table I K sweep) share one CSR build.
// dense, when non-nil, must be the dense view of m; it is used by the
// cold paths (seeding, empty-cluster repair, final SSE) so that
// results stay bit-for-bit identical to dense serial Lloyd. A nil
// dense is materialized once from m.
func KMeansCSR(m *vec.CSRMatrix, dense [][]float64, opts Options) (*Result, error) {
	return KMeansCSRContext(context.Background(), m, dense, opts)
}

// KMeansCSRContext is KMeansCSR with cancellation, the entry point the
// pipeline's sweep and partial-mining stages use.
func KMeansCSRContext(ctx context.Context, m *vec.CSRMatrix, dense [][]float64, opts Options) (*Result, error) {
	if m == nil {
		if dense == nil {
			return nil, fmt.Errorf("cluster: KMeansCSR needs a CSR view or dense rows")
		}
		return run(ctx, dense, nil, opts)
	}
	if dense == nil {
		dense = m.Dense()
	}
	if len(dense) != m.NumRows() {
		return nil, fmt.Errorf("cluster: dense view has %d rows, CSR has %d",
			len(dense), m.NumRows())
	}
	return run(ctx, dense, m, opts)
}

func run(ctx context.Context, data [][]float64, csr *vec.CSRMatrix, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no data")
	}
	d := len(data[0])
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("cluster: row %d has dimension %d, want %d", i, len(row), d)
		}
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("cluster: K=%d outside [1,%d]", opts.K, n)
	}
	if csr != nil && csr.NumCols() != d {
		return nil, fmt.Errorf("cluster: CSR has %d cols, dense view has %d", csr.NumCols(), d)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	var centroids [][]float64
	switch {
	case opts.InitialCentroids != nil:
		if len(opts.InitialCentroids) != opts.K {
			return nil, fmt.Errorf("cluster: %d initial centroids for K=%d",
				len(opts.InitialCentroids), opts.K)
		}
		centroids = make([][]float64, opts.K)
		for i, c := range opts.InitialCentroids {
			if len(c) != d {
				return nil, fmt.Errorf("cluster: initial centroid %d has dimension %d, want %d",
					i, len(c), d)
			}
			centroids[i] = vec.Clone(c)
		}
	case opts.Init == RandomInit:
		centroids = randomInit(data, opts.K, rng)
	default:
		centroids = kmeansPPInit(data, opts.K, rng)
	}

	// Select the assignment kernel.
	useSparse := false
	switch opts.Algorithm {
	case SparseLloyd:
		useSparse = true
	case Lloyd:
		if csr != nil {
			useSparse = true
		} else {
			nnz := 0
			for _, row := range data {
				for _, v := range row {
					if v != 0 {
						nnz++
					}
				}
			}
			useSparse = SparseProfitable(n, d, float64(nnz)/float64(n*d))
		}
	}

	var tree *kdtree.Tree
	if opts.Algorithm == Filtering {
		var err error
		tree, err = kdtree.Build(data, opts.LeafSize)
		if err != nil {
			return nil, fmt.Errorf("cluster: building kd-tree: %w", err)
		}
	}
	var sk *sparseKernel
	if useSparse {
		if csr == nil {
			csr = vec.NewCSRFromDense(data)
		}
		sk = newSparseKernel(csr, opts.K, opts.Parallelism)
	}

	labels := make([]int, n)
	counts := make([]int, opts.K)
	sums := make([][]float64, opts.K)
	for i := range sums {
		sums[i] = make([]float64, d)
	}

	algo := opts.Algorithm.String()
	switch {
	case opts.Algorithm == Filtering:
		// keep
	case sk != nil:
		algo = SparseLloyd.String()
	default:
		algo = Lloyd.String()
	}

	res := &Result{K: opts.K, Algorithm: algo}
	for iter := 0; iter < opts.MaxIter; iter++ {
		// One Lloyd iteration is the cancellation granularity of the
		// hot loop: milliseconds at paper scale, so a cancelled context
		// is honoured promptly without a per-point check in the kernel.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iterations = iter + 1

		// Assignment step.
		switch {
		case opts.Algorithm == Filtering:
			tree.FilterStep(centroids, labels, sums, counts)
		case sk != nil:
			sk.assign(centroids, labels, sums, counts)
		default:
			for i := range sums {
				for j := range sums[i] {
					sums[i][j] = 0
				}
				counts[i] = 0
			}
			for i, x := range data {
				c, _ := vec.ArgMinDistance(x, centroids)
				labels[i] = c
				counts[c]++
				vec.AddTo(sums[c], x)
			}
		}

		if moved := updateCentroids(data, centroids, labels, sums, counts); moved <= opts.Tolerance {
			res.Converged = true
			break
		}
	}

	// Final assignment against the converged centroids, plus SSE. The
	// sparse kernel computes the argmin; the distance itself is always
	// recomputed densely so the SSE matches serial dense Lloyd exactly.
	res.Centroids = centroids
	res.Labels = make([]int, n)
	res.Sizes = make([]int, opts.K)
	if sk != nil {
		sk.assignLabels(centroids, res.Labels)
		for i, x := range data {
			c := res.Labels[i]
			res.Sizes[c]++
			res.SSE += vec.SquaredEuclidean(x, centroids[c])
		}
	} else {
		for i, x := range data {
			c, dist := vec.ArgMinDistance(x, centroids)
			res.Labels[i] = c
			res.Sizes[c]++
			res.SSE += dist
		}
	}
	return res, nil
}

// updateCentroids recomputes each centroid from the accumulated
// sums/counts and returns the largest centroid movement. An empty
// cluster is reseeded at the point currently farthest from its
// assigned centroid; the point is claimed immediately (its label,
// counts and sum contributions move to the repaired cluster) so that
// a second empty cluster repaired in the same iteration cannot pick
// the same farthest point.
func updateCentroids(data, centroids [][]float64, labels []int, sums [][]float64, counts []int) float64 {
	moved := 0.0
	for c := range centroids {
		if counts[c] == 0 {
			far := farthestPoint(data, centroids, labels)
			delta := vec.Euclidean(centroids[c], data[far])
			copy(centroids[c], data[far])
			old := labels[far]
			labels[far] = c
			counts[c] = 1
			if old != c {
				counts[old]--
				for j, v := range data[far] {
					sums[old][j] -= v
				}
			}
			if delta > moved {
				moved = delta
			}
			continue
		}
		prev := vec.Clone(centroids[c])
		for j := range centroids[c] {
			centroids[c][j] = sums[c][j] / float64(counts[c])
		}
		if delta := vec.Euclidean(prev, centroids[c]); delta > moved {
			moved = delta
		}
	}
	return moved
}

// farthestPoint returns the index of the point with the largest
// distance to its assigned centroid.
func farthestPoint(data [][]float64, centroids [][]float64, labels []int) int {
	best, bestD := 0, -1.0
	for i, x := range data {
		if d := vec.SquaredEuclidean(x, centroids[labels[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func randomInit(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	perm := rng.Perm(len(data))
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = vec.Clone(data[perm[i]])
	}
	return out
}

// kmeansPPInit seeds centroids by D² sampling (Arthur & Vassilvitskii).
func kmeansPPInit(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(data)
	out := make([][]float64, 0, k)
	out = append(out, vec.Clone(data[rng.Intn(n)]))
	dist := make([]float64, n)
	for i, x := range data {
		dist[i] = vec.SquaredEuclidean(x, out[0])
	}
	for len(out) < k {
		total := 0.0
		for _, w := range dist {
			total += w
		}
		var next int
		if total == 0 {
			// All points coincide with chosen centroids; pick any.
			next = rng.Intn(n)
		} else {
			u := rng.Float64() * total
			acc := 0.0
			next = n - 1
			for i, w := range dist {
				acc += w
				if acc >= u {
					next = i
					break
				}
			}
		}
		out = append(out, vec.Clone(data[next]))
		for i, x := range data {
			if d := vec.SquaredEuclidean(x, out[len(out)-1]); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return out
}

// SSEOf recomputes the sum of squared errors of data against a fitted
// model's centroids/labels. It is exported for evaluation code.
func SSEOf(data [][]float64, centroids [][]float64, labels []int) float64 {
	sse := 0.0
	for i, x := range data {
		sse += vec.SquaredEuclidean(x, centroids[labels[i]])
	}
	return sse
}

// BisectingKMeans builds K clusters by repeatedly 2-means-splitting
// the cluster with the largest SSE. It returns a Result in the same
// shape as KMeans.
func BisectingKMeans(data [][]float64, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no data")
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("cluster: K=%d outside [1,%d]", opts.K, n)
	}
	type clust struct {
		members []int
		center  []float64
		sse     float64
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	center := vec.Mean(data)
	start := clust{members: all, center: center}
	for _, i := range all {
		start.sse += vec.SquaredEuclidean(data[i], center)
	}
	clusters := []clust{start}
	rng := rand.New(rand.NewSource(opts.Seed))

	for len(clusters) < opts.K {
		// Pick the cluster with the largest SSE that can be split.
		worst := -1
		for i, c := range clusters {
			if len(c.members) < 2 {
				continue
			}
			if worst == -1 || c.sse > clusters[worst].sse {
				worst = i
			}
		}
		if worst == -1 {
			break // nothing splittable
		}
		target := clusters[worst]
		sub := make([][]float64, len(target.members))
		for i, m := range target.members {
			sub[i] = data[m]
		}
		split, err := KMeans(sub, Options{
			K: 2, MaxIter: opts.MaxIter, Tolerance: opts.Tolerance,
			Seed: rng.Int63(), Init: opts.Init, Algorithm: Lloyd,
			Parallelism: opts.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		var parts [2]clust
		for i := range parts {
			parts[i].center = split.Centroids[i]
		}
		for i, m := range target.members {
			c := split.Labels[i]
			parts[c].members = append(parts[c].members, m)
			parts[c].sse += vec.SquaredEuclidean(data[m], split.Centroids[c])
		}
		if len(parts[0].members) == 0 || len(parts[1].members) == 0 {
			// Degenerate split (identical points): stop splitting.
			break
		}
		clusters[worst] = parts[0]
		clusters = append(clusters, parts[1])
	}

	res := &Result{
		K:         len(clusters),
		Labels:    make([]int, n),
		Sizes:     make([]int, len(clusters)),
		Algorithm: "bisecting",
		Converged: true,
	}
	res.Centroids = make([][]float64, len(clusters))
	for c, cl := range clusters {
		res.Centroids[c] = cl.center
		res.Sizes[c] = len(cl.members)
		for _, m := range cl.members {
			res.Labels[m] = c
		}
		res.SSE += cl.sse
	}
	return res, nil
}
