// Package cluster implements the center-based clustering algorithms
// used by ADA-HEALTH: K-means with k-means++ seeding, in both the
// classic Lloyd formulation and the kd-tree filtering formulation of
// Kanungo et al. (the paper's reference [3]), plus bisecting K-means.
package cluster

import (
	"fmt"
	"math/rand"

	"adahealth/internal/kdtree"
	"adahealth/internal/vec"
)

// Algorithm selects the assignment-step implementation.
type Algorithm int

const (
	// Lloyd is the classic O(n·K·d) per-iteration algorithm.
	Lloyd Algorithm = iota
	// Filtering is the kd-tree filtering algorithm of Kanungo et al.
	Filtering
)

func (a Algorithm) String() string {
	switch a {
	case Lloyd:
		return "lloyd"
	case Filtering:
		return "filtering"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// InitMethod selects centroid seeding.
type InitMethod int

const (
	// KMeansPP is k-means++ (D² sampling); the default.
	KMeansPP InitMethod = iota
	// RandomInit picks K distinct points uniformly.
	RandomInit
)

func (m InitMethod) String() string {
	switch m {
	case KMeansPP:
		return "kmeans++"
	case RandomInit:
		return "random"
	default:
		return fmt.Sprintf("InitMethod(%d)", int(m))
	}
}

// Options configures a K-means run. Zero values get sensible defaults
// from (Options).withDefaults.
type Options struct {
	K         int
	MaxIter   int     // default 100
	Tolerance float64 // max centroid movement for convergence; default 1e-8
	Seed      int64
	Init      InitMethod
	Algorithm Algorithm
	LeafSize  int // kd-tree leaf size for Filtering; default kdtree.DefaultLeafSize

	// InitialCentroids, when non-nil, bypasses seeding (used by tests
	// and by the Lloyd-vs-Filtering equivalence property).
	InitialCentroids [][]float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-8
	}
	return o
}

// Result is a fitted cluster model.
type Result struct {
	K          int
	Centroids  [][]float64
	Labels     []int
	Sizes      []int
	SSE        float64
	Iterations int
	Converged  bool
	Algorithm  string
}

// KMeans clusters data into opts.K groups. Data must be non-empty and
// rectangular, with opts.K in [1, len(data)].
func KMeans(data [][]float64, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no data")
	}
	d := len(data[0])
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("cluster: row %d has dimension %d, want %d", i, len(row), d)
		}
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("cluster: K=%d outside [1,%d]", opts.K, n)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	var centroids [][]float64
	switch {
	case opts.InitialCentroids != nil:
		if len(opts.InitialCentroids) != opts.K {
			return nil, fmt.Errorf("cluster: %d initial centroids for K=%d",
				len(opts.InitialCentroids), opts.K)
		}
		centroids = make([][]float64, opts.K)
		for i, c := range opts.InitialCentroids {
			if len(c) != d {
				return nil, fmt.Errorf("cluster: initial centroid %d has dimension %d, want %d",
					i, len(c), d)
			}
			centroids[i] = vec.Clone(c)
		}
	case opts.Init == RandomInit:
		centroids = randomInit(data, opts.K, rng)
	default:
		centroids = kmeansPPInit(data, opts.K, rng)
	}

	var tree *kdtree.Tree
	if opts.Algorithm == Filtering {
		var err error
		tree, err = kdtree.Build(data, opts.LeafSize)
		if err != nil {
			return nil, fmt.Errorf("cluster: building kd-tree: %w", err)
		}
	}

	labels := make([]int, n)
	counts := make([]int, opts.K)
	sums := make([][]float64, opts.K)
	for i := range sums {
		sums[i] = make([]float64, d)
	}

	res := &Result{K: opts.K, Algorithm: opts.Algorithm.String()}
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1

		// Assignment step.
		if opts.Algorithm == Filtering {
			tree.FilterStep(centroids, labels, sums, counts)
		} else {
			for i := range sums {
				for j := range sums[i] {
					sums[i][j] = 0
				}
				counts[i] = 0
			}
			for i, x := range data {
				c, _ := vec.ArgMinDistance(x, centroids)
				labels[i] = c
				counts[c]++
				vec.AddTo(sums[c], x)
			}
		}

		// Update step, with empty-cluster repair: an empty cluster is
		// reseeded at the point currently farthest from its centroid.
		moved := 0.0
		for c := 0; c < opts.K; c++ {
			if counts[c] == 0 {
				far := farthestPoint(data, centroids, labels)
				delta := vec.Euclidean(centroids[c], data[far])
				copy(centroids[c], data[far])
				if delta > moved {
					moved = delta
				}
				continue
			}
			prev := vec.Clone(centroids[c])
			for j := 0; j < d; j++ {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
			if delta := vec.Euclidean(prev, centroids[c]); delta > moved {
				moved = delta
			}
		}
		if moved <= opts.Tolerance {
			res.Converged = true
			break
		}
	}

	// Final assignment against the converged centroids, plus SSE.
	res.Centroids = centroids
	res.Labels = make([]int, n)
	res.Sizes = make([]int, opts.K)
	for i, x := range data {
		c, dist := vec.ArgMinDistance(x, centroids)
		res.Labels[i] = c
		res.Sizes[c]++
		res.SSE += dist
	}
	return res, nil
}

// farthestPoint returns the index of the point with the largest
// distance to its assigned centroid.
func farthestPoint(data [][]float64, centroids [][]float64, labels []int) int {
	best, bestD := 0, -1.0
	for i, x := range data {
		if d := vec.SquaredEuclidean(x, centroids[labels[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func randomInit(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	perm := rng.Perm(len(data))
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = vec.Clone(data[perm[i]])
	}
	return out
}

// kmeansPPInit seeds centroids by D² sampling (Arthur & Vassilvitskii).
func kmeansPPInit(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(data)
	out := make([][]float64, 0, k)
	out = append(out, vec.Clone(data[rng.Intn(n)]))
	dist := make([]float64, n)
	for i, x := range data {
		dist[i] = vec.SquaredEuclidean(x, out[0])
	}
	for len(out) < k {
		total := 0.0
		for _, w := range dist {
			total += w
		}
		var next int
		if total == 0 {
			// All points coincide with chosen centroids; pick any.
			next = rng.Intn(n)
		} else {
			u := rng.Float64() * total
			acc := 0.0
			next = n - 1
			for i, w := range dist {
				acc += w
				if acc >= u {
					next = i
					break
				}
			}
		}
		out = append(out, vec.Clone(data[next]))
		for i, x := range data {
			if d := vec.SquaredEuclidean(x, out[len(out)-1]); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return out
}

// SSEOf recomputes the sum of squared errors of data against a fitted
// model's centroids/labels. It is exported for evaluation code.
func SSEOf(data [][]float64, centroids [][]float64, labels []int) float64 {
	sse := 0.0
	for i, x := range data {
		sse += vec.SquaredEuclidean(x, centroids[labels[i]])
	}
	return sse
}

// BisectingKMeans builds K clusters by repeatedly 2-means-splitting
// the cluster with the largest SSE. It returns a Result in the same
// shape as KMeans.
func BisectingKMeans(data [][]float64, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no data")
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("cluster: K=%d outside [1,%d]", opts.K, n)
	}
	type clust struct {
		members []int
		center  []float64
		sse     float64
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	center := vec.Mean(data)
	start := clust{members: all, center: center}
	for _, i := range all {
		start.sse += vec.SquaredEuclidean(data[i], center)
	}
	clusters := []clust{start}
	rng := rand.New(rand.NewSource(opts.Seed))

	for len(clusters) < opts.K {
		// Pick the cluster with the largest SSE that can be split.
		worst := -1
		for i, c := range clusters {
			if len(c.members) < 2 {
				continue
			}
			if worst == -1 || c.sse > clusters[worst].sse {
				worst = i
			}
		}
		if worst == -1 {
			break // nothing splittable
		}
		target := clusters[worst]
		sub := make([][]float64, len(target.members))
		for i, m := range target.members {
			sub[i] = data[m]
		}
		split, err := KMeans(sub, Options{
			K: 2, MaxIter: opts.MaxIter, Tolerance: opts.Tolerance,
			Seed: rng.Int63(), Init: opts.Init, Algorithm: Lloyd,
		})
		if err != nil {
			return nil, err
		}
		var parts [2]clust
		for i := range parts {
			parts[i].center = split.Centroids[i]
		}
		for i, m := range target.members {
			c := split.Labels[i]
			parts[c].members = append(parts[c].members, m)
			parts[c].sse += vec.SquaredEuclidean(data[m], split.Centroids[c])
		}
		if len(parts[0].members) == 0 || len(parts[1].members) == 0 {
			// Degenerate split (identical points): stop splitting.
			break
		}
		clusters[worst] = parts[0]
		clusters = append(clusters, parts[1])
	}

	res := &Result{
		K:         len(clusters),
		Labels:    make([]int, n),
		Sizes:     make([]int, len(clusters)),
		Algorithm: "bisecting",
		Converged: true,
	}
	res.Centroids = make([][]float64, len(clusters))
	for c, cl := range clusters {
		res.Centroids[c] = cl.center
		res.Sizes[c] = len(cl.members)
		for _, m := range cl.members {
			res.Labels[m] = c
		}
		res.SSE += cl.sse
	}
	return res, nil
}
