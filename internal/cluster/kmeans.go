// Package cluster implements the center-based clustering algorithms
// used by ADA-HEALTH: K-means with k-means++ seeding, in the classic
// Lloyd formulation, the kd-tree filtering formulation of Kanungo et
// al. (the paper's reference [3]), a sparse-aware parallel kernel
// tuned for the VSM patient matrices, the Hamerly/Elkan/Yinyang
// triangle-inequality bounded kernels, Sculley mini-batch K-means,
// and bisecting K-means.
//
// # Algorithm matrix
//
// Every Algorithm except AlgorithmMiniBatch is exact — it converges
// to the same fixed point Lloyd does on the same seeding:
//
//	algorithm    exactness                  data        strength
//	---------    -------------------------  ----------  -----------------------------------
//	lloyd        exact, ≡ Lloyd bit-for-bit any         auto-routes dense vs sparse scan
//	dense-lloyd  exact (the reference)      dense       baseline
//	sparse-lloyd exact, ≡ Lloyd bit-for-bit sparse/CSR  O(K·nnz) scan, parallel workers
//	hamerly      exact, ≡ Lloyd bit-for-bit any         1 bound/point: low-dim, small K
//	elkan        exact, ≡ Lloyd bit-for-bit any         K bounds/point: high-dim, moderate K
//	yinyang      exact, ≡ Lloyd bit-for-bit any         K/10 group bounds/point: large K
//	             (Ding et al., ICML 2015)               without elkan's O(n·K) bound memory
//	filtering    exact (≢ bit-for-bit: kd-  dense       low-dim dense, large K
//	             tree subtree sums reorder
//	             the fp accumulation)
//	minibatch    APPROXIMATE (Sculley),     any         per-iteration cost independent of n
//	             deterministic under Seed
//	auto         exact (routes below)       any
//
// AlgorithmAuto routing rules, in order: data sparse enough for the
// CSR kernel to pay (SparseProfitable) → yinyang over the CSR view
// when K ≥ 32, else elkan; dense with ≤ 16 dimensions → filtering
// when K ≥ 32, else hamerly; dense high-dimensional → yinyang when
// K ≥ 32, else elkan. Large K favors yinyang because its per-point
// bound state is G ≈ K/10 floats instead of elkan's K, so the decay
// pass touches an order less memory per iteration and the bounds stay
// tighter than hamerly's single second-closest bound, which collapses
// once many centroids crowd the second position; elkan remains the
// pick below the K=32 line, where its per-centroid bounds prune
// hardest and their maintenance still fits cache. Mini-batch is never
// auto-selected: trading exactness for scale is an explicit caller
// decision.
//
// "≡ Lloyd bit-for-bit" means identical Labels/SSE/Iterations/
// Centroids, property-tested across seeds, worker counts and
// dense/CSR inputs, with two documented caveats: the norm-identity
// cancellation case below, and exact distance ties (a bounded kernel
// proves "no strictly closer centroid" and keeps the incumbent,
// where Lloyd's fresh scan picks the lowest index — measure zero on
// continuous data).
//
// # Sparse kernel design
//
// VSM patient vectors are inherently sparse exam histories, so the
// hot assignment step stores the data as a CSR matrix (vec.CSRMatrix:
// flat contiguous Values/ColIdx/RowPtr arrays with cached per-row
// squared norms) and scores each point against each centroid through
// the identity
//
//	‖x−c‖² = ‖x‖² + ‖c‖² − 2⟨x,c⟩
//
// ‖x‖² is cached once per run, ‖c‖² once per iteration, and ⟨x,c⟩ is
// a sparse dot product, so one assignment costs O(K·nnz(x)) instead
// of O(K·d). The argmin scans centroids in index order with a strict
// "<" comparison — the same tie-breaking as the dense kernel.
//
// # Parallelism and determinism
//
// The label scan is fanned out across a chunked goroutine pool
// (Options.Parallelism workers; each worker owns a contiguous row
// range and a private partial counts vector, merged at a barrier).
// Labels depend only on (row, centroids), and integer count merging
// is order-independent, so the scan is deterministic for any worker
// count. The centroid sums are then accumulated in a single O(nnz)
// pass in row order — deliberately not per-worker — because
// floating-point addition is non-associative: chunked partial sums
// would change the reduction order and hence the low-order bits of
// the centroids across worker counts. The reduction is O(nnz), a 1/K
// share of the assignment work, so Amdahl losses stay small.
//
// Determinism comes in two strengths. Across worker counts the
// guarantee is unconditional: labels depend only on (row, centroids)
// and the reduction order is fixed, so every Parallelism value yields
// bit-for-bit the same model. Against serial dense Lloyd the kernel
// is bit-for-bit identical (same Labels, SSE, Iterations — seeding,
// empty-cluster repair, convergence test and the final SSE pass all
// share the dense code paths) whenever every point's winning-centroid
// margin exceeds the rounding error of the norm identity, which holds
// for the unit-norm VSM rows and generally for well-scaled data (the
// property tests exercise random sparse/dense inputs). The caveat is
// catastrophic cancellation: when ‖x‖ ≈ ‖c‖ ≫ ‖x−c‖ (e.g. raw
// coordinates around 1e8), the identity can round a near-tied argmin
// the other way and the two kernels may drift apart; force DenseLloyd
// if exact parity on such data matters more than speed.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"adahealth/internal/kdtree"
	"adahealth/internal/vec"
)

// Algorithm selects the assignment-step implementation.
type Algorithm int

const (
	// Lloyd is the classic O(n·K·d) per-iteration algorithm. It
	// auto-routes to the sparse kernel when the data is sparse enough
	// for it to pay (or when a prebuilt CSR view is supplied); the
	// result is bit-for-bit identical either way for well-scaled data
	// (see the package comment for the cancellation caveat).
	Lloyd Algorithm = iota
	// Filtering is the kd-tree filtering algorithm of Kanungo et al.
	Filtering
	// DenseLloyd forces the dense serial assignment step.
	DenseLloyd
	// SparseLloyd forces the sparse-aware parallel kernel.
	SparseLloyd
	// Hamerly is the one-lower-bound triangle-inequality kernel
	// (Hamerly 2010): exact, bit-for-bit identical to Lloyd, and
	// skips the whole centroid scan for points whose bounds prove the
	// assignment unchanged. Best for low-dimensional dense data at
	// moderate K.
	Hamerly
	// Elkan is the per-centroid-lower-bound triangle-inequality kernel
	// (Elkan 2003): exact like Hamerly, with tighter pruning that pays
	// at larger K and on high-dimensional (sparse) data, at O(n·K)
	// bound memory.
	Elkan
	// AlgorithmMiniBatch is Sculley-style mini-batch K-means:
	// approximate (NOT bit-for-bit comparable to Lloyd; excluded from
	// the exactness property tests), deterministic under Seed, with
	// per-iteration cost independent of the dataset size — the kernel
	// for >100k-patient logs.
	AlgorithmMiniBatch
	// Yinyang is the group-filtered triangle-inequality kernel (Ding et
	// al. 2015): exact like Hamerly/Elkan, with one upper bound plus
	// G ≈ K/10 group lower bounds per point — Elkan-grade pruning at a
	// tenth of the bound memory. The large-K exact kernel.
	Yinyang
	// AlgorithmAuto picks an exact kernel from the data shape: sparse
	// data routes to Yinyang at large K and Elkan below it, both over
	// the CSR view; low-dimensional dense data to Hamerly (or to the
	// kd-tree Filtering kernel once K is large enough for cell pruning
	// to win); high-dimensional dense data to Yinyang at large K, else
	// Elkan. See the package comment for the routing matrix.
	AlgorithmAuto
)

func (a Algorithm) String() string {
	switch a {
	case Lloyd:
		return "lloyd"
	case Filtering:
		return "filtering"
	case DenseLloyd:
		return "dense-lloyd"
	case SparseLloyd:
		return "sparse-lloyd"
	case Hamerly:
		return "hamerly"
	case Elkan:
		return "elkan"
	case AlgorithmMiniBatch:
		return "minibatch"
	case Yinyang:
		return "yinyang"
	case AlgorithmAuto:
		return "auto"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Valid reports whether a names a known algorithm.
func (a Algorithm) Valid() bool {
	return a >= Lloyd && a <= AlgorithmAuto
}

// ParseAlgorithm maps an algorithm name (as produced by String) back
// to its value; the empty string selects the Lloyd default.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "", "lloyd":
		return Lloyd, nil
	case "filtering":
		return Filtering, nil
	case "dense-lloyd":
		return DenseLloyd, nil
	case "sparse-lloyd":
		return SparseLloyd, nil
	case "hamerly":
		return Hamerly, nil
	case "elkan":
		return Elkan, nil
	case "minibatch":
		return AlgorithmMiniBatch, nil
	case "yinyang":
		return Yinyang, nil
	case "auto":
		return AlgorithmAuto, nil
	}
	return 0, fmt.Errorf("cluster: unknown algorithm %q (want lloyd, filtering, dense-lloyd, sparse-lloyd, hamerly, elkan, minibatch, yinyang or auto)", s)
}

// MarshalText encodes the algorithm as its name, so a JSON config
// override carries "algorithm": "elkan" instead of an opaque integer.
func (a Algorithm) MarshalText() ([]byte, error) {
	if !a.Valid() {
		return nil, fmt.Errorf("cluster: cannot marshal %s", a)
	}
	return []byte(a.String()), nil
}

// UnmarshalText is the inverse of MarshalText.
func (a *Algorithm) UnmarshalText(b []byte) error {
	v, err := ParseAlgorithm(string(b))
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// Auto-routing thresholds: below autoFilteringMaxDim dimensions the
// kd-tree's bounding boxes are tight enough to prune, and from
// autoFilteringMinK centroids the per-cell candidate pruning
// amortizes the tree walk; everything else goes to a bounded kernel.
const (
	autoFilteringMaxDim = 16
	autoFilteringMinK   = 32
	// autoYinyangMinK is the centroid count from which the yinyang
	// group bounds out-prune Elkan's per-centroid bounds on the routes
	// without a kd-tree: below it G = ⌈K/10⌉ is too coarse to filter
	// and Elkan's O(n·K) bound memory is still cheap.
	autoYinyangMinK = 32
)

// autoAlgorithm resolves AlgorithmAuto for a dataset shape. Sparse
// data (the VSM regime — the caller resolves sparsity by probing
// AutoCSR once, so csr != nil means "sparse enough to pay") routes to
// Yinyang at large K and Elkan below it, both over the CSR view.
// Low-dimensional dense data routes to the kd-tree filtering kernel at
// large K (where cell pruning wins decisively — see
// BenchmarkKMeansAblation blobs-d3/K=64) and Hamerly at small K.
// High-dimensional dense data, where no kd-tree helps, routes to
// Yinyang at large K and Elkan below it.
func autoAlgorithm(d, k int, csr *vec.CSRMatrix) Algorithm {
	if csr != nil {
		if k >= autoYinyangMinK {
			return Yinyang
		}
		return Elkan
	}
	if d <= autoFilteringMaxDim {
		if k >= autoFilteringMinK {
			return Filtering
		}
		return Hamerly
	}
	if k >= autoYinyangMinK {
		return Yinyang
	}
	return Elkan
}

// InitMethod selects centroid seeding.
type InitMethod int

const (
	// KMeansPP is k-means++ (D² sampling); the default.
	KMeansPP InitMethod = iota
	// RandomInit picks K distinct points uniformly.
	RandomInit
)

func (m InitMethod) String() string {
	switch m {
	case KMeansPP:
		return "kmeans++"
	case RandomInit:
		return "random"
	default:
		return fmt.Sprintf("InitMethod(%d)", int(m))
	}
}

// Options configures a K-means run. Zero values get sensible defaults
// from (Options).withDefaults.
type Options struct {
	K         int
	MaxIter   int     // default 100
	Tolerance float64 // max centroid movement for convergence; default 1e-8
	Seed      int64
	Init      InitMethod
	Algorithm Algorithm
	LeafSize  int // kd-tree leaf size for Filtering; default kdtree.DefaultLeafSize

	// Parallelism bounds the worker goroutines of the sparse and
	// bounded parallel assignment steps: 0 uses all cores
	// (runtime.GOMAXPROCS(0)), 1 is serial. The result is identical
	// for every value (see the package comment).
	Parallelism int

	// BatchSize is the AlgorithmMiniBatch sample size per iteration;
	// <= 0 uses DefaultBatchSize. Ignored by the exact kernels.
	BatchSize int

	// InitialCentroids, when non-nil, bypasses seeding (used by tests,
	// the kernel-equivalence properties, and the warm-started sweep).
	InitialCentroids [][]float64

	// Rand, when non-nil, is reseeded with Seed and used as the run's
	// stochastic stream — a reuse hook so a sweep does not allocate a
	// fresh generator per K. Results are identical to passing nil.
	Rand *rand.Rand `json:"-"`

	// Scratch, when non-nil, supplies the run's working memory
	// (labels, counts, sums, bounds, kd-tree) and is grown in place —
	// the reuse hook that lets a K sweep run allocation-free after the
	// first K. A Scratch must not be shared by concurrent runs.
	Scratch *Scratch `json:"-"`
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-8
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result is a fitted cluster model.
type Result struct {
	K          int
	Centroids  [][]float64
	Labels     []int
	Sizes      []int
	SSE        float64
	Iterations int
	Converged  bool
	// Algorithm names the assignment kernel that actually ran
	// ("lloyd", "sparse-lloyd", "filtering", ...).
	Algorithm string
}

// sparseAutoThreshold is the density at or below which plain Lloyd
// auto-routes to the sparse kernel; above it the dense scan's simpler
// inner loop wins.
const sparseAutoThreshold = 0.5

// SparseProfitable reports whether the sparse kernel is expected to
// beat the dense scan for a dataset of the given shape and density.
// Callers holding a prebuilt CSR view (e.g. vsm.Matrix.Sparse) use it
// to decide whether to hand the view to KMeansCSR.
func SparseProfitable(rows, cols int, density float64) bool {
	return cols >= 8 && rows >= 32 && density <= sparseAutoThreshold
}

// AutoCSR scans data and returns a fresh CSR view when
// SparseProfitable says the sparse kernel will pay, else nil. The nil
// result is accepted by KMeansCSR, which then falls back to the
// dense-data entry point, so call sites stay uniform.
func AutoCSR(data [][]float64) *vec.CSRMatrix {
	if len(data) == 0 || len(data[0]) == 0 {
		return nil
	}
	nnz := 0
	for _, row := range data {
		for _, v := range row {
			if v != 0 {
				nnz++
			}
		}
	}
	if !SparseProfitable(len(data), len(data[0]), float64(nnz)/float64(len(data)*len(data[0]))) {
		return nil
	}
	return vec.NewCSRFromDense(data)
}

// KMeans clusters data into opts.K groups. Data must be non-empty and
// rectangular, with opts.K in [1, len(data)].
func KMeans(data [][]float64, opts Options) (*Result, error) {
	return run(context.Background(), data, nil, opts)
}

// KMeansContext is KMeans under a context: the iteration loop checks
// ctx between Lloyd iterations and returns ctx.Err() (unwrapped, so
// errors.Is works) as soon as the context is cancelled or times out.
func KMeansContext(ctx context.Context, data [][]float64, opts Options) (*Result, error) {
	return run(ctx, data, nil, opts)
}

// KMeansCSR is KMeans over a prebuilt sparse view, so repeated runs on
// the same matrix (e.g. the Table I K sweep) share one CSR build.
// dense, when non-nil, must be the dense view of m; it is used by the
// cold paths (seeding, empty-cluster repair, final SSE) so that
// results stay bit-for-bit identical to dense serial Lloyd. A nil
// dense is materialized once from m.
func KMeansCSR(m *vec.CSRMatrix, dense [][]float64, opts Options) (*Result, error) {
	return KMeansCSRContext(context.Background(), m, dense, opts)
}

// KMeansCSRContext is KMeansCSR with cancellation, the entry point the
// pipeline's sweep and partial-mining stages use.
func KMeansCSRContext(ctx context.Context, m *vec.CSRMatrix, dense [][]float64, opts Options) (*Result, error) {
	if m == nil {
		if dense == nil {
			return nil, fmt.Errorf("cluster: KMeansCSR needs a CSR view or dense rows")
		}
		return run(ctx, dense, nil, opts)
	}
	if dense == nil {
		dense = m.Dense()
	}
	if len(dense) != m.NumRows() {
		return nil, fmt.Errorf("cluster: dense view has %d rows, CSR has %d",
			len(dense), m.NumRows())
	}
	return run(ctx, dense, m, opts)
}

func run(ctx context.Context, data [][]float64, csr *vec.CSRMatrix, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no data")
	}
	d := len(data[0])
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("cluster: row %d has dimension %d, want %d", i, len(row), d)
		}
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("cluster: K=%d outside [1,%d]", opts.K, n)
	}
	if csr != nil && csr.NumCols() != d {
		return nil, fmt.Errorf("cluster: CSR has %d cols, dense view has %d", csr.NumCols(), d)
	}

	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	} else {
		rng.Seed(opts.Seed)
	}
	var centroids [][]float64
	switch {
	case opts.InitialCentroids != nil:
		if len(opts.InitialCentroids) != opts.K {
			return nil, fmt.Errorf("cluster: %d initial centroids for K=%d",
				len(opts.InitialCentroids), opts.K)
		}
		centroids = make([][]float64, opts.K)
		for i, c := range opts.InitialCentroids {
			if len(c) != d {
				return nil, fmt.Errorf("cluster: initial centroid %d has dimension %d, want %d",
					i, len(c), d)
			}
			centroids[i] = vec.Clone(c)
		}
	case opts.Init == RandomInit:
		centroids = randomInit(data, opts.K, rng)
	default:
		centroids = kmeansPPInit(data, opts.K, rng)
	}

	// Resolve the assignment kernel. Auto and the bounded kernels share
	// one sparsity probe: AutoCSR scans the non-zeros once and returns
	// a view only when the sparse arithmetic pays.
	algo := opts.Algorithm
	probed := false
	if algo == AlgorithmAuto {
		if csr == nil {
			csr = AutoCSR(data)
			probed = true
		}
		algo = autoAlgorithm(d, opts.K, csr)
	}
	if algo == AlgorithmMiniBatch {
		return runMiniBatch(ctx, data, centroids, rng, opts)
	}
	useSparse := false
	switch algo {
	case SparseLloyd:
		useSparse = true
	case Lloyd:
		if csr != nil {
			useSparse = true
		} else {
			nnz := 0
			for _, row := range data {
				for _, v := range row {
					if v != 0 {
						nnz++
					}
				}
			}
			useSparse = SparseProfitable(n, d, float64(nnz)/float64(n*d))
		}
	case Hamerly, Elkan, Yinyang:
		// The bounded kernels score distances through the CSR identity
		// whenever the sparse view exists or would pay (same routing as
		// Lloyd), and densely otherwise.
		if csr == nil && !probed {
			csr = AutoCSR(data)
		}
	}

	var tree *kdtree.Tree
	var filterScratch *kdtree.FilterScratch
	if algo == Filtering {
		var err error
		if opts.Scratch != nil {
			tree, err = opts.Scratch.treeFor(data, opts.LeafSize)
			filterScratch = opts.Scratch.filterScratch()
		} else {
			tree, err = kdtree.Build(data, opts.LeafSize)
			filterScratch = &kdtree.FilterScratch{}
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: building kd-tree: %w", err)
		}
	}
	var sk *sparseKernel
	if useSparse {
		if csr == nil {
			csr = vec.NewCSRFromDense(data)
		}
		sk = newSparseKernel(csr, opts.K, opts.Parallelism)
	}
	// The triangle-inequality kernels (Hamerly, Elkan, Yinyang) share
	// one shape: a filtered label scan plus drift bookkeeping between
	// iterations, behind the boundedScanner interface.
	var bk boundedScanner
	switch algo {
	case Hamerly, Elkan:
		bk = newBoundedKernel(algo == Elkan, data, csr, opts.K, opts.Parallelism, opts.Scratch)
	case Yinyang:
		bk = newYinyangKernel(data, csr, centroids, opts.Parallelism, opts.Scratch)
	}

	var (
		labels []int
		counts []int
		sums   [][]float64
		drift  []float64
	)
	if opts.Scratch != nil {
		labels = opts.Scratch.ints(&opts.Scratch.labels, n)
		counts = opts.Scratch.ints(&opts.Scratch.counts, opts.K)
		sums = opts.Scratch.sumBuffers(opts.K, d)
		if bk != nil {
			drift = opts.Scratch.f64(&opts.Scratch.driftBuf, opts.K)
		}
	} else {
		labels = make([]int, n)
		counts = make([]int, opts.K)
		sums = make([][]float64, opts.K)
		for i := range sums {
			sums[i] = make([]float64, d)
		}
		if bk != nil {
			drift = make([]float64, opts.K)
		}
	}
	var repaired []int

	name := algo
	if algo == Lloyd && sk != nil {
		name = SparseLloyd
	}
	res := &Result{K: opts.K, Algorithm: name.String()}
	for iter := 0; iter < opts.MaxIter; iter++ {
		// One Lloyd iteration is the cancellation granularity of the
		// hot loop (including the bounded kernels' inner loops, which
		// run within one iteration): milliseconds at paper scale, so a
		// cancelled context is honoured promptly without a per-point
		// check in the kernel.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iterations = iter + 1

		// Assignment step.
		switch {
		case tree != nil:
			tree.FilterStepScratch(centroids, labels, sums, counts, filterScratch)
		case bk != nil:
			bk.assign(centroids, labels, sums, counts)
		case sk != nil:
			sk.assign(centroids, labels, sums, counts)
		default:
			for i := range sums {
				for j := range sums[i] {
					sums[i][j] = 0
				}
				counts[i] = 0
			}
			for i, x := range data {
				c, _ := vec.ArgMinDistance(x, centroids)
				labels[i] = c
				counts[c]++
				vec.AddTo(sums[c], x)
			}
		}

		moved, rep := updateCentroids(data, centroids, labels, sums, counts, drift, repaired[:0])
		repaired = rep
		if bk != nil {
			bk.noteUpdate(drift, repaired)
		}
		if moved <= opts.Tolerance {
			res.Converged = true
			break
		}
	}

	// Final assignment against the converged centroids, plus SSE. The
	// sparse and bounded kernels compute the argmin; the distance
	// itself is always recomputed densely so the SSE matches serial
	// dense Lloyd exactly.
	res.Centroids = centroids
	res.Labels = make([]int, n)
	res.Sizes = make([]int, opts.K)
	switch {
	case bk != nil:
		// The bounded scan refines the previous labels, so seed the
		// result array with them before the final pass.
		copy(res.Labels, labels)
		bk.assignLabels(centroids, res.Labels)
		for i, x := range data {
			c := res.Labels[i]
			res.Sizes[c]++
			res.SSE += vec.SquaredEuclidean(x, centroids[c])
		}
	case sk != nil:
		sk.assignLabels(centroids, res.Labels)
		for i, x := range data {
			c := res.Labels[i]
			res.Sizes[c]++
			res.SSE += vec.SquaredEuclidean(x, centroids[c])
		}
	default:
		for i, x := range data {
			c, dist := vec.ArgMinDistance(x, centroids)
			res.Labels[i] = c
			res.Sizes[c]++
			res.SSE += dist
		}
	}
	return res, nil
}

// updateCentroids recomputes each centroid from the accumulated
// sums/counts and returns the largest centroid movement. An empty
// cluster is reseeded at the point currently farthest from its
// assigned centroid; the point is claimed immediately (its label,
// counts and sum contributions move to the repaired cluster) so that
// a second empty cluster repaired in the same iteration cannot pick
// the same farthest point.
//
// drift, when non-nil, receives the per-centroid movement (the decay
// the bounded kernels fold into their triangle-inequality bounds), and
// repaired collects the indices of reseeded points (whose bounds must
// be reset: their label changed outside the assignment scan). repaired
// is appended to and returned so callers can reuse its backing array.
func updateCentroids(data, centroids [][]float64, labels []int, sums [][]float64, counts []int, drift []float64, repaired []int) (float64, []int) {
	moved := 0.0
	for c := range centroids {
		if counts[c] == 0 {
			far := farthestPoint(data, centroids, labels)
			delta := vec.Euclidean(centroids[c], data[far])
			copy(centroids[c], data[far])
			old := labels[far]
			labels[far] = c
			counts[c] = 1
			if old != c {
				counts[old]--
				for j, v := range data[far] {
					sums[old][j] -= v
				}
			}
			if drift != nil {
				drift[c] = delta
			}
			repaired = append(repaired, far)
			if delta > moved {
				moved = delta
			}
			continue
		}
		prev := vec.Clone(centroids[c])
		for j := range centroids[c] {
			centroids[c][j] = sums[c][j] / float64(counts[c])
		}
		delta := vec.Euclidean(prev, centroids[c])
		if drift != nil {
			drift[c] = delta
		}
		if delta > moved {
			moved = delta
		}
	}
	return moved, repaired
}

// farthestPoint returns the index of the point with the largest
// distance to its assigned centroid.
func farthestPoint(data [][]float64, centroids [][]float64, labels []int) int {
	best, bestD := 0, -1.0
	for i, x := range data {
		if d := vec.SquaredEuclidean(x, centroids[labels[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func randomInit(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	perm := rng.Perm(len(data))
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = vec.Clone(data[perm[i]])
	}
	return out
}

// kmeansPPInit seeds centroids by D² sampling (Arthur & Vassilvitskii).
func kmeansPPInit(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(data)
	out := make([][]float64, 0, k)
	out = append(out, vec.Clone(data[rng.Intn(n)]))
	dist := make([]float64, n)
	for i, x := range data {
		dist[i] = vec.SquaredEuclidean(x, out[0])
	}
	for len(out) < k {
		total := 0.0
		for _, w := range dist {
			total += w
		}
		var next int
		if total == 0 {
			// All points coincide with chosen centroids; pick any.
			next = rng.Intn(n)
		} else {
			u := rng.Float64() * total
			acc := 0.0
			next = n - 1
			for i, w := range dist {
				acc += w
				if acc >= u {
					next = i
					break
				}
			}
		}
		out = append(out, vec.Clone(data[next]))
		for i, x := range data {
			if d := vec.SquaredEuclidean(x, out[len(out)-1]); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return out
}

// SSEOf recomputes the sum of squared errors of data against a fitted
// model's centroids/labels. It is exported for evaluation code.
func SSEOf(data [][]float64, centroids [][]float64, labels []int) float64 {
	sse := 0.0
	for i, x := range data {
		sse += vec.SquaredEuclidean(x, centroids[labels[i]])
	}
	return sse
}

// BisectingKMeans builds K clusters by repeatedly 2-means-splitting
// the cluster with the largest SSE. It returns a Result in the same
// shape as KMeans.
func BisectingKMeans(data [][]float64, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no data")
	}
	if opts.K < 1 || opts.K > n {
		return nil, fmt.Errorf("cluster: K=%d outside [1,%d]", opts.K, n)
	}
	type clust struct {
		members []int
		center  []float64
		sse     float64
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	center := vec.Mean(data)
	start := clust{members: all, center: center}
	for _, i := range all {
		start.sse += vec.SquaredEuclidean(data[i], center)
	}
	clusters := []clust{start}
	rng := rand.New(rand.NewSource(opts.Seed))

	for len(clusters) < opts.K {
		// Pick the cluster with the largest SSE that can be split.
		worst := -1
		for i, c := range clusters {
			if len(c.members) < 2 {
				continue
			}
			if worst == -1 || c.sse > clusters[worst].sse {
				worst = i
			}
		}
		if worst == -1 {
			break // nothing splittable
		}
		target := clusters[worst]
		sub := make([][]float64, len(target.members))
		for i, m := range target.members {
			sub[i] = data[m]
		}
		split, err := KMeans(sub, Options{
			K: 2, MaxIter: opts.MaxIter, Tolerance: opts.Tolerance,
			Seed: rng.Int63(), Init: opts.Init, Algorithm: Lloyd,
			Parallelism: opts.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		var parts [2]clust
		for i := range parts {
			parts[i].center = split.Centroids[i]
		}
		for i, m := range target.members {
			c := split.Labels[i]
			parts[c].members = append(parts[c].members, m)
			parts[c].sse += vec.SquaredEuclidean(data[m], split.Centroids[c])
		}
		if len(parts[0].members) == 0 || len(parts[1].members) == 0 {
			// Degenerate split (identical points): stop splitting.
			break
		}
		clusters[worst] = parts[0]
		clusters = append(clusters, parts[1])
	}

	res := &Result{
		K:         len(clusters),
		Labels:    make([]int, n),
		Sizes:     make([]int, len(clusters)),
		Algorithm: "bisecting",
		Converged: true,
	}
	res.Centroids = make([][]float64, len(clusters))
	for c, cl := range clusters {
		res.Centroids[c] = cl.center
		res.Sizes[c] = len(cl.members)
		for _, m := range cl.members {
			res.Labels[m] = c
		}
		res.SSE += cl.sse
	}
	return res, nil
}
