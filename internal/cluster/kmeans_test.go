package cluster

import (
	"math"
	"math/rand"
	"testing"

	"adahealth/internal/vec"
)

// blobs generates k well-separated Gaussian blobs.
func blobs(rng *rand.Rand, k, perCluster, d int, sep float64) ([][]float64, []int) {
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = make([]float64, d)
		for j := range centers[i] {
			centers[i][j] = rng.NormFloat64() * sep
		}
	}
	var data [][]float64
	var truth []int
	for c := 0; c < k; c++ {
		for p := 0; p < perCluster; p++ {
			x := make([]float64, d)
			for j := range x {
				x[j] = centers[c][j] + rng.NormFloat64()*0.3
			}
			data = append(data, x)
			truth = append(truth, c)
		}
	}
	return data, truth
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, Options{K: 2}); err == nil {
		t.Error("accepted empty data")
	}
	data := [][]float64{{1}, {2}}
	if _, err := KMeans(data, Options{K: 0}); err == nil {
		t.Error("accepted K=0")
	}
	if _, err := KMeans(data, Options{K: 3}); err == nil {
		t.Error("accepted K > n")
	}
	if _, err := KMeans([][]float64{{1, 2}, {3}}, Options{K: 1}); err == nil {
		t.Error("accepted ragged data")
	}
	if _, err := KMeans(data, Options{K: 2, InitialCentroids: [][]float64{{1}}}); err == nil {
		t.Error("accepted wrong number of initial centroids")
	}
	if _, err := KMeans(data, Options{K: 1, InitialCentroids: [][]float64{{1, 2}}}); err == nil {
		t.Error("accepted initial centroid of wrong dimension")
	}
}

func TestKMeansRecoverseparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data, truth := blobs(rng, 3, 60, 4, 12)
	res, err := KMeans(data, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge on easy blobs")
	}
	// Every true cluster must map to exactly one predicted label.
	mapping := map[int]map[int]int{}
	for i, lbl := range res.Labels {
		if mapping[truth[i]] == nil {
			mapping[truth[i]] = map[int]int{}
		}
		mapping[truth[i]][lbl]++
	}
	for tc, preds := range mapping {
		best, total := 0, 0
		for _, c := range preds {
			total += c
			if c > best {
				best = c
			}
		}
		purity := float64(best) / float64(total)
		if purity < 0.98 {
			t.Errorf("true cluster %d purity = %.3f, want ≈1", tc, purity)
		}
	}
}

func TestKMeansSizesAndSSEConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data, _ := blobs(rng, 4, 40, 3, 8)
	res, err := KMeans(data, Options{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(data) {
		t.Errorf("sizes sum = %d, want %d", total, len(data))
	}
	if got := SSEOf(data, res.Centroids, res.Labels); math.Abs(got-res.SSE) > 1e-6 {
		t.Errorf("SSE mismatch: result %v vs recomputed %v", res.SSE, got)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, _ := blobs(rng, 3, 30, 3, 6)
	a, _ := KMeans(data, Options{K: 3, Seed: 42})
	b, _ := KMeans(data, Options{K: 3, Seed: 42})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	if a.SSE != b.SSE {
		t.Fatalf("same seed produced different SSE: %v vs %v", a.SSE, b.SSE)
	}
}

func TestKMeansK1(t *testing.T) {
	data := [][]float64{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	res, err := KMeans(data, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids[0][0] != 1 || res.Centroids[0][1] != 1 {
		t.Errorf("K=1 centroid = %v, want mean [1 1]", res.Centroids[0])
	}
	if res.SSE != 8 {
		t.Errorf("K=1 SSE = %v, want 8", res.SSE)
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	data := [][]float64{{0}, {5}, {10}}
	res, err := KMeans(data, Options{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE > 1e-12 {
		t.Errorf("K=n SSE = %v, want 0", res.SSE)
	}
}

// Property (paper's core optimizer assumption): SSE is non-increasing
// in K for a fixed seed and well-behaved data.
func TestSSEDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data, _ := blobs(rng, 5, 50, 4, 5)
	prev := math.Inf(1)
	for _, k := range []int{2, 4, 6, 8, 12} {
		best := math.Inf(1)
		// Take the best of a few seeds to smooth local minima.
		for seed := int64(0); seed < 4; seed++ {
			res, err := KMeans(data, Options{K: k, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.SSE < best {
				best = res.SSE
			}
		}
		if best > prev*1.02 { // small tolerance for local minima
			t.Errorf("SSE at K=%d (%v) exceeds smaller K (%v)", k, best, prev)
		}
		prev = best
	}
}

// Property: Lloyd and Filtering produce identical assignments from the
// same initial centroids (the filtering algorithm is exact).
func TestFilteringMatchesLloyd(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		data, _ := blobs(rng, 3, 40, 1+rng.Intn(5), 6)
		init := make([][]float64, 3)
		perm := rng.Perm(len(data))
		for i := range init {
			init[i] = vec.Clone(data[perm[i]])
		}
		lloyd, err := KMeans(data, Options{K: 3, InitialCentroids: init, Algorithm: Lloyd})
		if err != nil {
			t.Fatal(err)
		}
		filt, err := KMeans(data, Options{K: 3, InitialCentroids: init, Algorithm: Filtering, LeafSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lloyd.SSE-filt.SSE) > 1e-6*(1+lloyd.SSE) {
			t.Fatalf("trial %d: SSE lloyd %v vs filtering %v", trial, lloyd.SSE, filt.SSE)
		}
		for i := range lloyd.Labels {
			dl := vec.SquaredEuclidean(data[i], lloyd.Centroids[lloyd.Labels[i]])
			df := vec.SquaredEuclidean(data[i], filt.Centroids[filt.Labels[i]])
			if math.Abs(dl-df) > 1e-6*(1+dl) {
				t.Fatalf("trial %d point %d: assignment distance differs (%v vs %v)",
					trial, i, dl, df)
			}
		}
	}
}

func TestEmptyClusterRepair(t *testing.T) {
	// Force an empty cluster: initial centroid far away from all data.
	data := [][]float64{{0, 0}, {0.1, 0}, {0, 0.1}, {5, 5}, {5.1, 5}, {5, 5.1}}
	init := [][]float64{{0, 0}, {5, 5}, {100, 100}}
	res, err := KMeans(data, Options{K: 3, InitialCentroids: init, MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(data) {
		t.Errorf("sizes sum %d after repair, want %d", total, len(data))
	}
}

func TestRandomInitDistinctPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, _ := blobs(rng, 2, 20, 2, 5)
	res, err := KMeans(data, Options{K: 4, Seed: 5, Init: RandomInit})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 4 {
		t.Errorf("centroids = %d", len(res.Centroids))
	}
}

func TestBisectingKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data, _ := blobs(rng, 4, 50, 3, 10)
	res, err := BisectingKMeans(data, Options{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("K = %d, want 4", res.K)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(data) {
		t.Errorf("sizes sum = %d, want %d", total, len(data))
	}
	// Should score comparably to plain K-means on separated blobs.
	plain, _ := KMeans(data, Options{K: 4, Seed: 2})
	if res.SSE > plain.SSE*2.5 {
		t.Errorf("bisecting SSE %v far worse than plain %v", res.SSE, plain.SSE)
	}
}

func TestBisectingErrors(t *testing.T) {
	if _, err := BisectingKMeans(nil, Options{K: 2}); err == nil {
		t.Error("accepted empty data")
	}
	if _, err := BisectingKMeans([][]float64{{1}}, Options{K: 2}); err == nil {
		t.Error("accepted K > n")
	}
}

func TestBisectingDegenerateDuplicates(t *testing.T) {
	data := make([][]float64, 10)
	for i := range data {
		data[i] = []float64{1, 1}
	}
	res, err := BisectingKMeans(data, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 1 {
		t.Errorf("K = %d", res.K)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(data) {
		t.Errorf("sizes sum = %d, want %d", total, len(data))
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if Lloyd.String() != "lloyd" || Filtering.String() != "filtering" {
		t.Error("Algorithm String() drifted")
	}
	if KMeansPP.String() != "kmeans++" || RandomInit.String() != "random" {
		t.Error("InitMethod String() drifted")
	}
}
