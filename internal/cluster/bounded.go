package cluster

import (
	"math"
	"sync"

	"adahealth/internal/vec"
)

// boundedScanner is the common shape of the triangle-inequality
// kernels (Hamerly, Elkan, Yinyang): a filtered assignment step whose
// bounds decay between iterations by the centroid drift updateCentroids
// reports through noteUpdate.
type boundedScanner interface {
	assign(centroids [][]float64, labels []int, sums [][]float64, counts []int)
	assignLabels(centroids [][]float64, labels []int)
	noteUpdate(drift []float64, repaired []int)
}

// boundedKernel implements the triangle-inequality-accelerated exact
// assignment steps: Hamerly (one lower bound per point) and Elkan
// (per-centroid lower bounds plus centroid-centroid distances). Both
// maintain, per point, an upper bound u on the distance to its
// assigned centroid; a centroid scan is skipped entirely whenever the
// bounds prove no other centroid can be strictly closer. Bounds decay
// between iterations by the centroid drift (u grows by the assigned
// centroid's movement, lower bounds shrink by the per-centroid or
// maximum movement), so most points settle after a few iterations and
// never touch the O(K) scan again.
//
// Exactness: whenever a bound test fails, the kernel recomputes exact
// distances with the same arithmetic and the same strict "<" /
// index-order comparisons as the Lloyd kernel it shadows (dense
// vec.SquaredEuclidean for dense data, the cached-norm identity for
// CSR data), so Labels/SSE/Iterations are bit-for-bit identical to
// Lloyd on the same input. The one caveat is exact distance ties: a
// skipped centroid is proven "no strictly closer", so a point exactly
// equidistant to its assigned centroid and a lower-indexed one may
// keep its assignment where Lloyd's fresh scan would pick the lower
// index. Ties at full float64 precision have measure zero on
// continuous data; the property tests never hit one.
//
// The per-point step is independent given the centroids and the
// point's own bounds, so the scan fans out over the same chunked
// worker pool as the sparse kernel (contiguous row ranges, private
// partial counts merged at a barrier), and the centroid-sum reduction
// stays a serial row-order pass for bit-stable floating-point
// accumulation (see the package comment).
type boundedKernel struct {
	elkan   bool
	data    [][]float64
	csr     *vec.CSRMatrix // nil = dense kernel arithmetic
	k       int
	workers int

	upper []float64 // u[i] ≥ d(x_i, centroid[labels[i]])
	// lower is n entries for Hamerly (bound on the second-closest
	// distance) and n·k row-major entries for Elkan (per-centroid
	// bounds l[i·k+c] ≤ d(x_i, c)).
	lower  []float64
	cNorm2 []float64 // per-iteration ‖c‖² cache (CSR identity)
	// half[a·k+c] = d(a,c)/2 for Elkan's pairwise prune; s[c] =
	// min_{c'≠c} d(c,c')/2 for the global skip test.
	half []float64
	s    []float64

	// Drift bookkeeping: updateCentroids reports how far every centroid
	// moved plus any empty-cluster repairs; the next scan folds the
	// drift into the bounds lazily, per row, inside the workers.
	pendingDrift []float64
	maxDrift     float64
	driftPending bool
	repairFlag   []bool
	hasRepairs   bool

	partialCounts [][]int
	started       bool
}

// newBoundedKernel builds a kernel over dense rows and an optional CSR
// view (non-nil routes distance evaluation through the cached-norm
// identity, matching the sparse Lloyd kernel bit-for-bit). Buffers
// come from scratch when provided, so a K sweep reuses one allocation
// across runs.
func newBoundedKernel(elkan bool, data [][]float64, csr *vec.CSRMatrix, k, workers int, scratch *Scratch) *boundedKernel {
	n := len(data)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	bk := &boundedKernel{
		elkan:   elkan,
		data:    data,
		csr:     csr,
		k:       k,
		workers: workers,
	}
	lowerLen := n
	if elkan {
		lowerLen = n * k
	}
	if scratch != nil {
		bk.upper = scratch.f64(&scratch.upper, n)
		bk.lower = scratch.f64(&scratch.lower, lowerLen)
		bk.cNorm2 = scratch.f64(&scratch.cNorm2, k)
		bk.half = scratch.f64(&scratch.half, k*k)
		bk.s = scratch.f64(&scratch.s, k)
		bk.partialCounts = scratch.partials(workers, k)
	} else {
		bk.upper = make([]float64, n)
		bk.lower = make([]float64, lowerLen)
		bk.cNorm2 = make([]float64, k)
		bk.half = make([]float64, k*k)
		bk.s = make([]float64, k)
		bk.partialCounts = make([][]int, workers)
		for w := range bk.partialCounts {
			bk.partialCounts[w] = make([]int, k)
		}
	}
	return bk
}

// dist2 returns the squared distance from row i to centroid c, using
// exactly the arithmetic of the Lloyd kernel this run shadows: the
// cached-norm identity over the CSR view when present, else the dense
// two-pass difference sum.
func (bk *boundedKernel) dist2(i, c int, cent []float64) float64 {
	if bk.csr != nil {
		vals, cols := bk.csr.RowView(i)
		return bk.csr.RowNorm2(i) + bk.cNorm2[c] - 2*vec.SparseDot(vals, cols, cent)
	}
	return vec.SquaredEuclidean(bk.data[i], cent)
}

// boundDist converts a squared distance to the distance used in the
// triangle-inequality bounds, clamping the tiny negatives the CSR
// identity can produce under cancellation.
func boundDist(d2 float64) float64 {
	if d2 <= 0 {
		return 0
	}
	return math.Sqrt(d2)
}

// refreshCenters recomputes the per-iteration centroid caches: squared
// norms (CSR identity), and the half centroid-centroid distances
// behind Elkan's pairwise prune and both kernels' s test. O(K²·d),
// negligible next to the O(n) scan it saves.
func (bk *boundedKernel) refreshCenters(centroids [][]float64) {
	if bk.csr != nil {
		for c, cent := range centroids {
			bk.cNorm2[c] = vec.Dot(cent, cent)
		}
	}
	k := bk.k
	for c := range bk.s {
		bk.s[c] = math.Inf(1)
	}
	for a := 0; a < k; a++ {
		bk.half[a*k+a] = 0
		for c := a + 1; c < k; c++ {
			h := boundDist(vec.SquaredEuclidean(centroids[a], centroids[c])) / 2
			bk.half[a*k+c] = h
			bk.half[c*k+a] = h
			if h < bk.s[a] {
				bk.s[a] = h
			}
			if h < bk.s[c] {
				bk.s[c] = h
			}
		}
	}
}

// noteUpdate records the per-centroid drift of one updateCentroids
// call plus the points whose labels it repaired; the next scan applies
// both to the bounds before testing them.
func (bk *boundedKernel) noteUpdate(drift []float64, repaired []int) {
	bk.pendingDrift = drift
	bk.maxDrift = 0
	for _, d := range drift {
		if d > bk.maxDrift {
			bk.maxDrift = d
		}
	}
	bk.driftPending = true
	bk.hasRepairs = len(repaired) > 0
	if bk.hasRepairs {
		if bk.repairFlag == nil {
			bk.repairFlag = make([]bool, len(bk.data))
		}
		for _, i := range repaired {
			bk.repairFlag[i] = true
		}
	}
}

// assign performs one full bounded assignment step: parallel bounded
// label scan with per-worker counts, then the serial row-order
// reduction of the centroid sums (identical accumulation order to the
// Lloyd kernels, so the centroids stay bit-for-bit stable for any
// worker count).
func (bk *boundedKernel) assign(centroids [][]float64, labels []int, sums [][]float64, counts []int) {
	bk.scan(centroids, labels, bk.partialCounts)
	for c := range counts {
		counts[c] = 0
		for w := range bk.partialCounts {
			counts[c] += bk.partialCounts[w][c]
		}
		for j := range sums[c] {
			sums[c][j] = 0
		}
	}
	if bk.csr != nil {
		n := bk.csr.NumRows()
		for i := 0; i < n; i++ {
			vals, cols := bk.csr.RowView(i)
			vec.ScatterAdd(sums[labels[i]], vals, cols)
		}
	} else {
		for i, x := range bk.data {
			vec.AddTo(sums[labels[i]], x)
		}
	}
}

// assignLabels runs only the bounded label scan — the final assignment
// pass against the converged centroids.
func (bk *boundedKernel) assignLabels(centroids [][]float64, labels []int) {
	bk.scan(centroids, labels, nil)
}

func (bk *boundedKernel) scan(centroids [][]float64, labels []int, partialCounts [][]int) {
	bk.refreshCenters(centroids)
	n := len(bk.data)
	if bk.workers == 1 {
		var pc []int
		if partialCounts != nil {
			pc = partialCounts[0]
			for c := range pc {
				pc[c] = 0
			}
		}
		bk.scanRange(centroids, labels, pc, 0, n)
	} else {
		chunk := (n + bk.workers - 1) / bk.workers
		var wg sync.WaitGroup
		for w := 0; w < bk.workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			var pc []int
			if partialCounts != nil {
				pc = partialCounts[w]
				for c := range pc {
					pc[c] = 0
				}
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int, pc []int) {
				defer wg.Done()
				bk.scanRange(centroids, labels, pc, lo, hi)
			}(lo, hi, pc)
		}
		wg.Wait()
	}
	// Drift and repairs were folded into the bounds row by row above.
	bk.driftPending = false
	if bk.hasRepairs {
		for i := range bk.repairFlag {
			bk.repairFlag[i] = false
		}
		bk.hasRepairs = false
	}
	bk.started = true
}

// scanRange labels rows [lo, hi), folding any pending drift into the
// bounds first and counting labels into pc when non-nil.
func (bk *boundedKernel) scanRange(centroids [][]float64, labels []int, pc []int, lo, hi int) {
	if !bk.started {
		for i := lo; i < hi; i++ {
			c := bk.initRow(i, centroids)
			labels[i] = c
			if pc != nil {
				pc[c]++
			}
		}
		return
	}
	if bk.elkan {
		for i := lo; i < hi; i++ {
			c := bk.elkanRow(i, labels[i], centroids)
			labels[i] = c
			if pc != nil {
				pc[c]++
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		c := bk.hamerlyRow(i, labels[i], centroids)
		labels[i] = c
		if pc != nil {
			pc[c]++
		}
	}
}

// initRow is the first-iteration full scan: the same strict-"<"
// index-order argmin as the Lloyd kernels, additionally capturing the
// bounds (closest distance, and second-closest / per-centroid
// distances) the later iterations prune with.
func (bk *boundedKernel) initRow(i int, centroids [][]float64) int {
	best, bestD := -1, math.Inf(1)
	second := math.Inf(1)
	if bk.elkan {
		lw := bk.lower[i*bk.k : i*bk.k+bk.k]
		for c, cent := range centroids {
			d2 := bk.dist2(i, c, cent)
			lw[c] = boundDist(d2)
			if d2 < bestD {
				best, bestD = c, d2
			}
		}
	} else {
		for c, cent := range centroids {
			d2 := bk.dist2(i, c, cent)
			if d2 < bestD {
				second = bestD
				best, bestD = c, d2
			} else if d2 < second {
				second = d2
			}
		}
		bk.lower[i] = boundDist(second)
	}
	bk.upper[i] = boundDist(bestD)
	return best
}

// hamerlyRow performs one bounded Hamerly step for row i: drift-decay
// the two bounds, test u ≤ max(l, s[a]), tighten u, and only on a
// second failure fall back to the full scan (which also restores both
// bounds to exact values).
func (bk *boundedKernel) hamerlyRow(i, a int, centroids [][]float64) int {
	u, l := bk.upper[i], bk.lower[i]
	if bk.driftPending {
		u += bk.pendingDrift[a]
		l -= bk.maxDrift
		if l < 0 {
			l = 0
		}
		if bk.hasRepairs && bk.repairFlag[i] {
			// The point was reseeded as centroid a (an exact copy of the
			// point), so its distance is exactly 0; the second-closest
			// set changed with the assignment, so the lower bound resets.
			u, l = 0, 0
		}
	}
	z := l
	if bk.s[a] > z {
		z = bk.s[a]
	}
	if u <= z {
		bk.upper[i], bk.lower[i] = u, l
		return a
	}
	// Tighten the upper bound to the exact distance and retest.
	u = boundDist(bk.dist2(i, a, centroids[a]))
	if u <= z {
		bk.upper[i], bk.lower[i] = u, l
		return a
	}
	return bk.initRow(i, centroids)
}

// elkanRow performs one bounded Elkan step for row i: drift-decay the
// bounds, then walk the centroids in index order, pruning with the
// per-centroid lower bounds and the half inter-centroid distances, and
// comparing exact squared distances (strict "<") whenever a candidate
// survives — the same comparison Lloyd's scan makes, so the argmin
// matches bit-for-bit away from exact ties.
func (bk *boundedKernel) elkanRow(i, a int, centroids [][]float64) int {
	k := bk.k
	lw := bk.lower[i*k : i*k+k]
	u := bk.upper[i]
	if bk.driftPending {
		u += bk.pendingDrift[a]
		for c := range lw {
			l := lw[c] - bk.pendingDrift[c]
			if l < 0 {
				l = 0
			}
			lw[c] = l
		}
		if bk.hasRepairs && bk.repairFlag[i] {
			// Reseeded as an exact copy of centroid a: distance exactly 0.
			u = 0
			lw[a] = 0
		}
	}
	if u <= bk.s[a] {
		bk.upper[i] = u
		return a
	}
	var (
		tight bool
		u2    float64
		halfA = bk.half[a*k : a*k+k]
	)
	for c := 0; c < k; c++ {
		if c == a || u <= lw[c] || u <= halfA[c] {
			continue
		}
		if !tight {
			u2 = bk.dist2(i, a, centroids[a])
			u = boundDist(u2)
			lw[a] = u
			tight = true
			if u <= lw[c] || u <= halfA[c] {
				continue
			}
		}
		d2 := bk.dist2(i, c, centroids[c])
		d := boundDist(d2)
		lw[c] = d
		if d2 < u2 {
			a, u2, u = c, d2, d
			halfA = bk.half[a*k : a*k+k]
		}
	}
	bk.upper[i] = u
	return a
}
