package cluster

import "adahealth/internal/kdtree"

// Scratch owns the reusable working memory of a K-means run: the
// per-iteration labels/counts/sums, the bounded kernels' bound arrays,
// the worker pool's partial counts, the kd-tree filtering scratch, and
// the kd-tree itself (which depends only on the data, so a K sweep on
// one matrix builds it once). A sweep evaluating many K values on one
// dataset passes the same Scratch to every run via Options.Scratch and
// cuts the per-K allocations to (almost) zero; buffers grow as needed
// and are never shrunk.
//
// A Scratch must not be shared by concurrent runs — it is the working
// state of exactly one run at a time. Results (Labels, Sizes,
// Centroids) are always freshly allocated, so retaining a Result while
// reusing its Scratch is safe.
type Scratch struct {
	labels   []int
	counts   []int
	sums     [][]float64
	sumsBack []float64

	upper, lower, cNorm2, half, s []float64
	driftBuf                      []float64
	partial                       [][]int

	// yinyang kernel state: centroid grouping, per-group drift, and the
	// per-worker min/second-min scan slabs. The bound matrix itself
	// shares the lower slot with Elkan.
	yinGroup, yinMembers, yinOffsets []int
	yinDrift                         []float64
	yinScan                          []float64
	yinScanSlab                      [][]float64

	filter *kdtree.FilterScratch
	tree   *kdtree.Tree
	// treeData/treeLeaf identify the dataset+leaf size the cached tree
	// was built for (slice identity: same backing array, same length).
	treeData []([]float64)
	treeLeaf int

	// batch scratch for the mini-batch kernel
	batchIdx  []int
	batchLab  []int
	prevCents []float64
}

// ints returns a zeroed int buffer of length n from the given slot.
func (s *Scratch) ints(slot *[]int, n int) []int {
	if cap(*slot) < n {
		*slot = make([]int, n)
	}
	buf := (*slot)[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// f64 returns a zeroed float64 buffer of length n from the given slot.
func (s *Scratch) f64(slot *[]float64, n int) []float64 {
	if cap(*slot) < n {
		*slot = make([]float64, n)
	}
	buf := (*slot)[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// sumBuffers returns k zeroed length-d accumulator vectors backed by
// one contiguous array.
func (s *Scratch) sumBuffers(k, d int) [][]float64 {
	back := s.f64(&s.sumsBack, k*d)
	if cap(s.sums) < k {
		s.sums = make([][]float64, k)
	}
	s.sums = s.sums[:k]
	for i := range s.sums {
		s.sums[i] = back[i*d : (i+1)*d : (i+1)*d]
	}
	return s.sums
}

// partials returns workers zeroed length-k count vectors.
func (s *Scratch) partials(workers, k int) [][]int {
	if cap(s.partial) < workers {
		s.partial = make([][]int, workers)
	}
	s.partial = s.partial[:workers]
	for w := range s.partial {
		if cap(s.partial[w]) < k {
			s.partial[w] = make([]int, k)
		}
		s.partial[w] = s.partial[w][:k]
		for c := range s.partial[w] {
			s.partial[w][c] = 0
		}
	}
	return s.partial
}

// yinScanSlabs returns workers zeroed 3·g-float scan slabs backed by
// one contiguous array.
func (s *Scratch) yinScanSlabs(workers, g int) [][]float64 {
	back := s.f64(&s.yinScan, workers*3*g)
	if cap(s.yinScanSlab) < workers {
		s.yinScanSlab = make([][]float64, workers)
	}
	s.yinScanSlab = s.yinScanSlab[:workers]
	for w := range s.yinScanSlab {
		s.yinScanSlab[w] = back[w*3*g : (w+1)*3*g : (w+1)*3*g]
	}
	return s.yinScanSlab
}

// filterScratch returns the shared kd-tree filtering scratch.
func (s *Scratch) filterScratch() *kdtree.FilterScratch {
	if s.filter == nil {
		s.filter = &kdtree.FilterScratch{}
	}
	return s.filter
}

// treeFor returns a kd-tree over data, rebuilding only when the data
// or leaf size differs from the cached build (identity comparison: the
// sweep hands the same row slice to every K).
func (s *Scratch) treeFor(data [][]float64, leafSize int) (*kdtree.Tree, error) {
	if s.tree != nil && s.treeLeaf == leafSize && len(s.treeData) == len(data) &&
		len(data) > 0 && &s.treeData[0] == &data[0] {
		return s.tree, nil
	}
	tree, err := kdtree.Build(data, leafSize)
	if err != nil {
		return nil, err
	}
	s.tree, s.treeData, s.treeLeaf = tree, data, leafSize
	return tree, nil
}
