package cluster

import (
	"math"
	"sync"

	"adahealth/internal/vec"
)

// yinyangKernel implements the group-filtered exact assignment step of
// Ding et al., "Yinyang K-Means: A Drop-In Replacement of the Classic
// K-Means with Consistent Speedup" (ICML 2015). The K centroids are
// partitioned once, at kernel construction, into G ≈ K/10 groups of
// nearby centroids; each point then carries one upper bound u on the
// distance to its assigned centroid and G group lower bounds lb[j] ≤
// min over the centroids of group j (excluding the assigned one). The
// filter cascade per point and iteration:
//
//  1. global: if u ≤ min_j lb[j] after drift decay, the assignment
//     provably cannot improve — no distance is computed at all;
//  2. tighten: recompute u exactly and retest (also against s[a], the
//     half-distance to the assigned centroid's nearest neighbour);
//  3. group: every group with lb[j] ≥ u is skipped whole; a failing
//     group is rescanned, refreshing its bound;
//  4. local: within a rescanned group, a member c is skipped when
//     u ≤ d(assigned, c)/2 — Elkan's pairwise prune, from a shared
//     K×K half-distance matrix (per-run, not per-point, so it costs
//     none of Elkan's O(n·K) bound memory).
//
// Memory is O(n·G) ≈ O(n·K/10) — an order less than Elkan's O(n·K)
// bound matrix — while the group bounds stay far tighter than
// Hamerly's single second-closest bound, which collapses at large K
// where the second-closest centroid is close. That makes yinyang the
// large-K exact kernel: Elkan's pruning without Elkan's memory
// traffic.
//
// Exactness: identical contract to boundedKernel (see bounded.go). A
// group is skipped only when its decayed lower bound proves no member
// is strictly closer than the current exact upper bound, and every
// surviving candidate is compared by exact squared distance with the
// same arithmetic as the Lloyd kernel this run shadows (dense
// vec.SquaredEuclidean, or the cached-norm identity over the CSR
// view). The documented caveat is again exact distance ties: a proof
// of "no strictly closer centroid" keeps the incumbent where Lloyd's
// fresh scan picks the lowest index — measure zero on continuous
// data. The grouping itself (a small deterministic K-means over the
// initial centroids) only decides what gets pruned, never what wins a
// comparison, so any grouping yields the same labels.
//
// Parallelism mirrors the other kernels: chunked row ranges over a
// worker pool, private partial counts merged at a barrier, serial
// row-order centroid-sum reduction.
type yinyangKernel struct {
	data    [][]float64
	csr     *vec.CSRMatrix // nil = dense kernel arithmetic
	k, g    int
	workers int

	group   []int // centroid → group, fixed for the run
	members []int // centroid indices grouped: members[offsets[j]:offsets[j+1]]
	offsets []int // len g+1

	upper  []float64 // u[i] ≥ d(x_i, centroid[labels[i]])
	lower  []float64 // n·g row-major group bounds
	cNorm2 []float64 // per-iteration ‖c‖² cache (CSR identity)
	// half[a·k+c] = d(a,c)/2 for the local prune; s[c] = min_{c'≠c}
	// d(c,c')/2 for the post-tighten skip — the same per-iteration
	// caches Elkan keeps, shared across all points.
	half []float64
	s    []float64

	// Drift bookkeeping, folded into the bounds lazily per row: u grows
	// by the assigned centroid's own movement, lb[j] shrinks by the
	// largest movement within group j.
	pendingDrift []float64
	groupDrift   []float64
	driftPending bool
	repairFlag   []bool
	hasRepairs   bool

	// scanTmp[w] is worker w's 3·g slab for the per-row min/second-min
	// distance and skip-bound tracking of the rescanned groups.
	scanTmp [][]float64

	partialCounts [][]int
	started       bool
}

// yinyangGroups returns the group count for k centroids: one group per
// ten centroids, at least one — the G ≈ K/10 of the yinyang paper.
func yinyangGroups(k int) int {
	g := (k + 9) / 10
	if g < 1 {
		g = 1
	}
	return g
}

// newYinyangKernel builds the kernel and its centroid grouping over
// the initial centroids. Buffers come from scratch when provided; the
// bound matrix reuses the same scratch slot as Elkan's, so a warm
// sweep alternating kernels still shares one allocation.
func newYinyangKernel(data [][]float64, csr *vec.CSRMatrix, centroids [][]float64, workers int, scratch *Scratch) *yinyangKernel {
	n := len(data)
	k := len(centroids)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	g := yinyangGroups(k)
	yk := &yinyangKernel{
		data:    data,
		csr:     csr,
		k:       k,
		g:       g,
		workers: workers,
	}
	if scratch != nil {
		yk.upper = scratch.f64(&scratch.upper, n)
		yk.lower = scratch.f64(&scratch.lower, n*g)
		yk.cNorm2 = scratch.f64(&scratch.cNorm2, k)
		yk.half = scratch.f64(&scratch.half, k*k)
		yk.s = scratch.f64(&scratch.s, k)
		yk.group = scratch.ints(&scratch.yinGroup, k)
		yk.members = scratch.ints(&scratch.yinMembers, k)
		yk.offsets = scratch.ints(&scratch.yinOffsets, g+1)
		yk.groupDrift = scratch.f64(&scratch.yinDrift, g)
		yk.partialCounts = scratch.partials(workers, k)
		yk.scanTmp = scratch.yinScanSlabs(workers, g)
	} else {
		yk.upper = make([]float64, n)
		yk.lower = make([]float64, n*g)
		yk.cNorm2 = make([]float64, k)
		yk.half = make([]float64, k*k)
		yk.s = make([]float64, k)
		yk.group = make([]int, k)
		yk.members = make([]int, k)
		yk.offsets = make([]int, g+1)
		yk.groupDrift = make([]float64, g)
		yk.partialCounts = make([][]int, workers)
		yk.scanTmp = make([][]float64, workers)
		for w := range yk.partialCounts {
			yk.partialCounts[w] = make([]int, k)
			yk.scanTmp[w] = make([]float64, 3*g)
		}
	}
	yk.buildGroups(centroids)
	return yk
}

// buildGroups partitions the centroids into g groups of mutual
// proximity with a small serial K-means over the centroid vectors:
// deterministic farthest-point seeding (Gonzalez, from centroid 0)
// followed by a few Lloyd iterations. Group quality affects only how
// much the filters prune, never the assignment result, so the refine
// count is a pure speed knob.
func (yk *yinyangKernel) buildGroups(centroids [][]float64) {
	k, g := yk.k, yk.g
	if g == 1 {
		for c := range yk.group {
			yk.group[c] = 0
		}
	} else {
		d := len(centroids[0])
		centers := make([][]float64, g)
		centers[0] = vec.Clone(centroids[0])
		minD := make([]float64, k)
		for c := range minD {
			minD[c] = vec.SquaredEuclidean(centroids[c], centers[0])
		}
		for j := 1; j < g; j++ {
			far := 0
			for c := 1; c < k; c++ {
				if minD[c] > minD[far] {
					far = c
				}
			}
			centers[j] = vec.Clone(centroids[far])
			for c := range minD {
				if dd := vec.SquaredEuclidean(centroids[c], centers[j]); dd < minD[c] {
					minD[c] = dd
				}
			}
		}
		sums := make([]float64, g*d)
		counts := make([]int, g)
		for iter := 0; iter < 3; iter++ {
			for c := range yk.group {
				best, bestD := 0, math.Inf(1)
				for j, ctr := range centers {
					if dd := vec.SquaredEuclidean(centroids[c], ctr); dd < bestD {
						best, bestD = j, dd
					}
				}
				yk.group[c] = best
			}
			if iter == 2 {
				break // final assignment computed; centers no longer needed
			}
			for i := range sums {
				sums[i] = 0
			}
			for j := range counts {
				counts[j] = 0
			}
			for c := range yk.group {
				j := yk.group[c]
				counts[j]++
				vec.AddTo(sums[j*d:(j+1)*d], centroids[c])
			}
			for j := range centers {
				if counts[j] == 0 {
					continue // empty group keeps its center
				}
				inv := 1 / float64(counts[j])
				for x := 0; x < d; x++ {
					centers[j][x] = sums[j*d+x] * inv
				}
			}
		}
	}

	// Flatten group → member centroid lists (counting sort by group).
	for j := range yk.offsets {
		yk.offsets[j] = 0
	}
	for _, j := range yk.group {
		yk.offsets[j+1]++
	}
	for j := 1; j <= g; j++ {
		yk.offsets[j] += yk.offsets[j-1]
	}
	fill := make([]int, g)
	copy(fill, yk.offsets[:g])
	for c, j := range yk.group {
		yk.members[fill[j]] = c
		fill[j]++
	}
}

// dist2 returns the squared distance from row i to centroid c with the
// exact arithmetic of the Lloyd kernel this run shadows (see
// boundedKernel.dist2).
func (yk *yinyangKernel) dist2(i, c int, cent []float64) float64 {
	if yk.csr != nil {
		vals, cols := yk.csr.RowView(i)
		return yk.csr.RowNorm2(i) + yk.cNorm2[c] - 2*vec.SparseDot(vals, cols, cent)
	}
	return vec.SquaredEuclidean(yk.data[i], cent)
}

// refreshCenters recomputes the per-iteration centroid caches: ‖c‖²
// for the CSR identity, and the half pairwise distances plus s minima
// behind the local prune. O(K²·d) per iteration — shared by every
// point, unlike the per-point group bounds.
func (yk *yinyangKernel) refreshCenters(centroids [][]float64) {
	if yk.csr != nil {
		for c, cent := range centroids {
			yk.cNorm2[c] = vec.Dot(cent, cent)
		}
	}
	k := yk.k
	for c := range yk.s {
		yk.s[c] = math.Inf(1)
	}
	for a := 0; a < k; a++ {
		yk.half[a*k+a] = 0
		for c := a + 1; c < k; c++ {
			h := boundDist(vec.SquaredEuclidean(centroids[a], centroids[c])) / 2
			yk.half[a*k+c] = h
			yk.half[c*k+a] = h
			if h < yk.s[a] {
				yk.s[a] = h
			}
			if h < yk.s[c] {
				yk.s[c] = h
			}
		}
	}
}

// noteUpdate records one updateCentroids call: per-centroid drift for
// the upper bounds, per-group maximum drift for the group bounds, and
// any empty-cluster repairs (whose rows reset their bounds wholesale).
func (yk *yinyangKernel) noteUpdate(drift []float64, repaired []int) {
	yk.pendingDrift = drift
	for j := range yk.groupDrift {
		yk.groupDrift[j] = 0
	}
	for c, d := range drift {
		if j := yk.group[c]; d > yk.groupDrift[j] {
			yk.groupDrift[j] = d
		}
	}
	yk.driftPending = true
	yk.hasRepairs = len(repaired) > 0
	if yk.hasRepairs {
		if yk.repairFlag == nil {
			yk.repairFlag = make([]bool, len(yk.data))
		}
		for _, i := range repaired {
			yk.repairFlag[i] = true
		}
	}
}

// assign performs one full assignment step: parallel filtered label
// scan, then the serial row-order centroid-sum reduction shared with
// every other kernel (bit-stable accumulation for any worker count).
func (yk *yinyangKernel) assign(centroids [][]float64, labels []int, sums [][]float64, counts []int) {
	yk.scan(centroids, labels, yk.partialCounts)
	for c := range counts {
		counts[c] = 0
		for w := range yk.partialCounts {
			counts[c] += yk.partialCounts[w][c]
		}
		for j := range sums[c] {
			sums[c][j] = 0
		}
	}
	if yk.csr != nil {
		n := yk.csr.NumRows()
		for i := 0; i < n; i++ {
			vals, cols := yk.csr.RowView(i)
			vec.ScatterAdd(sums[labels[i]], vals, cols)
		}
	} else {
		for i, x := range yk.data {
			vec.AddTo(sums[labels[i]], x)
		}
	}
}

// assignLabels runs only the filtered label scan — the final pass
// against the converged centroids.
func (yk *yinyangKernel) assignLabels(centroids [][]float64, labels []int) {
	yk.scan(centroids, labels, nil)
}

func (yk *yinyangKernel) scan(centroids [][]float64, labels []int, partialCounts [][]int) {
	yk.refreshCenters(centroids)
	n := len(yk.data)
	if yk.workers == 1 {
		var pc []int
		if partialCounts != nil {
			pc = partialCounts[0]
			for c := range pc {
				pc[c] = 0
			}
		}
		yk.scanRange(centroids, labels, pc, yk.scanTmp[0], 0, n)
	} else {
		chunk := (n + yk.workers - 1) / yk.workers
		var wg sync.WaitGroup
		for w := 0; w < yk.workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			var pc []int
			if partialCounts != nil {
				pc = partialCounts[w]
				for c := range pc {
					pc[c] = 0
				}
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int, pc []int, tmp []float64) {
				defer wg.Done()
				yk.scanRange(centroids, labels, pc, tmp, lo, hi)
			}(lo, hi, pc, yk.scanTmp[w])
		}
		wg.Wait()
	}
	yk.driftPending = false
	if yk.hasRepairs {
		for i := range yk.repairFlag {
			yk.repairFlag[i] = false
		}
		yk.hasRepairs = false
	}
	yk.started = true
}

// scanRange labels rows [lo, hi) with worker-private count and scan
// slabs, folding any pending drift into the bounds row by row.
func (yk *yinyangKernel) scanRange(centroids [][]float64, labels []int, pc []int, tmp []float64, lo, hi int) {
	if !yk.started {
		for i := lo; i < hi; i++ {
			c := yk.initRow(i, centroids, tmp)
			labels[i] = c
			if pc != nil {
				pc[c]++
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		c := yk.yinyangRow(i, labels[i], centroids, tmp)
		labels[i] = c
		if pc != nil {
			pc[c]++
		}
	}
}

// rowData captures the loop-invariant view of one input row so the
// candidate loops pay for RowView/RowNorm2 (or the dense row fetch)
// once per row instead of once per distance.
type rowData struct {
	dense []float64 // nil on the CSR path
	vals  []float64
	cols  []int32
	norm2 float64
}

func (yk *yinyangKernel) rowView(i int) rowData {
	if yk.csr != nil {
		vals, cols := yk.csr.RowView(i)
		return rowData{vals: vals, cols: cols, norm2: yk.csr.RowNorm2(i)}
	}
	return rowData{dense: yk.data[i]}
}

// rowDist2 is dist2 over a hoisted row view — same arithmetic, no
// per-candidate row refetch.
func (yk *yinyangKernel) rowDist2(x rowData, c int, cent []float64) float64 {
	if x.dense != nil {
		return vec.SquaredEuclidean(x.dense, cent)
	}
	return x.norm2 + yk.cNorm2[c] - 2*vec.SparseDot(x.vals, x.cols, cent)
}

// initRow is the first-iteration full scan: the same strict-"<"
// index-order argmin as every other kernel, additionally capturing the
// upper bound and the per-group min/second-min distances the filtered
// iterations prune with.
func (yk *yinyangKernel) initRow(i int, centroids [][]float64, tmp []float64) int {
	g := yk.g
	min1, min2 := tmp[:g], tmp[g:2*g]
	for j := 0; j < g; j++ {
		min1[j] = math.Inf(1)
		min2[j] = math.Inf(1)
	}
	x := yk.rowView(i)
	group := yk.group
	best, bestD := -1, math.Inf(1)
	for c, cent := range centroids {
		d2 := yk.rowDist2(x, c, cent)
		j := group[c]
		if d2 < min1[j] {
			min2[j] = min1[j]
			min1[j] = d2
		} else if d2 < min2[j] {
			min2[j] = d2
		}
		if d2 < bestD {
			best, bestD = c, d2
		}
	}
	lb := yk.lower[i*g : i*g+g]
	bGroup := group[best]
	for j := 0; j < g; j++ {
		if j == bGroup {
			lb[j] = boundDist(min2[j])
		} else {
			lb[j] = boundDist(min1[j])
		}
	}
	yk.upper[i] = boundDist(bestD)
	return best
}

// yinyangRow performs one filtered step for row i: drift-decay the
// bounds, run the global filter, tighten u, then rescan exactly the
// groups whose bound fails against the current exact upper bound —
// every surviving candidate is compared by exact squared distance with
// strict "<", so the winner matches Lloyd's scan away from exact ties.
func (yk *yinyangKernel) yinyangRow(i, a int, centroids [][]float64, tmp []float64) int {
	g := yk.g
	lb := yk.lower[i*g : i*g+g]
	u := yk.upper[i]
	if yk.driftPending {
		u += yk.pendingDrift[a]
		for j := range lb {
			l := lb[j] - yk.groupDrift[j]
			if l < 0 {
				l = 0
			}
			lb[j] = l
		}
		if yk.hasRepairs && yk.repairFlag[i] {
			// Reseeded as an exact copy of centroid a: distance exactly 0;
			// the bound state predates the relabel, so it resets wholesale
			// and the next failing filter rebuilds it exactly.
			u = 0
			for j := range lb {
				lb[j] = 0
			}
		}
	}
	minLB := math.Inf(1)
	for _, l := range lb {
		if l < minLB {
			minLB = l
		}
	}
	if u <= minLB {
		yk.upper[i] = u
		return a
	}
	// Tighten the upper bound to the exact distance and retest — both
	// against the group bounds and against s[a]: u ≤ d(a,c)/2 for every
	// other centroid c proves d(x,c) ≥ 2·s[a] − u ≥ u, so nothing is
	// strictly closer.
	x := yk.rowView(i)
	u2 := yk.rowDist2(x, a, centroids[a])
	u = boundDist(u2)
	if u <= minLB || u <= yk.s[a] {
		yk.upper[i] = u
		return a
	}

	// Group filter: rescan every group whose bound fails against the
	// current exact upper bound, tracking min/second-min per rescanned
	// group (in squared space; min1[j] = -1 marks a skipped group).
	// Within a rescanned group the local filter prunes members the
	// half-distance matrix rules out; skipB[j] keeps the smallest
	// lower bound those proofs establish, so the group bound refresh
	// below stays valid without their exact distances.
	min1, min2, skipB := tmp[:g], tmp[g:2*g], tmp[2*g:3*g]
	best, bestD2, bestD := a, u2, u
	aGroup := yk.group[a]
	k := yk.k
	members, offsets, half := yk.members, yk.offsets, yk.half
	halfB := half[best*k : best*k+k]
	for j := 0; j < g; j++ {
		if lb[j] >= bestD {
			min1[j] = -1
			continue
		}
		m1, m2 := math.Inf(1), math.Inf(1)
		sb := math.Inf(1)
		for _, c := range members[offsets[j]:offsets[j+1]] {
			var d2 float64
			if c == a {
				d2 = u2 // already exact; a stays the incumbent on ties
			} else {
				if h := halfB[c]; bestD <= h {
					// d(x,c) ≥ 2h − d(x,best) ≥ bestD: c cannot win, and
					// bestD only shrinks from here, so the proof stands for
					// the final winner too.
					if b := 2*h - bestD; b < sb {
						sb = b
					}
					continue
				}
				d2 = yk.rowDist2(x, c, centroids[c])
				if d2 < bestD2 {
					best, bestD2, bestD = c, d2, boundDist(d2)
					halfB = half[best*k : best*k+k]
				}
			}
			if d2 < m1 {
				m2 = m1
				m1 = d2
			} else if d2 < m2 {
				m2 = d2
			}
		}
		min1[j], min2[j], skipB[j] = m1, m2, sb
	}

	// Refresh the bounds of the rescanned groups, excluding the final
	// winner from its own group's bound (second-min takes its place; a
	// locally skipped member can never be the winner, so skipB applies
	// to both cases).
	bGroup := yk.group[best]
	for j := 0; j < g; j++ {
		if min1[j] < 0 {
			continue
		}
		m := min1[j]
		if j == bGroup {
			m = min2[j]
		}
		l := boundDist(m)
		if skipB[j] < l {
			l = skipB[j]
		}
		lb[j] = l
	}
	if best != a && min1[aGroup] < 0 {
		// The old assignment's group was skipped, so its bound still
		// excludes a — fold a's now-known exact distance back in.
		if ua := boundDist(u2); ua < lb[aGroup] {
			lb[aGroup] = ua
		}
	}
	yk.upper[i] = bestD
	return best
}
