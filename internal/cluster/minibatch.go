package cluster

import (
	"context"
	"math/rand"

	"adahealth/internal/vec"
)

// DefaultBatchSize is the mini-batch size used when Options.BatchSize
// is unset (Sculley's web-scale regime: large enough to amortize the
// per-batch centroid pass, small enough that an iteration is cheap).
const DefaultBatchSize = 1024

// runMiniBatch is the Sculley (2010) mini-batch K-means loop: each
// iteration samples BatchSize points with replacement, assigns each to
// its nearest centroid, and moves that centroid toward the point with
// a per-centroid learning rate 1/v(c), where v(c) counts every point
// the centroid has ever absorbed. The result is approximate — labels
// and SSE are NOT bit-for-bit comparable to Lloyd and the exactness
// property tests exclude it — but an iteration costs O(b·K·d)
// regardless of n, which is what makes >100k-patient datasets
// tractable. The run is deterministic under Options.Seed: one serial
// rand stream drives both seeding and batch sampling.
//
// Convergence is declared when the largest per-batch centroid movement
// drops to Options.Tolerance, mirroring the Lloyd criterion; the final
// Labels/Sizes/SSE come from one exact full assignment pass against
// the frozen centroids.
func runMiniBatch(ctx context.Context, data [][]float64, centroids [][]float64, rng *rand.Rand, opts Options) (*Result, error) {
	n := len(data)
	d := len(data[0])
	b := opts.BatchSize
	if b <= 0 {
		b = DefaultBatchSize
	}
	if b > n {
		b = n
	}

	var (
		batch    []int
		labs     []int
		prevFlat []float64
		absorbed = make([]int, opts.K)
	)
	if opts.Scratch != nil {
		batch = opts.Scratch.ints(&opts.Scratch.batchIdx, b)
		labs = opts.Scratch.ints(&opts.Scratch.batchLab, b)
		prevFlat = opts.Scratch.f64(&opts.Scratch.prevCents, opts.K*d)
	} else {
		batch = make([]int, b)
		labs = make([]int, b)
		prevFlat = make([]float64, opts.K*d)
	}

	res := &Result{K: opts.K, Algorithm: AlgorithmMiniBatch.String()}
	for iter := 0; iter < opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iterations = iter + 1

		for i := range batch {
			batch[i] = rng.Intn(n)
		}
		// Cache assignments for the whole batch against the frozen
		// centroids, then apply the sequential per-point updates
		// (Sculley's two-phase step).
		for i, p := range batch {
			c, _ := vec.ArgMinDistance(data[p], centroids)
			labs[i] = c
		}
		for c := range centroids {
			copy(prevFlat[c*d:(c+1)*d], centroids[c])
		}
		for i, p := range batch {
			c := labs[i]
			absorbed[c]++
			eta := 1 / float64(absorbed[c])
			cent := centroids[c]
			for j, v := range data[p] {
				cent[j] += eta * (v - cent[j])
			}
		}
		moved := 0.0
		for c := range centroids {
			if delta := vec.Euclidean(prevFlat[c*d:(c+1)*d], centroids[c]); delta > moved {
				moved = delta
			}
		}
		if moved <= opts.Tolerance {
			res.Converged = true
			break
		}
	}

	res.Centroids = centroids
	res.Labels = make([]int, n)
	res.Sizes = make([]int, opts.K)
	for i, x := range data {
		c, dist := vec.ArgMinDistance(x, centroids)
		res.Labels[i] = c
		res.Sizes[c]++
		res.SSE += dist
	}
	return res, nil
}
