package cluster

import (
	"fmt"

	"adahealth/internal/kdtree"
	"adahealth/internal/vec"
)

// DBSCANOptions configures density-based clustering.
type DBSCANOptions struct {
	// Eps is the neighbourhood radius (Euclidean).
	Eps float64
	// MinPts is the minimum neighbourhood size (including the point
	// itself) for a core point; <= 0 means 4.
	MinPts int
}

// Noise is the label DBSCAN assigns to points in no cluster.
const Noise = -1

// DBSCANResult is a fitted density-based clustering. Labels use
// 0..K-1 for clusters and Noise (-1) for outliers.
type DBSCANResult struct {
	K         int
	Labels    []int
	Sizes     []int
	NumNoise  int
	CorePoint []bool
}

// DBSCAN clusters data by density (Ester et al.). It complements the
// center-based K-means of the paper's preliminary implementation: the
// paper's partial-mining discussion notes that rarely-prescribed exams
// "could affect other types of analyses such as outlier detection" —
// DBSCAN's noise set is exactly that analysis.
func DBSCAN(data [][]float64, opts DBSCANOptions) (*DBSCANResult, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no data")
	}
	if opts.Eps <= 0 {
		return nil, fmt.Errorf("cluster: DBSCAN needs Eps > 0, got %g", opts.Eps)
	}
	if opts.MinPts <= 0 {
		opts.MinPts = 4
	}
	tree, err := kdtree.Build(data, 0)
	if err != nil {
		return nil, fmt.Errorf("cluster: building kd-tree: %w", err)
	}
	eps2 := opts.Eps * opts.Eps

	// rangeQuery returns indices within eps of q (including q itself).
	rangeQuery := func(q []float64) []int {
		var out []int
		var walk func(node *kdtree.Node)
		walk = func(node *kdtree.Node) {
			if node == nil || node.BoxSquaredDistance(q) > eps2 {
				return
			}
			if node.Left == nil {
				for i := node.Lo; i < node.Hi; i++ {
					idx := tree.Perm[i]
					if vec.SquaredEuclidean(q, data[idx]) <= eps2 {
						out = append(out, idx)
					}
				}
				return
			}
			walk(node.Left)
			walk(node.Right)
		}
		walk(tree.Root)
		return out
	}

	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	core := make([]bool, n)
	k := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		neighbours := rangeQuery(data[i])
		if len(neighbours) < opts.MinPts {
			labels[i] = Noise
			continue
		}
		core[i] = true
		labels[i] = k
		// Expand the cluster with a seed queue.
		queue := append([]int(nil), neighbours...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = k // border point reached from a core
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = k
			nb := rangeQuery(data[j])
			if len(nb) >= opts.MinPts {
				core[j] = true
				queue = append(queue, nb...)
			}
		}
		k++
	}

	res := &DBSCANResult{K: k, Labels: labels, Sizes: make([]int, k), CorePoint: core}
	for _, l := range labels {
		if l == Noise {
			res.NumNoise++
		} else {
			res.Sizes[l]++
		}
	}
	return res, nil
}
