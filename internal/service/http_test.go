package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/synth"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
	return resp.StatusCode
}

// TestDaemonEndToEnd drives the full HTTP lifecycle against a real
// service: submit a synthetic analysis, poll status until done, fetch
// the report, and cancel a second queued job.
func TestDaemonEndToEnd(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// Health before any work.
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if code := getJSON(t, srv, "/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz = %d %q", code, health.Status)
	}

	// Submit a synthetic job.
	synthCfg := synth.SmallConfig()
	resp, body := postJSON(t, srv, "/v1/analyses", SubmitRequest{
		Name:      "e2e",
		Synthetic: &synthCfg,
		Seed:      ptr(int64(1)),
		Labels:    map[string]string{"origin": "httptest"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" {
		t.Fatalf("no job id in %s", body)
	}

	// Report is 409 until the job finishes.
	if code := getJSON(t, srv, "/v1/analyses/"+sub.ID+"/report", nil); code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("early report = %d, want 409 (or 200 if already done)", code)
	}

	// Poll status until done.
	var state JobState
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, srv, "/v1/analyses/"+sub.ID, &state); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		if state.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", state.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state.Status != StatusDone {
		t.Fatalf("job finished %s (%s)", state.Status, state.Error)
	}
	if state.Labels["origin"] != "httptest" {
		t.Errorf("labels = %v", state.Labels)
	}
	if state.Trace == nil || len(state.Trace.Stages) == 0 {
		t.Error("done status carries no stage trace")
	}
	var phases []string
	for _, ev := range state.Events {
		if ev.Stage == "" {
			phases = append(phases, ev.Phase)
		}
	}
	if want := []string{"queued", "running", "done"}; strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Errorf("lifecycle = %v, want %v", phases, want)
	}

	// Fetch the report and spot-check the analysis outcome.
	var report struct {
		Sweep *struct {
			BestK int `json:"best_k"`
		}
		Ranked []any
	}
	if code := getJSON(t, srv, "/v1/analyses/"+sub.ID+"/report", &report); code != http.StatusOK {
		t.Fatalf("report = %d", code)
	}
	if report.Sweep == nil || report.Sweep.BestK < 2 {
		t.Errorf("report sweep missing or degenerate: %+v", report.Sweep)
	}
	if len(report.Ranked) == 0 {
		t.Error("report has no ranked knowledge items")
	}

	// Submit two more (the first may run; the second queues), then
	// cancel the queued one via DELETE.
	ids := make([]string, 2)
	for i := range ids {
		resp, body := postJSON(t, srv, "/v1/analyses", SubmitRequest{Synthetic: &synthCfg})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d: %s", i, resp.StatusCode, body)
		}
		var s SubmitResponse
		if err := json.Unmarshal(body, &s); err != nil {
			t.Fatal(err)
		}
		ids[i] = s.ID
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/analyses/"+ids[1], nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d", dresp.StatusCode)
	}
	for {
		if code := getJSON(t, srv, "/v1/analyses/"+ids[1], &state); code != http.StatusOK {
			t.Fatalf("status after cancel = %d", code)
		}
		if state.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled job stuck in %s", state.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state.Status != StatusCancelled && state.Status != StatusDone {
		t.Fatalf("cancelled job ended %s", state.Status)
	}

	// Unknown id → 404.
	if code := getJSON(t, srv, "/v1/analyses/job-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
}

// TestDaemonQueueFull429: a saturated service answers POST with 429.
func TestDaemonQueueFull429(t *testing.T) {
	svc, started, release, _ := blockingService(t, 1, 1)
	defer close(release)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	synthCfg := synth.SmallConfig()
	submit := func() int {
		resp, _ := postJSON(t, srv, "/v1/analyses", SubmitRequest{Synthetic: &synthCfg})
		return resp.StatusCode
	}
	if code := submit(); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	<-started // worker busy
	if code := submit(); code != http.StatusAccepted {
		t.Fatalf("queued submit = %d", code)
	}
	if code := submit(); code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", code)
	}
}

// TestDaemonBadRequests: malformed and invalid submissions are 400s
// with a JSON error.
func TestDaemonBadRequests(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	cases := []struct {
		name string
		body any
	}{
		{"no source", SubmitRequest{}},
		{"bad override", SubmitRequest{Synthetic: ptrCfg(synth.SmallConfig()), Config: &core.Config{MinConfidence: 5}}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, srv, "/v1/analyses", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: code = %d, body %s", tc.name, resp.StatusCode, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: not a JSON error body: %s", tc.name, body)
		}
	}

	// Non-JSON body.
	resp, err := http.Post(srv.URL+"/v1/analyses", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON = %d, want 400", resp.StatusCode)
	}
}

func ptr[T any](v T) *T { return &v }

func ptrCfg(c synth.Config) *synth.Config { return &c }

// TestDaemonInlineDecodedLog is the regression test for the
// decoded-log index race: a log arriving as JSON has no internal
// lookup tables, and the concurrent DAG's root stages must not race to
// build them (this test fails under -race without the admission-time
// reindex). It also checks the submission's cached per-log engine
// state is released once the job finishes.
func TestDaemonInlineDecodedLog(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// Round-trip a generated log through JSON, exactly as a client
	// submission arrives.
	raw, err := json.Marshal(testLog(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	var decoded json.RawMessage = raw
	resp, body := postJSON(t, srv, "/v1/analyses", struct {
		Log json.RawMessage `json:"log"`
	}{Log: decoded})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	var state JobState
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, srv, "/v1/analyses/"+sub.ID, &state); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		if state.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", state.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if state.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", state.Status, state.Error)
	}
	// The request-scoped log's cached baskets were released with the
	// job.
	if n := svc.Engine().CachedLogs(); n != 0 {
		t.Errorf("%d logs still cached after the only job finished", n)
	}
}

// TestDaemonAlgorithmOverride: a per-job config override names the
// K-means kernel by its string form ("elkan", "auto", ...) — the
// cluster.Algorithm JSON text encoding — and an unknown name is a 400
// at admission, not a mid-job failure.
func TestDaemonAlgorithmOverride(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	body := fmt.Sprintf(`{
		"synthetic": %s,
		"config": {"Seed": 1, "Sweep": {"Ks": [2, 3], "CVFolds": 2, "Cluster": {"Algorithm": "elkan"}}}
	}`, mustJSON(t, synth.SmallConfig()))
	resp, err := http.Post(srv.URL+"/v1/analyses", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("elkan override = %d, want 202", resp.StatusCode)
	}
	var state JobState
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, srv, "/v1/analyses/"+sub.ID, &state); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		if state.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", state.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state.Status != StatusDone {
		t.Fatalf("elkan-override job finished %s (%s)", state.Status, state.Error)
	}

	bad := fmt.Sprintf(`{"synthetic": %s, "config": {"Sweep": {"Cluster": {"Algorithm": "nonsense"}}}}`,
		mustJSON(t, synth.SmallConfig()))
	resp, err = http.Post(srv.URL+"/v1/analyses", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown algorithm = %d, want 400", resp.StatusCode)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
