package service

import (
	"time"

	"adahealth/internal/core"
)

// Option tunes one submission. Options are applied at admission time,
// so an invalid combination (e.g. a bad config override) rejects the
// submission immediately instead of failing mid-job.
type Option func(*jobOptions)

type jobOptions struct {
	priority      int
	deadline      time.Time
	seed          int64
	seedSet       bool
	override      *core.Config
	labels        map[string]string
	seedCentroids [][]float64
	seedFeatures  []string
}

// WithPriority sets the dispatch priority: among queued jobs the
// highest priority runs first, ties breaking in submission order.
// The default is 0; negative priorities yield to everything else.
func WithPriority(p int) Option {
	return func(o *jobOptions) { o.priority = p }
}

// WithDeadline bounds the job's total lifetime — queue wait included.
// A job whose deadline expires before or during execution finishes
// failed with context.DeadlineExceeded. The zero time means no
// deadline.
func WithDeadline(t time.Time) Option {
	return func(o *jobOptions) { o.deadline = t }
}

// WithSeed overrides Config.Seed for this job only, leaving every
// other engine parameter at the service's base configuration.
func WithSeed(seed int64) Option {
	return func(o *jobOptions) { o.seed = seed; o.seedSet = true }
}

// WithConfigOverride analyzes this job under cfg instead of the
// service's base configuration. The override is validated at admission
// (core.Config.Validate) and shares the service's knowledge base;
// cfg.KDBDir is ignored. Composes with WithSeed, which takes
// precedence for the seed.
func WithConfigOverride(cfg core.Config) Option {
	return func(o *jobOptions) { o.override = &cfg }
}

// WithSeedCentroids seeds the job's warm-started sweep chain with
// caller-provided centroids, labelled by feature (exam-code) name so
// the engine can remap them onto the analysis' working feature space
// (core.AnalyzeOptions.SeedCentroids). The streaming layer passes its
// live online model here when a drift-triggered full re-analysis
// should start from where the online model already is. The slices are
// referenced, not copied — callers hand over ownership.
func WithSeedCentroids(centroids [][]float64, features []string) Option {
	return func(o *jobOptions) {
		o.seedCentroids = centroids
		o.seedFeatures = features
	}
}

// WithLabels attaches caller metadata to the job (copied), surfaced by
// Job.Labels and the daemon's status endpoint.
func WithLabels(labels map[string]string) Option {
	return func(o *jobOptions) {
		if len(labels) == 0 {
			return
		}
		o.labels = make(map[string]string, len(labels))
		for k, v := range labels {
			o.labels[k] = v
		}
	}
}
