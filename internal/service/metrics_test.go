package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/faultfs"
	"adahealth/internal/kdb"
	"adahealth/internal/obs"
	"adahealth/internal/stats"
)

// TestMetricsEndpoint: the daemon mux serves the Prometheus exposition
// with the families every layer linked into this binary registers at
// init — present before any traffic, so a scraper sees the full schema
// from the first scrape.
func TestMetricsEndpoint(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE service_queue_depth gauge",
		"# TYPE service_admissions_total counter",
		"# TYPE service_jobs_total counter",
		"# TYPE core_stage_seconds histogram",
		"# TYPE docstore_wal_commit_seconds histogram",
		"# TYPE kdb_breaker_mode gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The queue gauges are live closures over this service's Stats.
	if !strings.Contains(text, "service_workers 1\n") {
		t.Errorf("exposition missing bound worker gauge:\n%s", text)
	}
}

// TestTraceHTMLEndpoint: /v1/analyses/{id}/trace.html answers 409
// while the job runs and, once done, renders the TraceDump as an HTML
// document with an SVG bar per stage and the retry annotation.
func TestTraceHTMLEndpoint(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	release := make(chan struct{})
	svc.runJob = func(j *Job) (*core.Report, error) {
		<-release
		t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
		return &core.Report{
			Descriptor: stats.Descriptor{DatasetName: "trace-ds"},
			Stages: []kdb.StageTrace{
				{Dataset: "trace-ds", Stage: "characterize", Start: t0, End: t0.Add(40 * time.Millisecond), Attempts: 1},
				{Dataset: "trace-ds", Stage: "sweep", Start: t0.Add(40 * time.Millisecond), End: t0.Add(400 * time.Millisecond), Attempts: 3},
			},
			StageConcurrency: 2,
		}, nil
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	j, err := svc.Submit(context.Background(), testLog(t, 1))
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/analyses/" + j.ID() + "/trace.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace.html before done = %d, want 409", resp.StatusCode)
	}

	close(release)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(srv.URL + "/v1/analyses/" + j.ID() + "/trace.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace.html = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	html := string(body)
	for _, want := range []string{
		"<svg", "trace-ds", "characterize", "sweep",
		"×3",      // the retried stage's attempt annotation
		"retried", // the retry highlight class
	} {
		if !strings.Contains(html, want) {
			t.Errorf("trace.html missing %q", want)
		}
	}
	// An unknown job is a plain 404.
	resp404, err := http.Get(srv.URL + "/v1/analyses/job-999999/trace.html")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace.html = %d, want 404", resp404.StatusCode)
	}
}

// TestAdmissionMetricsMove: shed admissions move the outcome-labeled
// counter — queue_full on a saturated healthy queue, degraded when the
// K-DB is down with the queue past the shed threshold. Deltas, not
// absolutes: the default registry is process-shared.
func TestAdmissionMetricsMove(t *testing.T) {
	reg := obs.Default()
	accepted0 := reg.Value("service_admissions_total", "accepted")
	full0 := reg.Value("service_admissions_total", "queue_full")
	degraded0 := reg.Value("service_admissions_total", "degraded")

	ffs := faultfs.New(nil, 1)
	svc, k := chaosService(t, ffs, t.TempDir(), 1, 4)
	release := make(chan struct{})
	svc.runJob = func(j *Job) (*core.Report, error) {
		<-release
		return &core.Report{}, nil
	}
	defer close(release)

	// Trip the breaker offline, then fill the queue to the shed
	// threshold ((4+1)/2 = 2 held slots after one dispatch).
	ffs.Inject(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.log", Err: faultfs.ENOSPC()})
	if _, err := k.StoreDescriptor(stats.Descriptor{DatasetName: "shed", NumPatients: 1, NumRecords: 1}); err == nil {
		t.Fatal("write over broken WAL succeeded")
	}
	j1, err := svc.Submit(context.Background(), testLog(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j1, StatusRunning)
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(context.Background(), testLog(t, int64(i+2))); err != nil {
			t.Fatalf("submit %d below threshold = %v", i, err)
		}
	}
	if _, err := svc.Submit(context.Background(), testLog(t, 5)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("saturated degraded submit = %v, want ErrDegraded", err)
	}

	if d := reg.Value("service_admissions_total", "degraded") - degraded0; d != 1 {
		t.Errorf("degraded delta = %v, want 1", d)
	}
	if d := reg.Value("service_admissions_total", "accepted") - accepted0; d != 3 {
		t.Errorf("accepted delta = %v, want 3", d)
	}
	if d := reg.Value("service_admissions_total", "queue_full") - full0; d != 0 {
		t.Errorf("queue_full delta = %v, want 0 (shed beat the queue)", d)
	}
}

// TestStageMetricsMove: a finished job's per-stage retry totals and
// terminal counters move by exactly what its report says — the stage
// observer seam and the terminal accounting, no scheduler changes.
func TestStageMetricsMove(t *testing.T) {
	reg := obs.Default()
	retries0 := reg.Value("core_stage_retries_total", "sweep")
	done0 := reg.Value("service_jobs_total", "done")
	durInteractive0 := reg.Value("service_job_duration_seconds", "interactive")

	svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	svc.runJob = func(j *Job) (*core.Report, error) {
		return &core.Report{Stages: []kdb.StageTrace{
			{Stage: "sweep", Attempts: 3},
			{Stage: "cluster", Attempts: 1},
		}}, nil
	}

	j, err := svc.Submit(context.Background(), testLog(t, 1), WithPriority(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	if d := reg.Value("core_stage_retries_total", "sweep") - retries0; d != 2 {
		t.Errorf("sweep retries delta = %v, want 2", d)
	}
	if d := reg.Value("service_jobs_total", "done") - done0; d != 1 {
		t.Errorf("done jobs delta = %v, want 1", d)
	}
	if d := reg.Value("service_job_duration_seconds", "interactive") - durInteractive0; d != 1 {
		t.Errorf("interactive duration observations delta = %v, want 1", d)
	}
}
