package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/dataset"
)

// Status is a job's position in its lifecycle.
type Status string

const (
	// StatusQueued: admitted, waiting for a worker slot.
	StatusQueued Status = "queued"
	// StatusRunning: executing on the shared stage pool.
	StatusRunning Status = "running"
	// StatusDone: finished successfully; the report is available.
	StatusDone Status = "done"
	// StatusFailed: finished with an error (including an expired
	// deadline, which surfaces as context.DeadlineExceeded).
	StatusFailed Status = "failed"
	// StatusCancelled: cancelled via Cancel, a DELETE, or service
	// shutdown before completing.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether a job in this status has stopped moving.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// StageEvent is one progress notification of a job: either a job
// lifecycle transition (Stage == "", Phase is a Status string) or a
// per-stage start/finish fed live from the scheduler's trace points
// (Stage set, Phase "start" or "finish"). The stream for a typical
// analysis reads: queued, running, then start/finish pairs for each
// DAG stage, then the terminal status.
type StageEvent struct {
	// JobID is the emitting job.
	JobID string `json:"job_id"`
	// Time is when the transition happened.
	Time time.Time `json:"time"`
	// Stage is the pipeline stage name ("" for lifecycle events).
	Stage string `json:"stage,omitempty"`
	// Phase is "start"/"finish" for stage events, or the new Status
	// for lifecycle events.
	Phase string `json:"phase"`
	// Err carries a stage's failure message on finish.
	Err string `json:"err,omitempty"`
}

// eventBuffer sizes a job's event channel: the 10-stage pipeline emits
// ~20 stage events plus a handful of lifecycle transitions, so a
// reasonably prompt consumer never loses events; a stalled consumer
// loses newest-first rather than blocking the scheduler.
const eventBuffer = 64

// Job is the handle of one submitted analysis. Handles are returned by
// Service.Submit before the work runs; all methods are safe for
// concurrent use.
type Job struct {
	id       string
	seq      uint64
	priority int
	labels   map[string]string
	log      *dataset.Log
	engine   *core.Engine // base engine, or a per-job WithConfig derivation
	deadline time.Time    // zero = none

	// seedCentroids/seedFeatures carry a WithSeedCentroids warm-start
	// seed into the engine run (immutable after admission).
	seedCentroids [][]float64
	seedFeatures  []string

	ctx    context.Context
	cancel context.CancelFunc

	heapIdx int // position in the admission heap; -1 once dispatched or reaped

	mu           sync.Mutex
	status       Status
	report       *core.Report
	err          error
	progress     []StageEvent
	eventsClosed bool
	queuedAt     time.Time
	startedAt    time.Time
	finishedAt   time.Time
	// stageStarts holds in-flight stages' start stamps from the
	// observer seam, matched to their finish events for the stage
	// latency histogram.
	stageStarts map[string]time.Time

	events chan StageEvent
	subs   []chan StageEvent // Subscribe streams (SSE consumers)
	done   chan struct{}

	// onFinish runs exactly once, after the job reaches its terminal
	// state (the service releases per-log cached state here).
	onFinish func()
}

// ID returns the job's service-unique identifier.
func (j *Job) ID() string { return j.id }

// Priority returns the submission priority (higher dispatches first).
func (j *Job) Priority() int { return j.priority }

// Labels returns a copy of the job's labels.
func (j *Job) Labels() map[string]string {
	if len(j.labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(j.labels))
	for k, v := range j.labels {
		out[k] = v
	}
	return out
}

// Status returns the job's current lifecycle status.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the job's terminal error (nil while non-terminal or on
// success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Report returns the finished report, or (nil, false) until the job is
// done.
func (j *Job) Report() (*core.Report, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report, j.report != nil
}

// Wait blocks until the job reaches a terminal status or ctx is done.
// On completion it returns the same (*Report, error) the equivalent
// Engine.Analyze call would have: in particular a job whose deadline
// expired returns context.DeadlineExceeded and a cancelled job returns
// context.Canceled (both errors.Is-matchable). A ctx error means the
// wait gave up, not that the job stopped.
func (j *Job) Wait(ctx context.Context) (*core.Report, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.report, j.err
	}
}

// Cancel asks the job to stop: a queued job is reaped immediately, a
// running one stops at its next cancellation checkpoint. Cancel is
// idempotent and a no-op on terminal jobs.
func (j *Job) Cancel() { j.cancel() }

// Events returns the job's progress stream. The channel receives
// lifecycle and per-stage StageEvents in order and is closed exactly
// once, after the terminal event, so `for range job.Events()` drains
// cleanly. Events are delivered best-effort: a consumer that stops
// receiving loses events rather than stalling the pipeline.
func (j *Job) Events() <-chan StageEvent { return j.events }

// Subscribe returns an independent event stream plus its cancel
// function: every event emitted so far is replayed immediately, live
// events follow in order, and the channel is closed after the terminal
// event — so any number of consumers (the SSE endpoint serves one per
// request) can each drain a complete stream without competing for the
// primary Events channel. Delivery is best-effort like Events: a
// consumer that stops receiving loses events rather than stalling the
// pipeline. Cancel releases the subscription early (idempotent; the
// channel is then closed).
func (j *Job) Subscribe() (<-chan StageEvent, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan StageEvent, len(j.progress)+eventBuffer)
	for _, ev := range j.progress {
		ch <- ev // fits: the channel is sized for the replay
	}
	if j.eventsClosed {
		close(ch)
		return ch, func() {}
	}
	j.subs = append(j.subs, ch)
	cancel := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, sub := range j.subs {
			if sub == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, cancel
}

// Progress returns a snapshot of every event emitted so far (including
// any a slow Events consumer missed) — the daemon's status endpoint
// reads this.
func (j *Job) Progress() []StageEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]StageEvent(nil), j.progress...)
}

// Timestamps returns when the job was admitted, started and finished
// (zero while not yet reached).
func (j *Job) Timestamps() (queued, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.queuedAt, j.startedAt, j.finishedAt
}

// jobSnapshot is one internally consistent view of the job's mutable
// state, taken under a single lock acquisition so a status/report pair
// can never mix pre- and post-completion values.
type jobSnapshot struct {
	status                      Status
	report                      *core.Report
	err                         error
	progress                    []StageEvent
	queuedAt, startedAt, finish time.Time
}

func (j *Job) snapshot() jobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobSnapshot{
		status:    j.status,
		report:    j.report,
		err:       j.err,
		progress:  append([]StageEvent(nil), j.progress...),
		queuedAt:  j.queuedAt,
		startedAt: j.startedAt,
		finish:    j.finishedAt,
	}
}

// emit records an event and forwards it to the stream without ever
// blocking (the channel send is non-blocking; the mutex also
// serializes sends against the close in finish).
func (j *Job) emit(ev StageEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = append(j.progress, ev)
	if j.eventsClosed {
		return
	}
	select {
	case j.events <- ev:
	default:
	}
	for _, sub := range j.subs {
		select {
		case sub <- ev:
		default:
		}
	}
}

// emitLifecycle emits a status-transition event.
func (j *Job) emitLifecycle(s Status, at time.Time) {
	j.emit(StageEvent{JobID: j.id, Time: at, Phase: string(s)})
}

// observeStage adapts the scheduler's StageObserver callback into the
// job's event stream.
func (j *Job) observeStage(ev core.StageEvent) {
	j.recordStageMetrics(ev)
	j.emit(StageEvent{
		JobID: j.id,
		Time:  ev.Time,
		Stage: ev.Stage,
		Phase: string(ev.Phase),
		Err:   ev.Err,
	})
}

// setRunning transitions queued → running.
func (j *Job) setRunning() {
	now := time.Now()
	j.mu.Lock()
	j.status = StatusRunning
	j.startedAt = now
	j.mu.Unlock()
	j.emitLifecycle(StatusRunning, now)
}

// finish records the terminal outcome, emits the terminal lifecycle
// event, closes the event stream (exactly once) and releases waiters.
// The first finish wins; later calls are no-ops, so a reaper and a
// worker racing on the same job cannot double-close.
func (j *Job) finish(rep *core.Report, err error) {
	now := time.Now()
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.report = rep
	j.err = err
	j.finishedAt = now
	switch {
	case err == nil:
		j.status = StatusDone
	case errors.Is(err, context.Canceled):
		j.status = StatusCancelled
	default:
		j.status = StatusFailed
	}
	status := j.status
	j.mu.Unlock()

	recordTerminalMetrics(j, status, rep, err, now)
	j.emitLifecycle(status, now)

	j.mu.Lock()
	if !j.eventsClosed {
		j.eventsClosed = true
		close(j.events)
		for _, sub := range j.subs {
			close(sub)
		}
		j.subs = nil
	}
	j.mu.Unlock()

	close(j.done)
	j.cancel() // release the deadline timer and wake the reap watcher
	if j.onFinish != nil {
		j.onFinish()
	}
}
