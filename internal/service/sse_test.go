package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/synth"
)

// readSSE consumes a text/event-stream body until it closes, returning
// the decoded StageEvents.
func readSSE(t *testing.T, resp *http.Response) []StageEvent {
	t.Helper()
	defer resp.Body.Close()
	var events []StageEvent
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev StageEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return events
}

// TestDaemonEventStream submits a job and follows its SSE stream: the
// stream must deliver the lifecycle in order, include per-stage
// start/finish pairs, and close by itself after the terminal event.
func TestDaemonEventStream(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	synthCfg := synth.SmallConfig()
	resp, body := postJSON(t, srv, "/v1/analyses", SubmitRequest{
		Name: "sse", Synthetic: &synthCfg, Seed: ptr(int64(1)),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	streamResp, err := http.Get(srv.URL + "/v1/analyses/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := streamResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	events := readSSE(t, streamResp) // returns only when the daemon closes the stream

	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	if events[0].Phase != string(StatusQueued) {
		t.Errorf("first event = %+v, want queued", events[0])
	}
	last := events[len(events)-1]
	if last.Phase != string(StatusDone) || last.Stage != "" {
		t.Errorf("terminal event = %+v, want done lifecycle", last)
	}
	stages := map[string]int{}
	for _, ev := range events {
		if ev.Stage != "" && ev.Phase == "finish" {
			stages[ev.Stage]++
		}
	}
	for _, want := range []string{"characterize", "recall", "sweep", "rank"} {
		if stages[want] != 1 {
			t.Errorf("stage %s finish events = %d, want 1", want, stages[want])
		}
	}

	// A late subscriber gets the full replay and an immediate close.
	lateResp, err := http.Get(srv.URL + "/v1/analyses/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	late := readSSE(t, lateResp)
	if len(late) != len(events) {
		t.Errorf("late subscriber got %d events, first got %d", len(late), len(events))
	}
}

// TestSubscribeMultiConsumer checks the Job-level semantics: two
// concurrent subscribers both drain the complete stream, and cancel
// releases a subscription early.
func TestSubscribeMultiConsumer(t *testing.T) {
	svc, started, release, _ := blockingService(t, 1, 4)
	job, err := svc.Submit(t.Context(), testLog(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	a, cancelA := job.Subscribe()
	b, cancelB := job.Subscribe()
	defer cancelA()
	cancelB() // immediate cancel: channel closes, no events lost for a

	if _, open := <-b; open {
		// Drain until close; a replayed "queued"/"running" may arrive
		// before the close, which is fine.
		for range b {
		}
	}

	close(release)
	if _, err := job.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	var got []StageEvent
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, open := <-a:
			if !open {
				if len(got) == 0 || got[len(got)-1].Phase != string(StatusDone) {
					t.Fatalf("subscriber stream = %+v, want terminal done", got)
				}
				return
			}
			got = append(got, ev)
		case <-deadline:
			t.Fatal("subscriber stream never closed")
		}
	}
}

// waitGoroutines waits for the goroutine count to fall back to base,
// dumping all stacks on timeout — the SSE lifecycle tests' leak check.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d running, want <= %d\n%s",
		runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

// TestSSEClientDisconnectMidStream: a client dropping its SSE
// connection mid-job must release the subscription and its handler
// goroutine (no leak), without disturbing the job or later finish
// processing (the subscriber channel is closed exactly once, by the
// handler's cancel — finish then finds it already gone).
func TestSSEClientDisconnectMidStream(t *testing.T) {
	svc, started, release, _ := blockingService(t, 1, 4)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	job, err := svc.Submit(t.Context(), testLog(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/analyses/"+job.ID()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read until the replayed "running" event proves the handler is
	// subscribed and streaming, then drop the connection mid-stream.
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading stream: %v", err)
		}
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, string(StatusRunning)) {
			break
		}
	}
	cancel()
	resp.Body.Close()
	waitGoroutines(t, base)

	// The job is unaffected by its audience leaving.
	close(release)
	if _, err := job.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestSSEJobCancelClosesStream: cancelling a queued job terminates a
// live SSE stream with the cancelled lifecycle event, closes it (the
// stream reader returns), and leaks no goroutine.
func TestSSEJobCancelClosesStream(t *testing.T) {
	svc, started, release, _ := blockingService(t, 1, 4)
	defer close(release)
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// Occupy the single worker so the second job stays queued.
	if _, err := svc.Submit(t.Context(), testLog(t, 1)); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := svc.Submit(t.Context(), testLog(t, 2))
	if err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	resp, err := http.Get(srv.URL + "/v1/analyses/" + queued.ID() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		queued.Cancel()
	}()
	events := readSSE(t, resp) // returns only if finish closes the stream
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	if last := events[len(events)-1]; last.Phase != string(StatusCancelled) {
		t.Fatalf("terminal event = %+v, want cancelled", last)
	}
	// The cleanly-finished stream leaves a reusable keep-alive
	// connection (two transport goroutines) in the shared client's
	// pool; drop it so the leak check sees only real leaks.
	http.DefaultClient.CloseIdleConnections()
	waitGoroutines(t, base)
}

// TestSubscribeCancelAfterFinish: finish closes every live subscriber
// channel; a subscription cancel arriving after that (an SSE handler
// unwinding late) must be a no-op, not a second close. Cancel is also
// idempotent.
func TestSubscribeCancelAfterFinish(t *testing.T) {
	svc, started, release, _ := blockingService(t, 1, 4)
	job, err := svc.Submit(t.Context(), testLog(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ch, cancel := job.Subscribe()
	close(release)
	if _, err := job.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	for range ch {
		// drain until finish's close
	}
	cancel() // after finish: must not double-close
	cancel() // and idempotent
}

// TestDaemonKnowledgeAndSimilarEndpoints covers the K-DB query surface
// of the daemon: knowledge items (plain and metric-ranked) and the
// descriptor-similarity lookup.
func TestDaemonKnowledgeAndSimilarEndpoints(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// Analyze two similar synthetic datasets so the K-DB has content.
	for i, name := range []string{"cohort-a", "cohort-b"} {
		synthCfg := synth.SmallConfig()
		resp, body := postJSON(t, srv, "/v1/analyses", SubmitRequest{
			Name: name, Synthetic: &synthCfg, Seed: ptr(int64(i + 1)),
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s = %d: %s", name, resp.StatusCode, body)
		}
		var sub SubmitResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		job, ok := svc.Job(sub.ID)
		if !ok {
			t.Fatal("job lookup failed")
		}
		if _, err := job.Wait(t.Context()); err != nil {
			t.Fatal(err)
		}
	}

	var kn struct {
		Count int              `json:"count"`
		Items []knowledge.Item `json:"items"`
	}
	if code := getJSON(t, srv, "/v1/knowledge?dataset=cohort-a", &kn); code != http.StatusOK {
		t.Fatalf("knowledge = %d", code)
	}
	if kn.Count == 0 || len(kn.Items) != kn.Count {
		t.Fatalf("knowledge count = %d items = %d", kn.Count, len(kn.Items))
	}
	for _, it := range kn.Items {
		if it.Dataset != "cohort-a" {
			t.Errorf("foreign item in dataset query: %+v", it.ID)
		}
	}

	// Metric-ranked: top patterns by support, descending.
	if code := getJSON(t, srv, "/v1/knowledge?dataset=cohort-a&metric=support&limit=5", &kn); code != http.StatusOK {
		t.Fatalf("ranked knowledge = %d", code)
	}
	if kn.Count == 0 || kn.Count > 5 {
		t.Fatalf("ranked count = %d", kn.Count)
	}
	for i := 1; i < len(kn.Items); i++ {
		if kn.Items[i-1].Metrics["support"] < kn.Items[i].Metrics["support"] {
			t.Error("ranked knowledge not descending by support")
		}
	}

	var sim struct {
		Dataset string                  `json:"dataset"`
		Similar []kdb.DatasetSimilarity `json:"similar"`
	}
	if code := getJSON(t, srv, "/v1/datasets/cohort-a/similar", &sim); code != http.StatusOK {
		t.Fatalf("similar = %d", code)
	}
	if len(sim.Similar) != 1 || sim.Similar[0].Dataset != "cohort-b" {
		t.Fatalf("similar = %+v, want cohort-b", sim.Similar)
	}
	if sim.Similar[0].Similarity < 0.9 {
		t.Errorf("twin similarity = %v", sim.Similar[0].Similarity)
	}

	if code := getJSON(t, srv, "/v1/datasets/nope/similar", nil); code != http.StatusNotFound {
		t.Errorf("unknown dataset similar = %d, want 404", code)
	}
	if code := getJSON(t, srv, "/v1/knowledge?limit=bogus", nil); code != http.StatusBadRequest {
		t.Errorf("bad limit = %d, want 400", code)
	}
}
