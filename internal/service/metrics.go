package service

import (
	"errors"
	"strings"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/obs"
)

// Service and core-stage instruments on the default registry (see the
// metric-name reference in package obs). The stage series are fed from
// the scheduler's existing StageEvent observer seam — the scheduler
// itself is untouched. Queue/worker gauges bind per Service in
// NewWithEngine; latest service wins when a process holds several.
var (
	admissionsTotal = obs.Default().CounterVec("service_admissions_total",
		"Submission admissions by outcome.", "outcome")
	jobsTotal = obs.Default().CounterVec("service_jobs_total",
		"Jobs reaching a terminal state.", "state")
	jobDurationSeconds = obs.Default().HistogramVec("service_job_duration_seconds",
		"Admission-to-terminal latency by priority class (interactive >= 10, standard 1..9, batch <= 0).",
		nil, "class")

	stageSeconds = obs.Default().HistogramVec("core_stage_seconds",
		"Per-stage wall latency from the scheduler's start/finish trace points.", nil, "stage")
	stageTotal = obs.Default().CounterVec("core_stage_total",
		"Stage executions by outcome.", "stage", "outcome")
	stageRetriesTotal = obs.Default().CounterVec("core_stage_retries_total",
		"Extra stage attempts beyond the first, from finished jobs' stage traces.", "stage")
	stagePanicsTotal = obs.Default().CounterVec("core_stage_panics_total",
		"Recovered stage panics isolated to their analysis.", "stage")
)

// priorityClass buckets a job priority into a bounded label set.
func priorityClass(p int) string {
	switch {
	case p >= 10:
		return "interactive"
	case p >= 1:
		return "standard"
	default:
		return "batch"
	}
}

// bindServiceGauges points the pull gauges at s. Gauges rather than
// counters: depth and occupancy are instantaneous, so the scrape reads
// the live value instead of reconstructing it from event deltas.
func (s *Service) bindServiceGauges() {
	obs.Default().GaugeFunc("service_queue_depth",
		"Jobs admitted and waiting for a worker slot.",
		func() float64 { return float64(s.Stats().Queued) })
	obs.Default().GaugeFunc("service_workers_running",
		"Jobs executing on the shared stage pool right now.",
		func() float64 { return float64(s.Stats().Running) })
	obs.Default().GaugeFunc("service_workers",
		"Configured worker (dispatch slot) count.",
		func() float64 { return float64(s.cfg.Workers) })
}

// recordStageMetrics folds one scheduler trace point into the core
// stage series: start events stamp t0, finish events observe the
// latency and count the outcome.
func (j *Job) recordStageMetrics(ev core.StageEvent) {
	switch ev.Phase {
	case core.StageStart:
		j.mu.Lock()
		if j.stageStarts == nil {
			j.stageStarts = make(map[string]time.Time)
		}
		j.stageStarts[ev.Stage] = ev.Time
		j.mu.Unlock()
	case core.StageFinish:
		j.mu.Lock()
		t0, ok := j.stageStarts[ev.Stage]
		delete(j.stageStarts, ev.Stage)
		j.mu.Unlock()
		if ok {
			stageSeconds.With(ev.Stage).Observe(ev.Time.Sub(t0).Seconds())
		}
		outcome := "ok"
		if ev.Err != "" {
			outcome = "error"
		}
		stageTotal.With(ev.Stage, outcome).Inc()
	}
}

// recordTerminalMetrics counts a job's terminal outcome: state and
// class latency always; per-stage retries from the report's traces
// (the scheduler fires one observer pair per stage regardless of
// attempts, so retries are only visible here); panics from the
// error chain.
func recordTerminalMetrics(j *Job, status Status, rep *core.Report, err error, finished time.Time) {
	jobsTotal.With(string(status)).Inc()
	jobDurationSeconds.With(priorityClass(j.priority)).Observe(finished.Sub(j.queuedAt).Seconds())
	if rep != nil {
		for _, tr := range rep.Stages {
			if tr.Attempts > 1 {
				stageRetriesTotal.With(tr.Stage).Add(int64(tr.Attempts - 1))
			}
		}
	}
	var pe *core.PanicError
	if errors.As(err, &pe) {
		stage := pe.Stage
		// safeRun labels job-level panics "job <id>"; collapse the
		// unbounded ID into one series.
		if strings.HasPrefix(stage, "job ") {
			stage = "job"
		}
		stagePanicsTotal.With(stage).Inc()
	}
}
