package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
)

// TestDegradedReadRoutesToFallback: with a read fallback configured and
// the K-DB breaker degraded, the knowledge endpoints proxy to the
// standby and stamp the staleness header; a healthy breaker never
// touches the standby.
func TestDegradedReadRoutesToFallback(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var hits atomic.Int64
	standby := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeJSON(w, http.StatusOK, knowledgeResponse{
			Dataset: r.URL.Query().Get("dataset"),
			Count:   1,
			Items:   []knowledge.Item{{ID: "standby-item", Dataset: "ward-a"}},
		})
	}))
	defer standby.Close()

	h, mux := newAPI(svc, HandlerOptions{ReadFallback: standby.URL})
	mode := kdb.ModeHealthy
	h.mode = func() kdb.Mode { return mode }
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Healthy: served locally, standby untouched, no staleness header.
	resp, err := http.Get(srv.URL + "/v1/knowledge?dataset=ward-a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hits.Load() != 0 {
		t.Fatalf("healthy read: status=%d standby hits=%d, want 200 and 0", resp.StatusCode, hits.Load())
	}
	if resp.Header.Get(StaleHeader) != "" {
		t.Errorf("healthy read carries %s=%q", StaleHeader, resp.Header.Get(StaleHeader))
	}

	// Degraded: proxied, stale header names the breaker mode.
	mode = kdb.ModeReadOnly
	resp, err = http.Get(srv.URL + "/v1/knowledge?dataset=ward-a")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hits.Load() != 1 {
		t.Fatalf("degraded read: status=%d standby hits=%d, want 200 and 1", resp.StatusCode, hits.Load())
	}
	if got := resp.Header.Get(StaleHeader); got != string(kdb.ModeReadOnly) {
		t.Errorf("%s = %q, want %q", StaleHeader, got, kdb.ModeReadOnly)
	}
	var kr knowledgeResponse
	if err := json.Unmarshal(body, &kr); err != nil {
		t.Fatal(err)
	}
	if kr.Count != 1 || len(kr.Items) != 1 || kr.Items[0].ID != "standby-item" {
		t.Errorf("degraded read body = %+v, want the standby's answer", kr)
	}

	// The similar endpoint proxies through the same gate.
	resp, err = http.Get(srv.URL + "/v1/datasets/ward-a/similar")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Errorf("similar endpoint bypassed the fallback (hits=%d)", hits.Load())
	}
	if got := resp.Header.Get(StaleHeader); got != string(kdb.ModeReadOnly) {
		t.Errorf("similar: %s = %q, want %q", StaleHeader, got, kdb.ModeReadOnly)
	}
}

// TestDegradedReadFallsBackLocallyOnProxyError: an unreachable standby
// must not take the endpoint down — the local store still serves reads
// in read-only mode.
func TestDegradedReadFallsBackLocallyOnProxyError(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Engine().KDB().StoreKnowledgeItems([]knowledge.Item{
		{ID: "local-item", Dataset: "ward-a", Kind: knowledge.KindCluster},
	}); err != nil {
		t.Fatal(err)
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on

	h, mux := newAPI(svc, HandlerOptions{ReadFallback: dead.URL})
	h.mode = func() kdb.Mode { return kdb.ModeReadOnly }
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var kr knowledgeResponse
	if code := getJSON(t, srv, "/v1/knowledge?dataset=ward-a", &kr); code != http.StatusOK {
		t.Fatalf("local fallback read = %d, want 200", code)
	}
	if kr.Count != 1 || kr.Items[0].ID != "local-item" {
		t.Errorf("local fallback body = %+v, want the local item", kr)
	}
}

// TestSSEKeepalivePing: an idle SSE stream emits `: ping` comments so
// idle-timeout middleboxes keep the connection; events still flow
// afterwards and the stream still closes with the channel.
func TestSSEKeepalivePing(t *testing.T) {
	old := sseKeepalive
	sseKeepalive = 20 * time.Millisecond
	defer func() { sseKeepalive = old }()

	ch := make(chan string)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeSSE(w, r, ch)
	}))
	defer srv.Close()

	go func() {
		time.Sleep(150 * time.Millisecond) // several keepalive periods idle
		ch <- "after-idle"
		close(ch)
	}()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	pings, datas := 0, 0
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, ": ping"):
			pings++
		case strings.HasPrefix(line, "data: "):
			datas++
			if !strings.Contains(line, "after-idle") {
				t.Errorf("unexpected event %q", line)
			}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if pings < 2 {
		t.Errorf("idle stream sent %d keepalive pings, want >= 2", pings)
	}
	if datas != 1 {
		t.Errorf("stream delivered %d events, want 1", datas)
	}
}
