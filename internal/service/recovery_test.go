package service

import (
	"testing"

	"adahealth/internal/kdb"
)

// TestKDBRecoveryAfterKill is the durability acceptance path: a
// disk-backed service analyzes a dataset, the process "dies" (the
// store is abandoned without Close/compaction, so recovery runs purely
// off the WAL), and a reopened K-DB holds every collection of the
// paper's data model.
func TestKDBRecoveryAfterKill(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig(1)
	cfg.KDBDir = dir
	svc, err := New(Config{Engine: cfg, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}

	log := testLog(t, 1)
	// Collection 1 (raw datasets) is populated by explicit archival,
	// not by the pipeline; store it like an ingesting caller would.
	if _, err := svc.Engine().KDB().StoreDataset(log); err != nil {
		t.Fatal(err)
	}
	job, err := svc.Submit(t.Context(), log)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	// Record expert feedback so collection 6 holds a user entry too
	// (the recall stage has already recorded its miss there).
	items, err := svc.Engine().KDB().KnowledgeItems(log.Name)
	if err != nil || len(items) == 0 {
		t.Fatalf("knowledge items: %v (%d)", err, len(items))
	}
	if err := svc.Engine().KDB().RecordFeedback(kdb.Feedback{
		User: "expert", Dataset: log.Name, ItemID: items[0].ID,
		ItemKind: string(items[0].Kind), Interest: "high",
	}); err != nil {
		t.Fatal(err)
	}

	// Kill: the service and store are simply abandoned — no Close, no
	// compaction. Every acknowledged write is already on the WAL.
	want := svc.Engine().KDB().Counts()

	re, err := kdb.Open(dir)
	if err != nil {
		t.Fatalf("reopening after kill: %v", err)
	}
	got := re.Counts()
	for _, coll := range []string{
		kdb.CollRaw, kdb.CollTransformed, kdb.CollDescriptors,
		kdb.CollClusterKI, kdb.CollPatternKI, kdb.CollFeedback,
		kdb.CollStageTraces,
	} {
		if got[coll] == 0 {
			t.Errorf("collection %s empty after recovery", coll)
		}
		if got[coll] != want[coll] {
			t.Errorf("collection %s recovered %d docs, want %d", coll, got[coll], want[coll])
		}
	}
	// The recovered knowledge is queryable and carries the centroid
	// payload future recalls warm-start from.
	recovered, err := re.KnowledgeItems(log.Name)
	if err != nil {
		t.Fatal(err)
	}
	haveCentroids := false
	for _, it := range recovered {
		if len(it.Centroids) > 0 {
			haveCentroids = true
		}
	}
	if !haveCentroids {
		t.Error("no centroid payload survived recovery")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	_ = svc.Close()
}
