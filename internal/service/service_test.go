package service

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/optimize"
	"adahealth/internal/partial"
	"adahealth/internal/synth"
)

// testLog builds one small synthetic log.
func testLog(t *testing.T, seed int64) *dataset.Log {
	t.Helper()
	cfg := synth.SmallConfig()
	cfg.Seed = seed
	log, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// fastConfig is the quick analysis configuration the core tests use.
func fastConfig(seed int64) core.Config {
	return core.Config{
		Seed:    seed,
		Partial: partial.Config{Ks: []int{4}},
		Sweep:   optimize.SweepConfig{Ks: []int{3, 4, 5}, CVFolds: 4},
	}
}

// blockingService builds a service whose jobs block until released,
// for deterministic admission/dispatch tests. started receives each
// job as its fake run begins; release unblocks all current and future
// runs when closed. runJob is replaced before any submission, so the
// worker goroutines observe the override through the admission mutex.
func blockingService(t *testing.T, workers, depth int) (svc *Service, started chan *Job, release chan struct{}, order func() []string) {
	t.Helper()
	svc, err := New(Config{Engine: fastConfig(1), Workers: workers, QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	started = make(chan *Job, 64)
	release = make(chan struct{})
	var mu sync.Mutex
	var ran []string
	svc.runJob = func(j *Job) (*core.Report, error) {
		mu.Lock()
		ran = append(ran, j.ID())
		mu.Unlock()
		started <- j
		select {
		case <-release:
			return &core.Report{}, nil
		case <-j.ctx.Done():
			return nil, j.ctx.Err()
		}
	}
	order = func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), ran...)
	}
	return svc, started, release, order
}

func waitStatus(t *testing.T, j *Job, want Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.Status() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID(), j.Status(), want)
}

// TestSubmitQueueFullFastReject: with every worker busy and the queue
// at capacity, Submit must reject immediately with ErrQueueFull.
func TestSubmitQueueFullFastReject(t *testing.T) {
	svc, started, _, _ := blockingService(t, 1, 2)
	log := testLog(t, 1)
	ctx := context.Background()

	j1, err := svc.Submit(ctx, log)
	if err != nil {
		t.Fatal(err)
	}
	<-started // j1 occupies the only worker; its queue slot is free again
	_ = j1

	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(ctx, log); err != nil {
			t.Fatalf("queued submission %d: %v", i, err)
		}
	}
	if _, err := svc.Submit(ctx, log); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission: err = %v, want ErrQueueFull", err)
	}

	// Once draining, closed beats full: the still-saturated queue must
	// not disguise a terminal ErrClosed as retryable backpressure.
	go svc.Shutdown(context.Background()) // blocks on the stuck jobs; admission closes immediately
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := svc.Submit(ctx, log); errors.Is(err, ErrClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining service never reported ErrClosed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitWaitUnblocks: SubmitWait must block while the queue is
// full and admit as soon as a worker drains one queued job; a done
// context must abort the wait with ctx.Err().
func TestSubmitWaitUnblocks(t *testing.T) {
	svc, started, release, _ := blockingService(t, 1, 1)
	log := testLog(t, 1)
	ctx := context.Background()

	if _, err := svc.Submit(ctx, log); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := svc.Submit(ctx, log); err != nil {
		t.Fatal(err) // fills the queue
	}

	admitted := make(chan error, 1)
	go func() {
		_, err := svc.SubmitWait(ctx, log)
		admitted <- err
	}()
	select {
	case err := <-admitted:
		t.Fatalf("SubmitWait returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release) // running job finishes; worker pops the queued job, freeing a slot
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("SubmitWait after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitWait never unblocked")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.SubmitWait(cancelled, log); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitWait with dead ctx: %v", err)
	}
}

// TestPriorityOrdering: with the single worker saturated, queued jobs
// must dispatch by descending priority, submission order breaking
// ties.
func TestPriorityOrdering(t *testing.T) {
	svc, started, release, order := blockingService(t, 1, 8)
	log := testLog(t, 1)
	ctx := context.Background()

	first, err := svc.Submit(ctx, log)
	if err != nil {
		t.Fatal(err)
	}
	<-started // saturate the worker before queueing the contenders

	low, _ := svc.Submit(ctx, log, WithPriority(0))
	highA, _ := svc.Submit(ctx, log, WithPriority(5))
	highB, _ := svc.Submit(ctx, log, WithPriority(5))
	mid, _ := svc.Submit(ctx, log, WithPriority(1))
	if low == nil || highA == nil || highB == nil || mid == nil {
		t.Fatal("submission failed")
	}

	close(release)
	for _, j := range []*Job{first, low, highA, highB, mid} {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s: %v", j.ID(), err)
		}
	}
	want := []string{first.ID(), highA.ID(), highB.ID(), mid.ID(), low.ID()}
	if !reflect.DeepEqual(order(), want) {
		t.Fatalf("dispatch order %v, want %v", order(), want)
	}
}

// TestQueuedThenRunningEvents is the acceptance property: on a
// saturated 2-slot service a submitted job reports queued then running
// via Events(), and the stream closes exactly once after the terminal
// event.
func TestQueuedThenRunningEvents(t *testing.T) {
	svc, started, release, _ := blockingService(t, 2, 8)
	log := testLog(t, 1)
	ctx := context.Background()

	// Saturate both slots.
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(ctx, log); err != nil {
			t.Fatal(err)
		}
		<-started
	}
	j, err := svc.Submit(ctx, log)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status() != StatusQueued {
		t.Fatalf("status = %s, want queued", j.Status())
	}
	close(release)

	var phases []string
	for ev := range j.Events() {
		if ev.Stage == "" {
			phases = append(phases, ev.Phase)
		}
		if ev.JobID != j.ID() {
			t.Errorf("event for %s on job %s's stream", ev.JobID, j.ID())
		}
	}
	// Channel closed: a further receive must not block.
	if _, open := <-j.Events(); open {
		t.Error("events channel delivered after close")
	}
	want := []string{"queued", "running", "done"}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("lifecycle phases %v, want %v", phases, want)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineExpired: a job whose deadline lapses (here: while
// queued behind a saturated worker) must fail with
// context.DeadlineExceeded from Wait.
func TestDeadlineExpired(t *testing.T) {
	svc, started, release, _ := blockingService(t, 1, 8)
	log := testLog(t, 1)
	ctx := context.Background()

	if _, err := svc.Submit(ctx, log); err != nil {
		t.Fatal(err)
	}
	<-started

	j, err := svc.Submit(ctx, log, WithDeadline(time.Now().Add(20*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want context.DeadlineExceeded", err)
	}
	if j.Status() != StatusFailed {
		t.Fatalf("status = %s, want failed", j.Status())
	}
	close(release)
}

// TestCancelQueuedJob: cancelling a queued job reaps it immediately —
// it never runs, Wait returns context.Canceled, and its queue slot is
// returned (the follow-up Submit succeeds).
func TestCancelQueuedJob(t *testing.T) {
	svc, started, release, order := blockingService(t, 1, 1)
	log := testLog(t, 1)
	ctx := context.Background()

	if _, err := svc.Submit(ctx, log); err != nil {
		t.Fatal(err)
	}
	<-started
	j, err := svc.Submit(ctx, log)
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if j.Status() != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", j.Status())
	}
	// The reap freed the queue slot.
	if _, err := svc.Submit(ctx, log); err != nil {
		t.Fatalf("slot not returned after reap: %v", err)
	}
	close(release)
	for _, id := range order() {
		if id == j.ID() {
			t.Fatal("cancelled queued job was dispatched")
		}
	}
}

// TestBadSubmissionRejectedAtAdmission: an invalid config override and
// an empty log must fail Submit itself, not the job later.
func TestBadSubmissionRejectedAtAdmission(t *testing.T) {
	svc, _, _, _ := blockingService(t, 1, 4)
	ctx := context.Background()

	if _, err := svc.Submit(ctx, testLog(t, 1), WithConfigOverride(core.Config{MinSupportFrac: 2})); err == nil {
		t.Fatal("accepted MinSupportFrac 2 override")
	}
	if _, err := svc.Submit(ctx, &dataset.Log{Name: "empty"}); err == nil {
		t.Fatal("accepted an empty log")
	}
	// Rejections must not leak queue slots.
	st := svc.Stats()
	if st.Queued != 0 {
		t.Fatalf("rejected submissions left %d queued", st.Queued)
	}
}

// TestShutdownDrains: Shutdown lets queued jobs finish, then Submit
// reports ErrClosed.
func TestShutdownDrains(t *testing.T) {
	svc, started, release, _ := blockingService(t, 1, 4)
	log := testLog(t, 1)
	ctx := context.Background()

	j1, err := svc.Submit(ctx, log)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := svc.Submit(ctx, log)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{j1, j2} {
		if j.Status() != StatusDone {
			t.Errorf("job %s drained into %s, want done", j.ID(), j.Status())
		}
	}
	if _, err := svc.Submit(ctx, log); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown Submit: %v, want ErrClosed", err)
	}
}

// comparableReport strips execution telemetry and the closure-bearing
// recommendations, as the core DAG/sequential equivalence test does.
func comparableReport(rep *core.Report) core.Report {
	c := *rep
	c.Stages = nil
	c.StageConcurrency = 0
	c.Recommendations = nil
	return c
}

// TestJobReportMatchesEngineAnalyze is the acceptance property: a
// Submit-ed job's report must be bit-for-bit identical to
// Engine.Analyze on the same log and seed, and its Events stream must
// carry start/finish for every pipeline stage.
func TestJobReportMatchesEngineAnalyze(t *testing.T) {
	const seed = 7
	log := testLog(t, seed)

	engine, err := core.New(fastConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}

	svc, err := New(Config{Engine: fastConfig(seed), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	j, err := svc.Submit(context.Background(), log, WithLabels(map[string]string{"ward": "diabetic"}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(comparableReport(want), comparableReport(got)) {
		t.Error("job report differs from Engine.Analyze")
	}
	if len(got.Stages) != len(want.Stages) {
		t.Errorf("job traced %d stages, engine %d", len(got.Stages), len(want.Stages))
	}

	// Every stage surfaced a start and a finish in the progress log.
	starts, finishes := map[string]int{}, map[string]int{}
	for _, ev := range j.Progress() {
		switch ev.Phase {
		case "start":
			starts[ev.Stage]++
		case "finish":
			finishes[ev.Stage]++
		}
	}
	for _, tr := range want.Stages {
		if starts[tr.Stage] != 1 || finishes[tr.Stage] != 1 {
			t.Errorf("stage %s: %d starts, %d finishes in events, want 1/1",
				tr.Stage, starts[tr.Stage], finishes[tr.Stage])
		}
	}
	if j.Labels()["ward"] != "diabetic" {
		t.Errorf("labels lost: %v", j.Labels())
	}
}

// TestWithSeedOverride: two jobs with different seeds on one service
// produce reports matching their per-seed Engine.Analyze equivalents.
func TestWithSeedOverride(t *testing.T) {
	log := testLog(t, 3)
	svc, err := New(Config{Engine: fastConfig(3), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	j, err := svc.Submit(context.Background(), log, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.New(fastConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(comparableReport(want), comparableReport(got)) {
		t.Error("WithSeed(11) report differs from a seed-11 engine's")
	}
}
