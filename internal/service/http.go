package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/synth"
)

// SubmitRequest is the JSON body of POST /v1/analyses. Exactly one of
// Log (an inline examination log) or Synthetic (a generator
// configuration for the built-in synthetic diabetic-log generator)
// selects the data source.
type SubmitRequest struct {
	// Name overrides the log's dataset name.
	Name string `json:"name,omitempty"`
	// Log is an inline examination log (exams, patients, records).
	Log *dataset.Log `json:"log,omitempty"`
	// Synthetic generates the log server-side (tests, demos, load).
	Synthetic *synth.Config `json:"synthetic,omitempty"`
	// Seed overrides the analysis seed (WithSeed).
	Seed *int64 `json:"seed,omitempty"`
	// Priority sets the dispatch priority (WithPriority).
	Priority int `json:"priority,omitempty"`
	// DeadlineMS bounds the job's lifetime, queue wait included, in
	// milliseconds from admission (WithDeadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Labels attaches caller metadata (WithLabels).
	Labels map[string]string `json:"labels,omitempty"`
	// Config analyzes under a full per-job configuration override
	// (WithConfigOverride), validated at admission.
	Config *core.Config `json:"config,omitempty"`
}

// SubmitResponse is the 202 body of POST /v1/analyses.
type SubmitResponse struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler returns the daemon's HTTP API over svc:
//
//	POST   /v1/analyses             submit (202 + job id; 429 when the queue is full)
//	GET    /v1/analyses/{id}        status + live stage progress
//	GET    /v1/analyses/{id}/report finished report (409 until done)
//	DELETE /v1/analyses/{id}        cancel (202)
//	GET    /healthz                 liveness + queue/worker gauges
//
// Every response is JSON. The handler is safe for concurrent use.
func NewHandler(svc *Service) http.Handler {
	h := &httpAPI{svc: svc}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyses", h.submit)
	mux.HandleFunc("GET /v1/analyses/{id}", h.status)
	mux.HandleFunc("GET /v1/analyses/{id}/report", h.report)
	mux.HandleFunc("DELETE /v1/analyses/{id}", h.cancel)
	mux.HandleFunc("GET /healthz", h.health)
	return mux
}

type httpAPI struct {
	svc *Service
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (h *httpAPI) submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}

	var (
		log *dataset.Log
		err error
	)
	switch {
	case req.Log != nil && req.Synthetic != nil:
		writeError(w, http.StatusBadRequest, errors.New("pass either log or synthetic, not both"))
		return
	case req.Log != nil:
		log = req.Log
	case req.Synthetic != nil:
		cfg := *req.Synthetic
		if req.Seed != nil {
			cfg.Seed = *req.Seed
		}
		log, err = synth.Generate(cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("generating synthetic log: %w", err))
			return
		}
	default:
		writeError(w, http.StatusBadRequest, errors.New("pass a log or a synthetic generator config"))
		return
	}
	if req.Name != "" {
		log.Name = req.Name
	}

	var opts []Option
	if req.Priority != 0 {
		opts = append(opts, WithPriority(req.Priority))
	}
	if req.DeadlineMS > 0 {
		opts = append(opts, WithDeadline(time.Now().Add(time.Duration(req.DeadlineMS)*time.Millisecond)))
	}
	if len(req.Labels) > 0 {
		opts = append(opts, WithLabels(req.Labels))
	}
	if req.Config != nil {
		opts = append(opts, WithConfigOverride(*req.Config))
	}
	if req.Seed != nil {
		opts = append(opts, WithSeed(*req.Seed))
	}

	job, err := h.svc.Submit(r.Context(), log, opts...)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: job.ID(), Status: job.Status()})
}

func (h *httpAPI) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, ok := h.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return nil, false
	}
	return job, true
}

func (h *httpAPI) status(w http.ResponseWriter, r *http.Request) {
	job, ok := h.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.State())
}

func (h *httpAPI) report(w http.ResponseWriter, r *http.Request) {
	job, ok := h.lookup(w, r)
	if !ok {
		return
	}
	rep, done := job.Report()
	if !done {
		status := job.Status()
		if status.Terminal() {
			// Failed or cancelled: there is no report to serve.
			writeError(w, http.StatusConflict,
				fmt.Errorf("job %s is %s: %v", job.ID(), status, job.Err()))
			return
		}
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; report not ready", job.ID(), status))
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (h *httpAPI) cancel(w http.ResponseWriter, r *http.Request) {
	job, ok := h.lookup(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: job.ID(), Status: job.Status()})
}

func (h *httpAPI) health(w http.ResponseWriter, r *http.Request) {
	stats := h.svc.Stats()
	code := http.StatusOK
	if stats.Closed {
		code = http.StatusServiceUnavailable
	}
	state := "ok"
	if stats.Closed {
		state = "draining"
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
		Stats
	}{Status: state, Stats: stats})
}
