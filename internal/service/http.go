package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/kdb"
	"adahealth/internal/knowledge"
	"adahealth/internal/obs"
	"adahealth/internal/synth"
)

// SubmitRequest is the JSON body of POST /v1/analyses. Exactly one of
// Log (an inline examination log) or Synthetic (a generator
// configuration for the built-in synthetic diabetic-log generator)
// selects the data source.
type SubmitRequest struct {
	// Name overrides the log's dataset name.
	Name string `json:"name,omitempty"`
	// Log is an inline examination log (exams, patients, records).
	Log *dataset.Log `json:"log,omitempty"`
	// Synthetic generates the log server-side (tests, demos, load).
	Synthetic *synth.Config `json:"synthetic,omitempty"`
	// Seed overrides the analysis seed (WithSeed).
	Seed *int64 `json:"seed,omitempty"`
	// Priority sets the dispatch priority (WithPriority).
	Priority int `json:"priority,omitempty"`
	// DeadlineMS bounds the job's lifetime, queue wait included, in
	// milliseconds from admission (WithDeadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Labels attaches caller metadata (WithLabels).
	Labels map[string]string `json:"labels,omitempty"`
	// Config analyzes under a full per-job configuration override
	// (WithConfigOverride), validated at admission.
	Config *core.Config `json:"config,omitempty"`
}

// SubmitResponse is the 202 body of POST /v1/analyses.
type SubmitResponse struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler returns the daemon's HTTP API over svc:
//
//	POST   /v1/analyses              submit (202 + job id; 429 when the queue is full)
//	GET    /v1/analyses/{id}         status + live stage progress
//	GET    /v1/analyses/{id}/report  finished report (409 until done)
//	GET    /v1/analyses/{id}/events  live progress stream (Server-Sent Events)
//	DELETE /v1/analyses/{id}         cancel (202)
//	GET    /v1/knowledge             K-DB knowledge items (?dataset=, ?metric=, ?limit=)
//	GET    /v1/datasets/{id}/similar statistically similar datasets (?limit=)
//	GET    /healthz                  liveness + queue/worker/K-DB gauges
//
// Every response is JSON except the SSE stream. The handler is safe
// for concurrent use.
func NewHandler(svc *Service) http.Handler {
	return NewHandlerOptions(svc, HandlerOptions{})
}

// HandlerOptions configures the optional behaviours of the daemon API.
type HandlerOptions struct {
	// ReadFallback is the base URL of a warm standby (a replication
	// follower, cmd/adahealthd -follow). When set and the K-DB breaker
	// is degraded (read-only or offline), the knowledge read endpoints
	// — GET /v1/knowledge and GET /v1/datasets/{id}/similar — proxy to
	// the standby instead of failing, with StaleHeader naming the
	// leader's mode so callers know the answer may trail the leader's
	// durable state. A proxy failure falls back to the local attempt.
	ReadFallback string
}

// StaleHeader marks a knowledge response served via the degraded read
// fallback; its value is the leader K-DB's breaker mode at proxy time.
const StaleHeader = "X-Adahealth-Stale"

// NewHandlerOptions is NewHandler with explicit options.
func NewHandlerOptions(svc *Service, opts HandlerOptions) http.Handler {
	_, mux := newAPI(svc, opts)
	return mux
}

func newAPI(svc *Service, opts HandlerOptions) (*httpAPI, http.Handler) {
	h := &httpAPI{
		svc:      svc,
		fallback: opts.ReadFallback,
		proxy:    &http.Client{Timeout: 10 * time.Second},
		mode:     func() kdb.Mode { return svc.Engine().KDB().Health().Mode },
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyses", h.submit)
	mux.HandleFunc("GET /v1/analyses/{id}", h.status)
	mux.HandleFunc("GET /v1/analyses/{id}/report", h.report)
	mux.HandleFunc("GET /v1/analyses/{id}/events", h.events)
	mux.HandleFunc("GET /v1/analyses/{id}/trace.html", h.traceHTML)
	mux.HandleFunc("DELETE /v1/analyses/{id}", h.cancel)
	mux.HandleFunc("GET /v1/knowledge", h.knowledge)
	mux.HandleFunc("GET /v1/datasets/{id}/similar", h.similar)
	mux.HandleFunc("GET /healthz", h.health)
	mux.Handle("GET /metrics", obs.Default().Handler())
	return h, mux
}

type httpAPI struct {
	svc      *Service
	fallback string
	proxy    *http.Client
	// mode probes the K-DB breaker; a func so tests can force a
	// degraded mode without breaking a real store.
	mode func() kdb.Mode
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (h *httpAPI) submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}

	var (
		log *dataset.Log
		err error
	)
	switch {
	case req.Log != nil && req.Synthetic != nil:
		writeError(w, http.StatusBadRequest, errors.New("pass either log or synthetic, not both"))
		return
	case req.Log != nil:
		log = req.Log
	case req.Synthetic != nil:
		cfg := *req.Synthetic
		if req.Seed != nil {
			cfg.Seed = *req.Seed
		}
		log, err = synth.Generate(cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("generating synthetic log: %w", err))
			return
		}
	default:
		writeError(w, http.StatusBadRequest, errors.New("pass a log or a synthetic generator config"))
		return
	}
	if req.Name != "" {
		log.Name = req.Name
	}

	var opts []Option
	if req.Priority != 0 {
		opts = append(opts, WithPriority(req.Priority))
	}
	if req.DeadlineMS > 0 {
		opts = append(opts, WithDeadline(time.Now().Add(time.Duration(req.DeadlineMS)*time.Millisecond)))
	}
	if len(req.Labels) > 0 {
		opts = append(opts, WithLabels(req.Labels))
	}
	if req.Config != nil {
		opts = append(opts, WithConfigOverride(*req.Config))
	}
	if req.Seed != nil {
		opts = append(opts, WithSeed(*req.Seed))
	}

	job, err := h.svc.Submit(r.Context(), log, opts...)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed), errors.Is(err, ErrDegraded):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: job.ID(), Status: job.Status()})
}

func (h *httpAPI) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, ok := h.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return nil, false
	}
	return job, true
}

func (h *httpAPI) status(w http.ResponseWriter, r *http.Request) {
	job, ok := h.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.State())
}

func (h *httpAPI) report(w http.ResponseWriter, r *http.Request) {
	job, ok := h.lookup(w, r)
	if !ok {
		return
	}
	rep, done := job.Report()
	if !done {
		status := job.Status()
		if status.Terminal() {
			// Failed or cancelled: there is no report to serve.
			writeError(w, http.StatusConflict,
				fmt.Errorf("job %s is %s: %v", job.ID(), status, job.Err()))
			return
		}
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; report not ready", job.ID(), status))
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// traceHTML renders a finished job's stage schedule as the HTML Gantt
// view — the same TraceDump the JSON status embeds, drawn instead of
// dumped. 409 until the report exists, mirroring the report endpoint.
func (h *httpAPI) traceHTML(w http.ResponseWriter, r *http.Request) {
	job, ok := h.lookup(w, r)
	if !ok {
		return
	}
	rep, done := job.Report()
	if !done {
		status := job.Status()
		if status.Terminal() {
			writeError(w, http.StatusConflict,
				fmt.Errorf("job %s is %s: %v", job.ID(), status, job.Err()))
			return
		}
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; trace not ready", job.ID(), status))
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = WriteTraceHTML(w, NewTraceDump(rep))
}

func (h *httpAPI) cancel(w http.ResponseWriter, r *http.Request) {
	job, ok := h.lookup(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: job.ID(), Status: job.Status()})
}

// events streams a job's progress as Server-Sent Events: every event
// emitted so far replays first, live events follow, and the stream
// closes after the terminal event — so `curl -N .../events` follows an
// analysis to completion and then returns (the ROADMAP's poll-only gap
// closed). Each SSE message is one StageEvent as `data: {json}`.
func (h *httpAPI) events(w http.ResponseWriter, r *http.Request) {
	job, ok := h.lookup(w, r)
	if !ok {
		return
	}
	ch, cancel := job.Subscribe()
	defer cancel()
	ServeSSE(w, r, ch)
}

// sseKeepalive is how long an SSE stream may sit idle before a comment
// line keeps it alive (a var so tests can tighten it).
var sseKeepalive = 15 * time.Second

// ServeSSE streams a channel of JSON-encodable events as Server-Sent
// Events (`data: {json}\n\n` per event) until the channel closes or
// the client disconnects. It is the one SSE loop shared by the job
// events endpoint here and the live-dataset events endpoint in
// internal/stream; delivery inherits the channel's semantics (a
// subscription that replays history first streams that history first).
// An idle stream emits a `: ping` comment every sseKeepalive so
// proxies and load balancers with idle-connection timeouts do not cut
// a long-running analysis's stream between events (comments are
// ignored by SSE clients per the EventSource spec).
func ServeSSE[E any](w http.ResponseWriter, r *http.Request, ch <-chan E) {
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()

	enc := json.NewEncoder(w)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // terminal event delivered; end the stream
			}
			if _, err := fmt.Fprint(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(ev); err != nil { // Encode appends \n
				return
			}
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return
			}
			flusher.Flush()
			keepalive.Reset(sseKeepalive)
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return // client went away
		}
	}
}

// knowledgeResponse is the body of GET /v1/knowledge.
type knowledgeResponse struct {
	Dataset string           `json:"dataset,omitempty"`
	Metric  string           `json:"metric,omitempty"`
	Count   int              `json:"count"`
	Items   []knowledge.Item `json:"items"`
}

// knowledge serves K-DB knowledge items: all items of ?dataset= (every
// dataset when omitted), optionally ranked by ?metric= (support,
// confidence, lift, size, ...; items lacking the metric are excluded)
// and truncated to ?limit= (default 50). On a degraded K-DB the
// request routes to the read fallback when one is configured.
func (h *httpAPI) knowledge(w http.ResponseWriter, r *http.Request) {
	if h.proxyDegraded(w, r) {
		return
	}
	serveKnowledge(w, r, h.svc.Engine().KDB())
}

func serveKnowledge(w http.ResponseWriter, r *http.Request, kb *kdb.KDB) {
	q := r.URL.Query()
	limit, err := intParam(q.Get("limit"), 50)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var items []knowledge.Item
	if metric := q.Get("metric"); metric != "" {
		items, err = kb.TopKnowledge(q.Get("dataset"), metric, limit)
	} else {
		items, err = kb.KnowledgeItems(q.Get("dataset"))
		if limit > 0 && len(items) > limit {
			items = items[:limit]
		}
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if items == nil {
		items = []knowledge.Item{}
	}
	writeJSON(w, http.StatusOK, knowledgeResponse{
		Dataset: q.Get("dataset"),
		Metric:  q.Get("metric"),
		Count:   len(items),
		Items:   items,
	})
}

// proxyDegraded reroutes a knowledge read to the configured fallback
// when the local K-DB breaker is degraded. It reports whether the
// response was served; a proxy failure returns false so the caller
// falls through to the local attempt (the local store may still answer
// — read-only mode serves reads).
func (h *httpAPI) proxyDegraded(w http.ResponseWriter, r *http.Request) bool {
	if h.fallback == "" {
		return false
	}
	mode := h.mode()
	if mode == kdb.ModeHealthy || mode == kdb.ModeFollower {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		strings.TrimSuffix(h.fallback, "/")+r.URL.RequestURI(), nil)
	if err != nil {
		return false
	}
	resp, err := h.proxy.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set(StaleHeader, string(mode))
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// NewKnowledgeHandler serves only the K-DB read endpoints — GET
// /v1/knowledge and GET /v1/datasets/{id}/similar — straight from kb.
// It is the read surface a replication follower exposes
// (internal/repl.NewFollowerHandler), identical in shape to the
// leader's endpoints so the degraded read routing can proxy verbatim.
func NewKnowledgeHandler(kb *kdb.KDB) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/knowledge", func(w http.ResponseWriter, r *http.Request) {
		serveKnowledge(w, r, kb)
	})
	mux.HandleFunc("GET /v1/datasets/{id}/similar", func(w http.ResponseWriter, r *http.Request) {
		serveSimilar(w, r, kb)
	})
	return mux
}

// similarResponse is the body of GET /v1/datasets/{id}/similar.
type similarResponse struct {
	Dataset string                  `json:"dataset"`
	Similar []kdb.DatasetSimilarity `json:"similar"`
}

// similar ranks the K-DB's other datasets by descriptor similarity to
// {id} — the recall stage's retrieval path exposed for navigation
// ("which of our historical cohorts does this one resemble?"). On a
// degraded K-DB the request routes to the read fallback when one is
// configured.
func (h *httpAPI) similar(w http.ResponseWriter, r *http.Request) {
	if h.proxyDegraded(w, r) {
		return
	}
	serveSimilar(w, r, h.svc.Engine().KDB())
}

func serveSimilar(w http.ResponseWriter, r *http.Request, kb *kdb.KDB) {
	name := r.PathValue("id")
	limit, err := intParam(r.URL.Query().Get("limit"), 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	desc, _, ok := kb.LatestDescriptor(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no descriptor stored for dataset %q", name))
		return
	}
	hits, err := kb.SimilarDatasets(desc, "", 0)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// The dataset always matches itself; the endpoint answers "which
	// other datasets", so drop it.
	out := make([]kdb.DatasetSimilarity, 0, len(hits))
	for _, hit := range hits {
		if hit.Dataset == name {
			continue
		}
		out = append(out, hit)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, similarResponse{Dataset: name, Similar: out})
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad limit %q", s)
	}
	return n, nil
}

// health serves GET /healthz: ok, degraded (still 200 — the process
// serves, load balancers must not kill a pod that is merely shedding
// durability), or failing (503, stop routing here). Reasons name each
// degrading condition; the queue/worker/K-DB gauges ride along.
func (h *httpAPI) health(w http.ResponseWriter, r *http.Request) {
	health := h.svc.Health()
	code := http.StatusOK
	if health.Status == HealthFailing {
		code = http.StatusServiceUnavailable
	}
	kb := h.svc.Engine().KDB()
	writeJSON(w, code, struct {
		Health
		Stats
		// KDBCounts is the per-collection document count and
		// KDBWALBytes the un-compacted write-ahead-log size — the
		// persistence layer's health gauges.
		KDBCounts   map[string]int `json:"kdb_counts"`
		KDBWALBytes int64          `json:"kdb_wal_bytes"`
		// Build identifies the binary; UptimeSeconds its age.
		Build         BuildInfo `json:"build"`
		UptimeSeconds float64   `json:"uptime_seconds"`
	}{Health: health, Stats: h.svc.Stats(), KDBCounts: kb.Counts(), KDBWALBytes: kb.Store().WALSize(),
		Build: Build(), UptimeSeconds: UptimeSeconds()})
}
