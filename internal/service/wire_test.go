package service

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"adahealth/internal/core"
	"adahealth/internal/kdb"
)

// TestJobStateRetries: the status wire form totals the scheduler's
// stage re-runs (attempts−1 per trace) so the load harness can see how
// much of a job's latency went to retry/backoff.
func TestJobStateRetries(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	svc.runJob = func(j *Job) (*core.Report, error) {
		return &core.Report{Stages: []kdb.StageTrace{
			{Stage: "sweep", Attempts: 3},    // 2 retries
			{Stage: "cluster", Attempts: 1},  // clean run
			{Stage: "patterns", Attempts: 0}, // legacy trace without the field
		}}, nil
	}

	j, err := svc.Submit(context.Background(), testLog(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := j.State()
	if st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
	buf, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"retries": 2`) && !strings.Contains(string(buf), `"retries":2`) {
		t.Errorf("status JSON missing retries field: %s", buf)
	}
}

// TestJobStateRetriesOmittedWhenClean: a retry-free job's status JSON
// omits the field entirely (omitempty) rather than reporting zero.
func TestJobStateRetriesOmittedWhenClean(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	svc.runJob = func(j *Job) (*core.Report, error) {
		return &core.Report{Stages: []kdb.StageTrace{{Stage: "sweep", Attempts: 1}}}, nil
	}

	j, err := svc.Submit(context.Background(), testLog(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := j.State(); st.Retries != 0 {
		t.Errorf("Retries = %d, want 0", st.Retries)
	}
	buf, err := json.Marshal(j.State())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(buf), "retries") {
		t.Errorf("clean job's status JSON carries retries: %s", buf)
	}
}
