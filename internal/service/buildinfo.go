package service

import (
	"runtime/debug"
	"sync"
	"time"
)

// BuildInfo identifies the running binary on /healthz (leader and
// follower alike): the module version, the VCS commit the binary was
// built from, and the Go toolchain. Fields are best-effort — a
// `go run` or test binary may carry only the Go version.
type BuildInfo struct {
	Version  string `json:"version,omitempty"`
	Commit   string `json:"commit,omitempty"`
	Modified bool   `json:"dirty,omitempty"`
	Go       string `json:"go"`
}

var processStart = time.Now()

var readBuild = sync.OnceValue(func() BuildInfo {
	var b BuildInfo
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Go = info.GoVersion
	if v := info.Main.Version; v != "" && v != "(devel)" {
		b.Version = v
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Commit = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
})

// Build reports the binary's build identity (cached after first read).
func Build() BuildInfo { return readBuild() }

// UptimeSeconds reports seconds since process start (strictly, since
// this package was initialized — the same thing for any real daemon).
func UptimeSeconds() float64 { return time.Since(processStart).Seconds() }
