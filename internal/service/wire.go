package service

import (
	"encoding/json"
	"io"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/kdb"
)

// TraceDump is the stage-schedule encoding shared by the daemon's
// status endpoint and `adahealth -trace out.json`: the per-stage
// [start, end) intervals of one analysis, ready for offline
// flame-style inspection of the DAG schedule (overlapping intervals
// are the stages that actually ran concurrently).
type TraceDump struct {
	Dataset          string           `json:"dataset"`
	StageConcurrency int              `json:"stage_concurrency"`
	Stages           []kdb.StageTrace `json:"stages"`
}

// NewTraceDump projects a report's execution telemetry.
func NewTraceDump(rep *core.Report) TraceDump {
	d := TraceDump{
		StageConcurrency: rep.StageConcurrency,
		Stages:           rep.Stages,
	}
	if len(rep.Stages) > 0 {
		d.Dataset = rep.Stages[0].Dataset
	}
	return d
}

// WriteTrace writes the indented JSON trace dump of one report.
func WriteTrace(w io.Writer, rep *core.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewTraceDump(rep))
}

// JobState is the wire form of one job's status — what
// GET /v1/analyses/{id} returns and what the CLI decodes.
type JobState struct {
	ID         string            `json:"id"`
	Status     Status            `json:"status"`
	Priority   int               `json:"priority,omitempty"`
	Labels     map[string]string `json:"labels,omitempty"`
	QueuedAt   time.Time         `json:"queued_at"`
	StartedAt  *time.Time        `json:"started_at,omitempty"`
	FinishedAt *time.Time        `json:"finished_at,omitempty"`
	Error      string            `json:"error,omitempty"`
	// Events is the full progress history (lifecycle transitions and
	// per-stage start/finish), in emission order.
	Events []StageEvent `json:"events"`
	// Trace carries the finished analysis's stage schedule in the same
	// encoding `adahealth -trace` dumps; nil until the job is done.
	Trace *TraceDump `json:"trace,omitempty"`
	// Retries totals the stage re-runs the scheduler's transient-retry
	// policy performed across the analysis (the sum of attempts−1 over
	// the stage traces) — the load-harness gauge for how much of a
	// job's latency went to retry/backoff. 0 until the job is done.
	Retries int `json:"retries,omitempty"`
}

// State snapshots a job into its wire form. All mutable fields come
// from one locked snapshot, so a job finishing mid-request can never
// yield a payload whose status contradicts its error or trace.
func (j *Job) State() JobState {
	snap := j.snapshot()
	st := JobState{
		ID:       j.ID(),
		Status:   snap.status,
		Priority: j.Priority(),
		Labels:   j.Labels(),
		QueuedAt: snap.queuedAt,
		Events:   snap.progress,
	}
	if !snap.startedAt.IsZero() {
		started := snap.startedAt
		st.StartedAt = &started
	}
	if !snap.finish.IsZero() {
		finished := snap.finish
		st.FinishedAt = &finished
	}
	if snap.err != nil {
		st.Error = snap.err.Error()
	}
	if snap.report != nil {
		dump := NewTraceDump(snap.report)
		st.Trace = &dump
		for _, tr := range snap.report.Stages {
			if tr.Attempts > 1 {
				st.Retries += tr.Attempts - 1
			}
		}
	}
	return st
}
