package service

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"time"

	"adahealth/internal/kdb"
)

// WriteTraceHTML renders a TraceDump — the same stage-schedule
// encoding the JSON status serves — as a self-contained HTML Gantt /
// flame view: one row per stage in start order on a shared time axis
// (inline SVG, no external assets), so overlapping bars are the DAG
// stages that actually ran concurrently, and stages the scheduler's
// transient-retry policy re-ran are highlighted with their attempt
// count. GET /v1/analyses/{id}/trace.html serves it for finished jobs;
// `adahealth -trace-html` writes the identical document offline.
func WriteTraceHTML(w io.Writer, d TraceDump) error {
	return traceTemplate.Execute(w, newTraceView(d))
}

// Layout constants of the SVG (CSS pixels).
const (
	traceChartW  = 760.0 // bar area width
	traceLabelW  = 190.0 // stage-name gutter
	traceRowH    = 26.0
	traceAxisH   = 26.0
	traceBarPad  = 5.0
	traceMinBarW = 2.0 // a microsecond stage still gets a visible sliver
)

// traceBar is one stage row, positioned in final SVG coordinates so
// the template stays arithmetic-free.
type traceBar struct {
	Stage    string
	X, Y, W  float64
	TextX    float64
	TextY    float64
	Inside   bool // duration label fits inside the bar
	Duration string
	Attempts int
	Retried  bool
	Title    string // hover tooltip
}

// traceTick is one time-axis gridline.
type traceTick struct {
	X     float64
	Label string
}

type traceView struct {
	Dataset     string
	Concurrency int
	StageCount  int
	Retries     int
	Total       string
	Sequential  bool
	Empty       bool
	SVGWidth    float64
	SVGHeight   float64
	AxisY       float64
	GridBottom  float64
	Bars        []traceBar
	Ticks       []traceTick
}

func newTraceView(d TraceDump) traceView {
	v := traceView{
		Dataset:     d.Dataset,
		Concurrency: d.StageConcurrency,
		StageCount:  len(d.Stages),
		SVGWidth:    traceLabelW + traceChartW + 20,
	}
	if len(d.Stages) == 0 {
		v.Empty = true
		v.SVGHeight = traceAxisH + traceRowH
		return v
	}

	stages := append([]kdb.StageTrace(nil), d.Stages...)
	sort.SliceStable(stages, func(i, j int) bool {
		if !stages[i].Start.Equal(stages[j].Start) {
			return stages[i].Start.Before(stages[j].Start)
		}
		return stages[i].End.Before(stages[j].End)
	})

	min, max := stages[0].Start, stages[0].End
	for _, tr := range stages {
		if tr.Start.Before(min) {
			min = tr.Start
		}
		if tr.End.After(max) {
			max = tr.End
		}
		if tr.Attempts > 1 {
			v.Retries += tr.Attempts - 1
		}
		if tr.Sequential {
			v.Sequential = true
		}
	}
	span := max.Sub(min)
	if span <= 0 {
		span = time.Nanosecond
	}
	v.Total = formatDur(span)
	scale := traceChartW / float64(span)

	v.AxisY = traceAxisH - 8
	v.GridBottom = traceAxisH + float64(len(stages))*traceRowH
	v.SVGHeight = v.GridBottom + 10

	for i, tr := range stages {
		x := traceLabelW + float64(tr.Start.Sub(min))*scale
		w := float64(tr.End.Sub(tr.Start)) * scale
		if w < traceMinBarW {
			w = traceMinBarW
		}
		b := traceBar{
			Stage:    tr.Stage,
			X:        x,
			Y:        traceAxisH + float64(i)*traceRowH + traceBarPad,
			W:        w,
			TextY:    traceAxisH + float64(i)*traceRowH + traceRowH/2 + 4,
			Duration: formatDur(tr.End.Sub(tr.Start)),
			Attempts: tr.Attempts,
			Retried:  tr.Attempts > 1,
			Title: fmt.Sprintf("%s: %s, %d attempt(s), +%s after t0",
				tr.Stage, formatDur(tr.End.Sub(tr.Start)), tr.Attempts, formatDur(tr.Start.Sub(min))),
		}
		if b.Retried {
			b.Duration += fmt.Sprintf("  ×%d", tr.Attempts)
		}
		// Wide bars carry their duration inside; narrow ones to the
		// right (or to the left at the chart's edge).
		switch {
		case w >= 90:
			b.Inside, b.TextX = true, x+6
		case x+w+70 <= traceLabelW+traceChartW:
			b.TextX = x + w + 5
		default:
			b.TextX = x - 5
		}
		v.Bars = append(v.Bars, b)
	}

	for i := 0; i <= 8; i++ {
		frac := float64(i) / 8
		v.Ticks = append(v.Ticks, traceTick{
			X:     traceLabelW + frac*traceChartW,
			Label: formatDur(time.Duration(frac * float64(span))),
		})
	}
	return v
}

func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

var traceTemplate = template.Must(template.New("trace").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>adahealth stage trace — {{.Dataset}}</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 24px; color: #1b1f24; }
h1 { font-size: 18px; margin: 0 0 4px; }
.meta { color: #57606a; margin-bottom: 16px; }
.meta b { color: #1b1f24; }
svg { background: #fff; border: 1px solid #d0d7de; border-radius: 6px; }
.stage-label { font: 12px system-ui, sans-serif; fill: #1b1f24; }
.dur { font: 11px system-ui, sans-serif; fill: #57606a; }
.dur.inside { fill: #fff; }
.tick-label { font: 10px system-ui, sans-serif; fill: #57606a; }
.grid { stroke: #eaeef2; stroke-width: 1; }
.bar { fill: #4e79a7; }
.bar.retried { fill: #e15759; }
.legend { margin-top: 10px; color: #57606a; font-size: 12px; }
.swatch { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 4px; }
</style>
</head>
<body>
<h1>Stage schedule — {{.Dataset}}</h1>
<div class="meta">
  <b>{{.StageCount}}</b> stages · total wall <b>{{.Total}}</b> ·
  stage concurrency <b>{{.Concurrency}}</b> ·
  retries <b>{{.Retries}}</b>{{if .Sequential}} · <b>sequential run</b>{{end}}
</div>
{{if .Empty}}
<p>No stage traces were recorded for this analysis.</p>
{{else}}
<svg width="{{printf "%.0f" .SVGWidth}}" height="{{printf "%.0f" .SVGHeight}}"
     viewBox="0 0 {{printf "%.0f" .SVGWidth}} {{printf "%.0f" .SVGHeight}}" role="img"
     aria-label="Gantt chart of analysis stages">
{{range .Ticks}}  <line class="grid" x1="{{printf "%.1f" .X}}" y1="{{$.AxisY}}" x2="{{printf "%.1f" .X}}" y2="{{printf "%.1f" $.GridBottom}}"/>
  <text class="tick-label" x="{{printf "%.1f" .X}}" y="{{printf "%.1f" $.AxisY}}" text-anchor="middle">{{.Label}}</text>
{{end}}
{{range .Bars}}  <text class="stage-label" x="8" y="{{printf "%.1f" .TextY}}">{{.Stage}}</text>
  <rect class="bar{{if .Retried}} retried{{end}}" x="{{printf "%.1f" .X}}" y="{{printf "%.1f" .Y}}" width="{{printf "%.1f" .W}}" height="16" rx="2"><title>{{.Title}}</title></rect>
  <text class="dur{{if .Inside}} inside{{end}}" x="{{printf "%.1f" .TextX}}" y="{{printf "%.1f" .TextY}}"{{if not .Inside}}{{if lt .TextX .X}} text-anchor="end"{{end}}{{end}}>{{.Duration}}</text>
{{end}}</svg>
<div class="legend">
  <span class="swatch" style="background:#4e79a7"></span>stage execution interval
  &nbsp;&nbsp;<span class="swatch" style="background:#e15759"></span>retried stage (interval spans every attempt)
  &nbsp;&nbsp;— overlapping rows ran concurrently on the stage pool
</div>
{{end}}
</body>
</html>
`))
