package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/docstore"
	"adahealth/internal/faultfs"
	"adahealth/internal/kdb"
	"adahealth/internal/stats"
)

// chaosService builds a service over a fault-injectable persistent
// K-DB: the injector sits under the docstore, a tiny WAL budget makes
// every service-level flush compact (so snapshot faults are reachable),
// and the caller owns both handles for reopen-and-verify scenarios.
func chaosService(t *testing.T, ffs *faultfs.Injector, dir string, workers, depth int) (*Service, *kdb.KDB) {
	t.Helper()
	k, err := kdb.OpenStore(docstore.Options{Dir: dir, FS: ffs, MaxWALBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewWithKDB(fastConfig(1), k)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewWithEngine(engine, Config{Workers: workers, QueueDepth: depth})
	t.Cleanup(func() {
		_ = svc.Close()
		_ = k.Close()
	})
	return svc, k
}

// waitHealth polls until the service's health gauge reaches want: the
// post-job flush is debounced onto a background goroutine, so flush
// outcomes surface in Health shortly after job completion rather than
// synchronously with it.
func waitHealth(t *testing.T, svc *Service, want string) Health {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := svc.Health()
		if h.Status == want {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never reached %s: %+v", want, h)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitAll(t *testing.T, jobs []*Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil && ctx.Err() != nil {
			t.Fatalf("job %s wedged: %v", j.ID(), err)
		}
	}
}

// TestChaosSnapshotFaultDegradesAndRecovers: a disk that refuses
// snapshot writes fails every service-level flush, but jobs keep
// succeeding (their acks are on the intact WAL), health degrades with
// a flush reason, and once the disk heals the next completion's flush
// restores ok.
func TestChaosSnapshotFaultDegradesAndRecovers(t *testing.T) {
	ffs := faultfs.New(nil, 1)
	svc, _ := chaosService(t, ffs, t.TempDir(), 2, 8)

	if h := svc.Health(); h.Status != HealthOK {
		t.Fatalf("fresh service health = %+v", h)
	}
	ffs.Inject(faultfs.Rule{Op: faultfs.OpWrite, Path: ".json.tmp", Err: faultfs.ENOSPC()})

	// Two failing flushes: below the breaker threshold (the store stays
	// healthy), but the service-level gauge must already degrade.
	var jobs []*Job
	for i := 0; i < 2; i++ {
		log := testLog(t, int64(i+1))
		log.Name = fmt.Sprintf("snap-%d", i)
		j, err := svc.Submit(context.Background(), log)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	waitAll(t, jobs)
	for _, j := range jobs {
		if j.Status() != StatusDone {
			t.Fatalf("job %s = %s (%v), want done despite flush faults", j.ID(), j.Status(), j.Err())
		}
	}
	h := waitHealth(t, svc, HealthDegraded)
	if h.LastFlushError == "" {
		t.Fatalf("health under snapshot faults = %+v, want a flush error", h)
	}

	// Heal the disk: the next job's flush succeeds and health recovers.
	ffs.Clear()
	log := testLog(t, 9)
	log.Name = "snap-heal"
	j, err := svc.Submit(context.Background(), log)
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, []*Job{j})
	if j.Status() != StatusDone {
		t.Fatalf("post-heal job = %s (%v)", j.Status(), j.Err())
	}
	waitHealth(t, svc, HealthOK)
}

// TestChaosWALFaultJobsSucceedDegraded: a broken WAL takes the K-DB
// offline mid-service. Analyses still complete — every K-DB write is
// dropped and counted, recall falls back cold — health reports the
// offline store, and the durable prefix from before the fault survives
// a clean reopen.
func TestChaosWALFaultJobsSucceedDegraded(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil, 1)
	svc, k := chaosService(t, ffs, dir, 2, 8)

	// A healthy job first: its knowledge is flushed and durable.
	pre := testLog(t, 1)
	pre.Name = "pre-fault"
	j, err := svc.Submit(context.Background(), pre)
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, []*Job{j})
	if j.Status() != StatusDone {
		t.Fatalf("healthy job = %s (%v)", j.Status(), j.Err())
	}

	ffs.Inject(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.log", Err: faultfs.ENOSPC()})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		log := testLog(t, int64(i+2))
		log.Name = fmt.Sprintf("wal-%d", i)
		jb, err := svc.Submit(context.Background(), log)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, jb)
	}
	waitAll(t, jobs)
	for _, jb := range jobs {
		if jb.Status() != StatusDone {
			t.Fatalf("job %s over broken WAL = %s (%v), want degraded success", jb.ID(), jb.Status(), jb.Err())
		}
		rep, _ := jb.Report()
		if rep.Degraded == nil || rep.Degraded.DroppedKDBWrites == 0 {
			t.Fatalf("job %s degradation = %+v, want dropped K-DB writes", jb.ID(), rep.Degraded)
		}
	}
	h := svc.Health()
	if h.Status != HealthDegraded || h.KDB.Mode != kdb.ModeOffline {
		t.Fatalf("health over broken WAL = %+v, want degraded/offline", h)
	}

	// The durable prefix survives: close everything, reopen the same
	// directory without faults.
	_ = svc.Close()
	_ = k.Close()
	k2, err := kdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	items, err := k2.KnowledgeItems("pre-fault")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Error("pre-fault knowledge lost across reopen")
	}
}

// TestChaosDegradedShedding: with the K-DB offline and the admission
// queue at least half full, Submit sheds with ErrDegraded; with
// headroom it keeps admitting, and SubmitWait never sheds.
func TestChaosDegradedShedding(t *testing.T) {
	ffs := faultfs.New(nil, 1)
	svc, k := chaosService(t, ffs, t.TempDir(), 1, 4)
	// Block the single worker so queued jobs accumulate.
	release := make(chan struct{})
	svc.runJob = func(j *Job) (*core.Report, error) {
		<-release
		return &core.Report{}, nil
	}
	defer close(release)

	// Break the store directly: one write over a failing WAL trips the
	// breaker offline.
	ffs.Inject(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.log", Err: faultfs.ENOSPC()})
	desc := stats.Descriptor{DatasetName: "shed", NumPatients: 1, NumRecords: 1}
	if _, err := k.StoreDescriptor(desc); err == nil {
		t.Fatal("write over broken WAL succeeded")
	}
	if k.Health().Mode != kdb.ModeOffline {
		t.Fatal("breaker did not trip offline")
	}

	// Job 1 dispatches (freeing its queue slot); while degraded with an
	// empty queue, admission continues.
	j1, err := svc.Submit(context.Background(), testLog(t, 1))
	if err != nil {
		t.Fatalf("degraded submit with empty queue = %v, want admit", err)
	}
	waitStatus(t, j1, StatusRunning)

	// Fill the queue to the shed threshold: (4+1)/2 = 2 held slots.
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(context.Background(), testLog(t, int64(i+2))); err != nil {
			t.Fatalf("degraded submit %d below threshold = %v, want admit", i, err)
		}
	}
	if _, err := svc.Submit(context.Background(), testLog(t, 5)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("saturated degraded submit = %v, want ErrDegraded", err)
	}
	// Blocking admission is exempt from shedding: SubmitWait admits
	// into the remaining queue headroom where Submit just shed.
	waitCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := svc.SubmitWait(waitCtx, testLog(t, 6)); err != nil {
		t.Fatalf("SubmitWait while degraded = %v, want admit", err)
	}
}

// TestChaosPanicIsolatedToJob: a panic escaping one job's execution
// fails that job with a stack-carrying error while the workers keep
// dispatching everything else.
func TestChaosPanicIsolatedToJob(t *testing.T) {
	svc, err := New(Config{Engine: fastConfig(1), Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	svc.runJob = func(j *Job) (*core.Report, error) {
		if j.Labels()["boom"] != "" {
			panic("chaos monkey")
		}
		return svc.defaultRun(j)
	}

	boom, err := svc.Submit(context.Background(), testLog(t, 1), WithLabels(map[string]string{"boom": "1"}))
	if err != nil {
		t.Fatal(err)
	}
	ok1, err := svc.Submit(context.Background(), testLog(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, []*Job{boom, ok1})

	if boom.Status() != StatusFailed {
		t.Fatalf("panicking job = %s, want failed", boom.Status())
	}
	var pe *core.PanicError
	if !errors.As(boom.Err(), &pe) || pe.Value != "chaos monkey" || len(pe.Stack) == 0 {
		t.Fatalf("panicking job err = %v, want stack-carrying *core.PanicError", boom.Err())
	}
	if ok1.Status() != StatusDone {
		t.Fatalf("sibling job = %s (%v), want done", ok1.Status(), ok1.Err())
	}

	// The daemon keeps serving after the panic.
	ok2, err := svc.Submit(context.Background(), testLog(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, []*Job{ok2})
	if ok2.Status() != StatusDone {
		t.Fatalf("post-panic job = %s (%v), want done", ok2.Status(), ok2.Err())
	}
}

// TestChaosSoak drives concurrent submissions through intermittent
// disk faults (slow fsyncs, probabilistic snapshot failures): every
// job must reach a terminal state, every analysis must succeed (the
// faults only ever hit soft paths), the service must recover to ok
// after the faults clear, and every acked write must survive a clean
// reopen.
func TestChaosSoak(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 6
	}
	dir := t.TempDir()
	ffs := faultfs.New(nil, 42)
	svc, k := chaosService(t, ffs, dir, 3, n)
	ffs.Inject(faultfs.Rule{Op: faultfs.OpWrite, Path: ".json.tmp", Prob: 0.5, Err: faultfs.ENOSPC()}).
		Inject(faultfs.Rule{Op: faultfs.OpSync, Prob: 0.3, Delay: 2 * time.Millisecond})

	var (
		mu   sync.Mutex
		jobs []*Job
		wg   sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			log := testLog(t, int64(i+1))
			log.Name = fmt.Sprintf("soak-%d", i)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			j, err := svc.SubmitWait(ctx, log)
			if err != nil {
				t.Errorf("soak submit %d: %v", i, err)
				return
			}
			mu.Lock()
			jobs = append(jobs, j)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	waitAll(t, jobs)
	if len(jobs) != n {
		t.Fatalf("admitted %d jobs, want %d", len(jobs), n)
	}
	// cleanNames are datasets whose jobs had every K-DB write acked: the
	// durability check below may only demand those (a write the breaker
	// refused was counted in Degraded, never acked, so "lost" is the
	// wrong word for it).
	var cleanNames []string
	for _, j := range jobs {
		if !j.Status().Terminal() {
			t.Fatalf("job %s never reached a terminal state: %s", j.ID(), j.Status())
		}
		if j.Status() != StatusDone {
			t.Fatalf("soak job %s = %s (%v), want done (faults are soft)", j.ID(), j.Status(), j.Err())
		}
		rep, _ := j.Report()
		if rep.Degraded == nil || rep.Degraded.DroppedKDBWrites == 0 {
			cleanNames = append(cleanNames, rep.Descriptor.DatasetName)
		}
	}

	// Faults gone: wait out the breaker cooldown (it may have tripped
	// read-only under the probabilistic snapshot failures), then one
	// more job whose flush probe heals everything.
	ffs.Clear()
	time.Sleep(2100 * time.Millisecond)
	log := testLog(t, 99)
	log.Name = "soak-heal"
	j, err := svc.SubmitWait(context.Background(), log)
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, []*Job{j})
	if j.Status() != StatusDone {
		t.Fatalf("heal job = %s (%v)", j.Status(), j.Err())
	}
	waitHealth(t, svc, HealthOK)

	// No lost acks: everything the jobs stored replays on a clean
	// reopen (faults only ever hit snapshot writes; the WAL held).
	_ = svc.Close()
	_ = k.Close()
	k2, err := kdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if len(cleanNames) == 0 {
		t.Log("every soak job had dropped writes; durability check vacuous this run")
	}
	for _, name := range cleanNames {
		items, err := k2.KnowledgeItems(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) == 0 {
			t.Errorf("dataset %s: acked knowledge lost across reopen", name)
		}
	}
}
