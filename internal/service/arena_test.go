package service

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"adahealth/internal/core"
)

// strippedReport drops the execution telemetry (stage timings,
// observed concurrency) and the recommendation closures — the only
// Report content allowed to vary between runs of the same job — so the
// rest compares with reflect.DeepEqual.
func strippedReport(rep *core.Report) core.Report {
	c := *rep
	c.Stages = nil
	c.StageConcurrency = 0
	c.Recommendations = nil
	return c
}

// TestServiceArenaReportsBitForBit runs the same job sequence through
// two single-worker services — one with the cross-job arena, one with
// it disabled — and requires identical Reports job for job. Serial
// workers keep the two engines' K-DB evolution in lockstep, so any
// difference is the arena's fault.
func TestServiceArenaReportsBitForBit(t *testing.T) {
	seeds := []int64{1, 7, 42, 7} // repeated log exercises fully warm slabs
	run := func(useArena bool) []core.Report {
		svc, err := New(Config{Engine: fastConfig(1), Workers: 1, QueueDepth: 8})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = svc.Close() })
		if !useArena {
			svc.arena = nil
		}
		reports := make([]core.Report, len(seeds))
		for i, seed := range seeds {
			j, err := svc.Submit(context.Background(), testLog(t, seed))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := j.Wait(context.Background())
			if err != nil {
				t.Fatalf("job %d (seed %d, arena=%v): %v", i, seed, useArena, err)
			}
			reports[i] = strippedReport(rep)
		}
		return reports
	}

	plain := run(false)
	pooled := run(true)
	for i := range seeds {
		if !reflect.DeepEqual(plain[i], pooled[i]) {
			t.Errorf("job %d (seed %d): arena-backed report differs from arena-less run", i, seeds[i])
		}
	}
}

// TestServiceArenaConcurrentSoak hammers one shared arena from
// concurrent worker slots under the race detector: every job must
// complete successfully with a non-nil report while slabs are checked
// out and returned across overlapping sweeps.
func TestServiceArenaConcurrentSoak(t *testing.T) {
	n := 10
	if testing.Short() {
		n = 5
	}
	svc, err := New(Config{Engine: fastConfig(1), Workers: 3, QueueDepth: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })

	var wg sync.WaitGroup
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		log := testLog(t, int64(i%4+1))
		log.Name = fmt.Sprintf("arena-soak-%d", i)
		j, err := svc.SubmitWait(context.Background(), log)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
		wg.Add(1)
		go func(j *Job) {
			defer wg.Done()
			_, _ = j.Wait(context.Background())
		}(j)
	}
	wg.Wait()
	for i, j := range jobs {
		if rep, ok := j.Report(); j.Status() != StatusDone || !ok || rep == nil {
			t.Errorf("job %d: status %s (err %v), want done with report", i, j.Status(), j.Err())
		}
	}
}
