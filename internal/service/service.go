// Package service layers the asynchronous analysis-as-a-service API of
// the paper's pitch over one shared core.Engine: callers submit
// examination logs and get back Job handles instead of blocking for
// the whole DAG run. A Service owns a bounded admission queue with
// backpressure (Submit fast-rejects with ErrQueueFull, SubmitWait
// blocks under a context), a fixed set of worker slots dispatching the
// highest-priority queued job first, and one stage pool shared by
// every running job so hospital-wide traffic becomes an admission and
// scheduling problem rather than a goroutine-per-caller free-for-all.
//
// Jobs expose Status, Wait, Cancel and a live Events stream fed from
// the scheduler's stage trace points. cmd/adahealthd serves this API
// over HTTP (see NewHandler).
package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"adahealth/internal/core"
	"adahealth/internal/dataset"
	"adahealth/internal/kdb"
	"adahealth/internal/optimize"
)

var (
	// ErrQueueFull is Submit's fast-reject: the admission queue is at
	// capacity. The HTTP layer maps it to 429; callers that prefer
	// blocking backpressure use SubmitWait.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrClosed rejects submissions to a service that is shutting
	// down.
	ErrClosed = errors.New("service: closed")
	// ErrDegraded is Submit's load-shedding reject: the K-DB is
	// unhealthy (read-only or offline) AND the admission queue is at
	// least half full. A degraded service keeps serving the work it
	// already accepted and keeps admitting while it has headroom, but
	// stops piling new load on top of a struggling store. The HTTP
	// layer maps it to 503; SubmitWait is exempt (blocking callers
	// asked for backpressure, not rejection).
	ErrDegraded = errors.New("service: degraded — K-DB unhealthy and queue saturated")
)

// Config configures a Service.
type Config struct {
	// Engine is the shared engine's configuration (validated by
	// core.New; bad values reject service construction).
	Engine core.Config
	// Workers bounds how many jobs run concurrently. Each running job
	// schedules its stages on the one shared stage pool, so Workers
	// trades per-job latency against cross-job throughput rather than
	// adding compute. <= 0 defaults to 4.
	Workers int
	// QueueDepth bounds how many admitted jobs may wait for a worker;
	// beyond it Submit returns ErrQueueFull. <= 0 defaults to 64.
	QueueDepth int
	// KeepJobs bounds how many terminal jobs stay resolvable by ID
	// (oldest evicted first). <= 0 defaults to 1024.
	KeepJobs int
	// FlushDelay is the debounce window of the background K-DB flusher:
	// after a job completion requests a flush, the flusher waits this
	// long absorbing further requests, then compacts once for the whole
	// burst — so N near-simultaneous completions cost one snapshot
	// write instead of N serialized ones. Durability is unaffected:
	// every acked write is already on the WAL, the flush is only the
	// compaction accelerator. <= 0 defaults to 25ms.
	FlushDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.KeepJobs <= 0 {
		c.KeepJobs = 1024
	}
	if c.FlushDelay <= 0 {
		c.FlushDelay = 25 * time.Millisecond
	}
	return c
}

// Service is a long-running analysis service: one shared engine, a
// bounded priority admission queue, and Workers dispatch slots over
// one shared stage pool.
type Service struct {
	engine *core.Engine
	pool   core.StagePool
	cfg    Config
	// arena carries sweep worker slabs (decision trees, cluster
	// scratch, RNGs) across jobs: slabs are checked out per sweep
	// worker, so the one arena is safe under every Workers count and
	// settles at the peak concurrent sweep-worker population. Reports
	// are bit-for-bit identical to arena-less runs.
	arena *optimize.Arena

	// queueSlots is the admission semaphore: holding a slot = sitting
	// in the queue. Submit acquires non-blocking (ErrQueueFull),
	// SubmitWait acquires under a context; the slot is released when a
	// worker pops the job (or a reaper removes it), which is what
	// unblocks the next SubmitWait.
	queueSlots chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobHeap
	jobs    map[string]*Job
	order   []string // admission order, for terminal-job eviction
	logRefs map[*dataset.Log]int
	nextSeq uint64
	running int
	closed  bool

	// flushMu serializes K-DB flushes between the background flusher
	// and synchronous Flush callers, so concurrent snapshot writes
	// cannot tear. Jobs analyze with NoFlush; completions only signal
	// flushReq.
	flushMu sync.Mutex
	// flushReq carries coalesced flush requests to the flusher
	// goroutine (capacity 1: a pending request absorbs later ones).
	flushReq chan struct{}
	// flushStop/flusherDone bracket the flusher's lifetime; Shutdown
	// closes flushStop (once) after the workers drain and waits for
	// flusherDone before the final synchronous flush.
	flushStop     chan struct{}
	flushStopOnce sync.Once
	flusherDone   chan struct{}
	// lastFlushErr is the most recent service-level flush outcome
	// (guarded by mu, cleared on the next successful flush). A failing
	// flush never fails the job whose completion triggered it — the
	// job's WAL writes were already acked — but it degrades Health
	// until a flush succeeds again.
	lastFlushErr error

	wg sync.WaitGroup

	// runJob executes one dispatched job; replaced by tests to model
	// controllable workloads. The default runs the job's engine on the
	// shared stage pool.
	runJob func(j *Job) (*core.Report, error)
}

// New builds and starts a service (its workers idle until the first
// submission). The engine configuration is validated here.
func New(cfg Config) (*Service, error) {
	engine, err := core.New(cfg.Engine)
	if err != nil {
		return nil, err
	}
	return NewWithEngine(engine, cfg), nil
}

// NewWithEngine wraps an existing engine — e.g. one whose K-DB the
// caller already holds — in a service.
func NewWithEngine(engine *core.Engine, cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		engine:      engine,
		arena:       optimize.NewArena(),
		pool:        core.NewStagePool(engine.StageParallelism()),
		cfg:         cfg,
		queueSlots:  make(chan struct{}, cfg.QueueDepth),
		baseCtx:     ctx,
		baseCancel:  cancel,
		jobs:        make(map[string]*Job),
		logRefs:     make(map[*dataset.Log]int),
		flushReq:    make(chan struct{}, 1),
		flushStop:   make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.runJob = s.defaultRun
	s.bindServiceGauges()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	go s.flusher()
	return s
}

// Engine exposes the service's shared engine (K-DB access, feedback
// recording).
func (s *Service) Engine() *core.Engine { return s.engine }

// Submit admits log for analysis and returns its Job handle without
// waiting for execution. It fast-rejects with ErrQueueFull when the
// admission queue is at capacity and ErrClosed after Shutdown; option
// validation failures (bad config override, empty log) also reject
// here, at admission time.
func (s *Service) Submit(ctx context.Context, log *dataset.Log, opts ...Option) (*Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Closed beats full: a draining service must answer ErrClosed (a
	// terminal condition) rather than ErrQueueFull (retryable
	// backpressure), even while the queue is still saturated.
	if s.isClosed() {
		admissionsTotal.With("closed").Inc()
		return nil, ErrClosed
	}
	if err := s.shedDegraded(); err != nil {
		admissionsTotal.With("degraded").Inc()
		return nil, err
	}
	select {
	case s.queueSlots <- struct{}{}:
	default:
		admissionsTotal.With("queue_full").Inc()
		return nil, ErrQueueFull
	}
	return s.admit(log, opts)
}

func (s *Service) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// SubmitWait is Submit with blocking backpressure: when the queue is
// full it waits for a slot until ctx is done (returning ctx.Err()) or
// the service closes (returning ErrClosed).
func (s *Service) SubmitWait(ctx context.Context, log *dataset.Log, opts ...Option) (*Job, error) {
	// A dead context must reject deterministically even when a queue
	// slot happens to be free (select picks ready cases at random).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case s.queueSlots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		return nil, ErrClosed
	}
	return s.admit(log, opts)
}

// admit validates the submission and enqueues the job. The caller has
// already acquired a queue slot; admit releases it on rejection.
func (s *Service) admit(log *dataset.Log, opts []Option) (*Job, error) {
	release := func() { <-s.queueSlots }

	if log == nil || log.NumPatients() == 0 || log.NumRecords() == 0 {
		release()
		admissionsTotal.With("invalid").Inc()
		return nil, fmt.Errorf("service: empty examination log")
	}
	var o jobOptions
	for _, opt := range opts {
		opt(&o)
	}

	// Resolve the job's engine: base, or a validated derivation. A bad
	// override fails the submission here, not mid-job.
	engine := s.engine
	if o.override != nil || o.seedSet {
		cfg := s.engine.Config()
		if o.override != nil {
			cfg = *o.override
		}
		if o.seedSet {
			cfg.Seed = o.seed
		}
		derived, err := s.engine.WithConfig(cfg)
		if err != nil {
			release()
			admissionsTotal.With("invalid").Inc()
			return nil, err
		}
		engine = derived
	}

	var (
		jctx   context.Context
		cancel context.CancelFunc
	)
	if o.deadline.IsZero() {
		jctx, cancel = context.WithCancel(s.baseCtx)
	} else {
		jctx, cancel = context.WithDeadline(s.baseCtx, o.deadline)
	}
	now := time.Now()
	j := &Job{
		priority:      o.priority,
		labels:        o.labels,
		log:           log,
		engine:        engine,
		deadline:      o.deadline,
		seedCentroids: o.seedCentroids,
		seedFeatures:  o.seedFeatures,
		ctx:           jctx,
		cancel:        cancel,
		heapIdx:       -1,
		status:        StatusQueued,
		queuedAt:      now,
		events:        make(chan StageEvent, eventBuffer),
		done:          make(chan struct{}),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		release()
		admissionsTotal.With("closed").Inc()
		return nil, ErrClosed
	}
	// Logs arrive from arbitrary construction paths (JSON decoding in
	// the daemon, struct literals in library callers) with their lazy
	// lookup tables unbuilt; building them here — serialized under the
	// admission lock, so concurrent Submits sharing one log pointer
	// cannot race — keeps the concurrent DAG's root stages from
	// materializing them mid-analysis.
	log.EnsureIndexes()
	s.nextSeq++
	j.seq = s.nextSeq
	j.id = fmt.Sprintf("job-%06d", j.seq)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	// Jobs are usually the only holders of their (request-scoped) log;
	// refcount submissions per pointer and drop the engine's cached
	// per-log state when the last job over a log finishes, so the
	// daemon's memory does not grow with every submission until cache
	// eviction.
	s.logRefs[log]++
	j.onFinish = func() { s.releaseLog(log) }
	s.evictLocked()
	// The queued event is emitted before the job becomes visible to
	// workers, so an Events consumer always sees queued before
	// running.
	j.emitLifecycle(StatusQueued, now)
	heap.Push(&s.queue, j)
	s.cond.Signal()
	s.mu.Unlock()
	admissionsTotal.With("accepted").Inc()

	// Reap the job if its context ends while it still sits in the
	// queue (Cancel, an expired deadline, or service abort): remove it
	// from the heap and finish it with the context's error instead of
	// leaving it invisible until a worker drains to it. The watcher
	// exits at job completion because finish cancels the context.
	go func() {
		<-jctx.Done()
		s.reapQueued(j)
	}()

	return j, nil
}

// Job resolves a job by ID (daemon lookups).
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats is a point-in-time service gauge snapshot.
type Stats struct {
	Queued     int  `json:"queued"`
	Running    int  `json:"running"`
	Workers    int  `json:"workers"`
	QueueDepth int  `json:"queue_depth"`
	Closed     bool `json:"closed"`
}

// Stats reports current admission-queue and worker occupancy.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Queued:     s.queue.Len(),
		Running:    s.running,
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Closed:     s.closed,
	}
}

// shedDegraded implements Submit's load-shedding policy: reject with
// ErrDegraded only when the K-DB is unhealthy AND the admission queue
// is at least half full. Either condition alone keeps admitting —
// degradation with headroom still serves (analyses complete on the
// cold path), and a saturated-but-healthy queue is ordinary
// ErrQueueFull backpressure.
func (s *Service) shedDegraded() error {
	if s.engine.KDB().Health().Mode == kdb.ModeHealthy {
		return nil
	}
	if len(s.queueSlots) < (s.cfg.QueueDepth+1)/2 {
		return nil
	}
	return ErrDegraded
}

// Health status values.
const (
	HealthOK       = "ok"       // fully serving, durable
	HealthDegraded = "degraded" // serving, but shedding durability or load
	HealthFailing  = "failing"  // not serving (draining or closed)
)

// Health is the service's condition, aggregated from admission state,
// the K-DB circuit breaker, and the last service-level flush.
type Health struct {
	// Status is ok, degraded, or failing (see the constants).
	Status string `json:"status"`
	// Reasons explains any non-ok status, one condition per entry.
	Reasons []string `json:"reasons,omitempty"`
	// KDB is the knowledge-base circuit breaker's gauge snapshot.
	KDB kdb.Health `json:"kdb"`
	// LastFlushError is the most recent failed service-level flush
	// ("" once a flush succeeds again).
	LastFlushError string `json:"last_flush_error,omitempty"`
}

// Health classifies the service as ok, degraded, or failing, with the
// reasons. Degraded means the service still serves analyses but the
// self-learning loop is impaired (K-DB read-only/offline, or flushes
// failing); failing means it no longer accepts work.
func (s *Service) Health() Health {
	h := Health{Status: HealthOK, KDB: s.engine.KDB().Health()}
	s.mu.Lock()
	closed := s.closed
	flushErr := s.lastFlushErr
	s.mu.Unlock()
	if h.KDB.Mode != kdb.ModeHealthy {
		h.Status = HealthDegraded
		h.Reasons = append(h.Reasons, fmt.Sprintf("kdb %s: %s", h.KDB.Mode, h.KDB.Reason))
	}
	if flushErr != nil {
		h.Status = HealthDegraded
		h.LastFlushError = flushErr.Error()
		h.Reasons = append(h.Reasons, "kdb flush failing: "+flushErr.Error())
	}
	if closed {
		h.Status = HealthFailing
		h.Reasons = append(h.Reasons, "service closed or draining")
	}
	return h
}

// Shutdown drains the service: admission stops (Submit returns
// ErrClosed), queued and running jobs are allowed to finish, and
// workers exit. If ctx expires first, every remaining job is cancelled
// and Shutdown returns ctx.Err() after the workers stop. Shutdown is
// idempotent.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopFlusher()
		return nil
	case <-ctx.Done():
		s.baseCancel() // cancel running jobs, reap queued ones
		<-done
		s.stopFlusher()
		return ctx.Err()
	}
}

// Close shuts the service down immediately: in-flight jobs are
// cancelled rather than drained.
func (s *Service) Close() error {
	s.baseCancel()
	return s.Shutdown(context.Background())
}

// worker is one dispatch slot: it pops the highest-priority queued job
// and runs it to completion, until the service closes and the queue is
// empty.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.run(j)
	}
}

// next blocks until a job is queued (returning it and moving it to
// running) or the service is closed with an empty queue (returning
// nil).
func (s *Service) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.queue.Len() > 0 {
			j := heap.Pop(&s.queue).(*Job)
			s.running++
			// The job left the admission queue: free its slot, which
			// is what unblocks a pending SubmitWait.
			<-s.queueSlots
			return j
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// run executes one dispatched job.
func (s *Service) run(j *Job) {
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}()
	// A job cancelled (or deadline-expired) between admission and
	// dispatch fails without starting; finish is a no-op if the reap
	// watcher already got it.
	if err := j.ctx.Err(); err != nil {
		j.finish(nil, err)
		return
	}
	j.setRunning()
	rep, err := s.safeRun(j)
	if err == nil && rep != nil {
		// The post-job flush is a durability accelerator, not part of
		// the job's contract: every acked write is already on the WAL,
		// so job completion only signals the background flusher instead
		// of compacting inline. A burst of completions coalesces into
		// one snapshot write; a failed compaction degrades Health
		// without failing any job whose analysis succeeded.
		s.requestFlush()
	}
	j.finish(rep, err)
}

// requestFlush signals the background flusher; a request already
// pending absorbs this one (the flusher compacts once for the burst).
func (s *Service) requestFlush() {
	select {
	case s.flushReq <- struct{}{}:
	default:
	}
}

// Flush compacts the K-DB synchronously, recording the outcome in
// Health like the background flusher does. Tests and shutdown use it
// to reach a known-compacted state without waiting out the debounce
// window.
func (s *Service) Flush() error {
	s.flushMu.Lock()
	err := s.engine.KDB().Flush()
	s.flushMu.Unlock()
	s.mu.Lock()
	s.lastFlushErr = err
	s.mu.Unlock()
	return err
}

// flusher is the background flush goroutine: it waits for a request,
// debounces FlushDelay absorbing the rest of the burst, then compacts
// once. It exits when flushStop closes, flushing a pending request
// first so shutdown never strands signalled work.
func (s *Service) flusher() {
	defer close(s.flusherDone)
	for {
		select {
		case <-s.flushReq:
		case <-s.flushStop:
			return
		}
		timer := time.NewTimer(s.cfg.FlushDelay)
	absorb:
		for {
			select {
			case <-s.flushReq:
				// Coalesced into the pending compaction.
			case <-timer.C:
				break absorb
			case <-s.flushStop:
				timer.Stop()
				_ = s.Flush()
				return
			}
		}
		_ = s.Flush()
	}
}

// stopFlusher ends the background flusher (idempotent) and waits for
// it, then runs one final synchronous flush so a cleanly shut down
// service leaves a fully compacted store behind.
func (s *Service) stopFlusher() {
	s.flushStopOnce.Do(func() { close(s.flushStop) })
	<-s.flusherDone
	_ = s.Flush()
}

// safeRun isolates a panicking job execution (the runJob seam, or a
// panic escaping the engine) to its own job: the job fails with a
// stack-carrying *core.PanicError and the worker keeps dispatching.
func (s *Service) safeRun(j *Job) (rep *core.Report, err error) {
	defer func() {
		if v := recover(); v != nil {
			rep, err = nil, &core.PanicError{
				Stage: "job " + j.id, Value: v, Stack: debug.Stack(),
			}
		}
	}()
	return s.runJob(j)
}

// defaultRun dispatches the job onto the shared stage pool through the
// engine's single dispatch path. FairShare derates each job's inner
// kernels to its fair share of the pool, exactly as AnalyzeMany treats
// a batch; the K-DB flush is deferred to the serialized service-level
// flush in run.
func (s *Service) defaultRun(j *Job) (*core.Report, error) {
	return j.engine.AnalyzeWith(j.ctx, j.log, core.AnalyzeOptions{
		Pool:          s.pool,
		Observer:      j.observeStage,
		NoFlush:       true,
		FairShare:     s.cfg.Workers,
		Arena:         s.arena,
		SeedCentroids: j.seedCentroids,
		SeedFeatures:  j.seedFeatures,
	})
}

// releaseLog drops one job's claim on its log's cached engine state,
// releasing the cache entry when no queued or running job shares the
// pointer.
func (s *Service) releaseLog(log *dataset.Log) {
	s.mu.Lock()
	s.logRefs[log]--
	last := s.logRefs[log] <= 0
	if last {
		delete(s.logRefs, log)
	}
	s.mu.Unlock()
	if last {
		s.engine.ReleaseLog(log)
	}
}

// reapQueued finishes a job whose context ended while it still sat in
// the admission queue. No-op if a worker already dispatched it.
func (s *Service) reapQueued(j *Job) {
	s.mu.Lock()
	if j.heapIdx < 0 {
		s.mu.Unlock()
		return
	}
	heap.Remove(&s.queue, j.heapIdx)
	<-s.queueSlots
	s.mu.Unlock()
	j.finish(nil, j.ctx.Err())
}

// evictLocked drops the oldest terminal jobs beyond the KeepJobs
// registry bound. Non-terminal jobs are never evicted.
func (s *Service) evictLocked() {
	if len(s.jobs) <= s.cfg.KeepJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if len(s.jobs) > s.cfg.KeepJobs && j.Status().Terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// jobHeap orders queued jobs by descending priority, then admission
// order; heapIdx tracks positions so reapQueued can remove by index.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority > h[b].priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].heapIdx = a
	h[b].heapIdx = b
}
func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	j := old[len(old)-1]
	old[len(old)-1] = nil
	j.heapIdx = -1
	*h = old[:len(old)-1]
	return j
}
